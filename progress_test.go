package warp_test

import (
	"sync/atomic"
	"testing"

	"warp"
	"warp/internal/driver"
	"warp/internal/interp"
	"warp/internal/obs"
	"warp/internal/sim"
	"warp/internal/workloads"
)

// progressSink is package-level and non-capturing, so passing it as a
// ProgressFunc allocates nothing.
var progressCount atomic.Int64

func progressSink(obs.ProgressUpdate) { progressCount.Add(1) }

// TestProgressNeutral extends the TestObsNeutral contract to the
// progress hook: attaching one changes neither cycle counts nor
// outputs, and every run carries a decision record.
func TestProgressNeutral(t *testing.T) {
	for _, j := range obsJobs {
		t.Run(j.name, func(t *testing.T) {
			prog, err := warp.Compile(j.src, warp.Options{Pipeline: j.pipe})
			if err != nil {
				t.Fatal(err)
			}
			out, stats, err := prog.Run(j.inputs())
			if err != nil {
				t.Fatal(err)
			}
			var ups []warp.ProgressUpdate
			pout, pstats, err := prog.RunWith(warp.RunConfig{
				Progress: func(u warp.ProgressUpdate) { ups = append(ups, u) },
			}, j.inputs())
			if err != nil {
				t.Fatal(err)
			}
			if pstats.Cycles != stats.Cycles || pstats.Cycles != j.cycles {
				t.Errorf("progress changed cycles: %d vs %d (baseline %d)", pstats.Cycles, stats.Cycles, j.cycles)
			}
			if len(ups) == 0 || !ups[len(ups)-1].Done {
				t.Errorf("want a terminal progress update, got %d updates", len(ups))
			}
			if pstats.Decision == nil || pstats.Decision.ActualWallNS <= 0 {
				t.Errorf("run carries no completed decision: %+v", pstats.Decision)
			}
			for name, want := range out {
				got := pout[name]
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("progress changed output %s[%d]", name, i)
					}
				}
			}
		})
	}
}

// simConfigFor compiles a small workload down to a raw simulator
// config so the hook cost can be measured without the driver's
// per-run bookkeeping.
func simConfigFor(t testing.TB) (sim.Config, []float64) {
	t.Helper()
	c, err := driver.Compile(workloads.Polynomial(10, 100), driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hostMem, err := interp.BuildHostMem(c.Info, map[string][]float64{
		"z": make([]float64, 100), "c": make([]float64, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Cells: c.Cells, Cell: c.Cell, IU: c.IU, Host: c.Host,
		Skew: c.Skew, Lead: c.IUGen.Prologue + 1,
	}, hostMem
}

// TestProgressNilZeroAlloc pins the zero-overhead-when-nil contract at
// the allocation level: a simulator run allocates exactly the same
// with a progress hook attached as without one — the hook itself (a
// nil check plus a by-value struct call at the poll stride) allocates
// nothing, so the nil path trivially adds zero allocations.
func TestProgressNilZeroAlloc(t *testing.T) {
	cfg, hostMem := simConfigFor(t)
	run := func(p obs.ProgressFunc) {
		c := cfg
		c.HostMem = append([]float64(nil), hostMem...)
		c.Progress = p
		if _, err := sim.Run(c); err != nil {
			t.Fatal(err)
		}
	}
	allocsNil := testing.AllocsPerRun(10, func() { run(nil) })
	allocsOn := testing.AllocsPerRun(10, func() { run(progressSink) })
	if allocsOn != allocsNil {
		t.Errorf("progress hook allocates: %v allocs with hook, %v without", allocsOn, allocsNil)
	}
}

// BenchmarkSimProgress measures the run-loop cost of the progress
// hook: nil (the default) must track the pre-hook baseline, and an
// attached no-op hook costs one call per poll stride.
func BenchmarkSimProgress(b *testing.B) {
	cfg, hostMem := simConfigFor(b)
	for _, bc := range []struct {
		name string
		p    obs.ProgressFunc
	}{{"nil", nil}, {"attached", progressSink}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cfg
				c.HostMem = append([]float64(nil), hostMem...)
				c.Progress = bc.p
				if _, err := sim.Run(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package sim

import (
	"testing"

	"warp/internal/mcode"
	"warp/internal/obs"
)

func straight(n int) *mcode.Straight {
	s := &mcode.Straight{}
	for i := 0; i < n; i++ {
		s.Instrs = append(s.Instrs, &mcode.Instr{})
	}
	return s
}

// TestCellSeqStraight walks a straight-line program.
func TestCellSeqStraight(t *testing.T) {
	p := &mcode.CellProgram{Items: []mcode.CodeItem{straight(3)}}
	s := newCellSeq(p)
	for i := 0; i < 3; i++ {
		in, _, ends, done := s.step()
		if done || in == nil {
			t.Fatalf("step %d: done early", i)
		}
		if len(ends) != 0 {
			t.Fatalf("step %d: unexpected loop ends", i)
		}
	}
	if _, _, _, done := s.step(); !done {
		t.Fatal("program should be finished")
	}
}

// TestCellSeqLoop checks loop-boundary events: one per iteration, with
// more=false on the last.
func TestCellSeqLoop(t *testing.T) {
	p := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.LoopItem{ID: 7, Trips: 3, Body: []mcode.CodeItem{straight(2)}},
	}}
	s := newCellSeq(p)
	var events []loopEnd
	steps := 0
	for {
		_, _, ends, done := s.step()
		if done {
			break
		}
		steps++
		events = append(events, ends...)
	}
	if steps != 6 {
		t.Errorf("executed %d instructions, want 6", steps)
	}
	if len(events) != 3 {
		t.Fatalf("got %d loop events, want 3", len(events))
	}
	for i, e := range events {
		wantMore := i < 2
		if e.id != 7 || e.more != wantMore {
			t.Errorf("event %d = %+v, want id=7 more=%v", i, e, wantMore)
		}
	}
}

// TestCellSeqNestedLoops checks that inner and outer boundaries are
// reported innermost first when they coincide.
func TestCellSeqNestedLoops(t *testing.T) {
	inner := &mcode.LoopItem{ID: 1, Trips: 2, Body: []mcode.CodeItem{straight(1)}}
	outer := &mcode.LoopItem{ID: 0, Trips: 2, Body: []mcode.CodeItem{inner}}
	p := &mcode.CellProgram{Items: []mcode.CodeItem{outer}}
	s := newCellSeq(p)
	var events []loopEnd
	steps := 0
	for {
		_, depth, ends, done := s.step()
		if done {
			break
		}
		if depth != 2 {
			t.Errorf("step %d: depth = %d, want 2 (inner loop body)", steps, depth)
		}
		steps++
		events = append(events, ends...)
	}
	if steps != 4 {
		t.Errorf("executed %d instructions, want 4", steps)
	}
	// Expected events per step:
	// step 1: inner more=true
	// step 2: inner more=false, outer more=true
	// step 3: inner more=true
	// step 4: inner more=false, outer more=false
	want := []loopEnd{
		{1, true},
		{1, false}, {0, true},
		{1, true},
		{1, false}, {0, false},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

// TestIUSeqNestedLoops checks the IU sequencer's repetition counts.
func TestIUSeqNestedLoops(t *testing.T) {
	body := &mcode.IUStraight{Instrs: []*mcode.IUInstr{{}, {}}}
	inner := &mcode.IULoop{ID: 1, Trips: 3, Body: []mcode.IUItem{body}}
	outer := &mcode.IULoop{ID: 0, Trips: 2, Body: []mcode.IUItem{inner, &mcode.IUStraight{Instrs: []*mcode.IUInstr{{}}}}}
	p := &mcode.IUProgram{Items: []mcode.IUItem{outer}}
	s := newIUSeq(p)
	steps := 0
	for {
		_, _, done := s.step()
		if done {
			break
		}
		steps++
	}
	want := 2 * (3*2 + 1)
	if steps != want {
		t.Errorf("executed %d IU instructions, want %d", steps, want)
	}
}

// TestQueueLimits exercises the bounded FIFO directly.
func TestQueueLimits(t *testing.T) {
	q := newQueue[int]("t", 0, obs.NumQueues, 2)
	if _, err := q.pop(); err == nil {
		t.Error("pop of empty queue must underflow")
	}
	if err := q.push(1); err != nil {
		t.Fatal(err)
	}
	if err := q.push(2); err != nil {
		t.Fatal(err)
	}
	if err := q.push(3); err == nil {
		t.Error("third push must overflow")
	}
	v, err := q.pop()
	if err != nil || v != 1 {
		t.Errorf("pop = %d, %v; want 1", v, err)
	}
	if q.len() != 1 {
		t.Errorf("len = %d, want 1", q.len())
	}
}

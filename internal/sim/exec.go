package sim

import "warp/internal/mcode"

// exec.go implements structured-program sequencers: the control state
// of a cell or the IU, stepping one microinstruction per cycle through
// nested counted loops.

// loopEnd is a loop-body boundary crossed after an instruction: the
// cell's sequencer pops one IU control signal per boundary and checks
// it against the statically expected decision.
type loopEnd struct {
	id   int  // loop ID
	more bool // another iteration follows
}

// cellSeq sequences a cell microprogram.
type cellSeq struct {
	stack []cellFrame
}

type cellFrame struct {
	items []mcode.CodeItem
	idx   int
	instr int
	loop  *mcode.LoopItem // nil for the top-level frame
	iter  int64
}

func newCellSeq(p *mcode.CellProgram) *cellSeq {
	return &cellSeq{stack: []cellFrame{{items: p.Items}}}
}

// step returns the next instruction to execute together with its loop
// nesting depth (0 for straight-line code outside every loop) and the
// loop boundaries crossed immediately after it; done reports program
// end.
func (s *cellSeq) step() (in *mcode.Instr, depth int, ends []loopEnd, done bool) {
	in = s.fetch()
	if in == nil {
		return nil, 0, nil, true
	}
	for i := range s.stack {
		if s.stack[i].loop != nil {
			depth++
		}
	}
	ends = s.advance()
	return in, depth, ends, false
}

// fetch descends to the current instruction without advancing.
func (s *cellSeq) fetch() *mcode.Instr {
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.idx >= len(f.items) {
			// Only reachable for an empty top-level program.
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		switch it := f.items[f.idx].(type) {
		case *mcode.Straight:
			if len(it.Instrs) == 0 {
				f.idx++
				continue
			}
			return it.Instrs[f.instr]
		case *mcode.LoopItem:
			s.stack = append(s.stack, cellFrame{items: it.Body, loop: it})
		}
	}
	return nil
}

// advance moves past the instruction just executed, unwinding loop
// boundaries and recording them innermost first.
func (s *cellSeq) advance() []loopEnd {
	var ends []loopEnd
	f := &s.stack[len(s.stack)-1]
	st := f.items[f.idx].(*mcode.Straight)
	f.instr++
	if f.instr < len(st.Instrs) {
		return nil
	}
	f.instr = 0
	f.idx++
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.idx < len(f.items) {
			// Skip empty straights that would stall the walk.
			if st, ok := f.items[f.idx].(*mcode.Straight); ok && len(st.Instrs) == 0 {
				f.idx++
				continue
			}
			break
		}
		if f.loop != nil {
			more := f.iter+1 < f.loop.Trips
			ends = append(ends, loopEnd{id: f.loop.ID, more: more})
			if more {
				f.iter++
				f.idx = 0
				f.instr = 0
				break
			}
		}
		s.stack = s.stack[:len(s.stack)-1]
		if len(s.stack) > 0 {
			parent := &s.stack[len(s.stack)-1]
			parent.idx++
		}
	}
	return ends
}

// done reports whether the program has finished.
func (s *cellSeq) done() bool {
	return s.fetch() == nil
}

// iuSeq sequences the IU microprogram.  IU loops carry no signals of
// their own; they simply repeat their static trip count.
type iuSeq struct {
	stack []iuFrame
}

type iuFrame struct {
	items []mcode.IUItem
	idx   int
	instr int
	loop  *mcode.IULoop
	iter  int64
}

func newIUSeq(p *mcode.IUProgram) *iuSeq {
	return &iuSeq{stack: []iuFrame{{items: p.Items}}}
}

// step returns the next IU instruction together with the current
// iteration of the innermost enclosing IU loop (0 outside loops), or
// done when finished.
func (s *iuSeq) step() (in *mcode.IUInstr, iter int64, done bool) {
	in = s.fetch()
	if in == nil {
		return nil, 0, true
	}
	for i := len(s.stack) - 1; i >= 0; i-- {
		if s.stack[i].loop != nil {
			iter = s.stack[i].iter
			break
		}
	}
	s.advance()
	return in, iter, false
}

func (s *iuSeq) fetch() *mcode.IUInstr {
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.idx >= len(f.items) {
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		switch it := f.items[f.idx].(type) {
		case *mcode.IUStraight:
			if len(it.Instrs) == 0 {
				f.idx++
				continue
			}
			return it.Instrs[f.instr]
		case *mcode.IULoop:
			s.stack = append(s.stack, iuFrame{items: it.Body, loop: it})
		}
	}
	return nil
}

func (s *iuSeq) advance() {
	f := &s.stack[len(s.stack)-1]
	st := f.items[f.idx].(*mcode.IUStraight)
	f.instr++
	if f.instr < len(st.Instrs) {
		return
	}
	f.instr = 0
	f.idx++
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.idx < len(f.items) {
			if st, ok := f.items[f.idx].(*mcode.IUStraight); ok && len(st.Instrs) == 0 {
				f.idx++
				continue
			}
			break
		}
		if f.loop != nil && f.iter+1 < f.loop.Trips {
			f.iter++
			f.idx = 0
			f.instr = 0
			break
		}
		s.stack = s.stack[:len(s.stack)-1]
		if len(s.stack) > 0 {
			parent := &s.stack[len(s.stack)-1]
			parent.idx++
		}
	}
}

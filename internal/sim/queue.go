// Package sim is a cycle-accurate simulator of the Warp machine (§2):
// a linear array of identical microprogrammed cells in lock step with a
// global clock, an interface unit generating addresses and loop control
// signals, and a host feeding and collecting the data streams.
//
// The simulator is the reproduction's stand-in for the 1986 hardware:
// compiled microcode runs cycle by cycle, and every guarantee the
// compiler must establish — no queue underflow or overflow, addresses
// and signals arriving in time, correct skew — is checked dynamically,
// turning scheduling bugs into simulation errors instead of silently
// wrong numbers.
//
// Timing model (matching the paper's examples, e.g. Figure 6-3 where an
// output and its matching input share a cycle):
//
//   - agents execute each cycle in upstream-to-downstream order
//     (IU, host, cell 0, cell 1, ...), so a word pushed at cycle t can
//     be popped by the downstream agent in the same cycle t;
//   - register writes land at issue+latency (1 for moves, literals,
//     loads and receives; FPULatency for FPU results);
//   - memory stores become visible the cycle after issue.
package sim

import (
	"fmt"

	"warp/internal/obs"
)

// queue is a bounded FIFO with underflow/overflow detection and
// always-on occupancy accounting: an exact push-time high-water mark,
// push/pop counts, and a per-cycle occupancy histogram sampled by the
// machine at the end of each cycle (see machine.trackQueues).
type queue[T any] struct {
	name  string
	cell  int       // consuming cell index
	kind  obs.Queue // obs.NumQueues for untracked queues (Sig)
	cap   int
	items []T

	high   int // exact peak occupancy, observed at push time
	pushes int64
	pops   int64
	hist   []int64 // hist[d] = cycles ending with occupancy d
}

func newQueue[T any](name string, cell int, kind obs.Queue, capacity int) *queue[T] {
	return &queue[T]{
		name: name, cell: cell, kind: kind, cap: capacity,
		hist: make([]int64, capacity+1),
	}
}

func (q *queue[T]) push(v T) error {
	if len(q.items) >= q.cap {
		return fmt.Errorf("sim: queue %s overflows its %d words", q.name, q.cap)
	}
	q.items = append(q.items, v)
	q.pushes++
	if len(q.items) > q.high {
		q.high = len(q.items)
	}
	return nil
}

func (q *queue[T]) pop() (T, error) {
	var zero T
	if len(q.items) == 0 {
		return zero, fmt.Errorf("sim: queue %s underflows (receive before the matching send)", q.name)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.pops++
	return v, nil
}

func (q *queue[T]) len() int { return len(q.items) }

// profile snapshots the queue's accounting for the run profile.
func (q *queue[T]) profile() obs.QueueProfile {
	return obs.QueueProfile{
		Name: q.name, Cell: q.cell, Queue: q.kind,
		HighWater: q.high, Pushes: q.pushes, Pops: q.pops, Hist: q.hist,
	}
}

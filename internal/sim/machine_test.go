package sim

import (
	"strings"
	"testing"

	"warp/internal/hostgen"
	"warp/internal/mcode"
	"warp/internal/w2"
)

// handProg builds a tiny cell program by hand: receive a word from X,
// double it through the ADD unit... (actually via Mov) and send it on.
func passProgram() *mcode.CellProgram {
	return &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.Straight{Instrs: []*mcode.Instr{
			{IO: []*mcode.IOOp{{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: 1}}},
			{IO: []*mcode.IOOp{{Recv: false, Dir: w2.DirR, Chan: w2.ChanX, Reg: 1}}},
		}},
	}}
}

func hostFor(n int) *hostgen.Program {
	h := &hostgen.Program{
		In:  map[w2.Channel][]hostgen.Word{},
		Out: map[w2.Channel][]int{},
	}
	for i := 0; i < n; i++ {
		h.In[w2.ChanX] = append(h.In[w2.ChanX], hostgen.Word{Index: i})
		h.Out[w2.ChanX] = append(h.Out[w2.ChanX], n+i)
	}
	return h
}

// TestRunHandProgram pushes one word through three cells.
func TestRunHandProgram(t *testing.T) {
	mem := []float64{42, 0}
	stats, err := Run(Config{
		Cells:   3,
		Cell:    passProgram(),
		IU:      &mcode.IUProgram{},
		Host:    hostFor(1),
		Skew:    1,
		Lead:    1,
		HostMem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mem[1] != 42 {
		t.Errorf("host received %v, want 42", mem[1])
	}
	if stats.Sent[w2.ChanX] != 1 {
		t.Errorf("sent %d words, want 1", stats.Sent[w2.ChanX])
	}
	// Cell i finishes roughly i*skew later.
	if stats.CellFinish[2] <= stats.CellFinish[0] {
		t.Errorf("cell finish times not skewed: %v", stats.CellFinish)
	}
}

// TestRunDetectsUnderflow: a cell receiving a word nobody sends.
func TestRunDetectsUnderflow(t *testing.T) {
	prog := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.Straight{Instrs: []*mcode.Instr{
			{IO: []*mcode.IOOp{{Recv: true, Dir: w2.DirL, Chan: w2.ChanY, Reg: 1}}},
		}},
	}}
	_, err := Run(Config{
		Cells: 1,
		Cell:  prog,
		IU:    &mcode.IUProgram{},
		Host:  &hostgen.Program{In: map[w2.Channel][]hostgen.Word{}, Out: map[w2.Channel][]int{}},
		Lead:  1,
	})
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("err = %v, want queue underflow", err)
	}
}

// TestRunDetectsSignalMismatch: the IU sends a wrong loop decision.
func TestRunDetectsSignalMismatch(t *testing.T) {
	cellProg := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.LoopItem{ID: 0, Trips: 2, Body: []mcode.CodeItem{
			&mcode.Straight{Instrs: []*mcode.Instr{{}, {}, {}}},
		}},
	}}
	// IU claims the loop stops after the first iteration.
	iu := &mcode.IUProgram{Items: []mcode.IUItem{
		&mcode.IUStraight{Instrs: []*mcode.IUInstr{
			{Sig: &mcode.IUSig{LoopID: 0, Static: true, Continue: false}},
			{Sig: &mcode.IUSig{LoopID: 0, Static: true, Continue: false}},
		}},
	}}
	_, err := Run(Config{
		Cells: 1,
		Cell:  cellProg,
		IU:    iu,
		Host:  &hostgen.Program{In: map[w2.Channel][]hostgen.Word{}, Out: map[w2.Channel][]int{}},
		Lead:  1,
	})
	if err == nil || !strings.Contains(err.Error(), "signal mismatch") {
		t.Errorf("err = %v, want loop signal mismatch", err)
	}
}

// TestRunDetectsMissingSignal: cells block when the IU never sends the
// loop decision.
func TestRunDetectsMissingSignal(t *testing.T) {
	cellProg := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.LoopItem{ID: 0, Trips: 2, Body: []mcode.CodeItem{
			&mcode.Straight{Instrs: []*mcode.Instr{{}}},
		}},
	}}
	_, err := Run(Config{
		Cells: 1,
		Cell:  cellProg,
		IU:    &mcode.IUProgram{},
		Host:  &hostgen.Program{In: map[w2.Channel][]hostgen.Word{}, Out: map[w2.Channel][]int{}},
		Lead:  1,
	})
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("err = %v, want signal-queue underflow", err)
	}
}

// TestRunDetectsBadAddress: the IU emits an address outside cell
// memory.
func TestRunDetectsBadAddress(t *testing.T) {
	sym := &w2.Symbol{Name: "buf", Kind: w2.SymCellArray}
	cellProg := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.Straight{Instrs: []*mcode.Instr{
			{Mem: [mcode.MemPorts]*mcode.MemOp{{Store: false, Reg: 1, Addr: mcode.AddrInfo{Sym: sym}}}},
		}},
	}}
	iu := &mcode.IUProgram{Items: []mcode.IUItem{
		&mcode.IUStraight{Instrs: []*mcode.IUInstr{
			{Imm: &mcode.IUImm{Dst: 0, Value: 99999}},
			{Out: [mcode.MemPorts]*mcode.IUOut{{Src: 0}}},
		}},
	}}
	_, err := Run(Config{
		Cells: 1,
		Cell:  cellProg,
		IU:    iu,
		Host:  &hostgen.Program{In: map[w2.Channel][]hostgen.Word{}, Out: map[w2.Channel][]int{}},
		Lead:  3,
	})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("err = %v, want address range error", err)
	}
}

// TestRunHostBackpressure: the host waits when the first cell's queue
// is full instead of overflowing it.
func TestRunHostBackpressure(t *testing.T) {
	// A cell consuming one word every 4 cycles while the host offers
	// 200 words: the queue would overflow without backpressure.
	var items []mcode.CodeItem
	items = append(items, &mcode.LoopItem{ID: 0, Trips: 200, Body: []mcode.CodeItem{
		&mcode.Straight{Instrs: []*mcode.Instr{
			{IO: []*mcode.IOOp{{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: 1}}},
			{}, {}, {},
		}},
	}})
	host := &hostgen.Program{In: map[w2.Channel][]hostgen.Word{}, Out: map[w2.Channel][]int{}}
	mem := make([]float64, 200)
	for i := range mem {
		host.In[w2.ChanX] = append(host.In[w2.ChanX], hostgen.Word{Index: i})
	}
	iu := &mcode.IUProgram{Items: []mcode.IUItem{
		&mcode.IUStraight{Instrs: signalInstrs(200, 4)},
	}}
	stats, err := Run(Config{
		Cells: 1, Cell: &mcode.CellProgram{Items: items}, IU: iu,
		Host: host, Lead: 1, HostMem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxQueue > mcode.QueueDepth {
		t.Errorf("queue exceeded hardware depth: %d", stats.MaxQueue)
	}
}

// signalInstrs paces one loop signal per cell iteration of bodyLen
// cycles (the real IU code generator achieves the same pacing by
// mirroring the cell program's structure).
func signalInstrs(trips, bodyLen int) []*mcode.IUInstr {
	var out []*mcode.IUInstr
	for i := 0; i < trips; i++ {
		out = append(out, &mcode.IUInstr{Sig: &mcode.IUSig{LoopID: 0, Static: true, Continue: i < trips-1}})
		for p := 1; p < bodyLen; p++ {
			out = append(out, &mcode.IUInstr{})
		}
	}
	return out
}

// emptyHost returns a host program with no traffic.
func emptyHost() *hostgen.Program {
	return &hostgen.Program{In: map[w2.Channel][]hostgen.Word{}, Out: map[w2.Channel][]int{}}
}

// dummySym returns a throwaway cell-array symbol.
func dummySym() *w2.Symbol {
	return &w2.Symbol{Name: "buf", Kind: w2.SymCellArray}
}

package sim

import (
	"strings"
	"testing"

	"warp/internal/hostgen"
	"warp/internal/mcode"
	"warp/internal/obs"
	"warp/internal/w2"
)

// Table-driven tests for the bounded FIFO at the heart of the machine:
// ordering under interleaved traffic, the exact overflow and underflow
// boundaries, same-cycle push+pop at full and at empty (the machine
// steps agents upstream-first, so within a cycle the push always lands
// before the downstream pop), and the push-time high-water accounting
// that feeds Stats.MaxQueue/MaxQueueAt.

func TestQueueOps(t *testing.T) {
	type op struct {
		push    bool
		v       int // value pushed, or expected value popped
		wantErr string
	}
	pushN := func(lo, hi int) []op {
		var ops []op
		for v := lo; v < hi; v++ {
			ops = append(ops, op{push: true, v: v})
		}
		return ops
	}
	popN := func(lo, hi int) []op {
		var ops []op
		for v := lo; v < hi; v++ {
			ops = append(ops, op{v: v})
		}
		return ops
	}
	seq := func(groups ...[]op) []op {
		var ops []op
		for _, g := range groups {
			ops = append(ops, g...)
		}
		return ops
	}

	const depth = mcode.QueueDepth
	tests := []struct {
		name     string
		cap      int
		ops      []op
		wantHigh int
		wantLen  int
	}{
		{
			name:     "fifo-order",
			cap:      4,
			ops:      seq(pushN(0, 3), popN(0, 3)),
			wantHigh: 3,
		},
		{
			// The backing store recycles: fill, half-drain, refill, and
			// the words still come out in push order.
			name: "interleaved-wraparound",
			cap:  4,
			ops: seq(
				pushN(0, 4), popN(0, 2),
				pushN(4, 6), popN(2, 6),
				pushN(6, 9), popN(6, 9),
			),
			wantHigh: 4,
		},
		{
			name:     "pop-empty-underflows",
			cap:      4,
			ops:      []op{{wantErr: "underflow"}},
			wantHigh: 0,
		},
		{
			// Same cycle, upstream first: the push hits the full queue
			// before the downstream pop can make room.
			name:     "same-cycle-push-pop-at-full",
			cap:      4,
			ops:      seq(pushN(0, 4), []op{{push: true, v: 4, wantErr: "overflow"}, {v: 0}}),
			wantHigh: 4,
			wantLen:  3,
		},
		{
			// Same cycle at empty: upstream-first order is what makes a
			// push poppable downstream within the cycle.
			name:     "same-cycle-push-pop-at-empty",
			cap:      4,
			ops:      seq(pushN(0, 1), popN(0, 1)),
			wantHigh: 1,
		},
		{
			// Exactly the hardware depth fits; the high-water mark
			// records the boundary exactly, not one off.
			name:     "high-water-at-hardware-depth",
			cap:      depth,
			ops:      seq(pushN(0, depth), popN(0, depth)),
			wantHigh: depth,
		},
		{
			name:     "overflow-just-past-hardware-depth",
			cap:      depth,
			ops:      seq(pushN(0, depth), []op{{push: true, v: depth, wantErr: "overflow"}}),
			wantHigh: depth,
			wantLen:  depth,
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := newQueue[int]("cell1.X", 1, obs.QueueX, tc.cap)
			var pushes, pops int64
			for i, o := range tc.ops {
				if o.push {
					err := q.push(o.v)
					if o.wantErr == "" {
						if err != nil {
							t.Fatalf("op %d: push(%d): %v", i, o.v, err)
						}
						pushes++
					} else if err == nil || !strings.Contains(err.Error(), o.wantErr) {
						t.Fatalf("op %d: push(%d) err = %v, want %q", i, o.v, err, o.wantErr)
					}
					continue
				}
				v, err := q.pop()
				if o.wantErr == "" {
					if err != nil {
						t.Fatalf("op %d: pop: %v", i, err)
					}
					if v != o.v {
						t.Fatalf("op %d: pop = %d, want %d (FIFO order broken)", i, v, o.v)
					}
					pops++
				} else if err == nil || !strings.Contains(err.Error(), o.wantErr) {
					t.Fatalf("op %d: pop err = %v, want %q", i, err, o.wantErr)
				}
			}
			if q.high != tc.wantHigh {
				t.Errorf("high water = %d, want %d", q.high, tc.wantHigh)
			}
			if q.len() != tc.wantLen {
				t.Errorf("final length = %d, want %d", q.len(), tc.wantLen)
			}
			p := q.profile()
			if p.HighWater != tc.wantHigh || p.Pushes != pushes || p.Pops != pops {
				t.Errorf("profile = {high %d, pushes %d, pops %d}, want {%d, %d, %d}",
					p.HighWater, p.Pushes, p.Pops, tc.wantHigh, pushes, pops)
			}
			if p.Name != "cell1.X" || p.Cell != 1 || p.Queue != obs.QueueX {
				t.Errorf("profile identity = %q cell %d queue %v", p.Name, p.Cell, p.Queue)
			}
		})
	}
}

// TestStatsNamesHighWaterQueue runs a small machine and checks that
// Stats.MaxQueue/MaxQueueAt report the exact push-time peak and name
// the queue that reached it: three words pile up in cell 1's X queue
// because the downstream program drains only after a delay.
func TestStatsNamesHighWaterQueue(t *testing.T) {
	recv := func(r mcode.Reg) *mcode.IOOp {
		return &mcode.IOOp{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: r}
	}
	send := func(r mcode.Reg) *mcode.IOOp {
		return &mcode.IOOp{Recv: false, Dir: w2.DirR, Chan: w2.ChanX, Reg: r}
	}
	// Each cell receives 3 words then sends them: with skew 5 (two more
	// than the 3-cycle send/receive offset between the programs), all of
	// the upstream cell's sends land before the downstream cell's first
	// receive drains, so the inter-cell queue peaks at 3.
	prog := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.Straight{Instrs: []*mcode.Instr{
			{IO: []*mcode.IOOp{recv(1)}},
			{IO: []*mcode.IOOp{recv(2)}},
			{IO: []*mcode.IOOp{recv(3)}},
			{IO: []*mcode.IOOp{send(1)}},
			{IO: []*mcode.IOOp{send(2)}},
			{IO: []*mcode.IOOp{send(3)}},
		}},
	}}
	host := &hostgen.Program{
		In:  map[w2.Channel][]hostgen.Word{w2.ChanX: {{Index: 0}, {Index: 1}, {Index: 2}}},
		Out: map[w2.Channel][]int{w2.ChanX: {3, 4, 5}},
	}
	stats, err := Run(Config{
		Cells: 2, Cell: prog, IU: &mcode.IUProgram{}, Host: host,
		Skew: 5, Lead: 1, HostMem: []float64{7, 8, 9, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxQueue != 3 {
		t.Errorf("MaxQueue = %d, want 3", stats.MaxQueue)
	}
	if stats.MaxQueueAt != "cell1.X" {
		t.Errorf("MaxQueueAt = %q, want cell1.X", stats.MaxQueueAt)
	}
}

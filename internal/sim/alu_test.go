package sim

import (
	"testing"

	"warp/internal/mcode"
)

// TestAluAllCodes drives every FPU operation through a cell and checks
// value and latency.
func TestAluAllCodes(t *testing.T) {
	cases := []struct {
		code mcode.AluCode
		a, b float64
		c    float64 // third operand for select
		want float64
	}{
		{mcode.Fadd, 2, 3, 0, 5},
		{mcode.Fsub, 2, 3, 0, -1},
		{mcode.Fneg, 2, 0, 0, -2},
		{mcode.Fmul, 2, 3, 0, 6},
		{mcode.Fdiv, 6, 3, 0, 2},
		{mcode.CmpEQ, 2, 2, 0, 1},
		{mcode.CmpEQ, 2, 3, 0, 0},
		{mcode.CmpNE, 2, 3, 0, 1},
		{mcode.CmpLT, 2, 3, 0, 1},
		{mcode.CmpLE, 3, 3, 0, 1},
		{mcode.CmpGT, 2, 3, 0, 0},
		{mcode.CmpGE, 3, 3, 0, 1},
		{mcode.BoolAnd, 1, 0, 0, 0},
		{mcode.BoolAnd, 1, 2, 0, 1},
		{mcode.BoolOr, 0, 0, 0, 0},
		{mcode.BoolOr, 0, 5, 0, 1},
		{mcode.BoolNot, 0, 0, 0, 1},
		{mcode.BoolNot, 7, 0, 0, 0},
		{mcode.Sel, 1, 10, 20, 10},
		{mcode.Sel, 0, 10, 20, 20},
		{mcode.Mov, 9, 0, 0, 9},
	}
	for _, tc := range cases {
		c := &cell{}
		c.regs[1], c.regs[2], c.regs[3] = tc.a, tc.b, tc.c
		op := &mcode.AluOp{Code: tc.code, Dst: 5, Src: [3]mcode.Reg{1, 2, 3}}
		if err := c.alu(op, 100); err != nil {
			t.Fatalf("%s: %v", tc.code, err)
		}
		if len(c.pending) != 1 {
			t.Fatalf("%s: %d pending writes", tc.code, len(c.pending))
		}
		w := c.pending[0]
		if w.val != tc.want {
			t.Errorf("%s(%v,%v,%v) = %v, want %v", tc.code, tc.a, tc.b, tc.c, w.val, tc.want)
		}
		if w.land != 100+tc.code.Latency() {
			t.Errorf("%s lands at %d, want %d", tc.code, w.land, 100+tc.code.Latency())
		}
	}
}

// TestAluDivByZero is a machine fault.
func TestAluDivByZero(t *testing.T) {
	c := &cell{}
	op := &mcode.AluOp{Code: mcode.Fdiv, Dst: 5, Src: [3]mcode.Reg{1, 2}}
	if err := c.alu(op, 0); err == nil {
		t.Error("divide by zero must fault")
	}
}

// TestIUAluSemantics drives the IU's adder through the machine step.
func TestIUAluSemantics(t *testing.T) {
	iu := &mcode.IUProgram{Items: []mcode.IUItem{
		&mcode.IUStraight{Instrs: []*mcode.IUInstr{
			{Imm: &mcode.IUImm{Dst: 0, Value: 10}},
			{Alu: &mcode.IUAlu{Dst: 1, A: 0, BIsImm: true, ImmVal: 5}},
			{Alu: &mcode.IUAlu{Dst: 2, A: 1, B: 0, Sub: true}},
			{Out: [mcode.MemPorts]*mcode.IUOut{{Src: 2}}},
		}},
	}}
	// One cell popping the address into a load.
	sym := dummySym()
	cellProg := &mcode.CellProgram{Items: []mcode.CodeItem{
		&mcode.Straight{Instrs: []*mcode.Instr{
			{}, {}, {},
			{Mem: [mcode.MemPorts]*mcode.MemOp{{Store: false, Reg: 1, Addr: mcode.AddrInfo{Sym: sym}}}},
		}},
	}}
	_, err := Run(Config{
		Cells: 1, Cell: cellProg, IU: iu,
		Host: emptyHost(), Lead: 1,
	})
	// Address = (10+5) − 10 = 5, inside memory: run must succeed.
	if err != nil {
		t.Fatalf("IU arithmetic produced a bad address: %v", err)
	}
}

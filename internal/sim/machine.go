package sim

import (
	"context"
	"errors"
	"fmt"

	"warp/internal/hostgen"
	"warp/internal/mcode"
	"warp/internal/obs"
	"warp/internal/telemetry"
	"warp/internal/w2"
)

// ErrLivelock marks a run aborted by the MaxCycles guard.  Callers test
// for it with errors.Is.
var ErrLivelock = errors.New("livelocked")

// ctxCheckInterval is how often (in cycles) the run loop polls
// Config.Ctx for cancellation.  Polling every cycle would put an atomic
// load on the hot path; every 4096 cycles bounds the overrun after a
// deadline or disconnect to microseconds of simulation.
const ctxCheckInterval = 1 << 12

// Config assembles everything needed to run a compiled program on the
// simulated machine.
type Config struct {
	Cells int
	Cell  *mcode.CellProgram
	IU    *mcode.IUProgram
	Host  *hostgen.Program
	// Skew is the cycle delay between adjacent cells' start times.
	Skew int64
	// Lead is the number of cycles cell 0 starts after the IU
	// (the IU prologue plus one transfer cycle).
	Lead int64
	// HostMem is the host memory image: inputs pre-loaded, outputs
	// written during the run.
	HostMem []float64
	// MaxCycles aborts a runaway simulation (default 1<<28).  The
	// resulting error wraps ErrLivelock.
	MaxCycles int64
	// Ctx, when non-nil, is polled every few thousand cycles; once it is
	// cancelled the run aborts with an error wrapping ctx.Err(), so
	// deadlines and client disconnects stop a simulation instead of
	// waiting out the MaxCycles guard.
	Ctx context.Context
	// Recorder receives per-cycle instrumentation events (FPU issues,
	// memory references, queue push/pop with occupancy, stall
	// attribution).  nil or obs.Nop() disables event emission; the
	// per-cycle cost is then a single cached-bool branch per hook, and
	// the aggregate Stats.Obs profile is collected either way.
	Recorder obs.Recorder
	// PCStats enables exact per-µPC cycle attribution: every executed
	// instruction increments one busy/starved/bubble counter at its
	// static µprogram address (mcode.AssignPCs must have run on Cell,
	// which the compiler driver guarantees).  The counters land in
	// Stats.Obs.PC.  Off by default — the hot-path cost when off is one
	// nil check per cycle per cell.
	PCStats bool
	// Progress, when non-nil, receives a cycles-retired update at the
	// same stride the context is polled, plus one final update when the
	// run completes.  nil keeps the hot path progress-free (one branch,
	// no allocations).
	Progress obs.ProgressFunc
}

// Stats reports the outcome of a run.
type Stats struct {
	// Backend names the execution backend that produced these stats:
	// "sim" for a cycle-accurate run, "fast" for the verified dataflow
	// executor (internal/fastexec).  sim.Run leaves it empty; the
	// driver stamps it when it selects the backend.
	Backend string
	// Decision is the backend decision audit for this run: why this
	// backend, the cost model's predicted wall for each candidate, and
	// the actual wall once complete.  sim.Run leaves it nil; the driver
	// stamps it beside Backend.
	Decision *telemetry.Decision
	Cycles   int64 // total cycles until the last cell finished
	// CellFinish is the absolute cycle each cell finished at.
	CellFinish []int64
	// MaxQueue is the peak occupancy over the data queues (X and Y),
	// derived from the per-queue high-water marks in Obs.Queues.  The
	// marks are exact (taken at push time), so MaxQueue can read
	// slightly higher than the historical end-of-cycle sample when the
	// downstream cell pops in the same cycle as the push.
	MaxQueue int
	// MaxQueueAt names the queue that reached MaxQueue, identifying
	// the channel and cell boundary (e.g. "cell1.X" is the X queue
	// into cell 1, fed by cell 0).
	MaxQueueAt string
	// Sent counts words delivered to the host per channel.
	Sent map[w2.Channel]int
	// AddOps and MulOps count FPU field issues summed over all cells;
	// with per-cell active time they give the arithmetic-unit
	// utilization the paper quotes ("all the arithmetic units are
	// fully utilized in the innermost loop", §7).
	AddOps int64
	MulOps int64
	// CellActive is the total number of cell-active cycles (sum over
	// cells of finish−start).
	CellActive int64
	// Obs is the full run profile: per-cell stall attribution and
	// per-loop-depth utilization, per-queue high-water marks and
	// occupancy histograms, host backpressure.
	Obs *obs.Profile
}

type sigItem struct {
	id   int
	more bool
}

// cell is the runtime state of one Warp cell.
type cell struct {
	idx   int
	seq   *cellSeq
	start int64
	done  bool

	regs    [mcode.NumRegs]float64
	pending []regWrite
	mem     []float64
	// delayed stores become visible the cycle after issue
	stores []memWrite

	inX, inY *queue[float64]
	adr      *queue[int64]
	sig      *queue[sigItem]

	// Always-on per-cell accounting (integer increments only); the
	// totals land in Stats.Obs at the end of the run.
	addOps, mulOps, movOps int64
	nLoads, nStores        int64
	busy, starved, bubble  int64
	depth                  []obs.DepthProfile

	// pc holds the exact per-µPC counters when Config.PCStats is set;
	// nil otherwise (the account hot path tests the pointer once).
	pc *obs.PCProfile
}

type regWrite struct {
	reg  mcode.Reg
	val  float64
	land int64
}

type memWrite struct {
	addr int64
	val  float64
	land int64
}

// machine is the full simulated Warp system.
type machine struct {
	cfg       Config
	cells     []*cell
	iu        *iuSeq
	iuReg     [mcode.IUNumRegs]int64
	iuPending []iuRegWrite
	table     []int64
	tblPos    int

	hostInPos  map[w2.Channel]int
	hostOutPos map[w2.Channel]int

	now  int64
	sent map[w2.Channel]int

	// rec receives instrumentation events; trace caches
	// obs.Enabled(rec) so every hook on the cycle loop is one branch
	// when tracing is off.
	rec   obs.Recorder
	trace bool

	hostStallX, hostStallY int64
}

type iuRegWrite struct {
	reg  mcode.IUReg
	val  int64
	land int64
}

// Run executes the configuration to completion and returns statistics.
// Any violation of the machine's static contracts — queue underflow or
// overflow, a loop signal that contradicts the sequencer, a host stream
// exhausted early — is an error.
func Run(cfg Config) (*Stats, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("sim: need at least one cell")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 28
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.Nop()
	}
	m := &machine{
		cfg:        cfg,
		iu:         newIUSeq(cfg.IU),
		table:      cfg.IU.Table,
		hostInPos:  map[w2.Channel]int{},
		hostOutPos: map[w2.Channel]int{},
		sent:       map[w2.Channel]int{},
		rec:        rec,
		trace:      obs.Enabled(rec),
	}
	for i := 0; i < cfg.Cells; i++ {
		c := &cell{
			idx:   i,
			seq:   newCellSeq(cfg.Cell),
			start: cfg.Lead + int64(i)*cfg.Skew,
			mem:   make([]float64, mcode.MemWords),
			inX:   newQueue[float64](fmt.Sprintf("cell%d.X", i), i, obs.QueueX, mcode.QueueDepth),
			inY:   newQueue[float64](fmt.Sprintf("cell%d.Y", i), i, obs.QueueY, mcode.QueueDepth),
			adr:   newQueue[int64](fmt.Sprintf("cell%d.Adr", i), i, obs.QueueAdr, mcode.QueueDepth),
			sig:   newQueue[sigItem](fmt.Sprintf("cell%d.Sig", i), i, obs.NumQueues, mcode.QueueDepth),
			depth: make([]obs.DepthProfile, 4),
		}
		if cfg.PCStats {
			n := cfg.Cell.NumInstrs()
			c.pc = &obs.PCProfile{
				Busy:    make([]int64, n),
				Starved: make([]int64, n),
				Bubble:  make([]int64, n),
			}
		}
		m.cells = append(m.cells, c)
	}
	if m.trace {
		m.rec.RunStart(cfg.Cells, cfg.Skew, cfg.Lead)
	}

	stats := &Stats{CellFinish: make([]int64, cfg.Cells), Sent: m.sent}
	for {
		allDone := true
		for _, c := range m.cells {
			if !c.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if m.now > cfg.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded %d cycles; the machine is %w", cfg.MaxCycles, ErrLivelock)
		}
		if m.now%ctxCheckInterval == 0 {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, fmt.Errorf("sim: run aborted at cycle %d: %w", m.now, err)
				}
			}
			if cfg.Progress != nil && m.now > 0 {
				cfg.Progress(obs.ProgressUpdate{Cycles: m.now})
			}
		}
		if err := m.cycle(stats); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", m.now, err)
		}
		m.now++
	}
	stats.Cycles = m.now
	if cfg.Progress != nil {
		cfg.Progress(obs.ProgressUpdate{Cycles: m.now, Done: true})
	}
	if m.trace {
		m.rec.RunEnd(m.now)
	}
	m.fillStats(stats)
	return stats, nil
}

// fillStats aggregates the per-cell and per-queue accounting into the
// run profile and the compatibility counters.
func (m *machine) fillStats(stats *Stats) {
	prof := &obs.Profile{
		Cells:      m.cfg.Cells,
		Cycles:     stats.Cycles,
		Skew:       m.cfg.Skew,
		Lead:       m.cfg.Lead,
		Cell:       make([]obs.CellProfile, m.cfg.Cells),
		HostStallX: m.hostStallX,
		HostStallY: m.hostStallY,
	}
	last := stats.Cycles - 1 // cycle the last cell retired on
	for _, c := range m.cells {
		finish := stats.CellFinish[c.idx]
		stats.CellActive += finish - c.start
		stats.AddOps += c.addOps
		stats.MulOps += c.mulOps
		prof.Cell[c.idx] = obs.CellProfile{
			Start:  c.start,
			Finish: finish,
			AddOps: c.addOps, MulOps: c.mulOps, MovOps: c.movOps,
			Loads: c.nLoads, Stores: c.nStores,
			Busy: c.busy, Starved: c.starved, Bubble: c.bubble,
			SkewLead: c.start - m.cells[0].start,
			Drain:    last - finish,
			Depth:    c.depth,
		}
		prof.Queues = append(prof.Queues, c.inX.profile(), c.inY.profile(), c.adr.profile())
		if c.pc != nil {
			prof.PC = append(prof.PC, *c.pc)
		}
	}
	stats.Obs = prof
	stats.MaxQueue, stats.MaxQueueAt = prof.MaxQueue()
}

// cycle executes one global clock tick: the IU, the host, then every
// cell left to right, so that a word pushed upstream is poppable
// downstream within the same cycle.
func (m *machine) cycle(stats *Stats) error {
	if err := m.stepIU(); err != nil {
		return err
	}
	if err := m.stepHostIn(); err != nil {
		return err
	}
	for _, c := range m.cells {
		if err := m.stepCell(c, stats); err != nil {
			return err
		}
	}
	m.trackQueues()
	return nil
}

// trackQueues samples end-of-cycle occupancy into each tracked queue's
// histogram (X, Y and Adr; the Sig queue is control plumbing).  The
// high-water marks are maintained exactly at push time in queue.push.
func (m *machine) trackQueues() {
	for _, c := range m.cells {
		c.inX.hist[len(c.inX.items)]++
		c.inY.hist[len(c.inY.items)]++
		c.adr.hist[len(c.adr.items)]++
	}
}

// recPush and recPop emit queue events when tracing is enabled; they
// are the only place the occupancy leaves the queue on the hot path.
func recPush[T any](m *machine, q *queue[T]) {
	if m.trace && q.kind < obs.NumQueues {
		m.rec.QueuePush(m.now, q.cell, q.kind, len(q.items))
	}
}

func recPop[T any](m *machine, q *queue[T]) {
	if m.trace && q.kind < obs.NumQueues {
		m.rec.QueuePop(m.now, q.cell, q.kind, len(q.items))
	}
}

// stepIU executes one IU microinstruction.
func (m *machine) stepIU() error {
	// Apply pending register writes landing this cycle.
	kept := m.iuPending[:0]
	for _, w := range m.iuPending {
		if w.land <= m.now {
			m.iuReg[w.reg] = w.val
		} else {
			kept = append(kept, w)
		}
	}
	m.iuPending = kept

	in, iter, done := m.iu.step()
	if done {
		return nil
	}
	cell0 := m.cells[0]
	for _, out := range in.Out {
		if out == nil {
			continue
		}
		var v int64
		if out.FromTable {
			if m.tblPos >= len(m.table) {
				return fmt.Errorf("sim: IU table read past its %d entries", len(m.table))
			}
			v = m.table[m.tblPos]
			m.tblPos++
		} else {
			v = m.iuReg[out.Src]
		}
		if err := cell0.adr.push(v); err != nil {
			return err
		}
		recPush(m, cell0.adr)
	}
	if in.Sig != nil {
		more := in.Sig.Continue
		if !in.Sig.Static {
			// The termination decision the IU's counter work pays for
			// (§6.3.1): cell iteration iter·M + Copy of CellTrips.
			more = iter*in.Sig.M+in.Sig.Copy < in.Sig.CellTrips-1
		}
		if err := cell0.sig.push(sigItem{id: in.Sig.LoopID, more: more}); err != nil {
			return err
		}
	}
	if in.Imm != nil {
		m.iuPending = append(m.iuPending, iuRegWrite{reg: in.Imm.Dst, val: in.Imm.Value, land: m.now + 1})
	}
	if in.Alu != nil {
		a := m.iuReg[in.Alu.A]
		b := in.Alu.ImmVal
		if !in.Alu.BIsImm {
			b = m.iuReg[in.Alu.B]
		}
		v := a + b
		if in.Alu.Sub {
			v = a - b
		}
		m.iuPending = append(m.iuPending, iuRegWrite{reg: in.Alu.Dst, val: v, land: m.now + 1})
	}
	return nil
}

// stepHostIn feeds at most one word per channel per cycle into cell 0.
func (m *machine) stepHostIn() error {
	c0 := m.cells[0]
	for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
		seq := m.cfg.Host.In[ch]
		pos := m.hostInPos[ch]
		if pos >= len(seq) {
			continue
		}
		q := c0.inX
		if ch == w2.ChanY {
			q = c0.inY
		}
		if q.len() >= mcode.QueueDepth {
			// Backpressure: the host waits.  Attribute the queue-full
			// stall to the consuming cell 0.
			if ch == w2.ChanX {
				m.hostStallX++
			} else {
				m.hostStallY++
			}
			if m.trace {
				m.rec.Stall(m.now, 0, obs.StallQueueFull)
			}
			continue
		}
		w := seq[pos]
		v := w.Value
		if !w.Literal {
			if w.Index < 0 || w.Index >= len(m.cfg.HostMem) {
				return fmt.Errorf("sim: host input index %d outside host memory of %d words", w.Index, len(m.cfg.HostMem))
			}
			v = m.cfg.HostMem[w.Index]
		}
		if err := q.push(v); err != nil {
			return err
		}
		recPush(m, q)
		m.hostInPos[ch] = pos + 1
	}
	return nil
}

// hostCollect receives one word from the last cell on a channel.
func (m *machine) hostCollect(ch w2.Channel, v float64) error {
	seq := m.cfg.Host.Out[ch]
	pos := m.hostOutPos[ch]
	if pos >= len(seq) {
		return fmt.Errorf("sim: the last cell sent more words on %s than the host program expects (%d)", ch, len(seq))
	}
	if idx := seq[pos]; idx != hostgen.Discard {
		if idx < 0 || idx >= len(m.cfg.HostMem) {
			return fmt.Errorf("sim: host output index %d outside host memory of %d words", idx, len(m.cfg.HostMem))
		}
		m.cfg.HostMem[idx] = v
	}
	m.hostOutPos[ch] = pos + 1
	m.sent[ch]++
	return nil
}

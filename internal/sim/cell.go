package sim

import (
	"fmt"

	"warp/internal/mcode"
	"warp/internal/obs"
	"warp/internal/w2"
)

// stepCell executes one cycle of one cell.
func (m *machine) stepCell(c *cell, stats *Stats) error {
	if c.done || m.now < c.start {
		// The cell is idle: still waiting out its skew delay, or done
		// and waiting for the rest of the array to drain.
		if m.trace {
			if c.done {
				m.rec.Stall(m.now, c.idx, obs.StallDrain)
			} else {
				m.rec.Stall(m.now, c.idx, obs.StallSkewLead)
			}
		}
		return nil
	}
	if m.trace && m.now == c.start {
		m.rec.CellStart(m.now, c.idx)
	}

	// Register writes and memory stores landing this cycle become
	// visible before any read.
	keptR := c.pending[:0]
	for _, w := range c.pending {
		if w.land <= m.now {
			c.regs[w.reg] = w.val
		} else {
			keptR = append(keptR, w)
		}
	}
	c.pending = keptR
	keptM := c.stores[:0]
	for _, w := range c.stores {
		if w.land <= m.now {
			c.mem[w.addr] = w.val
		} else {
			keptM = append(keptM, w)
		}
	}
	c.stores = keptM

	in, depth, ends, done := c.seq.step()
	if done {
		c.done = true
		stats.CellFinish[c.idx] = m.now
		if m.trace {
			m.rec.CellFinish(m.now, c.idx)
		}
		return nil
	}

	c.account(m, in, depth)
	if err := m.execCellInstr(c, in); err != nil {
		return fmt.Errorf("cell %d: %w", c.idx, err)
	}

	// Loop boundaries: pop one IU control signal per boundary,
	// innermost first, and forward it down the array.
	for _, end := range ends {
		s, err := c.sig.pop()
		if err != nil {
			return fmt.Errorf("cell %d, loop L%d: %w", c.idx, end.id, err)
		}
		if s.id != end.id || s.more != end.more {
			return fmt.Errorf("cell %d: loop signal mismatch: sequencer at L%d(more=%v), IU sent L%d(more=%v)",
				c.idx, end.id, end.more, s.id, s.more)
		}
		if c.idx+1 < len(m.cells) {
			if err := m.cells[c.idx+1].sig.push(s); err != nil {
				return err
			}
		}
	}

	if c.seq.done() {
		c.done = true
		stats.CellFinish[c.idx] = m.now
		if m.trace {
			m.rec.CellFinish(m.now, c.idx)
		}
	}
	return nil
}

// account attributes the cycle: a busy cycle issues at least one field;
// a scheduled nop is starvation when both data queues are empty (the
// upstream producer has not delivered) and a schedule bubble otherwise.
// FPU issues are also attributed to the instruction's loop depth, which
// is what lets the utilization report isolate the innermost loop (§7).
func (c *cell) account(m *machine, in *mcode.Instr, depth int) {
	for depth >= len(c.depth) {
		c.depth = append(c.depth, obs.DepthProfile{})
	}
	dp := &c.depth[depth]
	dp.Cycles++
	if in.Add != nil {
		c.addOps++
		dp.AddOps++
	}
	if in.Mul != nil {
		c.mulOps++
		dp.MulOps++
	}
	if in.Mov != nil {
		c.movOps++
	}
	if in.Empty() {
		if c.inX.len() == 0 && c.inY.len() == 0 {
			c.starved++
			if c.pc != nil {
				c.pc.Starved[in.PC]++
			}
			if m.trace {
				m.rec.Stall(m.now, c.idx, obs.StallQueueEmpty)
			}
		} else {
			c.bubble++
			if c.pc != nil {
				c.pc.Bubble[in.PC]++
			}
			if m.trace {
				m.rec.Stall(m.now, c.idx, obs.StallBubble)
			}
		}
		return
	}
	c.busy++
	if c.pc != nil {
		c.pc.Busy[in.PC]++
	}
	if m.trace {
		if in.Add != nil {
			m.rec.Issue(m.now, c.idx, obs.UnitAdd)
		}
		if in.Mul != nil {
			m.rec.Issue(m.now, c.idx, obs.UnitMul)
		}
		if in.Mov != nil {
			m.rec.Issue(m.now, c.idx, obs.UnitMov)
		}
	}
}

func (m *machine) execCellInstr(c *cell, in *mcode.Instr) error {
	// Queue operations.
	for _, io := range in.IO {
		if io.Recv {
			if io.Dir != w2.DirL {
				return fmt.Errorf("sim: receive from the right is not supported (rightward flow only)")
			}
			q := c.inX
			if io.Chan == w2.ChanY {
				q = c.inY
			}
			v, err := q.pop()
			if err != nil {
				return err
			}
			recPop(m, q)
			c.pending = append(c.pending, regWrite{reg: io.Reg, val: v, land: m.now + 1})
		} else {
			if io.Dir != w2.DirR {
				return fmt.Errorf("sim: send to the left is not supported (rightward flow only)")
			}
			v := c.regs[io.Reg]
			if c.idx+1 < len(m.cells) {
				next := m.cells[c.idx+1]
				q := next.inX
				if io.Chan == w2.ChanY {
					q = next.inY
				}
				if err := q.push(v); err != nil {
					return err
				}
				recPush(m, q)
			} else if err := m.hostCollect(io.Chan, v); err != nil {
				return err
			}
		}
	}

	// Memory references: addresses pop from the Adr queue and are
	// forwarded systolically to the next cell.
	for port, mo := range in.Mem {
		if mo == nil {
			continue
		}
		addr, err := c.adr.pop()
		if err != nil {
			return err
		}
		recPop(m, c.adr)
		if c.idx+1 < len(m.cells) {
			next := m.cells[c.idx+1]
			if err := next.adr.push(addr); err != nil {
				return err
			}
			recPush(m, next.adr)
		}
		if addr < 0 || addr >= int64(len(c.mem)) {
			return fmt.Errorf("sim: address %d outside the %d-word cell memory (IU generated a bad address for %s)",
				addr, len(c.mem), mo.Addr)
		}
		if mo.Store {
			c.nStores++
			c.stores = append(c.stores, memWrite{addr: addr, val: c.regs[mo.Reg], land: m.now + 1})
		} else {
			c.nLoads++
			c.pending = append(c.pending, regWrite{reg: mo.Reg, val: c.mem[addr], land: m.now + 1})
		}
		if m.trace {
			m.rec.MemRef(m.now, c.idx, port, addr, mo.Store)
		}
	}

	// FPU fields (counted in account, which ran before us).
	if in.Add != nil {
		if err := c.alu(in.Add, m.now); err != nil {
			return err
		}
	}
	if in.Mul != nil {
		if err := c.alu(in.Mul, m.now); err != nil {
			return err
		}
	}
	if in.Mov != nil {
		if err := c.alu(in.Mov, m.now); err != nil {
			return err
		}
	}

	if in.Lit != nil {
		c.pending = append(c.pending, regWrite{reg: in.Lit.Dst, val: in.Lit.Value, land: m.now + 1})
	}
	return nil
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// alu evaluates one FPU field, scheduling the result register write at
// the unit's latency.
func (c *cell) alu(op *mcode.AluOp, now int64) error {
	a := c.regs[op.Src[0]]
	b := c.regs[op.Src[1]]
	var v float64
	switch op.Code {
	case mcode.Fadd:
		v = a + b
	case mcode.Fsub:
		v = a - b
	case mcode.Fneg:
		v = -a
	case mcode.Fmul:
		v = a * b
	case mcode.Fdiv:
		if b == 0 {
			return fmt.Errorf("sim: floating divide by zero")
		}
		v = a / b
	case mcode.CmpEQ:
		v = boolToF(a == b)
	case mcode.CmpNE:
		v = boolToF(a != b)
	case mcode.CmpLT:
		v = boolToF(a < b)
	case mcode.CmpLE:
		v = boolToF(a <= b)
	case mcode.CmpGT:
		v = boolToF(a > b)
	case mcode.CmpGE:
		v = boolToF(a >= b)
	case mcode.BoolAnd:
		v = boolToF(a != 0 && b != 0)
	case mcode.BoolOr:
		v = boolToF(a != 0 || b != 0)
	case mcode.BoolNot:
		v = boolToF(a == 0)
	case mcode.Sel:
		if a != 0 {
			v = b
		} else {
			v = c.regs[op.Src[2]]
		}
	case mcode.Mov:
		v = a
	default:
		return fmt.Errorf("sim: unknown ALU code %v", op.Code)
	}
	c.pending = append(c.pending, regWrite{reg: op.Dst, val: v, land: now + op.Code.Latency()})
	return nil
}

package fastexec_test

// Differential contract tests: for every workload the compiler
// produces, the fast executor must match the cycle-accurate simulator
// bit for bit — identical output words, identical modeled cycle count,
// identical operation totals.  These tests are the local half of the
// verifier→fastexec contract; the driver's fuzz harness extends the
// same comparison over random programs.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"warp/internal/driver"
	"warp/internal/fastexec"
	"warp/internal/interp"
	"warp/internal/sim"
	"warp/internal/workloads"
)

// planFor compiles W2 source and builds the fast-execution plan from
// the same artifacts the simulator would consume.
func planFor(t *testing.T, src string, opts driver.Options) (*driver.Compiled, *fastexec.Plan) {
	t.Helper()
	c, err := driver.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	plan, err := fastexec.Compile(fastexec.Program{
		Cells: c.Cells,
		Cell:  c.Cell,
		IU:    c.IU,
		Host:  c.Host,
		Skew:  c.Skew,
		Lead:  c.IUGen.Prologue + 1,
	})
	if err != nil {
		t.Fatalf("fastexec compile: %v", err)
	}
	return c, plan
}

// runBoth executes the program on both backends over independent host
// memory images and asserts bit-identical results.
func runBoth(t *testing.T, c *driver.Compiled, plan *fastexec.Plan, inputs map[string][]float64) {
	t.Helper()
	simMem, err := interp.BuildHostMem(c.Info, inputs)
	if err != nil {
		t.Fatalf("host mem: %v", err)
	}
	fastMem := append([]float64(nil), simMem...)

	simStats, err := sim.Run(sim.Config{
		Cells: c.Cells, Cell: c.Cell, IU: c.IU, Host: c.Host,
		Skew: c.Skew, Lead: c.IUGen.Prologue + 1, HostMem: simMem,
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	res, err := plan.Execute(fastMem, fastexec.ExecConfig{})
	if err != nil {
		t.Fatalf("fastexec: %v", err)
	}

	if res.Cycles != simStats.Cycles {
		t.Errorf("cycles: fast %d, sim %d", res.Cycles, simStats.Cycles)
	}
	if res.AddOps != simStats.AddOps || res.MulOps != simStats.MulOps {
		t.Errorf("FPU issues: fast %d/%d, sim %d/%d", res.AddOps, res.MulOps, simStats.AddOps, simStats.MulOps)
	}
	if res.CellActive != simStats.CellActive {
		t.Errorf("cell-active: fast %d, sim %d", res.CellActive, simStats.CellActive)
	}
	for i := range simStats.CellFinish {
		if res.CellFinish[i] != simStats.CellFinish[i] {
			t.Errorf("cell %d finish: fast %d, sim %d", i, res.CellFinish[i], simStats.CellFinish[i])
		}
	}
	for ch, n := range simStats.Sent {
		if res.Sent[ch] != n {
			t.Errorf("sent on %s: fast %d, sim %d", ch, res.Sent[ch], n)
		}
	}
	for i := range simMem {
		if math.Float64bits(simMem[i]) != math.Float64bits(fastMem[i]) {
			t.Fatalf("host word %d diverges: fast %v (bits %x), sim %v (bits %x)",
				i, fastMem[i], math.Float64bits(fastMem[i]), simMem[i], math.Float64bits(simMem[i]))
		}
	}
}

func seededInputs(c *driver.Compiled, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := map[string][]float64{}
	for _, sym := range c.Info.HostSyms {
		if sym.Out {
			continue
		}
		vals := make([]float64, sym.Type.Size())
		for i := range vals {
			// Quarter steps keep every intermediate exactly representable
			// enough to make bit-comparison meaningful rather than lucky.
			vals[i] = float64(rng.Intn(64)-32) / 4
		}
		in[sym.Name] = vals
	}
	return in
}

var workloadCases = []struct {
	name string
	src  string
}{
	{"polynomial", workloads.Polynomial(10, 40)},
	{"conv1d", workloads.Conv1D(9, 48)},
	{"matmul8", workloads.Matmul(8)},
	{"binop", workloads.Binop(16, 8)},
	{"colorseg", workloads.ColorSeg(16, 8, 4)},
	{"mandelbrot", workloads.Mandelbrot(64, 4)},
	{"fft", workloads.FFT(64)},
}

// TestMatchesSimulator is the core bit-identity sweep: every workload,
// plain and pipelined, both backends, compared word for word.
func TestMatchesSimulator(t *testing.T) {
	for _, tc := range workloadCases {
		for _, opts := range []driver.Options{{}, {Pipeline: true}, {NoOptimize: true}} {
			name := tc.name
			if opts.Pipeline {
				name += "-pipelined"
			}
			if opts.NoOptimize {
				name += "-noopt"
			}
			t.Run(name, func(t *testing.T) {
				c, plan := planFor(t, tc.src, opts)
				runBoth(t, c, plan, seededInputs(c, 1))
			})
		}
	}
}

// TestMatchesSimulatorRandomPrograms extends the bit-identity contract
// over the same random-program generator the verifier fuzz harness
// uses.
func TestMatchesSimulatorRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		src, inputs := workloads.RandomProgram(rng)
		for _, opts := range []driver.Options{{}, {Pipeline: true}} {
			c, plan := planFor(t, src, opts)
			runBoth(t, c, plan, inputs)
		}
	}
}

// TestModeledCyclesClosedForm pins the closed-form count against the
// compiled program's own cycle arithmetic.
func TestModeledCyclesClosedForm(t *testing.T) {
	c, plan := planFor(t, workloads.Matmul(8), driver.Options{})
	want := c.IUGen.Prologue + 1 + int64(c.Cells-1)*c.Skew + c.Cell.Cycles()
	if plan.Cycles() != want {
		t.Fatalf("modeled cycles %d, closed form %d", plan.Cycles(), want)
	}
	if plan.Ops() <= 0 || int64(plan.Ops()) > c.Cell.Cycles() {
		t.Fatalf("trace length %d outside (0, %d]", plan.Ops(), c.Cell.Cycles())
	}
}

// TestConcurrentExecute shares one plan across goroutines; run under
// -race this proves Execute never mutates the plan.
func TestConcurrentExecute(t *testing.T) {
	c, plan := planFor(t, workloads.Polynomial(10, 40), driver.Options{})
	inputs := seededInputs(c, 3)
	baseMem, err := interp.BuildHostMem(c.Info, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := plan.Execute(append([]float64(nil), baseMem...), fastexec.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mem := append([]float64(nil), baseMem...)
			res, err := plan.Execute(mem, fastexec.ExecConfig{})
			if err != nil {
				t.Errorf("concurrent execute: %v", err)
				return
			}
			if res.Cycles != ref.Cycles {
				t.Errorf("concurrent cycles %d, want %d", res.Cycles, ref.Cycles)
			}
		}()
	}
	wg.Wait()
}

// TestContextCancelled proves an expired deadline aborts the executor
// at its bounded stride, before any work retires.
func TestContextCancelled(t *testing.T) {
	c, plan := planFor(t, workloads.Matmul(8), driver.Options{})
	mem, err := interp.BuildHostMem(c.Info, seededInputs(c, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.Execute(mem, fastexec.ExecConfig{Ctx: ctx}); err == nil {
		t.Fatal("cancelled context did not abort the run")
	} else if ctx.Err() == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("abort error %v does not wrap %v", err, context.Canceled)
	}
}

// TestLivelockParity: a MaxCycles bound the simulator would trip must
// trip the fast backend too, with the same sentinel.
func TestLivelockParity(t *testing.T) {
	c, plan := planFor(t, workloads.Matmul(8), driver.Options{})
	mem, err := interp.BuildHostMem(c.Info, seededInputs(c, 5))
	if err != nil {
		t.Fatal(err)
	}
	guard := plan.Cycles() - 10
	if _, err := plan.Execute(mem, fastexec.ExecConfig{MaxCycles: guard}); !errors.Is(err, sim.ErrLivelock) {
		t.Fatalf("guard %d: error %v does not wrap sim.ErrLivelock", guard, err)
	}
	// One cycle of slack past the modeled count must run clean, exactly
	// like the simulator's m.now > MaxCycles check.
	if _, err := plan.Execute(mem, fastexec.ExecConfig{MaxCycles: plan.Cycles() - 1}); err != nil {
		t.Fatalf("guard at cycles-1: %v", err)
	}
}

// Package fastexec executes compiled Warp programs at dataflow speed,
// without cycle-accurate lock-step simulation.
//
// The cycle-accurate simulator (internal/sim) advances the whole
// machine one clock tick at a time: every cell is stepped every cycle,
// scheduled nops included, pending-write lists are scanned, queues are
// tracked.  For a *verified* program all of that re-derives guarantees
// the static verifier has already proven — queues never under- or
// overflow, every address and loop signal arrives on time, the machine
// never stalls.  This package exploits those proofs: it compiles the
// representative cell's microcode into a flat trace of the non-nop
// microinstructions with every memory address and loop-control signal
// resolved ahead of time (the IU microprogram is emulated exactly
// once), then replays the trace per cell directly over host slices.
//
// The replay is bit-exact with the simulator:
//
//   - Writes land late exactly as in hardware: receives, loads, moves
//     and literals become visible one cycle after issue, FPU results
//     after mcode.FPULatency cycles.  A small ring keyed by landing
//     cycle applies them in (landing cycle, issue order) — the same
//     order the simulator's pending-write scan produces, including
//     same-cycle write-after-write resolution.
//   - Cells execute sequentially left to right.  Data flows rightward
//     only (the compiler enforces this), so cell i's entire input
//     streams are known once cell i-1 has run; FIFO pop order is
//     preserved by construction.
//   - The host streams follow hostgen exactly: cell 0's receives
//     resolve input words lazily against host memory (semantic analysis
//     guarantees input and output regions never alias), the last cell's
//     sends store through the output sequence, honoring Discard.
//
// Cycle counts are not measured but *modeled*, in closed form: cell i
// starts at Lead + i·Skew and retires one microinstruction per cycle
// (the machine is statically scheduled and a verified program never
// stalls), so the run takes Lead + (Cells-1)·Skew + CellCycles cycles —
// exactly the count the simulator reports.
//
// The package trusts nothing silently: trip counts, stream lengths,
// address bounds and loop-signal consistency are all checked while the
// trace is built, and a program that cannot be compiled into a trace
// (oversized, or violating a build-time contract) is reported as an
// error so the caller can fall back to the simulator.
package fastexec

import (
	"context"
	"fmt"

	"warp/internal/hostgen"
	"warp/internal/mcode"
	"warp/internal/obs"
	"warp/internal/sim"
	"warp/internal/w2"
)

// maxTraceCycles caps the unrolled trace (and the IU emulation) so a
// pathological trip-count product cannot exhaust memory building a
// plan; oversized programs are compile errors and run on the simulator.
const maxTraceCycles = 1 << 22

// ctxCheckInterval is how often (in executed trace operations) the
// executor polls ExecConfig.Ctx, mirroring the simulator's bounded
// cancellation stride.
const ctxCheckInterval = 1 << 12

const (
	ringSlots = mcode.FPULatency + 1 // landing cycles in flight are distinct mod this
	ringSpan  = mcode.FPULatency     // no write lands more than this far ahead
)

// Program is the static machine configuration a plan is compiled from —
// the same artifacts the simulator consumes.
type Program struct {
	Cells int
	Cell  *mcode.CellProgram
	IU    *mcode.IUProgram
	Host  *hostgen.Program
	// Skew is the cycle delay between adjacent cells' start times.
	Skew int64
	// Lead is the number of cycles cell 0 starts after the IU.
	Lead int64
}

// ioStep is one pre-resolved queue-port operation.
type ioStep struct {
	recv  bool
	chanY bool
	reg   mcode.Reg
}

// memStep is one pre-resolved memory-port operation: the address the IU
// would have streamed is already bound and bounds-checked.
type memStep struct {
	valid bool
	store bool
	reg   mcode.Reg
	addr  int32
}

// op is one non-nop microinstruction of the trace, stamped with its
// cell-local issue cycle.
type op struct {
	cycle int64
	add   *mcode.AluOp
	mul   *mcode.AluOp
	mov   *mcode.AluOp
	lit   *mcode.LitOp
	mem   [mcode.MemPorts]memStep
	io    []ioStep
}

// Plan is a compiled execution plan.  It is immutable after Compile and
// safe for concurrent Execute calls.
type Plan struct {
	cells      int
	skew, lead int64
	cellCycles int64
	cycles     int64 // modeled machine time, closed form
	ops        []op
	host       *hostgen.Program

	// Static per-cell dynamic-operation counts over one full trace.
	addOps, mulOps, movOps int64
	loads, stores          int64
	recvX, recvY           int
	sendX, sendY           int
}

// Cycles returns the modeled machine time of a run: the cycle count the
// cycle-accurate simulator would report.
func (p *Plan) Cycles() int64 { return p.cycles }

// Ops returns the trace length: dynamic non-nop microinstructions per
// cell.
func (p *Plan) Ops() int { return len(p.ops) }

// Compile builds an execution plan: it emulates the IU microprogram
// once to materialize the address and loop-signal streams, then unrolls
// the cell microprogram into a flat trace with every address resolved
// and every loop signal checked against the sequencer.  Programs the
// trace cannot represent (oversized, non-positive trip counts, stream
// inconsistencies) fail with an error; callers fall back to the
// simulator.
func Compile(p Program) (*Plan, error) {
	if p.Cells < 1 {
		return nil, fmt.Errorf("fastexec: need at least one cell")
	}
	if p.Cell == nil || p.IU == nil || p.Host == nil {
		return nil, fmt.Errorf("fastexec: incomplete program (cell, IU and host programs are all required)")
	}
	cellCycles := p.Cell.Cycles()
	if cellCycles > maxTraceCycles {
		return nil, fmt.Errorf("fastexec: cell program unrolls to %d cycles, over the %d-cycle trace cap", cellCycles, maxTraceCycles)
	}
	if iuCycles := p.IU.Cycles(); iuCycles > maxTraceCycles {
		return nil, fmt.Errorf("fastexec: IU program unrolls to %d cycles, over the %d-cycle trace cap", iuCycles, maxTraceCycles)
	}
	adr, sigs, err := emulateIU(p.IU)
	if err != nil {
		return nil, err
	}
	b := &builder{adr: adr, sigs: sigs}
	if err := b.walk(p.Cell.Items); err != nil {
		return nil, err
	}

	plan := &Plan{
		cells:      p.Cells,
		skew:       p.Skew,
		lead:       p.Lead,
		cellCycles: cellCycles,
		ops:        b.ops,
		host:       p.Host,
		addOps:     b.addOps, mulOps: b.mulOps, movOps: b.movOps,
		loads: b.loads, stores: b.stores,
		recvX: b.recvX, recvY: b.recvY,
		sendX: b.sendX, sendY: b.sendY,
	}
	// The last cell finishes at Lead + (Cells-1)·Skew + CellCycles - 1;
	// the simulator's reported count is one past that.  An empty cell
	// program still costs its start cycle.
	plan.cycles = p.Lead + int64(p.Cells-1)*p.Skew + cellCycles
	if cellCycles == 0 {
		plan.cycles++
	}

	// Host-stream consistency: cell 0 must not drain the input streams
	// dry, and the last cell's sends must fit the output sequences.
	// (Verified programs satisfy both; the checks keep an unverified
	// explicit fast run honest.)
	for ch, want := range map[w2.Channel]int{w2.ChanX: b.recvX, w2.ChanY: b.recvY} {
		if have := len(p.Host.In[ch]); have < want {
			return nil, fmt.Errorf("fastexec: cell 0 receives %d words on %s but the host program supplies %d", want, ch, have)
		}
	}
	for ch, want := range map[w2.Channel]int{w2.ChanX: b.sendX, w2.ChanY: b.sendY} {
		if have := len(p.Host.Out[ch]); want > have {
			return nil, fmt.Errorf("fastexec: the last cell sends %d words on %s but the host program expects %d", want, ch, have)
		}
	}
	return plan, nil
}

// sigRec is one loop-control signal the IU emits.
type sigRec struct {
	id   int
	more bool
}

// emulateIU runs the IU microprogram to completion, sequentially,
// producing the full address stream and loop-signal stream.  The IU
// issues one instruction per cycle and its register writes land the
// next cycle, so applying each instruction's writes after its reads is
// exactly the simulator's pending-write semantics; a same-register
// immediate+ALU pair resolves to the ALU, which the simulator applies
// last.
func emulateIU(p *mcode.IUProgram) (adr []int64, sigs []sigRec, err error) {
	var regs [mcode.IUNumRegs]int64
	tblPos := 0
	step := func(in *mcode.IUInstr, iter int64) error {
		for _, out := range in.Out {
			if out == nil {
				continue
			}
			var v int64
			if out.FromTable {
				if tblPos >= len(p.Table) {
					return fmt.Errorf("fastexec: IU table read past its %d entries", len(p.Table))
				}
				v = p.Table[tblPos]
				tblPos++
			} else {
				v = regs[out.Src]
			}
			adr = append(adr, v)
		}
		if in.Sig != nil {
			more := in.Sig.Continue
			if !in.Sig.Static {
				more = iter*in.Sig.M+in.Sig.Copy < in.Sig.CellTrips-1
			}
			sigs = append(sigs, sigRec{id: in.Sig.LoopID, more: more})
		}
		var aluV int64
		if in.Alu != nil { // reads before any of this cycle's writes
			a := regs[in.Alu.A]
			b := in.Alu.ImmVal
			if !in.Alu.BIsImm {
				b = regs[in.Alu.B]
			}
			if in.Alu.Sub {
				aluV = a - b
			} else {
				aluV = a + b
			}
		}
		if in.Imm != nil {
			regs[in.Imm.Dst] = in.Imm.Value
		}
		if in.Alu != nil {
			regs[in.Alu.Dst] = aluV
		}
		return nil
	}
	var walk func(items []mcode.IUItem, iter int64) error
	walk = func(items []mcode.IUItem, iter int64) error {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.IUStraight:
				for _, in := range it.Instrs {
					if err := step(in, iter); err != nil {
						return err
					}
				}
			case *mcode.IULoop:
				// The sequencer's loops are do-while: a non-positive trip
				// count still executes once there, which this unrolled walk
				// does not model.
				if it.Trips < 1 {
					return fmt.Errorf("fastexec: IU loop L%d has trip count %d", it.ID, it.Trips)
				}
				for k := int64(0); k < it.Trips; k++ {
					if err := walk(it.Body, k); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walk(p.Items, 0); err != nil {
		return nil, nil, err
	}
	return adr, sigs, nil
}

// builder unrolls the cell microprogram into the trace, consuming the
// IU streams in the exact order the hardware would pop them.
type builder struct {
	adr    []int64
	adrPos int
	sigs   []sigRec
	sigPos int

	ops []op
	t   int64 // cell-local cycle of the next instruction

	addOps, mulOps, movOps int64
	loads, stores          int64
	recvX, recvY           int
	sendX, sendY           int
}

func (b *builder) walk(items []mcode.CodeItem) error {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			for _, in := range it.Instrs {
				if err := b.instr(in); err != nil {
					return err
				}
			}
		case *mcode.LoopItem:
			if it.Trips < 1 {
				return fmt.Errorf("fastexec: loop L%d has trip count %d", it.ID, it.Trips)
			}
			if it.Cycles() == 0 {
				return fmt.Errorf("fastexec: loop L%d has an empty body", it.ID)
			}
			for k := int64(0); k < it.Trips; k++ {
				if err := b.walk(it.Body); err != nil {
					return err
				}
				// One IU control signal is consumed per loop boundary,
				// innermost first — the recursion returns from inner loops
				// before reaching this point, matching the sequencer.
				if err := b.loopEnd(it.ID, k+1 < it.Trips); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (b *builder) loopEnd(id int, more bool) error {
	if b.sigPos >= len(b.sigs) {
		return fmt.Errorf("fastexec: the IU signal stream ran dry at loop L%d", id)
	}
	s := b.sigs[b.sigPos]
	b.sigPos++
	if s.id != id || s.more != more {
		return fmt.Errorf("fastexec: loop signal mismatch: sequencer at L%d(more=%v), IU sent L%d(more=%v)",
			id, more, s.id, s.more)
	}
	return nil
}

func (b *builder) instr(in *mcode.Instr) error {
	t := b.t
	b.t++
	if in.Empty() {
		return nil
	}
	o := op{cycle: t, add: in.Add, mul: in.Mul, mov: in.Mov, lit: in.Lit}
	for _, io := range in.IO {
		if io.Recv {
			if io.Dir != w2.DirL {
				return fmt.Errorf("fastexec: receive from the right is not supported (rightward flow only)")
			}
			if io.Chan == w2.ChanY {
				b.recvY++
			} else {
				b.recvX++
			}
		} else {
			if io.Dir != w2.DirR {
				return fmt.Errorf("fastexec: send to the left is not supported (rightward flow only)")
			}
			if io.Chan == w2.ChanY {
				b.sendY++
			} else {
				b.sendX++
			}
		}
		o.io = append(o.io, ioStep{recv: io.Recv, chanY: io.Chan == w2.ChanY, reg: io.Reg})
	}
	for port, mo := range in.Mem {
		if mo == nil {
			continue
		}
		if b.adrPos >= len(b.adr) {
			return fmt.Errorf("fastexec: the IU address stream ran dry at cycle %d, memory port %d", t, port)
		}
		addr := b.adr[b.adrPos]
		b.adrPos++
		if addr < 0 || addr >= mcode.MemWords {
			return fmt.Errorf("fastexec: address %d outside the %d-word cell memory (IU generated a bad address for %s)",
				addr, mcode.MemWords, mo.Addr)
		}
		o.mem[port] = memStep{valid: true, store: mo.Store, reg: mo.Reg, addr: int32(addr)}
		if mo.Store {
			b.stores++
		} else {
			b.loads++
		}
	}
	if in.Add != nil {
		b.addOps++
	}
	if in.Mul != nil {
		b.mulOps++
	}
	if in.Mov != nil {
		b.movOps++
	}
	b.ops = append(b.ops, o)
	return nil
}

// ExecConfig controls one execution of a plan.
type ExecConfig struct {
	// Ctx, when non-nil, is polled at a bounded operation stride (and
	// once up front); once cancelled the run aborts with an error
	// wrapping ctx.Err().
	Ctx context.Context
	// MaxCycles mirrors the simulator's livelock guard (0 = 1<<28): a
	// plan whose modeled run the simulator would have aborted is
	// rejected with an error wrapping sim.ErrLivelock, keeping the two
	// backends' failure behaviour aligned.
	MaxCycles int64
	// Progress, when non-nil, receives modeled-cycle position updates
	// at the same stride the context is polled, plus one final update
	// when the run completes.  The position is the fraction of the
	// trace replayed scaled onto the modeled cycle count, so it is
	// monotone and comparable to the simulator's cycles-retired
	// counter.  nil keeps the replay loop progress-free.
	Progress obs.ProgressFunc
}

// Result reports one execution.
type Result struct {
	// Cycles is the modeled machine time — identical to the count the
	// cycle-accurate simulator reports for the same program.
	Cycles int64
	// CellFinish is the modeled absolute cycle each cell finished at.
	CellFinish []int64
	// AddOps/MulOps are FPU issues summed over all cells; CellActive is
	// the summed active windows (finish − start per cell), the
	// denominator of the utilization metrics.
	AddOps, MulOps int64
	CellActive     int64
	// Sent counts words delivered to the host per channel.
	Sent map[w2.Channel]int
	// Obs is a modeled run profile: exact start/finish/issue counts per
	// cell; scheduled idle cycles are attributed as bubbles (the
	// starved/bubble split needs queue timing only the simulator has).
	Obs *obs.Profile
}

// pendWrite is a register write waiting for its landing cycle.
type pendWrite struct {
	reg mcode.Reg
	val float64
}

// ringSlot holds the writes landing on one cycle.  Landing cycles in
// flight span at most FPULatency cycles, so slots keyed by cycle mod
// (FPULatency+1) never collide.
type ringSlot struct {
	land int64
	w    []pendWrite
}

// pstore is a memory store waiting its one-cycle latency; stores always
// land before the next trace operation executes.
type pstore struct {
	addr int32
	val  float64
}

// cellRun is the per-cell execution state.
type cellRun struct {
	regs    [mcode.NumRegs]float64
	ring    [ringSlots]ringSlot
	applied int64 // cycle up to which landed writes are applied
}

// landTo applies every pending register write landing at or before
// cycle t, in (landing cycle, issue order) — the simulator's pending
// scan order.
func (c *cellRun) landTo(t int64) {
	for u := c.applied + 1; u <= t && u <= c.applied+ringSpan; u++ {
		s := &c.ring[u%ringSlots]
		if s.land == u {
			for _, w := range s.w {
				c.regs[w.reg] = w.val
			}
			s.w = s.w[:0]
			s.land = -1
		}
	}
	c.applied = t
}

func (c *cellRun) write(reg mcode.Reg, v float64, land int64) {
	s := &c.ring[land%ringSlots]
	s.land = land
	s.w = append(s.w, pendWrite{reg: reg, val: v})
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// alu mirrors the simulator's FPU evaluation exactly, including the
// divide-by-zero contract error, scheduling the result at the unit's
// latency.
func (c *cellRun) alu(o *mcode.AluOp, t int64) error {
	a := c.regs[o.Src[0]]
	b := c.regs[o.Src[1]]
	var v float64
	switch o.Code {
	case mcode.Fadd:
		v = a + b
	case mcode.Fsub:
		v = a - b
	case mcode.Fneg:
		v = -a
	case mcode.Fmul:
		v = a * b
	case mcode.Fdiv:
		if b == 0 {
			return fmt.Errorf("fastexec: floating divide by zero")
		}
		v = a / b
	case mcode.CmpEQ:
		v = boolToF(a == b)
	case mcode.CmpNE:
		v = boolToF(a != b)
	case mcode.CmpLT:
		v = boolToF(a < b)
	case mcode.CmpLE:
		v = boolToF(a <= b)
	case mcode.CmpGT:
		v = boolToF(a > b)
	case mcode.CmpGE:
		v = boolToF(a >= b)
	case mcode.BoolAnd:
		v = boolToF(a != 0 && b != 0)
	case mcode.BoolOr:
		v = boolToF(a != 0 || b != 0)
	case mcode.BoolNot:
		v = boolToF(a == 0)
	case mcode.Sel:
		if a != 0 {
			v = b
		} else {
			v = c.regs[o.Src[2]]
		}
	case mcode.Mov:
		v = a
	default:
		return fmt.Errorf("fastexec: unknown ALU code %v", o.Code)
	}
	c.write(o.Dst, v, t+o.Code.Latency())
	return nil
}

// execState is the whole-array execution state shared across cells.
type execState struct {
	plan     *Plan
	hostMem  []float64
	ctx      context.Context
	progress obs.ProgressFunc

	mem     []float64 // one cell's data memory, zeroed per cell
	pstores []pstore

	// Inter-cell streams, double-buffered: a cell reads prev* (its left
	// neighbour's full output) and appends to cur*.
	prevX, prevY []float64
	curX, curY   []float64
	xPos, yPos   int

	hostInPos  [2]int // X, Y positions into the host input sequences
	hostOutPos [2]int
	sent       map[w2.Channel]int

	opCount int64
}

func chanOf(chanY bool) (w2.Channel, int) {
	if chanY {
		return w2.ChanY, 1
	}
	return w2.ChanX, 0
}

// hostWord resolves cell 0's next input word on a channel, lazily
// against host memory — exact because semantic analysis makes receive
// externals in-parameters and send externals out-parameters, so the
// input region is never overwritten during a run.
func (st *execState) hostWord(chanY bool) (float64, error) {
	ch, ci := chanOf(chanY)
	seq := st.plan.host.In[ch]
	pos := st.hostInPos[ci]
	if pos >= len(seq) {
		return 0, fmt.Errorf("fastexec: host input stream on %s ran dry after %d words", ch, len(seq))
	}
	st.hostInPos[ci] = pos + 1
	w := seq[pos]
	if w.Literal {
		return w.Value, nil
	}
	if w.Index < 0 || w.Index >= len(st.hostMem) {
		return 0, fmt.Errorf("fastexec: host input index %d outside host memory of %d words", w.Index, len(st.hostMem))
	}
	return st.hostMem[w.Index], nil
}

// hostCollect receives one word from the last cell on a channel,
// mirroring the simulator's output sequencing (Discard entries are
// dummy sends with no destination).
func (st *execState) hostCollect(chanY bool, v float64) error {
	ch, ci := chanOf(chanY)
	seq := st.plan.host.Out[ch]
	pos := st.hostOutPos[ci]
	if pos >= len(seq) {
		return fmt.Errorf("fastexec: the last cell sent more words on %s than the host program expects (%d)", ch, len(seq))
	}
	if idx := seq[pos]; idx != hostgen.Discard {
		if idx < 0 || idx >= len(st.hostMem) {
			return fmt.Errorf("fastexec: host output index %d outside host memory of %d words", idx, len(st.hostMem))
		}
		st.hostMem[idx] = v
	}
	st.hostOutPos[ci] = pos + 1
	st.sent[ch]++
	return nil
}

// Execute runs the plan over a host memory image (inputs pre-loaded;
// outputs written in place).  The plan is read-only: concurrent
// Execute calls on one Plan are safe.
func (p *Plan) Execute(hostMem []float64, cfg ExecConfig) (*Result, error) {
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 28
	}
	// The simulator aborts when its clock passes MaxCycles before the
	// last cell retires, i.e. whenever the run needs more than
	// MaxCycles+1 cycles; the modeled count makes the same decision
	// without running.
	if p.cycles > maxCycles+1 {
		return nil, fmt.Errorf("fastexec: modeled run needs %d cycles, exceeding %d; the machine is %w",
			p.cycles, maxCycles, sim.ErrLivelock)
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("fastexec: run aborted: %w", err)
		}
	}

	st := &execState{
		plan:     p,
		hostMem:  hostMem,
		ctx:      cfg.Ctx,
		progress: cfg.Progress,
		mem:      make([]float64, mcode.MemWords),
		curX:     make([]float64, 0, p.sendX),
		curY:     make([]float64, 0, p.sendY),
		sent:     map[w2.Channel]int{},
	}
	for i := 0; i < p.cells; i++ {
		if err := p.runCell(st, i); err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		// This cell's output becomes the next cell's input; the spent
		// input buffer is recycled as the next output buffer.
		st.prevX, st.curX = st.curX, st.prevX[:0]
		st.prevY, st.curY = st.curY, st.prevY[:0]
		st.xPos, st.yPos = 0, 0
	}
	if cfg.Progress != nil {
		cfg.Progress(obs.ProgressUpdate{Cycles: p.cycles, Done: true})
	}
	return p.result(st), nil
}

// runCell replays the trace for one cell.
func (p *Plan) runCell(st *execState, idx int) error {
	first, last := idx == 0, idx == p.cells-1
	c := &cellRun{applied: -1}
	for s := range c.ring {
		c.ring[s].land = -1
	}
	clear(st.mem)
	st.pstores = st.pstores[:0]

	for oi := range p.ops {
		o := &p.ops[oi]
		if st.ctx != nil || st.progress != nil {
			st.opCount++
			if st.opCount%ctxCheckInterval == 1 {
				if st.ctx != nil {
					if err := st.ctx.Err(); err != nil {
						return fmt.Errorf("fastexec: run aborted: %w", err)
					}
				}
				if st.progress != nil {
					// The replay visits cells sequentially, so the raw
					// trace position would jump backwards at each cell
					// boundary; scale the global op counter onto the
					// modeled cycle axis for a monotone position.
					total := int64(len(p.ops)) * int64(p.cells)
					st.progress(obs.ProgressUpdate{Cycles: p.cycles * st.opCount / total})
				}
			}
		}
		t := o.cycle
		// Writes landing by this cycle become visible before any read.
		c.landTo(t)
		for _, w := range st.pstores {
			st.mem[w.addr] = w.val
		}
		st.pstores = st.pstores[:0]

		// Field order matches the simulator: IO, memory ports, ADD,
		// MUL, MOV, literal — which fixes the issue order of same-cycle
		// pending writes.
		for _, io := range o.io {
			if io.recv {
				var v float64
				if first {
					var err error
					if v, err = st.hostWord(io.chanY); err != nil {
						return err
					}
				} else if io.chanY {
					if st.yPos >= len(st.prevY) {
						return fmt.Errorf("fastexec: queue cell%d.Y underflows (receive before the matching send)", idx)
					}
					v = st.prevY[st.yPos]
					st.yPos++
				} else {
					if st.xPos >= len(st.prevX) {
						return fmt.Errorf("fastexec: queue cell%d.X underflows (receive before the matching send)", idx)
					}
					v = st.prevX[st.xPos]
					st.xPos++
				}
				c.write(io.reg, v, t+1)
			} else {
				v := c.regs[io.reg]
				switch {
				case last:
					if err := st.hostCollect(io.chanY, v); err != nil {
						return err
					}
				case io.chanY:
					st.curY = append(st.curY, v)
				default:
					st.curX = append(st.curX, v)
				}
			}
		}
		for pi := range o.mem {
			ms := &o.mem[pi]
			if !ms.valid {
				continue
			}
			if ms.store {
				st.pstores = append(st.pstores, pstore{addr: ms.addr, val: c.regs[ms.reg]})
			} else {
				c.write(ms.reg, st.mem[ms.addr], t+1)
			}
		}
		if o.add != nil {
			if err := c.alu(o.add, t); err != nil {
				return err
			}
		}
		if o.mul != nil {
			if err := c.alu(o.mul, t); err != nil {
				return err
			}
		}
		if o.mov != nil {
			if err := c.alu(o.mov, t); err != nil {
				return err
			}
		}
		if o.lit != nil {
			c.write(o.lit.Dst, o.lit.Value, t+1)
		}
	}
	// Writes still in flight when the cell retires are never observed:
	// the simulator stops stepping a finished cell the same way.
	return nil
}

// result assembles the modeled statistics and run profile.
func (p *Plan) result(st *execState) *Result {
	res := &Result{
		CellFinish: make([]int64, p.cells),
		AddOps:     p.addOps * int64(p.cells),
		MulOps:     p.mulOps * int64(p.cells),
		Sent:       st.sent,
		Cycles:     p.cycles,
	}
	prof := &obs.Profile{
		Cells:  p.cells,
		Cycles: p.cycles,
		Skew:   p.skew,
		Lead:   p.lead,
		Cell:   make([]obs.CellProfile, p.cells),
	}
	busy := int64(len(p.ops))
	last := p.cycles - 1
	for i := 0; i < p.cells; i++ {
		start := p.lead + int64(i)*p.skew
		finish := start
		if p.cellCycles > 0 {
			finish = start + p.cellCycles - 1
		}
		res.CellFinish[i] = finish
		res.CellActive += finish - start
		prof.Cell[i] = obs.CellProfile{
			Start:  start,
			Finish: finish,
			AddOps: p.addOps, MulOps: p.mulOps, MovOps: p.movOps,
			Loads: p.loads, Stores: p.stores,
			Busy:     busy,
			Bubble:   p.cellCycles - busy, // idle issue slots; the starved split needs queue timing
			SkewLead: int64(i) * p.skew,
			Drain:    last - finish,
		}
	}
	res.Obs = prof
	return res
}

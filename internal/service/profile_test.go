package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"warp/internal/workloads"
)

// getBody fetches a URL and returns the status plus body bytes.
func getBody(t *testing.T, client *http.Client, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestProfileDownload drives a profiled run over HTTP and pulls the
// profile back in all three formats, then checks the unprofiled and
// error paths.
func TestProfileDownload(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCap: 8})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	src := workloads.Polynomial(4, 16)
	inputs := map[string][]float64{}
	prog, _, _, err := svc.cache.Get(context.Background(), src, CompileOptions{}.warpOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prog.Params() {
		if !p.Out {
			inputs[p.Name] = make([]float64, p.Size)
		}
	}

	resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
		Source: src, Inputs: inputs, Profile: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiled run: %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Request == "" {
		t.Fatal("profiled RunResponse names no request ID")
	}

	// The flight listing flags the profile but does not inline it.
	recs := debugSnapshot(t, client, ts.URL)
	rec := findRecord(recs, "/run", "ok")
	if rec == nil || rec.ID != rr.Request {
		t.Fatalf("no flight record for request %q", rr.Request)
	}
	if !rec.HasProfile {
		t.Error("flight record has_profile = false for a profiled run")
	}
	if rec.Source != nil {
		t.Error("flight listing JSON inlined the profile body")
	}

	base := ts.URL + "/debug/requests/" + rr.Request + "/profile"

	// Default: gzipped pprof protobuf download.
	status, pb, hdr := getBody(t, client, base)
	if status != http.StatusOK {
		t.Fatalf("pprof download: %d: %s", status, pb)
	}
	if cd := hdr.Get("Content-Disposition"); !strings.Contains(cd, rr.Request) || !strings.Contains(cd, ".pprof.pb.gz") {
		t.Errorf("pprof Content-Disposition %q", cd)
	}
	if len(pb) < 2 || pb[0] != 0x1f || pb[1] != 0x8b {
		t.Errorf("pprof download is not gzip (starts % x)", pb[:min(4, len(pb))])
	}

	// Text report.
	status, txt, _ := getBody(t, client, base+"?format=text")
	if status != http.StatusOK || !strings.Contains(string(txt), "source profile:") {
		t.Errorf("text format: status %d, body %q", status, txt)
	}

	// Folded flame stacks: "frames... count" lines.
	status, folded, _ := getBody(t, client, base+"?format=folded")
	if status != http.StatusOK {
		t.Fatalf("folded format: %d", status)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(folded)), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.Contains(fields[0], ";") {
			t.Errorf("bad folded line %q", line)
		}
	}

	// Unknown format is a 400.
	if status, body, _ := getBody(t, client, base+"?format=svg"); status != http.StatusBadRequest {
		t.Errorf("unknown format: %d: %s", status, body)
	}

	// An unprofiled run 404s with a hint, as does an unknown ID.
	resp, body = postJSON(t, client, ts.URL+"/run", RunRequest{Source: src, Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unprofiled run: %d: %s", resp.StatusCode, body)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(body, &rr2); err != nil {
		t.Fatal(err)
	}
	status, body404, _ := getBody(t, client, ts.URL+"/debug/requests/"+rr2.Request+"/profile")
	if status != http.StatusNotFound || !strings.Contains(string(body404), "was not profiled") {
		t.Errorf("unprofiled request profile: %d: %s", status, body404)
	}
	if status, _, _ := getBody(t, client, ts.URL+"/debug/requests/r999999/profile"); status != http.StatusNotFound {
		t.Errorf("unknown request profile: %d", status)
	}
}

// TestProfilePartitioned checks a partitioned run's aggregate profile
// is downloadable and covers every tile's cycles.
func TestProfilePartitioned(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCap: 8})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	const d = 8
	a, b := workloads.LargeMatmulData(d, d, d, 13)
	resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
		Source:    workloads.Matmul(4),
		Inputs:    map[string][]float64{"a": a, "bmat": b},
		Partition: &PartitionJSON{Workload: "matmul", M: d, K: d, N: d, Arrays: 2},
		Profile:   true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned profiled run: %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Fabric == nil || rr.Request == "" {
		t.Fatalf("partitioned response lacks fabric stats or request ID: %s", body)
	}
	rec := svc.flight.get(rr.Request)
	if rec == nil || rec.Source == nil {
		t.Fatal("no profiled flight record for the partitioned run")
	}
	if rec.Source.Cycles != rr.Fabric.AggregateCycles {
		t.Errorf("aggregate profile covers %d cycles, fabric reports %d",
			rec.Source.Cycles, rr.Fabric.AggregateCycles)
	}
	status, txt, _ := getBody(t, client, ts.URL+"/debug/requests/"+rr.Request+"/profile?format=text")
	if status != http.StatusOK || !strings.Contains(string(txt), "source profile:") {
		t.Errorf("partitioned text profile: %d: %q", status, txt)
	}
}

// TestSchedMetricsExported checks /metrics carries the scheduler work
// counters after a cache-miss compilation.
func TestSchedMetricsExported(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCap: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{
		Source:  workloads.Polynomial(4, 16),
		Options: CompileOptions{Pipeline: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d: %s", resp.StatusCode, body)
	}

	status, metrics, _ := getBody(t, client, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	text := string(metrics)
	for _, want := range []string{
		"warpd_sched_compiles_total 1",
		"warpd_sched_loops_total",
		"warpd_sched_pipelined_total",
		"warpd_sched_ii_attempts_total",
		"warpd_sched_placements_total",
		"warpd_sched_search_seconds_total",
		"warpd_sched_skew_ops_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	// The pipelined compile did scheduler work: loops and placements are
	// strictly positive.
	for _, name := range []string{"warpd_sched_loops_total", "warpd_sched_placements_total"} {
		if strings.Contains(text, name+" 0\n") {
			t.Errorf("%s is zero after a pipelined cache-miss compile", name)
		}
	}
}

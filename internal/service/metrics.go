package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"warp/internal/obs"
	"warp/internal/prof"
	"warp/internal/telemetry"
)

// decisionKey identifies one backend-decision series: which executor
// was chosen and why.
type decisionKey struct {
	backend string
	reason  string
}

// Metrics aggregates everything the daemon exports at /metrics: request
// counters by outcome, the compile/run/queue-wait latency histograms
// (telemetry.Histogram families keyed by cache result and backend), the
// backend decision audit (decision counts plus cost-model prediction
// error), and the per-run obs.Summary aggregates (simulated cycles, FPU
// utilization, peak queue occupancy).  All methods are safe for
// concurrent use.
type Metrics struct {
	mu sync.Mutex

	compiles map[string]int64 // result label -> count (hit|miss|error|rejected)
	runs     map[string]int64 // result label -> count (ok|error|timeout|rejected)
	backends map[string]int64 // backend label -> completed runs (sim|fast)

	// Latency histogram families: compiles keyed by cache result
	// (hit|miss|rejected), completed runs keyed by backend (sim|fast),
	// and the admission-queue wait for every pooled request.
	compileLatency map[string]*telemetry.Histogram
	runLatency     map[string]*telemetry.Histogram
	queueWait      *telemetry.Histogram

	// Backend decision audit: how often each (backend, reason) pair was
	// chosen, and how far the cost model's predicted wall strayed from
	// the measured one (error factor = max(actual/pred, pred/actual)).
	decisions    map[decisionKey]int64
	predErrSum   map[string]float64 // backend -> summed error factors
	predErrCount map[string]int64
	predErrMax   map[string]float64

	// Per-compile-phase accumulated wall-clock time and counts (parse,
	// cellgen, verify, ...), from the driver's phase records.
	phaseSeconds map[string]float64
	phaseCounts  map[string]int64

	// Scheduler introspection accumulated over cache-miss compilations:
	// modulo-scheduler and skew-search work counters from prof.SchedTotals.
	sched      prof.SchedTotals
	schedComps int64 // compilations folded into sched

	// Aggregates over completed runs, from obs.Profile.Summarize.
	simCycles   int64
	addUtilSum  float64
	mulUtilSum  float64
	busySum     float64
	runSamples  int64
	peakQueue   int
	peakQueueAt string

	// Partitioned (fabric) jobs: outcomes plus tile-level counters.
	fabricJobs       map[string]int64 // result label -> count (ok|error|timeout)
	fabricTiles      int64            // tiles planned across completed jobs
	fabricDispatched int64            // tile attempts started (retries included)
	fabricRetried    int64            // attempts beyond each tile's first
	fabricFailed     int64            // tiles that exhausted their attempts
	fabricCycles     int64            // aggregate simulated cycles across tiles
}

// obsSummaryZero is the empty summary passed for requests that never
// produced a run profile.
var obsSummaryZero obs.Summary

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		compiles:       map[string]int64{},
		runs:           map[string]int64{},
		backends:       map[string]int64{},
		compileLatency: map[string]*telemetry.Histogram{},
		runLatency:     map[string]*telemetry.Histogram{},
		queueWait:      telemetry.NewLatency(),
		decisions:      map[decisionKey]int64{},
		predErrSum:     map[string]float64{},
		predErrCount:   map[string]int64{},
		predErrMax:     map[string]float64{},
		phaseSeconds:   map[string]float64{},
		phaseCounts:    map[string]int64{},
		fabricJobs:     map[string]int64{},
	}
}

// hist returns the family member for key, creating it on first use so
// the exposition only carries series for outcomes that happened.
func hist(m map[string]*telemetry.Histogram, key string) *telemetry.Histogram {
	h := m[key]
	if h == nil {
		h = telemetry.NewLatency()
		m[key] = h
	}
	return h
}

// Fabric records one partitioned-run job: the outcome label, the
// backend the tiles ran on, plus the job's tile counters (planned,
// attempts started, retries, failures) and aggregate simulated cycles.
// Failed or timed-out jobs still contribute the tile attempts they made
// before the job died.
func (m *Metrics) Fabric(result, backend string, seconds float64, tiles, dispatched, retried, failed int, aggCycles int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fabricJobs[result]++
	m.fabricTiles += int64(tiles)
	m.fabricDispatched += int64(dispatched)
	m.fabricRetried += int64(retried)
	m.fabricFailed += int64(failed)
	m.fabricCycles += aggCycles
	if result == "ok" {
		if backend == "" {
			backend = "unknown"
		}
		hist(m.runLatency, backend).Observe(seconds)
	}
}

// Compile records one compile request: result is "hit", "miss",
// "error" or "rejected" (static verification failed); seconds is the
// request's service time (0 is fine for hits).
func (m *Metrics) Compile(result string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compiles[result]++
	if result != "error" {
		hist(m.compileLatency, result).Observe(seconds)
	}
}

// CompilePhases folds one compilation's per-phase timing records into
// the per-phase aggregates exported at /metrics (one series per phase,
// including "verify" when the verifier ran).
func (m *Metrics) CompilePhases(phases []obs.PhaseStat) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ph := range phases {
		m.phaseSeconds[ph.Name] += ph.Seconds
		m.phaseCounts[ph.Name]++
	}
}

// CompileSched folds one compilation's scheduler work counters into
// the warpd_sched_* aggregates.  Called beside CompilePhases on every
// cache miss, so the series attribute compile-time cost to the
// scheduler searches that caused it.
func (m *Metrics) CompileSched(t prof.SchedTotals) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched.Loops += t.Loops
	m.sched.Pipelined += t.Pipelined
	m.sched.Attempts += t.Attempts
	m.sched.Placements += t.Placements
	m.sched.Evictions += t.Evictions
	m.sched.EmitRejects += t.EmitRejects
	m.sched.SearchNS += t.SearchNS
	m.sched.SkewOps += t.SkewOps
	m.sched.SkewPairs += t.SkewPairs
	m.sched.SkewPruned += t.SkewPruned
	m.sched.SkewNS += t.SkewNS
	m.schedComps++
}

// Run records one run request outcome ("ok", "error", "timeout",
// "rejected") and, for completed runs, the backend-labelled latency and
// run summary.
func (m *Metrics) Run(result, backend string, seconds float64, sum obs.Summary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs[result]++
	if result != "ok" {
		return
	}
	if backend == "" {
		backend = "unknown"
	}
	hist(m.runLatency, backend).Observe(seconds)
	m.simCycles += sum.Cycles
	m.addUtilSum += sum.AddUtil
	m.mulUtilSum += sum.MulUtil
	m.busySum += sum.BusyFrac
	m.runSamples++
	if sum.PeakQueue > m.peakQueue {
		m.peakQueue = sum.PeakQueue
		m.peakQueueAt = sum.PeakQueueAt
	}
}

// QueueWait records one pooled request's admission-queue wait — the
// time between submission and a worker picking the job up.
func (m *Metrics) QueueWait(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueWait.Observe(seconds)
}

// Backend records which executor completed a run ("sim" or "fast");
// partitioned jobs count once per job, not per tile.
func (m *Metrics) Backend(backend string) {
	if backend == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.backends[backend]++
}

// Decision folds one completed run's backend decision audit into the
// registry: the (backend, reason) choice counter plus, when the run
// carries both a prediction and a measured wall, the prediction error
// factor.
func (m *Metrics) Decision(d *telemetry.Decision) {
	if d == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decisions[decisionKey{d.Backend, d.Reason}]++
	if f := d.ErrorFactor(); f > 0 {
		m.predErrSum[d.Backend] += f
		m.predErrCount[d.Backend]++
		if f > m.predErrMax[d.Backend] {
			m.predErrMax[d.Backend] = f
		}
	}
}

// MedianRunSeconds estimates the median completed-run service time from
// the merged per-backend latency histograms — the observed-load signal
// behind the 429 Retry-After hint.  0 means no run has completed yet.
func (m *Metrics) MedianRunSeconds() float64 {
	return m.RunQuantileSeconds(0.5)
}

// RunQuantileSeconds estimates the q-quantile of completed-run service
// time across all backends.
func (m *Metrics) RunQuantileSeconds(q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	hs := make([]*telemetry.Histogram, 0, len(m.runLatency))
	for _, h := range m.runLatency {
		hs = append(hs, h)
	}
	merged := telemetry.MergeAll(hs...)
	if merged == nil {
		return 0
	}
	return merged.Quantile(q)
}

// WritePrometheus renders the registry, plus the given cache, template
// cache and pool snapshots, in the Prometheus text exposition format
// (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer, cs CacheStats, ts TemplateCacheStats, ps PoolStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP warpd_compile_requests_total Compile requests by result (hit|miss|error).\n")
	fmt.Fprintf(w, "# TYPE warpd_compile_requests_total counter\n")
	writeLabelled(w, "warpd_compile_requests_total", "result", m.compiles)

	fmt.Fprintf(w, "# HELP warpd_run_requests_total Run requests by result (ok|error|timeout|rejected).\n")
	fmt.Fprintf(w, "# TYPE warpd_run_requests_total counter\n")
	writeLabelled(w, "warpd_run_requests_total", "result", m.runs)

	fmt.Fprintf(w, "# HELP warpd_backend_runs_total Completed runs by execution backend (sim|fast).\n")
	fmt.Fprintf(w, "# TYPE warpd_backend_runs_total counter\n")
	writeLabelled(w, "warpd_backend_runs_total", "backend", m.backends)

	telemetry.WriteVec(w, "warpd_compile_seconds",
		"Compile request service time by cache result.", "result", m.compileLatency)

	m.writeDecisions(w)

	if len(m.phaseCounts) > 0 {
		fmt.Fprintf(w, "# HELP warpd_compile_phase_seconds_total Accumulated wall-clock time per compiler phase.\n")
		fmt.Fprintf(w, "# TYPE warpd_compile_phase_seconds_total counter\n")
		names := make([]string, 0, len(m.phaseCounts))
		for name := range m.phaseCounts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "warpd_compile_phase_seconds_total{phase=%q} %s\n", name, formatFloat(m.phaseSeconds[name]))
		}
		fmt.Fprintf(w, "# HELP warpd_compile_phase_total Phase executions per compiler phase.\n")
		fmt.Fprintf(w, "# TYPE warpd_compile_phase_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "warpd_compile_phase_total{phase=%q} %d\n", name, m.phaseCounts[name])
		}
	}
	fmt.Fprintf(w, "# HELP warpd_sched_compiles_total Cache-miss compilations folded into the scheduler counters.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_compiles_total counter\n")
	fmt.Fprintf(w, "warpd_sched_compiles_total %d\n", m.schedComps)
	fmt.Fprintf(w, "# HELP warpd_sched_loops_total Loops seen by the cell scheduler.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_loops_total counter\n")
	fmt.Fprintf(w, "warpd_sched_loops_total %d\n", m.sched.Loops)
	fmt.Fprintf(w, "# HELP warpd_sched_pipelined_total Loops that software-pipelined successfully.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_pipelined_total counter\n")
	fmt.Fprintf(w, "warpd_sched_pipelined_total %d\n", m.sched.Pipelined)
	fmt.Fprintf(w, "# HELP warpd_sched_ii_attempts_total Initiation intervals tried by the modulo scheduler.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_ii_attempts_total counter\n")
	fmt.Fprintf(w, "warpd_sched_ii_attempts_total %d\n", m.sched.Attempts)
	fmt.Fprintf(w, "# HELP warpd_sched_placements_total Operation placements tried across all scheduling attempts.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_placements_total counter\n")
	fmt.Fprintf(w, "warpd_sched_placements_total %d\n", m.sched.Placements)
	fmt.Fprintf(w, "# HELP warpd_sched_evictions_total Modulo-table evictions (placement conflicts undone).\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_evictions_total counter\n")
	fmt.Fprintf(w, "warpd_sched_evictions_total %d\n", m.sched.Evictions)
	fmt.Fprintf(w, "# HELP warpd_sched_emit_rejects_total Schedules rejected at microcode emission.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_emit_rejects_total counter\n")
	fmt.Fprintf(w, "warpd_sched_emit_rejects_total %d\n", m.sched.EmitRejects)
	fmt.Fprintf(w, "# HELP warpd_sched_search_seconds_total Wall-clock time inside the modulo-schedule search.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_search_seconds_total counter\n")
	fmt.Fprintf(w, "warpd_sched_search_seconds_total %s\n", formatFloat(float64(m.sched.SearchNS)/1e9))
	fmt.Fprintf(w, "# HELP warpd_sched_skew_ops_total Dynamic operations enumerated by exact skew searches.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_skew_ops_total counter\n")
	fmt.Fprintf(w, "warpd_sched_skew_ops_total %d\n", m.sched.SkewOps)
	fmt.Fprintf(w, "# HELP warpd_sched_skew_pairs_total Statement pairs analyzed by the skew bound.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_skew_pairs_total counter\n")
	fmt.Fprintf(w, "warpd_sched_skew_pairs_total %d\n", m.sched.SkewPairs)
	fmt.Fprintf(w, "# HELP warpd_sched_skew_pruned_total Statement pairs pruned before analysis.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_skew_pruned_total counter\n")
	fmt.Fprintf(w, "warpd_sched_skew_pruned_total %d\n", m.sched.SkewPruned)
	fmt.Fprintf(w, "# HELP warpd_sched_skew_seconds_total Wall-clock time inside the skew search.\n")
	fmt.Fprintf(w, "# TYPE warpd_sched_skew_seconds_total counter\n")
	fmt.Fprintf(w, "warpd_sched_skew_seconds_total %s\n", formatFloat(float64(m.sched.SkewNS)/1e9))

	telemetry.WriteVec(w, "warpd_run_seconds",
		"Run request service time by execution backend.", "backend", m.runLatency)
	telemetry.Write(w, "warpd_queue_wait_seconds",
		"Admission-queue wait of pooled requests.", m.queueWait)

	fmt.Fprintf(w, "# HELP warpd_cache_entries Compiled programs resident in the cache.\n")
	fmt.Fprintf(w, "# TYPE warpd_cache_entries gauge\n")
	fmt.Fprintf(w, "warpd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP warpd_cache_hits_total Cache hits (including singleflight waiters).\n")
	fmt.Fprintf(w, "# TYPE warpd_cache_hits_total counter\n")
	fmt.Fprintf(w, "warpd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP warpd_cache_misses_total Cache misses (driver compilations started).\n")
	fmt.Fprintf(w, "# TYPE warpd_cache_misses_total counter\n")
	fmt.Fprintf(w, "warpd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP warpd_cache_evictions_total LRU evictions.\n")
	fmt.Fprintf(w, "# TYPE warpd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "warpd_cache_evictions_total %d\n", cs.Evictions)

	fmt.Fprintf(w, "# HELP warpd_template_entries Symbolic templates resident in the template cache.\n")
	fmt.Fprintf(w, "# TYPE warpd_template_entries gauge\n")
	fmt.Fprintf(w, "warpd_template_entries %d\n", ts.Templates)
	fmt.Fprintf(w, "# HELP warpd_template_programs Instantiated programs resident across all templates.\n")
	fmt.Fprintf(w, "# TYPE warpd_template_programs gauge\n")
	fmt.Fprintf(w, "warpd_template_programs %d\n", ts.Programs)
	fmt.Fprintf(w, "# HELP warpd_template_hits_total Template-cache hits (instantiated program already resident).\n")
	fmt.Fprintf(w, "# TYPE warpd_template_hits_total counter\n")
	fmt.Fprintf(w, "warpd_template_hits_total %d\n", ts.Hits)
	fmt.Fprintf(w, "# HELP warpd_template_misses_total Template-cache misses (instantiation or fallback started).\n")
	fmt.Fprintf(w, "# TYPE warpd_template_misses_total counter\n")
	fmt.Fprintf(w, "warpd_template_misses_total %d\n", ts.Misses)
	fmt.Fprintf(w, "# HELP warpd_template_instantiations_total Programs produced from closed-form templates (no concrete compile).\n")
	fmt.Fprintf(w, "# TYPE warpd_template_instantiations_total counter\n")
	fmt.Fprintf(w, "warpd_template_instantiations_total %d\n", ts.Instantiations)
	fmt.Fprintf(w, "# HELP warpd_template_fallbacks_total Symbolic requests served by a concrete fallback compile.\n")
	fmt.Fprintf(w, "# TYPE warpd_template_fallbacks_total counter\n")
	fmt.Fprintf(w, "warpd_template_fallbacks_total %d\n", ts.Fallbacks)
	fmt.Fprintf(w, "# HELP warpd_template_evictions_total Instantiated programs evicted from the template cache.\n")
	fmt.Fprintf(w, "# TYPE warpd_template_evictions_total counter\n")
	fmt.Fprintf(w, "warpd_template_evictions_total %d\n", ts.Evictions)

	fmt.Fprintf(w, "# HELP warpd_queue_depth Jobs waiting in the admission queue.\n")
	fmt.Fprintf(w, "# TYPE warpd_queue_depth gauge\n")
	fmt.Fprintf(w, "warpd_queue_depth %d\n", ps.QueueDepth)
	fmt.Fprintf(w, "# HELP warpd_queue_high_water Peak admission-queue depth since start.\n")
	fmt.Fprintf(w, "# TYPE warpd_queue_high_water gauge\n")
	fmt.Fprintf(w, "warpd_queue_high_water %d\n", ps.HighWater)
	fmt.Fprintf(w, "# HELP warpd_queue_rejected_total Requests refused with 429 (queue full).\n")
	fmt.Fprintf(w, "# TYPE warpd_queue_rejected_total counter\n")
	fmt.Fprintf(w, "warpd_queue_rejected_total %d\n", ps.Rejected)
	fmt.Fprintf(w, "# HELP warpd_inflight_runs Simulations executing right now.\n")
	fmt.Fprintf(w, "# TYPE warpd_inflight_runs gauge\n")
	fmt.Fprintf(w, "warpd_inflight_runs %d\n", ps.InFlight)
	fmt.Fprintf(w, "# HELP warpd_workers Configured worker count.\n")
	fmt.Fprintf(w, "# TYPE warpd_workers gauge\n")
	fmt.Fprintf(w, "warpd_workers %d\n", ps.Workers)

	fmt.Fprintf(w, "# HELP warpd_sim_cycles_total Machine cycles simulated across completed runs.\n")
	fmt.Fprintf(w, "# TYPE warpd_sim_cycles_total counter\n")
	fmt.Fprintf(w, "warpd_sim_cycles_total %d\n", m.simCycles)
	fmt.Fprintf(w, "# HELP warpd_fpu_add_utilization_sum Sum over runs of the ADD-FPU issue fraction.\n")
	fmt.Fprintf(w, "# TYPE warpd_fpu_add_utilization_sum counter\n")
	fmt.Fprintf(w, "warpd_fpu_add_utilization_sum %s\n", formatFloat(m.addUtilSum))
	fmt.Fprintf(w, "# HELP warpd_fpu_mul_utilization_sum Sum over runs of the MUL-FPU issue fraction.\n")
	fmt.Fprintf(w, "# TYPE warpd_fpu_mul_utilization_sum counter\n")
	fmt.Fprintf(w, "warpd_fpu_mul_utilization_sum %s\n", formatFloat(m.mulUtilSum))
	fmt.Fprintf(w, "# HELP warpd_busy_fraction_sum Sum over runs of the cell-busy fraction.\n")
	fmt.Fprintf(w, "# TYPE warpd_busy_fraction_sum counter\n")
	fmt.Fprintf(w, "warpd_busy_fraction_sum %s\n", formatFloat(m.busySum))
	fmt.Fprintf(w, "# HELP warpd_run_samples_total Completed runs contributing to the utilization sums.\n")
	fmt.Fprintf(w, "# TYPE warpd_run_samples_total counter\n")
	fmt.Fprintf(w, "warpd_run_samples_total %d\n", m.runSamples)
	fmt.Fprintf(w, "# HELP warpd_peak_queue_occupancy Highest data-queue high-water mark over all runs.\n")
	fmt.Fprintf(w, "# TYPE warpd_peak_queue_occupancy gauge\n")
	fmt.Fprintf(w, "warpd_peak_queue_occupancy %d\n", m.peakQueue)

	fmt.Fprintf(w, "# HELP warpd_fabric_jobs_total Partitioned-run jobs by result (ok|error|timeout).\n")
	fmt.Fprintf(w, "# TYPE warpd_fabric_jobs_total counter\n")
	writeLabelled(w, "warpd_fabric_jobs_total", "result", m.fabricJobs)
	fmt.Fprintf(w, "# HELP warpd_fabric_tiles_total Tiles planned across partitioned jobs.\n")
	fmt.Fprintf(w, "# TYPE warpd_fabric_tiles_total counter\n")
	fmt.Fprintf(w, "warpd_fabric_tiles_total %d\n", m.fabricTiles)
	fmt.Fprintf(w, "# HELP warpd_fabric_tile_dispatch_total Tile attempts started (retries included).\n")
	fmt.Fprintf(w, "# TYPE warpd_fabric_tile_dispatch_total counter\n")
	fmt.Fprintf(w, "warpd_fabric_tile_dispatch_total %d\n", m.fabricDispatched)
	fmt.Fprintf(w, "# HELP warpd_fabric_tile_retries_total Tile attempts beyond each tile's first.\n")
	fmt.Fprintf(w, "# TYPE warpd_fabric_tile_retries_total counter\n")
	fmt.Fprintf(w, "warpd_fabric_tile_retries_total %d\n", m.fabricRetried)
	fmt.Fprintf(w, "# HELP warpd_fabric_tile_failures_total Tiles that exhausted their attempts.\n")
	fmt.Fprintf(w, "# TYPE warpd_fabric_tile_failures_total counter\n")
	fmt.Fprintf(w, "warpd_fabric_tile_failures_total %d\n", m.fabricFailed)
	fmt.Fprintf(w, "# HELP warpd_fabric_cycles_total Aggregate simulated cycles across all tiles.\n")
	fmt.Fprintf(w, "# TYPE warpd_fabric_cycles_total counter\n")
	fmt.Fprintf(w, "warpd_fabric_cycles_total %d\n", m.fabricCycles)
}

// writeDecisions renders the decision counter (two labels, so it
// bypasses writeLabelled) and the prediction-error aggregates.  The
// error family is a summary — _sum/_count per backend gives the mean
// error factor — with the worst single miss as a separate gauge.
func (m *Metrics) writeDecisions(w io.Writer) {
	fmt.Fprintf(w, "# HELP warpd_decision_total Backend decisions by chosen backend and reason.\n")
	fmt.Fprintf(w, "# TYPE warpd_decision_total counter\n")
	keys := make([]decisionKey, 0, len(m.decisions))
	for k := range m.decisions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].backend != keys[j].backend {
			return keys[i].backend < keys[j].backend
		}
		return keys[i].reason < keys[j].reason
	})
	for _, k := range keys {
		fmt.Fprintf(w, "warpd_decision_total{backend=%q,reason=%q} %d\n", k.backend, k.reason, m.decisions[k])
	}
	if len(m.predErrCount) == 0 {
		return
	}
	backends := make([]string, 0, len(m.predErrCount))
	for b := range m.predErrCount {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	fmt.Fprintf(w, "# HELP warpd_prediction_error_ratio Cost-model wall-time misprediction factor, max(actual/predicted, predicted/actual), over completed runs.\n")
	fmt.Fprintf(w, "# TYPE warpd_prediction_error_ratio summary\n")
	for _, b := range backends {
		fmt.Fprintf(w, "warpd_prediction_error_ratio_sum{backend=%q} %s\n", b, formatFloat(m.predErrSum[b]))
		fmt.Fprintf(w, "warpd_prediction_error_ratio_count{backend=%q} %d\n", b, m.predErrCount[b])
	}
	fmt.Fprintf(w, "# HELP warpd_prediction_error_max Worst single-run misprediction factor per backend.\n")
	fmt.Fprintf(w, "# TYPE warpd_prediction_error_max gauge\n")
	for _, b := range backends {
		fmt.Fprintf(w, "warpd_prediction_error_max{backend=%q} %s\n", b, formatFloat(m.predErrMax[b]))
	}
}

func formatFloat(f float64) string { return telemetry.FormatFloat(f) }

// writeLabelled emits one sample per label value in sorted order, so
// the output is deterministic and scrape-diff friendly.
func writeLabelled(w io.Writer, name, label string, vals map[string]int64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

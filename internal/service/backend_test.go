package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"warp/internal/workloads"
)

// TestServiceBackendSelection drives the wire contract of the backend
// field: a default (verifying) server runs "fast" requests on the fast
// executor, "sim" requests on the simulator, picks fast automatically,
// and the two agree on outputs and cycles word for word.
func TestServiceBackendSelection(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	src := workloads.Polynomial(10, 40)
	inputs := map[string][]float64{
		"z": make([]float64, 40),
		"c": make([]float64, 10),
	}
	for i := range inputs["z"] {
		inputs["z"][i] = float64(i%9)/4 - 1
	}
	for i := range inputs["c"] {
		inputs["c"][i] = float64(i+1) / 8
	}

	run := func(backend string) RunResponse {
		t.Helper()
		resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
			Source: src, Inputs: inputs, Backend: backend,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q: status %d: %s", backend, resp.StatusCode, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}

	simRR := run("sim")
	if simRR.Stats.Backend != "sim" {
		t.Errorf(`explicit sim run reports backend %q`, simRR.Stats.Backend)
	}
	fastRR := run("fast")
	if fastRR.Stats.Backend != "fast" {
		t.Errorf(`explicit fast run reports backend %q`, fastRR.Stats.Backend)
	}
	autoRR := run("")
	if autoRR.Stats.Backend != "fast" {
		t.Errorf(`auto run on a verified program reports backend %q, want "fast"`, autoRR.Stats.Backend)
	}

	if fastRR.Stats.Cycles != simRR.Stats.Cycles {
		t.Errorf("cycles diverge over the wire: fast %d, sim %d", fastRR.Stats.Cycles, simRR.Stats.Cycles)
	}
	for name, sv := range simRR.Outputs {
		fv := fastRR.Outputs[name]
		for i := range sv {
			if fv[i] != sv[i] {
				t.Fatalf("%s[%d] diverges over the wire: fast %v, sim %v", name, i, fv[i], sv[i])
			}
		}
	}

	// The per-backend counter must be live on /metrics.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	svc.Metrics().WritePrometheus(&sb, svc.CacheStats(), svc.TemplateCacheStats(), svc.PoolStats())
	text := sb.String()
	for _, want := range []string{
		`warpd_backend_runs_total{backend="fast"} 2`,
		`warpd_backend_runs_total{backend="sim"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServiceBackendFastUnverifiable: on a -no-verify server nothing
// is verified, so demanding "backend":"fast" must come back as a
// structured 422 — never a silent simulator run.
func TestServiceBackendFastUnverifiable(t *testing.T) {
	svc := New(Config{Workers: 1, NoVerify: true})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/run", RunRequest{
		Source:  workloads.Polynomial(10, 20),
		Inputs:  map[string][]float64{"z": make([]float64, 20), "c": make([]float64, 10)},
		Backend: "fast",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not structured JSON: %v: %s", err, body)
	}
	if !strings.Contains(er.Error, "not verified") {
		t.Errorf("error %q does not name the unverified program", er.Error)
	}
	if er.Hint == "" {
		t.Error("422 body carries no hint")
	}
}

// TestServiceBackendUnknown rejects made-up backend names with 400.
func TestServiceBackendUnknown(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/run", RunRequest{
		Source:  workloads.Polynomial(10, 20),
		Inputs:  map[string][]float64{"z": make([]float64, 20), "c": make([]float64, 10)},
		Backend: "turbo",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestServiceBackendPartitioned: the backend field reaches the fabric
// farm — a partitioned run on a verified kernel reports the fast
// backend in its stats.
func TestServiceBackendPartitioned(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	const tile, m, k, n = 4, 8, 8, 8
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = float64(i%7) / 4
	}
	for i := range b {
		b[i] = float64(i%5) / 8
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/run", RunRequest{
		Source:  workloads.Matmul(tile),
		Inputs:  map[string][]float64{"a": a, "bmat": b},
		Backend: "fast",
		Partition: &PartitionJSON{
			Workload: "matmul", M: m, K: k, N: n, Arrays: 2,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Stats.Backend != "fast" {
		t.Errorf("partitioned run reports backend %q, want fast", rr.Stats.Backend)
	}
	want := workloads.MatmulRef(a, b, m)
	got := rr.Outputs["c"]
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("c[%d] = %v, reference %v", i, got[i], want[i])
		}
	}
}

package service

import (
	"context"
	"errors"
	"sync"
)

// ErrBusy is returned by Pool.Do when the admission queue is full: the
// service is saturated and the client should back off and retry (the
// HTTP layer maps this to 429 with a Retry-After hint).
var ErrBusy = errors.New("service: worker pool saturated")

// ErrClosed is returned by Pool.Do after Close has begun draining.
var ErrClosed = errors.New("service: pool closed")

// job is one admitted unit of work.  The submitting goroutine waits on
// done; the worker publishes err before closing it.
type job struct {
	ctx  context.Context
	fn   func(context.Context) error
	err  error
	done chan struct{}
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	Workers      int
	QueueDepth   int // jobs currently queued (excludes running)
	QueueCap     int
	HighWater    int   // peak queued depth observed
	Rejected     int64 // Do calls refused with ErrBusy
	Completed    int64 // jobs whose fn ran to completion
	Abandoned    int64 // jobs whose context expired before a worker picked them up
	InFlight     int   // jobs executing right now
	InFlightPeak int
}

// Pool is a bounded simulation worker pool with an admission queue.
// Admission is non-blocking: when the queue is full Do fails fast with
// ErrBusy instead of queueing unbounded work, which keeps latency
// bounded under overload (the caller applies backpressure upstream).
// A job whose context expires while still queued is skipped by the
// worker — a pile-up of expired requests cannot occupy workers.
type Pool struct {
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	stats  PoolStats
}

// NewPool starts workers goroutines servicing an admission queue of
// queueCap pending jobs.
func NewPool(workers, queueCap int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	p := &Pool{queue: make(chan *job, queueCap)}
	p.stats.Workers = workers
	p.stats.QueueCap = queueCap
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.mu.Lock()
		p.stats.QueueDepth--
		p.mu.Unlock()
		if err := j.ctx.Err(); err != nil {
			// The client's deadline passed (or it disconnected) while
			// the job sat in the queue; don't burn a worker on it.
			p.mu.Lock()
			p.stats.Abandoned++
			p.mu.Unlock()
			j.err = err
			close(j.done)
			continue
		}
		p.mu.Lock()
		p.stats.InFlight++
		if p.stats.InFlight > p.stats.InFlightPeak {
			p.stats.InFlightPeak = p.stats.InFlight
		}
		p.mu.Unlock()
		j.err = j.fn(j.ctx)
		p.mu.Lock()
		p.stats.InFlight--
		p.stats.Completed++
		p.mu.Unlock()
		close(j.done)
	}
}

// Do admits fn and waits for its completion or for ctx.  If the queue
// is full it fails immediately with ErrBusy.  If ctx is done first, Do
// returns ctx.Err() without waiting; the job itself is skipped (if
// still queued) or cancelled via ctx (if running — the simulator's run
// loop polls it).
func (p *Pool) Do(ctx context.Context, fn func(context.Context) error) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	select {
	case p.queue <- j:
		p.stats.QueueDepth++
		if p.stats.QueueDepth > p.stats.HighWater {
			p.stats.HighWater = p.stats.QueueDepth
		}
		p.mu.Unlock()
	default:
		p.stats.Rejected++
		p.mu.Unlock()
		return ErrBusy
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops admission and drains: it waits for every queued and
// running job to finish.  Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

package service

import (
	"fmt"
	"sync"
	"testing"
)

// TestFlightRingEvictionConcurrent hammers the flight recorder from
// many writers at once and checks the ring invariants hold throughout:
// never more than size records, no nil slots in a snapshot, and after
// the dust settles exactly the newest size records remain, newest
// first.
func TestFlightRingEvictionConcurrent(t *testing.T) {
	const (
		size    = 8
		writers = 16
		perW    = 50
	)
	f := newFlightRecorder(size)

	// A reader snapshots continuously while the writers race, so
	// eviction and iteration interleave.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := f.snapshot()
			if len(snap) > size {
				t.Errorf("snapshot has %d records, ring size is %d", len(snap), size)
				return
			}
			for i, r := range snap {
				if r == nil {
					t.Errorf("snapshot slot %d is nil", i)
					return
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				f.add(&RequestRecord{ID: fmt.Sprintf("w%d-%d", w, i), Outcome: "ok"})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	<-readerDone

	snap := f.snapshot()
	if len(snap) != size {
		t.Fatalf("after %d adds the ring holds %d records, want %d", writers*perW, len(snap), size)
	}
	seen := map[string]bool{}
	for _, r := range snap {
		if r == nil {
			t.Fatal("nil record survived in the final snapshot")
		}
		if seen[r.ID] {
			t.Errorf("duplicate record %s in snapshot", r.ID)
		}
		seen[r.ID] = true
	}

	// Sequential tail: the last size writes are exactly what remains,
	// newest first, and get() finds each by ID.
	for i := 0; i < size*2; i++ {
		f.add(&RequestRecord{ID: fmt.Sprintf("tail-%d", i)})
	}
	snap = f.snapshot()
	for i, r := range snap {
		want := fmt.Sprintf("tail-%d", size*2-1-i)
		if r.ID != want {
			t.Errorf("snapshot[%d] = %s, want %s (newest first)", i, r.ID, want)
		}
		if got := f.get(r.ID); got != r {
			t.Errorf("get(%s) returned a different record", r.ID)
		}
	}
	if f.get("tail-0") != nil {
		t.Errorf("evicted record tail-0 still reachable via get")
	}
	if f.get("no-such-id") != nil {
		t.Errorf("get of an unknown ID returned a record")
	}
}

// TestFlightRecorderDisabled pins the size<1 no-op contract.
func TestFlightRecorderDisabled(t *testing.T) {
	f := newFlightRecorder(0)
	f.add(&RequestRecord{ID: "x"})
	if snap := f.snapshot(); len(snap) != 0 {
		t.Errorf("disabled recorder returned %d records", len(snap))
	}
	if f.get("x") != nil {
		t.Errorf("disabled recorder stored a record")
	}
}

package service

import (
	"sync"
	"time"

	"warp"
	"warp/internal/obs"
)

// RequestRecord is one served request in the flight recorder: the
// outcome scalars the operator greps for plus the full span tree the
// request accumulated (queue wait, cache lookup, per-phase compile,
// run — with the simulator's profile summary attached to the run span).
type RequestRecord struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	Start    time.Time `json:"start"`
	Outcome  string    `json:"outcome"` // ok|error|timeout|rejected|canceled|livelock
	Status   int       `json:"status"`
	Error    string    `json:"error,omitempty"`
	Program  string    `json:"program,omitempty"` // content address
	Cached   bool      `json:"cached,omitempty"`
	Cycles   int64     `json:"cycles,omitempty"`
	// TotalNS is the root span's duration — the number the log line
	// reports, against which the child spans must sum consistently.
	TotalNS int64            `json:"total_ns"`
	Spans   []obs.SpanRecord `json:"spans"`
	// HasProfile flags a profiled run; the profile itself is excluded
	// from the /debug/requests listing (it can be megabytes) and served
	// from /debug/requests/{id}/profile instead.
	HasProfile bool                `json:"has_profile,omitempty"`
	Source     *warp.SourceProfile `json:"-"`
	// Decision is the run's backend decision audit: the chosen executor,
	// the reason, and the cost model's predicted wall times beside the
	// measured one.
	Decision *warp.Decision `json:"decision,omitempty"`
	// Template reports how a symbolic request's program was produced:
	// closed-form instantiation (and from which residue class) or a
	// concrete fallback compile and why.
	Template *warp.TemplateDetail `json:"template,omitempty"`
}

// flightRecorder is a fixed-size ring of the last N RequestRecords —
// the "what just happened" debugging surface behind GET /debug/requests.
// Writes are O(1); snapshots copy, so serving a snapshot never blocks
// request recording for long.
type flightRecorder struct {
	mu   sync.Mutex
	buf  []*RequestRecord // ring storage
	next int              // next write position
	n    int              // records stored (<= len(buf))
}

// newFlightRecorder builds a ring holding the last size requests.
// size < 1 disables recording (every method no-ops).
func newFlightRecorder(size int) *flightRecorder {
	if size < 1 {
		return &flightRecorder{}
	}
	return &flightRecorder{buf: make([]*RequestRecord, size)}
}

func (f *flightRecorder) enabled() bool { return len(f.buf) > 0 }

// add records one finished request, evicting the oldest when full.
func (f *flightRecorder) add(r *RequestRecord) {
	if !f.enabled() {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = r
	f.next = (f.next + 1) % len(f.buf)
	if f.n < len(f.buf) {
		f.n++
	}
	f.mu.Unlock()
}

// snapshot returns the recorded requests, newest first.
func (f *flightRecorder) snapshot() []*RequestRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*RequestRecord, 0, f.n)
	for i := 1; i <= f.n; i++ {
		out = append(out, f.buf[(f.next-i+len(f.buf))%len(f.buf)])
	}
	return out
}

// get returns the record with the given ID, or nil.
func (f *flightRecorder) get(id string) *RequestRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 1; i <= f.n; i++ {
		if r := f.buf[(f.next-i+len(f.buf))%len(f.buf)]; r != nil && r.ID == id {
			return r
		}
	}
	return nil
}

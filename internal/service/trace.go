package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"warp"
	"warp/internal/obs"
)

// requestCtx carries the per-request trace from the handler edge to the
// finish line: the open root span plus the outcome scalars the flight
// record and the log line report.
type requestCtx struct {
	id       string
	endpoint string
	start    time.Time
	tr       *obs.Trace // nil when the flight recorder is disabled
	root     *obs.Span
	program  string // content address, once resolved
	cached   bool
	cycles   int64
	source   *warp.SourceProfile  // set when the request ran with profiling
	decision *warp.Decision       // backend decision audit, once the run completed
	template *warp.TemplateDetail // set when a symbolic request resolved its program
}

// beginRequest assigns a request ID and opens the root span.  When the
// flight recorder is disabled the trace stays nil and every span call
// downstream is a free no-op.
func (s *Server) beginRequest(endpoint string) *requestCtx {
	rc := &requestCtx{
		id:       fmt.Sprintf("r%06d", s.seq.Add(1)),
		endpoint: endpoint,
		start:    time.Now(),
	}
	if s.flight.enabled() {
		rc.tr = obs.NewTrace()
		rc.root = rc.tr.StartSpan("request", nil)
		rc.root.Annotate("endpoint", endpoint)
	}
	return rc
}

// finishRequest closes the root span, files the flight record, and
// emits the structured log line.  The logged total is the root span's
// duration, so the child spans always sum consistently against it.
func (s *Server) finishRequest(rc *requestCtx, err error) {
	rc.root.End()
	outcome := outcomeOf(err)
	status := http.StatusOK
	if err != nil {
		status = errStatus(err)
	}

	spans := rc.tr.Spans()
	total := int64(time.Since(rc.start))
	if len(spans) > 0 {
		total = spans[0].DurNS() // root is always span 0
	}

	rec := &RequestRecord{
		ID:       rc.id,
		Endpoint: rc.endpoint,
		Start:    rc.start,
		Outcome:  outcome,
		Status:   status,
		Program:  rc.program,
		Cached:   rc.cached,
		Cycles:   rc.cycles,
		TotalNS:  total,
		Spans:    spans,
		Decision: rc.decision,
		Template: rc.template,
	}
	if rc.source != nil {
		rec.HasProfile = true
		rec.Source = rc.source
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.flight.add(rec)

	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("id", rc.id),
		slog.String("endpoint", rc.endpoint),
		slog.String("outcome", outcome),
		slog.Int("status", status),
		slog.Int64("total_ns", total),
	)
	for _, name := range []string{"cache", "queue-wait", "run"} {
		if d, ok := spanDur(spans, name); ok {
			attrs = append(attrs, slog.Int64(name+"_ns", d))
		}
	}
	if rc.program != "" {
		attrs = append(attrs,
			slog.String("program", shortKey(rc.program)),
			slog.Bool("cached", rc.cached),
		)
	}
	if rc.cycles > 0 {
		attrs = append(attrs, slog.Int64("cycles", rc.cycles))
	}
	level := slog.LevelInfo
	if err != nil {
		level = slog.LevelWarn
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	s.log.LogAttrs(context.Background(), level, "request", attrs...)
}

// outcomeOf classifies an error for the flight record and log line.
// Finer-grained than the metrics result labels, which stay unchanged.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, ErrBusy), errors.Is(err, ErrClosed):
		return "rejected"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, warp.ErrLivelock):
		return "livelock"
	}
	return "error"
}

func cacheResult(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// shortKey abbreviates a content address for log lines; the flight
// record keeps the full key.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// spanDur finds the first span with the given name and returns its
// duration.
func spanDur(spans []obs.SpanRecord, name string) (int64, bool) {
	for i := range spans {
		if spans[i].Name == name {
			return spans[i].DurNS(), true
		}
	}
	return 0, false
}

// handleDebugRequests serves the flight recorder: the last N requests,
// newest first, each with its full span tree.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Requests []*RequestRecord `json:"requests"`
	}{s.flight.snapshot()})
}

// handleDebugRequest serves one recorded request's full flight record —
// outcome, span tree, and backend decision audit.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.flight.get(id)
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no recorded request %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleDebugTrace serves one recorded request as a Chrome trace-event
// JSON download, loadable in Perfetto / chrome://tracing.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.flight.get(id)
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no recorded request %q", id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".trace.json"))
	_ = obs.WriteChromeSpans(w, rec.Spans)
}

// handleDebugProfile serves one profiled request's source-line cycle
// profile.  The default download is a gzipped pprof protobuf (feed it
// straight to `go tool pprof`); ?format=text returns the hot-spot
// report and ?format=folded the flame-graph stack lines.
func (s *Server) handleDebugProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.flight.get(id)
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no recorded request %q", id)})
		return
	}
	if rec.Source == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("request %q was not profiled; rerun with \"profile\": true", id)})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".pprof.pb.gz"))
		_ = rec.Source.WritePprof(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rec.Source.Report())
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".folded"))
		_ = rec.Source.WriteFolded(w)
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown profile format %q (want pprof, text or folded)", format)})
	}
}

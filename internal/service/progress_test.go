package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"warp/internal/obs"
	"warp/internal/workloads"
)

// TestProgressHubEviction pins the bounded-memory policy: a full hub
// evicts the oldest finished entry on registration, and a live entry is
// never evicted even when that lets the map exceed the cap.
func TestProgressHubEviction(t *testing.T) {
	h := newProgressHub(3)
	a := h.register("a")
	h.register("b")
	h.register("c")
	a.finish()

	// Over capacity with one finished entry: "a" goes, the live "b" and
	// "c" stay.
	h.register("d")
	if h.get("a") != nil {
		t.Errorf("finished entry a not evicted")
	}
	for _, id := range []string{"b", "c", "d"} {
		if h.get(id) == nil {
			t.Errorf("live entry %s evicted", id)
		}
	}

	// All live: registration must not kill any stream; the hub grows
	// past its cap instead.
	h.register("e")
	for _, id := range []string{"b", "c", "d", "e"} {
		if h.get(id) == nil {
			t.Errorf("live entry %s evicted while everything was live", id)
		}
	}
	if got := len(h.list()); got != 4 {
		t.Errorf("hub tracks %d entries, want 4 (grown past cap of 3)", got)
	}

	// Once entries finish, the next registration drains the finished
	// backlog until the hub is back under its cap.
	for _, id := range []string{"b", "c"} {
		h.get(id).finish()
	}
	h.register("f")
	for _, id := range []string{"b", "c"} {
		if h.get(id) != nil {
			t.Errorf("finished backlog entry %s survived eviction", id)
		}
	}
	for _, id := range []string{"d", "e", "f"} {
		if h.get(id) == nil {
			t.Errorf("live entry %s evicted during backlog drain", id)
		}
	}

	// register is idempotent per ID: the same entry comes back.
	if h.register("d") != h.get("d") {
		t.Errorf("re-registering a live ID created a new entry")
	}
}

// TestProgressEntryDelivery pins the publish contract: a slow
// subscriber loses intermediate updates but the terminal update always
// lands, and finish is an idempotent fallback that never overwrites a
// real terminal update.
func TestProgressEntryDelivery(t *testing.T) {
	e := &progressEntry{id: "r1"}
	snap, ch, cancel := e.subscribe()
	defer cancel()
	if snap.Done || snap.Cycles != 0 {
		t.Fatalf("fresh entry snapshot = %+v, want zero", snap)
	}

	// Flood far past the channel capacity without draining.
	for i := 1; i <= 100; i++ {
		e.publish(obs.ProgressUpdate{Cycles: int64(i * 100), TotalCycles: 10000})
	}
	e.publish(obs.ProgressUpdate{Cycles: 10000, TotalCycles: 10000, Done: true})

	var last obs.ProgressUpdate
	for {
		var ok bool
		select {
		case last, ok = <-ch:
			if !ok {
				t.Fatal("subscriber channel closed")
			}
		default:
			ok = false
		}
		if !ok || last.Done {
			break
		}
	}
	if !last.Done || last.Cycles != 10000 {
		t.Errorf("terminal update lost under flood: last = %+v", last)
	}

	// finish after a real terminal update must not re-deliver.
	e.finish()
	select {
	case u := <-ch:
		t.Errorf("finish re-delivered after terminal update: %+v", u)
	default:
	}

	// On an entry that never completed, finish synthesizes the terminal
	// event from the last observed position.
	e2 := &progressEntry{id: "r2"}
	_, ch2, cancel2 := e2.subscribe()
	defer cancel2()
	e2.publish(obs.ProgressUpdate{Cycles: 42})
	e2.finish()
	deadline := time.After(time.Second)
	for {
		select {
		case u := <-ch2:
			if u.Done {
				if u.Cycles != 42 {
					t.Errorf("synthesized terminal update = %+v, want cycles 42", u)
				}
				return
			}
		case <-deadline:
			t.Fatal("finish never delivered a terminal update")
		}
	}
}

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	name string
	data ProgressEvent
}

// readSSE parses event frames off the stream until the terminal "done"
// event or an error.
func readSSE(t *testing.T, r *bufio.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var name string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended without a done event (after %d events): %v", len(events), err)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev ProgressEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("SSE data not valid JSON: %v in %q", err, line)
			}
			events = append(events, sseEvent{name: name, data: ev})
			if name == "done" {
				return events
			}
		case line == "":
			// frame separator
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

// TestProgressSSE runs a partitioned job and streams its progress over
// SSE end to end: the stream yields at least one event, cycle counts
// are monotone, and it terminates with a "done" event.  The watcher
// discovers the request ID through GET /debug/progress, exercising the
// listing too.
func TestProgressSSE(t *testing.T) {
	svc := New(Config{Workers: 2, Arrays: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	const d = 24
	a, b := workloads.LargeMatmulData(d, d, d, 13)
	runDone := make(chan error, 1)
	go func() {
		resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
			Source: workloads.Matmul(8), Inputs: map[string][]float64{"a": a, "bmat": b},
			Partition: &PartitionJSON{Workload: "matmul", M: d, K: d, N: d},
		})
		if resp.StatusCode != http.StatusOK {
			runDone <- fmt.Errorf("partitioned run: status %d: %s", resp.StatusCode, body)
			return
		}
		runDone <- nil
	}()

	// Discover the request ID via the listing.  The run may already have
	// finished — the SSE contract below holds either way.
	var id string
	for i := 0; i < 200 && id == ""; i++ {
		resp, err := client.Get(ts.URL + "/debug/progress")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Progress []ProgressEvent `json:"progress"`
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(listing.Progress) > 0 {
			id = listing.Progress[0].ID
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if id == "" {
		t.Fatal("run never appeared in /debug/progress")
	}

	resp, err := client.Get(ts.URL + "/debug/requests/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type = %q", ct)
	}

	events := readSSE(t, bufio.NewReader(resp.Body))
	if len(events) < 1 {
		t.Fatal("SSE stream delivered no events")
	}
	last := events[len(events)-1]
	if last.name != "done" || !last.data.Done {
		t.Errorf("stream did not terminate with a done event: %+v", last)
	}
	var prev int64 = -1
	for i, ev := range events {
		if ev.data.ID != id {
			t.Errorf("event %d carries ID %q, want %q", i, ev.data.ID, id)
		}
		if ev.data.Cycles < prev {
			t.Errorf("cycles regressed at event %d: %d after %d", i, ev.data.Cycles, prev)
		}
		prev = ev.data.Cycles
		if i < len(events)-1 && ev.name != "progress" {
			t.Errorf("non-terminal event %d named %q, want progress", i, ev.name)
		}
	}

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// After completion the snapshot form reports done, and a fresh SSE
	// connection gets the lone terminal event immediately.
	jresp, err := client.Get(ts.URL + "/debug/requests/" + id + "/progress?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap ProgressEvent
	err = json.NewDecoder(jresp.Body).Decode(&snap)
	jresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Errorf("post-completion snapshot not done: %+v", snap)
	}
	sresp, err := client.Get(ts.URL + "/debug/requests/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	late := readSSE(t, bufio.NewReader(sresp.Body))
	sresp.Body.Close()
	if len(late) != 1 || late[0].name != "done" {
		t.Errorf("post-completion SSE = %+v, want a single done event", late)
	}

	// Unknown IDs are a clean 404.
	nresp, err := client.Get(ts.URL + "/debug/requests/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ID: status %d, want 404", nresp.StatusCode)
	}
}

package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"warp"
	"warp/internal/obs"
)

// TemplateCompileFunc builds a symbolic template from ${...} source.
// The template cache calls it once per distinct (source, options) pair;
// tests substitute instrumented implementations (nil means
// warp.CompileTemplate).
type TemplateCompileFunc func(src string, opts warp.Options) (*warp.Template, error)

// templateFlight is one in-progress instantiation shared by every
// concurrent request for the same (template, bounds) pair.
type templateFlight struct {
	done   chan struct{}
	prog   *warp.Program
	detail *warp.TemplateDetail
	err    error
}

// instEntry is one instantiated program in a template's LRU.
type instEntry struct {
	boundsKey string
	progKey   string // global content address (Lookup key)
	prog      *warp.Program
	detail    *warp.TemplateDetail
}

// tmplEntry is one resident template plus its per-template LRU of
// instantiated programs.  The template itself is tiny (parsed source
// and fitted closed forms); the instantiations hold full microcode
// artifacts, so they are what the caps bound.
type tmplEntry struct {
	key      string
	tmpl     *warp.Template
	insts    *list.List
	byBounds map[string]*list.Element
}

// TemplateCacheStats is a snapshot of the template-cache counters.
type TemplateCacheStats struct {
	Templates int // resident templates
	Programs  int // resident instantiated programs across all templates
	Hits      int64
	Misses    int64
	Evictions int64 // instantiated programs evicted (template evictions drop all theirs)
	// Instantiations counts misses served from the closed forms;
	// Fallbacks counts misses that needed a concrete compile.
	Instantiations int64
	Fallbacks      int64
}

// TemplateCache is the service's symbolic-compilation cache: a two-level
// LRU holding templates keyed by (source, codegen options) content
// address and, under each template, the programs instantiated from it
// keyed by bound vector.  A program's public content address covers
// (template, bounds), so /run can name an instantiated program exactly
// like a concretely compiled one.  Instantiations are singleflighted;
// the probe compiles that fit a template's residue classes are
// additionally deduplicated inside the template itself.
type TemplateCache struct {
	compile      TemplateCompileFunc
	maxTemplates int
	maxPrograms  int // per-template instantiation cap

	mu      sync.Mutex
	lru     *list.List // *tmplEntry, front = most recent
	byKey   map[string]*list.Element
	progs   map[string]*instEntry // global progKey index for Lookup
	flights map[string]*templateFlight
	stats   TemplateCacheStats
}

// NewTemplateCache builds a cache holding at most maxTemplates
// templates with at most maxPrograms instantiated programs each.
func NewTemplateCache(maxTemplates, maxPrograms int, compile TemplateCompileFunc) *TemplateCache {
	if maxTemplates < 1 {
		maxTemplates = 1
	}
	if maxPrograms < 1 {
		maxPrograms = 1
	}
	if compile == nil {
		compile = warp.CompileTemplate
	}
	return &TemplateCache{
		compile:      compile,
		maxTemplates: maxTemplates,
		maxPrograms:  maxPrograms,
		lru:          list.New(),
		byKey:        map[string]*list.Element{},
		progs:        map[string]*instEntry{},
		flights:      map[string]*templateFlight{},
	}
}

// boundsKey canonicalizes a bound vector ("k=5,n=32", sorted by name)
// so equal vectors always address the same instantiation.
func boundsKey(bounds map[string]int64) string {
	names := make([]string, 0, len(bounds))
	for name := range bounds {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for i, name := range names {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%d", name, bounds[name])
	}
	return s
}

// instantiationKey is the public content address of one instantiated
// program: the template's content address (Key over source and codegen
// options) plus the canonical bound vector, with a domain marker so a
// template instantiation can never alias a plain compilation.
func instantiationKey(tmplKey, bk string) string {
	h := sha256.New()
	fmt.Fprintf(h, "symbolic\x00%s\x00bounds=%s", tmplKey, bk)
	return hex.EncodeToString(h.Sum(nil))
}

// GetObserved returns the program for (src, opts) instantiated at
// bounds, compiling the template and fitting its residue classes at
// most once per (source, options) and instantiating at most once per
// bound vector.  The returned key is the instantiated program's content
// address (usable with Lookup and /run); hit reports whether the
// program was already resident; detail reports how a miss was served
// (closed forms or concrete fallback).  rec receives the template's
// phase events when this caller owns the instantiation flight.
func (tc *TemplateCache) GetObserved(ctx context.Context, src string, opts warp.Options, bounds map[string]int64, rec obs.Recorder) (prog *warp.Program, key string, hit bool, detail *warp.TemplateDetail, err error) {
	tmplKey := Key(src, opts)
	bk := boundsKey(bounds)
	key = instantiationKey(tmplKey, bk)

	tc.mu.Lock()
	if ent, ok := tc.progs[key]; ok {
		tc.touchLocked(tmplKey, bk)
		tc.stats.Hits++
		tc.mu.Unlock()
		return ent.prog, key, true, ent.detail, nil
	}
	if f, ok := tc.flights[key]; ok {
		tc.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, key, false, nil, ctx.Err()
		}
		if f.err != nil {
			return nil, key, false, nil, f.err
		}
		tc.mu.Lock()
		tc.stats.Hits++
		tc.mu.Unlock()
		return f.prog, key, true, f.detail, nil
	}
	f := &templateFlight{done: make(chan struct{})}
	tc.flights[key] = f
	tc.stats.Misses++
	tc.mu.Unlock()

	tmpl, err := tc.template(src, opts, tmplKey)
	if err == nil {
		f.prog, f.detail, f.err = tmpl.ProgramDetail(bounds, rec)
	} else {
		f.err = err
	}

	tc.mu.Lock()
	delete(tc.flights, key)
	if f.err == nil {
		if f.detail != nil && f.detail.Symbolic {
			tc.stats.Instantiations++
		} else {
			tc.stats.Fallbacks++
		}
		tc.insertLocked(tmplKey, &instEntry{boundsKey: bk, progKey: key, prog: f.prog, detail: f.detail})
	}
	tc.mu.Unlock()
	close(f.done)
	return f.prog, key, false, f.detail, f.err
}

// template returns the resident template for tmplKey, building it on
// first use.  Building is cheap (source parsing; the probe compiles run
// lazily inside ProgramDetail), so a build race is settled
// incumbent-wins: whichever template landed first is the one everybody
// shares, keeping the class-fitting work deduplicated.
func (tc *TemplateCache) template(src string, opts warp.Options, tmplKey string) (*warp.Template, error) {
	tc.mu.Lock()
	if el, ok := tc.byKey[tmplKey]; ok {
		tc.lru.MoveToFront(el)
		tmpl := el.Value.(*tmplEntry).tmpl
		tc.mu.Unlock()
		return tmpl, nil
	}
	tc.mu.Unlock()

	tmpl, err := tc.compile(src, opts)
	if err != nil {
		return nil, err
	}

	tc.mu.Lock()
	defer tc.mu.Unlock()
	if el, ok := tc.byKey[tmplKey]; ok {
		tc.lru.MoveToFront(el)
		return el.Value.(*tmplEntry).tmpl, nil
	}
	ent := &tmplEntry{key: tmplKey, tmpl: tmpl, insts: list.New(), byBounds: map[string]*list.Element{}}
	tc.byKey[tmplKey] = tc.lru.PushFront(ent)
	for tc.lru.Len() > tc.maxTemplates {
		tail := tc.lru.Back()
		tc.lru.Remove(tail)
		te := tail.Value.(*tmplEntry)
		delete(tc.byKey, te.key)
		for el := te.insts.Front(); el != nil; el = el.Next() {
			delete(tc.progs, el.Value.(*instEntry).progKey)
			tc.stats.Evictions++
		}
	}
	return tmpl, nil
}

// touchLocked refreshes recency for a hit: the template in the outer
// LRU and the instantiation in the template's own.  Caller holds tc.mu.
func (tc *TemplateCache) touchLocked(tmplKey, bk string) {
	el, ok := tc.byKey[tmplKey]
	if !ok {
		return
	}
	tc.lru.MoveToFront(el)
	te := el.Value.(*tmplEntry)
	if iel, ok := te.byBounds[bk]; ok {
		te.insts.MoveToFront(iel)
	}
}

// insertLocked files a freshly instantiated program under its template,
// evicting from that template's LRU tail.  Caller holds tc.mu.
func (tc *TemplateCache) insertLocked(tmplKey string, ent *instEntry) {
	el, ok := tc.byKey[tmplKey]
	if !ok {
		// The template was evicted while this instantiation was in
		// flight; the program still works, it just is not resident.
		return
	}
	tc.lru.MoveToFront(el)
	te := el.Value.(*tmplEntry)
	if iel, ok := te.byBounds[ent.boundsKey]; ok {
		te.insts.MoveToFront(iel)
		return
	}
	te.byBounds[ent.boundsKey] = te.insts.PushFront(ent)
	tc.progs[ent.progKey] = ent
	for te.insts.Len() > tc.maxPrograms {
		tail := te.insts.Back()
		te.insts.Remove(tail)
		old := tail.Value.(*instEntry)
		delete(te.byBounds, old.boundsKey)
		delete(tc.progs, old.progKey)
		tc.stats.Evictions++
	}
}

// Lookup returns the resident instantiated program for a content
// address, refreshing its recency.
func (tc *TemplateCache) Lookup(key string) (*warp.Program, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	ent, ok := tc.progs[key]
	if !ok {
		return nil, false
	}
	tc.stats.Hits++
	// Recency: find the owning template by walking the (small) outer
	// LRU; the instantiation entry knows only its bounds key.
	for el := tc.lru.Front(); el != nil; el = el.Next() {
		te := el.Value.(*tmplEntry)
		if iel, ok := te.byBounds[ent.boundsKey]; ok && iel.Value.(*instEntry) == ent {
			tc.lru.MoveToFront(el)
			te.insts.MoveToFront(iel)
			break
		}
	}
	return ent.prog, true
}

// Stats snapshots the cache counters.
func (tc *TemplateCache) Stats() TemplateCacheStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	s := tc.stats
	s.Templates = tc.lru.Len()
	s.Programs = len(tc.progs)
	return s
}

// TemplateStats exposes each resident template's lifetime counters,
// keyed by template content address (diagnostic).
func (tc *TemplateCache) TemplateStats() map[string]warp.TemplateStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make(map[string]warp.TemplateStats, tc.lru.Len())
	for el := tc.lru.Front(); el != nil; el = el.Next() {
		te := el.Value.(*tmplEntry)
		out[te.key] = te.tmpl.Stats()
	}
	return out
}

package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"warp"
	"warp/internal/verify"
	"warp/internal/workloads"
)

// fetchMetrics scrapes /metrics as text.
func fetchMetrics(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServiceRejectsUnverifiableProgram pins the verification contract
// at the HTTP boundary: a program that fails static verification is
// refused with 422, the body carries one structured diagnostic per
// violated invariant, and the rejection is counted under its own
// compile-result label at /metrics.  The verifier never rejects real
// compiler output (that is its soundness contract), so the test
// substitutes a compile function returning a canned *verify.Error.
func TestServiceRejectsUnverifiableProgram(t *testing.T) {
	verr := &verify.Error{Diags: []verify.Diagnostic{
		{Invariant: verify.InvQueueOverflow, Cell: 1, Instr: 7, Loop: -1,
			Detail: "channel X: occupancy reaches 131 (> 128)"},
		{Invariant: verify.InvFPULatency, Cell: -1, Instr: 12, Loop: -1,
			Detail: "send reads r3 before the producing write lands"},
	}}
	svc := New(Config{
		Workers: 1, QueueCap: 4, CacheSize: 4,
		Compile: func(src string, opts warp.Options) (*warp.Program, error) {
			if !opts.Verify {
				t.Error("the service did not request verification")
			}
			return nil, verr
		},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Source: "module x"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body: %s", resp.StatusCode, body)
	}
	var er struct {
		Error       string              `json:"error"`
		Diagnostics []verify.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad error body %s: %v", body, err)
	}
	if len(er.Diagnostics) != 2 {
		t.Fatalf("%d diagnostics, want 2; body: %s", len(er.Diagnostics), body)
	}
	if d := er.Diagnostics[0]; d.Invariant != verify.InvQueueOverflow || d.Cell != 1 || d.Instr != 7 {
		t.Errorf("first diagnostic = %+v", d)
	}

	// /run with inline source takes the same rejection path.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/run", RunRequest{Source: "module x"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("run status = %d, want 422; body: %s", resp.StatusCode, body)
	}

	metrics := fetchMetrics(t, ts.Client(), ts.URL)
	if !strings.Contains(metrics, `warpd_compile_requests_total{result="rejected"}`) {
		t.Errorf("metrics missing the rejected-compile counter:\n%s", metrics)
	}
}

// TestServiceVerifiesByDefault compiles a real program through the
// service and checks the verify phase ran and surfaced at /metrics.
func TestServiceVerifiesByDefault(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCap: 4, CacheSize: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile",
		CompileRequest{Source: workloads.Polynomial(10, 20)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body: %s", resp.StatusCode, body)
	}
	metrics := fetchMetrics(t, ts.Client(), ts.URL)
	if !strings.Contains(metrics, `warpd_compile_phase_total{phase="verify"} 1`) {
		t.Errorf("metrics missing the verify compile phase:\n%s", metrics)
	}
}

// TestServiceNoVerifyOptOut: with NoVerify the compiler is asked not to
// verify, and the cache keys the two policies apart.
func TestServiceNoVerifyOptOut(t *testing.T) {
	var sawVerify *bool
	svc := New(Config{
		Workers: 1, QueueCap: 4, CacheSize: 4, NoVerify: true,
		Compile: func(src string, opts warp.Options) (*warp.Program, error) {
			sawVerify = &opts.Verify
			return warp.Compile(src, opts)
		},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile",
		CompileRequest{Source: workloads.Polynomial(10, 20)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body: %s", resp.StatusCode, body)
	}
	if sawVerify == nil || *sawVerify {
		t.Error("NoVerify config did not reach the compiler options")
	}
	// The unverified compilation must not alias a verified one.
	src := workloads.Polynomial(10, 20)
	on, off := warp.Options{Verify: true}, warp.Options{Verify: false}
	if Key(src, on) == Key(src, off) {
		t.Error("cache key ignores the verify option")
	}
}

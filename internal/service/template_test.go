package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"warp"
	"warp/internal/workloads"
)

// TestServiceSymbolicCompileAndRun drives the template path end to end:
// a symbolic compile builds the template once, later bound vectors
// instantiate from it (no further template builds), the instantiated
// program runs by content address with outputs identical to a plain
// compile of the substituted source, and the template counters show up
// on /metrics and in the flight record.
func TestServiceSymbolicCompileAndRun(t *testing.T) {
	var builds atomic.Int64
	svc := New(Config{
		Workers:  2,
		NoVerify: true, // keep the probe compiles cheap; parity is pinned in internal/symbolic
		CompileTemplate: func(src string, opts warp.Options) (*warp.Template, error) {
			builds.Add(1)
			return warp.CompileTemplate(src, opts)
		},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	src := workloads.MatmulSym()

	// First instantiation pays the probe compiles for the class.
	resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{
		Source:  src,
		Options: CompileOptions{Bounds: map[string]int64{"n": 8}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("symbolic compile n=8: status %d: %s", resp.StatusCode, body)
	}
	var cr8 CompileResponse
	if err := json.Unmarshal(body, &cr8); err != nil {
		t.Fatal(err)
	}
	if cr8.Template == nil || !cr8.Template.Symbolic {
		t.Fatalf("n=8 response template detail = %+v, want symbolic", cr8.Template)
	}

	// A second bound vector in the same residue class instantiates from
	// the already-fitted closed forms — same template, new program.
	resp, body = postJSON(t, client, ts.URL+"/compile", CompileRequest{
		Source:  src,
		Options: CompileOptions{Bounds: map[string]int64{"n": 14}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("symbolic compile n=14: status %d: %s", resp.StatusCode, body)
	}
	var cr14 CompileResponse
	if err := json.Unmarshal(body, &cr14); err != nil {
		t.Fatal(err)
	}
	if cr14.Template == nil || !cr14.Template.Symbolic || cr14.Template.ClassBuilt {
		t.Fatalf("n=14 response template detail = %+v, want symbolic from the fitted class", cr14.Template)
	}
	if cr14.Program == cr8.Program {
		t.Fatal("different bound vectors got the same program content address")
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("template built %d times for one (source, options) pair, want 1", got)
	}

	// Repeat is a cache hit on the instantiated program.
	resp, body = postJSON(t, client, ts.URL+"/compile", CompileRequest{
		Source:  src,
		Options: CompileOptions{Bounds: map[string]int64{"n": 14}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat compile: status %d: %s", resp.StatusCode, body)
	}
	var crRepeat CompileResponse
	if err := json.Unmarshal(body, &crRepeat); err != nil {
		t.Fatal(err)
	}
	if !crRepeat.Cached || crRepeat.Program != cr14.Program {
		t.Fatalf("repeat compile: cached=%v program=%s, want hit on %s", crRepeat.Cached, crRepeat.Program, cr14.Program)
	}

	// The instantiated program runs by its content address, and the
	// outputs match a plain compile of the substituted source.
	concrete, err := warp.Compile(workloads.Matmul(14), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]float64{}
	for _, p := range concrete.Params() {
		if p.Out {
			continue
		}
		arr := make([]float64, p.Size)
		for j := range arr {
			arr[j] = float64(j%7) / 4
		}
		inputs[p.Name] = arr
	}
	want, _, err := concrete.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, client, ts.URL+"/run", RunRequest{Program: cr14.Program, Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run by id: status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		got := rr.Outputs[name]
		if len(got) != len(w) {
			t.Fatalf("output %s has %d values, want %d", name, len(got), len(w))
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("output %s[%d] = %v, concrete compile says %v", name, j, got[j], w[j])
			}
		}
	}

	// /run with inline symbolic source resolves through the same
	// template cache (a hit now).
	resp, body = postJSON(t, client, ts.URL+"/run", RunRequest{
		Source:  src,
		Options: CompileOptions{Symbolic: true, Bounds: map[string]int64{"n": 14}},
		Inputs:  inputs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run by symbolic source: status %d: %s", resp.StatusCode, body)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(body, &rr2); err != nil {
		t.Fatal(err)
	}
	if !rr2.Cached || rr2.Program != cr14.Program {
		t.Fatalf("symbolic run: cached=%v program=%s, want hit on %s", rr2.Cached, rr2.Program, cr14.Program)
	}

	// Template counters are live on /metrics.
	tcs := svc.TemplateCacheStats()
	if tcs.Templates != 1 || tcs.Misses < 2 || tcs.Instantiations < 2 || tcs.Hits < 2 {
		t.Fatalf("template cache stats = %+v, want 1 template, >=2 misses/instantiations, >=2 hits", tcs)
	}
	var sb strings.Builder
	svc.Metrics().WritePrometheus(&sb, svc.CacheStats(), tcs, svc.PoolStats())
	text := sb.String()
	for _, want := range []string{
		"warpd_template_entries 1",
		"warpd_template_instantiations_total",
		"warpd_template_hits_total",
		"warpd_template_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Instantiation is a compile phase: the template-instantiate series
	// must appear beside parse/cellgen in the per-phase aggregates.
	if !strings.Contains(text, `warpd_compile_phase_seconds_total{phase="template-instantiate"}`) {
		t.Error("metrics missing template-instantiate compile phase series")
	}

	// The flight recorder carries the template detail for debugging.
	resp, err2 := client.Get(ts.URL + "/debug/requests")
	if err2 != nil {
		t.Fatal(err2)
	}
	defer resp.Body.Close()
	var listing struct {
		Requests []*RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range listing.Requests {
		if rec.Template != nil && rec.Template.Symbolic {
			found = true
			break
		}
	}
	if !found {
		t.Error("no flight record carries a symbolic template detail")
	}
}

// TestServiceSymbolicErrors pins the template path's error contract:
// bounds naming a parameter the source does not declare are a 400-class
// rejection, as is a missing bound.
func TestServiceSymbolicErrors(t *testing.T) {
	svc := New(Config{Workers: 1, NoVerify: true})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{
		Source:  workloads.MatmulSym(),
		Options: CompileOptions{Bounds: map[string]int64{"n": 8, "bogus": 3}},
	})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("bogus bound accepted: %s", body)
	}
	resp, body = postJSON(t, client, ts.URL+"/compile", CompileRequest{
		Source:  workloads.MatmulSym(),
		Options: CompileOptions{Symbolic: true},
	})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("missing bound accepted: %s", body)
	}
}

// TestFabricTilesShareTemplate pins the cache-shape fix for ragged
// tile-kernel sweeps: serving one kernel family at many sizes through
// the symbolic path keeps the cache O(1) in the number of sizes — one
// template, zero per-shape compile-cache entries — where the concrete
// path would cold-compile and cache every size separately.  Partitioned
// runs resolve their tile kernel through the same template.
func TestFabricTilesShareTemplate(t *testing.T) {
	svc := New(Config{Workers: 2, NoVerify: true})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	src := workloads.MatmulSym()

	// A ragged sweep of tile-kernel sizes, all one kernel family.
	sizes := []int64{8, 14, 20, 26, 32, 38}
	keys := map[string]bool{}
	for _, n := range sizes {
		resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{
			Source:  src,
			Options: CompileOptions{Bounds: map[string]int64{"n": n}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%d: status %d: %s", n, resp.StatusCode, body)
		}
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		keys[cr.Program] = true
	}
	if len(keys) != len(sizes) {
		t.Fatalf("%d distinct programs for %d sizes", len(keys), len(sizes))
	}
	tcs := svc.TemplateCacheStats()
	if tcs.Templates != 1 {
		t.Fatalf("%d templates resident after %d-size sweep, want 1 (O(1) in tile count)", tcs.Templates, len(sizes))
	}
	if entries := svc.CacheStats().Entries; entries != 0 {
		t.Fatalf("%d per-shape compile-cache entries after symbolic sweep, want 0", entries)
	}

	// A partitioned run whose tile kernel comes from the template: the
	// stitched output must match the plain-Go reference, with still only
	// the one template resident.
	const d = 16
	a, b := workloads.LargeMatmulData(d, d, d, 13)
	resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
		Source:  src,
		Options: CompileOptions{Bounds: map[string]int64{"n": 8}},
		Inputs:  map[string][]float64{"a": a, "bmat": b},
		Partition: &PartitionJSON{
			Workload: "matmul", M: d, K: d, N: d, Arrays: 2,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned symbolic run: status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	decodeBody(t, body, &rr)
	want := workloads.MatmulRectRef(a, b, d, d, d)
	got := rr.Outputs["c"]
	if len(got) != len(want) {
		t.Fatalf("%d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !rr.Cached {
		t.Error("partitioned run's tile kernel was not served from the template cache")
	}
	if tcs := svc.TemplateCacheStats(); tcs.Templates != 1 {
		t.Fatalf("%d templates after partitioned run, want 1", tcs.Templates)
	}
}

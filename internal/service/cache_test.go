package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"warp"
	"warp/internal/obs"
	"warp/internal/workloads"
)

// phaseCounter is an obs.Recorder that counts compiler Phase events by
// name — the observable proof of how many driver compilations actually
// ran.  All other events fall through to the no-op recorder.
type phaseCounter struct {
	obs.Recorder
	mu     sync.Mutex
	counts map[string]int
}

func newPhaseCounter() *phaseCounter {
	return &phaseCounter{Recorder: obs.Nop(), counts: map[string]int{}}
}

func (p *phaseCounter) Phase(name string, seconds float64, size int, note string) {
	p.mu.Lock()
	p.counts[name]++
	p.mu.Unlock()
}

func (p *phaseCounter) count(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[name]
}

func TestCacheKeyDistinguishesOptions(t *testing.T) {
	src := workloads.Polynomial(10, 50)
	plain := Key(src, warp.Options{})
	piped := Key(src, warp.Options{Pipeline: true})
	noopt := Key(src, warp.Options{NoOptimize: true})
	cells := Key(src, warp.Options{Cells: 5})
	keys := map[string]string{"default": plain, "pipeline": piped, "noopt": noopt, "cells": cells}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("options %q and %q share cache key %s", name, prev, k)
		}
		seen[k] = name
	}
	if Key(src, warp.Options{}) != plain {
		t.Error("Key is not deterministic")
	}
	// The Recorder must not affect the content address: it changes
	// instrumentation, not code generation.
	if Key(src, warp.Options{Recorder: newPhaseCounter()}) != plain {
		t.Error("Recorder leaked into the cache key")
	}
}

func TestCacheSeparatesPipelineEntries(t *testing.T) {
	src := workloads.Polynomial(10, 50)
	c := NewCache(8, nil)
	ctx := context.Background()
	_, k1, hit1, err := c.Get(ctx, src, warp.Options{})
	if err != nil || hit1 {
		t.Fatalf("first compile: hit=%v err=%v", hit1, err)
	}
	_, k2, hit2, err := c.Get(ctx, src, warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if hit2 {
		t.Error("Options{Pipeline: true} hit the default-options entry")
	}
	if k1 == k2 {
		t.Error("pipeline and default compiles share a key")
	}
	if s := c.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2 misses, 2 entries", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	srcs := []string{
		workloads.Polynomial(10, 40),
		workloads.Polynomial(10, 50),
		workloads.Polynomial(10, 60),
	}
	c := NewCache(2, nil)
	ctx := context.Background()
	var keys []string
	for _, src := range srcs[:2] {
		_, k, _, err := c.Get(ctx, src, warp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// Touch the older entry so it is the most recent; the untouched one
	// must be the eviction victim.
	if _, ok := c.Lookup(keys[0]); !ok {
		t.Fatal("keys[0] missing before eviction")
	}
	_, k3, _, err := c.Get(ctx, srcs[2], warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(keys[1]); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := c.Lookup(keys[0]); !ok {
		t.Error("recently touched entry was evicted")
	}
	if _, ok := c.Lookup(k3); !ok {
		t.Error("newest entry was evicted")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", s)
	}
}

// TestCacheSingleflight proves two concurrent compiles of the same
// source run the driver exactly once: the second caller waits on the
// first flight and shares its *Program.  The driver-invocation count is
// asserted two ways — an atomic counter around the compile function and
// the obs phase recorder (one "parse" phase means one compilation).
func TestCacheSingleflight(t *testing.T) {
	rec := newPhaseCounter()
	var invocations atomic.Int32
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	compile := func(src string, opts warp.Options) (*warp.Program, error) {
		invocations.Add(1)
		entered <- struct{}{}
		<-release
		opts.Recorder = rec
		return warp.Compile(src, opts)
	}
	c := NewCache(8, compile)
	src := workloads.PolynomialPaper()

	type result struct {
		prog *warp.Program
		hit  bool
		err  error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			prog, _, hit, err := c.Get(context.Background(), src, warp.Options{})
			results <- result{prog, hit, err}
		}()
	}
	<-entered // one flight is inside the compile function
	// The other goroutine either becomes a waiter on that flight or has
	// not reached the cache yet; release the gate and settle both.
	close(release)
	r1, r2 := <-results, <-results
	if r1.err != nil || r2.err != nil {
		t.Fatalf("errors: %v, %v", r1.err, r2.err)
	}
	if n := invocations.Load(); n != 1 {
		t.Fatalf("driver invoked %d times, want exactly 1", n)
	}
	if n := rec.count("parse"); n != 1 {
		t.Fatalf("phase recorder saw %d parse phases, want exactly 1", n)
	}
	if r1.prog != r2.prog {
		t.Error("concurrent callers got distinct *Program values")
	}
	if r1.hit == r2.hit {
		t.Errorf("want one miss (the flight owner) and one hit (the waiter); got hit=%v and hit=%v", r1.hit, r2.hit)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit", s)
	}
}

// TestCacheErrorNotCached proves a failed compilation is retried, not
// pinned.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8, nil)
	ctx := context.Background()
	if _, _, _, err := c.Get(ctx, "cellprogram nonsense(", warp.Options{}); err == nil {
		t.Fatal("want a compile error")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("error was cached: %+v", s)
	}
	// Second attempt recompiles (another miss), not a cached error.
	if _, _, _, err := c.Get(ctx, "cellprogram nonsense(", warp.Options{}); err == nil {
		t.Fatal("want a compile error again")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 misses", s)
	}
}

// Package service is the long-lived compile-and-run layer over the W2
// compiler and the Warp simulator: a content-addressed LRU compile
// cache with singleflight deduplication, a bounded simulation worker
// pool with admission control and per-request deadlines, and an HTTP
// front end exporting Prometheus metrics.  It turns the one-shot
// compile-from-scratch CLIs into a daemon that compiles once and runs
// many times.
package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"warp"
	"warp/internal/obs"
)

// CompileFunc compiles W2 source under the given options.  The cache
// calls it once per distinct (source, options) pair; tests substitute
// instrumented implementations.
type CompileFunc func(src string, opts warp.Options) (*warp.Program, error)

// Key is the content address of one compilation: the SHA-256 of the
// source text and every option that affects code generation.  Two
// requests with the same Key are guaranteed the same microcode, so the
// cache may hand both the same *Program (safe — see warp.Program).
func Key(src string, opts warp.Options) string {
	h := sha256.New()
	h.Write([]byte(src))
	// The option encoding is versioned by its shape: any new
	// codegen-affecting option must be appended here or identical
	// sources would alias across differing code generation.
	// CompileWorkers is deliberately absent — the compiler's output is
	// byte-identical at any worker count, so compilations differing
	// only in parallelism must share one cache entry.
	fmt.Fprintf(h, "\x00noopt=%t\x00pipeline=%t\x00cells=%d\x00verify=%t",
		opts.NoOptimize, opts.Pipeline, opts.Cells, opts.Verify)
	return hex.EncodeToString(h.Sum(nil))
}

// flight is one in-progress compilation shared by every concurrent
// request for the same key.
type flight struct {
	done chan struct{} // closed when the compile finishes
	prog *warp.Program
	err  error
}

// entry is one cached compilation in the LRU list.
type entry struct {
	key  string
	prog *warp.Program
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// Cache is a content-addressed LRU compile cache with singleflight
// deduplication: concurrent Get calls for the same key wait on a single
// compilation instead of compiling redundantly.  Compilation errors are
// never cached — the next request retries.
type Cache struct {
	compile CompileFunc
	max     int

	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *entry
	byKey   map[string]*list.Element
	flights map[string]*flight
	stats   CacheStats
}

// NewCache builds a cache holding at most max compiled programs,
// compiling misses with the given function (nil means warp.Compile).
func NewCache(max int, compile CompileFunc) *Cache {
	if max < 1 {
		max = 1
	}
	if compile == nil {
		compile = warp.Compile
	}
	return &Cache{
		compile: compile,
		max:     max,
		lru:     list.New(),
		byKey:   map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// Get returns the compiled program for (src, opts), compiling it at
// most once no matter how many goroutines ask concurrently.  The
// returned key is the program's content address (usable with Lookup);
// hit reports whether the program came from the cache rather than a
// fresh compilation.  ctx bounds only this caller's wait — an abandoned
// compilation still completes and populates the cache for others.
func (c *Cache) Get(ctx context.Context, src string, opts warp.Options) (prog *warp.Program, key string, hit bool, err error) {
	return c.GetObserved(ctx, src, opts, nil)
}

// GetObserved is Get with a per-request instrumentation recorder: when
// this caller ends up owning the compilation flight, rec receives the
// compiler's Phase events (a request-scoped trace turns them into
// spans).  Singleflight waiters and cache hits see no phases — their
// request did not compile anything, and saying so is the point of
// request-scoped tracing.  rec never influences the content address.
func (c *Cache) GetObserved(ctx context.Context, src string, opts warp.Options, rec obs.Recorder) (prog *warp.Program, key string, hit bool, err error) {
	key = Key(src, opts)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		prog = el.Value.(*entry).prog
		c.mu.Unlock()
		return prog, key, true, nil
	}
	if f, ok := c.flights[key]; ok {
		// Someone else is compiling this key: wait for it and treat
		// the shared result as a hit for this caller.
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, key, false, ctx.Err()
		}
		if f.err != nil {
			return nil, key, false, f.err
		}
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		return f.prog, key, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	if obs.Enabled(rec) {
		copts := opts
		copts.Recorder = obs.Multi(opts.Recorder, rec)
		f.prog, f.err = c.compile(src, copts)
	} else {
		f.prog, f.err = c.compile(src, opts)
	}

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insertLocked(key, f.prog)
	}
	c.mu.Unlock()
	close(f.done)
	return f.prog, key, false, f.err
}

// Lookup returns the cached program for a content address, if present,
// and refreshes its recency.  An evicted or never-compiled key returns
// ok=false; the caller must resubmit the source.
func (c *Cache) Lookup(key string) (*warp.Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry).prog, true
}

// insertLocked adds a freshly compiled program, evicting from the LRU
// tail.  Caller holds c.mu.
func (c *Cache) insertLocked(key string, prog *warp.Program) {
	if el, ok := c.byKey[key]; ok {
		// A racing flight for the same key already landed; keep the
		// incumbent (identical by construction) and refresh it.
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, prog: prog})
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Keys returns the cached content addresses, most recently used first
// (diagnostic; order is the eviction order reversed).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"warp"
	"warp/internal/workloads"
)

// e2eProgram is one of the distinct workloads the end-to-end test
// submits.
type e2eProgram struct {
	name   string
	src    string
	inputs map[string][]float64
	want   map[string][]float64 // from direct Program.Run
}

// buildPrograms compiles the three distinct W2 programs directly (no
// service) and captures the ground-truth outputs.
func buildPrograms(t *testing.T) []*e2eProgram {
	t.Helper()
	progs := []*e2eProgram{
		{name: "polynomial", src: workloads.Polynomial(10, 100)},
		{name: "conv1d", src: workloads.Conv1D(9, 128)},
		{name: "matmul", src: workloads.Matmul(8)},
	}
	for _, p := range progs {
		compiled, err := warp.Compile(p.src, warp.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		p.inputs = map[string][]float64{}
		for i, param := range compiled.Params() {
			if param.Out {
				continue
			}
			arr := make([]float64, param.Size)
			for j := range arr {
				arr[j] = float64((i+1)*(j%13)) / 8
			}
			p.inputs[param.Name] = arr
		}
		out, _, err := compiled.Run(p.inputs)
		if err != nil {
			t.Fatalf("%s: direct run: %v", p.name, err)
		}
		p.want = out
	}
	return progs
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestServiceEndToEnd drives the acceptance scenario: 16 concurrent
// clients over 3 distinct programs get outputs identical to direct
// Program.Run, the cache absorbs all repeats (>= 13 hits), a 1ms
// deadline times out without wedging a worker, and /metrics is valid
// Prometheus text exposing the compile/run counters.
func TestServiceEndToEnd(t *testing.T) {
	progs := buildPrograms(t)
	svc := New(Config{Workers: 4, QueueCap: 64, CacheSize: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := progs[i%len(progs)]
			resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
				Source: p.src,
				Inputs: p.inputs,
			})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("client %d (%s): status %d: %s", i, p.name, resp.StatusCode, body)
				return
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				errs[i] = fmt.Errorf("client %d: %v", i, err)
				return
			}
			for name, want := range p.want {
				got := rr.Outputs[name]
				if len(got) != len(want) {
					errs[i] = fmt.Errorf("client %d (%s): %s has %d values, want %d", i, p.name, name, len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs[i] = fmt.Errorf("client %d (%s): %s[%d] = %v, direct Run says %v",
							i, p.name, name, j, got[j], want[j])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	cs := svc.CacheStats()
	if cs.Misses != int64(len(progs)) {
		t.Errorf("cache misses = %d, want %d (one per distinct program)", cs.Misses, len(progs))
	}
	if cs.Hits < clients-int64(len(progs)) {
		t.Errorf("cache hits = %d, want >= %d", cs.Hits, clients-len(progs))
	}

	// A 1ms deadline on a simulation sized to far outrun it must come
	// back as a timeout — and must not wedge the worker that ran it.
	// n=20000 simulates for ~hundreds of milliseconds, far beyond the
	// deadline even with coarse timer delivery.
	big := workloads.Polynomial(10, 20000)
	resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{Source: big})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile big: status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	bigProg, err := warp.Compile(big, warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bigInputs := map[string][]float64{}
	for _, param := range bigProg.Params() {
		if !param.Out {
			bigInputs[param.Name] = make([]float64, param.Size)
		}
	}
	resp, body = postJSON(t, client, ts.URL+"/run", RunRequest{
		Program:   cr.Program,
		Inputs:    bigInputs,
		TimeoutMS: 1,
		// Slow the clock the only way a simulator can be slowed from
		// outside: nothing — instead rely on the deadline landing
		// before or during the run; either path must map to 504.
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ms deadline: status %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("timeout body does not mention the deadline: %s", body)
	}

	// The pool must still serve promptly after the timeout.
	p := progs[0]
	resp, body = postJSON(t, client, ts.URL+"/run", RunRequest{Source: p.src, Inputs: p.inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after timeout: status %d: %s", resp.StatusCode, body)
	}

	// Scrape /metrics and validate the exposition format.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(mbody)
	validatePrometheus(t, text)
	for _, want := range []string{
		`warpd_compile_requests_total{result="miss"}`,
		`warpd_run_requests_total{result="ok"}`,
		`warpd_run_requests_total{result="timeout"}`,
		"warpd_compile_seconds_bucket",
		"warpd_run_seconds_sum",
		"warpd_cache_hits_total",
		"warpd_sim_cycles_total",
		"warpd_fpu_add_utilization_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

var (
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$`)
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
)

// validatePrometheus checks every line of the text exposition format
// and that each sample's metric family has a preceding # TYPE.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	for n, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("metrics line %d: malformed comment: %q", n+1, line)
			}
			if fields := strings.Fields(line); len(fields) >= 3 && fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("metrics line %d: malformed sample: %q", n+1, line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] {
				family = base
				break
			}
		}
		if !typed[family] {
			t.Errorf("metrics line %d: sample %s has no # TYPE", n+1, name)
		}
	}
}

// TestServiceBatch exercises /batch: mixed success and per-item errors
// in request order.
func TestServiceBatch(t *testing.T) {
	progs := buildPrograms(t)
	svc := New(Config{Workers: 2, QueueCap: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := BatchRequest{Requests: []RunRequest{
		{Source: progs[0].src, Inputs: progs[0].inputs},
		{Source: "cellprogram broken(", Inputs: nil},
		{Source: progs[1].src, Inputs: progs[1].inputs},
	}}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(br.Results))
	}
	if br.Results[0].Result == nil || br.Results[0].Error != "" {
		t.Errorf("item 0: want success, got %+v", br.Results[0])
	}
	if br.Results[1].Result != nil || br.Results[1].Error == "" {
		t.Errorf("item 1: want a compile error, got %+v", br.Results[1])
	}
	if br.Results[2].Result == nil {
		t.Errorf("item 2: want success, got %+v", br.Results[2])
	}
	for name, want := range progs[0].want {
		got := br.Results[0].Result.Outputs[name]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("batch item 0: %s[%d] = %v, want %v", name, j, got[j], want[j])
			}
		}
	}
}

// TestServiceBackpressure saturates a 1-worker, tiny-queue service and
// expects 429 + Retry-After on the overflow requests.
func TestServiceBackpressure(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCap: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	// Occupy the single worker and the single queue slot with slow
	// simulations (large polynomial, backend pinned to the simulator so
	// the fast executor cannot drain the queue first), then overflow.
	big := workloads.Polynomial(10, 5000)
	prog, err := warp.Compile(big, warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]float64{}
	for _, param := range prog.Params() {
		if !param.Out {
			inputs[param.Name] = make([]float64, param.Size)
		}
	}
	// Warm the cache so the run requests go straight to the pool.
	resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{Source: big})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d: %s", resp.StatusCode, body)
	}

	const inflight = 6
	type outcome struct {
		status     int
		retryAfter string
	}
	outcomes := make(chan outcome, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, client, ts.URL+"/run", RunRequest{Source: big, Inputs: inputs, Backend: "sim"})
			outcomes <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	wg.Wait()
	close(outcomes)
	counts := map[int]int{}
	for o := range outcomes {
		counts[o.status]++
		if o.status != http.StatusTooManyRequests {
			continue
		}
		// Retry-After accompanies every 429 and is derived from observed
		// load, but the contract is a positive integer number of seconds.
		secs, err := strconv.Atoi(o.retryAfter)
		if err != nil {
			t.Errorf("429 Retry-After %q is not an integer: %v", o.retryAfter, err)
		} else if secs < 1 {
			t.Errorf("429 Retry-After = %d, want >= 1", secs)
		}
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("no request was turned away with 429; statuses: %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under load; statuses: %v", counts)
	}

	ps := svc.PoolStats()
	if ps.Rejected == 0 {
		t.Error("pool recorded no rejections")
	}
}

// TestServiceGracefulClose proves Close waits for admitted runs.
func TestServiceGracefulClose(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	p := workloads.Polynomial(10, 100)
	prog, err := warp.Compile(p, warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]float64{}
	for _, param := range prog.Params() {
		if !param.Out {
			inputs[param.Name] = make([]float64, param.Size)
		}
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/run", RunRequest{Source: p, Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d: %s", resp.StatusCode, body)
	}
	svc.Close()
	if got := svc.PoolStats().InFlight; got != 0 {
		t.Errorf("in-flight after Close = %d, want 0", got)
	}
	// Post-close runs are refused, not hung.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/run",
		bytes.NewReader([]byte(`{"source":"x","inputs":{}}`)))
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Error("run succeeded after Close")
	}
}

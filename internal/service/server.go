package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"warp"
	"warp/internal/obs"
	"warp/internal/verify"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent simulations (default 4).
	Workers int
	// QueueCap is the admission-queue depth beyond the workers; a full
	// queue turns new run requests away with 429 (default 64).
	QueueCap int
	// CacheSize is the number of compiled programs kept resident
	// (default 128).
	CacheSize int
	// DefaultTimeout bounds a run request that names no deadline of its
	// own (default 30s).
	DefaultTimeout time.Duration
	// MaxCycles is the per-run livelock guard (0 keeps the simulator
	// default of 1<<28).
	MaxCycles int64
	// Arrays is the default fabric width for partitioned run requests
	// that name no arrays count of their own (default 2).
	Arrays int
	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
	// NoVerify disables the static microcode verifier.  By default the
	// service refuses to serve a program it cannot prove safe: every
	// compilation runs the verifier, and a violation is returned as 422
	// with one structured diagnostic per violated invariant.
	NoVerify bool
	// CompileWorkers bounds each compilation's internal parallelism
	// (warp.Options.CompileWorkers).  It is a server policy, not a wire
	// option: the compiled program is byte-identical at any setting, so
	// clients have no say and the cache key ignores it.  0 defaults to
	// GOMAXPROCS capped at Workers, so one compiling request cannot
	// out-schedule the whole simulation pool; negative forces serial.
	CompileWorkers int
	// Compile substitutes the compiler entry point (nil = warp.Compile);
	// tests use it to instrument driver invocations.
	Compile CompileFunc
	// CompileTemplate substitutes the symbolic template entry point
	// (nil = warp.CompileTemplate); tests use it to count template
	// builds behind the template cache.
	CompileTemplate TemplateCompileFunc
	// TemplatePrograms caps how many instantiated programs each
	// resident template keeps (default 64); the template count itself
	// is bounded by CacheSize.
	TemplatePrograms int
	// Logger receives one structured record per served request (ID,
	// outcome, span durations).  nil discards.
	Logger *slog.Logger
	// FlightSize is how many recent requests the flight recorder keeps
	// for GET /debug/requests (default 64; negative disables per-request
	// tracing entirely).
	FlightSize int
}

// Server is the compile-and-run service: an http.Handler in front of
// the compile cache and the simulation worker pool.
type Server struct {
	cache     *Cache
	templates *TemplateCache
	pool      *Pool
	metrics   *Metrics
	cfg       Config
	mux       *http.ServeMux
	log       *slog.Logger
	flight    *flightRecorder
	progress  *progressHub
	seq       atomic.Int64 // request-ID counter
}

// New builds a Server from the config, applying defaults for zero
// fields.
func New(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Arrays == 0 {
		cfg.Arrays = 2
	}
	if cfg.FlightSize == 0 {
		cfg.FlightSize = 64
	}
	if cfg.CompileWorkers == 0 {
		cfg.CompileWorkers = runtime.GOMAXPROCS(0)
		if cfg.CompileWorkers > cfg.Workers {
			cfg.CompileWorkers = cfg.Workers
		}
	}
	if cfg.CompileWorkers < 1 {
		cfg.CompileWorkers = 1
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.TemplatePrograms == 0 {
		cfg.TemplatePrograms = 64
	}
	s := &Server{
		cache:     NewCache(cfg.CacheSize, cfg.Compile),
		templates: NewTemplateCache(cfg.CacheSize, cfg.TemplatePrograms, cfg.CompileTemplate),
		pool:      NewPool(cfg.Workers, cfg.QueueCap),
		metrics:   NewMetrics(),
		cfg:       cfg,
		mux:       http.NewServeMux(),
		log:       logger,
		flight:    newFlightRecorder(cfg.FlightSize),
		progress:  newProgressHub(cfg.FlightSize),
	}
	s.mux.HandleFunc("POST /compile", s.handleCompile)
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	s.mux.HandleFunc("GET /debug/requests/{id}/trace", s.handleDebugTrace)
	s.mux.HandleFunc("GET /debug/requests/{id}/profile", s.handleDebugProfile)
	s.mux.HandleFunc("GET /debug/requests/{id}/progress", s.handleRequestProgress)
	s.mux.HandleFunc("GET /debug/progress", s.handleDebugProgress)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the worker pool: every admitted run finishes before it
// returns.  New run submissions fail with ErrClosed.
func (s *Server) Close() { s.pool.Close() }

// CompileOptions is the wire form of warp.Options.
type CompileOptions struct {
	NoOptimize bool `json:"no_optimize,omitempty"`
	Pipeline   bool `json:"pipeline,omitempty"`
	Cells      int  `json:"cells,omitempty"`
	// Symbolic compiles the source as a ${...} template through the
	// template cache: the first request per (source, options) pays the
	// probe compiles, later bound vectors instantiate in microseconds.
	// Bounds gives the template parameter values (e.g. {"n": 32});
	// non-empty Bounds implies Symbolic.
	Symbolic bool             `json:"symbolic,omitempty"`
	Bounds   map[string]int64 `json:"bounds,omitempty"`
}

// symbolic reports whether the request asked for the template path.
func (o CompileOptions) symbolic() bool { return o.Symbolic || len(o.Bounds) > 0 }

func (o CompileOptions) warpOptions() warp.Options {
	return warp.Options{NoOptimize: o.NoOptimize, Pipeline: o.Pipeline, Cells: o.Cells}
}

// options maps wire options to compiler options under the server's
// verification policy (verify unless configured off) and compile
// parallelism policy.
func (s *Server) options(o CompileOptions) warp.Options {
	opts := o.warpOptions()
	opts.Verify = !s.cfg.NoVerify
	opts.CompileWorkers = s.cfg.CompileWorkers
	return opts
}

// CompileRequest asks for a compilation.
type CompileRequest struct {
	Source  string         `json:"source"`
	Options CompileOptions `json:"options"`
}

// ParamJSON describes one module parameter on the wire.
type ParamJSON struct {
	Name string `json:"name"`
	Out  bool   `json:"out"`
	Size int    `json:"size"`
}

// CompileResponse carries the program's content address for later /run
// calls, plus the compiler metrics.  Template reports how a symbolic
// request was served (closed-form instantiation or concrete fallback,
// and which residue class).
type CompileResponse struct {
	Program  string               `json:"program"` // content address (cache key)
	Cached   bool                 `json:"cached"`
	Module   string               `json:"module"`
	Cells    int                  `json:"cells"`
	Skew     int64                `json:"skew"`
	Params   []ParamJSON          `json:"params"`
	Template *warp.TemplateDetail `json:"template,omitempty"`
}

// RunRequest executes a program: either a previously returned content
// address or inline source (compiled through the same cache).  With
// Partition set, the program is treated as an array-sized tile kernel
// and Inputs as the full oversized problem operands: the server
// partitions the problem into tiles and farms them across concurrent
// simulator instances.
type RunRequest struct {
	Program   string               `json:"program,omitempty"`
	Source    string               `json:"source,omitempty"`
	Options   CompileOptions       `json:"options"`
	Inputs    map[string][]float64 `json:"inputs"`
	TimeoutMS int64                `json:"timeout_ms,omitempty"`
	MaxCycles int64                `json:"max_cycles,omitempty"`
	Partition *PartitionJSON       `json:"partition,omitempty"`
	// Profile turns on per-µPC counter collection for this run; the
	// source-line profile is then downloadable from
	// GET /debug/requests/{id}/profile while the request stays in the
	// flight recorder.
	Profile bool `json:"profile,omitempty"`
	// Backend selects the execution backend: "auto" (or omitted) runs
	// verified programs on the fast dataflow executor and everything
	// else on the cycle-accurate simulator; "sim" forces simulation;
	// "fast" demands the fast executor and fails with 422 when the
	// program is not verified (e.g. the server runs with -no-verify) —
	// there is no silent fallback.
	Backend string `json:"backend,omitempty"`
}

// PartitionJSON describes the oversized problem a partitioned run
// request carries.  Inputs are keyed by the tile kernel's input
// parameter names, holding the full problem operands: for matmul the
// first declared input is the m×k A matrix and the second the k×n B
// matrix; for conv1d the parameter sized to the array is the kernel
// weights and the other is the full signal.
type PartitionJSON struct {
	Workload string `json:"workload"` // "matmul" or "conv1d"
	// Matmul problem shape (row-major operands).
	M int `json:"m,omitempty"`
	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
	// Arrays overrides the server's default fabric width.
	Arrays int `json:"arrays,omitempty"`
	// TileRetries is how many extra attempts a livelocked tile gets
	// (default 1); TileDeadlineMS bounds each attempt (0 = none).
	TileRetries    int   `json:"tile_retries,omitempty"`
	TileDeadlineMS int64 `json:"tile_deadline_ms,omitempty"`
}

// FabricJSON is the wire form of the fabric-level statistics of one
// partitioned run.
type FabricJSON struct {
	Tiles           int     `json:"tiles"`
	Arrays          int     `json:"arrays"`
	Dispatched      int     `json:"dispatched"`
	Retried         int     `json:"retried"`
	Failed          int     `json:"failed"`
	AggregateCycles int64   `json:"aggregate_cycles"`
	MakespanCycles  int64   `json:"makespan_cycles"`
	Speedup         float64 `json:"speedup"`
	StagedWords     int64   `json:"staged_words"`
}

// RunStatsJSON is the wire form of the run statistics.
type RunStatsJSON struct {
	Cycles         int64   `json:"cycles"`
	Backend        string  `json:"backend,omitempty"`
	MaxQueue       int     `json:"max_queue"`
	MaxQueueAt     string  `json:"max_queue_at,omitempty"`
	AddUtilization float64 `json:"add_utilization"`
	MulUtilization float64 `json:"mul_utilization"`
}

// RunResponse carries the outputs and statistics of one run.  Fabric
// is set only for partitioned runs; Request names the flight record a
// profiled run's download URL is built from; Decision is the backend
// decision audit — which executor ran the program, why, and the cost
// model's predicted wall times beside the measured one.
type RunResponse struct {
	Program  string               `json:"program"`
	Cached   bool                 `json:"cached"`
	Outputs  map[string][]float64 `json:"outputs"`
	Stats    RunStatsJSON         `json:"stats"`
	Fabric   *FabricJSON          `json:"fabric,omitempty"`
	Request  string               `json:"request,omitempty"`
	Decision *warp.Decision       `json:"decision,omitempty"`
}

// BatchRequest runs several requests through the pool concurrently.
type BatchRequest struct {
	Requests []RunRequest `json:"requests"`
}

// BatchItem is one batch result: exactly one of Result and Error is
// set.
type BatchItem struct {
	Result *RunResponse `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// BatchResponse preserves request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Diagnostics carries the static verifier's structured findings
	// when the error is a verification rejection (one entry per
	// violated invariant: cell, instruction index, invariant name).
	Diagnostics []verify.Diagnostic `json:"diagnostics,omitempty"`
	// Hint tells the client how to make the request processable, e.g.
	// how to satisfy a "backend":"fast" demand on an unverified program.
	Hint string `json:"hint,omitempty"`
}

// httpError is an error carrying its HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style
		// accounting keeps logs honest (no stdlib constant exists).
		return 499
	case errors.Is(err, warp.ErrLivelock):
		return http.StatusUnprocessableEntity
	case errors.Is(err, warp.ErrUnverified):
		// The request demanded the fast backend for a program the
		// server cannot prove safe; refusing beats silently running the
		// simulator instead.
		return http.StatusUnprocessableEntity
	case isVerifyError(err):
		// The source compiled but the microcode failed verification:
		// the entity is well-formed yet unprocessable as a program.
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// isVerifyError reports whether err is a static-verification rejection.
func isVerifyError(err error) bool {
	var verr *verify.Error
	return errors.As(err, &verr)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := errStatus(err)
	if status == http.StatusTooManyRequests {
		// Backpressure contract: tell well-behaved clients when to come
		// back instead of letting them hammer the admission queue.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	resp := errorResponse{Error: err.Error()}
	var verr *verify.Error
	if errors.As(err, &verr) {
		resp.Diagnostics = verr.Diags
	}
	if errors.Is(err, warp.ErrUnverified) {
		resp.Hint = `the fast backend runs only verified programs; restart the server without -no-verify, or use "backend":"sim"`
	}
	writeJSON(w, status, resp)
}

// retryAfterSeconds derives the 429 backoff hint from observed load:
// the median completed-run latency times the work queued ahead of a
// retry, spread across the workers.  Floor 1s (the header must be a
// positive integer), cap 60s so a pathological median cannot tell
// clients to go away for minutes.
func (s *Server) retryAfterSeconds() int {
	ps := s.pool.Stats()
	est := s.metrics.MedianRunSeconds() * float64(ps.QueueDepth+ps.InFlight+1) / float64(ps.Workers)
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &httpError{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()}
	}
	return nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Source == "" {
		s.writeError(w, &httpError{http.StatusBadRequest, "missing source"})
		return
	}
	rc := s.beginRequest("/compile")
	start := time.Now()
	cacheSpan := rc.tr.StartSpan("cache", rc.root)
	prog, key, hit, detail, err := s.getProgram(r.Context(), req.Source, req.Options,
		obs.SpanPhases(rc.tr, cacheSpan))
	if err != nil {
		cacheSpan.End()
		if isVerifyError(err) {
			s.metrics.Compile("rejected", time.Since(start).Seconds())
		} else {
			s.metrics.Compile("error", 0)
		}
		s.finishRequest(rc, err)
		s.writeError(w, err)
		return
	}
	cacheSpan.Annotate("result", cacheResult(hit))
	if detail != nil {
		annotateTemplate(cacheSpan, detail)
	}
	cacheSpan.End()
	rc.program, rc.cached, rc.template = key, hit, detail
	s.metrics.Compile(cacheResult(hit), time.Since(start).Seconds())
	if !hit {
		s.metrics.CompilePhases(prog.Phases())
		s.metrics.CompileSched(prog.Sched().Totals())
	}
	s.finishRequest(rc, nil)
	resp := CompileResponse{
		Program:  key,
		Cached:   hit,
		Module:   prog.Metrics().Name,
		Cells:    prog.Cells(),
		Skew:     prog.Skew(),
		Template: detail,
	}
	for _, p := range prog.Params() {
		resp.Params = append(resp.Params, ParamJSON{Name: p.Name, Out: p.Out, Size: p.Size})
	}
	writeJSON(w, http.StatusOK, resp)
}

// getProgram resolves (source, options) through the right cache:
// symbolic requests go through the template cache (template compiled
// once, program instantiated per bound vector), everything else
// through the plain compile cache.  rec receives compile or
// instantiation Phase events when this request does the work.
func (s *Server) getProgram(ctx context.Context, src string, o CompileOptions, rec obs.Recorder) (*warp.Program, string, bool, *warp.TemplateDetail, error) {
	if o.symbolic() {
		return s.templates.GetObserved(ctx, src, s.options(o), o.Bounds, rec)
	}
	prog, key, hit, err := s.cache.GetObserved(ctx, src, s.options(o), rec)
	return prog, key, hit, nil, err
}

// annotateTemplate stamps how a symbolic request was served onto its
// cache span, so request traces tell instantiations from fallbacks.
func annotateTemplate(sp *obs.Span, d *warp.TemplateDetail) {
	sp.Annotate("symbolic", fmt.Sprint(d.Symbolic))
	if d.Class != "" {
		sp.Annotate("class", d.Class)
	}
	if d.FallbackReason != "" {
		sp.Annotate("fallback_reason", d.FallbackReason)
	}
}

// resolve produces the program for a run request, through the cache.
// rec receives compiler Phase events if this request ends up compiling.
func (s *Server) resolve(ctx context.Context, req *RunRequest, rec obs.Recorder) (*warp.Program, string, bool, *warp.TemplateDetail, error) {
	switch {
	case req.Program != "" && req.Source != "":
		return nil, "", false, nil, &httpError{http.StatusBadRequest, "give either program or source, not both"}
	case req.Program != "":
		prog, ok := s.cache.Lookup(req.Program)
		if !ok {
			// Instantiated programs live in the template cache under
			// their own (template, bounds) content addresses.
			prog, ok = s.templates.Lookup(req.Program)
		}
		if !ok {
			return nil, "", false, nil, &httpError{http.StatusNotFound,
				fmt.Sprintf("unknown or evicted program %q; POST /compile again", req.Program)}
		}
		return prog, req.Program, true, nil, nil
	case req.Source != "":
		return s.getProgram(ctx, req.Source, req.Options, rec)
	}
	return nil, "", false, nil, &httpError{http.StatusBadRequest, "missing program or source"}
}

// runOne serves one run request end to end: resolve (cache), admit
// (pool), simulate (with deadline), aggregate (metrics) — with each
// stage recorded as a span on the request's trace.
func (s *Server) runOne(ctx context.Context, endpoint string, req *RunRequest) (*RunResponse, error) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	rc := s.beginRequest(endpoint)
	ent := s.progress.register(rc.id)
	// Whatever path the request dies on, the progress stream must end
	// with a terminal event (a no-op when the run delivered its own).
	defer ent.finish()
	cacheSpan := rc.tr.StartSpan("cache", rc.root)
	prog, key, hit, detail, err := s.resolve(ctx, req, obs.SpanPhases(rc.tr, cacheSpan))
	if err != nil {
		cacheSpan.End()
		s.metrics.Run("error", "", 0, obsSummaryZero)
		s.finishRequest(rc, err)
		return nil, err
	}
	cacheSpan.Annotate("result", cacheResult(hit))
	if detail != nil {
		annotateTemplate(cacheSpan, detail)
	}
	cacheSpan.End()
	rc.program, rc.cached, rc.template = key, hit, detail
	if !hit {
		s.metrics.CompilePhases(prog.Phases())
		s.metrics.CompileSched(prog.Sched().Totals())
	}

	maxCycles := s.cfg.MaxCycles
	if req.MaxCycles > 0 {
		maxCycles = req.MaxCycles
	}
	if req.Partition != nil {
		return s.runPartitioned(ctx, rc, ent, req, prog, key, hit, maxCycles)
	}

	var resp *RunResponse
	start := time.Now()
	queueSpan := rc.tr.StartSpan("queue-wait", rc.root)
	err = s.pool.Do(ctx, func(ctx context.Context) error {
		s.metrics.QueueWait(time.Since(start).Seconds())
		queueSpan.End() // admitted: the wait is over
		runSpan := rc.tr.StartSpan("run", rc.root)
		defer runSpan.End()
		out, rs, err := prog.RunWith(warp.RunConfig{
			Context:   ctx,
			MaxCycles: maxCycles,
			Profile:   req.Profile,
			Backend:   req.Backend,
			Progress:  ent.publish,
		}, req.Inputs)
		if err != nil {
			runSpan.Annotate("error", err.Error())
			return err
		}
		runSpan.Annotate("backend", rs.Backend)
		annotateDecision(runSpan, rs.Decision)
		sum := rs.Profile.Summarize()
		runSpan.AttachSummary(sum)
		rc.cycles = rs.Cycles
		rc.source = rs.Source
		rc.decision = rs.Decision
		resp = &RunResponse{
			Program:  key,
			Cached:   hit,
			Outputs:  out,
			Request:  rc.id,
			Decision: rs.Decision,
			Stats: RunStatsJSON{
				Cycles:         rs.Cycles,
				Backend:        rs.Backend,
				MaxQueue:       rs.MaxQueue,
				MaxQueueAt:     rs.MaxQueueAt,
				AddUtilization: rs.AddUtilization,
				MulUtilization: rs.MulUtilization,
			},
		}
		s.metrics.Run("ok", rs.Backend, time.Since(start).Seconds(), sum)
		s.metrics.Backend(rs.Backend)
		s.metrics.Decision(rs.Decision)
		return nil
	})
	// End is idempotent: on the rejected/deadline paths the span is
	// still open and this closes it; on the admitted path it is a no-op.
	queueSpan.End()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.Run("timeout", "", 0, obsSummaryZero)
		case errors.Is(err, ErrBusy):
			s.metrics.Run("rejected", "", 0, obsSummaryZero)
		default:
			s.metrics.Run("error", "", 0, obsSummaryZero)
		}
		s.finishRequest(rc, err)
		return nil, err
	}
	s.finishRequest(rc, nil)
	return resp, nil
}

// annotateDecision stamps the backend decision audit onto the run span
// so the flight recorder's trace carries the predicted-vs-actual story.
func annotateDecision(sp *obs.Span, d *warp.Decision) {
	if d == nil {
		return
	}
	sp.Annotate("decision", d.Reason)
	sp.Annotate("predicted_wall_ns", fmt.Sprint(d.PredictedWallNS()))
	sp.Annotate("actual_wall_ns", fmt.Sprint(d.ActualWallNS))
	if f := d.ErrorFactor(); f > 0 {
		sp.Annotate("prediction_error", fmt.Sprintf("%.2f", f))
	}
}

// buildProblem maps a partitioned request's full-size inputs onto the
// tile kernel's parameters: matmul operands in declaration order, the
// conv1d kernel identified as the parameter sized to the array.
func buildProblem(prog *warp.Program, req *RunRequest) (warp.Problem, error) {
	p := req.Partition
	var ins []warp.ParamInfo
	for _, pi := range prog.Params() {
		if !pi.Out {
			ins = append(ins, pi)
		}
	}
	if len(ins) != 2 {
		return warp.Problem{}, &httpError{http.StatusUnprocessableEntity,
			fmt.Sprintf("partitioning needs a 2-input tile kernel, this one has %d inputs", len(ins))}
	}
	switch p.Workload {
	case "matmul":
		if p.M < 1 || p.K < 1 || p.N < 1 {
			return warp.Problem{}, &httpError{http.StatusBadRequest,
				fmt.Sprintf("matmul partition needs m, k, n >= 1 (got %dx%dx%d)", p.M, p.K, p.N)}
		}
		return warp.MatmulProblem(p.M, p.K, p.N, req.Inputs[ins[0].Name], req.Inputs[ins[1].Name]), nil
	case "conv1d":
		ker, sig := ins[1], ins[0]
		if ker.Size != prog.Cells() {
			ker, sig = ins[0], ins[1]
		}
		if ker.Size != prog.Cells() || sig.Size <= ker.Size {
			return warp.Problem{}, &httpError{http.StatusUnprocessableEntity,
				"conv1d partitioning needs a kernel parameter sized to the array and a longer signal window"}
		}
		return warp.Conv1DProblem(req.Inputs[ker.Name], req.Inputs[sig.Name]), nil
	}
	return warp.Problem{}, &httpError{http.StatusBadRequest,
		fmt.Sprintf("unknown partition workload %q (want matmul or conv1d)", p.Workload)}
}

// runPartitioned is runOne's tail for partition requests: the resolved
// program becomes the tile kernel and the farm runs inside one pool
// slot (its internal concurrency is the fabric's own array count).
func (s *Server) runPartitioned(ctx context.Context, rc *requestCtx, ent *progressEntry, req *RunRequest, prog *warp.Program, key string, hit bool, maxCycles int64) (*RunResponse, error) {
	arrays := req.Partition.Arrays
	if arrays <= 0 {
		arrays = s.cfg.Arrays
	}
	retries := req.Partition.TileRetries
	if retries == 0 {
		retries = 1
	}
	prob, err := buildProblem(prog, req)
	if err != nil {
		s.metrics.Fabric("error", "", 0, 0, 0, 0, 0, 0)
		s.finishRequest(rc, err)
		return nil, err
	}

	var resp *RunResponse
	start := time.Now()
	queueSpan := rc.tr.StartSpan("queue-wait", rc.root)
	err = s.pool.Do(ctx, func(ctx context.Context) error {
		s.metrics.QueueWait(time.Since(start).Seconds())
		queueSpan.End()
		runSpan := rc.tr.StartSpan("fabric", rc.root)
		defer runSpan.End()
		runSpan.Annotate("arrays", fmt.Sprint(arrays))
		out, fs, err := prog.RunPartitioned(warp.RunConfig{
			Context:      ctx,
			MaxCycles:    maxCycles,
			Arrays:       arrays,
			TileRetries:  retries,
			TileDeadline: time.Duration(req.Partition.TileDeadlineMS) * time.Millisecond,
			Profile:      req.Profile,
			Backend:      req.Backend,
			Progress:     ent.publish,
		}, prob)
		if fs != nil {
			runSpan.Annotate("tiles", fmt.Sprint(fs.Tiles))
		}
		if err != nil {
			runSpan.Annotate("error", err.Error())
			result := "error"
			if errors.Is(err, context.DeadlineExceeded) {
				result = "timeout"
			}
			if fs != nil {
				s.metrics.Fabric(result, fs.Backend, 0, fs.Tiles, fs.Dispatched, fs.Retried, fs.Failed, fs.AggregateCycles)
			} else {
				s.metrics.Fabric(result, "", 0, 0, 0, 0, 0, 0)
			}
			return err
		}
		runSpan.Annotate("backend", fs.Backend)
		annotateDecision(runSpan, fs.Decision)
		rc.cycles = fs.AggregateCycles
		rc.source = fs.Source
		rc.decision = fs.Decision
		resp = &RunResponse{
			Program:  key,
			Cached:   hit,
			Outputs:  out,
			Request:  rc.id,
			Decision: fs.Decision,
			Stats: RunStatsJSON{
				Cycles:         fs.MakespanCycles,
				Backend:        fs.Backend,
				MaxQueue:       fs.PeakQueue,
				MaxQueueAt:     fs.PeakQueueAt,
				AddUtilization: fs.AddUtil,
				MulUtilization: fs.MulUtil,
			},
			Fabric: &FabricJSON{
				Tiles:           fs.Tiles,
				Arrays:          fs.Arrays,
				Dispatched:      fs.Dispatched,
				Retried:         fs.Retried,
				Failed:          fs.Failed,
				AggregateCycles: fs.AggregateCycles,
				MakespanCycles:  fs.MakespanCycles,
				Speedup:         fs.Speedup,
				StagedWords:     fs.StagedWords,
			},
		}
		s.metrics.Fabric("ok", fs.Backend, time.Since(start).Seconds(), fs.Tiles, fs.Dispatched, fs.Retried, fs.Failed, fs.AggregateCycles)
		s.metrics.Backend(fs.Backend)
		s.metrics.Decision(fs.Decision)
		return nil
	})
	queueSpan.End()
	if err != nil {
		if errors.Is(err, ErrBusy) {
			s.metrics.Fabric("rejected", "", 0, 0, 0, 0, 0, 0)
		}
		s.finishRequest(rc, err)
		return nil, err
	}
	s.finishRequest(rc, nil)
	return resp, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.runOne(r.Context(), "/run", &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, &httpError{http.StatusBadRequest, "empty batch"})
		return
	}
	// Fan the batch out through the pool: items run concurrently up to
	// the worker count, and each failure is per-item, not per-batch.
	items := make([]BatchItem, len(req.Requests))
	done := make(chan int, len(req.Requests))
	for i := range req.Requests {
		go func(i int) {
			defer func() { done <- i }()
			resp, err := s.runOne(r.Context(), "/batch", &req.Requests[i])
			if err != nil {
				items[i].Error = err.Error()
				return
			}
			items[i].Result = resp
		}(i)
	}
	for range req.Requests {
		<-done
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: items})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, s.cache.Stats(), s.templates.Stats(), s.pool.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Metrics exposes the registry (for the daemon's own logging).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats snapshots the compile cache.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// TemplateCacheStats snapshots the symbolic template cache.
func (s *Server) TemplateCacheStats() TemplateCacheStats { return s.templates.Stats() }

// PoolStats snapshots the worker pool.
func (s *Server) PoolStats() PoolStats { return s.pool.Stats() }

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"warp/internal/obs"
	"warp/internal/workloads"
)

// debugSnapshot fetches and decodes GET /debug/requests.
func debugSnapshot(t *testing.T, client *http.Client, base string) []*RequestRecord {
	t.Helper()
	resp, err := client.Get(base + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests: %d", resp.StatusCode)
	}
	var body struct {
		Requests []*RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Requests
}

// findRecord returns the newest record for the given endpoint+outcome.
func findRecord(recs []*RequestRecord, endpoint, outcome string) *RequestRecord {
	for _, r := range recs {
		if r.Endpoint == endpoint && r.Outcome == outcome {
			return r
		}
	}
	return nil
}

func spanNames(spans []obs.SpanRecord) []string {
	names := make([]string, len(spans))
	for i := range spans {
		names[i] = spans[i].Name
	}
	return names
}

// TestDebugRequestsEndToEnd drives the service over HTTP and verifies
// the flight recorder exposes a coherent span tree: a cache-miss run
// shows queue-wait, cache with per-phase compile children, and a run
// span carrying the profile summary — and the durations sum
// consistently against the logged total.
func TestDebugRequestsEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	logMu := &syncWriter{w: &logBuf}
	logger := slog.New(slog.NewJSONHandler(logMu, nil))

	svc := New(Config{Workers: 2, QueueCap: 8, Logger: logger})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	src := workloads.Polynomial(10, 64)
	inputs := map[string][]float64{}
	prog, _, _, err := svc.cache.Get(context.Background(), src, CompileOptions{}.warpOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prog.Params() {
		if !p.Out {
			inputs[p.Name] = make([]float64, p.Size)
		}
	}
	// Start from a cold HTTP-visible cache: use a distinct source text so
	// the /run below is a miss and compiles inside the request.
	missSrc := src + "\n"
	resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{Source: missSrc, Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d: %s", resp.StatusCode, body)
	}
	// A second, cache-hitting run.
	resp, body = postJSON(t, client, ts.URL+"/run", RunRequest{Source: missSrc, Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run (hit): %d: %s", resp.StatusCode, body)
	}

	recs := debugSnapshot(t, client, ts.URL)
	if len(recs) != 2 {
		t.Fatalf("flight recorder holds %d records, want 2", len(recs))
	}
	// Newest first: recs[0] is the hit, recs[1] the miss.
	if !recs[0].Cached || recs[1].Cached {
		t.Fatalf("expected newest-first [hit, miss]; got cached=%t,%t", recs[0].Cached, recs[1].Cached)
	}

	miss := recs[1]
	if miss.Outcome != "ok" || miss.Status != http.StatusOK {
		t.Fatalf("miss record outcome=%q status=%d", miss.Outcome, miss.Status)
	}
	if miss.Cycles <= 0 {
		t.Errorf("miss record cycles = %d, want > 0", miss.Cycles)
	}
	if miss.TotalNS <= 0 {
		t.Errorf("miss record total_ns = %d, want > 0", miss.TotalNS)
	}

	// The span tree: a root, the request stages, and per-phase compile
	// children under the cache span.
	names := spanNames(miss.Spans)
	for _, want := range []string{"request", "cache", "queue-wait", "run", "parse", "cellgen"} {
		if !contains(names, want) {
			t.Errorf("miss span tree lacks %q; have %v", want, names)
		}
	}
	byName := map[string]*obs.SpanRecord{}
	var root *obs.SpanRecord
	for i := range miss.Spans {
		sp := &miss.Spans[i]
		if _, dup := byName[sp.Name]; !dup {
			byName[sp.Name] = sp
		}
		if sp.Parent == -1 {
			if root != nil {
				t.Fatalf("two root spans: %q and %q", root.Name, sp.Name)
			}
			root = sp
		}
	}
	if root == nil || root.Name != "request" {
		t.Fatalf("no request root span; names %v", names)
	}
	if root.DurNS() != miss.TotalNS {
		t.Errorf("root span duration %d != record total %d", root.DurNS(), miss.TotalNS)
	}
	// Every span closed, nested within the root, and the direct stage
	// children sum to no more than the total.
	var stageSum int64
	for i := range miss.Spans {
		sp := &miss.Spans[i]
		if sp.EndNS < 0 {
			t.Errorf("span %q left open", sp.Name)
		}
		if sp.StartNS < root.StartNS || sp.EndNS > root.EndNS {
			t.Errorf("span %q [%d,%d] escapes root [%d,%d]",
				sp.Name, sp.StartNS, sp.EndNS, root.StartNS, root.EndNS)
		}
		if sp.Parent == root.ID {
			stageSum += sp.DurNS()
		}
	}
	if stageSum > miss.TotalNS {
		t.Errorf("stage spans sum to %d > total %d", stageSum, miss.TotalNS)
	}
	// Compile phases are children of the cache span and fit inside it.
	cache, run := byName["cache"], byName["run"]
	if parse := byName["parse"]; parse.Parent != cache.ID {
		t.Errorf("parse span parent = %d, want cache %d", parse.Parent, cache.ID)
	}
	if run.Summary == nil {
		t.Error("run span has no profile summary attached")
	} else if run.Summary.Cycles != miss.Cycles {
		t.Errorf("run summary cycles %d != record cycles %d", run.Summary.Cycles, miss.Cycles)
	}

	// The cache hit compiled nothing: no phase spans, cache annotated hit.
	hit := recs[0]
	hitNames := spanNames(hit.Spans)
	if contains(hitNames, "parse") {
		t.Errorf("cache-hit request shows compile phases: %v", hitNames)
	}

	// The structured log agrees with the flight record.
	logged := parseLogLines(t, logBuf.Bytes())
	var missLine map[string]any
	for _, line := range logged {
		if line["id"] == miss.ID {
			missLine = line
		}
	}
	if missLine == nil {
		t.Fatalf("no log line for request %s; log:\n%s", miss.ID, logBuf.String())
	}
	if got := int64(missLine["total_ns"].(float64)); got != miss.TotalNS {
		t.Errorf("logged total_ns %d != record total_ns %d", got, miss.TotalNS)
	}
	for _, k := range []string{"cache_ns", "queue-wait_ns", "run_ns", "cycles", "program"} {
		if _, ok := missLine[k]; !ok {
			t.Errorf("log line lacks %q: %v", k, missLine)
		}
	}
	if missLine["outcome"] != "ok" {
		t.Errorf("logged outcome %v, want ok", missLine["outcome"])
	}
}

// TestDebugTraceDownload checks the per-request Chrome trace endpoint.
func TestDebugTraceDownload(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCap: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	src := workloads.Polynomial(4, 16)
	resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d: %s", resp.StatusCode, body)
	}
	recs := debugSnapshot(t, client, ts.URL)
	rec := findRecord(recs, "/compile", "ok")
	if rec == nil {
		t.Fatal("no /compile record")
	}

	traceResp, err := client.Get(ts.URL + "/debug/requests/" + rec.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: %d", traceResp.StatusCode)
	}
	if cd := traceResp.Header.Get("Content-Disposition"); !strings.Contains(cd, rec.ID) {
		t.Errorf("Content-Disposition %q does not name the request", cd)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Metadata plus one X event per span.
	if want := len(rec.Spans) + 1; len(doc.TraceEvents) != want {
		t.Errorf("trace has %d events, want %d", len(doc.TraceEvents), want)
	}

	// Unknown IDs 404.
	missResp, err := client.Get(ts.URL + "/debug/requests/r999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace ID: %d, want 404", missResp.StatusCode)
	}
}

// TestFlightRecorderEviction checks the ring keeps only the newest N
// and that a negative FlightSize disables recording.
func TestFlightRecorderEviction(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCap: 4, FlightSize: 3})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	for i := 0; i < 5; i++ {
		src := workloads.Polynomial(2, 8+i) // distinct sources
		resp, body := postJSON(t, client, ts.URL+"/compile", CompileRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	recs := debugSnapshot(t, client, ts.URL)
	if len(recs) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(recs))
	}
	// Newest first and strictly descending IDs.
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ID <= recs[i].ID {
			t.Errorf("records out of order: %s before %s", recs[i-1].ID, recs[i].ID)
		}
	}

	off := New(Config{Workers: 1, QueueCap: 4, FlightSize: -1})
	defer off.Close()
	ts2 := httptest.NewServer(off)
	defer ts2.Close()
	resp, body := postJSON(t, ts2.Client(), ts2.URL+"/compile", CompileRequest{Source: workloads.Polynomial(2, 8)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d: %s", resp.StatusCode, body)
	}
	if recs := debugSnapshot(t, ts2.Client(), ts2.URL); len(recs) != 0 {
		t.Errorf("disabled recorder returned %d records", len(recs))
	}
}

// syncWriter serializes concurrent slog writes into one buffer.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// parseLogLines decodes newline-delimited JSON log output.
func parseLogLines(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("log line %d is not JSON: %v: %s", i, err, line)
		}
		out = append(out, m)
	}
	return out
}

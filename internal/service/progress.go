package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"warp/internal/obs"
)

// ProgressEvent is the wire form of one live-progress observation — the
// payload of the SSE stream at GET /debug/requests/{id}/progress and of
// the GET /debug/progress listing.
type ProgressEvent struct {
	ID          string `json:"id"`
	Cycles      int64  `json:"cycles"`
	TotalCycles int64  `json:"total_cycles,omitempty"`
	TilesDone   int    `json:"tiles_done,omitempty"`
	Tiles       int    `json:"tiles,omitempty"`
	Done        bool   `json:"done"`
}

// progressEntry tracks one run request's live progress: the latest
// update plus the SSE subscribers waiting for the next one.  The
// publish path is the simulator's poll stride, so it takes one mutex,
// does non-blocking channel sends, and returns — a slow subscriber
// loses intermediate updates (each channel keeps the newest), never
// stalls the run.
type progressEntry struct {
	id string

	mu      sync.Mutex
	last    obs.ProgressUpdate
	done    bool
	subs    map[int]chan obs.ProgressUpdate
	nextSub int
}

// publish is the obs.ProgressFunc wired into the run: it records the
// update and wakes the subscribers.  Delivery into a full subscriber
// channel drops that channel's oldest pending update, so the terminal
// update (published last) always lands.
func (e *progressEntry) publish(u obs.ProgressUpdate) {
	e.mu.Lock()
	e.last = u
	if u.Done {
		e.done = true
	}
	for _, ch := range e.subs {
		select {
		case ch <- u:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- u:
			default:
			}
		}
	}
	e.mu.Unlock()
}

// finish marks the entry done if the run never delivered a terminal
// update itself (error, timeout, rejection), so subscribers always see
// the stream end.  Idempotent.
func (e *progressEntry) finish() {
	e.mu.Lock()
	if !e.done {
		e.done = true
		u := e.last
		u.Done = true
		e.last = u
		for _, ch := range e.subs {
			select {
			case ch <- u:
			default:
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- u:
				default:
				}
			}
		}
	}
	e.mu.Unlock()
}

// snapshot returns the entry's current state as a wire event.
func (e *progressEntry) snapshot() ProgressEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.eventLocked()
}

func (e *progressEntry) eventLocked() ProgressEvent {
	return ProgressEvent{
		ID:          e.id,
		Cycles:      e.last.Cycles,
		TotalCycles: e.last.TotalCycles,
		TilesDone:   e.last.TilesDone,
		Tiles:       e.last.Tiles,
		Done:        e.done,
	}
}

// subscribe registers a watcher: it returns the current snapshot (so
// the first SSE event needs no wait) plus the update channel and the
// unsubscribe func.  After unsubscribe returns no more sends happen on
// the channel (publish holds the same lock), so the caller may simply
// abandon it.
func (e *progressEntry) subscribe() (ProgressEvent, <-chan obs.ProgressUpdate, func()) {
	ch := make(chan obs.ProgressUpdate, 16)
	e.mu.Lock()
	if e.subs == nil {
		e.subs = map[int]chan obs.ProgressUpdate{}
	}
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	snap := e.eventLocked()
	e.mu.Unlock()
	return snap, ch, func() {
		e.mu.Lock()
		delete(e.subs, id)
		e.mu.Unlock()
	}
}

// progressHub indexes the live-progress entries by request ID.  It is
// bounded: once over capacity, registering a new entry evicts the
// oldest finished one (a live entry is never evicted, so a burst of
// concurrent runs can briefly exceed the cap rather than losing a
// stream mid-run).
type progressHub struct {
	mu      sync.Mutex
	entries map[string]*progressEntry
	order   []string // registration order, for eviction
	cap     int
}

func newProgressHub(cap int) *progressHub {
	if cap < 1 {
		cap = 64
	}
	return &progressHub{entries: map[string]*progressEntry{}, cap: cap}
}

// register creates (or returns) the entry for a request ID.
func (h *progressHub) register(id string) *progressEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[id]; ok {
		return e
	}
	for len(h.entries) >= h.cap {
		evicted := false
		for i, old := range h.order {
			e := h.entries[old]
			if e == nil {
				h.order = append(h.order[:i], h.order[i+1:]...)
				evicted = true
				break
			}
			e.mu.Lock()
			done := e.done
			e.mu.Unlock()
			if done {
				delete(h.entries, old)
				h.order = append(h.order[:i], h.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is live; let the map grow for now
		}
	}
	e := &progressEntry{id: id}
	h.entries[id] = e
	h.order = append(h.order, id)
	return e
}

// get returns the entry for a request ID, or nil.
func (h *progressHub) get(id string) *progressEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.entries[id]
}

// list snapshots every tracked entry in registration order (oldest
// first) — the discovery surface for watchers that do not yet know a
// request ID.
func (h *progressHub) list() []ProgressEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ProgressEvent, 0, len(h.entries))
	for _, id := range h.order {
		if e := h.entries[id]; e != nil {
			out = append(out, e.snapshot())
		}
	}
	return out
}

// handleDebugProgress lists every tracked request's latest progress.
func (s *Server) handleDebugProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Progress []ProgressEvent `json:"progress"`
	}{s.progress.list()})
}

// handleRequestProgress streams one request's live progress.  The
// default is Server-Sent Events: the first event is the current
// snapshot, each further "progress" event is one update, and the
// stream closes after a terminal "done" event.  ?format=json returns
// the current snapshot once instead.
func (s *Server) handleRequestProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ent := s.progress.get(id)
	if ent == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no tracked request %q", id)})
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, ent.snapshot())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	snap, ch, cancel := ent.subscribe()
	defer cancel()
	writeSSE(w, snap)
	flusher.Flush()
	if snap.Done {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case u := <-ch:
			ev := ProgressEvent{
				ID:          id,
				Cycles:      u.Cycles,
				TotalCycles: u.TotalCycles,
				TilesDone:   u.TilesDone,
				Tiles:       u.Tiles,
				Done:        u.Done,
			}
			writeSSE(w, ev)
			flusher.Flush()
			if u.Done {
				return
			}
		}
	}
}

// writeSSE renders one event in the text/event-stream framing.  The
// event name distinguishes the terminal update so shell clients can
// stop on `event: done` without parsing JSON.
func writeSSE(w http.ResponseWriter, ev ProgressEvent) {
	name := "progress"
	if ev.Done {
		name = "done"
	}
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}

package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"warp/internal/workloads"
)

func decodeBody(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
}

// TestRunPartitionedEndToEnd posts a partitioned matmul — a 24×24×24
// problem over an 8-cell tile kernel — and checks the stitched result
// element-exact against the plain-Go reference, the fabric stats in
// the response, and the tile counters at /metrics.
func TestRunPartitionedEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 2, Arrays: 3})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	const d = 24
	a, b := workloads.LargeMatmulData(d, d, d, 13)
	resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
		Source: workloads.Matmul(8),
		Inputs: map[string][]float64{"a": a, "bmat": b},
		Partition: &PartitionJSON{
			Workload: "matmul", M: d, K: d, N: d,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	decodeBody(t, body, &rr)
	want := workloads.MatmulRectRef(a, b, d, d, d)
	got := rr.Outputs["c"]
	if len(got) != len(want) {
		t.Fatalf("%d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if rr.Fabric == nil {
		t.Fatal("partitioned response missing fabric stats")
	}
	if rr.Fabric.Tiles != 27 || rr.Fabric.Arrays != 3 || rr.Fabric.Failed != 0 { // ⌈24/8⌉³
		t.Fatalf("fabric stats %+v, want 27 clean tiles on 3 arrays", rr.Fabric)
	}
	if rr.Fabric.Speedup < 2 {
		t.Fatalf("modeled speedup %.2f on 3 arrays, want ≥2", rr.Fabric.Speedup)
	}
	if rr.Stats.Cycles != rr.Fabric.MakespanCycles {
		t.Fatalf("response cycles %d != makespan %d", rr.Stats.Cycles, rr.Fabric.MakespanCycles)
	}

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, line := range []string{
		`warpd_fabric_jobs_total{result="ok"} 1`,
		"warpd_fabric_tiles_total 27",
		"warpd_fabric_tile_dispatch_total 27",
		"warpd_fabric_tile_retries_total 0",
		"warpd_fabric_tile_failures_total 0",
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}

// TestRunPartitionedConv exercises the conv1d sharding path through
// the service, including kernel/signal parameter identification.
func TestRunPartitionedConv(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	const nx, kw, window = 500, 9, 64
	x, w := workloads.LargeConv1DData(nx, kw, 3)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/run", RunRequest{
		Source:    workloads.Conv1D(kw, window),
		Inputs:    map[string][]float64{"x": x, "w": w},
		Partition: &PartitionJSON{Workload: "conv1d", Arrays: 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	decodeBody(t, body, &rr)
	want := workloads.Conv1DRef(x, w)
	got := rr.Outputs["results"]
	if len(got) != len(want) {
		t.Fatalf("%d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if rr.Fabric == nil || rr.Fabric.Arrays != 4 {
		t.Fatalf("fabric stats %+v", rr.Fabric)
	}
}

// TestRunPartitionedRejects covers the 4xx paths: bad workload, bad
// shape, and a kernel that is not partitionable.
func TestRunPartitionedRejects(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	a, b := workloads.LargeMatmulData(8, 8, 8, 1)
	for _, tc := range []struct {
		name   string
		req    RunRequest
		status int
	}{
		{"unknown workload", RunRequest{
			Source:    workloads.Matmul(4),
			Inputs:    map[string][]float64{"a": a, "bmat": b},
			Partition: &PartitionJSON{Workload: "fft"},
		}, http.StatusBadRequest},
		{"missing shape", RunRequest{
			Source:    workloads.Matmul(4),
			Inputs:    map[string][]float64{"a": a, "bmat": b},
			Partition: &PartitionJSON{Workload: "matmul"},
		}, http.StatusBadRequest},
		{"wrong-shaped operands", RunRequest{
			Source:    workloads.Matmul(4),
			Inputs:    map[string][]float64{"a": a[:5], "bmat": b},
			Partition: &PartitionJSON{Workload: "matmul", M: 8, K: 8, N: 8},
		}, http.StatusBadRequest},
		{"unpartitionable kernel", RunRequest{
			Source:    workloads.Polynomial(10, 100),
			Inputs:    map[string][]float64{},
			Partition: &PartitionJSON{Workload: "conv1d"},
		}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, client, ts.URL+"/run", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

package service

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"warp/internal/telemetry"
	"warp/internal/workloads"
)

// promPoint is one parsed exposition sample.
type promPoint struct {
	name   string
	labels map[string]string
	value  float64
}

// promDoc is a strictly parsed exposition document: samples in order
// plus the TYPE declarations, with every grammar violation reported as
// an error.
type promDoc struct {
	types   map[string]string // family -> counter|gauge|histogram|summary
	samples []promPoint
}

// parsePrometheus is a strict hand-rolled parser for the text
// exposition format (version 0.0.4): it tokenizes each sample by hand
// (no regexp), resolves label escapes, and rejects anything the format
// forbids — unknown TYPEs, duplicate TYPE lines, samples before their
// family's TYPE, malformed label syntax, unparseable values.
func parsePrometheus(text string) (*promDoc, error) {
	doc := &promDoc{types: map[string]string{}}
	for n, line := range strings.Split(text, "\n") {
		lineNo := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE needs a name and a type", lineNo)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := doc.types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				doc.types[name] = typ
			}
			continue
		}
		p, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if familyOf(p.name, doc.types) == "" {
			return nil, fmt.Errorf("line %d: sample %s precedes its TYPE", lineNo, p.name)
		}
		doc.samples = append(doc.samples, *p)
	}
	return doc, nil
}

// familyOf resolves a sample name to its declared family, stripping
// the histogram/summary series suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return ""
}

// parseSample tokenizes one `name{label="v",...} value` line by hand.
func parseSample(line string) (*promPoint, error) {
	p := &promPoint{labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return nil, fmt.Errorf("no metric name in %q", line)
	}
	p.name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return nil, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			start := i
			for i < len(line) && isNameChar(line[i], i == start) {
				i++
			}
			key := line[start:i]
			if key == "" || i >= len(line) || line[i] != '=' {
				return nil, fmt.Errorf("malformed label key in %q", line)
			}
			i++ // '='
			if i >= len(line) || line[i] != '"' {
				return nil, fmt.Errorf("label value not quoted in %q", line)
			}
			i++
			var val strings.Builder
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' {
					i++
					if i >= len(line) {
						return nil, fmt.Errorf("dangling escape in %q", line)
					}
					switch line[i] {
					case '\\', '"':
						val.WriteByte(line[i])
					case 'n':
						val.WriteByte('\n')
					default:
						return nil, fmt.Errorf("bad escape \\%c in %q", line[i], line)
					}
				} else {
					val.WriteByte(line[i])
				}
				i++
			}
			if i >= len(line) {
				return nil, fmt.Errorf("unterminated label value in %q", line)
			}
			i++ // closing '"'
			if _, dup := p.labels[key]; dup {
				return nil, fmt.Errorf("duplicate label %s in %q", key, line)
			}
			p.labels[key] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return nil, fmt.Errorf("no space before value in %q", line)
	}
	raw := line[i+1:]
	var err error
	switch raw {
	case "+Inf":
		p.value = math.Inf(1)
	case "-Inf":
		p.value = math.Inf(-1)
	case "NaN":
		p.value = math.NaN()
	default:
		p.value, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", raw, err)
		}
	}
	return p, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// labelKey renders a sample's labels minus le as a stable grouping key.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// checkHistograms verifies every declared histogram family's series
// invariants: per label set, le bounds strictly increasing with
// cumulative non-decreasing counts, a +Inf bucket equal to _count, and
// exactly one _sum and _count.
func checkHistograms(t *testing.T, doc *promDoc) {
	t.Helper()
	type series struct {
		les          []float64
		counts       []float64
		sums         int
		counts_total []float64
	}
	for fam, typ := range doc.types {
		if typ != "histogram" {
			continue
		}
		groups := map[string]*series{}
		for _, p := range doc.samples {
			base := ""
			switch p.name {
			case fam + "_bucket", fam + "_sum", fam + "_count":
				base = p.name[len(fam):]
			default:
				continue
			}
			key := labelKey(p.labels)
			g := groups[key]
			if g == nil {
				g = &series{}
				groups[key] = g
			}
			switch base {
			case "_bucket":
				le := p.labels["le"]
				if le == "" {
					t.Errorf("%s: bucket sample without le label", fam)
					continue
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					var err error
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						t.Errorf("%s: unparseable le %q", fam, le)
						continue
					}
				}
				g.les = append(g.les, bound)
				g.counts = append(g.counts, p.value)
			case "_sum":
				g.sums++
			case "_count":
				g.counts_total = append(g.counts_total, p.value)
			}
		}
		if len(groups) == 0 {
			t.Errorf("histogram family %s declared but has no series", fam)
		}
		for key, g := range groups {
			if len(g.les) < 2 || !math.IsInf(g.les[len(g.les)-1], 1) {
				t.Errorf("%s{%s}: want buckets ending in +Inf, got %v", fam, key, g.les)
				continue
			}
			for i := 1; i < len(g.les); i++ {
				if g.les[i] <= g.les[i-1] {
					t.Errorf("%s{%s}: le bounds not increasing at %d: %v", fam, key, i, g.les)
				}
				if g.counts[i] < g.counts[i-1] {
					t.Errorf("%s{%s}: cumulative counts decrease at %d: %v", fam, key, i, g.counts)
				}
			}
			if g.sums != 1 {
				t.Errorf("%s{%s}: %d _sum series, want 1", fam, key, g.sums)
			}
			if len(g.counts_total) != 1 {
				t.Errorf("%s{%s}: %d _count series, want 1", fam, key, len(g.counts_total))
			} else if inf := g.counts[len(g.counts)-1]; g.counts_total[0] != inf {
				t.Errorf("%s{%s}: _count %v != +Inf bucket %v", fam, key, g.counts_total[0], inf)
			}
		}
	}
}

// TestMetricsRoundTripStrict drives the service through compiles and
// runs on both backends (a partitioned job included), then feeds
// GET /metrics through the strict parser and checks the histogram
// invariants plus the telemetry-plane series the dashboards key on.
func TestMetricsRoundTripStrict(t *testing.T) {
	svc := New(Config{Workers: 2, Arrays: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	progs := buildPrograms(t)
	p := progs[0]
	cresp, cbody := postJSON(t, client, ts.URL+"/compile", CompileRequest{Source: p.src})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", cresp.StatusCode, cbody)
	}
	for _, backend := range []string{"sim", "fast", ""} {
		resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
			Source: p.src, Inputs: p.inputs, Backend: backend,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run backend %q: status %d: %s", backend, resp.StatusCode, body)
		}
	}
	const d = 16
	a, b := workloads.LargeMatmulData(d, d, d, 5)
	resp, body := postJSON(t, client, ts.URL+"/run", RunRequest{
		Source: workloads.Matmul(8), Inputs: map[string][]float64{"a": a, "bmat": b},
		Partition: &PartitionJSON{Workload: "matmul", M: d, K: d, N: d},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned run: status %d: %s", resp.StatusCode, body)
	}

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q does not declare exposition version 0.0.4", ct)
	}

	doc, err := parsePrometheus(string(mbody))
	if err != nil {
		t.Fatalf("strict parse of /metrics failed: %v", err)
	}
	checkHistograms(t, doc)

	find := func(name string, labels map[string]string) *promPoint {
		for i := range doc.samples {
			s := &doc.samples[i]
			if s.name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return s
			}
		}
		return nil
	}
	for _, want := range []struct {
		name   string
		labels map[string]string
	}{
		{"warpd_compile_seconds_count", map[string]string{"result": "miss"}},
		{"warpd_run_seconds_count", map[string]string{"backend": "sim"}},
		{"warpd_run_seconds_count", map[string]string{"backend": "fast"}},
		{"warpd_queue_wait_seconds_count", nil},
		{"warpd_decision_total", map[string]string{"backend": "sim", "reason": "explicit-sim"}},
		{"warpd_decision_total", map[string]string{"backend": "fast", "reason": "explicit-fast"}},
		{"warpd_prediction_error_ratio_count", map[string]string{"backend": "sim"}},
		{"warpd_prediction_error_max", map[string]string{"backend": "fast"}},
	} {
		s := find(want.name, want.labels)
		if s == nil {
			t.Errorf("/metrics missing %s%v", want.name, want.labels)
			continue
		}
		if s.value <= 0 {
			t.Errorf("%s%v = %v, want > 0", want.name, want.labels, s.value)
		}
	}
	// The queue-wait count covers every pooled request (4 runs).
	if s := find("warpd_queue_wait_seconds_count", nil); s != nil && s.value < 4 {
		t.Errorf("queue-wait count %v, want >= 4", s.value)
	}
}

// TestRetryAfterFromQuantiles pins the Retry-After contract on the
// histogram-quantile path: the estimate is median x (queued ahead + 1)
// / workers, floored at 1s and capped at 60s.
func TestRetryAfterFromQuantiles(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	// No completed runs: the median is 0 and the floor holds.
	if got := svc.retryAfterSeconds(); got != 1 {
		t.Errorf("empty-histogram Retry-After = %d, want floor 1", got)
	}

	// Fast runs keep the estimate at the floor.
	for i := 0; i < 8; i++ {
		svc.metrics.Run("ok", "sim", 0.01, obsSummaryZero)
	}
	if got := svc.retryAfterSeconds(); got != 1 {
		t.Errorf("fast-run Retry-After = %d, want 1", got)
	}

	// Pathologically slow runs hit the cap regardless of queue depth.
	for i := 0; i < 100; i++ {
		svc.metrics.Run("ok", "sim", 3000, obsSummaryZero)
	}
	if got := svc.retryAfterSeconds(); got != 60 {
		t.Errorf("slow-run Retry-After = %d, want cap 60", got)
	}

	// The median merges backends: samples spread across sim and fast
	// count as one population.
	m := NewMetrics()
	m.Run("ok", "sim", 2, obsSummaryZero)
	m.Run("ok", "fast", 2, obsSummaryZero)
	m.Run("ok", "sim", 2, obsSummaryZero)
	med := m.MedianRunSeconds()
	if med < 1 || med > 4 {
		t.Errorf("merged median = %v, want about 2 (log-bucket tolerance)", med)
	}
}

// TestQuantileInterpolation pins the telemetry histogram quantile math
// the Retry-After estimate rides on, through the service's own
// registry (samples at known positions in the log buckets).
func TestQuantileInterpolation(t *testing.T) {
	m := NewMetrics()
	if m.MedianRunSeconds() != 0 {
		t.Errorf("empty registry median = %v, want 0", m.MedianRunSeconds())
	}
	// All samples beyond the last bound pin to the last finite bound.
	m.Run("ok", "sim", 1e9, obsSummaryZero)
	bounds := telemetry.LatencyBounds()
	if got, want := m.MedianRunSeconds(), bounds[len(bounds)-1]; got != want {
		t.Errorf("overflow median = %v, want last bound %v", got, want)
	}
}

// Package w2 implements the front end for the W2 language, the
// "machine language" of the Warp systolic array described by Gross and
// Lam in "Compilation for a High-performance Systolic Array" (PLDI 1986).
//
// W2 is a simple block-structured language with assignment, conditional
// and loop statements.  Communication between neighbouring cells is made
// explicit with asynchronous send and receive primitives; the compiler,
// not the hardware, guarantees that the synchronous machine honours their
// blocking semantics.
package w2

import "fmt"

// TokenKind enumerates the lexical tokens of W2.
type TokenKind int

// Token kinds.  Keywords mirror the surface syntax used in the paper's
// Figure 4-1 (module, cellprogram, begin/end, function, call, receive,
// send, for/to/do, if/then/else) plus the small expression vocabulary.
const (
	EOF TokenKind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	MODULE
	CELLPROGRAM
	BEGIN
	END
	FUNCTION
	CALL
	FLOAT
	INT
	IF
	THEN
	ELSE
	FOR
	TO
	DO
	RECEIVE
	SEND
	IN
	OUT
	AND
	OR
	NOT
	DIV // integer division keyword
	MOD

	// Punctuation and operators.
	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	ASSIGN    // :=
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	EQ        // =
	NE        // <>
	LT        // <
	LE        // <=
	GT        // >
	GE        // >=
)

var tokenNames = map[TokenKind]string{
	EOF:         "end of file",
	IDENT:       "identifier",
	INTLIT:      "integer literal",
	FLOATLIT:    "float literal",
	MODULE:      "module",
	CELLPROGRAM: "cellprogram",
	BEGIN:       "begin",
	END:         "end",
	FUNCTION:    "function",
	CALL:        "call",
	FLOAT:       "float",
	INT:         "int",
	IF:          "if",
	THEN:        "then",
	ELSE:        "else",
	FOR:         "for",
	TO:          "to",
	DO:          "do",
	RECEIVE:     "receive",
	SEND:        "send",
	IN:          "in",
	OUT:         "out",
	AND:         "and",
	OR:          "or",
	NOT:         "not",
	DIV:         "div",
	MOD:         "mod",
	LPAREN:      "(",
	RPAREN:      ")",
	LBRACKET:    "[",
	RBRACKET:    "]",
	COMMA:       ",",
	SEMICOLON:   ";",
	COLON:       ":",
	ASSIGN:      ":=",
	PLUS:        "+",
	MINUS:       "-",
	STAR:        "*",
	SLASH:       "/",
	EQ:          "=",
	NE:          "<>",
	LT:          "<",
	LE:          "<=",
	GT:          ">",
	GE:          ">=",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"module":      MODULE,
	"cellprogram": CELLPROGRAM,
	"begin":       BEGIN,
	"end":         END,
	"function":    FUNCTION,
	"call":        CALL,
	"float":       FLOAT,
	"int":         INT,
	"if":          IF,
	"then":        THEN,
	"else":        ELSE,
	"for":         FOR,
	"to":          TO,
	"do":          DO,
	"receive":     RECEIVE,
	"send":        SEND,
	"in":          IN,
	"out":         OUT,
	"and":         AND,
	"or":          OR,
	"not":         NOT,
	"div":         DIV,
	"mod":         MOD,
}

// Pos identifies a source location (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position and, for
// literals and identifiers, its spelling.
type Token struct {
	Kind TokenKind
	Pos  Pos
	Text string // spelling for IDENT, INTLIT, FLOATLIT
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

package w2

import (
	"fmt"
	"sort"
	"strings"
)

// Affine represents an integer expression that is affine in the loop
// indices of the enclosing loop nest: Const + Σ Coef·var.
//
// Every address in a W2 cell program must reduce to this form: the Warp
// cells have no integer arithmetic, so all addresses are produced by the
// interface unit, which requires them to be data independent (§6.1).
// The affine form is also the input to the IU code generator's strength
// reduction (§6.3.2).
type Affine struct {
	Const int64
	Terms []AffTerm // sorted by Var, no zero coefficients, no duplicates
}

// AffTerm is one linear term of an affine expression.
type AffTerm struct {
	Var  *ForStmt // the loop whose index this term scales
	Coef int64
}

// AffConst returns the affine expression for a constant.
func AffConst(c int64) Affine { return Affine{Const: c} }

// AffVar returns the affine expression for a loop index.
func AffVar(loop *ForStmt) Affine {
	return Affine{Terms: []AffTerm{{Var: loop, Coef: 1}}}
}

func (a Affine) clone() Affine {
	t := make([]AffTerm, len(a.Terms))
	copy(t, a.Terms)
	return Affine{Const: a.Const, Terms: t}
}

// normalize sorts terms (by loop statement position for determinism) and
// removes zero coefficients.
func (a Affine) normalize() Affine {
	sort.SliceStable(a.Terms, func(i, j int) bool {
		pi, pj := a.Terms[i].Var.Pos, a.Terms[j].Var.Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	out := a.Terms[:0]
	for _, t := range a.Terms {
		if len(out) > 0 && out[len(out)-1].Var == t.Var {
			out[len(out)-1].Coef += t.Coef
		} else {
			out = append(out, t)
		}
	}
	terms := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			terms = append(terms, t)
		}
	}
	a.Terms = terms
	return a
}

// Add returns a+b.
func (a Affine) Add(b Affine) Affine {
	r := a.clone()
	r.Const += b.Const
	r.Terms = append(r.Terms, b.Terms...)
	return r.normalize()
}

// Sub returns a−b.
func (a Affine) Sub(b Affine) Affine {
	r := a.clone()
	r.Const -= b.Const
	for _, t := range b.Terms {
		r.Terms = append(r.Terms, AffTerm{Var: t.Var, Coef: -t.Coef})
	}
	return r.normalize()
}

// Scale returns k·a.
func (a Affine) Scale(k int64) Affine {
	r := a.clone()
	r.Const *= k
	for i := range r.Terms {
		r.Terms[i].Coef *= k
	}
	return r.normalize()
}

// IsConst reports whether a has no loop-variant terms.
func (a Affine) IsConst() bool { return len(a.Terms) == 0 }

// Coef returns the coefficient of the given loop's index (0 if absent).
func (a Affine) Coef(loop *ForStmt) int64 {
	for _, t := range a.Terms {
		if t.Var == loop {
			return t.Coef
		}
	}
	return 0
}

// Equal reports structural equality of two normalized affine forms.
func (a Affine) Equal(b Affine) bool {
	if a.Const != b.Const || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

// Range returns the minimum and maximum values a can take given that
// each loop index v ranges over [lo(v), hi(v)] as recorded in bounds.
func (a Affine) Range(bounds map[*ForStmt][2]int64) (min, max int64) {
	min, max = a.Const, a.Const
	for _, t := range a.Terms {
		b, ok := bounds[t.Var]
		if !ok {
			// Unknown loop: treat conservatively as [0,0]; callers
			// always supply bounds for loops in scope.
			continue
		}
		lo, hi := t.Coef*b[0], t.Coef*b[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		min += lo
		max += hi
	}
	return min, max
}

// Subst replaces the given loop's index with a concrete value, folding
// it into the constant term.
func (a Affine) Subst(loop *ForStmt, val int64) Affine {
	r := Affine{Const: a.Const}
	for _, t := range a.Terms {
		if t.Var == loop {
			r.Const += t.Coef * val
		} else {
			r.Terms = append(r.Terms, t)
		}
	}
	return r
}

// Eval evaluates the affine form for concrete index values.
func (a Affine) Eval(idx map[*ForStmt]int64) int64 {
	v := a.Const
	for _, t := range a.Terms {
		v += t.Coef * idx[t.Var]
	}
	return v
}

// String renders the affine form using loop variable names.
func (a Affine) String() string {
	var sb strings.Builder
	first := true
	for _, t := range a.Terms {
		if !first {
			if t.Coef >= 0 {
				sb.WriteString(" + ")
			} else {
				sb.WriteString(" - ")
			}
		} else if t.Coef < 0 {
			sb.WriteString("-")
		}
		first = false
		c := t.Coef
		if c < 0 {
			c = -c
		}
		if c != 1 {
			fmt.Fprintf(&sb, "%d*", c)
		}
		sb.WriteString(t.Var.Var)
	}
	switch {
	case first:
		fmt.Fprintf(&sb, "%d", a.Const)
	case a.Const > 0:
		fmt.Fprintf(&sb, " + %d", a.Const)
	case a.Const < 0:
		fmt.Fprintf(&sb, " - %d", -a.Const)
	}
	return sb.String()
}

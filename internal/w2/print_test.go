package w2

import (
	"math/rand"
	"testing"
)

// TestPrintRoundTripPaperProgram: parse → print → parse yields a
// structurally identical tree.
func TestPrintRoundTripPaperProgram(t *testing.T) {
	src := minimal(`
        receive (L, X, v, xs[0]);
        for i := 0 to 14 do begin
            receive (L, X, w, xs[i]);
            if w < v then begin
                v := w * 2.0;
            end else v := (v + w) - 0.5;
            buf[2] := v;
            send (R, X, buf[2], ys[i]);
        end;
        send (R, X, v, ys[15]);
`)
	m1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(m1)
	m2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, printed)
	}
	if !EqualModule(m1, m2) {
		t.Fatalf("round trip changed the tree:\n%s", printed)
	}
	// Printing must be a fixed point.
	if Print(m2) != printed {
		t.Error("printer is not idempotent")
	}
}

// randExprSrc builds a random expression string for round-trip fuzzing.
func randExprSrc(r *rand.Rand, depth int) string {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return []string{"1.5", "0.25", "3.0", "42.0"}[r.Intn(4)]
		case 1:
			return []string{"v", "w"}[r.Intn(2)]
		default:
			return "buf[1]"
		}
	}
	op := []string{"+", "-", "*", "/"}[r.Intn(4)]
	return "(" + randExprSrc(r, depth-1) + " " + op + " " + randExprSrc(r, depth-1) + ")"
}

// TestPrintRoundTripRandom fuzzes the round trip over random statement
// mixes.
func TestPrintRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for k := 0; k < 60; k++ {
		body := ""
		for n := 1 + r.Intn(6); n > 0; n-- {
			switch r.Intn(5) {
			case 0:
				body += "v := " + randExprSrc(r, 3) + ";\n"
			case 1:
				body += "if " + randExprSrc(r, 2) + " < " + randExprSrc(r, 2) +
					" then w := " + randExprSrc(r, 2) + "; else w := 0.0;\n"
			case 2:
				body += "for i := 0 to 3 do begin receive (L, X, v, xs[i]); send (R, X, v); end;\n"
			case 3:
				body += "receive (L, Y, w, 0.5);\nsend (R, Y, w);\n"
			case 4:
				body += "buf[3] := " + randExprSrc(r, 2) + ";\n"
			}
		}
		src := minimal(body)
		m1, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d: %v\n%s", k, err, src)
		}
		printed := Print(m1)
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("program %d re-parse: %v\n%s", k, err, printed)
		}
		if !EqualModule(m1, m2) {
			t.Fatalf("program %d: round trip changed the tree\noriginal:\n%s\nprinted:\n%s", k, src, printed)
		}
	}
}

// TestPrintPreservesSemantics: the printed form of a random program
// still analyzes identically (same host layout).
func TestPrintPreservesSemantics(t *testing.T) {
	src := minimal("receive (L, X, v, xs[3]); send (R, X, v + 1.0, ys[3]);")
	m1, _ := Parse(src)
	info1, err := Analyze(m1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(Print(m1))
	if err != nil {
		t.Fatal(err)
	}
	info2, err := Analyze(m2)
	if err != nil {
		t.Fatal(err)
	}
	if info1.HostSize != info2.HostSize || len(info1.Uses) != len(info2.Uses) {
		t.Error("analysis differs after round trip")
	}
}

package w2

// This file defines the abstract syntax tree for W2 programs.
//
// A W2 module declares host-side parameters (arrays bound to host
// variables), and a cell program that every cell of the array executes
// (the homogeneity requirement of §5.1).  The cell program contains
// parameterless functions and a statement list that calls them.

// Type is the type of a W2 value: int or float, scalar or array.
type Type struct {
	Base Base
	Dims []int // nil for scalars; up to two dimensions
}

// Base is a W2 base type.
type Base int

// Base types.
const (
	BaseInvalid Base = iota
	BaseInt
	BaseFloat
	BaseBool // internal only: result of comparisons
)

func (b Base) String() string {
	switch b {
	case BaseInt:
		return "int"
	case BaseFloat:
		return "float"
	case BaseBool:
		return "bool"
	}
	return "invalid"
}

// IsArray reports whether t has at least one dimension.
func (t Type) IsArray() bool { return len(t.Dims) > 0 }

// Size returns the number of scalar elements the type occupies.
func (t Type) Size() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

func (t Type) String() string {
	s := t.Base.String()
	for _, d := range t.Dims {
		s += "[" + itoa(d) + "]"
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Direction identifies the neighbour a send or receive addresses.
type Direction int

// Directions: L is the left neighbour (toward the host input side), R is
// the right neighbour (toward the host output side).
const (
	DirL Direction = iota
	DirR
)

func (d Direction) String() string {
	if d == DirL {
		return "L"
	}
	return "R"
}

// Channel identifies one of the two data paths between adjacent cells.
type Channel int

// Channels X and Y, as in Figure 2-1 of the paper.
const (
	ChanX Channel = iota
	ChanY
)

func (c Channel) String() string {
	if c == ChanX {
		return "X"
	}
	return "Y"
}

// Module is a complete W2 program.
type Module struct {
	Name   string
	Params []*Param   // host-bound parameters, in declaration order
	Decls  []*VarDecl // module-level variable declarations (host arrays)
	Cells  *CellProgram
	Pos    Pos
}

// Param is a formal parameter of the module, bound to a host variable.
type Param struct {
	Name string
	Out  bool // true for "out" parameters (results), false for "in"
	Pos  Pos
}

// VarDecl declares one variable (module-level host array or function
// local).
type VarDecl struct {
	Name string
	Type Type
	Pos  Pos
}

// CellProgram is the program executed by each cell, cells First..Last.
type CellProgram struct {
	CellID string // name of the cell-identifier variable, e.g. "cid"
	First  int
	Last   int
	Funcs  []*FuncDecl
	Body   []Stmt // top level statements, typically call statements
	Pos    Pos
}

// FuncDecl is a parameterless cell function.
type FuncDecl struct {
	Name   string
	Locals []*VarDecl
	Body   []Stmt
	Pos    Pos
}

// Stmt is a W2 statement.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// AssignStmt is "lvalue := expr;".
type AssignStmt struct {
	LHS *VarRef
	RHS Expr
	Pos Pos
}

// IfStmt is "if cond then s1 [else s2]".  Both arms are compiled with
// predication so that cell timing stays data independent (a requirement
// of the skewed computation model, §5.1).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// ForStmt is "for i := lo to hi do s".  Bounds must be compile-time
// constants (§6.2.1: "the compiler currently can only handle" constant
// bounds).
type ForStmt struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Body []Stmt
	Pos  Pos
}

// ReceiveStmt is "receive (dir, chan, lvalue [, external]);".
// External gives the host expression whose value the first cell
// receives; it is meaningful only on the array boundary.
type ReceiveStmt struct {
	Dir      Direction
	Chan     Channel
	LHS      *VarRef
	External Expr // may be nil
	Pos      Pos
}

// SendStmt is "send (dir, chan, expr [, external]);".
// External names the host location the last cell's value is stored to.
type SendStmt struct {
	Dir      Direction
	Chan     Channel
	Value    Expr
	External *VarRef // may be nil
	Pos      Pos
}

// CallStmt invokes a cell function by name.
type CallStmt struct {
	Name string
	Pos  Pos
}

// BlockStmt is "begin ... end".
type BlockStmt struct {
	Body []Stmt
	Pos  Pos
}

func (*AssignStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*ForStmt) stmtNode()     {}
func (*ReceiveStmt) stmtNode() {}
func (*SendStmt) stmtNode()    {}
func (*CallStmt) stmtNode()    {}
func (*BlockStmt) stmtNode()   {}

func (s *AssignStmt) StmtPos() Pos  { return s.Pos }
func (s *IfStmt) StmtPos() Pos      { return s.Pos }
func (s *ForStmt) StmtPos() Pos     { return s.Pos }
func (s *ReceiveStmt) StmtPos() Pos { return s.Pos }
func (s *SendStmt) StmtPos() Pos    { return s.Pos }
func (s *CallStmt) StmtPos() Pos    { return s.Pos }
func (s *BlockStmt) StmtPos() Pos   { return s.Pos }

// Expr is a W2 expression.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Pos   Pos
}

// VarRef references a scalar variable or an array element.
type VarRef struct {
	Name    string
	Indices []Expr // nil for scalars
	Pos     Pos
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDivide
	OpIntDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDivide: "/", OpIntDiv: "div",
	OpMod: "mod", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "and", OpOr: "or",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op yields a boolean.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// UnExpr is a unary operation: negation or logical not.
type UnExpr struct {
	Neg bool // true for "-", false for "not"
	X   Expr
	Pos Pos
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*VarRef) exprNode()   {}
func (*BinExpr) exprNode()  {}
func (*UnExpr) exprNode()   {}

func (e *IntLit) ExprPos() Pos   { return e.Pos }
func (e *FloatLit) ExprPos() Pos { return e.Pos }
func (e *VarRef) ExprPos() Pos   { return e.Pos }
func (e *BinExpr) ExprPos() Pos  { return e.Pos }
func (e *UnExpr) ExprPos() Pos   { return e.Pos }

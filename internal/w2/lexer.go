package w2

import (
	"fmt"
	"strings"
)

// Lexer turns W2 source text into a stream of tokens.  It supports the
// comment syntax used in the paper's listings: /* ... */ block comments
// (non-nesting) and -- line comments as a convenience.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated comment"}
			}
		case c == '-' && l.peek2() == '-':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.  At end of input it returns an EOF token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[strings.ToLower(word)]; ok {
			return Token{Kind: kw, Pos: pos, Text: word}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: word}, nil
	case isDigit(c):
		return l.lexNumber(pos)
	}
	l.advance()
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: pos}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: pos}, nil
	case '[':
		return Token{Kind: LBRACKET, Pos: pos}, nil
	case ']':
		return Token{Kind: RBRACKET, Pos: pos}, nil
	case ',':
		return Token{Kind: COMMA, Pos: pos}, nil
	case ';':
		return Token{Kind: SEMICOLON, Pos: pos}, nil
	case ':':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: ASSIGN, Pos: pos}, nil
		}
		return Token{Kind: COLON, Pos: pos}, nil
	case '+':
		return Token{Kind: PLUS, Pos: pos}, nil
	case '-':
		return Token{Kind: MINUS, Pos: pos}, nil
	case '*':
		return Token{Kind: STAR, Pos: pos}, nil
	case '/':
		return Token{Kind: SLASH, Pos: pos}, nil
	case '=':
		return Token{Kind: EQ, Pos: pos}, nil
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: LE, Pos: pos}, nil
		case '>':
			l.advance()
			return Token{Kind: NE, Pos: pos}, nil
		}
		return Token{Kind: LT, Pos: pos}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: GE, Pos: pos}, nil
		}
		return Token{Kind: GT, Pos: pos}, nil
	}
	return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		// Exponent: e[+-]?digits.
		save := l.off
		saveLine, saveCol := l.line, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		return Token{Kind: FLOATLIT, Pos: pos, Text: text}, nil
	}
	return Token{Kind: INTLIT, Pos: pos, Text: text}, nil
}

// Tokenize lexes the whole input, returning all tokens up to and
// including the EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

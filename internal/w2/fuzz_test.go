package w2

import (
	"testing"
)

// FuzzParse checks the front end never panics: any byte string either
// parses (and then analyzes or errors cleanly) or returns an error.
// Run with `go test -fuzz=FuzzParse ./internal/w2` to explore; the seed
// corpus below runs as a regular test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module",
		"module m () cellprogram (c : 0 : 0) begin end",
		minimalSeed,
		"module m (a in)\nfloat a[4];\ncellprogram (c : 0 : 0)\nbegin function f begin float v; v := 1.0; end call f; end",
		"/* unterminated",
		"module m (a in)\nfloat a[1];\ncellprogram (c : 0 : 0)\nbegin function f begin int i; for i := 0 to 9999999999999999999 do i := i; end call f; end",
		"module m (a in) float a[4]; cellprogram (c : 0 : 0) begin function f begin float v; v := ((((((((1.0)))))))); end call f; end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		// A successful parse must print and re-parse to the same tree.
		printed := Print(m)
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form fails to parse: %v\n%s", err, printed)
		}
		if !EqualModule(m, m2) {
			t.Fatalf("round trip changed the tree\n%s", printed)
		}
		// Analysis must never panic either.
		_, _ = Analyze(m)
	})
}

const minimalSeed = `
module polynomial (z in, c in, results out)
float z[100], c[10];
float results[100];
cellprogram (cid : 0 : 9)
begin
    function poly
    begin
        float coeff, temp, xin, yin, ans;
        int i;
        receive (L, X, coeff, c[0]);
        for i := 1 to 9 do begin
            receive (L, X, temp, c[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        for i := 0 to 99 do begin
            receive (L, X, xin, z[i]);
            receive (L, Y, yin, 0.0);
            send (R, X, xin);
            ans := coeff + yin*xin;
            send (R, Y, ans, results[i]);
        end;
    end
    call poly;
end
`

package w2

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for W2.  The dialect follows the
// paper's Figure 4-1; its grammar in EBNF (keywords case-insensitive,
// /*…*/ and -- comments):
//
//	module      = "module" ident "(" [param {"," param}] ")"
//	              {vardecl} cellprogram .
//	param       = ident ("in" | "out") .
//	vardecl     = ("float" | "int") declarator {"," declarator} ";" .
//	declarator  = ident {"[" intlit "]"}            (* ≤ 2 dimensions *)
//	cellprogram = "cellprogram" "(" ident ":" intlit ":" intlit ")"
//	              "begin" {function} {call} "end" [";"] .
//	function    = "function" ident "begin" {vardecl} {stmt} "end" [";"] .
//	call        = "call" ident ";" .
//	stmt        = assign | if | for | receive | send | call | block .
//	assign      = varref ":=" expr ";" .
//	if          = "if" expr "then" stmt ["else" stmt] .
//	for         = "for" ident ":=" expr "to" expr "do" stmt .
//	receive     = "receive" "(" dir "," chan "," varref ["," expr] ")" ";" .
//	send        = "send" "(" dir "," chan "," expr ["," varref] ")" ";" .
//	block       = "begin" {stmt} "end" [";"] .
//	dir         = "L" | "R" .          chan = "X" | "Y" .
//	varref      = ident {"[" expr "]"} .
//	expr        = orterm  {"or" orterm} .
//	orterm      = andterm {"and" andterm} .
//	andterm     = arith [relop arith] .
//	relop       = "=" | "<>" | "<" | "<=" | ">" | ">=" .
//	arith       = mul {("+" | "-") mul} .
//	mul         = unary {("*" | "/" | "div" | "mod") unary} .
//	unary       = ["-" | "not"] primary .
//	primary     = intlit | floatlit | varref | "(" expr ")" .
//
// Semantic analysis (sema.go) layers the §5.1 restrictions on top.
type Parser struct {
	toks []Token
	pos  int
}

// ParseError describes a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Parse parses a complete W2 module from source text.
func Parse(src string) (*Module, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, p.errf("unexpected %s after end of module", p.cur())
	}
	return m, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseModule() (*Module, error) {
	start, err := p.expect(MODULE)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	m := &Module{Name: name.Text, Pos: start.Pos}
	for p.cur().Kind != RPAREN {
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		param := &Param{Name: id.Text, Pos: id.Pos}
		switch p.cur().Kind {
		case IN:
			p.next()
		case OUT:
			p.next()
			param.Out = true
		default:
			return nil, p.errf("expected 'in' or 'out' after parameter %s", id.Text)
		}
		m.Params = append(m.Params, param)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	// Module-level declarations (host arrays).
	for p.cur().Kind == FLOAT || p.cur().Kind == INT {
		decls, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		m.Decls = append(m.Decls, decls...)
	}
	cp, err := p.parseCellProgram()
	if err != nil {
		return nil, err
	}
	m.Cells = cp
	return m, nil
}

// parseVarDecl parses "float a[10], b, c[2][3];" into one VarDecl per
// declarator.
func (p *Parser) parseVarDecl() ([]*VarDecl, error) {
	var base Base
	switch p.cur().Kind {
	case FLOAT:
		base = BaseFloat
	case INT:
		base = BaseInt
	default:
		return nil, p.errf("expected type keyword, found %s", p.cur())
	}
	p.next()
	var decls []*VarDecl
	for {
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		typ := Type{Base: base}
		for p.accept(LBRACKET) {
			n, err := p.expect(INTLIT)
			if err != nil {
				return nil, err
			}
			dim, err := strconv.Atoi(n.Text)
			if err != nil || dim <= 0 {
				return nil, &ParseError{Pos: n.Pos, Msg: "array dimension must be a positive integer"}
			}
			typ.Dims = append(typ.Dims, dim)
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			if len(typ.Dims) > 2 {
				return nil, &ParseError{Pos: n.Pos, Msg: "arrays are limited to two dimensions"}
			}
		}
		decls = append(decls, &VarDecl{Name: id.Text, Type: typ, Pos: id.Pos})
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseCellProgram() (*CellProgram, error) {
	start, err := p.expect(CELLPROGRAM)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	first, err := p.parseIntToken()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	last, err := p.parseIntToken()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(BEGIN); err != nil {
		return nil, err
	}
	cp := &CellProgram{CellID: id.Text, First: first, Last: last, Pos: start.Pos}
	for p.cur().Kind == FUNCTION {
		f, err := p.parseFunction()
		if err != nil {
			return nil, err
		}
		cp.Funcs = append(cp.Funcs, f)
	}
	for p.cur().Kind != END {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		cp.Body = append(cp.Body, s)
	}
	if _, err := p.expect(END); err != nil {
		return nil, err
	}
	p.accept(SEMICOLON)
	return cp, nil
}

func (p *Parser) parseIntToken() (int, error) {
	neg := p.accept(MINUS)
	t, err := p.expect(INTLIT)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, &ParseError{Pos: t.Pos, Msg: "integer out of range"}
	}
	if neg {
		n = -n
	}
	return n, nil
}

func (p *Parser) parseFunction() (*FuncDecl, error) {
	start, err := p.expect(FUNCTION)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(BEGIN); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Pos: start.Pos}
	for p.cur().Kind == FLOAT || p.cur().Kind == INT {
		decls, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		f.Locals = append(f.Locals, decls...)
	}
	for p.cur().Kind != END {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Body = append(f.Body, s)
	}
	if _, err := p.expect(END); err != nil {
		return nil, err
	}
	p.accept(SEMICOLON)
	return f, nil
}

func (p *Parser) parseStmtList(terminators ...TokenKind) ([]Stmt, error) {
	var stmts []Stmt
	isTerm := func(k TokenKind) bool {
		for _, t := range terminators {
			if k == t {
				return true
			}
		}
		return k == EOF
	}
	for !isTerm(p.cur().Kind) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case IDENT:
		return p.parseAssign()
	case IF:
		return p.parseIf()
	case FOR:
		return p.parseFor()
	case RECEIVE:
		return p.parseReceive()
	case SEND:
		return p.parseSend()
	case CALL:
		t := p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMICOLON); err != nil {
			return nil, err
		}
		return &CallStmt{Name: name.Text, Pos: t.Pos}, nil
	case BEGIN:
		t := p.next()
		body, err := p.parseStmtList(END)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(END); err != nil {
			return nil, err
		}
		p.accept(SEMICOLON)
		return &BlockStmt{Body: body, Pos: t.Pos}, nil
	}
	return nil, p.errf("expected statement, found %s", p.cur())
}

func (p *Parser) parseAssign() (Stmt, error) {
	lhs, err := p.parseVarRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Pos: lhs.Pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(THEN); err != nil {
		return nil, err
	}
	thenStmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: flattenBlock(thenStmt), Pos: t.Pos}
	if p.accept(ELSE) {
		elseStmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = flattenBlock(elseStmt)
	}
	return s, nil
}

// flattenBlock unwraps a single BlockStmt into its statement list so
// that "if c then begin a; b end" yields [a; b] directly.
func flattenBlock(s Stmt) []Stmt {
	if b, ok := s.(*BlockStmt); ok {
		return b.Body
	}
	return []Stmt{s}
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TO); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(DO); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: id.Text, Lo: lo, Hi: hi, Body: flattenBlock(body), Pos: t.Pos}, nil
}

func (p *Parser) parseDirection() (Direction, error) {
	t, err := p.expect(IDENT)
	if err != nil {
		return 0, err
	}
	switch t.Text {
	case "L", "l":
		return DirL, nil
	case "R", "r":
		return DirR, nil
	}
	return 0, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("invalid direction %q (want L or R)", t.Text)}
}

func (p *Parser) parseChannel() (Channel, error) {
	t, err := p.expect(IDENT)
	if err != nil {
		return 0, err
	}
	switch t.Text {
	case "X", "x":
		return ChanX, nil
	case "Y", "y":
		return ChanY, nil
	}
	return 0, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("invalid channel %q (want X or Y)", t.Text)}
}

func (p *Parser) parseReceive() (Stmt, error) {
	t := p.next() // receive
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	dir, err := p.parseDirection()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	ch, err := p.parseChannel()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	lhs, err := p.parseVarRef()
	if err != nil {
		return nil, err
	}
	s := &ReceiveStmt{Dir: dir, Chan: ch, LHS: lhs, Pos: t.Pos}
	if p.accept(COMMA) {
		ext, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.External = ext
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseSend() (Stmt, error) {
	t := p.next() // send
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	dir, err := p.parseDirection()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	ch, err := p.parseChannel()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s := &SendStmt{Dir: dir, Chan: ch, Value: val, Pos: t.Pos}
	if p.accept(COMMA) {
		ext, err := p.parseVarRef()
		if err != nil {
			return nil, err
		}
		s.External = ext
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseVarRef() (*VarRef, error) {
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	ref := &VarRef{Name: id.Text, Pos: id.Pos}
	for p.accept(LBRACKET) {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ref.Indices = append(ref.Indices, idx)
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := orExpr
//	orExpr  := andExpr { "or" andExpr }
//	andExpr := relExpr { "and" relExpr }
//	relExpr := addExpr [ relop addExpr ]
//	addExpr := mulExpr { ("+"|"-") mulExpr }
//	mulExpr := unary { ("*"|"/"|"div"|"mod") unary }
//	unary   := ["-"|"not"] primary
//	primary := literal | varref | "(" expr ")"
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OR {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpOr, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == AND {
		pos := p.next().Pos
		r, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpAnd, L: l, R: r, Pos: pos}
	}
	return l, nil
}

var relOps = map[TokenKind]BinOp{
	EQ: OpEq, NE: OpNe, LT: OpLt, LE: OpLe, GT: OpGt, GE: OpGe,
}

func (p *Parser) parseRel() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := relOps[p.cur().Kind]; ok {
		pos := p.next().Pos
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r, Pos: pos}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := OpAdd
		if p.cur().Kind == MINUS {
			op = OpSub
		}
		pos := p.next().Pos
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case STAR:
			op = OpMul
		case SLASH:
			op = OpDivide
		case DIV:
			op = OpIntDiv
		case MOD:
			op = OpMod
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case MINUS:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Neg: true, X: x, Pos: pos}, nil
	case NOT:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Neg: false, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case INTLIT:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "integer literal out of range"}
		}
		return &IntLit{Value: v, Pos: t.Pos}, nil
	case FLOATLIT:
		t := p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "malformed float literal"}
		}
		return &FloatLit{Value: v, Pos: t.Pos}, nil
	case IDENT:
		return p.parseVarRef()
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}

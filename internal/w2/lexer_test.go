package w2

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("receive (L, X, coeff, c[0]);")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{RECEIVE, LPAREN, IDENT, COMMA, IDENT, COMMA, IDENT,
		COMMA, IDENT, LBRACKET, INTLIT, RBRACKET, RPAREN, SEMICOLON, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize(":= <> <= >= < > = + - * / ( ) [ ] , ; :")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{ASSIGN, NE, LE, GE, LT, GT, EQ, PLUS, MINUS, STAR,
		SLASH, LPAREN, RPAREN, LBRACKET, RBRACKET, COMMA, SEMICOLON, COLON, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
		text string
	}{
		{"42", INTLIT, "42"},
		{"0", INTLIT, "0"},
		{"3.14", FLOATLIT, "3.14"},
		{"1e6", FLOATLIT, "1e6"},
		{"2.5e-3", FLOATLIT, "2.5e-3"},
		{"7E+2", FLOATLIT, "7E+2"},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q -> %v %q, want %v %q", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

// TestTokenizeNumberThenIdent checks "1e" is an int followed by an
// identifier, not a malformed float.
func TestTokenizeNumberThenIdent(t *testing.T) {
	toks, err := Tokenize("1e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INTLIT || toks[1].Kind != IDENT {
		t.Errorf("got %v %v, want INTLIT IDENT", toks[0], toks[1])
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a /* block \n comment */ b -- line comment\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
	for i, name := range []string{"a", "b", "c"} {
		if toks[i].Text != name {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, name)
		}
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("MODULE Begin END receive SEND")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{MODULE, BEGIN, END, RECEIVE, SEND, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"/* unterminated", "unterminated comment"},
		{"a ? b", "unexpected character"},
		{"x # y", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Tokenize(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestTokenKindString(t *testing.T) {
	if EOF.String() != "end of file" || ASSIGN.String() != ":=" {
		t.Error("token kind names broken")
	}
	if TokenKind(9999).String() != "token(9999)" {
		t.Error("unknown kind rendering broken")
	}
}

package w2

import (
	"strings"
	"testing"
)

// minimal wraps a statement list into a compilable module skeleton.
func minimal(body string) string {
	return `
module t (xs in, ys out)
float xs[16];
float ys[16];
cellprogram (cid : 0 : 1)
begin
    function f
    begin
        float v, w;
        float buf[4];
        int i, j;
` + body + `
    end
    call f;
end
`
}

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func TestParseModuleShape(t *testing.T) {
	m := mustParse(t, minimal("v := 1.0;"))
	if m.Name != "t" {
		t.Errorf("module name %q", m.Name)
	}
	if len(m.Params) != 2 || m.Params[0].Out || !m.Params[1].Out {
		t.Errorf("params broken: %+v", m.Params)
	}
	if m.Cells.First != 0 || m.Cells.Last != 1 || m.Cells.CellID != "cid" {
		t.Errorf("cellprogram header broken: %+v", m.Cells)
	}
	if len(m.Cells.Funcs) != 1 || m.Cells.Funcs[0].Name != "f" {
		t.Errorf("functions broken")
	}
	if len(m.Cells.Body) != 1 {
		t.Errorf("top-level body broken")
	}
}

func TestParseDeclarators(t *testing.T) {
	m := mustParse(t, minimal("v := 1.0;"))
	f := m.Cells.Funcs[0]
	byName := map[string]*VarDecl{}
	for _, d := range f.Locals {
		byName[d.Name] = d
	}
	if byName["buf"].Type.String() != "float[4]" {
		t.Errorf("buf type %s", byName["buf"].Type)
	}
	if byName["i"].Type.Base != BaseInt {
		t.Errorf("i should be int")
	}
	if byName["v"].Type.IsArray() {
		t.Errorf("v should be scalar")
	}
}

func TestParse2DArray(t *testing.T) {
	src := `
module t (m in, o out)
float m[3][5];
float o[3][5];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v;
        int i, j;
        for i := 0 to 2 do
            for j := 0 to 4 do begin
                receive (L, X, v, m[i][j]);
                send (R, X, v, o[i][j]);
            end;
    end
    call f;
end
`
	m := mustParse(t, src)
	d := m.Decls[0]
	if d.Type.String() != "float[3][5]" || d.Type.Size() != 15 {
		t.Errorf("2-d type broken: %s size %d", d.Type, d.Type.Size())
	}
}

func TestParsePrecedence(t *testing.T) {
	m := mustParse(t, minimal("v := 1.0 + 2.0 * 3.0;"))
	asg := m.Cells.Funcs[0].Body[0].(*AssignStmt)
	add := asg.RHS.(*BinExpr)
	if add.Op != OpAdd {
		t.Fatalf("top op %s, want +", add.Op)
	}
	if mul, ok := add.R.(*BinExpr); !ok || mul.Op != OpMul {
		t.Fatalf("* must bind tighter than +")
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	m := mustParse(t, minimal("v := (1.0 + 2.0) * 3.0;"))
	asg := m.Cells.Funcs[0].Body[0].(*AssignStmt)
	mul := asg.RHS.(*BinExpr)
	if mul.Op != OpMul {
		t.Fatalf("top op %s, want *", mul.Op)
	}
	if add, ok := mul.L.(*BinExpr); !ok || add.Op != OpAdd {
		t.Fatalf("parenthesized + must be the left operand")
	}
}

func TestParseRelationalAndBoolean(t *testing.T) {
	m := mustParse(t, minimal("if v < 1.0 and not (w > 2.0) or v = w then v := 0.0;"))
	ifs := m.Cells.Funcs[0].Body[0].(*IfStmt)
	or, ok := ifs.Cond.(*BinExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top boolean op must be or, got %T", ifs.Cond)
	}
}

func TestParseIfElse(t *testing.T) {
	m := mustParse(t, minimal(`
        if v < w then begin
            v := 1.0;
            w := 2.0;
        end else w := v;
`))
	ifs := m.Cells.Funcs[0].Body[0].(*IfStmt)
	if len(ifs.Then) != 2 || len(ifs.Else) != 1 {
		t.Fatalf("then %d stmts, else %d; want 2 and 1", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseForLoop(t *testing.T) {
	m := mustParse(t, minimal("for i := 1 to 9 do v := v + 1.0;"))
	f := m.Cells.Funcs[0].Body[0].(*ForStmt)
	if f.Var != "i" || len(f.Body) != 1 {
		t.Fatalf("for loop broken: %+v", f)
	}
}

func TestParseReceiveSendForms(t *testing.T) {
	m := mustParse(t, minimal(`
        receive (L, X, v, xs[0]);
        receive (L, Y, w, 0.0);
        receive (L, X, buf[1]);
        send (R, X, v);
        send (R, Y, v + w, ys[0]);
`))
	body := m.Cells.Funcs[0].Body
	r0 := body[0].(*ReceiveStmt)
	if r0.Dir != DirL || r0.Chan != ChanX || r0.External == nil {
		t.Errorf("receive 0 broken: %+v", r0)
	}
	r1 := body[1].(*ReceiveStmt)
	if _, ok := r1.External.(*FloatLit); !ok {
		t.Errorf("receive 1 literal external broken")
	}
	r2 := body[2].(*ReceiveStmt)
	if r2.External != nil || len(r2.LHS.Indices) != 1 {
		t.Errorf("receive 2 broken: %+v", r2)
	}
	s0 := body[3].(*SendStmt)
	if s0.External != nil || s0.Dir != DirR {
		t.Errorf("send 0 broken")
	}
	s1 := body[4].(*SendStmt)
	if s1.External == nil || s1.Chan != ChanY {
		t.Errorf("send 1 broken")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"missing module", "begin end", "expected module"},
		{"bad param mode", "module m (a inout)", "'in' or 'out'"},
		{"bad direction", minimal("receive (Q, X, v);"), "invalid direction"},
		{"bad channel", minimal("receive (L, Z, v);"), "invalid channel"},
		{"missing semicolon", minimal("v := 1.0"), "expected ;"},
		{"stray token after end", minimal("v := 1.0;") + " extra", "after end of module"},
		{"3-d array", strings.Replace(minimal("v := 1.0;"), "float buf[4];", "float buf[2][2][2];", 1), "two dimensions"},
		{"zero dim", strings.Replace(minimal("v := 1.0;"), "float buf[4];", "float buf[0];", 1), "positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseNegativeLiteralBound(t *testing.T) {
	// Unary minus in expressions.
	m := mustParse(t, minimal("v := -w + -(1.5);"))
	asg := m.Cells.Funcs[0].Body[0].(*AssignStmt)
	if _, ok := asg.RHS.(*BinExpr); !ok {
		t.Fatal("expected binary expression")
	}
}

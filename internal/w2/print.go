package w2

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a module back to W2 source text in a canonical layout.
// Printing a parsed module and re-parsing it yields a structurally
// identical tree (round-trip property, tested with random programs),
// which makes Print usable as a formatter (cmd/w2fmt).
func Print(m *Module) string {
	p := &printer{}
	p.module(m)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) module(m *Module) {
	var params []string
	for _, pr := range m.Params {
		mode := "in"
		if pr.Out {
			mode = "out"
		}
		params = append(params, pr.Name+" "+mode)
	}
	p.line("module %s (%s)", m.Name, strings.Join(params, ", "))
	for _, d := range m.Decls {
		p.line("%s %s;", d.Type.Base, declarator(d))
	}
	p.line("cellprogram (%s : %d : %d)", m.Cells.CellID, m.Cells.First, m.Cells.Last)
	p.line("begin")
	p.indent++
	for _, f := range m.Cells.Funcs {
		p.function(f)
	}
	for _, s := range m.Cells.Body {
		p.stmt(s)
	}
	p.indent--
	p.line("end")
}

func declarator(d *VarDecl) string {
	s := d.Name
	for _, dim := range d.Type.Dims {
		s += "[" + strconv.Itoa(dim) + "]"
	}
	return s
}

func (p *printer) function(f *FuncDecl) {
	p.line("function %s", f.Name)
	p.line("begin")
	p.indent++
	// Group locals by base type, arrays separate, preserving order.
	for _, d := range f.Locals {
		p.line("%s %s;", d.Type.Base, declarator(d))
	}
	for _, s := range f.Body {
		p.stmt(s)
	}
	p.indent--
	p.line("end")
}

func (p *printer) stmts(body []Stmt) {
	p.line("begin")
	p.indent++
	for _, s := range body {
		p.stmt(s)
	}
	p.indent--
	p.line("end;")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		p.line("%s := %s;", ExprString(s.LHS), ExprString(s.RHS))
	case *IfStmt:
		p.line("if %s then", ExprString(s.Cond))
		p.stmts(s.Then)
		if len(s.Else) > 0 {
			p.line("else")
			p.stmts(s.Else)
		}
	case *ForStmt:
		p.line("for %s := %s to %s do", s.Var, ExprString(s.Lo), ExprString(s.Hi))
		p.stmts(s.Body)
	case *ReceiveStmt:
		if s.External != nil {
			p.line("receive (%s, %s, %s, %s);", s.Dir, s.Chan, ExprString(s.LHS), ExprString(s.External))
		} else {
			p.line("receive (%s, %s, %s);", s.Dir, s.Chan, ExprString(s.LHS))
		}
	case *SendStmt:
		if s.External != nil {
			p.line("send (%s, %s, %s, %s);", s.Dir, s.Chan, ExprString(s.Value), ExprString(s.External))
		} else {
			p.line("send (%s, %s, %s);", s.Dir, s.Chan, ExprString(s.Value))
		}
	case *CallStmt:
		p.line("call %s;", s.Name)
	case *BlockStmt:
		p.stmts(s.Body)
	}
}

// ExprString renders an expression with explicit parentheses around
// every binary operation, so precedence survives re-parsing exactly.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		s := e.Name
		for _, idx := range e.Indices {
			s += "[" + ExprString(idx) + "]"
		}
		return s
	case *BinExpr:
		return "(" + ExprString(e.L) + " " + e.Op.String() + " " + ExprString(e.R) + ")"
	case *UnExpr:
		if e.Neg {
			return "(-" + ExprString(e.X) + ")"
		}
		return "(not " + ExprString(e.X) + ")"
	}
	return "?"
}

// EqualModule reports structural equality of two modules (positions
// ignored).  It backs the print/parse round-trip property.
func EqualModule(a, b *Module) bool {
	if a.Name != b.Name || len(a.Params) != len(b.Params) || len(a.Decls) != len(b.Decls) {
		return false
	}
	for i := range a.Params {
		if a.Params[i].Name != b.Params[i].Name || a.Params[i].Out != b.Params[i].Out {
			return false
		}
	}
	for i := range a.Decls {
		if !equalDecl(a.Decls[i], b.Decls[i]) {
			return false
		}
	}
	ca, cb := a.Cells, b.Cells
	if ca.CellID != cb.CellID || ca.First != cb.First || ca.Last != cb.Last ||
		len(ca.Funcs) != len(cb.Funcs) || len(ca.Body) != len(cb.Body) {
		return false
	}
	for i := range ca.Funcs {
		fa, fb := ca.Funcs[i], cb.Funcs[i]
		if fa.Name != fb.Name || len(fa.Locals) != len(fb.Locals) {
			return false
		}
		for j := range fa.Locals {
			if !equalDecl(fa.Locals[j], fb.Locals[j]) {
				return false
			}
		}
		if !equalStmts(fa.Body, fb.Body) {
			return false
		}
	}
	return equalStmts(ca.Body, cb.Body)
}

func equalDecl(a, b *VarDecl) bool {
	if a.Name != b.Name || a.Type.Base != b.Type.Base || len(a.Type.Dims) != len(b.Type.Dims) {
		return false
	}
	for i := range a.Type.Dims {
		if a.Type.Dims[i] != b.Type.Dims[i] {
			return false
		}
	}
	return true
}

func equalStmts(a, b []Stmt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalStmt(a[i], b[i]) {
			return false
		}
	}
	return true
}

func equalStmt(a, b Stmt) bool {
	switch a := a.(type) {
	case *AssignStmt:
		b, ok := b.(*AssignStmt)
		return ok && equalExpr(a.LHS, b.LHS) && equalExpr(a.RHS, b.RHS)
	case *IfStmt:
		b, ok := b.(*IfStmt)
		return ok && equalExpr(a.Cond, b.Cond) && equalStmts(a.Then, b.Then) && equalStmts(a.Else, b.Else)
	case *ForStmt:
		b, ok := b.(*ForStmt)
		return ok && a.Var == b.Var && equalExpr(a.Lo, b.Lo) && equalExpr(a.Hi, b.Hi) && equalStmts(a.Body, b.Body)
	case *ReceiveStmt:
		b, ok := b.(*ReceiveStmt)
		return ok && a.Dir == b.Dir && a.Chan == b.Chan && equalExpr(a.LHS, b.LHS) && equalOptExpr(a.External, b.External)
	case *SendStmt:
		b, ok := b.(*SendStmt)
		if !ok || a.Dir != b.Dir || a.Chan != b.Chan || !equalExpr(a.Value, b.Value) {
			return false
		}
		if (a.External == nil) != (b.External == nil) {
			return false
		}
		return a.External == nil || equalExpr(a.External, b.External)
	case *CallStmt:
		b, ok := b.(*CallStmt)
		return ok && a.Name == b.Name
	case *BlockStmt:
		b, ok := b.(*BlockStmt)
		return ok && equalStmts(a.Body, b.Body)
	}
	return false
}

func equalOptExpr(a, b Expr) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || equalExpr(a, b)
}

func equalExpr(a, b Expr) bool {
	switch a := a.(type) {
	case *IntLit:
		b, ok := b.(*IntLit)
		return ok && a.Value == b.Value
	case *FloatLit:
		switch b := b.(type) {
		case *FloatLit:
			return a.Value == b.Value
		}
		return false
	case *VarRef:
		b, ok := b.(*VarRef)
		if !ok || a.Name != b.Name || len(a.Indices) != len(b.Indices) {
			return false
		}
		for i := range a.Indices {
			if !equalExpr(a.Indices[i], b.Indices[i]) {
				return false
			}
		}
		return true
	case *BinExpr:
		b, ok := b.(*BinExpr)
		return ok && a.Op == b.Op && equalExpr(a.L, b.L) && equalExpr(a.R, b.R)
	case *UnExpr:
		b, ok := b.(*UnExpr)
		return ok && a.Neg == b.Neg && equalExpr(a.X, b.X)
	}
	return false
}

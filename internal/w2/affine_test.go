package w2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Loop variables for affine testing: stable identities.
var (
	loopI = &ForStmt{Var: "i", Pos: Pos{Line: 1, Col: 1}}
	loopJ = &ForStmt{Var: "j", Pos: Pos{Line: 2, Col: 1}}
	loopK = &ForStmt{Var: "k", Pos: Pos{Line: 3, Col: 1}}
)

// randAffine draws a small random affine form over i, j, k.
func randAffine(r *rand.Rand) Affine {
	a := AffConst(int64(r.Intn(21) - 10))
	for _, l := range []*ForStmt{loopI, loopJ, loopK} {
		if r.Intn(2) == 1 {
			a = a.Add(AffVar(l).Scale(int64(r.Intn(9) - 4)))
		}
	}
	return a
}

func randIdx(r *rand.Rand) map[*ForStmt]int64 {
	return map[*ForStmt]int64{
		loopI: int64(r.Intn(11) - 5),
		loopJ: int64(r.Intn(11) - 5),
		loopK: int64(r.Intn(11) - 5),
	}
}

// TestAffineAlgebraProperties checks with testing/quick that the affine
// operations agree with pointwise evaluation.
func TestAffineAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	add := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randAffine(r), randAffine(r)
		idx := randIdx(r)
		return a.Add(b).Eval(idx) == a.Eval(idx)+b.Eval(idx)
	}
	if err := quick.Check(add, cfg); err != nil {
		t.Error("Add:", err)
	}

	sub := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randAffine(r), randAffine(r)
		idx := randIdx(r)
		return a.Sub(b).Eval(idx) == a.Eval(idx)-b.Eval(idx)
	}
	if err := quick.Check(sub, cfg); err != nil {
		t.Error("Sub:", err)
	}

	scale := func(seed int64, k int8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randAffine(r)
		idx := randIdx(r)
		return a.Scale(int64(k)).Eval(idx) == int64(k)*a.Eval(idx)
	}
	if err := quick.Check(scale, cfg); err != nil {
		t.Error("Scale:", err)
	}

	subst := func(seed int64, v int8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randAffine(r)
		idx := randIdx(r)
		idx[loopI] = int64(v)
		return a.Subst(loopI, int64(v)).Eval(idx) == a.Eval(idx)
	}
	if err := quick.Check(subst, cfg); err != nil {
		t.Error("Subst:", err)
	}
}

// TestAffineRangeSound checks Range bounds every evaluation over the
// declared index rectangles.
func TestAffineRangeSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randAffine(r)
		bounds := map[*ForStmt][2]int64{
			loopI: {0, int64(r.Intn(5))},
			loopJ: {int64(-r.Intn(3)), int64(r.Intn(3))},
			loopK: {1, int64(1 + r.Intn(4))},
		}
		min, max := a.Range(bounds)
		// Exhaustive check over the small rectangle.
		for i := bounds[loopI][0]; i <= bounds[loopI][1]; i++ {
			for j := bounds[loopJ][0]; j <= bounds[loopJ][1]; j++ {
				for k := bounds[loopK][0]; k <= bounds[loopK][1]; k++ {
					v := a.Eval(map[*ForStmt]int64{loopI: i, loopJ: j, loopK: k})
					if v < min || v > max {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAffineNormalization(t *testing.T) {
	a := AffVar(loopI).Add(AffVar(loopI)) // 2i
	if a.Coef(loopI) != 2 || len(a.Terms) != 1 {
		t.Errorf("2i not merged: %v", a)
	}
	z := AffVar(loopI).Sub(AffVar(loopI))
	if !z.IsConst() || z.Const != 0 {
		t.Errorf("i-i not zero: %v", z)
	}
}

func TestAffineEqual(t *testing.T) {
	a := AffVar(loopI).Scale(3).Add(AffConst(7))
	b := AffConst(7).Add(AffVar(loopI).Scale(3))
	if !a.Equal(b) {
		t.Errorf("%v != %v", a, b)
	}
	if a.Equal(a.Add(AffConst(1))) {
		t.Errorf("distinct forms reported equal")
	}
}

func TestAffineString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{AffConst(0), "0"},
		{AffConst(-3), "-3"},
		{AffVar(loopI), "i"},
		{AffVar(loopI).Scale(-1), "-i"},
		{AffVar(loopI).Scale(2).Add(AffVar(loopJ)).Add(AffConst(-5)), "2*i + j - 5"},
		{AffVar(loopJ).Sub(AffVar(loopI).Scale(4)), "-4*i + j"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

package w2

import (
	"fmt"
)

// This file implements semantic analysis: name resolution, type
// checking, evaluation of loop bounds, and enforcement of the W2
// restrictions required by the skewed computation model (§5.1):
//
//   - loop bounds must be compile-time constants, so the compiler can
//     bound when every datum is received and sent;
//   - array subscripts must be affine in loop indices (data independent),
//     because all addresses are generated on the interface unit and must
//     be common to all cells;
//   - the cells have no integer arithmetic, so integer variables may only
//     be loop counters and may only appear in subscripts and bounds.

// SymKind classifies a resolved name.
type SymKind int

// Symbol kinds.
const (
	SymHost       SymKind = iota // module parameter backed by host memory
	SymCellScalar                // function-local float scalar (a cell register)
	SymCellArray                 // function-local array (cell data memory)
	SymLoopVar                   // integer loop counter
	SymCellID                    // the cellprogram index variable
)

func (k SymKind) String() string {
	switch k {
	case SymHost:
		return "host variable"
	case SymCellScalar:
		return "cell scalar"
	case SymCellArray:
		return "cell array"
	case SymLoopVar:
		return "loop variable"
	case SymCellID:
		return "cell identifier"
	}
	return "symbol"
}

// Symbol is a resolved variable.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	Out  bool // for SymHost: an "out" parameter
	Base int  // memory base offset (cell memory or host memory)
	Func *FuncDecl
}

// Info is the result of semantic analysis: resolution and typing maps
// keyed by syntax nodes, plus memory layout for the cell and the host.
type Info struct {
	Module *Module
	Funcs  map[string]*FuncDecl

	// Uses maps every VarRef to its symbol.
	Uses map[*VarRef]*Symbol
	// ExprBase maps every expression to its base type.
	ExprBase map[Expr]Base
	// Bounds maps every for statement to its constant [lo, hi].
	Bounds map[*ForStmt][2]int64
	// Address maps every array-element VarRef to the affine form of its
	// flattened (row-major) element index, excluding the array base.
	Address map[*VarRef]Affine

	// HostSyms lists host parameters in declaration order.
	HostSyms []*Symbol
	// HostSize is the total host words needed by all parameters.
	HostSize int
	// CellMemSize is the number of cell data-memory words used per
	// function (max across functions).
	CellMemSize int
}

// SemaError is a semantic error with its source position.
type SemaError struct {
	Pos Pos
	Msg string
}

func (e *SemaError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &SemaError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type checker struct {
	info  *Info
	host  map[string]*Symbol
	fn    *FuncDecl
	local map[string]*Symbol
	loops []*ForStmt // active loop nest, outermost first
	// loopBounds caches the bounds of active loops for range checking.
	loopBounds map[*ForStmt][2]int64
}

// Analyze performs semantic analysis of a parsed module.
func Analyze(m *Module) (*Info, error) {
	info := &Info{
		Module:   m,
		Funcs:    make(map[string]*FuncDecl),
		Uses:     make(map[*VarRef]*Symbol),
		ExprBase: make(map[Expr]Base),
		Bounds:   make(map[*ForStmt][2]int64),
		Address:  make(map[*VarRef]Affine),
	}
	c := &checker{info: info, host: make(map[string]*Symbol), loopBounds: make(map[*ForStmt][2]int64)}

	if m.Cells == nil {
		return nil, errAt(m.Pos, "module %s has no cellprogram", m.Name)
	}
	if m.Cells.First != 0 {
		return nil, errAt(m.Cells.Pos, "cellprogram must start at cell 0, got %d", m.Cells.First)
	}
	if m.Cells.Last < m.Cells.First {
		return nil, errAt(m.Cells.Pos, "cellprogram range %d:%d is empty", m.Cells.First, m.Cells.Last)
	}

	// Host parameters: each must have a module-level declaration.
	declByName := make(map[string]*VarDecl)
	for _, d := range m.Decls {
		if _, dup := declByName[d.Name]; dup {
			return nil, errAt(d.Pos, "duplicate declaration of %s", d.Name)
		}
		declByName[d.Name] = d
	}
	base := 0
	for _, p := range m.Params {
		d, ok := declByName[p.Name]
		if !ok {
			return nil, errAt(p.Pos, "parameter %s has no declaration", p.Name)
		}
		if d.Type.Base != BaseFloat {
			return nil, errAt(d.Pos, "host parameter %s must be float (channels carry 32-bit floating words)", p.Name)
		}
		sym := &Symbol{Name: p.Name, Kind: SymHost, Type: d.Type, Out: p.Out, Base: base}
		base += d.Type.Size()
		c.host[p.Name] = sym
		info.HostSyms = append(info.HostSyms, sym)
	}
	info.HostSize = base
	for _, d := range m.Decls {
		if _, ok := c.host[d.Name]; !ok {
			return nil, errAt(d.Pos, "module variable %s is not a parameter; only parameter arrays may be declared at module level", d.Name)
		}
	}

	// Functions.
	for _, f := range m.Cells.Funcs {
		if _, dup := info.Funcs[f.Name]; dup {
			return nil, errAt(f.Pos, "duplicate function %s", f.Name)
		}
		info.Funcs[f.Name] = f
	}
	for _, f := range m.Cells.Funcs {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}

	// Top-level body: call statements only (the paper's programs call a
	// single cell function; we allow several, executed in order).
	for _, s := range m.Cells.Body {
		call, ok := s.(*CallStmt)
		if !ok {
			return nil, errAt(s.StmtPos(), "only call statements are allowed at cellprogram top level")
		}
		if _, ok := info.Funcs[call.Name]; !ok {
			return nil, errAt(call.Pos, "call of undefined function %s", call.Name)
		}
	}
	if len(m.Cells.Body) == 0 {
		return nil, errAt(m.Cells.Pos, "cellprogram has no call statement")
	}
	return info, nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.local = make(map[string]*Symbol)
	c.loops = nil
	memBase := 0
	for _, d := range f.Locals {
		if _, dup := c.local[d.Name]; dup {
			return errAt(d.Pos, "duplicate local %s in function %s", d.Name, f.Name)
		}
		if _, shadow := c.host[d.Name]; shadow {
			return errAt(d.Pos, "local %s shadows a host parameter", d.Name)
		}
		var sym *Symbol
		switch {
		case d.Type.IsArray():
			if d.Type.Base != BaseFloat {
				return errAt(d.Pos, "cell arrays must be float: %s", d.Name)
			}
			sym = &Symbol{Name: d.Name, Kind: SymCellArray, Type: d.Type, Base: memBase, Func: f}
			memBase += d.Type.Size()
		case d.Type.Base == BaseInt:
			sym = &Symbol{Name: d.Name, Kind: SymLoopVar, Type: d.Type, Func: f}
		default:
			sym = &Symbol{Name: d.Name, Kind: SymCellScalar, Type: d.Type, Func: f}
		}
		c.local[d.Name] = sym
	}
	if memBase > 4096 {
		return errAt(f.Pos, "function %s needs %d words of cell memory; the Warp cell has 4K", f.Name, memBase)
	}
	if memBase > c.info.CellMemSize {
		c.info.CellMemSize = memBase
	}
	return c.checkStmts(f.Body)
}

func (c *checker) lookup(name string, pos Pos) (*Symbol, error) {
	if s, ok := c.local[name]; ok {
		return s, nil
	}
	if s, ok := c.host[name]; ok {
		return s, nil
	}
	if name == c.info.Module.Cells.CellID {
		return &Symbol{Name: name, Kind: SymCellID, Type: Type{Base: BaseInt}}, nil
	}
	return nil, errAt(pos, "undefined variable %s", name)
}

func (c *checker) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *AssignStmt:
		sym, err := c.checkCellLValue(s.LHS)
		if err != nil {
			return err
		}
		if sym.Kind == SymLoopVar {
			return errAt(s.Pos, "cannot assign to loop variable %s: Warp cells have no integer arithmetic", sym.Name)
		}
		bt, err := c.checkExpr(s.RHS)
		if err != nil {
			return err
		}
		if bt != BaseFloat {
			return errAt(s.Pos, "assignment to %s requires a float expression, got %s", sym.Name, bt)
		}
		return nil

	case *IfStmt:
		bt, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if bt != BaseBool {
			return errAt(s.Pos, "if condition must be a comparison, got %s", bt)
		}
		if err := c.checkNoIOIn(s.Then, s.Pos); err != nil {
			return err
		}
		if err := c.checkNoIOIn(s.Else, s.Pos); err != nil {
			return err
		}
		if err := c.checkStmts(s.Then); err != nil {
			return err
		}
		return c.checkStmts(s.Else)

	case *ForStmt:
		sym, ok := c.local[s.Var]
		if !ok || sym.Kind != SymLoopVar {
			return errAt(s.Pos, "for variable %s must be a declared int local", s.Var)
		}
		for _, l := range c.loops {
			if l.Var == s.Var {
				return errAt(s.Pos, "loop variable %s reused in nested loop", s.Var)
			}
		}
		lo, err := c.constInt(s.Lo)
		if err != nil {
			return err
		}
		hi, err := c.constInt(s.Hi)
		if err != nil {
			return err
		}
		if hi < lo {
			return errAt(s.Pos, "loop %s runs from %d to %d: empty loops are not supported", s.Var, lo, hi)
		}
		c.info.Bounds[s] = [2]int64{lo, hi}
		c.loops = append(c.loops, s)
		c.loopBounds[s] = [2]int64{lo, hi}
		err = c.checkStmts(s.Body)
		c.loops = c.loops[:len(c.loops)-1]
		delete(c.loopBounds, s)
		return err

	case *ReceiveStmt:
		sym, err := c.checkCellLValue(s.LHS)
		if err != nil {
			return err
		}
		if sym.Kind == SymLoopVar {
			return errAt(s.Pos, "cannot receive into loop variable %s", sym.Name)
		}
		if s.External != nil {
			if err := c.checkExternal(s.External, false); err != nil {
				return err
			}
		}
		return nil

	case *SendStmt:
		bt, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if bt != BaseFloat {
			return errAt(s.Pos, "sent value must be float, got %s", bt)
		}
		if s.External != nil {
			if err := c.checkExternal(s.External, true); err != nil {
				return err
			}
		}
		return nil

	case *CallStmt:
		return errAt(s.Pos, "call statements are only allowed at cellprogram top level")

	case *BlockStmt:
		return c.checkStmts(s.Body)
	}
	return errAt(s.StmtPos(), "unhandled statement")
}

// checkNoIOIn rejects send/receive under a conditional: I/O under a
// data-dependent predicate would make I/O timing data dependent, which
// the skewed computation model cannot support (§5.1).
func (c *checker) checkNoIOIn(stmts []Stmt, ifPos Pos) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ReceiveStmt, *SendStmt:
			return errAt(s.StmtPos(), "send/receive may not appear under an if: I/O timing must be data independent")
		case *IfStmt:
			if err := c.checkNoIOIn(s.Then, ifPos); err != nil {
				return err
			}
			if err := c.checkNoIOIn(s.Else, ifPos); err != nil {
				return err
			}
		case *ForStmt:
			if err := c.checkNoIOIn(s.Body, ifPos); err != nil {
				return err
			}
		case *BlockStmt:
			if err := c.checkNoIOIn(s.Body, ifPos); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkCellLValue resolves an assignable cell-side reference: a float
// scalar or a cell array element with an affine subscript.
func (c *checker) checkCellLValue(ref *VarRef) (*Symbol, error) {
	sym, err := c.lookup(ref.Name, ref.Pos)
	if err != nil {
		return nil, err
	}
	c.info.Uses[ref] = sym
	switch sym.Kind {
	case SymHost:
		return nil, errAt(ref.Pos, "%s is a host variable; cells access host data only through send/receive externals", ref.Name)
	case SymCellID:
		return nil, errAt(ref.Pos, "cannot assign to the cell identifier")
	case SymCellScalar, SymLoopVar:
		if len(ref.Indices) != 0 {
			return nil, errAt(ref.Pos, "%s is a scalar", ref.Name)
		}
		return sym, nil
	case SymCellArray:
		if err := c.checkSubscripts(ref, sym); err != nil {
			return nil, err
		}
		return sym, nil
	}
	return nil, errAt(ref.Pos, "cannot assign to %s", ref.Name)
}

// checkSubscripts validates an array element reference and records its
// flattened affine address.
func (c *checker) checkSubscripts(ref *VarRef, sym *Symbol) error {
	if len(ref.Indices) != len(sym.Type.Dims) {
		return errAt(ref.Pos, "%s has %d dimension(s), %d subscript(s) given",
			ref.Name, len(sym.Type.Dims), len(ref.Indices))
	}
	addr := AffConst(0)
	for k, idx := range ref.Indices {
		aff, err := c.affine(idx)
		if err != nil {
			return err
		}
		min, max := aff.Range(c.loopBounds)
		if min < 0 || max >= int64(sym.Type.Dims[k]) {
			return errAt(idx.ExprPos(), "subscript %s of %s ranges over [%d,%d], outside [0,%d]",
				aff, ref.Name, min, max, sym.Type.Dims[k]-1)
		}
		addr = addr.Add(aff)
		if k < len(sym.Type.Dims)-1 {
			addr = addr.Scale(int64(sym.Type.Dims[k+1]))
		}
	}
	c.info.Address[ref] = addr
	return nil
}

// affine reduces an integer-typed expression to affine form, or fails:
// the expression would require cell-side integer arithmetic.
func (c *checker) affine(e Expr) (Affine, error) {
	switch e := e.(type) {
	case *IntLit:
		c.info.ExprBase[e] = BaseInt
		return AffConst(e.Value), nil
	case *VarRef:
		sym, err := c.lookup(e.Name, e.Pos)
		if err != nil {
			return Affine{}, err
		}
		c.info.Uses[e] = sym
		switch sym.Kind {
		case SymLoopVar:
			if len(e.Indices) != 0 {
				return Affine{}, errAt(e.Pos, "%s is a scalar", e.Name)
			}
			loop := c.activeLoop(e.Name)
			if loop == nil {
				return Affine{}, errAt(e.Pos, "loop variable %s used outside its loop", e.Name)
			}
			c.info.ExprBase[e] = BaseInt
			return AffVar(loop), nil
		case SymCellID:
			return Affine{}, errAt(e.Pos, "the cell identifier may not appear in subscripts: addresses are generated once on the IU and must be common to all cells")
		}
		return Affine{}, errAt(e.Pos, "subscript must be affine in loop indices; %s is a %s", e.Name, sym.Kind)
	case *UnExpr:
		if !e.Neg {
			return Affine{}, errAt(e.Pos, "'not' is not an integer operation")
		}
		a, err := c.affine(e.X)
		if err != nil {
			return Affine{}, err
		}
		c.info.ExprBase[e] = BaseInt
		return a.Scale(-1), nil
	case *BinExpr:
		switch e.Op {
		case OpAdd, OpSub:
			l, err := c.affine(e.L)
			if err != nil {
				return Affine{}, err
			}
			r, err := c.affine(e.R)
			if err != nil {
				return Affine{}, err
			}
			c.info.ExprBase[e] = BaseInt
			if e.Op == OpAdd {
				return l.Add(r), nil
			}
			return l.Sub(r), nil
		case OpMul:
			l, err := c.affine(e.L)
			if err != nil {
				return Affine{}, err
			}
			r, err := c.affine(e.R)
			if err != nil {
				return Affine{}, err
			}
			c.info.ExprBase[e] = BaseInt
			if l.IsConst() {
				return r.Scale(l.Const), nil
			}
			if r.IsConst() {
				return l.Scale(r.Const), nil
			}
			return Affine{}, errAt(e.Pos, "subscript is quadratic in loop indices; addresses must be affine")
		}
		return Affine{}, errAt(e.Pos, "operator %s is not allowed in subscripts", e.Op)
	}
	return Affine{}, errAt(e.ExprPos(), "subscript must be an integer expression affine in loop indices")
}

func (c *checker) activeLoop(name string) *ForStmt {
	for i := len(c.loops) - 1; i >= 0; i-- {
		if c.loops[i].Var == name {
			return c.loops[i]
		}
	}
	return nil
}

// constInt evaluates a compile-time constant integer expression
// (required for loop bounds, §6.2.1).
func (c *checker) constInt(e Expr) (int64, error) {
	a, err := c.affine(e)
	if err != nil {
		return 0, err
	}
	if !a.IsConst() {
		return 0, errAt(e.ExprPos(), "loop bounds must be compile-time constants (the array has no dynamic flow control)")
	}
	return a.Const, nil
}

// checkExpr types a value expression used in cell computation.
func (c *checker) checkExpr(e Expr) (Base, error) {
	switch e := e.(type) {
	case *IntLit:
		// Integer literals in float context are promoted.
		c.info.ExprBase[e] = BaseFloat
		return BaseFloat, nil
	case *FloatLit:
		c.info.ExprBase[e] = BaseFloat
		return BaseFloat, nil
	case *VarRef:
		sym, err := c.lookup(e.Name, e.Pos)
		if err != nil {
			return BaseInvalid, err
		}
		c.info.Uses[e] = sym
		switch sym.Kind {
		case SymHost:
			return BaseInvalid, errAt(e.Pos, "%s is a host variable; cells access host data only through receive externals", e.Name)
		case SymCellScalar:
			if len(e.Indices) != 0 {
				return BaseInvalid, errAt(e.Pos, "%s is a scalar", e.Name)
			}
			c.info.ExprBase[e] = BaseFloat
			return BaseFloat, nil
		case SymCellArray:
			if err := c.checkSubscripts(e, sym); err != nil {
				return BaseInvalid, err
			}
			c.info.ExprBase[e] = BaseFloat
			return BaseFloat, nil
		case SymLoopVar, SymCellID:
			return BaseInvalid, errAt(e.Pos, "%s is an integer and cannot appear in cell computation: Warp cells have no integer arithmetic (use it only in subscripts)", e.Name)
		}
		return BaseInvalid, errAt(e.Pos, "cannot use %s here", e.Name)
	case *UnExpr:
		bt, err := c.checkExpr(e.X)
		if err != nil {
			return BaseInvalid, err
		}
		if e.Neg {
			if bt != BaseFloat {
				return BaseInvalid, errAt(e.Pos, "unary minus requires a float operand")
			}
			c.info.ExprBase[e] = BaseFloat
			return BaseFloat, nil
		}
		if bt != BaseBool {
			return BaseInvalid, errAt(e.Pos, "'not' requires a boolean operand")
		}
		c.info.ExprBase[e] = BaseBool
		return BaseBool, nil
	case *BinExpr:
		switch {
		case e.Op.IsComparison():
			lt, err := c.checkExpr(e.L)
			if err != nil {
				return BaseInvalid, err
			}
			rt, err := c.checkExpr(e.R)
			if err != nil {
				return BaseInvalid, err
			}
			if lt != BaseFloat || rt != BaseFloat {
				return BaseInvalid, errAt(e.Pos, "comparisons require float operands")
			}
			c.info.ExprBase[e] = BaseBool
			return BaseBool, nil
		case e.Op == OpAnd || e.Op == OpOr:
			lt, err := c.checkExpr(e.L)
			if err != nil {
				return BaseInvalid, err
			}
			rt, err := c.checkExpr(e.R)
			if err != nil {
				return BaseInvalid, err
			}
			if lt != BaseBool || rt != BaseBool {
				return BaseInvalid, errAt(e.Pos, "%s requires boolean operands", e.Op)
			}
			c.info.ExprBase[e] = BaseBool
			return BaseBool, nil
		case e.Op == OpIntDiv || e.Op == OpMod:
			return BaseInvalid, errAt(e.Pos, "div/mod are not available in cell computation")
		default:
			lt, err := c.checkExpr(e.L)
			if err != nil {
				return BaseInvalid, err
			}
			rt, err := c.checkExpr(e.R)
			if err != nil {
				return BaseInvalid, err
			}
			if lt != BaseFloat || rt != BaseFloat {
				return BaseInvalid, errAt(e.Pos, "operator %s requires float operands", e.Op)
			}
			c.info.ExprBase[e] = BaseFloat
			return BaseFloat, nil
		}
	}
	return BaseInvalid, errAt(e.ExprPos(), "invalid expression")
}

// checkExternal validates the external (host-side) operand of a
// send/receive.  For receives it may be a host array element (affine
// subscripts) or a float literal; for sends it must be a host array
// element of an out parameter.
func (c *checker) checkExternal(e Expr, isSend bool) error {
	switch e := e.(type) {
	case *FloatLit:
		if isSend {
			return errAt(e.Pos, "send external must name a host location")
		}
		c.info.ExprBase[e] = BaseFloat
		return nil
	case *IntLit:
		if isSend {
			return errAt(e.Pos, "send external must name a host location")
		}
		c.info.ExprBase[e] = BaseFloat
		return nil
	case *VarRef:
		sym, err := c.lookup(e.Name, e.Pos)
		if err != nil {
			return err
		}
		c.info.Uses[e] = sym
		if sym.Kind != SymHost {
			return errAt(e.Pos, "external operand %s must be a host variable", e.Name)
		}
		if isSend && !sym.Out {
			return errAt(e.Pos, "send external %s must be an out parameter", e.Name)
		}
		if !isSend && sym.Out {
			return errAt(e.Pos, "receive external %s must be an in parameter", e.Name)
		}
		if len(e.Indices) != len(sym.Type.Dims) {
			return errAt(e.Pos, "%s has %d dimension(s), %d subscript(s) given",
				e.Name, len(sym.Type.Dims), len(e.Indices))
		}
		addr := AffConst(0)
		for k, idx := range e.Indices {
			aff, err := c.affine(idx)
			if err != nil {
				return err
			}
			min, max := aff.Range(c.loopBounds)
			if min < 0 || max >= int64(sym.Type.Dims[k]) {
				return errAt(idx.ExprPos(), "subscript %s of %s ranges over [%d,%d], outside [0,%d]",
					aff, e.Name, min, max, sym.Type.Dims[k]-1)
			}
			addr = addr.Add(aff)
			if k < len(sym.Type.Dims)-1 {
				addr = addr.Scale(int64(sym.Type.Dims[k+1]))
			}
		}
		c.info.Address[e] = addr
		return nil
	}
	return errAt(e.ExprPos(), "invalid external operand")
}

package w2

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) (*Info, error) {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(m)
}

func mustAnalyze(t *testing.T, src string) *Info {
	t.Helper()
	info, err := analyze(t, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func wantSemaError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := analyze(t, src)
	if err == nil {
		t.Fatalf("expected a semantic error mentioning %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestSemaAcceptsPolynomialShape(t *testing.T) {
	info := mustAnalyze(t, minimal(`
        receive (L, X, v, xs[0]);
        for i := 0 to 15 do begin
            receive (L, X, w, xs[i]);
            send (R, X, w, ys[i]);
        end;
        send (R, X, v);
`))
	if info.HostSize != 32 {
		t.Errorf("host size %d, want 32", info.HostSize)
	}
	if len(info.HostSyms) != 2 {
		t.Errorf("host syms %d", len(info.HostSyms))
	}
}

// TestSemaRestrictions exercises every restriction of §5.1 and the
// machine-imposed rules one by one.
func TestSemaRestrictions(t *testing.T) {
	cases := []struct{ name, body, want string }{
		{"dynamic loop bound", "for i := 0 to 15 do for j := 0 to i do v := 1.0;",
			"compile-time constants"},
		{"loop variable assignment", "i := 1.0;", "integer arithmetic"},
		{"int in float expr", "for i := 0 to 3 do v := v + i;", "cannot appear in cell computation"},
		{"quadratic subscript", "for i := 0 to 1 do for j := 0 to 1 do buf[i*j] := 1.0;",
			"affine"},
		{"subscript out of range", "for i := 0 to 15 do buf[i] := 1.0;", "outside"},
		{"cid in subscript", "buf[cid] := 1.0;", "common to all cells"},
		{"host var in computation", "v := xs[0];", "through receive externals"},
		{"assign to host", "xs[0] := 1.0;", "host variable"},
		{"io under if", "if v < 1.0 then send (R, X, v);", "data independent"},
		{"receive into host", "receive (L, X, xs[0]);", "host variable"},
		{"send external in-param", "send (R, X, v, xs[0]);", "out parameter"},
		{"receive external out-param", "receive (L, X, v, ys[0]);", "in parameter"},
		{"undefined variable", "q := 1.0;", "undefined"},
		{"scalar subscripted", "v[0] := 1.0;", "scalar"},
		{"dim mismatch", "receive (L, X, v, xs[0][1]);", "subscript"},
		{"loop var reuse", "for i := 0 to 1 do for i := 0 to 1 do v := 1.0;", "reused"},
		{"loop var out of scope", "for i := 0 to 1 do v := 1.0; buf[i] := 1.0;", "outside its loop"},
		{"empty loop", "for i := 3 to 1 do v := 1.0;", "empty"},
		{"comparison of bools", "if (v < w) < (w < v) then v := 1.0;", "float operands"},
		{"and of floats", "if v and w then v := 1.0;", "boolean operands"},
		{"float condition", "if v then v := 1.0;", "comparison"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantSemaError(t, minimal(c.body), c.want)
		})
	}
}

func TestSemaModuleLevelErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"param without decl", `
module m (a in)
cellprogram (c : 0 : 0)
begin
    function f begin
        float v;
        v := 1.0;
    end
    call f;
end`, "no declaration"},
		{"int host param", `
module m (a in)
int a[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float v;
        v := 1.0;
    end
    call f;
end`, "must be float"},
		{"non-param module decl", `
module m (a in)
float a[4], b[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float v;
        v := 1.0;
    end
    call f;
end`, "not a parameter"},
		{"cellprogram must start at 0", `
module m (a in)
float a[4];
cellprogram (c : 1 : 3)
begin
    function f begin
        float v;
        v := 1.0;
    end
    call f;
end`, "start at cell 0"},
		{"no call", `
module m (a in)
float a[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float v;
        v := 1.0;
    end
end`, "no call statement"},
		{"undefined call", `
module m (a in)
float a[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float v;
        v := 1.0;
    end
    call g;
end`, "undefined function"},
		{"duplicate function", `
module m (a in)
float a[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float v;
        v := 1.0;
    end
    function f begin
        float v;
        v := 1.0;
    end
    call f;
end`, "duplicate function"},
		{"local shadows host", `
module m (a in)
float a[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float a;
        a := 1.0;
    end
    call f;
end`, "shadows"},
		{"cell memory exceeded", `
module m (a in)
float a[4];
cellprogram (c : 0 : 0)
begin
    function f begin
        float big[5000];
        big[0] := 1.0;
    end
    call f;
end`, "4K"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantSemaError(t, c.src, c.want)
		})
	}
}

// TestSemaAddressForms checks the affine address resolution of array
// references.
func TestSemaAddressForms(t *testing.T) {
	info := mustAnalyze(t, minimal(`
        for i := 0 to 1 do
            for j := 0 to 1 do
                buf[2*i + j] := 1.0;
`))
	var found bool
	for ref, aff := range info.Address {
		if ref.Name != "buf" {
			continue
		}
		found = true
		if got := aff.String(); got != "2*i + j" {
			t.Errorf("address form %q, want \"2*i + j\"", got)
		}
	}
	if !found {
		t.Fatal("no buf address recorded")
	}
}

// TestSema2DAddressFlattening checks row-major flattening of 2-d host
// subscripts.
func TestSema2DAddressFlattening(t *testing.T) {
	src := `
module t (m in, o out)
float m[3][5];
float o[15];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v;
        int i, j;
        for i := 0 to 2 do
            for j := 0 to 4 do begin
                receive (L, X, v, m[i][j]);
                send (R, X, v, o[5*i+j]);
            end;
    end
    call f;
end
`
	info := mustAnalyze(t, src)
	for ref, aff := range info.Address {
		if ref.Name != "m" {
			continue
		}
		if got := aff.String(); got != "5*i + j" {
			t.Errorf("m[i][j] flattened to %q, want \"5*i + j\"", got)
		}
	}
}

func TestSymbolKindsAndBases(t *testing.T) {
	info := mustAnalyze(t, minimal("buf[0] := 1.0; v := buf[1];"))
	kinds := map[string]SymKind{}
	for _, s := range info.Uses {
		kinds[s.Name] = s.Kind
	}
	if kinds["buf"] != SymCellArray || kinds["v"] != SymCellScalar {
		t.Errorf("symbol kinds wrong: %v", kinds)
	}
	// Host layout: xs at 0, ys at 16.
	if info.HostSyms[0].Base != 0 || info.HostSyms[1].Base != 16 {
		t.Errorf("host layout wrong: %d %d", info.HostSyms[0].Base, info.HostSyms[1].Base)
	}
}

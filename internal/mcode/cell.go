// Package mcode defines the microinstruction words executed by the Warp
// cells and the interface unit, shared between the code generators and
// the simulator.
//
// A Warp cell (Figure 2-2 of the paper) is a horizontal microengine:
// every functional unit is controlled by its own field of a wide
// instruction word, all units issue in the same cycle, and the two
// floating-point units are 5-stage pipelined.  We model:
//
//   - ADD unit: floating add/sub/neg, comparisons, boolean connectives
//     and select (pipelined, latency FPULatency);
//   - MUL unit: floating mul/div (same latency);
//   - two memory ports (the cell can make two data-memory references per
//     cycle, §2.2), each taking its address from the Adr queue;
//   - queue ports: receive/send on channel X and Y;
//   - a literal field writing an immediate into a register.
//
// One simplification relative to the hardware: the two 32-word
// register files (one per FPU) and the crossbar are modelled as a
// single 64-word register file reachable by every unit.  This preserves
// the scheduling structure (register pressure, unit parallelism, result
// latency) without modelling crossbar port assignment.
package mcode

import (
	"fmt"
	"strings"

	"warp/internal/w2"
)

// Architectural parameters of the Warp cell.
const (
	// FPULatency is the pipeline depth of each floating-point unit:
	// a result issued at cycle t may be consumed at t+FPULatency.
	FPULatency = 5
	// NumRegs is the size of the (unified) cell register file.
	NumRegs = 64
	// QueueDepth is the hardware queue size per channel (words).
	QueueDepth = 128
	// MemWords is the cell data memory size (4K words).
	MemWords = 4096
	// MemPorts is the number of data-memory references per cycle.
	MemPorts = 2
)

// Reg is a cell register number.
type Reg int

func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// AluCode selects the operation of an FPU field.
type AluCode int

// ALU operation codes.  Fadd..Fneg and the comparisons/booleans/select
// execute on the ADD unit; Fmul and Fdiv on the MUL unit.
const (
	Fadd AluCode = iota
	Fsub
	Fneg
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	BoolAnd
	BoolOr
	BoolNot
	Sel
	// Mov is a crossbar register-to-register move (latency 1); it is
	// issued on the ADD unit's field but bypasses the FPU pipeline.
	Mov
	Fmul
	Fdiv
)

var aluNames = [...]string{
	Fadd: "fadd", Fsub: "fsub", Fneg: "fneg",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	BoolAnd: "and", BoolOr: "or", BoolNot: "not", Sel: "sel", Mov: "mov",
	Fmul: "fmul", Fdiv: "fdiv",
}

func (c AluCode) String() string { return aluNames[c] }

// NumOperands returns how many register operands the code reads.
func (c AluCode) NumOperands() int {
	switch c {
	case Fneg, BoolNot, Mov:
		return 1
	case Sel:
		return 3
	}
	return 2
}

// Latency returns the cycles until the result register is readable.
func (c AluCode) Latency() int64 {
	if c == Mov {
		return 1
	}
	return FPULatency
}

// OnMulUnit reports whether the code executes on the MUL unit.
func (c AluCode) OnMulUnit() bool { return c == Fmul || c == Fdiv }

// AluOp is one FPU field: dst ← code(src...).
type AluOp struct {
	Code AluCode
	Dst  Reg
	Src  [3]Reg // Src[0..NumOperands-1] are meaningful
}

func (o *AluOp) String() string {
	ops := make([]string, o.Code.NumOperands())
	for i := range ops {
		ops[i] = o.Src[i].String()
	}
	return fmt.Sprintf("%s %s <- %s", o.Code, o.Dst, strings.Join(ops, ","))
}

// MemOp is one memory-port field.  The address is popped from the Adr
// queue (addresses are generated on the IU, §2.2); the AddrInfo
// metadata records what the IU must produce for this reference.
type MemOp struct {
	Store bool
	Reg   Reg // destination (load) or source (store)
	Addr  AddrInfo
}

func (o *MemOp) String() string {
	if o.Store {
		return fmt.Sprintf("store [adr] <- %s  ; %s", o.Reg, o.Addr)
	}
	return fmt.Sprintf("load %s <- [adr]  ; %s", o.Reg, o.Addr)
}

// AddrInfo describes the address the IU must generate for one memory
// reference or one host binding: Base + Affine evaluated at the current
// loop indices shifted by Delta (software pipelining moves operations
// across iteration boundaries).
type AddrInfo struct {
	Sym    *w2.Symbol
	Base   int
	Affine w2.Affine
	Delta  map[*w2.ForStmt]int64 // iteration offset per loop; nil when zero
}

func (a AddrInfo) String() string {
	s := fmt.Sprintf("%s+%s", a.Sym.Name, a.Affine)
	for loop, d := range a.Delta {
		if d != 0 {
			s += fmt.Sprintf(" [%s%+d]", loop.Var, d)
		}
	}
	return s
}

// Shifted returns the affine address with each loop index i replaced by
// i+Delta[i], folding the shift into the constant term.
func (a AddrInfo) Shifted() w2.Affine {
	aff := a.Affine
	for loop, d := range a.Delta {
		aff = w2.Affine{Const: aff.Const + aff.Coef(loop)*d, Terms: aff.Terms}
	}
	return aff
}

// IOOp is a queue-port field: a receive writes the popped word to Dst;
// a send pushes Src.
type IOOp struct {
	Recv bool
	Dir  w2.Direction
	Chan w2.Channel
	Reg  Reg
	// Ext is the host binding for boundary cells; nil otherwise.
	// ExtLiteral supplies the value when the external is a literal.
	Ext        *AddrInfo
	ExtLiteral *float64
	Delta      map[*w2.ForStmt]int64 // iteration offset (software pipelining)
}

func (o *IOOp) String() string {
	if o.Recv {
		return fmt.Sprintf("recv %s <- %s.%s", o.Reg, o.Dir, o.Chan)
	}
	return fmt.Sprintf("send %s.%s <- %s", o.Dir, o.Chan, o.Reg)
}

// LitOp writes an immediate into a register.
type LitOp struct {
	Dst   Reg
	Value float64
}

func (o *LitOp) String() string { return fmt.Sprintf("lit %s <- %g", o.Dst, o.Value) }

// Instr is one wide microinstruction: all non-nil fields issue in the
// same cycle.  Mov is a dedicated crossbar register-move field: the
// full crossbar of Figure 2-2 can route one register to another without
// passing through an FPU, so moves do not compete with arithmetic.
type Instr struct {
	Add *AluOp
	Mul *AluOp
	Mov *AluOp // crossbar move (Code must be Mov)
	Mem [MemPorts]*MemOp
	IO  []*IOOp // at most one per (direction, channel, recv/send) port
	Lit *LitOp

	// Debug information carried alongside the microcode.  Pos is the W2
	// source position of the statement this instruction primarily
	// executes (the first field placed into the word claims it; zero for
	// scheduled nops and synthetic preamble/pad cycles).  PC is the
	// instruction's static µprogram address, assigned by AssignPCs in
	// the same canonical walk order NumInstrs counts — the key the
	// simulator's exact per-µPC cycle counters are indexed by.
	Pos w2.Pos
	PC  int
}

// Empty reports whether the instruction is a no-op.
func (in *Instr) Empty() bool {
	if in.Add != nil || in.Mul != nil || in.Mov != nil || in.Lit != nil || len(in.IO) > 0 {
		return false
	}
	for _, m := range in.Mem {
		if m != nil {
			return false
		}
	}
	return true
}

func (in *Instr) String() string {
	var parts []string
	if in.Add != nil {
		parts = append(parts, in.Add.String())
	}
	if in.Mul != nil {
		parts = append(parts, in.Mul.String())
	}
	if in.Mov != nil {
		parts = append(parts, in.Mov.String())
	}
	for _, m := range in.Mem {
		if m != nil {
			parts = append(parts, m.String())
		}
	}
	for _, io := range in.IO {
		parts = append(parts, io.String())
	}
	if in.Lit != nil {
		parts = append(parts, in.Lit.String())
	}
	if len(parts) == 0 {
		return "nop"
	}
	return strings.Join(parts, " | ")
}

// CodeItem is a node of the structured cell program: straight-line code
// or a counted loop.
type CodeItem interface {
	// Cycles returns the execution time of the item in cycles.
	Cycles() int64
}

// Straight is a block of consecutive microinstructions.
type Straight struct {
	Instrs []*Instr
}

// Cycles returns the length of the block.
func (s *Straight) Cycles() int64 { return int64(len(s.Instrs)) }

// LoopItem is a counted loop.  The cell's sequencer repeats the body;
// the termination decision each iteration comes from the IU's loop
// control signal (§6.3.1).
//
// Src/First/Step record the mapping from the hardware loop's iteration
// number k (0-based) to the source-level index of loop Src:
// i = First + Step·k.  The IU code generator uses it to evaluate affine
// addresses; software pipelining may retarget the mapping.
type LoopItem struct {
	ID    int // loop identifier shared with the IU program
	Trips int64
	Body  []CodeItem

	Src   *w2.ForStmt
	First int64
	Step  int64
}

// Cycles returns total loop execution time.
func (l *LoopItem) Cycles() int64 {
	var body int64
	for _, it := range l.Body {
		body += it.Cycles()
	}
	return body * l.Trips
}

// CellProgram is the complete microprogram of one cell.
type CellProgram struct {
	Items []CodeItem
}

// Cycles returns the total execution time of the program.
func (p *CellProgram) Cycles() int64 {
	var n int64
	for _, it := range p.Items {
		n += it.Cycles()
	}
	return n
}

// WalkInstrs visits every static microinstruction of items in the
// canonical order (straight-line blocks and loop bodies in program
// order), passing the stack of enclosing loops outermost-first.  It is
// the single definition of µprogram address order: AssignPCs, NumInstrs
// and the profiler's debug map all derive from this walk, so a PC
// assigned at compile time indexes the same instruction everywhere.
func WalkInstrs(items []CodeItem, visit func(in *Instr, loops []*LoopItem)) {
	var stack []*LoopItem
	var walk func(items []CodeItem)
	walk = func(items []CodeItem) {
		for _, it := range items {
			switch it := it.(type) {
			case *Straight:
				for _, in := range it.Instrs {
					visit(in, stack)
				}
			case *LoopItem:
				stack = append(stack, it)
				walk(it.Body)
				stack = stack[:len(stack)-1]
			}
		}
	}
	walk(items)
}

// AssignPCs numbers every static microinstruction with its µprogram
// address in canonical walk order and returns the instruction count.
// The simulator's per-µPC profile counters are indexed by these PCs.
func (p *CellProgram) AssignPCs() int {
	n := 0
	WalkInstrs(p.Items, func(in *Instr, _ []*LoopItem) {
		in.PC = n
		n++
	})
	return n
}

// NumInstrs counts static microinstructions (the paper's "cell µcode"
// length metric of Table 7-1).
func (p *CellProgram) NumInstrs() int {
	var count func(items []CodeItem) int
	count = func(items []CodeItem) int {
		n := 0
		for _, it := range items {
			switch it := it.(type) {
			case *Straight:
				n += len(it.Instrs)
			case *LoopItem:
				n += count(it.Body)
			}
		}
		return n
	}
	return count(p.Items)
}

// Listing renders the program as an annotated microcode listing.
func (p *CellProgram) Listing() string {
	var sb strings.Builder
	var walk func(items []CodeItem, depth int)
	walk = func(items []CodeItem, depth int) {
		indent := strings.Repeat("  ", depth)
		for _, it := range items {
			switch it := it.(type) {
			case *Straight:
				for _, in := range it.Instrs {
					fmt.Fprintf(&sb, "%s%s\n", indent, in)
				}
			case *LoopItem:
				fmt.Fprintf(&sb, "%sloop L%d (%d times):\n", indent, it.ID, it.Trips)
				walk(it.Body, depth+1)
			}
		}
	}
	walk(p.Items, 0)
	return sb.String()
}

package mcode

import (
	"fmt"
	"strings"
)

// This file models the interface unit (IU) microengine (§2.2, §6.3).
// The IU generates the address stream and the loop control signals for
// the Warp array.  Its constraints, which drive the IU code generator:
//
//   - 16 registers and no data memory (spilling is impossible);
//   - an adder/subtractor only — no multiplier, so every address must be
//     formed by additions and subtractions (strength reduction);
//   - a 32K-word table memory readable only in sequential order, used to
//     pre-store addresses the IU cannot compute in time;
//   - at least three cycles of counter work per loop iteration for the
//     termination test (§6.3.1).

// Architectural parameters of the IU.
const (
	// IUNumRegs is the number of IU registers (§6.3.2: "there is no
	// memory in the IU, at no time can there be more than 16 live
	// variables, since there are only 16 registers").
	IUNumRegs = 16
	// TableWords is the size of the sequential-access address table.
	TableWords = 32768
	// LoopOverheadCycles is the counter update-and-test time per
	// iteration (§6.3.1: "the IU ... needs at least three cycles to
	// update and test the loop counter").
	LoopOverheadCycles = 3
)

// IUReg is an IU register number.
type IUReg int

func (r IUReg) String() string { return fmt.Sprintf("a%d", r) }

// IUAlu is the IU's adder field: Dst ← A ± B.
type IUAlu struct {
	Sub    bool
	Dst, A IUReg
	B      IUReg
	BIsImm bool
	ImmVal int64
}

func (o *IUAlu) String() string {
	op := "+"
	if o.Sub {
		op = "-"
	}
	b := o.B.String()
	if o.BIsImm {
		b = fmt.Sprintf("#%d", o.ImmVal)
	}
	return fmt.Sprintf("%s <- %s %s %s", o.Dst, o.A, op, b)
}

// IUImm loads an immediate into a register.
type IUImm struct {
	Dst   IUReg
	Value int64
}

func (o *IUImm) String() string { return fmt.Sprintf("%s <- #%d", o.Dst, o.Value) }

// IUOut emits one address onto the Adr path, either from a register or
// from the next sequential table location.
type IUOut struct {
	FromTable bool
	Src       IUReg
}

func (o *IUOut) String() string {
	if o.FromTable {
		return "adr <- table++"
	}
	return fmt.Sprintf("adr <- %s", o.Src)
}

// IUSig emits the control signal for cell loop LoopID: whether another
// iteration follows.  Inside an IU loop the decision depends on the
// loop counter (this is the work §6.3.1's three cycles pay for): the
// cell iteration is iter·M + Copy of CellTrips, where iter is the
// enclosing IU loop's current repetition.  Signals emitted by unrolled
// remainder copies are static.
type IUSig struct {
	LoopID int
	// Static signals carry the decision directly.
	Static   bool
	Continue bool
	// Dynamic signals: cell iteration = iter·M + Copy of CellTrips.
	Copy      int64
	M         int64
	CellTrips int64
}

func (o *IUSig) String() string {
	if !o.Static {
		return fmt.Sprintf("sig L%d ctr*%d%+d<%d", o.LoopID, o.M, o.Copy, o.CellTrips-1)
	}
	if o.Continue {
		return fmt.Sprintf("sig L%d continue", o.LoopID)
	}
	return fmt.Sprintf("sig L%d stop", o.LoopID)
}

// IUInstr is one wide IU microinstruction; all non-nil fields issue in
// the same cycle.  Out has one slot per cell memory port, because the
// cells make up to two data-memory references per cycle.  CtrWork marks
// a cycle whose adder is reserved for loop-counter update-and-test
// bookkeeping (§6.3.1); it conflicts with Alu.
type IUInstr struct {
	Alu     *IUAlu
	Imm     *IUImm
	Out     [MemPorts]*IUOut
	Sig     *IUSig
	CtrWork bool
}

// Empty reports whether the instruction is a no-op.
func (in *IUInstr) Empty() bool {
	if in.Alu != nil || in.Imm != nil || in.Sig != nil || in.CtrWork {
		return false
	}
	for _, o := range in.Out {
		if o != nil {
			return false
		}
	}
	return true
}

func (in *IUInstr) String() string {
	var parts []string
	if in.Alu != nil {
		parts = append(parts, in.Alu.String())
	}
	if in.CtrWork {
		parts = append(parts, "ctr")
	}
	if in.Imm != nil {
		parts = append(parts, in.Imm.String())
	}
	for _, o := range in.Out {
		if o != nil {
			parts = append(parts, o.String())
		}
	}
	if in.Sig != nil {
		parts = append(parts, in.Sig.String())
	}
	if len(parts) == 0 {
		return "nop"
	}
	return strings.Join(parts, " | ")
}

// IUItem is a node of the structured IU program.
type IUItem interface {
	iuCycles() int64
}

// IUStraight is a block of consecutive IU microinstructions.
type IUStraight struct {
	Instrs []*IUInstr
}

func (s *IUStraight) iuCycles() int64 { return int64(len(s.Instrs)) }

// IULoop is a counted IU loop, mirroring a cell loop.
type IULoop struct {
	ID    int
	Trips int64
	Body  []IUItem
}

func (l *IULoop) iuCycles() int64 {
	var n int64
	for _, it := range l.Body {
		n += it.iuCycles()
	}
	return n * l.Trips
}

// IUProgram is the complete IU microprogram, together with the
// pre-stored address table contents.
type IUProgram struct {
	Items []IUItem
	Table []int64
}

// Cycles returns total execution time.
func (p *IUProgram) Cycles() int64 {
	var n int64
	for _, it := range p.Items {
		n += it.iuCycles()
	}
	return n
}

// NumInstrs counts static microinstructions (the "IU µcode" metric of
// Table 7-1).
func (p *IUProgram) NumInstrs() int {
	var count func(items []IUItem) int
	count = func(items []IUItem) int {
		n := 0
		for _, it := range items {
			switch it := it.(type) {
			case *IUStraight:
				n += len(it.Instrs)
			case *IULoop:
				n += count(it.Body)
			}
		}
		return n
	}
	return count(p.Items)
}

// Listing renders the IU program.
func (p *IUProgram) Listing() string {
	var sb strings.Builder
	var walk func(items []IUItem, depth int)
	walk = func(items []IUItem, depth int) {
		indent := strings.Repeat("  ", depth)
		for _, it := range items {
			switch it := it.(type) {
			case *IUStraight:
				for _, in := range it.Instrs {
					fmt.Fprintf(&sb, "%s%s\n", indent, in)
				}
			case *IULoop:
				fmt.Fprintf(&sb, "%sloop L%d (%d times):\n", indent, it.ID, it.Trips)
				walk(it.Body, depth+1)
			}
		}
	}
	walk(p.Items, 0)
	if len(p.Table) > 0 {
		fmt.Fprintf(&sb, "table: %d entries\n", len(p.Table))
	}
	return sb.String()
}

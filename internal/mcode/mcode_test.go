package mcode

import (
	"strings"
	"testing"

	"warp/internal/w2"
)

func TestCellProgramCyclesAndInstrs(t *testing.T) {
	p := &CellProgram{Items: []CodeItem{
		&Straight{Instrs: []*Instr{{}, {}}},
		&LoopItem{ID: 0, Trips: 10, Body: []CodeItem{
			&Straight{Instrs: []*Instr{{}, {}, {}}},
		}},
		&Straight{Instrs: []*Instr{{}}},
	}}
	if got := p.Cycles(); got != 2+30+1 {
		t.Errorf("Cycles = %d, want 33", got)
	}
	if got := p.NumInstrs(); got != 6 {
		t.Errorf("NumInstrs = %d, want 6 (static)", got)
	}
}

func TestIUProgramCyclesAndInstrs(t *testing.T) {
	p := &IUProgram{Items: []IUItem{
		&IUStraight{Instrs: []*IUInstr{{}, {}}},
		&IULoop{ID: 0, Trips: 5, Body: []IUItem{
			&IUStraight{Instrs: []*IUInstr{{}, {}, {}, {}}},
		}},
	}}
	if got := p.Cycles(); got != 2+20 {
		t.Errorf("Cycles = %d, want 22", got)
	}
	if got := p.NumInstrs(); got != 6 {
		t.Errorf("NumInstrs = %d, want 6", got)
	}
}

func TestListings(t *testing.T) {
	cell := &CellProgram{Items: []CodeItem{
		&Straight{Instrs: []*Instr{
			{Lit: &LitOp{Dst: 3, Value: 1.5}},
			{Add: &AluOp{Code: Fadd, Dst: 1, Src: [3]Reg{2, 3}},
				IO: []*IOOp{{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: 4}}},
		}},
		&LoopItem{ID: 2, Trips: 7, Body: []CodeItem{
			&Straight{Instrs: []*Instr{{Mov: &AluOp{Code: Mov, Dst: 0, Src: [3]Reg{1}}}}},
		}},
	}}
	l := cell.Listing()
	for _, want := range []string{"lit r3 <- 1.5", "fadd r1 <- r2,r3", "recv r4 <- L.X", "loop L2 (7 times):", "mov r0 <- r1"} {
		if !strings.Contains(l, want) {
			t.Errorf("cell listing misses %q:\n%s", want, l)
		}
	}
	iu := &IUProgram{Items: []IUItem{
		&IUStraight{Instrs: []*IUInstr{
			{Imm: &IUImm{Dst: 2, Value: 40}},
			{Alu: &IUAlu{Dst: 2, A: 2, BIsImm: true, ImmVal: 3}},
			{Out: [MemPorts]*IUOut{{Src: 2}, {FromTable: true}},
				Sig: &IUSig{LoopID: 1, Static: true, Continue: true}},
			{CtrWork: true},
		}},
	}, Table: []int64{7}}
	il := iu.Listing()
	for _, want := range []string{"a2 <- #40", "a2 <- a2 + #3", "adr <- a2", "adr <- table++", "sig L1 continue", "ctr", "table: 1 entries"} {
		if !strings.Contains(il, want) {
			t.Errorf("IU listing misses %q:\n%s", want, il)
		}
	}
}

func TestInstrEmptyAndNop(t *testing.T) {
	in := &Instr{}
	if !in.Empty() || in.String() != "nop" {
		t.Error("empty instruction broken")
	}
	in.Mov = &AluOp{Code: Mov}
	if in.Empty() {
		t.Error("mov instruction reported empty")
	}
	iu := &IUInstr{}
	if !iu.Empty() || iu.String() != "nop" {
		t.Error("empty IU instruction broken")
	}
	iu.CtrWork = true
	if iu.Empty() {
		t.Error("counter-work instruction reported empty")
	}
}

func TestAddrInfoShifted(t *testing.T) {
	loop := &w2.ForStmt{Var: "i"}
	aff := w2.AffVar(loop).Scale(3).Add(w2.AffConst(2))
	info := AddrInfo{Affine: aff, Delta: map[*w2.ForStmt]int64{loop: 4}}
	shifted := info.Shifted()
	// i -> i+4: 3(i+4)+2 = 3i+14.
	if shifted.Const != 14 || shifted.Coef(loop) != 3 {
		t.Errorf("Shifted = %v, want 3i+14", shifted)
	}
	// Without deltas it is the identity.
	info2 := AddrInfo{Affine: aff}
	if !info2.Shifted().Equal(aff) {
		t.Error("Shifted without delta changed the affine")
	}
}

func TestAluCodeProperties(t *testing.T) {
	if Mov.Latency() != 1 {
		t.Error("mov latency must be 1")
	}
	if Fadd.Latency() != FPULatency || Fmul.Latency() != FPULatency {
		t.Error("FPU latency wrong")
	}
	if !Fmul.OnMulUnit() || !Fdiv.OnMulUnit() || Fadd.OnMulUnit() {
		t.Error("unit assignment wrong")
	}
	if Sel.NumOperands() != 3 || Fneg.NumOperands() != 1 || Fadd.NumOperands() != 2 {
		t.Error("operand counts wrong")
	}
}

func TestValidateCellCatchesBadPrograms(t *testing.T) {
	bad := []*CellProgram{
		{Items: []CodeItem{&Straight{Instrs: []*Instr{
			{Add: &AluOp{Code: Fadd, Dst: 200}},
		}}}},
		{Items: []CodeItem{&Straight{Instrs: []*Instr{
			{Add: &AluOp{Code: Fmul, Dst: 1}},
		}}}},
		{Items: []CodeItem{&Straight{Instrs: []*Instr{
			{Mov: &AluOp{Code: Fadd, Dst: 1}},
		}}}},
		{Items: []CodeItem{&Straight{Instrs: []*Instr{
			{IO: []*IOOp{
				{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: 1},
				{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: 2},
			}},
		}}}},
		{Items: []CodeItem{&LoopItem{ID: 0, Trips: 0, Body: []CodeItem{
			&Straight{Instrs: []*Instr{{}}},
		}}}},
		{Items: []CodeItem{&LoopItem{ID: 0, Trips: 3}}},
	}
	for i, p := range bad {
		if err := ValidateCell(p); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

func TestCountCell(t *testing.T) {
	p := &CellProgram{Items: []CodeItem{
		&LoopItem{ID: 0, Trips: 4, Body: []CodeItem{
			&Straight{Instrs: []*Instr{
				{IO: []*IOOp{{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: 0}}},
				{Mem: [MemPorts]*MemOp{{Store: true, Reg: 0}}},
				{IO: []*IOOp{{Recv: false, Dir: w2.DirR, Chan: w2.ChanY, Reg: 0}}},
			}},
			&LoopItem{ID: 1, Trips: 2, Body: []CodeItem{
				&Straight{Instrs: []*Instr{
					{Mem: [MemPorts]*MemOp{{Store: false, Reg: 1}}},
				}},
			}},
		}},
	}}
	c := CountCell(p)
	if c.Recv[w2.ChanX] != 4 || c.Send[w2.ChanY] != 4 {
		t.Errorf("I/O counts wrong: %+v", c)
	}
	if c.AdrPops != 4+8 {
		t.Errorf("AdrPops = %d, want 12", c.AdrPops)
	}
	if c.Signals != 4+8 {
		t.Errorf("Signals = %d, want 12", c.Signals)
	}
}

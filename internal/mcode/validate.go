package mcode

import (
	"fmt"

	"warp/internal/w2"
)

// This file provides structural validation of generated microprograms:
// the machine invariants every code generator must respect.  The driver
// test suite runs these validators over every compiled program.

// ValidateCell checks the structural invariants of a cell microprogram:
//
//   - registers within the file;
//   - at most one queue operation per port per instruction;
//   - the Mov field carries only Mov operations, Add no MUL-unit codes
//     and vice versa;
//   - loops have positive trip counts and nonempty bodies.
func ValidateCell(p *CellProgram) error {
	return validateCellItems(p.Items)
}

func validateCellItems(items []CodeItem) error {
	for _, it := range items {
		switch it := it.(type) {
		case *Straight:
			for i, in := range it.Instrs {
				if err := validateInstr(in); err != nil {
					return fmt.Errorf("instruction %d: %w", i, err)
				}
			}
		case *LoopItem:
			if it.Trips < 1 {
				return fmt.Errorf("loop L%d: %d trips", it.ID, it.Trips)
			}
			var body int64
			for _, b := range it.Body {
				body += b.Cycles()
			}
			if body == 0 {
				return fmt.Errorf("loop L%d: empty body", it.ID)
			}
			if err := validateCellItems(it.Body); err != nil {
				return fmt.Errorf("loop L%d: %w", it.ID, err)
			}
		}
	}
	return nil
}

func regOK(r Reg) bool { return r >= 0 && r < NumRegs }

func validateInstr(in *Instr) error {
	checkAlu := func(op *AluOp, field string) error {
		if op == nil {
			return nil
		}
		if !regOK(op.Dst) {
			return fmt.Errorf("%s: destination %s out of range", field, op.Dst)
		}
		for i := 0; i < op.Code.NumOperands(); i++ {
			if !regOK(op.Src[i]) {
				return fmt.Errorf("%s: source %s out of range", field, op.Src[i])
			}
		}
		switch field {
		case "add":
			if op.Code.OnMulUnit() || op.Code == Mov {
				return fmt.Errorf("add field carries %s", op.Code)
			}
		case "mul":
			if !op.Code.OnMulUnit() {
				return fmt.Errorf("mul field carries %s", op.Code)
			}
		case "mov":
			if op.Code != Mov {
				return fmt.Errorf("mov field carries %s", op.Code)
			}
		}
		return nil
	}
	if err := checkAlu(in.Add, "add"); err != nil {
		return err
	}
	if err := checkAlu(in.Mul, "mul"); err != nil {
		return err
	}
	if err := checkAlu(in.Mov, "mov"); err != nil {
		return err
	}
	type port struct {
		recv bool
		dir  w2.Direction
		ch   w2.Channel
	}
	seen := map[port]bool{}
	for _, io := range in.IO {
		p := port{io.Recv, io.Dir, io.Chan}
		if seen[p] {
			return fmt.Errorf("two operations on one queue port in a cycle")
		}
		seen[p] = true
		if !regOK(io.Reg) {
			return fmt.Errorf("queue operation register %s out of range", io.Reg)
		}
	}
	for _, m := range in.Mem {
		if m != nil && !regOK(m.Reg) {
			return fmt.Errorf("memory operation register %s out of range", m.Reg)
		}
	}
	if in.Lit != nil && !regOK(in.Lit.Dst) {
		return fmt.Errorf("literal destination %s out of range", in.Lit.Dst)
	}
	return nil
}

// CellCounts are the dynamic operation counts of a cell program.
type CellCounts struct {
	AdrPops int64 // memory references = addresses consumed
	Signals int64 // loop boundaries = control signals consumed
	Recv    map[w2.Channel]int64
	Send    map[w2.Channel]int64
}

// CountCell computes the dynamic counts by walking the structure.
func CountCell(p *CellProgram) CellCounts {
	c := CellCounts{Recv: map[w2.Channel]int64{}, Send: map[w2.Channel]int64{}}
	countCellItems(p.Items, 1, &c)
	return c
}

func countCellItems(items []CodeItem, mult int64, c *CellCounts) {
	for _, it := range items {
		switch it := it.(type) {
		case *Straight:
			for _, in := range it.Instrs {
				for _, m := range in.Mem {
					if m != nil {
						c.AdrPops += mult
					}
				}
				for _, io := range in.IO {
					if io.Recv {
						c.Recv[io.Chan] += mult
					} else {
						c.Send[io.Chan] += mult
					}
				}
			}
		case *LoopItem:
			c.Signals += mult * it.Trips
			countCellItems(it.Body, mult*it.Trips, c)
		}
	}
}

// ValidateIU checks the structural invariants of an IU microprogram:
// registers within the 16-register file, positive trip counts, and no
// multiplications (true by construction — the instruction set has
// none).
func ValidateIU(p *IUProgram) error {
	return validateIUItems(p.Items)
}

func validateIUItems(items []IUItem) error {
	iuRegOK := func(r IUReg) bool { return r >= 0 && r < IUNumRegs }
	for _, it := range items {
		switch it := it.(type) {
		case *IUStraight:
			for _, in := range it.Instrs {
				if in.Alu != nil {
					if !iuRegOK(in.Alu.Dst) || !iuRegOK(in.Alu.A) || (!in.Alu.BIsImm && !iuRegOK(in.Alu.B)) {
						return fmt.Errorf("IU adder register out of range: %s", in.Alu)
					}
					if in.CtrWork {
						return fmt.Errorf("adder field and counter work collide")
					}
				}
				if in.Imm != nil && !iuRegOK(in.Imm.Dst) {
					return fmt.Errorf("IU immediate register out of range")
				}
				for _, o := range in.Out {
					if o != nil && !o.FromTable && !iuRegOK(o.Src) {
						return fmt.Errorf("IU address output register out of range")
					}
				}
			}
		case *IULoop:
			if it.Trips < 1 {
				return fmt.Errorf("IU loop L%d: %d trips", it.ID, it.Trips)
			}
			if err := validateIUItems(it.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

// IUCounts are the dynamic emission counts of an IU program.
type IUCounts struct {
	AdrOuts   int64
	TableOuts int64
	Signals   int64
}

// CountIU computes the dynamic counts by walking the structure.
func CountIU(p *IUProgram) IUCounts {
	var c IUCounts
	countIUItems(p.Items, 1, &c)
	return c
}

func countIUItems(items []IUItem, mult int64, c *IUCounts) {
	for _, it := range items {
		switch it := it.(type) {
		case *IUStraight:
			for _, in := range it.Instrs {
				for _, o := range in.Out {
					if o == nil {
						continue
					}
					c.AdrOuts += mult
					if o.FromTable {
						c.TableOuts += mult
					}
				}
				if in.Sig != nil {
					c.Signals += mult
				}
			}
		case *IULoop:
			countIUItems(it.Body, mult*it.Trips, c)
		}
	}
}

package fabric

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warp/internal/sim"
	"warp/internal/workloads"
)

// stressPlan builds a plan with many more tiles than arrays.
func stressPlan(t *testing.T, m, k, n, tile int) *Plan {
	t.Helper()
	a, b := workloads.LargeMatmulData(m, k, n, 9)
	pl, err := PlanMatmul(Matmul{M: m, K: k, N: n, A: a, B: b}, mmProg(tile), DefaultLimits(tile))
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestFarmStress drives many tiles through few arrays with the race
// detector's eyes on the shared state: the staging channel, the stats
// aggregation, and the output buffer.
func TestFarmStress(t *testing.T) {
	pl := stressPlan(t, 24, 24, 24, 2) // 12³ = 1728 tiles
	var inFlight, peak atomic.Int64
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	out, stats, err := Run(context.Background(), pl, Config{Arrays: 3}, run)
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.MatmulRectRef(pl.mm.A, pl.mm.B, 24, 24, 24)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if stats.Dispatched != 1728 || stats.Retried != 0 || stats.Failed != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("%d tiles ran concurrently on a 3-array farm", p)
	}
	if stats.MakespanCycles != 1728/3*100 {
		t.Fatalf("makespan %d", stats.MakespanCycles)
	}
}

// TestFarmLivelockRetryThenSucceed injects a livelock that clears
// after two attempts: the farm must retry within the bound and finish
// the job cleanly.
func TestFarmLivelockRetryThenSucceed(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 4)
	const victim = 5
	var mu sync.Mutex
	failures := 2
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == victim {
			mu.Lock()
			retry := failures > 0
			if retry {
				failures--
			}
			mu.Unlock()
			if retry {
				return nil, TileStats{}, sim.ErrLivelock
			}
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	out, stats, err := Run(context.Background(), pl, Config{Arrays: 2, Retries: 2}, run)
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.MatmulRectRef(pl.mm.A, pl.mm.B, 8, 8, 8)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if stats.Retried != 2 || stats.Failed != 0 {
		t.Fatalf("retried %d failed %d, want 2 retries and no failures", stats.Retried, stats.Failed)
	}
	if stats.Dispatched != len(pl.Tiles)+2 {
		t.Fatalf("dispatched %d, want %d", stats.Dispatched, len(pl.Tiles)+2)
	}
}

// TestFarmLivelockRetryThenFail injects a persistent livelock: the
// farm must exhaust the bounded attempts, fail the job with a typed
// per-tile error naming the tile and attempt count, and return without
// hanging.
func TestFarmLivelockRetryThenFail(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 4)
	const victim = 3
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == victim {
			return nil, TileStats{}, sim.ErrLivelock
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	done := make(chan struct{})
	var out []float64
	var stats *Stats
	var err error
	go func() {
		defer close(done)
		out, stats, err = Run(context.Background(), pl, Config{Arrays: 2, Retries: 2}, run)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("farm hung on a persistently livelocked tile")
	}
	if out != nil {
		t.Fatal("failed job returned an output")
	}
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("job error %v (%T), want *TileError", err, err)
	}
	if te.Tile != victim || te.Attempts != 3 {
		t.Fatalf("TileError{Tile: %d, Attempts: %d}, want tile %d after 3 attempts", te.Tile, te.Attempts, victim)
	}
	if !errors.Is(err, sim.ErrLivelock) {
		t.Fatalf("TileError does not unwrap to sim.ErrLivelock: %v", err)
	}
	if stats.Failed < 1 || stats.Retried < 2 {
		t.Fatalf("stats %+v: want the victim's 2 retries and its failure recorded", stats)
	}
}

// TestFarmNonRetryableFailsFast: an error outside the retry policy
// must fail the tile on the first attempt.
func TestFarmNonRetryableFailsFast(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 4)
	boom := errors.New("cell 3 microcode fault")
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == 0 {
			return nil, TileStats{}, boom
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	_, stats, err := Run(context.Background(), pl, Config{Arrays: 2, Retries: 5}, run)
	var te *TileError
	if !errors.As(err, &te) || te.Attempts != 1 || !errors.Is(err, boom) {
		t.Fatalf("err %v, want tile 0's first-attempt TileError wrapping the fault", err)
	}
	if stats.Retried != 0 {
		t.Fatalf("non-retryable error was retried %d times", stats.Retried)
	}
}

// TestFarmDeadline: a tile that outlives its per-attempt deadline is
// retried (deadline hits are retryable by default) and then fails as a
// TileError wrapping context.DeadlineExceeded.
func TestFarmDeadline(t *testing.T) {
	pl := stressPlan(t, 4, 4, 4, 2)
	const victim = 2
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == victim {
			select {
			case <-ctx.Done():
				return nil, TileStats{}, ctx.Err()
			case <-time.After(10 * time.Second):
				t.Error("tile attempt was never cancelled")
				return nil, TileStats{}, errors.New("unreachable")
			}
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	_, stats, err := Run(context.Background(), pl, Config{Arrays: 2, Deadline: 20 * time.Millisecond, Retries: 1}, run)
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("err %v (%T), want *TileError", err, err)
	}
	if te.Tile != victim || te.Attempts != 2 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TileError %+v (%v), want tile %d failing its deadline twice", te, err, victim)
	}
	if stats.Retried != 1 {
		t.Fatalf("retried %d, want 1", stats.Retried)
	}
}

// TestFarmParentCancel: cancelling the job context mid-run surfaces
// the cancellation (not a TileError) and the farm still drains.
func TestFarmParentCancel(t *testing.T) {
	pl := stressPlan(t, 16, 16, 16, 2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	run := func(c context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		select {
		case <-c.Done():
			return nil, TileStats{}, c.Err()
		default:
		}
		return fakeMatmulRun(100)(c, tl, in)
	}
	out, _, err := Run(ctx, pl, Config{Arrays: 2}, run)
	if out != nil {
		t.Fatal("cancelled job returned an output")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if isTileError(err) {
		t.Fatalf("parent cancellation was blamed on a tile: %v", err)
	}
}

// TestStitchOrderIndependence is the tile-stitch property test: the
// same plan run under three different completion-order schedules (per
// tile jitter keyed off a run seed) must produce bit-identical output.
func TestStitchOrderIndependence(t *testing.T) {
	pl := stressPlan(t, 12, 12, 12, 3) // 64 tiles
	want := workloads.MatmulRectRef(pl.mm.A, pl.mm.B, 12, 12, 12)
	var first []float64
	for seed := 0; seed < 3; seed++ {
		run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
			// Deterministic per-(seed, tile) jitter permutes which array
			// finishes which tile first across the three runs.
			d := time.Duration((tl.ID*7+seed*13)%5) * time.Millisecond
			select {
			case <-ctx.Done():
				return nil, TileStats{}, ctx.Err()
			case <-time.After(d):
			}
			return fakeMatmulRun(100)(ctx, tl, in)
		}
		out, _, err := Run(context.Background(), pl, Config{Arrays: 4}, run)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("seed %d: c[%d] = %v, want %v", seed, i, out[i], want[i])
			}
		}
		if first == nil {
			first = out
			continue
		}
		for i := range first {
			if out[i] != first[i] {
				t.Fatalf("seed %d: c[%d] = %v differs from first run's %v", seed, i, out[i], first[i])
			}
		}
	}
}

// TestModelMakespan pins the deterministic list-scheduler.
func TestModelMakespan(t *testing.T) {
	cases := []struct {
		cycles []int64
		n      int
		want   int64
	}{
		{nil, 4, 0},
		{[]int64{10, 10, 10, 10}, 2, 20},
		{[]int64{10, 10, 10}, 4, 10},
		{[]int64{5, 5, 5, 9}, 2, 14}, // 5+5 vs 5+9 → greedy puts 9 on the lighter array
		{[]int64{7}, 0, 7},           // n clamps to 1
	}
	for _, c := range cases {
		if got := modelMakespan(c.cycles, c.n); got != c.want {
			t.Fatalf("modelMakespan(%v, %d) = %d, want %d", c.cycles, c.n, got, c.want)
		}
	}
}

package fabric

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warp/internal/prof"
	"warp/internal/sim"
	"warp/internal/workloads"
)

// stressPlan builds a plan with many more tiles than arrays.
func stressPlan(t *testing.T, m, k, n, tile int) *Plan {
	t.Helper()
	a, b := workloads.LargeMatmulData(m, k, n, 9)
	pl, err := PlanMatmul(Matmul{M: m, K: k, N: n, A: a, B: b}, mmProg(tile), DefaultLimits(tile))
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestFarmStress drives many tiles through few arrays with the race
// detector's eyes on the shared state: the staging channel, the stats
// aggregation, and the output buffer.
func TestFarmStress(t *testing.T) {
	pl := stressPlan(t, 24, 24, 24, 2) // 12³ = 1728 tiles
	var inFlight, peak atomic.Int64
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	out, stats, err := Run(context.Background(), pl, Config{Arrays: 3}, run)
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.MatmulRectRef(pl.mm.A, pl.mm.B, 24, 24, 24)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if stats.Dispatched != 1728 || stats.Retried != 0 || stats.Failed != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("%d tiles ran concurrently on a 3-array farm", p)
	}
	if stats.MakespanCycles != 1728/3*100 {
		t.Fatalf("makespan %d", stats.MakespanCycles)
	}
}

// TestFarmLivelockRetryThenSucceed injects a livelock that clears
// after two attempts: the farm must retry within the bound and finish
// the job cleanly.
func TestFarmLivelockRetryThenSucceed(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 4)
	const victim = 5
	var mu sync.Mutex
	failures := 2
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == victim {
			mu.Lock()
			retry := failures > 0
			if retry {
				failures--
			}
			mu.Unlock()
			if retry {
				return nil, TileStats{}, sim.ErrLivelock
			}
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	out, stats, err := Run(context.Background(), pl, Config{Arrays: 2, Retries: 2}, run)
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.MatmulRectRef(pl.mm.A, pl.mm.B, 8, 8, 8)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if stats.Retried != 2 || stats.Failed != 0 {
		t.Fatalf("retried %d failed %d, want 2 retries and no failures", stats.Retried, stats.Failed)
	}
	if stats.Dispatched != len(pl.Tiles)+2 {
		t.Fatalf("dispatched %d, want %d", stats.Dispatched, len(pl.Tiles)+2)
	}
}

// TestFarmLivelockRetryThenFail injects a persistent livelock: the
// farm must exhaust the bounded attempts, fail the job with a typed
// per-tile error naming the tile and attempt count, and return without
// hanging.
func TestFarmLivelockRetryThenFail(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 4)
	const victim = 3
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == victim {
			return nil, TileStats{}, sim.ErrLivelock
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	done := make(chan struct{})
	var out []float64
	var stats *Stats
	var err error
	go func() {
		defer close(done)
		out, stats, err = Run(context.Background(), pl, Config{Arrays: 2, Retries: 2}, run)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("farm hung on a persistently livelocked tile")
	}
	if out != nil {
		t.Fatal("failed job returned an output")
	}
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("job error %v (%T), want *TileError", err, err)
	}
	if te.Tile != victim || te.Attempts != 3 {
		t.Fatalf("TileError{Tile: %d, Attempts: %d}, want tile %d after 3 attempts", te.Tile, te.Attempts, victim)
	}
	if !errors.Is(err, sim.ErrLivelock) {
		t.Fatalf("TileError does not unwrap to sim.ErrLivelock: %v", err)
	}
	if stats.Failed < 1 || stats.Retried < 2 {
		t.Fatalf("stats %+v: want the victim's 2 retries and its failure recorded", stats)
	}
}

// TestFarmNonRetryableFailsFast: an error outside the retry policy
// must fail the tile on the first attempt.
func TestFarmNonRetryableFailsFast(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 4)
	boom := errors.New("cell 3 microcode fault")
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == 0 {
			return nil, TileStats{}, boom
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	_, stats, err := Run(context.Background(), pl, Config{Arrays: 2, Retries: 5}, run)
	var te *TileError
	if !errors.As(err, &te) || te.Attempts != 1 || !errors.Is(err, boom) {
		t.Fatalf("err %v, want tile 0's first-attempt TileError wrapping the fault", err)
	}
	if stats.Retried != 0 {
		t.Fatalf("non-retryable error was retried %d times", stats.Retried)
	}
}

// TestFarmDeadline: a tile that outlives its per-attempt deadline is
// retried (deadline hits are retryable by default) and then fails as a
// TileError wrapping context.DeadlineExceeded.
func TestFarmDeadline(t *testing.T) {
	pl := stressPlan(t, 4, 4, 4, 2)
	const victim = 2
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if tl.ID == victim {
			select {
			case <-ctx.Done():
				return nil, TileStats{}, ctx.Err()
			case <-time.After(10 * time.Second):
				t.Error("tile attempt was never cancelled")
				return nil, TileStats{}, errors.New("unreachable")
			}
		}
		return fakeMatmulRun(100)(ctx, tl, in)
	}
	_, stats, err := Run(context.Background(), pl, Config{Arrays: 2, Deadline: 20 * time.Millisecond, Retries: 1}, run)
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("err %v (%T), want *TileError", err, err)
	}
	if te.Tile != victim || te.Attempts != 2 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TileError %+v (%v), want tile %d failing its deadline twice", te, err, victim)
	}
	if stats.Retried != 1 {
		t.Fatalf("retried %d, want 1", stats.Retried)
	}
}

// TestFarmParentCancel: cancelling the job context mid-run surfaces
// the cancellation (not a TileError) and the farm still drains.
func TestFarmParentCancel(t *testing.T) {
	pl := stressPlan(t, 16, 16, 16, 2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	run := func(c context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		select {
		case <-c.Done():
			return nil, TileStats{}, c.Err()
		default:
		}
		return fakeMatmulRun(100)(c, tl, in)
	}
	out, _, err := Run(ctx, pl, Config{Arrays: 2}, run)
	if out != nil {
		t.Fatal("cancelled job returned an output")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if isTileError(err) {
		t.Fatalf("parent cancellation was blamed on a tile: %v", err)
	}
}

// TestStitchOrderIndependence is the tile-stitch property test: the
// same plan run under three different completion-order schedules (per
// tile jitter keyed off a run seed) must produce bit-identical output.
func TestStitchOrderIndependence(t *testing.T) {
	pl := stressPlan(t, 12, 12, 12, 3) // 64 tiles
	want := workloads.MatmulRectRef(pl.mm.A, pl.mm.B, 12, 12, 12)
	var first []float64
	for seed := 0; seed < 3; seed++ {
		run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
			// Deterministic per-(seed, tile) jitter permutes which array
			// finishes which tile first across the three runs.
			d := time.Duration((tl.ID*7+seed*13)%5) * time.Millisecond
			select {
			case <-ctx.Done():
				return nil, TileStats{}, ctx.Err()
			case <-time.After(d):
			}
			return fakeMatmulRun(100)(ctx, tl, in)
		}
		out, _, err := Run(context.Background(), pl, Config{Arrays: 4}, run)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("seed %d: c[%d] = %v, want %v", seed, i, out[i], want[i])
			}
		}
		if first == nil {
			first = out
			continue
		}
		for i := range first {
			if out[i] != first[i] {
				t.Fatalf("seed %d: c[%d] = %v differs from first run's %v", seed, i, out[i], first[i])
			}
		}
	}
}

// TestModelMakespan pins the deterministic list-scheduler.
func TestModelMakespan(t *testing.T) {
	cases := []struct {
		cycles []int64
		n      int
		want   int64
	}{
		{nil, 4, 0},
		{[]int64{10, 10, 10, 10}, 2, 20},
		{[]int64{10, 10, 10}, 4, 10},
		{[]int64{5, 5, 5, 9}, 2, 14}, // 5+5 vs 5+9 → greedy puts 9 on the lighter array
		{[]int64{7}, 0, 7},           // n clamps to 1
	}
	for _, c := range cases {
		if got := modelMakespan(c.cycles, c.n); got != c.want {
			t.Fatalf("modelMakespan(%v, %d) = %d, want %d", c.cycles, c.n, got, c.want)
		}
	}
}

// TestFarmSourceAggregation checks Stats.Source: every profiled tile's
// exact per-line attribution merges into one job-wide profile whose
// counters are the sums, regardless of how many arrays raced.
func TestFarmSourceAggregation(t *testing.T) {
	pl := stressPlan(t, 8, 8, 8, 2) // 64 tiles
	const perTile = 100
	run := func(ctx context.Context, tl Tile, in map[string][]float64) ([]float64, TileStats, error) {
		out, ts, err := fakeMatmulRun(perTile)(ctx, tl, in)
		if err != nil {
			return nil, ts, err
		}
		ts.Source = &prof.SourceProfile{
			Module: "mm", Cells: 2, Cycles: perTile,
			Busy: 60, Starved: 10, Bubble: 5,
			Lines: []prof.LineStat{
				{Line: 0, Text: "(preamble/pad)", Bubble: 5},
				{Line: 4, Text: "c[i] := c[i] + a*b;", Busy: 60, Starved: 10},
			},
			Stacks: []prof.StackStat{
				{Frames: []string{"mm", "(preamble/pad)"}, Cycles: 5},
				{Frames: []string{"mm", "for i @3", "L4 c[i] := c[i] + a*b;"}, Cycles: 70},
			},
		}
		return out, ts, nil
	}
	_, stats, err := Run(context.Background(), pl, Config{Arrays: 4}, run)
	if err != nil {
		t.Fatal(err)
	}
	sp := stats.Source
	if sp == nil {
		t.Fatal("profiled tiles but Stats.Source is nil")
	}
	tiles := int64(stats.Tiles)
	if sp.Cycles != tiles*perTile {
		t.Errorf("aggregate cycles = %d, want %d", sp.Cycles, tiles*perTile)
	}
	if sp.Cycles != stats.AggregateCycles {
		t.Errorf("profile cycles %d != AggregateCycles %d", sp.Cycles, stats.AggregateCycles)
	}
	if sp.Attributed() != tiles*75 {
		t.Errorf("aggregate attributed = %d, want %d", sp.Attributed(), tiles*75)
	}
	if len(sp.Lines) != 2 || len(sp.Stacks) != 2 {
		t.Fatalf("merge duplicated entries: %d lines, %d stacks", len(sp.Lines), len(sp.Stacks))
	}
	if sp.Lines[1].Busy != tiles*60 || sp.Lines[1].Starved != tiles*10 {
		t.Errorf("line 4 counters = %+v", sp.Lines[1])
	}
	if sp.Cells != 2 {
		t.Errorf("cells = %d, want the per-tile max 2", sp.Cells)
	}

	// Unprofiled tiles leave Source nil.
	_, stats2, err := Run(context.Background(), pl, Config{Arrays: 4}, fakeMatmulRun(perTile))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Source != nil {
		t.Error("unprofiled job grew a Source profile")
	}
}

package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"warp/internal/obs"
	"warp/internal/prof"
	"warp/internal/sim"
	"warp/internal/telemetry"
)

// RunTileFunc executes one tile on one simulated array: it receives
// the tile and its staged input arrays and returns the tile's output
// array (the kernel's out parameter) plus the run's profile.  The farm
// calls it from several goroutines at once, one per array.
type RunTileFunc func(ctx context.Context, t Tile, inputs map[string][]float64) ([]float64, TileStats, error)

// TileStats is one tile run's profile contribution.
type TileStats struct {
	Cycles int64
	// Backend names the executor that ran the tile ("sim" or "fast");
	// every tile of one job uses the same backend, surfaced as
	// Stats.Backend.
	Backend string
	Summary obs.Summary
	// Source is the tile run's source-line cycle profile; non-nil only
	// on profiled runs.  The farm merges every tile's profile into
	// Stats.Source.
	Source *prof.SourceProfile
	// Decision is the tile run's backend decision audit, as stamped by
	// the driver.  Tiles of one job share one compiled program, so the
	// farm keeps the first completed tile's decision as the job's
	// per-tile template (Stats.TileDecision).
	Decision *telemetry.Decision
}

// Config sizes and paces the farm.
type Config struct {
	// Arrays is how many simulator instances run tiles concurrently
	// (minimum 1).
	Arrays int
	// Deadline bounds each tile attempt (0 = none beyond the parent
	// context).
	Deadline time.Duration
	// Retries is how many additional attempts a retryable tile failure
	// gets before the job fails with a *TileError.
	Retries int
	// Retryable classifies errors worth retrying; nil means the
	// default: simulator livelock and a per-tile deadline hit.
	Retryable func(error) bool
	// Progress, when non-nil, receives one update per completed tile
	// (TilesDone/Tiles plus aggregate cycles so far).  Updates are
	// delivered from the farm's single result-collection loop, so the
	// callback never runs concurrently with itself.
	Progress obs.ProgressFunc
}

// TileError is the structured per-tile failure that fails a job: which
// tile, after how many attempts, wrapping the final underlying error.
type TileError struct {
	Tile     int
	Attempts int
	Err      error
}

func (e *TileError) Error() string {
	return fmt.Sprintf("fabric: tile %d failed after %d attempt(s): %v", e.Tile, e.Attempts, e.Err)
}

func (e *TileError) Unwrap() error { return e.Err }

// Stats is the fabric-level aggregation of a job's per-tile profiles.
type Stats struct {
	Arrays     int
	Tiles      int // planned tiles
	Dispatched int // tile attempts started (retries included)
	Retried    int // attempts beyond each tile's first
	Failed     int // tiles that exhausted their attempts

	// AggregateCycles is the summed machine time of every completed
	// tile — what one array would spend running the job serially.
	AggregateCycles int64
	// MakespanCycles is the modeled machine time of the N-array job:
	// the per-tile cycle counts list-scheduled onto Arrays arrays in
	// plan order.  Both counts are exact outputs of the deterministic
	// simulator, so Speedup = Aggregate/Makespan is a deterministic,
	// host-independent scaling measure (wall clock, recorded below,
	// additionally depends on how many host CPUs back the goroutines).
	MakespanCycles int64
	// Speedup is AggregateCycles/MakespanCycles — the modeled
	// machine-time speedup of this farm over a single array.
	Speedup float64

	// StagedWords counts host words sliced into tile input buffers —
	// the double-buffered host I/O traffic.
	StagedWords int64

	// Profile aggregates over completed tiles (utilizations are
	// cycle-weighted).
	PeakQueue   int
	PeakQueueAt string
	AddUtil     float64
	MulUtil     float64

	// Source is the job-wide source-line cycle profile: every tile's
	// exact per-line attribution merged (line and stack counters sum;
	// Cycles is the aggregate machine time).  Non-nil only when the
	// tiles ran with profiling enabled.
	Source *prof.SourceProfile

	// WallNS is the job's host wall-clock time.
	WallNS int64

	// Backend names the executor the tiles ran on ("sim" or "fast" —
	// uniform across a job, taken from the completed tiles).
	Backend string

	// TileDecision is the first completed tile's backend decision audit
	// (one compiled program per job, so every tile decides alike); its
	// ActualWallNS is that single tile's wall time.  The job-level
	// decision with whole-job predicted and actual wall is assembled by
	// the caller (warp.Program.RunPartitioned) into Decision.
	TileDecision *telemetry.Decision
	// Decision is the job-level decision audit: the tile decision with
	// predicted walls scaled to the job's list-scheduled wave count and
	// ActualWallNS set to the job wall.  Filled by the caller; the
	// cycle/op inputs stay per-tile (they are what the simulator counts
	// per tile).
	Decision *telemetry.Decision
}

// stagedTile is one unit of queued work: a tile plus its pre-sliced
// inputs.
type stagedTile struct {
	tile   Tile
	inputs map[string][]float64
}

// tileResult is what a worker reports back for one tile.
type tileResult struct {
	id      int
	out     []float64
	stats   TileStats
	retried int
	err     error
}

// defaultRetryable retries simulator livelock and per-tile deadline
// hits — the failure modes a fresh attempt (or a less loaded host) can
// clear — and nothing else.
func defaultRetryable(err error) bool {
	return errors.Is(err, sim.ErrLivelock) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes the plan on the farm: tiles are staged one slice ahead
// per array (double-buffered host I/O), dispatched to Arrays worker
// goroutines, and stitched in plan order once every tile has
// completed.  The first tile to exhaust its attempts cancels the rest
// and fails the job with its *TileError; the farm always drains its
// workers before returning, so a failed job never leaks goroutines.
func Run(ctx context.Context, pl *Plan, cfg Config, run RunTileFunc) ([]float64, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Arrays < 1 {
		cfg.Arrays = 1
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Retryable == nil {
		cfg.Retryable = defaultRetryable
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Stage tiles ahead of the workers: the channel buffer holds one
	// pre-sliced tile per array, so while array i simulates tile t its
	// next tile's input is already in host memory.
	staged := make(chan stagedTile, cfg.Arrays)
	var stagedWords atomic.Int64
	go func() {
		defer close(staged)
		for _, t := range pl.Tiles {
			st := stagedTile{tile: t, inputs: pl.Inputs(t)}
			stagedWords.Add(int64(pl.TileIn))
			select {
			case staged <- st:
			case <-ctx.Done():
				return
			}
		}
	}()

	results := make(chan tileResult, cfg.Arrays)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Arrays; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range staged {
				if ctx.Err() != nil {
					// The job is already failing or cancelled: drain the
					// queue without simulating so the stager can finish.
					continue
				}
				results <- runTile(ctx, st, cfg, run)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	stats := &Stats{Arrays: cfg.Arrays, Tiles: len(pl.Tiles)}
	tileOut := make([][]float64, len(pl.Tiles))
	cycles := make([]int64, 0, len(pl.Tiles))
	var jobErr error
	var cycleSum float64 // utilization weights
	for r := range results {
		stats.Dispatched += 1 + r.retried
		stats.Retried += r.retried
		if r.err != nil {
			stats.Failed++
			// Keep the most informative failure: a tile's own error
			// beats the cascade of context-cancelled siblings.
			var te *TileError
			if jobErr == nil || (errors.As(r.err, &te) && !isTileError(jobErr)) {
				jobErr = r.err
			}
			cancel()
			continue
		}
		tileOut[r.id] = r.out
		cycles = append(cycles, r.stats.Cycles)
		stats.Backend = r.stats.Backend
		if stats.TileDecision == nil {
			stats.TileDecision = r.stats.Decision
		}
		stats.AggregateCycles += r.stats.Cycles
		w := float64(r.stats.Cycles)
		stats.AddUtil += w * r.stats.Summary.AddUtil
		stats.MulUtil += w * r.stats.Summary.MulUtil
		cycleSum += w
		if r.stats.Summary.PeakQueue > stats.PeakQueue {
			stats.PeakQueue = r.stats.Summary.PeakQueue
			stats.PeakQueueAt = r.stats.Summary.PeakQueueAt
		}
		if r.stats.Source != nil {
			if stats.Source == nil {
				stats.Source = &prof.SourceProfile{}
			}
			stats.Source.Merge(r.stats.Source)
		}
		if cfg.Progress != nil {
			cfg.Progress(obs.ProgressUpdate{
				Cycles:    stats.AggregateCycles,
				TilesDone: len(cycles),
				Tiles:     stats.Tiles,
			})
		}
	}
	stats.StagedWords = stagedWords.Load()
	if cycleSum > 0 {
		stats.AddUtil /= cycleSum
		stats.MulUtil /= cycleSum
	}
	stats.MakespanCycles = modelMakespan(cycles, cfg.Arrays)
	if stats.MakespanCycles > 0 {
		stats.Speedup = float64(stats.AggregateCycles) / float64(stats.MakespanCycles)
	}
	stats.WallNS = int64(time.Since(start))
	if jobErr != nil {
		return nil, stats, jobErr
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	out, err := pl.Assemble(tileOut)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// runTile runs one staged tile with the per-attempt deadline and the
// bounded retry policy.
func runTile(ctx context.Context, st stagedTile, cfg Config, run RunTileFunc) tileResult {
	res := tileResult{id: st.tile.ID}
	attempts := 1 + cfg.Retries
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			res.retried++
		}
		actx, acancel := ctx, context.CancelFunc(func() {})
		if cfg.Deadline > 0 {
			actx, acancel = context.WithTimeout(ctx, cfg.Deadline)
		}
		out, ts, err := run(actx, st.tile, st.inputs)
		acancel()
		if err == nil {
			res.out, res.stats = out, ts
			return res
		}
		// If the whole job is being torn down, report the parent
		// cancellation rather than blaming this tile.
		if ctx.Err() != nil {
			res.err = ctx.Err()
			return res
		}
		if a < attempts && cfg.Retryable(err) {
			continue
		}
		res.err = &TileError{Tile: st.tile.ID, Attempts: a, Err: err}
		return res
	}
	return res // unreachable: the loop always returns
}

func isTileError(err error) bool {
	var te *TileError
	return errors.As(err, &te)
}

// modelMakespan list-schedules the completed tiles' cycle counts onto
// n arrays — each tile goes to the least-loaded array, ties to the
// lowest index — and returns the resulting makespan.  The schedule
// (and so the makespan) is a deterministic function of the plan,
// unlike the racy goroutine assignment of the real dispatch, which
// makes it safe to pin in benchmark baselines.
func modelMakespan(cycles []int64, n int) int64 {
	if n < 1 {
		n = 1
	}
	load := make([]int64, n)
	for _, c := range cycles {
		best := 0
		for i := 1; i < n; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		load[best] += c
	}
	var max int64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

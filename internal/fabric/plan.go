package fabric

import "fmt"

// Tile is one array-sized unit of work.  For matmul it is an
// output-block/k-block triple; for conv1d an output range plus the
// haloed input window that produces it.
type Tile struct {
	ID int

	// Matmul block coordinates: rows MI·T.., columns NJ·T.., reduction
	// block KB·T.. of the tile side T.
	MI, NJ, KB int

	// Conv1D ranges: this tile produces outputs [Lo, Hi) from inputs
	// [InLo, InLo+Window) — the window overlaps the next tile's by
	// kernel−1 points (the halo).
	Lo, Hi, InLo int
}

// Plan is a tile decomposition: the tile list in dispatch order, the
// per-tile input slicing, and the stitch that reassembles the full
// output.  Tiles are ordered so that matmul reduction blocks for one
// output block are consecutive and ascending — Assemble accumulates in
// exactly this order no matter when each tile completed, which is what
// makes the stitched result deterministic.
type Plan struct {
	Kind  string // "matmul" or "conv1d"
	Tiles []Tile

	// Matmul geometry: problem M×K×N over tile side T (= array cells).
	M, K, N, T int

	// Conv1D geometry: NX signal points, KW kernel weights (= array
	// cells), Window input points per tile, Valid outputs per tile.
	NX, KW, Window, Valid int

	// OutLen is the stitched output length: M·N for matmul,
	// NX−KW+1 for conv1d.
	OutLen int
	// TileIn and TileOut are the host words staged into and produced
	// by each tile — the per-tile host I/O traffic.
	TileIn, TileOut int

	// Parameter names of the tile kernel, for keying staged inputs.
	in0, in1 string // matmul: A-operand, B-operand; conv1d: signal, kernel
	outName  string

	mm Matmul
	cv Conv1D
}

// OutName is the tile kernel's output parameter name; the fabric's
// assembled result is keyed by it, mirroring a plain Run.
func (pl *Plan) OutName() string { return pl.outName }

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PlanMatmul tiles C = A×B into T×T output blocks with a T-deep
// reduction (k) dimension, T being the tile kernel's array size: tile
// (mi, nj, kb) multiplies the (mi, kb) block of A by the (kb, nj)
// block of B, and Assemble accumulates the kb partials of each output
// block in ascending order.  Edge blocks are zero-padded to the full
// tile shape; padding contributes exact zeros and the padded output
// rows and columns are discarded by the stitch.
//
// prog must be matmul-shaped: two input parameters of T² words and one
// output of T² words on T cells.  The plan is validated against lim:
// the kernel keeps one T-word row of B per cell, which must fit the
// cell memory budget.
func PlanMatmul(p Matmul, prog TileProgram, lim Limits) (*Plan, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := lim.validate(); err != nil {
		return nil, err
	}
	T := prog.Cells
	if T < 2 {
		return nil, fmt.Errorf("fabric: matmul tile kernel on %d cells; need at least 2", T)
	}
	if T != lim.Cells {
		return nil, fmt.Errorf("fabric: tile kernel compiled for %d cells, array has %d", T, lim.Cells)
	}
	if len(prog.In) != 2 || prog.In[0].Size != T*T || prog.In[1].Size != T*T || prog.Out.Size != T*T {
		return nil, fmt.Errorf("fabric: kernel is not matmul-shaped: want in %d×%d words and out %d words on %d cells",
			T*T, T*T, T*T, T)
	}
	// Each cell holds one T-word row of the B block in its data
	// memory.
	if T > lim.CellMemWords {
		return nil, fmt.Errorf("fabric: tile side %d exceeds the %d-word cell memory budget", T, lim.CellMemWords)
	}
	pl := &Plan{
		Kind: "matmul",
		M:    p.M, K: p.K, N: p.N, T: T,
		OutLen:  p.M * p.N,
		TileIn:  2 * T * T,
		TileOut: T * T,
		in0:     prog.In[0].Name,
		in1:     prog.In[1].Name,
		outName: prog.Out.Name,
		mm:      p,
	}
	mb, nb, kb := ceilDiv(p.M, T), ceilDiv(p.N, T), ceilDiv(p.K, T)
	for mi := 0; mi < mb; mi++ {
		for nj := 0; nj < nb; nj++ {
			for kk := 0; kk < kb; kk++ {
				pl.Tiles = append(pl.Tiles, Tile{ID: len(pl.Tiles), MI: mi, NJ: nj, KB: kk})
			}
		}
	}
	return pl, nil
}

// PlanConv1D tiles the convolution into windows of the tile kernel's
// input size: each tile convolves Window consecutive signal points
// (zero-padded past the end) and contributes Window−KW+1 valid
// outputs, with consecutive windows overlapping by KW−1 points — the
// halo a valid convolution needs at every tile boundary.  Every output
// element is computed whole inside one tile (the same
// kernel-ascending accumulation order as the un-partitioned program),
// so the stitch is a plain copy and the partitioned result is
// element-exact for arbitrary inputs.
//
// prog must be conv1d-shaped: a KW-word kernel parameter (KW = the
// array's cell count, one weight per cell), a Window-word signal
// parameter, and a Window−1-word output.
func PlanConv1D(p Conv1D, prog TileProgram, lim Limits) (*Plan, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := lim.validate(); err != nil {
		return nil, err
	}
	kw := len(p.Kernel)
	if kw != prog.Cells {
		return nil, fmt.Errorf("fabric: %d-weight kernel on a tile kernel compiled for %d cells (one weight per cell)",
			kw, prog.Cells)
	}
	if prog.Cells != lim.Cells {
		return nil, fmt.Errorf("fabric: tile kernel compiled for %d cells, array has %d", prog.Cells, lim.Cells)
	}
	if len(prog.In) != 2 {
		return nil, fmt.Errorf("fabric: kernel is not conv1d-shaped: want a signal and a kernel input, got %d parameters", len(prog.In))
	}
	// The kernel parameter is the one sized to the array; the other is
	// the signal window.
	sig, ker := prog.In[0], prog.In[1]
	if sig.Size == kw && ker.Size != kw {
		sig, ker = ker, sig
	}
	if ker.Size != kw || sig.Size <= kw {
		return nil, fmt.Errorf("fabric: kernel is not conv1d-shaped: want a %d-word kernel parameter and a longer signal window, got %d and %d words",
			kw, prog.In[0].Size, prog.In[1].Size)
	}
	window := sig.Size
	if prog.Out.Size != window-1 {
		return nil, fmt.Errorf("fabric: conv1d kernel output is %d words, want %d (window−1)", prog.Out.Size, window-1)
	}
	valid := window - kw + 1
	total := len(p.X) - kw + 1
	pl := &Plan{
		Kind: "conv1d",
		NX:   len(p.X), KW: kw, Window: window, Valid: valid,
		OutLen:  total,
		TileIn:  window + kw,
		TileOut: window - 1,
		in0:     sig.Name,
		in1:     ker.Name,
		outName: prog.Out.Name,
		cv:      p,
	}
	for lo := 0; lo < total; lo += valid {
		hi := lo + valid
		if hi > total {
			hi = total
		}
		pl.Tiles = append(pl.Tiles, Tile{ID: len(pl.Tiles), Lo: lo, Hi: hi, InLo: lo})
	}
	return pl, nil
}

// Inputs slices (and zero-pads) one tile's input arrays from the
// problem operands, keyed by the tile kernel's parameter names.  This
// is the host-side staging step the farm overlaps with simulation.
func (pl *Plan) Inputs(t Tile) map[string][]float64 {
	switch pl.Kind {
	case "matmul":
		T := pl.T
		a := make([]float64, T*T)
		b := make([]float64, T*T)
		rows := minInt(pl.M-t.MI*T, T)
		cols := minInt(pl.N-t.NJ*T, T)
		deep := minInt(pl.K-t.KB*T, T)
		for r := 0; r < rows; r++ {
			src := (t.MI*T+r)*pl.K + t.KB*T
			copy(a[r*T:r*T+deep], pl.mm.A[src:src+deep])
		}
		for r := 0; r < deep; r++ {
			src := (t.KB*T+r)*pl.N + t.NJ*T
			copy(b[r*T:r*T+cols], pl.mm.B[src:src+cols])
		}
		return map[string][]float64{pl.in0: a, pl.in1: b}
	case "conv1d":
		x := make([]float64, pl.Window)
		end := minInt(len(pl.cv.X), t.InLo+pl.Window)
		copy(x, pl.cv.X[t.InLo:end])
		return map[string][]float64{pl.in0: x, pl.in1: pl.cv.Kernel}
	}
	panic("fabric: unknown plan kind " + pl.Kind)
}

// Assemble stitches the per-tile outputs (indexed by tile ID) into the
// full result.  The reduction is performed in plan order — matmul
// k-block partials accumulate in ascending KB for every output block —
// so the assembled result is a pure function of the tile outputs,
// independent of the order the farm completed them in.
func (pl *Plan) Assemble(tileOut [][]float64) ([]float64, error) {
	if len(tileOut) != len(pl.Tiles) {
		return nil, fmt.Errorf("fabric: %d tile outputs for %d tiles", len(tileOut), len(pl.Tiles))
	}
	out := make([]float64, pl.OutLen)
	for _, t := range pl.Tiles {
		got := tileOut[t.ID]
		if got == nil {
			return nil, fmt.Errorf("fabric: tile %d produced no output", t.ID)
		}
		if len(got) != pl.TileOut {
			return nil, fmt.Errorf("fabric: tile %d produced %d words, want %d", t.ID, len(got), pl.TileOut)
		}
		switch pl.Kind {
		case "matmul":
			T := pl.T
			rows := minInt(pl.M-t.MI*T, T)
			cols := minInt(pl.N-t.NJ*T, T)
			for r := 0; r < rows; r++ {
				dst := (t.MI*T+r)*pl.N + t.NJ*T
				for c := 0; c < cols; c++ {
					out[dst+c] += got[r*T+c]
				}
			}
		case "conv1d":
			copy(out[t.Lo:t.Hi], got[:t.Hi-t.Lo])
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

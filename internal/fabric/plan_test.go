package fabric

import (
	"context"
	"testing"

	"warp/internal/workloads"
)

// mmProg is the shape of workloads.Matmul(T) as the planner sees it.
func mmProg(t int) TileProgram {
	return TileProgram{
		Cells: t,
		In:    []Param{{"a", t * t}, {"bmat", t * t}},
		Out:   Param{"c", t * t},
	}
}

// cvProg is the shape of workloads.Conv1D(k, w).
func cvProg(k, w int) TileProgram {
	return TileProgram{
		Cells: k,
		In:    []Param{{"x", w}, {"w", k}},
		Out:   Param{"results", w - 1},
	}
}

// fakeMatmulRun computes a tile product directly (no simulator): the
// farm and stitch logic can be exercised at full speed and under the
// race detector.
func fakeMatmulRun(tileCycles int64) RunTileFunc {
	return func(ctx context.Context, t Tile, in map[string][]float64) ([]float64, TileStats, error) {
		a, b := in["a"], in["bmat"]
		n := 0
		for n*n < len(a) {
			n++
		}
		out := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for l := 0; l < n; l++ {
					s += a[i*n+l] * b[l*n+j]
				}
				out[i*n+j] = s
			}
		}
		return out, TileStats{Cycles: tileCycles}, nil
	}
}

// fakeConvRun emulates what the compiled Conv1D kernel emits: window−1
// outputs whose valid prefix is the convolution and whose tail is
// boundary junk the stitch must discard.
func fakeConvRun(tileCycles int64) RunTileFunc {
	return func(ctx context.Context, t Tile, in map[string][]float64) ([]float64, TileStats, error) {
		x, w := in["x"], in["w"]
		out := make([]float64, len(x)-1)
		for i := range out {
			if i <= len(x)-len(w) {
				var s float64
				for j, wv := range w {
					s += wv * x[i+j]
				}
				out[i] = s
			} else {
				out[i] = 999999 // boundary junk: must never reach the stitched result
			}
		}
		return out, TileStats{Cycles: tileCycles}, nil
	}
}

func TestPlanMatmulGeometry(t *testing.T) {
	const m, k, n, tile = 10, 7, 5, 3
	a, b := workloads.LargeMatmulData(m, k, n, 1)
	pl, err := PlanMatmul(Matmul{M: m, K: k, N: n, A: a, B: b}, mmProg(tile), DefaultLimits(tile))
	if err != nil {
		t.Fatal(err)
	}
	// ⌈10/3⌉·⌈5/3⌉·⌈7/3⌉ = 4·2·3 blocks.
	if got, want := len(pl.Tiles), 24; got != want {
		t.Fatalf("%d tiles, want %d", got, want)
	}
	// k-blocks are innermost and ascending, so Assemble accumulates
	// each output block's partials in reduction order.
	for i, tl := range pl.Tiles {
		if tl.ID != i {
			t.Fatalf("tile %d has ID %d", i, tl.ID)
		}
		if i > 0 {
			prev := pl.Tiles[i-1]
			if prev.MI == tl.MI && prev.NJ == tl.NJ && tl.KB != prev.KB+1 {
				t.Fatalf("tile %d: k-block %d follows %d within block (%d,%d)", i, tl.KB, prev.KB, tl.MI, tl.NJ)
			}
		}
	}
	if pl.TileIn != 2*tile*tile || pl.TileOut != tile*tile {
		t.Fatalf("tile I/O %d/%d words, want %d/%d", pl.TileIn, pl.TileOut, 2*tile*tile, tile*tile)
	}
	if pl.OutLen != m*n {
		t.Fatalf("OutLen %d, want %d", pl.OutLen, m*n)
	}
}

func TestPlanMatmulRejectsOverBudget(t *testing.T) {
	const tile = 4
	a, b := workloads.LargeMatmulData(8, 8, 8, 1)
	lim := DefaultLimits(tile)
	lim.CellMemWords = tile - 1 // a B row no longer fits the cell
	_, err := PlanMatmul(Matmul{M: 8, K: 8, N: 8, A: a, B: b}, mmProg(tile), lim)
	if err == nil {
		t.Fatal("planner accepted a tile side past the cell-memory budget")
	}
}

func TestPlanMatmulRejectsWrongShape(t *testing.T) {
	a, b := workloads.LargeMatmulData(8, 8, 8, 1)
	p := Matmul{M: 8, K: 8, N: 8, A: a, B: b}
	bad := mmProg(4)
	bad.In[1].Size = 15 // not T²
	if _, err := PlanMatmul(p, bad, DefaultLimits(4)); err == nil {
		t.Fatal("planner accepted a non-matmul-shaped kernel")
	}
	if _, err := PlanMatmul(p, mmProg(4), DefaultLimits(5)); err == nil {
		t.Fatal("planner accepted a kernel/array cell mismatch")
	}
	if _, err := PlanMatmul(Matmul{M: 8, K: 8, N: 8, A: a[:3], B: b}, mmProg(4), DefaultLimits(4)); err == nil {
		t.Fatal("planner accepted a malformed operand")
	}
}

func TestPlanConv1DHalo(t *testing.T) {
	const nx, kw, window = 1000, 9, 128
	x, w := workloads.LargeConv1DData(nx, kw, 2)
	pl, err := PlanConv1D(Conv1D{Kernel: w, X: x}, cvProg(kw, window), DefaultLimits(kw))
	if err != nil {
		t.Fatal(err)
	}
	valid := window - kw + 1 // 120
	total := nx - kw + 1     // 992
	if pl.Valid != valid || pl.OutLen != total {
		t.Fatalf("valid %d outlen %d, want %d %d", pl.Valid, pl.OutLen, valid, total)
	}
	if got, want := len(pl.Tiles), (total+valid-1)/valid; got != want {
		t.Fatalf("%d tiles, want %d", got, want)
	}
	for i, tl := range pl.Tiles {
		if tl.InLo != tl.Lo {
			t.Fatalf("tile %d: input window starts at %d, want output lo %d", i, tl.InLo, tl.Lo)
		}
		if i > 0 {
			prev := pl.Tiles[i-1]
			// Consecutive windows overlap by exactly the kernel−1 halo.
			overlap := prev.InLo + window - tl.InLo
			if overlap != kw-1 && i < len(pl.Tiles) { // interior tiles
				if prev.Hi != tl.Lo {
					t.Fatalf("tile %d: outputs not contiguous (%d..%d then %d)", i, prev.Lo, prev.Hi, tl.Lo)
				}
				if overlap < kw-1 {
					t.Fatalf("tile %d: halo overlap %d < %d", i, overlap, kw-1)
				}
			}
		}
	}
	last := pl.Tiles[len(pl.Tiles)-1]
	if last.Hi != total {
		t.Fatalf("last tile ends at %d, want %d", last.Hi, total)
	}
}

func TestPlanConv1DRejectsWrongShape(t *testing.T) {
	x, w := workloads.LargeConv1DData(100, 9, 2)
	p := Conv1D{Kernel: w, X: x}
	if _, err := PlanConv1D(p, cvProg(8, 64), DefaultLimits(8)); err == nil {
		t.Fatal("planner accepted a kernel-size/cell mismatch")
	}
	bad := cvProg(9, 64)
	bad.Out.Size = 60 // not window−1
	if _, err := PlanConv1D(p, bad, DefaultLimits(9)); err == nil {
		t.Fatal("planner accepted a wrong output size")
	}
	if _, err := PlanConv1D(Conv1D{Kernel: w, X: x[:4]}, cvProg(9, 64), DefaultLimits(9)); err == nil {
		t.Fatal("planner accepted a signal shorter than the kernel")
	}
}

// TestMatmulFakeEndToEnd runs a rectangular, edge-padded matmul
// through plan+farm+stitch with the direct-computation runner and
// checks element-exact agreement with the plain-Go reference — the
// partitioning algebra isolated from the simulator.
func TestMatmulFakeEndToEnd(t *testing.T) {
	const m, k, n, tile = 10, 7, 5, 3
	a, b := workloads.LargeMatmulData(m, k, n, 3)
	pl, err := PlanMatmul(Matmul{M: m, K: k, N: n, A: a, B: b}, mmProg(tile), DefaultLimits(tile))
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Run(context.Background(), pl, Config{Arrays: 3}, fakeMatmulRun(100))
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.MatmulRectRef(a, b, m, k, n)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if stats.Dispatched != len(pl.Tiles) || stats.Failed != 0 || stats.Retried != 0 {
		t.Fatalf("stats %+v: want %d clean dispatches", stats, len(pl.Tiles))
	}
	if stats.AggregateCycles != int64(len(pl.Tiles))*100 {
		t.Fatalf("aggregate cycles %d", stats.AggregateCycles)
	}
	// 24 equal tiles on 3 arrays: makespan = 8 tiles' worth.
	if stats.MakespanCycles != 800 || stats.Speedup != 3 {
		t.Fatalf("makespan %d speedup %v, want 800 / 3", stats.MakespanCycles, stats.Speedup)
	}
	if stats.StagedWords != int64(len(pl.Tiles)*pl.TileIn) {
		t.Fatalf("staged %d words, want %d", stats.StagedWords, len(pl.Tiles)*pl.TileIn)
	}
}

// TestConvFakeEndToEnd checks the haloed conv decomposition against
// the plain reference, including the boundary-junk discard.
func TestConvFakeEndToEnd(t *testing.T) {
	const nx, kw, window = 777, 9, 100
	x, w := workloads.LargeConv1DData(nx, kw, 4)
	pl, err := PlanConv1D(Conv1D{Kernel: w, X: x}, cvProg(kw, window), DefaultLimits(kw))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Run(context.Background(), pl, Config{Arrays: 4}, fakeConvRun(50))
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.Conv1DRef(x, w)
	if len(out) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestAssembleRejectsMissingTile(t *testing.T) {
	a, b := workloads.LargeMatmulData(4, 4, 4, 1)
	pl, err := PlanMatmul(Matmul{M: 4, K: 4, N: 4, A: a, B: b}, mmProg(2), DefaultLimits(2))
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float64, len(pl.Tiles))
	for i := range outs {
		outs[i] = make([]float64, pl.TileOut)
	}
	outs[3] = nil
	if _, err := pl.Assemble(outs); err == nil {
		t.Fatal("Assemble accepted a missing tile output")
	}
	outs[3] = make([]float64, 1)
	if _, err := pl.Assemble(outs); err == nil {
		t.Fatal("Assemble accepted a short tile output")
	}
}

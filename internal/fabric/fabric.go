// Package fabric is the multi-array execution layer: it partitions
// problems too large for one Warp array into array-sized tiles and
// farms the tiles across a pool of independent cycle-accurate
// simulator instances.
//
// The paper's host-generation chapter assumes the whole problem fits
// the ten-cell array and its 4K-word cell memories; Gross & Lam leave
// problem partitioning to the programmer ("the host is responsible for
// partitioning the computation").  This package is that missing layer,
// in the style later codified by systolic-array tiling models
// (SCALE-Sim): an output-tile decomposition sized to the array
// geometry, per-tile input slicing with halo overlap for convolution,
// and a deterministic stitch that reassembles the full result
// independent of tile completion order.  One compiled tile kernel is
// instantiated across every tile — the symbolic-configuration idea of
// the tightly-coupled-processor-array compilation line.
//
// The two halves:
//
//   - The partitioner (plan.go): Plan* functions compute a Plan — the
//     tile list, each tile's input slices, and the stitch — from a
//     Problem and the shape of the compiled tile kernel, validated
//     against the array Limits (cells, cell-memory words, queue
//     depth).
//
//   - The array farm (farm.go): Run dispatches the plan's tiles over N
//     worker goroutines (one per simulated array) behind a work queue,
//     with the next tiles' inputs staged while current tiles run
//     (double-buffered host I/O), per-tile deadlines, bounded livelock
//     retries, and a typed per-tile error that fails the job without
//     hanging the farm.  Per-tile run profiles aggregate into a
//     fabric-level Stats.
package fabric

import (
	"fmt"

	"warp/internal/mcode"
)

// Limits are the single-array resource bounds a plan is sized against.
type Limits struct {
	// Cells is the array size the tile kernel was compiled for.
	Cells int
	// CellMemWords is the per-cell data memory budget in words
	// (default mcode.MemWords, 4K).
	CellMemWords int
	// QueueDepth is the per-channel hardware queue capacity in words
	// (default mcode.QueueDepth).  The compiler proves every kernel's
	// peak occupancy against this bound; the planner re-checks the
	// claim it is handed.
	QueueDepth int
}

// DefaultLimits returns the hardware limits of one Warp array with the
// given cell count.
func DefaultLimits(cells int) Limits {
	return Limits{Cells: cells, CellMemWords: mcode.MemWords, QueueDepth: mcode.QueueDepth}
}

func (l Limits) validate() error {
	if l.Cells < 1 {
		return fmt.Errorf("fabric: limits: %d cells", l.Cells)
	}
	if l.CellMemWords < 1 {
		return fmt.Errorf("fabric: limits: %d cell-memory words", l.CellMemWords)
	}
	if l.QueueDepth < 1 {
		return fmt.Errorf("fabric: limits: queue depth %d", l.QueueDepth)
	}
	return nil
}

// Param is one tile-kernel parameter as the planner sees it.
type Param struct {
	Name string
	Size int // scalar words
}

// TileProgram describes the compiled array-sized kernel tiles run on:
// its array geometry and its parameters (inputs in declaration order,
// plus the single output).  The planner derives the tile shape from
// the parameter sizes and keys each tile's input slices by these
// names, so the same staged maps feed the kernel's Run unchanged.
type TileProgram struct {
	Cells int
	In    []Param
	Out   Param
}

// Matmul is an oversized matrix product C = A×B: A is m×k, B is k×n,
// row-major.  It is oversized whenever its one-array W2 instantiation
// would need more than the array's cells (k rows of B, one per cell)
// or more than the cell memory (n words of B row per cell).
type Matmul struct {
	M, K, N int
	A, B    []float64
}

func (p Matmul) validate() error {
	if p.M < 1 || p.K < 1 || p.N < 1 {
		return fmt.Errorf("fabric: matmul dimensions %dx%dx%d", p.M, p.K, p.N)
	}
	if len(p.A) != p.M*p.K {
		return fmt.Errorf("fabric: matmul A has %d elements, want %d (%dx%d)", len(p.A), p.M*p.K, p.M, p.K)
	}
	if len(p.B) != p.K*p.N {
		return fmt.Errorf("fabric: matmul B has %d elements, want %d (%dx%d)", len(p.B), p.K*p.N, p.K, p.N)
	}
	return nil
}

// Conv1D is an oversized 1-dimensional convolution: out[i] =
// Σ_j Kernel[j]·X[i+j], valid for i in [0, len(X)−len(Kernel)].
type Conv1D struct {
	Kernel []float64
	X      []float64
}

func (p Conv1D) validate() error {
	if len(p.Kernel) < 2 {
		return fmt.Errorf("fabric: conv1d kernel of %d weights", len(p.Kernel))
	}
	if len(p.X) < len(p.Kernel) {
		return fmt.Errorf("fabric: conv1d signal of %d points is shorter than the %d-weight kernel",
			len(p.X), len(p.Kernel))
	}
	return nil
}

package prof

import (
	"strings"

	"warp/internal/mcode"
)

// LoopFrame is one level of the loop-nest path enclosing a
// microinstruction: the source loop variable and the line of its for
// statement.
type LoopFrame struct {
	Var  string `json:"var"`
	Line int    `json:"line"`
}

// PCInfo maps one static µinstruction address back to W2 source: the
// primary source position of the statement it executes and the
// loop-nest path it sits inside (outermost first).  Line 0 marks a
// scheduled nop or a synthetic cycle (constant preamble, inter-region
// pad) with no source statement of its own.
type PCInfo struct {
	PC    int         `json:"pc"`
	Line  int         `json:"line"`
	Col   int         `json:"col,omitempty"`
	Loops []LoopFrame `json:"loops,omitempty"`
}

// DebugMap is the debug information the compiler carries alongside a
// cell microprogram: for every µPC, where it came from in the W2
// source.  All cells run the same microprogram, so one map covers the
// whole array.  It is exact and total — every static instruction has
// an entry, so every simulated cycle the profiler sees can be
// attributed.
type DebugMap struct {
	Module string   `json:"module"`
	NumPCs int      `json:"num_pcs"`
	PCs    []PCInfo `json:"pcs"`
	Source []string `json:"-"` // source lines; Source[i] is line i+1
}

// BuildDebugMap assigns µprogram addresses to every instruction of the
// cell program (via AssignPCs) and records the address → source
// mapping.  It must run after code generation and before the program
// is profiled; the driver calls it as part of compilation.
func BuildDebugMap(module, src string, cell *mcode.CellProgram) *DebugMap {
	d := &DebugMap{Module: module, NumPCs: cell.AssignPCs()}
	if src != "" {
		d.Source = strings.Split(src, "\n")
	}
	d.PCs = make([]PCInfo, 0, d.NumPCs)
	mcode.WalkInstrs(cell.Items, func(in *mcode.Instr, loops []*mcode.LoopItem) {
		info := PCInfo{PC: in.PC, Line: in.Pos.Line, Col: in.Pos.Col}
		if len(loops) > 0 {
			info.Loops = make([]LoopFrame, len(loops))
			for i, l := range loops {
				f := LoopFrame{}
				if l.Src != nil {
					f.Var = l.Src.Var
					f.Line = l.Src.Pos.Line
				}
				info.Loops[i] = f
			}
		}
		d.PCs = append(d.PCs, info)
	})
	return d
}

// LineText returns the trimmed source text of a 1-based line, or "".
func (d *DebugMap) LineText(line int) string {
	if line < 1 || line > len(d.Source) {
		return ""
	}
	return strings.TrimSpace(d.Source[line-1])
}

package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"warp/internal/obs"
)

// testProfile builds a small profile by hand: two PCs, one inside a
// loop and one synthetic, counted over two cells.
func testProfile() *SourceProfile {
	dbg := &DebugMap{
		Module: "m",
		NumPCs: 3,
		Source: []string{"module m;", "for i := 0 to 9 do", "  y[i] := x[i]*2.0; {semi;colon}"},
		PCs: []PCInfo{
			{PC: 0, Line: 0},
			{PC: 1, Line: 3, Loops: []LoopFrame{{Var: "i", Line: 2}}},
			{PC: 2, Line: 0, Loops: []LoopFrame{{Var: "i", Line: 2}}}, // scheduled nop in the loop
		},
	}
	pcs := []obs.PCProfile{
		{Busy: []int64{2, 10, 0}, Starved: []int64{0, 3, 0}, Bubble: []int64{1, 0, 5}},
		{Busy: []int64{2, 8, 0}, Starved: []int64{0, 5, 0}, Bubble: []int64{1, 0, 5}},
	}
	return BuildSource(dbg, pcs, 40)
}

func TestBuildSourceAttribution(t *testing.T) {
	p := testProfile()
	if p.Cells != 2 || p.Cycles != 40 {
		t.Fatalf("cells/cycles = %d/%d", p.Cells, p.Cycles)
	}
	// Exactness: every counter lands somewhere.
	if got, want := p.Attributed(), int64(2+10+3+1+5+2+8+5+1+5); got != want {
		t.Fatalf("Attributed = %d, want %d", got, want)
	}
	var lineSum int64
	byLine := map[int]*LineStat{}
	for i := range p.Lines {
		lineSum += p.Lines[i].Total()
		byLine[p.Lines[i].Line] = &p.Lines[i]
	}
	if lineSum != p.Attributed() {
		t.Errorf("line totals %d != attributed %d", lineSum, p.Attributed())
	}
	// The nop at PC 2 sits in loop i: its cycles belong to line 2, the
	// for statement, not the synthetic bucket.
	if l := byLine[2]; l == nil || l.Bubble != 10 {
		t.Errorf("loop-nop attribution wrong: %+v", byLine[2])
	}
	if l := byLine[0]; l == nil || l.Text != "(preamble/pad)" || l.Total() != 6 {
		t.Errorf("synthetic bucket wrong: %+v", byLine[0])
	}
	if l := byLine[3]; l == nil || l.Busy != 18 || l.Starved != 8 {
		t.Errorf("statement line wrong: %+v", byLine[3])
	}
	// ';' in source text must not leak into folded frames.
	for _, ss := range p.Stacks {
		for i, f := range ss.Frames {
			if i > 0 && strings.Contains(f, ";") {
				t.Errorf("frame %q contains the folded separator", f)
			}
		}
	}
}

func TestWriteFolded(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		sep := strings.LastIndexByte(line, ' ')
		if sep < 0 {
			t.Fatalf("bad folded line %q", line)
		}
		var n int64
		for _, ch := range line[sep+1:] {
			if ch < '0' || ch > '9' {
				t.Fatalf("bad count in %q", line)
			}
			n = n*10 + int64(ch-'0')
		}
		sum += n
		if !strings.HasPrefix(line, "m;") && !strings.HasPrefix(line, "m ") {
			t.Errorf("stack does not start at the module root: %q", line)
		}
	}
	if sum != p.Attributed() {
		t.Errorf("folded counts sum to %d, want %d", sum, p.Attributed())
	}
}

func TestMerge(t *testing.T) {
	a, b := testProfile(), testProfile()
	att := a.Attributed()
	a.Merge(b)
	if a.Attributed() != 2*att {
		t.Errorf("merged attributed = %d, want %d", a.Attributed(), 2*att)
	}
	if a.Cycles != 80 {
		t.Errorf("merged cycles = %d, want 80", a.Cycles)
	}
	if a.Cells != 2 {
		t.Errorf("merged cells = %d, want max 2", a.Cells)
	}
	var lineSum int64
	for i := range a.Lines {
		lineSum += a.Lines[i].Total()
	}
	if lineSum != a.Attributed() {
		t.Errorf("merged line totals %d != attributed %d", lineSum, a.Attributed())
	}
	// Same structure: merging must not duplicate lines or stacks.
	if len(a.Lines) != len(b.Lines) || len(a.Stacks) != len(b.Stacks) {
		t.Errorf("merge duplicated entries: %d/%d lines, %d/%d stacks",
			len(a.Lines), len(b.Lines), len(a.Stacks), len(b.Stacks))
	}
	// Merging into an empty profile adopts the other side.
	var zero SourceProfile
	zero.Merge(b)
	if zero.Module != "m" || zero.Attributed() != att {
		t.Errorf("merge into zero: %+v", zero)
	}
	// Nil other side is a no-op.
	before := a.Attributed()
	a.Merge(nil)
	if a.Attributed() != before {
		t.Error("Merge(nil) changed the profile")
	}
}

func TestReport(t *testing.T) {
	p := testProfile()
	rep := p.Report()
	for _, want := range []string{"source profile: m, 2 cells, 40 cycles", "(preamble/pad)", "y[i] := x[i]*2.0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Hottest line first: line 3 (26 cycles) before line 2 (10).
	if i3, i2 := strings.Index(rep, "y[i]"), strings.Index(rep, "for i"); i3 < 0 || i2 < 0 || i3 > i2 {
		t.Errorf("report not sorted hottest-first:\n%s", rep)
	}
}

func TestWritePprof(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// The string table must carry the sample type and the frame names.
	for _, want := range []string{"cycles", "count", "m", "(preamble/pad)"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile missing string %q", want)
		}
	}
	// Encoding is deterministic.
	var buf2 bytes.Buffer
	if err := p.WritePprof(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("pprof encoding is not deterministic")
	}
}

func TestSchedProfile(t *testing.T) {
	var nilProf *SchedProfile
	if got := nilProf.Totals(); got != (SchedTotals{}) {
		t.Errorf("nil Totals = %+v", got)
	}
	s := &SchedProfile{
		Loops: []LoopSched{
			{Loop: "i", Line: 4, Trips: 100, Pipelined: true, MII: 2, II: 3, Attempts: 2, Placements: 40, Evictions: 5, SearchNS: 1e6},
			{Loop: "j", Line: 9, Trips: 10, Reason: "non-parallel array subscripts"},
		},
		Skews: []SkewSearch{
			{Channel: "0", Method: "exact", Ops: 200, Skew: 3, NS: 5e5},
			{Channel: "1", Method: "bound", Pairs: 12, Pruned: 30, Skew: 1},
		},
	}
	tot := s.Totals()
	if tot.Loops != 2 || tot.Pipelined != 1 || tot.Placements != 40 || tot.SkewOps != 200 || tot.SkewPairs != 12 || tot.SkewPruned != 30 {
		t.Errorf("Totals = %+v", tot)
	}
	rep := s.Report()
	for _, want := range []string{
		"scheduler: 2 loops, 1 pipelined",
		"loop i (line 4, 100 trips): II 3 (MII 2)",
		"non-parallel array subscripts",
		"skew 3 via exact enumeration of 200 dynamic ops",
		"statement-pair bound (12 analyzed, 30 pruned)",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("sched report missing %q:\n%s", want, rep)
		}
	}
}

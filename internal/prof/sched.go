// Package prof is the warp profiling subsystem.  It has two halves:
//
//   - Execution profiling: the compiler emits a debug map (µinstruction
//     address → W2 source line / loop-nest path, see debug.go) carried
//     alongside the microcode, and the cycle-accurate simulator records
//     exact per-µPC busy/starve/bubble counters per cell.  source.go
//     joins the two into source-line hot-spot profiles with stall
//     breakdowns, exported as a text report, folded flame-graph stacks
//     and pprof-compatible protobuf (pprof.go).
//
//   - Compiler introspection: this file.  Counters and timings from
//     inside the modulo scheduler and the skew search (candidate
//     placements, backtracks, II bumps, search-space sizes) so the
//     superlinear compile phases can be identified from data rather
//     than guessed.
//
// Both halves are exact, not sampled: the simulator attributes every
// active cycle to exactly one µPC, and the scheduler counts every
// placement it tries.
package prof

import (
	"fmt"
	"strings"
)

// LoopSched records the modulo scheduler's search for one source loop:
// how hard the II search worked and why it accepted or rejected the
// pipelined schedule.
type LoopSched struct {
	Loop  string `json:"loop"`  // source loop variable
	Line  int    `json:"line"`  // source line of the for statement
	Trips int64  `json:"trips"` // iteration count

	Pipelined bool   `json:"pipelined"`
	Reason    string `json:"reason,omitempty"` // why not pipelined

	MII         int   `json:"mii,omitempty"`          // resource-constrained lower bound on II
	II          int   `json:"ii,omitempty"`           // achieved initiation interval (0 = none)
	Attempts    int   `json:"attempts,omitempty"`     // II values tried (tryModulo invocations)
	Placements  int64 `json:"placements,omitempty"`   // candidate op placements evaluated
	Evictions   int64 `json:"evictions,omitempty"`    // ops unscheduled to make room (backtracks)
	EmitRejects int   `json:"emit_rejects,omitempty"` // schedules rejected at emission (register pressure, too few trips)
	SearchNS    int64 `json:"search_ns,omitempty"`    // wall time of the whole search
}

// SkewSearch records one channel's skew computation: which method ran
// and how large the search space was.
type SkewSearch struct {
	Channel string `json:"channel"`          // e.g. "cell0->cell1"
	Method  string `json:"method"`           // "exact" (dynamic-op enumeration) or "bound" (statement pairs)
	Ops     int64  `json:"ops,omitempty"`    // dynamic I/O ops enumerated (exact)
	Pairs   int64  `json:"pairs,omitempty"`  // statement pairs analyzed (bound)
	Pruned  int64  `json:"pruned,omitempty"` // pairs skipped by the coarse interval prefilter
	Skew    int64  `json:"skew"`
	NS      int64  `json:"ns,omitempty"`
}

// SchedProfile aggregates compiler-introspection counters for one
// compilation, attached to the driver's compile-phase spans.
type SchedProfile struct {
	Loops []LoopSched  `json:"loops,omitempty"`
	Skews []SkewSearch `json:"skews,omitempty"`
}

// SchedTotals is the roll-up of a SchedProfile, the shape exported as
// warpd_sched_* Prometheus counters and into warpbench/1 reports.
type SchedTotals struct {
	Loops       int   `json:"loops"`
	Pipelined   int   `json:"pipelined"`
	Attempts    int   `json:"attempts"`
	Placements  int64 `json:"placements"`
	Evictions   int64 `json:"evictions"`
	EmitRejects int   `json:"emit_rejects"`
	SearchNS    int64 `json:"search_ns"`
	SkewOps     int64 `json:"skew_ops"`
	SkewPairs   int64 `json:"skew_pairs"`
	SkewPruned  int64 `json:"skew_pruned"`
	SkewNS      int64 `json:"skew_ns"`
}

// Totals rolls the per-loop and per-channel records up into counters.
func (s *SchedProfile) Totals() SchedTotals {
	var t SchedTotals
	if s == nil {
		return t
	}
	for _, l := range s.Loops {
		t.Loops++
		if l.Pipelined {
			t.Pipelined++
		}
		t.Attempts += l.Attempts
		t.Placements += l.Placements
		t.Evictions += l.Evictions
		t.EmitRejects += l.EmitRejects
		t.SearchNS += l.SearchNS
	}
	for _, k := range s.Skews {
		t.SkewOps += k.Ops
		t.SkewPairs += k.Pairs
		t.SkewPruned += k.Pruned
		t.SkewNS += k.NS
	}
	return t
}

// Report renders the scheduler introspection as a human-readable table.
func (s *SchedProfile) Report() string {
	var sb strings.Builder
	t := s.Totals()
	fmt.Fprintf(&sb, "scheduler: %d loops, %d pipelined; %d II attempts, %d placements, %d evictions, %d emit rejects, %.3fms\n",
		t.Loops, t.Pipelined, t.Attempts, t.Placements, t.Evictions, t.EmitRejects, float64(t.SearchNS)/1e6)
	if s == nil {
		return sb.String()
	}
	for _, l := range s.Loops {
		if l.Pipelined {
			fmt.Fprintf(&sb, "  loop %s (line %d, %d trips): II %d (MII %d) after %d attempts, %d placements, %d evictions, %d emit rejects, %.3fms\n",
				l.Loop, l.Line, l.Trips, l.II, l.MII, l.Attempts, l.Placements, l.Evictions, l.EmitRejects, float64(l.SearchNS)/1e6)
		} else {
			reason := l.Reason
			if reason == "" {
				reason = "not attempted"
			}
			fmt.Fprintf(&sb, "  loop %s (line %d, %d trips): not pipelined (%s) after %d attempts, %d placements\n",
				l.Loop, l.Line, l.Trips, reason, l.Attempts, l.Placements)
		}
	}
	if len(s.Skews) > 0 {
		fmt.Fprintf(&sb, "skew search: %d ops enumerated, %d pairs analyzed, %d pairs pruned, %.3fms\n",
			t.SkewOps, t.SkewPairs, t.SkewPruned, float64(t.SkewNS)/1e6)
		for _, k := range s.Skews {
			switch k.Method {
			case "exact":
				fmt.Fprintf(&sb, "  %s: skew %d via exact enumeration of %d dynamic ops\n", k.Channel, k.Skew, k.Ops)
			default:
				fmt.Fprintf(&sb, "  %s: skew %d via statement-pair bound (%d analyzed, %d pruned)\n", k.Channel, k.Skew, k.Pairs, k.Pruned)
			}
		}
	}
	return sb.String()
}

package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"warp/internal/obs"
)

// LineStat aggregates the cycles attributed to one W2 source line
// across all cells.  Line 0 collects synthetic cycles with no source
// statement (constant preamble, inter-region pad outside any loop).
// Scheduled nops inside a loop are attributed to the loop's own for
// statement line: they are part of that loop's schedule.
type LineStat struct {
	Line    int    `json:"line"`
	Text    string `json:"text,omitempty"`
	Busy    int64  `json:"busy"`
	Starved int64  `json:"starved"`
	Bubble  int64  `json:"bubble"`
}

// Total returns all cycles attributed to the line.
func (l *LineStat) Total() int64 { return l.Busy + l.Starved + l.Bubble }

// StackStat is one folded flame-graph stack: the loop-nest path from
// the module root down to a statement, with the cycles spent there.
type StackStat struct {
	Frames []string `json:"frames"` // root first: module, loop frames, leaf
	Cycles int64    `json:"cycles"`
}

// SourceProfile is a source-line hot-spot profile of one or more runs
// of a compiled program: the join of the compiler's DebugMap with the
// simulator's exact per-µPC counters.  The attribution is exact — the
// per-line totals sum to the simulator's total busy+stall cycles over
// all cells (see Attributed) — because every executed instruction
// increments exactly one counter at its µPC and every µPC has a debug
// map entry.
type SourceProfile struct {
	Module string `json:"module"`
	Cells  int    `json:"cells"`
	Cycles int64  `json:"cycles"` // machine run length (summed when tiles are merged)

	Busy    int64 `json:"busy"`
	Starved int64 `json:"starved"`
	Bubble  int64 `json:"bubble"`

	Lines  []LineStat  `json:"lines"`
	Stacks []StackStat `json:"stacks"`
}

// Attributed returns the total attributed cycles — exactly the
// simulator's busy+starved+bubble over all cells.
func (p *SourceProfile) Attributed() int64 { return p.Busy + p.Starved + p.Bubble }

// BuildSource joins a debug map with the per-cell µPC counters of one
// run into a source-line profile.  cycles is the machine run length.
func BuildSource(dbg *DebugMap, pc []obs.PCProfile, cycles int64) *SourceProfile {
	p := &SourceProfile{Module: dbg.Module, Cells: len(pc), Cycles: cycles}
	lines := map[int]*LineStat{}
	stacks := map[string]*StackStat{}

	for ci := range pc {
		c := &pc[ci]
		for _, info := range dbg.PCs {
			var busy, starved, bubble int64
			if info.PC < len(c.Busy) {
				busy, starved, bubble = c.Busy[info.PC], c.Starved[info.PC], c.Bubble[info.PC]
			}
			total := busy + starved + bubble
			if total == 0 {
				continue
			}
			p.Busy += busy
			p.Starved += starved
			p.Bubble += bubble

			// Line attribution: a scheduled nop inside a loop belongs to
			// the loop's for statement; outside any loop it is synthetic.
			line := info.Line
			if line == 0 && len(info.Loops) > 0 {
				line = info.Loops[len(info.Loops)-1].Line
			}
			ls := lines[line]
			if ls == nil {
				ls = &LineStat{Line: line, Text: dbg.LineText(line)}
				if line == 0 {
					ls.Text = "(preamble/pad)"
				}
				lines[line] = ls
			}
			ls.Busy += busy
			ls.Starved += starved
			ls.Bubble += bubble

			// Flame stack: module ; loop frames ; statement leaf.
			frames := []string{dbg.Module}
			for _, f := range info.Loops {
				frames = append(frames, frameLabel(fmt.Sprintf("for %s @%d", f.Var, f.Line)))
			}
			if info.Line != 0 {
				text := dbg.LineText(info.Line)
				if text == "" {
					text = fmt.Sprintf("line %d", info.Line)
				}
				frames = append(frames, frameLabel(fmt.Sprintf("L%d %s", info.Line, text)))
			} else if len(info.Loops) == 0 {
				frames = append(frames, "(preamble/pad)")
			}
			key := strings.Join(frames, ";")
			ss := stacks[key]
			if ss == nil {
				ss = &StackStat{Frames: frames}
				stacks[key] = ss
			}
			ss.Cycles += total
		}
	}

	for _, ls := range lines {
		p.Lines = append(p.Lines, *ls)
	}
	sort.Slice(p.Lines, func(i, j int) bool { return p.Lines[i].Line < p.Lines[j].Line })
	for _, ss := range stacks {
		p.Stacks = append(p.Stacks, *ss)
	}
	sort.Slice(p.Stacks, func(i, j int) bool {
		return strings.Join(p.Stacks[i].Frames, ";") < strings.Join(p.Stacks[j].Frames, ";")
	})
	return p
}

// frameLabel sanitizes a flame-graph frame: the folded format reserves
// ';' as the stack separator.
func frameLabel(s string) string { return strings.ReplaceAll(s, ";", ",") }

// Merge accumulates another profile of the same program into p —
// fabric tile aggregation.  Lines and stacks are matched structurally;
// run lengths add (total machine time across tiles).
func (p *SourceProfile) Merge(o *SourceProfile) {
	if o == nil {
		return
	}
	if p.Module == "" {
		p.Module = o.Module
	}
	if o.Cells > p.Cells {
		p.Cells = o.Cells
	}
	p.Cycles += o.Cycles
	p.Busy += o.Busy
	p.Starved += o.Starved
	p.Bubble += o.Bubble

	byLine := map[int]int{}
	for i := range p.Lines {
		byLine[p.Lines[i].Line] = i
	}
	for _, ls := range o.Lines {
		if i, ok := byLine[ls.Line]; ok {
			p.Lines[i].Busy += ls.Busy
			p.Lines[i].Starved += ls.Starved
			p.Lines[i].Bubble += ls.Bubble
		} else {
			byLine[ls.Line] = len(p.Lines)
			p.Lines = append(p.Lines, ls)
		}
	}
	sort.Slice(p.Lines, func(i, j int) bool { return p.Lines[i].Line < p.Lines[j].Line })

	byStack := map[string]int{}
	for i := range p.Stacks {
		byStack[strings.Join(p.Stacks[i].Frames, ";")] = i
	}
	for _, ss := range o.Stacks {
		key := strings.Join(ss.Frames, ";")
		if i, ok := byStack[key]; ok {
			p.Stacks[i].Cycles += ss.Cycles
		} else {
			byStack[key] = len(p.Stacks)
			p.Stacks = append(p.Stacks, ss)
		}
	}
	sort.Slice(p.Stacks, func(i, j int) bool {
		return strings.Join(p.Stacks[i].Frames, ";") < strings.Join(p.Stacks[j].Frames, ";")
	})
}

// Report renders the hot-spot table, hottest source line first.
func (p *SourceProfile) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "source profile: %s, %d cells, %d cycles\n", p.Module, p.Cells, p.Cycles)
	fmt.Fprintf(&sb, "attributed %d cell-cycles: %d busy, %d starved, %d bubble\n\n",
		p.Attributed(), p.Busy, p.Starved, p.Bubble)
	fmt.Fprintf(&sb, "%5s %10s %6s %10s %10s %10s  %s\n",
		"line", "cycles", "%", "busy", "starved", "bubble", "source")

	order := make([]LineStat, len(p.Lines))
	copy(order, p.Lines)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Total() > order[j].Total() })
	total := p.Attributed()
	for i := range order {
		ls := &order[i]
		label := "-"
		if ls.Line > 0 {
			label = fmt.Sprintf("%d", ls.Line)
		}
		fmt.Fprintf(&sb, "%5s %10d %5.1f%% %10d %10d %10d  %s\n",
			label, ls.Total(), pctOf(ls.Total(), total), ls.Busy, ls.Starved, ls.Bubble, ls.Text)
	}
	return sb.String()
}

func pctOf(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// WriteFolded writes the profile as folded flame-graph stacks — one
// "frame;frame;frame count" line per stack, the input format of
// flamegraph.pl and speedscope.
func (p *SourceProfile) WriteFolded(w io.Writer) error {
	for i := range p.Stacks {
		ss := &p.Stacks[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(ss.Frames, ";"), ss.Cycles); err != nil {
			return err
		}
	}
	return nil
}

package prof

import (
	"compress/gzip"
	"io"
	"strings"
)

// WritePprof writes the profile in pprof's gzipped profile.proto wire
// format, viewable with `go tool pprof`.  The encoder is hand-rolled
// (the repo carries no dependencies): one sample per flame stack with
// a single "cycles/count" sample type, one synthetic function and
// location per stack frame, leaf-first location order as the format
// requires.
func (p *SourceProfile) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.encodeProto()); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// encodeProto builds the uncompressed profile.proto message.
func (p *SourceProfile) encodeProto() []byte {
	e := &protoEnc{strIdx: map[string]int64{"": 0}, strs: []string{""}}

	// Function and location tables: one per distinct frame label.  In
	// this synthetic profile a location is fully described by its
	// function (the frame label) and a line number parsed out of the
	// debug map at build time is already embedded in the label, so the
	// Line message carries the function only.
	type frameIDs struct{ fn, loc uint64 }
	frames := map[string]frameIDs{}
	var fnMsgs, locMsgs [][]byte
	frameID := func(label string) uint64 {
		if ids, ok := frames[label]; ok {
			return ids.loc
		}
		id := uint64(len(frames) + 1)
		frames[label] = frameIDs{fn: id, loc: id}

		fn := &buf{}
		fn.varintField(1, id)                      // id
		fn.varintField(2, uint64(e.str(label)))    // name
		fn.varintField(3, uint64(e.str(label)))    // system_name
		fn.varintField(4, uint64(e.str(p.Module))) // filename
		fnMsgs = append(fnMsgs, fn.b)

		line := &buf{}
		line.varintField(1, id) // function_id
		loc := &buf{}
		loc.varintField(1, id)    // id
		loc.bytesField(4, line.b) // line
		locMsgs = append(locMsgs, loc.b)
		return id
	}

	var sampleMsgs [][]byte
	for i := range p.Stacks {
		ss := &p.Stacks[i]
		// Locations are leaf-first in profile.proto.
		var locs []uint64
		for j := len(ss.Frames) - 1; j >= 0; j-- {
			locs = append(locs, frameID(ss.Frames[j]))
		}
		s := &buf{}
		s.packedField(1, locs)                        // location_id
		s.packedField(2, []uint64{uint64(ss.Cycles)}) // value
		sampleMsgs = append(sampleMsgs, s.b)
	}

	vt := &buf{}
	vt.varintField(1, uint64(e.str("cycles"))) // type
	vt.varintField(2, uint64(e.str("count")))  // unit

	out := &buf{}
	out.bytesField(1, vt.b) // sample_type
	for _, s := range sampleMsgs {
		out.bytesField(2, s) // sample
	}
	for _, l := range locMsgs {
		out.bytesField(4, l) // location
	}
	for _, f := range fnMsgs {
		out.bytesField(5, f) // function
	}
	for _, s := range e.strs {
		out.stringField(6, s) // string_table
	}
	pt := &buf{}
	pt.varintField(1, uint64(e.str("cycles")))
	pt.varintField(2, uint64(e.str("count")))
	out.bytesField(11, pt.b) // period_type
	out.varintField(12, 1)   // period
	return out.b
}

// protoEnc interns strings into the profile's string table.
type protoEnc struct {
	strIdx map[string]int64
	strs   []string
}

func (e *protoEnc) str(s string) int64 {
	// pprof rejects NUL and control garbage poorly; labels are already
	// plain text, but normalize newlines defensively.
	s = strings.ReplaceAll(s, "\n", " ")
	if i, ok := e.strIdx[s]; ok {
		return i
	}
	i := int64(len(e.strs))
	e.strIdx[s] = i
	e.strs = append(e.strs, s)
	return i
}

// buf is a minimal protobuf wire-format writer.
type buf struct{ b []byte }

func (b *buf) varint(v uint64) {
	for v >= 0x80 {
		b.b = append(b.b, byte(v)|0x80)
		v >>= 7
	}
	b.b = append(b.b, byte(v))
}

func (b *buf) key(field, wire int) { b.varint(uint64(field)<<3 | uint64(wire)) }

// varintField emits a varint-typed field; zero values are still
// emitted only when meaningful — callers skip them explicitly.
func (b *buf) varintField(field int, v uint64) {
	b.key(field, 0)
	b.varint(v)
}

func (b *buf) bytesField(field int, p []byte) {
	b.key(field, 2)
	b.varint(uint64(len(p)))
	b.b = append(b.b, p...)
}

func (b *buf) stringField(field int, s string) { b.bytesField(field, []byte(s)) }

// packedField emits a packed repeated varint field.
func (b *buf) packedField(field int, vs []uint64) {
	inner := &buf{}
	for _, v := range vs {
		inner.varint(v)
	}
	b.bytesField(field, inner.b)
}

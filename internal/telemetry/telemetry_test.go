package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestLatencyBoundsLogSpaced(t *testing.T) {
	b := LatencyBounds()
	if len(b) < 10 {
		t.Fatalf("want a usable bucket count, got %d", len(b))
	}
	if b[0] != 1e-4 {
		t.Fatalf("first bound = %g, want 1e-4", b[0])
	}
	for i := 1; i < len(b); i++ {
		ratio := b[i] / b[i-1]
		if math.Abs(ratio-2) > 1e-9 {
			t.Fatalf("bounds not log-spaced at %d: ratio %g", i, ratio)
		}
	}
	if last := b[len(b)-1]; last < 60 {
		t.Fatalf("last bound %g does not cover the 60s Retry-After cap", last)
	}
}

func TestObserveAndCount(t *testing.T) {
	h := NewLatency()
	samples := []float64{0.00005, 0.0001, 0.003, 0.5, 1000}
	var sum float64
	for _, s := range samples {
		h.Observe(s)
		sum += s
	}
	if h.Count() != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(samples))
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), sum)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	// 10 samples in (1,2], so p50 lands mid-bucket and p100 at its top.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if q := h.Quantile(1); q != 2 {
		t.Fatalf("p100 = %g, want bucket top 2", q)
	}
	q := h.Quantile(0.5)
	if q <= 1 || q > 2 {
		t.Fatalf("p50 = %g, want inside (1,2]", q)
	}
	// Overflow samples pin to the last finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %g, want last bound 2", q)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewLatency(), NewLatency()
	a.Observe(0.001)
	b.Observe(0.01)
	b.Observe(0.02)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if err := a.Merge(NewHistogram([]float64{1})); err == nil {
		t.Fatal("merge of mismatched layouts must error")
	}
	m := MergeAll(nil, a, nil)
	if m == nil || m.Count() != 3 {
		t.Fatalf("MergeAll = %v", m)
	}
	if MergeAll(nil, nil) != nil {
		t.Fatal("MergeAll of nils must be nil")
	}
}

func TestWriteSeriesCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	h.WriteSeries(&sb, "x_seconds", `backend="sim"`)
	out := sb.String()
	for _, want := range []string{
		`x_seconds_bucket{backend="sim",le="1"} 1`,
		`x_seconds_bucket{backend="sim",le="2"} 3`,
		`x_seconds_bucket{backend="sim",le="4"} 4`,
		`x_seconds_bucket{backend="sim",le="+Inf"} 5`,
		`x_seconds_count{backend="sim"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteVecSkipsEmptyAndEscapes(t *testing.T) {
	hs := map[string]*Histogram{
		"with\"quote": NewHistogram([]float64{1}),
		"empty":       NewHistogram([]float64{1}),
	}
	hs[`with"quote`].Observe(0.5)
	var sb strings.Builder
	WriteVec(&sb, "y_seconds", "help text", "kind", hs)
	out := sb.String()
	if strings.Contains(out, `kind="empty"`) {
		t.Fatalf("empty member must be skipped:\n%s", out)
	}
	if !strings.Contains(out, `kind="with\"quote"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE y_seconds histogram") {
		t.Fatalf("missing TYPE header:\n%s", out)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel(`a\b"c` + "\n"); got != `a\\b\"c\n` {
		t.Fatalf("escape = %q", got)
	}
	if got := EscapeLabel("plain"); got != "plain" {
		t.Fatalf("escape = %q", got)
	}
}

func TestDecisionErrorFactor(t *testing.T) {
	d := &Decision{Backend: "fast", PredictedFastWallNS: 100, ActualWallNS: 300}
	if f := d.ErrorFactor(); math.Abs(f-3) > 1e-9 {
		t.Fatalf("error factor = %g, want 3", f)
	}
	d.ActualWallNS = 50 // under-run by 2x is also a 2x error
	if f := d.ErrorFactor(); math.Abs(f-2) > 1e-9 {
		t.Fatalf("error factor = %g, want 2", f)
	}
	d.Backend = "sim" // sim side has no prediction here
	if f := d.ErrorFactor(); f != 0 {
		t.Fatalf("unknown prediction must yield 0, got %g", f)
	}
	var nilD *Decision
	if nilD.ErrorFactor() != 0 || nilD.PredictedWallNS() != 0 {
		t.Fatal("nil decision accessors must be safe")
	}
}

func TestCostModelPredict(t *testing.T) {
	m := CostModel{SimNSPerCellCycle: 2, FastNSPerOp: 5}
	if got := m.PredictSimNS(100, 10); got != 2000 {
		t.Fatalf("sim prediction = %d", got)
	}
	if got := m.PredictFastNS(100); got != 500 {
		t.Fatalf("fast prediction = %d", got)
	}
}

package telemetry

// CostModel holds the two host-calibrated constants of the first-cut
// backend cost model (ROADMAP: "Cost-model the backend auto-selection").
// Both backends' costs are linear in quantities known at plan-compile
// time: the simulator steps every cell every machine cycle, the fast
// executor replays only the dynamic non-nop operations.
type CostModel struct {
	// SimNSPerCellCycle is the simulator's marginal cost of one cell
	// for one machine cycle, in nanoseconds.
	SimNSPerCellCycle float64 `json:"sim_ns_per_cell_cycle"`
	// FastNSPerOp is the fast executor's marginal cost of one dynamic
	// non-nop operation, in nanoseconds.
	FastNSPerOp float64 `json:"fast_ns_per_op"`
}

// PredictSimNS returns the modeled simulator wall time for a run of
// the given modeled cycle count over the given cell count.
func (m CostModel) PredictSimNS(cycles int64, cells int) int64 {
	return int64(float64(cycles) * float64(cells) * m.SimNSPerCellCycle)
}

// PredictFastNS returns the modeled fast-executor wall time for the
// given dynamic non-nop operation count.
func (m CostModel) PredictFastNS(ops int64) int64 {
	return int64(float64(ops) * m.FastNSPerOp)
}

// Decision is the audit record of one backend choice: which executor
// ran, why, what the cost model predicted for each candidate, and — once
// the run completes — the wall time actually spent.  The paper's
// deterministic cycle counts make PredictedCycles exact, so any
// prediction error is attributable to the calibrated constants alone.
type Decision struct {
	// Backend is the executor that ran: "sim" or "fast".
	Backend string `json:"backend"`
	// Reason explains the choice: "explicit-sim", "explicit-fast",
	// "auto-verified", "unverified", "profile-requested",
	// "cycle-recorder", or "no-fast-plan".
	Reason string `json:"reason"`
	// PredictedCycles is the closed-form modeled machine cycle count
	// (lead + (cells-1)·skew + cell cycles) — the simulator cost input.
	// On deterministic workloads it matches the simulator's count
	// exactly.
	PredictedCycles int64 `json:"predicted_cycles"`
	// Cells is the array size the prediction was made for.
	Cells int `json:"cells"`
	// PredictedOps is the dynamic non-nop operation count — the fast
	// executor cost input.  0 means unknown (no fast plan was built,
	// e.g. the program is unverified).
	PredictedOps int64 `json:"predicted_ops,omitempty"`
	// PredictedSimWallNS and PredictedFastWallNS are the modeled wall
	// times for each candidate backend.  PredictedFastWallNS is 0 when
	// PredictedOps is unknown.
	PredictedSimWallNS  int64 `json:"predicted_sim_wall_ns"`
	PredictedFastWallNS int64 `json:"predicted_fast_wall_ns,omitempty"`
	// ActualWallNS is stamped by the driver when the run completes.
	ActualWallNS int64 `json:"actual_wall_ns,omitempty"`
	// Model records the constants the prediction used, so stored
	// decisions stay interpretable across recalibrations.
	Model CostModel `json:"model"`
}

// PredictedWallNS returns the modeled wall time of the backend that
// actually ran, or 0 if that side of the model had no input.
func (d *Decision) PredictedWallNS() int64 {
	if d == nil {
		return 0
	}
	if d.Backend == "fast" {
		return d.PredictedFastWallNS
	}
	return d.PredictedSimWallNS
}

// ErrorFactor returns the symmetric prediction error of the chosen
// backend: max(actual/predicted, predicted/actual), always >= 1 when
// both sides are known.  It returns 0 when either side is missing, so
// callers can skip unreported decisions.
func (d *Decision) ErrorFactor() float64 {
	if d == nil {
		return 0
	}
	p, a := d.PredictedWallNS(), d.ActualWallNS
	if p <= 0 || a <= 0 {
		return 0
	}
	f := float64(a) / float64(p)
	if f < 1 {
		f = 1 / f
	}
	return f
}

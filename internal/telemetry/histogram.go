// Package telemetry is the daemon's measurement plane: a dependency-free
// log-bucketed histogram (mergeable, with quantile estimation and
// Prometheus text rendering) and the backend decision audit record that
// pairs a cost-model prediction with the wall time actually observed.
//
// The package sits below internal/service and internal/driver so both
// can share types without an import cycle: the driver produces Decisions,
// the service aggregates them into histograms and exports everything at
// /metrics.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// LatencyBounds returns the standard log-spaced bucket upper bounds in
// seconds used for every warpd latency histogram: powers of two from
// 100µs to ~100s.  Log spacing keeps relative quantile error bounded
// (one octave) across the five-decade spread between a cached compile
// and a long fabric job.
func LatencyBounds() []float64 {
	bounds := make([]float64, 21)
	v := 1e-4
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Histogram is a fixed-bound bucket histogram.  Buckets store
// non-cumulative counts internally; rendering produces the cumulative
// form the Prometheus exposition format requires.  Histogram is not
// internally locked — callers synchronize, matching how the service
// metrics registry already owns one mutex for all its series.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []int64   // len(bounds)+1; the extra slot is the +Inf bucket
	sum    float64
	total  int64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds.  It panics on unsorted or empty bounds: bucket layouts
// are compiled-in constants, not runtime data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: own, counts: make([]int64, len(own)+1)}
}

// NewLatency builds a histogram over LatencyBounds.
func NewLatency() *Histogram { return NewHistogram(LatencyBounds()) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Merge folds other into h.  The bucket layouts must match exactly;
// merging histograms with different bounds is a programming error and
// returns one.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("telemetry: merge of mismatched histograms (%d vs %d buckets)", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("telemetry: merge of mismatched histograms (bound %d: %g vs %g)", i, b, other.bounds[i])
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.total += other.total
	return nil
}

// MergeAll returns a fresh histogram holding the union of the given
// histograms' samples.  All arguments must share one bucket layout; nil
// entries are skipped.  It returns nil when no non-nil histogram was
// given.
func MergeAll(hs ...*Histogram) *Histogram {
	var out *Histogram
	for _, h := range hs {
		if h == nil {
			continue
		}
		if out == nil {
			out = NewHistogram(h.bounds)
		}
		if err := out.Merge(h); err != nil {
			panic(err) // mixed layouts across one family is a bug
		}
	}
	return out
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the target bucket.  An empty histogram yields 0; samples that
// landed in the +Inf bucket pin the estimate to the last finite bound —
// a deliberate floor-at-the-top for backoff hints, not a tail estimate.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := 1.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// WriteSeries renders the histogram's _bucket/_sum/_count series under
// name with the given pre-rendered label pairs (e.g. `backend="sim"`,
// or "" for none).  It does not emit # TYPE/# HELP headers — families
// with several label values share one header, so the caller owns it
// (see WriteVec).
func (h *Histogram) WriteSeries(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, le := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, FormatFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, FormatFloat(h.sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.total)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, FormatFloat(h.sum))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.total)
}

// WriteVec renders a labelled histogram family: one # HELP/# TYPE
// header, then every member's series in sorted label-value order.
// Empty members are skipped so a freshly started daemon does not export
// zero-sample series for outcomes that never happened.
func WriteVec(w io.Writer, name, help, label string, hs map[string]*Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	keys := make([]string, 0, len(hs))
	for k := range hs {
		if hs[k] != nil && hs[k].total > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		hs[k].WriteSeries(w, name, label+`="`+EscapeLabel(k)+`"`)
	}
}

// Write renders an unlabelled histogram with its # HELP/# TYPE header.
func Write(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	h.WriteSeries(w, name, "")
}

// EscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// FormatFloat renders a float the way the exposition format expects:
// shortest representation, no trailing zeros, NaN/Inf spelled out.
func FormatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", f)
}

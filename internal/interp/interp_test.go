package interp

import (
	"strings"
	"testing"

	"warp/internal/w2"
)

func analyze(t *testing.T, src string) *w2.Info {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

const pipeSrc = `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 2)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v + 1.0, ys[i]);
        end;
    end
    call f;
end
`

// TestInterpPipeline: three cells each add one, so outputs are inputs
// plus three.
func TestInterpPipeline(t *testing.T) {
	info := analyze(t, pipeSrc)
	out, err := Run(info, map[string][]float64{"xs": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 6, 7}
	for i, w := range want {
		if out["ys"][i] != w {
			t.Errorf("ys[%d] = %v, want %v", i, out["ys"][i], w)
		}
	}
}

// TestInterpBlockingError: a cell starving on its input stream is
// reported, not deadlocked.
func TestInterpBlockingError(t *testing.T) {
	info := analyze(t, `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 3 do
            receive (L, X, v, xs[i]);
        for i := 0 to 3 do
            send (R, X, v, ys[i]);
    end
    call f;
end
`)
	// Cell 0 receives 4 (external) but sends 4 too; cell 1 receives 4 —
	// fine.  Make the imbalance: cell 1 receives 4 from cell 0's 4
	// sends.  To starve, use 5 receives against 4 sends:
	info2 := analyze(t, `
module t (xs in, ys out)
float xs[5];
float ys[4];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 4 do
            receive (L, X, v, xs[i]);
        for i := 0 to 3 do
            send (R, X, v, ys[i]);
    end
    call f;
end
`)
	_ = info
	_, err := Run(info2, map[string][]float64{"xs": {1, 2, 3, 4, 5}})
	if err == nil || !strings.Contains(err.Error(), "blocks forever") {
		t.Errorf("err = %v, want blocking report", err)
	}
}

// TestInterpInputValidation covers missing and mis-sized inputs.
func TestInterpInputValidation(t *testing.T) {
	info := analyze(t, pipeSrc)
	if _, err := Run(info, map[string][]float64{}); err == nil ||
		!strings.Contains(err.Error(), "missing input") {
		t.Errorf("missing input not reported: %v", err)
	}
	if _, err := Run(info, map[string][]float64{"xs": {1, 2}}); err == nil ||
		!strings.Contains(err.Error(), "needs 4") {
		t.Errorf("short input not reported: %v", err)
	}
}

// TestInterpTrace: the trace of the first cells captures receives and
// sends in order with values.
func TestInterpTrace(t *testing.T) {
	info := analyze(t, pipeSrc)
	traces, err := RunTrace(info, map[string][]float64{"xs": {10, 20, 30, 40}}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces[0]) != 4 || len(traces[1]) != 4 {
		t.Fatalf("trace lengths %d/%d, want 4/4", len(traces[0]), len(traces[1]))
	}
	e0 := traces[0][0]
	if e0.Send || e0.Var != "v" || e0.Value != 10 {
		t.Errorf("cell0 first event %+v, want receive v=10", e0)
	}
	e1 := traces[0][1]
	if !e1.Send || e1.Value != 11 {
		t.Errorf("cell0 second event %+v, want send 11", e1)
	}
	// Cell 1 receives what cell 0 sent.
	if traces[1][0].Value != 11 {
		t.Errorf("cell1 first receive %v, want 11", traces[1][0].Value)
	}
	if got := e0.String(); !strings.Contains(got, "Receive") {
		t.Errorf("event rendering: %q", got)
	}
}

// TestInterpPredication: both if arms evaluate correctly.
func TestInterpPredication(t *testing.T) {
	info := analyze(t, `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v, w;
        int i;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            if v < 0.0 then w := -v; else w := v;
            send (R, X, w, ys[i]);
        end;
    end
    call f;
end
`)
	out, err := Run(info, map[string][]float64{"xs": {-3, 4, -5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 5, 0}
	for i, w := range want {
		if out["ys"][i] != w {
			t.Errorf("ys[%d] = %v, want %v", i, out["ys"][i], w)
		}
	}
}

// TestInterpCellMemory: arrays behave as per-cell storage.
func TestInterpCellMemory(t *testing.T) {
	info := analyze(t, `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v;
        float buf[4];
        int i, j;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            buf[3-i] := v;
        end;
        for j := 0 to 3 do
            send (R, X, buf[j], ys[j]);
    end
    call f;
end
`)
	out, err := Run(info, map[string][]float64{"xs": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 3, 2, 1}
	for i, w := range want {
		if out["ys"][i] != w {
			t.Errorf("ys[%d] = %v, want %v", i, out["ys"][i], w)
		}
	}
}

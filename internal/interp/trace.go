package interp

import (
	"fmt"

	"warp/internal/w2"
)

// TraceEvent is one communication step of one cell: the material of the
// paper's Figure 4-2, which walks the first iterations of the
// polynomial program on the first two cells.
type TraceEvent struct {
	Cell  int
	Send  bool
	Chan  w2.Channel
	Var   string  // the internal variable received into / sent from
	Value float64 // the word transferred
}

func (e TraceEvent) String() string {
	op := "Receive"
	if e.Send {
		op = "Send"
	}
	return fmt.Sprintf("%-7s %-8s %g", op, e.Var, e.Value)
}

// RunTrace interprets the module like Run but records up to maxPerCell
// communication events for each of the first cells cells.
func RunTrace(info *w2.Info, inputs map[string][]float64, cells, maxPerCell int) ([][]TraceEvent, error) {
	host, err := BuildHostMem(info, inputs)
	if err != nil {
		return nil, err
	}
	ncells := info.Module.Cells.Last - info.Module.Cells.First + 1
	traces := make([][]TraceEvent, ncells)

	streams := map[w2.Channel][]float64{}
	for i := 0; i < ncells; i++ {
		c := &cellState{
			info:  info,
			cell:  i,
			first: i == 0,
			last:  i == ncells-1,
			in:    streams,
			out:   map[w2.Channel][]float64{},
			host:  host,
			mem:   make(map[*w2.Symbol][]float64),
			vars:  make(map[*w2.Symbol]float64),
			idx:   make(map[*w2.ForStmt]int64),
			inPos: map[w2.Channel]int{},
		}
		if i < cells {
			c.trace = &traces[i]
			c.traceMax = maxPerCell
		}
		for _, s := range info.Module.Cells.Body {
			call := s.(*w2.CallStmt)
			if err := c.stmts(info.Funcs[call.Name].Body); err != nil {
				return nil, fmt.Errorf("interp: cell %d: %w", i, err)
			}
		}
		streams = c.out
	}
	return traces, nil
}

// record appends a trace event if tracing is active.
func (c *cellState) record(send bool, ch w2.Channel, variable string, v float64) {
	if c.trace == nil || len(*c.trace) >= c.traceMax {
		return
	}
	*c.trace = append(*c.trace, TraceEvent{
		Cell: c.cell, Send: send, Chan: ch, Var: variable, Value: v,
	})
}

package interp

import (
	"testing"

	"warp/internal/w2"
	"warp/internal/workloads"
)

// traceSetup analyzes the paper's polynomial program with the Figure
// 4-2 inputs: z[i] = i and c[i] = 100+i so coefficients are
// recognizable in the trace.
func traceSetup(t *testing.T) (*w2.Info, map[string][]float64) {
	t.Helper()
	mod, err := w2.Parse(workloads.PolynomialPaper())
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 100)
	c := make([]float64, 10)
	for i := range z {
		z[i] = float64(i)
	}
	for i := range c {
		c[i] = 100 + float64(i)
	}
	return info, map[string][]float64{"z": z, "c": c}
}

// TestRunTraceFigure42 golden-checks the polynomial program's
// communication trace on the first two cells — the material of the
// paper's Figure 4-2: each cell first consumes one coefficient from
// the stream, then forwards the remaining coefficients ahead of its
// computation.
func TestRunTraceFigure42(t *testing.T) {
	info, inputs := traceSetup(t)
	traces, err := RunTrace(info, inputs, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]TraceEvent{
		{
			{Cell: 0, Send: false, Chan: w2.ChanX, Var: "coeff", Value: 100},
			{Cell: 0, Send: false, Chan: w2.ChanX, Var: "temp", Value: 101},
			{Cell: 0, Send: true, Chan: w2.ChanX, Var: "temp", Value: 101},
			{Cell: 0, Send: false, Chan: w2.ChanX, Var: "temp", Value: 102},
			{Cell: 0, Send: true, Chan: w2.ChanX, Var: "temp", Value: 102},
			{Cell: 0, Send: false, Chan: w2.ChanX, Var: "temp", Value: 103},
			{Cell: 0, Send: true, Chan: w2.ChanX, Var: "temp", Value: 103},
			{Cell: 0, Send: false, Chan: w2.ChanX, Var: "temp", Value: 104},
		},
		{
			{Cell: 1, Send: false, Chan: w2.ChanX, Var: "coeff", Value: 101},
			{Cell: 1, Send: false, Chan: w2.ChanX, Var: "temp", Value: 102},
			{Cell: 1, Send: true, Chan: w2.ChanX, Var: "temp", Value: 102},
			{Cell: 1, Send: false, Chan: w2.ChanX, Var: "temp", Value: 103},
			{Cell: 1, Send: true, Chan: w2.ChanX, Var: "temp", Value: 103},
			{Cell: 1, Send: false, Chan: w2.ChanX, Var: "temp", Value: 104},
			{Cell: 1, Send: true, Chan: w2.ChanX, Var: "temp", Value: 104},
			{Cell: 1, Send: false, Chan: w2.ChanX, Var: "temp", Value: 105},
		},
	}
	for cellIdx, wantEvents := range want {
		got := traces[cellIdx]
		if len(got) != len(wantEvents) {
			t.Fatalf("cell %d: got %d events, want %d: %v", cellIdx, len(got), len(wantEvents), got)
		}
		for i, w := range wantEvents {
			if got[i] != w {
				t.Errorf("cell %d event %d: got %+v, want %+v", cellIdx, i, got[i], w)
			}
		}
	}
	// Cells beyond the requested count must stay untraced.
	for cellIdx := 2; cellIdx < len(traces); cellIdx++ {
		if len(traces[cellIdx]) != 0 {
			t.Errorf("cell %d: traced %d events, want 0 (cells=2)", cellIdx, len(traces[cellIdx]))
		}
	}
}

// TestRunTraceLimit checks maxPerCell truncation and the String
// rendering used by warpbench's fig4-2 table.
func TestRunTraceLimit(t *testing.T) {
	info, inputs := traceSetup(t)
	traces, err := RunTrace(info, inputs, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces[0]) != 3 {
		t.Fatalf("maxPerCell=3: got %d events", len(traces[0]))
	}
	if got, want := traces[0][0].String(), "Receive coeff    100"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := traces[0][2].String(), "Send    temp     101"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Package interp is a direct reference interpreter for W2 programs: it
// executes the programmer's model (asynchronous blocking queues,
// sequential cell semantics) without any compilation.  Because the
// compiler only accepts unidirectional programs, the array can be
// evaluated cell by cell: run cell 0 against the host streams, feed its
// output streams to cell 1, and so on.  The interpreter is the oracle
// the compiled-and-simulated results are tested against.
package interp

import (
	"context"
	"fmt"

	"warp/internal/w2"
)

// Run interprets the module over the given input arrays (keyed by "in"
// parameter name) and returns the output arrays (keyed by "out"
// parameter name).
func Run(info *w2.Info, inputs map[string][]float64) (map[string][]float64, error) {
	return RunContext(context.Background(), info, inputs)
}

// RunContext interprets like Run but aborts once ctx is cancelled: the
// statement loop polls the context every few thousand statements, so an
// oracle run on a large problem respects the same deadlines as the
// simulator (sim.Config.Ctx).  The returned error wraps ctx.Err().  A
// nil ctx behaves like Run.
func RunContext(ctx context.Context, info *w2.Info, inputs map[string][]float64) (map[string][]float64, error) {
	host, err := BuildHostMem(info, inputs)
	if err != nil {
		return nil, err
	}
	ncells := info.Module.Cells.Last - info.Module.Cells.First + 1

	streams := map[w2.Channel][]float64{}
	var steps int64 // statement count shared across cells for the ctx poll
	for i := 0; i < ncells; i++ {
		c := &cellState{
			info:  info,
			ctx:   ctx,
			steps: &steps,
			cell:  i,
			first: i == 0,
			last:  i == ncells-1,
			in:    streams,
			out:   map[w2.Channel][]float64{},
			host:  host,
			mem:   make(map[*w2.Symbol][]float64),
			vars:  make(map[*w2.Symbol]float64),
			idx:   make(map[*w2.ForStmt]int64),
			inPos: map[w2.Channel]int{},
		}
		for _, s := range info.Module.Cells.Body {
			call := s.(*w2.CallStmt)
			if err := c.stmts(info.Funcs[call.Name].Body); err != nil {
				return nil, fmt.Errorf("interp: cell %d: %w", i, err)
			}
		}
		streams = c.out
	}
	return ExtractOutputs(info, host), nil
}

// BuildHostMem lays out the host memory image with the input parameter
// arrays loaded.
func BuildHostMem(info *w2.Info, inputs map[string][]float64) ([]float64, error) {
	host := make([]float64, info.HostSize)
	for _, sym := range info.HostSyms {
		if sym.Out {
			continue
		}
		data, ok := inputs[sym.Name]
		if !ok {
			return nil, fmt.Errorf("missing input array %q", sym.Name)
		}
		if len(data) != sym.Type.Size() {
			return nil, fmt.Errorf("input %q has %d elements, declared %s needs %d",
				sym.Name, len(data), sym.Type, sym.Type.Size())
		}
		copy(host[sym.Base:], data)
	}
	return host, nil
}

// ExtractOutputs copies the out-parameter arrays from a host memory
// image.
func ExtractOutputs(info *w2.Info, host []float64) map[string][]float64 {
	out := map[string][]float64{}
	for _, sym := range info.HostSyms {
		if !sym.Out {
			continue
		}
		data := make([]float64, sym.Type.Size())
		copy(data, host[sym.Base:sym.Base+sym.Type.Size()])
		out[sym.Name] = data
	}
	return out
}

type cellState struct {
	info        *w2.Info
	ctx         context.Context
	steps       *int64 // whole-run statement count, for the periodic ctx poll
	cell        int
	first, last bool
	in          map[w2.Channel][]float64
	inPos       map[w2.Channel]int
	out         map[w2.Channel][]float64
	host        []float64
	mem         map[*w2.Symbol][]float64
	vars        map[*w2.Symbol]float64
	idx         map[*w2.ForStmt]int64
	loops       []*w2.ForStmt

	// trace, when non-nil, collects up to traceMax communication
	// events (see trace.go).
	trace    *[]TraceEvent
	traceMax int
}

func (c *cellState) stmts(list []w2.Stmt) error {
	for _, s := range list {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// ctxPollInterval is how many statements run between context polls —
// the interpreter's analogue of the simulator's every-4096-cycles
// check: cheap on the hot path, prompt enough for deadlines.
const ctxPollInterval = 4096

func (c *cellState) stmt(s w2.Stmt) error {
	if c.steps != nil {
		if *c.steps++; *c.steps%ctxPollInterval == 0 && c.ctx != nil {
			if err := c.ctx.Err(); err != nil {
				return fmt.Errorf("interpretation aborted: %w", err)
			}
		}
	}
	switch s := s.(type) {
	case *w2.AssignStmt:
		v, err := c.eval(s.RHS)
		if err != nil {
			return err
		}
		return c.assign(s.LHS, v)
	case *w2.IfStmt:
		cond, err := c.eval(s.Cond)
		if err != nil {
			return err
		}
		if cond != 0 {
			return c.stmts(s.Then)
		}
		return c.stmts(s.Else)
	case *w2.ForStmt:
		b := c.info.Bounds[s]
		c.loops = append(c.loops, s)
		for i := b[0]; i <= b[1]; i++ {
			c.idx[s] = i
			if err := c.stmts(s.Body); err != nil {
				return err
			}
		}
		c.loops = c.loops[:len(c.loops)-1]
		return nil
	case *w2.ReceiveStmt:
		var v float64
		if c.first {
			var err error
			v, err = c.evalExternalIn(s.External)
			if err != nil {
				return err
			}
		} else {
			pos := c.inPos[s.Chan]
			stream := c.in[s.Chan]
			if pos >= len(stream) {
				return fmt.Errorf("receive on %s blocks forever: upstream cell sent only %d words", s.Chan, len(stream))
			}
			v = stream[pos]
			c.inPos[s.Chan] = pos + 1
		}
		c.record(false, s.Chan, s.LHS.Name, v)
		return c.assign(s.LHS, v)
	case *w2.SendStmt:
		v, err := c.eval(s.Value)
		if err != nil {
			return err
		}
		c.record(true, s.Chan, sendLabel(s.Value), v)
		if c.last {
			if s.External != nil {
				idx, err := c.hostIndex(s.External)
				if err != nil {
					return err
				}
				c.host[idx] = v
			}
			// Sends without an external are dummies; still counted by
			// appending to the stream for conservation checking.
		}
		c.out[s.Chan] = append(c.out[s.Chan], v)
		return nil
	case *w2.CallStmt:
		return fmt.Errorf("nested call statements are not allowed")
	case *w2.BlockStmt:
		return c.stmts(s.Body)
	}
	return fmt.Errorf("unhandled statement")
}

func (c *cellState) evalExternalIn(e w2.Expr) (float64, error) {
	switch e := e.(type) {
	case nil:
		return 0, fmt.Errorf("receive without an external binding on the first cell")
	case *w2.FloatLit:
		return e.Value, nil
	case *w2.IntLit:
		return float64(e.Value), nil
	case *w2.VarRef:
		idx, err := c.hostIndex(e)
		if err != nil {
			return 0, err
		}
		return c.host[idx], nil
	}
	return 0, fmt.Errorf("invalid external expression")
}

func (c *cellState) hostIndex(e w2.Expr) (int, error) {
	ref, ok := e.(*w2.VarRef)
	if !ok {
		return 0, fmt.Errorf("external must be a host reference")
	}
	sym := c.info.Uses[ref]
	aff, ok := c.info.Address[ref]
	if !ok {
		return 0, fmt.Errorf("external %s has no resolved address", ref.Name)
	}
	return sym.Base + int(aff.Eval(c.idx)), nil
}

func (c *cellState) assign(ref *w2.VarRef, v float64) error {
	sym := c.info.Uses[ref]
	switch sym.Kind {
	case w2.SymCellScalar:
		c.vars[sym] = v
		return nil
	case w2.SymCellArray:
		arr := c.array(sym)
		aff := c.info.Address[ref]
		i := aff.Eval(c.idx)
		if i < 0 || int(i) >= len(arr) {
			return fmt.Errorf("store outside array %s", sym.Name)
		}
		arr[i] = v
		return nil
	}
	return fmt.Errorf("cannot assign to %s", ref.Name)
}

func (c *cellState) array(sym *w2.Symbol) []float64 {
	arr, ok := c.mem[sym]
	if !ok {
		arr = make([]float64, sym.Type.Size())
		c.mem[sym] = arr
	}
	return arr
}

func (c *cellState) eval(e w2.Expr) (float64, error) {
	switch e := e.(type) {
	case *w2.IntLit:
		return float64(e.Value), nil
	case *w2.FloatLit:
		return e.Value, nil
	case *w2.VarRef:
		sym := c.info.Uses[e]
		switch sym.Kind {
		case w2.SymCellScalar:
			return c.vars[sym], nil
		case w2.SymCellArray:
			arr := c.array(sym)
			aff := c.info.Address[e]
			i := aff.Eval(c.idx)
			if i < 0 || int(i) >= len(arr) {
				return 0, fmt.Errorf("load outside array %s", sym.Name)
			}
			return arr[i], nil
		}
		return 0, fmt.Errorf("cannot evaluate %s", e.Name)
	case *w2.UnExpr:
		v, err := c.eval(e.X)
		if err != nil {
			return 0, err
		}
		if e.Neg {
			return -v, nil
		}
		return boolF(v == 0), nil
	case *w2.BinExpr:
		l, err := c.eval(e.L)
		if err != nil {
			return 0, err
		}
		r, err := c.eval(e.R)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case w2.OpAdd:
			return l + r, nil
		case w2.OpSub:
			return l - r, nil
		case w2.OpMul:
			return l * r, nil
		case w2.OpDivide:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		case w2.OpEq:
			return boolF(l == r), nil
		case w2.OpNe:
			return boolF(l != r), nil
		case w2.OpLt:
			return boolF(l < r), nil
		case w2.OpLe:
			return boolF(l <= r), nil
		case w2.OpGt:
			return boolF(l > r), nil
		case w2.OpGe:
			return boolF(l >= r), nil
		case w2.OpAnd:
			return boolF(l != 0 && r != 0), nil
		case w2.OpOr:
			return boolF(l != 0 || r != 0), nil
		}
	}
	return 0, fmt.Errorf("unhandled expression")
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sendLabel names the sent expression for traces: the variable name
// when the value is a simple reference, otherwise a generic marker.
func sendLabel(e w2.Expr) string {
	if ref, ok := e.(*w2.VarRef); ok && len(ref.Indices) == 0 {
		return ref.Name
	}
	return "(expr)"
}

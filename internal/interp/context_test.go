package interp

import (
	"context"
	"errors"
	"testing"

	"warp/internal/w2"
	"warp/internal/workloads"
)

// analyzeSrc parses and analyzes a W2 source for oracle runs.
func analyzeSrc(t *testing.T, src string) *w2.Info {
	t.Helper()
	mod, err := w2.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestRunContextCancelled proves the oracle aborts a large run once its
// context is cancelled, instead of computing to completion: the
// statement loop polls the context like the simulator's run loop.
func TestRunContextCancelled(t *testing.T) {
	info := analyzeSrc(t, workloads.Matmul(20))
	inputs := map[string][]float64{
		"a":    make([]float64, 400),
		"bmat": make([]float64, 400),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, info, inputs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on a cancelled context = %v, want context.Canceled", err)
	}
}

// TestRunContextNilAndBackground pins that a nil and a background
// context both behave like Run.
func TestRunContextNilAndBackground(t *testing.T) {
	info := analyzeSrc(t, workloads.Polynomial(4, 8))
	inputs := map[string][]float64{
		"z": {1, 2, 3, 4, 5, 6, 7, 8},
		"c": {1, -1, 0.5, 2},
	}
	want, err := Run(info, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		got, err := RunContext(ctx, info, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for name := range want {
			for i := range want[name] {
				if got[name][i] != want[name][i] {
					t.Fatalf("ctx=%v: %s[%d] = %v, want %v", ctx, name, i, got[name][i], want[name][i])
				}
			}
		}
	}
}

package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"warp"
)

// TestReportRoundTrip pins the schema: a written report reads back
// identically and carries the schema tag the gate validates.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{Schema: Schema, Experiments: []Experiment{
		{Name: "run/x", Kind: "run", Cells: 10, Skew: 3, Cycles: 225,
			CellUcode: 41, IUUcode: 43, AddUtil: 0.94, MulUtil: 0.94,
			PeakQueue: 5, Wall: &Wall{Iters: 5, MedianNS: 1e6, MinNS: 9e5}},
		{Name: "compile/a", Kind: "compile", W2Lines: 27, CellUcode: 41,
			IUUcode: 43, Wall: &Wall{Iters: 5, MedianNS: 2e6, MinNS: 1e6}},
	}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Experiments) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Write sorts by name for diff-stable baselines.
	if got.Experiments[0].Name != "compile/a" {
		t.Errorf("experiments not sorted: %q first", got.Experiments[0].Name)
	}
	if e := got.Experiments[1]; e.Cycles != 225 || e.Wall == nil || e.Wall.MedianNS != 1e6 {
		t.Errorf("run record mangled: %+v", e)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := &Report{Schema: "warpbench/999"}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("ReadFile accepted an unknown schema: %v", err)
	}
}

func rpt(exps ...Experiment) *Report { return &Report{Schema: Schema, Experiments: exps} }

// TestCompareGate exercises every verdict class: identical reports
// pass clean; a >threshold cycle regression fails; a small change or an
// improvement warns; wall drift warns; vanished coverage fails.
func TestCompareGate(t *testing.T) {
	base := rpt(
		Experiment{Name: "run/a", Cycles: 1000, CellUcode: 40, IUUcode: 42,
			Wall: &Wall{Iters: 3, MedianNS: 1000, MinNS: 900}},
		Experiment{Name: "run/b", Cycles: 500},
	)

	t.Run("identical", func(t *testing.T) {
		v := Compare(base, base, 0.10, 0.50, 0)
		if !v.OK() || len(v.Warnings) != 0 {
			t.Fatalf("identical reports produced %+v", v)
		}
	})

	t.Run("cycle regression fails", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 1200, CellUcode: 40, IUUcode: 42},
			Experiment{Name: "run/b", Cycles: 500},
		)
		v := Compare(base, fresh, 0.10, 0.50, 0)
		if v.OK() {
			t.Fatal("a +20% cycle regression passed the gate")
		}
		if !strings.Contains(strings.Join(v.Regressions, "\n"), "cycles regressed 1000 -> 1200") {
			t.Errorf("regression message: %v", v.Regressions)
		}
	})

	t.Run("zero threshold fails any increase", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 1001, CellUcode: 40, IUUcode: 42},
			Experiment{Name: "run/b", Cycles: 500},
		)
		if v := Compare(base, fresh, 0, 0.50, 0); v.OK() {
			t.Fatal("+1 cycle passed with threshold 0")
		}
	})

	t.Run("improvement warns", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 800, CellUcode: 40, IUUcode: 42},
			Experiment{Name: "run/b", Cycles: 500},
		)
		v := Compare(base, fresh, 0.10, 0.50, 0)
		if !v.OK() {
			t.Fatalf("an improvement failed the gate: %v", v.Regressions)
		}
		if len(v.Warnings) == 0 || !strings.Contains(v.Warnings[0], "improved") {
			t.Errorf("improvement did not warn for a baseline refresh: %v", v.Warnings)
		}
	})

	t.Run("wall drift warns only", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 1000, CellUcode: 40, IUUcode: 42,
				Wall: &Wall{Iters: 3, MedianNS: 5000, MinNS: 4000}},
			Experiment{Name: "run/b", Cycles: 500},
		)
		v := Compare(base, fresh, 0.10, 0.50, 0)
		if !v.OK() {
			t.Fatalf("wall drift failed the gate: %v", v.Regressions)
		}
		if !strings.Contains(strings.Join(v.Warnings, "\n"), "wall median drifted") {
			t.Errorf("no wall-drift warning: %v", v.Warnings)
		}
	})

	t.Run("vanished experiment fails", func(t *testing.T) {
		fresh := rpt(Experiment{Name: "run/a", Cycles: 1000, CellUcode: 40, IUUcode: 42})
		if v := Compare(base, fresh, 0.10, 0.50, 0); v.OK() {
			t.Fatal("losing run/b coverage passed the gate")
		}
	})

	t.Run("new experiment warns", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 1000, CellUcode: 40, IUUcode: 42},
			Experiment{Name: "run/b", Cycles: 500},
			Experiment{Name: "run/c", Cycles: 7},
		)
		v := Compare(base, fresh, 0.10, 0.50, 0)
		if !v.OK() || len(v.Warnings) != 1 {
			t.Fatalf("new experiment: %+v", v)
		}
	})

	t.Run("prediction error warns past the factor", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 1000, CellUcode: 40, IUUcode: 42,
				Decision: &warp.Decision{Backend: "fast", Reason: "auto-verified",
					PredictedFastWallNS: 100_000, ActualWallNS: 400_000}},
			Experiment{Name: "run/b", Cycles: 500},
		)
		v := Compare(base, fresh, 0.10, 0.50, 0)
		if !v.OK() {
			t.Fatalf("a bad prediction hard-failed the gate: %v", v.Regressions)
		}
		joined := strings.Join(v.Warnings, "\n")
		if !strings.Contains(joined, "cost model predicted") || !strings.Contains(joined, "4.0x off") {
			t.Errorf("no prediction-error warning at 4x: %v", v.Warnings)
		}
	})

	t.Run("prediction error within the factor stays silent", func(t *testing.T) {
		fresh := rpt(
			Experiment{Name: "run/a", Cycles: 1000, CellUcode: 40, IUUcode: 42,
				Decision: &warp.Decision{Backend: "fast", Reason: "auto-verified",
					PredictedFastWallNS: 100_000, ActualWallNS: 250_000}},
			Experiment{Name: "run/b", Cycles: 500},
		)
		v := Compare(base, fresh, 0.10, 0.50, 0)
		if strings.Contains(strings.Join(v.Warnings, "\n"), "cost model") {
			t.Errorf("a 2.5x prediction error warned below the %gx factor: %v",
				PredictionErrorWarnFactor, v.Warnings)
		}
	})
}

// TestRunPinsBaselines runs the real suite once and asserts the four
// pinned cycle counts — the same 1322/225/634/719 TestObsNeutral and
// EXPERIMENTS.md record — so BENCH_*.json, the tests and the docs can
// never silently disagree.
func TestRunPinsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the full Table 7-1 suite")
	}
	rep, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"run/polynomial-plain":     1322,
		"run/polynomial-pipelined": 225,
		"run/conv1d-pipelined":     634,
		"run/matmul10-pipelined":   719,
	}
	got := map[string]int64{}
	for _, e := range rep.Experiments {
		got[e.Name] = e.Cycles
		// The symbolic sweep densely samples its µs-scale instantiation
		// loop (iters×5, floor 25) rather than running once per iter.
		wantIters := 1
		if e.Kind == "symbolic" {
			wantIters = 25
		}
		if e.Wall == nil || e.Wall.Iters != wantIters || e.Wall.MedianNS <= 0 {
			t.Errorf("%s: bad wall stats %+v", e.Name, e.Wall)
		}
	}
	for name, cycles := range want {
		if got[name] != cycles {
			t.Errorf("%s = %d cycles, want the pinned baseline %d", name, got[name], cycles)
		}
	}
	// +3 for the compile-scaling/colorseg-w{1,2,4} curve, +1 fastexec,
	// +1 the symbolic instantiation sweep.
	if want := len(compileCases()) + 3 + len(runCases()) + len(fabricCases()) + 2; len(rep.Experiments) != want {
		t.Errorf("suite ran %d experiments, want %d (incl. scaling curve, fastexec and symbolic)", len(rep.Experiments), want)
	}
	// The fastexec backend comparison: Run itself verifies the two
	// backends agree bit-for-bit before emitting the record, so here we
	// only check the record's shape (the 5× floor is gated by Compare,
	// not asserted on a loaded CI host).
	var fx *Experiment
	for i := range rep.Experiments {
		if rep.Experiments[i].Kind == "fastexec" {
			fx = &rep.Experiments[i]
		}
	}
	if fx == nil {
		t.Fatal("no fastexec experiment in the suite")
	}
	if fx.Name != "fastexec/matmul32" || fx.Cycles <= 0 || fx.Speedup <= 0 ||
		fx.SimWall == nil || fx.Wall == nil {
		t.Errorf("malformed fastexec record: %+v", fx)
	}
	// The symbolic instantiation sweep: Run differentially checks every
	// sweep size against a from-scratch compile before timing, so here
	// we only check the record's shape (the 20× floor is gated by
	// Compare, not asserted on a loaded CI host).
	var sy *Experiment
	for i := range rep.Experiments {
		if rep.Experiments[i].Kind == "symbolic" {
			sy = &rep.Experiments[i]
		}
	}
	if sy == nil {
		t.Fatal("no symbolic experiment in the suite")
	}
	if sy.Name != "symbolic/instantiate-sweep" || sy.Cycles <= 0 || sy.Speedup <= 0 ||
		sy.Sizes != 7 || sy.CompileWall == nil || sy.Wall == nil {
		t.Errorf("malformed symbolic record: %+v", sy)
	}
	// The fabric scaling curve: the 4-array farm's modeled speedup over
	// one array must clear 2× (the acceptance bar), and the tile
	// decomposition is pinned.
	fab := map[string]Experiment{}
	for _, e := range rep.Experiments {
		if e.Kind == "fabric" {
			fab[e.Name] = e
		}
	}
	a4 := fab["fabric/matmul40-arrays4"]
	if a4.Tiles != 64 { // ⌈40/10⌉³
		t.Errorf("matmul40 decomposed into %d tiles, want 64", a4.Tiles)
	}
	if a4.Speedup < 2 {
		t.Errorf("4-array modeled speedup %.2f, want ≥2", a4.Speedup)
	}
	a1 := fab["fabric/matmul40-arrays1"]
	if a1.AggCycles != a4.AggCycles {
		t.Errorf("aggregate cycles differ across array counts: %d vs %d", a1.AggCycles, a4.AggCycles)
	}
	if a1.Makespan != a1.AggCycles {
		t.Errorf("1-array makespan %d != aggregate %d", a1.Makespan, a1.AggCycles)
	}
}

// TestCompilePhaseDrift checks the per-phase compile-time warning: a
// phase whose median grew past CompileDriftFactor× names itself; drift
// under the factor stays silent.
func TestCompilePhaseDrift(t *testing.T) {
	// Durations sit above CompilePhaseFloorNS so the noise-floor
	// exemption does not swallow the drift.
	base := rpt(Experiment{Name: "compile/c", Kind: "compile",
		CompilePhases: []PhaseWall{{Name: "cellgen", MedianNS: 10_000_000}, {Name: "skew", MedianNS: 5_000_000}}})
	fresh := rpt(Experiment{Name: "compile/c", Kind: "compile",
		CompilePhases: []PhaseWall{{Name: "cellgen", MedianNS: 21_000_000}, {Name: "skew", MedianNS: 9_000_000}}})
	v := Compare(base, fresh, 0.10, 100, 0) // wall threshold out of the way
	if !v.OK() {
		t.Fatalf("phase drift must warn, not fail: %v", v.Regressions)
	}
	joined := strings.Join(v.Warnings, "\n")
	if !strings.Contains(joined, `compile phase "cellgen" drifted`) {
		t.Errorf("no warning naming the drifted phase: %v", v.Warnings)
	}
	if strings.Contains(joined, `"skew"`) {
		t.Errorf("sub-factor drift warned: %v", v.Warnings)
	}
}

// TestCompileThresholdPromotes checks that a positive compileThreshold
// turns compile-phase drift past the factor into a hard regression,
// while drift under the factor still only warns via CompileDriftFactor.
func TestCompileThresholdPromotes(t *testing.T) {
	base := rpt(Experiment{Name: "compile/c", Kind: "compile",
		CompilePhases: []PhaseWall{
			{Name: "cellgen", MedianNS: 10_000_000},
			{Name: "skew", MedianNS: 5_000_000},
			{Name: "optimize", MedianNS: 400}}})
	fresh := rpt(Experiment{Name: "compile/c", Kind: "compile",
		CompilePhases: []PhaseWall{
			{Name: "cellgen", MedianNS: 50_000_000},
			{Name: "skew", MedianNS: 11_000_000},
			{Name: "optimize", MedianNS: 40_000}}})
	v := Compare(base, fresh, 0.10, 100, 4.0)
	if v.OK() {
		t.Fatal("5x phase growth must fail with -compile-threshold 4")
	}
	joined := strings.Join(v.Regressions, "\n")
	if !strings.Contains(joined, `compile phase "cellgen" regressed`) {
		t.Errorf("no regression naming the blown phase: %v", v.Regressions)
	}
	if strings.Contains(joined, `"skew"`) {
		t.Errorf("2.2x growth hard-failed under a 4x threshold: %v", v.Regressions)
	}
	if !strings.Contains(strings.Join(v.Warnings, "\n"), `compile phase "skew" drifted`) {
		t.Errorf("2.2x growth should still warn: %v", v.Warnings)
	}
	// "optimize" grew 100x but both sides sit under CompilePhaseFloorNS:
	// sub-floor phases are scheduler noise and must stay silent.
	all := joined + "\n" + strings.Join(v.Warnings, "\n")
	if strings.Contains(all, `"optimize"`) {
		t.Errorf("sub-floor phase escaped the noise floor: %v / %v", v.Regressions, v.Warnings)
	}
}

// TestFastexecSpeedupGate checks the one hard wall gate: a fastexec
// experiment whose speedup fell below FastexecSpeedupFloor fails
// regardless of thresholds, while above-floor drift only warns.
func TestFastexecSpeedupGate(t *testing.T) {
	base := rpt(Experiment{Name: "fastexec/matmul32", Kind: "fastexec", Cycles: 100, Speedup: 15.0})
	below := rpt(Experiment{Name: "fastexec/matmul32", Kind: "fastexec", Cycles: 100, Speedup: 4.2})
	v := Compare(base, below, 0.10, 0.50, 0)
	if v.OK() {
		t.Fatal("speedup 4.2x must fail the 5x floor")
	}
	if !strings.Contains(strings.Join(v.Regressions, "\n"), "below the 5x floor") {
		t.Errorf("regression does not name the floor: %v", v.Regressions)
	}
	drifted := rpt(Experiment{Name: "fastexec/matmul32", Kind: "fastexec", Cycles: 100, Speedup: 4.9})
	if v := Compare(base, drifted, 0.10, 0.50, 0); v.OK() {
		t.Error("speedup 4.9x must fail the 5x floor even with a worse baseline margin")
	}
	ok := rpt(Experiment{Name: "fastexec/matmul32", Kind: "fastexec", Cycles: 100, Speedup: 5.5})
	v = Compare(base, ok, 0.10, 0.50, 0)
	if !v.OK() {
		t.Fatalf("5.5x is above the floor, drift must be warn-only: %v", v.Regressions)
	}
	if !strings.Contains(strings.Join(v.Warnings, "\n"), "speedup drifted") {
		t.Errorf("15x -> 5.5x drift should warn: %v", v.Warnings)
	}
}

// TestSymbolicSpeedupGate checks the symbolic twin of the fastexec
// gate: an instantiation sweep whose speedup over a cold compile fell
// below SymbolicSpeedupFloor fails regardless of thresholds, while
// above-floor drift only warns.
func TestSymbolicSpeedupGate(t *testing.T) {
	base := rpt(Experiment{Name: "symbolic/instantiate-sweep", Kind: "symbolic", Cycles: 100, Sizes: 7, Speedup: 900.0})
	below := rpt(Experiment{Name: "symbolic/instantiate-sweep", Kind: "symbolic", Cycles: 100, Sizes: 7, Speedup: 12.0})
	v := Compare(base, below, 0.10, 0.50, 0)
	if v.OK() {
		t.Fatal("speedup 12x must fail the 20x floor")
	}
	if !strings.Contains(strings.Join(v.Regressions, "\n"), "below the 20x floor") {
		t.Errorf("regression does not name the floor: %v", v.Regressions)
	}
	ok := rpt(Experiment{Name: "symbolic/instantiate-sweep", Kind: "symbolic", Cycles: 100, Sizes: 7, Speedup: 80.0})
	v = Compare(base, ok, 0.10, 0.50, 0)
	if !v.OK() {
		t.Fatalf("80x is above the floor, drift must be warn-only: %v", v.Regressions)
	}
	if !strings.Contains(strings.Join(v.Warnings, "\n"), "speedup drifted") {
		t.Errorf("900x -> 80x drift should warn: %v", v.Warnings)
	}
	// A shrunken sweep is a deterministic-counter regression: sizes
	// silently dropping means coverage loss, not noise.
	narrow := rpt(Experiment{Name: "symbolic/instantiate-sweep", Kind: "symbolic", Cycles: 100, Sizes: 3, Speedup: 900.0})
	if v := Compare(base, narrow, 0.10, 0.50, 0); len(v.Warnings)+len(v.Regressions) == 0 {
		t.Error("sweep shrinking 7 -> 3 sizes must at least warn")
	}
}

// TestRunRecordsCompileIntrospection runs one compile case end to end
// and checks the new warpbench/1 fields: per-phase wall times that are
// present for every compiler phase, a dominant phase drawn from them,
// and the scheduler totals.
func TestRunRecordsCompileIntrospection(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the full Table 7-1 suite")
	}
	rep, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Experiments {
		if e.Kind != "compile" {
			continue
		}
		if len(e.CompilePhases) == 0 {
			t.Errorf("%s: no per-phase wall times", e.Name)
			continue
		}
		names := map[string]bool{}
		for _, ph := range e.CompilePhases {
			names[ph.Name] = true
			if ph.MedianNS <= 0 {
				t.Errorf("%s: phase %s has no wall time", e.Name, ph.Name)
			}
		}
		for _, want := range []string{"parse", "cellgen", "iugen", "hostgen"} {
			if !names[want] {
				t.Errorf("%s: missing phase %q in %v", e.Name, want, e.CompilePhases)
			}
		}
		if !names[e.DominantPhase] {
			t.Errorf("%s: dominant phase %q is not a recorded phase", e.Name, e.DominantPhase)
		}
		if e.Sched == nil || e.Sched.Loops == 0 {
			t.Errorf("%s: no scheduler totals: %+v", e.Name, e.Sched)
		}
	}
}

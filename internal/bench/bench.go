// Package bench defines the machine-readable benchmark artifact shared
// by `warpbench -json`, `warpsim -stats-json` and
// `scripts/benchgate.go`: a stable JSON schema recording every
// experiment's deterministic results (simulated cycle counts, µcode
// sizes) next to its non-deterministic wall-clock statistics
// (median/min over several iterations), plus the comparison logic the
// regression gate applies between a fresh run and a committed
// BENCH_*.json baseline.
//
// The split matters for gating: cycle counts and µcode sizes are exact
// outputs of a deterministic compiler and simulator, so any change is a
// real behavior change and the gate can hard-fail on them; wall-clock
// numbers vary with the host, so the gate only warns on drift.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"warp"
	"warp/internal/prof"
	"warp/internal/workloads"
)

// Schema identifies the report format.  Bump it only on incompatible
// changes; additive optional fields keep the version.
const Schema = "warpbench/1"

// Wall is the wall-clock statistic of one experiment over several
// iterations.  Median and min are both recorded: median is the robust
// central tendency the gate compares, min approximates the noise floor.
type Wall struct {
	Iters    int   `json:"iters"`
	MedianNS int64 `json:"median_ns"`
	MinNS    int64 `json:"min_ns"`
}

// PhaseWall is one compiler phase's wall time within a compile
// experiment, reduced over the iterations like Wall.
type PhaseWall struct {
	Name     string `json:"name"`
	MedianNS int64  `json:"median_ns"`
	MinNS    int64  `json:"min_ns"`
}

// Experiment is one benchmark record.  Deterministic fields (Cycles,
// CellUcode, IUUcode, W2Lines, Cells, Skew) are gate-comparable;
// utilization fractions and Wall are informational.
type Experiment struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "compile", "run", "fabric", "fastexec" or "symbolic"

	Cells     int   `json:"cells,omitempty"`
	Skew      int64 `json:"skew,omitempty"`
	W2Lines   int   `json:"w2_lines,omitempty"`
	CellUcode int   `json:"cell_ucode,omitempty"`
	IUUcode   int   `json:"iu_ucode,omitempty"`

	Cycles    int64   `json:"cycles,omitempty"`
	AddUtil   float64 `json:"add_util,omitempty"`
	MulUtil   float64 `json:"mul_util,omitempty"`
	PeakQueue int     `json:"peak_queue,omitempty"`

	// Fabric (partitioned-run) records.  Tiles, Arrays, AggCycles and
	// Makespan are deterministic — the tile decomposition and the
	// modeled list-schedule are pure functions of the plan — so the
	// gate hard-fails on them like cycle counts.  Speedup is their
	// ratio (informational; gating the operands gates it).
	Tiles     int     `json:"tiles,omitempty"`
	Arrays    int     `json:"arrays,omitempty"`
	AggCycles int64   `json:"agg_cycles,omitempty"`
	Makespan  int64   `json:"makespan_cycles,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`

	Wall *Wall `json:"wall,omitempty"`

	// Fastexec (backend-comparison) records.  Wall and Speedup describe
	// the fast dataflow executor; SimWall is the cycle-accurate
	// simulator's wall time on the identical verified program and
	// inputs, so Speedup = SimWall.Min / Wall.Min (minima approximate
	// the noise floor, keeping the gated ratio robust to load spikes).
	// Cycles is the shared count both backends must report — Run errors
	// out before emitting the record if they disagree on cycles or any
	// output bit.
	SimWall *Wall `json:"sim_wall,omitempty"`

	// Symbolic (template-instantiation) records.  Sizes is the sweep
	// breadth (every size differentially checked against a from-scratch
	// compile before timing); Wall is the steady-state instantiation
	// wall at the reference size, CompileWall a cold concrete compile of
	// the same bound vector, and Speedup = CompileWall.Min / Wall.Min
	// (minima approximate the noise floors, like the fastexec ratio) —
	// gated hard on SymbolicSpeedupFloor, since both operands run on the
	// same host in the same process.  Cycles is the template's
	// closed-form prediction, deterministic like µcode sizes.
	Sizes       int   `json:"sizes,omitempty"`
	CompileWall *Wall `json:"compile_wall,omitempty"`

	// Compile-kind extras (additive, schema version unchanged).
	// CompilePhases records per-phase wall times so compile-time
	// regressions name the phase, not just the total; DominantPhase is
	// the phase with the largest median; Sched is the scheduler's
	// introspection roll-up (deterministic counters except search_ns and
	// skew_ns, which are wall times — the gate treats the whole block as
	// informational).
	CompilePhases []PhaseWall       `json:"compile_phases,omitempty"`
	DominantPhase string            `json:"dominant_phase,omitempty"`
	Sched         *prof.SchedTotals `json:"sched,omitempty"`

	// Decision is the backend decision audit for run and fabric kinds
	// (additive, schema version unchanged): which executor ran, why, and
	// the cost model's predicted wall times beside the measured one.
	// Wall predictions are host-specific, so the gate never hard-fails
	// on them; Compare warns when the prediction error exceeds
	// PredictionErrorWarnFactor.
	Decision *warp.Decision `json:"decision,omitempty"`
}

// Report is the top-level artifact.
type Report struct {
	Schema      string       `json:"schema"`
	Experiments []Experiment `json:"experiments"`
}

// FromRun builds a run-kind record from a compiled program's metrics
// and one run's statistics — the shared constructor that keeps warpsim
// -stats-json and warpbench -json emitting identical shapes.
func FromRun(name string, m warp.Metrics, rs *warp.RunStats, wall *Wall) Experiment {
	return Experiment{
		Name:      name,
		Kind:      "run",
		Cells:     m.Cells,
		Skew:      m.Skew,
		W2Lines:   m.W2Lines,
		CellUcode: m.CellInstrs,
		IUUcode:   m.IUInstrs,
		Cycles:    rs.Cycles,
		AddUtil:   rs.AddUtilization,
		MulUtil:   rs.MulUtilization,
		PeakQueue: rs.MaxQueue,
		Wall:      wall,
		Decision:  rs.Decision,
	}
}

// FromFabric builds a fabric-kind record from the tile kernel's
// metrics and one partitioned run's fabric statistics.
func FromFabric(name string, m warp.Metrics, fs *warp.FabricStats, wall *Wall) Experiment {
	return Experiment{
		Name:      name,
		Kind:      "fabric",
		Cells:     m.Cells,
		Skew:      m.Skew,
		W2Lines:   m.W2Lines,
		CellUcode: m.CellInstrs,
		IUUcode:   m.IUInstrs,
		AddUtil:   fs.AddUtil,
		MulUtil:   fs.MulUtil,
		PeakQueue: fs.PeakQueue,
		Tiles:     fs.Tiles,
		Arrays:    fs.Arrays,
		AggCycles: fs.AggregateCycles,
		Makespan:  fs.MakespanCycles,
		Speedup:   fs.Speedup,
		Wall:      wall,
		Decision:  fs.Decision,
	}
}

// Write renders the report as indented JSON with experiments sorted
// by name, so regenerated baselines diff cleanly.
func (r *Report) Write(w io.Writer) error {
	sort.Slice(r.Experiments, func(i, j int) bool {
		return r.Experiments[i].Name < r.Experiments[j].Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, this tool understands %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// compileCase is one Table 7-1 compilation benchmark.
type compileCase struct {
	name string
	src  func() string
}

// runCase is one simulation benchmark; the cycle counts are the pinned
// baselines every perf PR is judged against (the first four match
// TestObsNeutral's 1322/225/634/719).
type runCase struct {
	name string
	src  func() string
	pipe bool
}

func compileCases() []compileCase {
	return []compileCase{
		{"1d-conv", workloads.Conv1DPaper},
		{"binop", workloads.BinopPaper},
		{"colorseg", workloads.ColorSegPaper},
		{"mandelbrot", workloads.MandelbrotPaper},
		{"polynomial", workloads.PolynomialPaper},
	}
}

func runCases() []runCase {
	return []runCase{
		{"polynomial-plain", func() string { return workloads.Polynomial(10, 100) }, false},
		{"polynomial-pipelined", func() string { return workloads.Polynomial(10, 100) }, true},
		{"conv1d-pipelined", func() string { return workloads.Conv1D(9, 512) }, true},
		{"matmul10-pipelined", func() string { return workloads.Matmul(10) }, true},
		{"polynomial-large-pipelined", func() string { return workloads.Polynomial(10, 400) }, true},
		{"conv1d-large-pipelined", func() string { return workloads.Conv1D(9, 2048) }, true},
	}
}

// fabricCase is one partitioned-run benchmark: an oversized problem
// farmed across a fixed array count.  The matmul case repeats at 1, 2
// and 4 arrays — the scaling curve whose modeled speedups the baseline
// pins.
type fabricCase struct {
	name   string
	arrays int
	tile   func() string
	prob   func() warp.Problem
}

func fabricCases() []fabricCase {
	mm := func() warp.Problem {
		a, b := workloads.LargeMatmulData(40, 40, 40, 5)
		return warp.MatmulProblem(40, 40, 40, a, b)
	}
	cv := func() warp.Problem {
		x, w := workloads.LargeConv1DData(2048, 9, 5)
		return warp.Conv1DProblem(w, x)
	}
	mk := func() string { return workloads.Matmul(10) }
	ck := func() string { return workloads.Conv1D(9, 512) }
	return []fabricCase{
		{"matmul40-arrays1", 1, mk, mm},
		{"matmul40-arrays2", 2, mk, mm},
		{"matmul40-arrays4", 4, mk, mm},
		{"conv2048-arrays4", 4, ck, cv},
	}
}

// zeroInputs builds zero-filled input arrays of the declared sizes —
// inputs never affect timing (the machine is statically scheduled), so
// zeros keep runs deterministic and cheap.
func zeroInputs(prog *warp.Program) map[string][]float64 {
	in := map[string][]float64{}
	for _, p := range prog.Params() {
		if !p.Out {
			in[p.Name] = make([]float64, p.Size)
		}
	}
	return in
}

// variedInputs builds deterministic non-zero input arrays so the
// fastexec backend comparison checks real arithmetic bit patterns, not
// just zero propagation.  (Timing is input-independent either way.)
func variedInputs(prog *warp.Program) map[string][]float64 {
	in := map[string][]float64{}
	for _, p := range prog.Params() {
		if p.Out {
			continue
		}
		v := make([]float64, p.Size)
		for i := range v {
			v[i] = float64(i%17)/8 - 1.0
		}
		in[p.Name] = v
	}
	return in
}

// wallStats reduces per-iteration wall times to the Wall record.
func wallStats(durs []time.Duration) *Wall {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Wall{
		Iters:    len(sorted),
		MedianNS: int64(sorted[len(sorted)/2]),
		MinNS:    int64(sorted[0]),
	}
}

// Run executes the benchmark suite: the five Table 7-1 compilations
// (software pipelining on, wall-clock measured per compile) and the
// pinned simulation workloads (compile once, run iters times).  iters
// < 1 is treated as 1.  Compilations use the compiler's default
// parallelism; RunWorkers pins it.
func Run(iters int) (*Report, error) {
	return RunWorkers(iters, 0)
}

// compileExperiment measures one compilation iters times and reduces
// it to a compile-kind record: total and per-phase wall statistics,
// deterministic µcode counters, and the scheduler roll-up.
func compileExperiment(name, src string, iters int, opts warp.Options) (Experiment, error) {
	var prog *warp.Program
	var err error
	durs := make([]time.Duration, iters)
	phaseDurs := map[string][]time.Duration{}
	var phaseOrder []string
	for i := 0; i < iters; i++ {
		start := time.Now()
		prog, err = warp.Compile(src, opts)
		durs[i] = time.Since(start)
		if err != nil {
			return Experiment{}, fmt.Errorf("%s: %w", name, err)
		}
		for _, ph := range prog.Phases() {
			if _, seen := phaseDurs[ph.Name]; !seen {
				phaseOrder = append(phaseOrder, ph.Name)
			}
			phaseDurs[ph.Name] = append(phaseDurs[ph.Name], time.Duration(ph.Seconds*1e9))
		}
	}
	m := prog.Metrics()
	ex := Experiment{
		Name: name, Kind: "compile",
		Cells: m.Cells, Skew: m.Skew, W2Lines: m.W2Lines,
		CellUcode: m.CellInstrs, IUUcode: m.IUInstrs,
		Wall: wallStats(durs),
	}
	var domNS int64
	for _, name := range phaseOrder {
		w := wallStats(phaseDurs[name])
		ex.CompilePhases = append(ex.CompilePhases, PhaseWall{Name: name, MedianNS: w.MedianNS, MinNS: w.MinNS})
		if w.MedianNS > domNS {
			domNS, ex.DominantPhase = w.MedianNS, name
		}
	}
	if sched := prog.Sched(); sched != nil {
		t := sched.Totals()
		ex.Sched = &t
	}
	return ex, nil
}

// RunWorkers is Run with the per-compilation parallelism pinned
// (warp.Options.CompileWorkers; 0 = the compiler's default).  The
// setting changes wall times only — the compiler's output is
// byte-identical at any worker count, so every deterministic counter
// in the report is unaffected.
//
// Beyond the standard suite it emits the compile-scaling experiments:
// the heaviest Table 7-1 compilation (colorseg) at 1, 2 and 4 workers,
// named compile-scaling/colorseg-w<n>.  Their wall statistics are the
// parallel-speedup curve; the gate treats them like any other compile
// experiment (deterministic counters hard-gated, wall advisory).
func RunWorkers(iters, compileWorkers int) (*Report, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &Report{Schema: Schema}

	for _, cc := range compileCases() {
		ex, err := compileExperiment("compile/"+cc.name, cc.src(), iters,
			warp.Options{Pipeline: true, CompileWorkers: compileWorkers})
		if err != nil {
			return nil, err
		}
		rep.Experiments = append(rep.Experiments, ex)
	}

	for _, w := range []int{1, 2, 4} {
		ex, err := compileExperiment(fmt.Sprintf("compile-scaling/colorseg-w%d", w),
			workloads.ColorSegPaper(), iters,
			warp.Options{Pipeline: true, CompileWorkers: w})
		if err != nil {
			return nil, err
		}
		rep.Experiments = append(rep.Experiments, ex)
	}

	for _, rc := range runCases() {
		prog, err := warp.Compile(rc.src(), warp.Options{Pipeline: rc.pipe, CompileWorkers: compileWorkers})
		if err != nil {
			return nil, fmt.Errorf("run/%s: compile: %w", rc.name, err)
		}
		inputs := zeroInputs(prog)
		var rs *warp.RunStats
		durs := make([]time.Duration, iters)
		for i := 0; i < iters; i++ {
			start := time.Now()
			_, rs, err = prog.Run(inputs)
			durs[i] = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("run/%s: %w", rc.name, err)
			}
		}
		rep.Experiments = append(rep.Experiments,
			FromRun("run/"+rc.name, prog.Metrics(), rs, wallStats(durs)))
	}

	for _, fc := range fabricCases() {
		prog, err := warp.Compile(fc.tile(), warp.Options{Pipeline: true, CompileWorkers: compileWorkers})
		if err != nil {
			return nil, fmt.Errorf("fabric/%s: compile: %w", fc.name, err)
		}
		prob := fc.prob()
		var fs *warp.FabricStats
		durs := make([]time.Duration, iters)
		for i := 0; i < iters; i++ {
			start := time.Now()
			_, fs, err = prog.RunPartitioned(warp.RunConfig{Arrays: fc.arrays}, prob)
			durs[i] = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("fabric/%s: %w", fc.name, err)
			}
		}
		rep.Experiments = append(rep.Experiments,
			FromFabric("fabric/"+fc.name, prog.Metrics(), fs, wallStats(durs)))
	}

	if ex, err := runFastexec(iters); err != nil {
		return nil, err
	} else {
		rep.Experiments = append(rep.Experiments, ex)
	}

	if ex, err := runSymbolic(iters, compileWorkers); err != nil {
		return nil, err
	} else {
		rep.Experiments = append(rep.Experiments, ex)
	}
	return rep, nil
}

// runFastexec benchmarks the two execution backends against each other
// on one verified workload: a 32×32 matmul, large enough that the
// simulator's per-cycle interpretation dominates and the fast dataflow
// executor's advantage is well clear of the FastexecSpeedupFloor gate
// (the list-scheduled variant is used deliberately — its longer
// schedule costs the simulator proportionally but the dataflow
// executor barely at all, holding a ~2× margin over the floor).
// The record is only emitted when both backends agree exactly — same
// cycle count, every output word bit-identical — so a divergence fails
// the whole suite rather than publishing a tainted speedup.
func runFastexec(iters int) (Experiment, error) {
	prog, err := warp.Compile(workloads.Matmul(32), warp.Options{Verify: true})
	if err != nil {
		return Experiment{}, fmt.Errorf("fastexec/matmul32: compile: %w", err)
	}
	inputs := variedInputs(prog)
	run := func(backend string) (map[string][]float64, *warp.RunStats, *Wall, error) {
		var out map[string][]float64
		var rs *warp.RunStats
		durs := make([]time.Duration, iters)
		for i := 0; i < iters; i++ {
			start := time.Now()
			out, rs, err = prog.RunWith(warp.RunConfig{Backend: backend}, inputs)
			durs[i] = time.Since(start)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("fastexec/matmul32: %s: %w", backend, err)
			}
		}
		return out, rs, wallStats(durs), nil
	}
	simOut, simRS, simWall, err := run(warp.BackendSim)
	if err != nil {
		return Experiment{}, err
	}
	fastOut, fastRS, fastWall, err := run(warp.BackendFast)
	if err != nil {
		return Experiment{}, err
	}
	if simRS.Cycles != fastRS.Cycles {
		return Experiment{}, fmt.Errorf("fastexec/matmul32: backends disagree on cycles: sim %d, fast %d",
			simRS.Cycles, fastRS.Cycles)
	}
	for name, want := range simOut {
		got := fastOut[name]
		if len(got) != len(want) {
			return Experiment{}, fmt.Errorf("fastexec/matmul32: output %q: sim %d words, fast %d",
				name, len(want), len(got))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				return Experiment{}, fmt.Errorf("fastexec/matmul32: output %q[%d]: sim %v, fast %v (not bit-identical)",
					name, i, want[i], got[i])
			}
		}
	}
	ex := FromRun("fastexec/matmul32", prog.Metrics(), fastRS, fastWall)
	ex.Kind = "fastexec"
	ex.SimWall = simWall
	// The gated ratio uses the per-backend minima: min approximates
	// each backend's noise floor, so a transient load spike during one
	// iteration cannot push the ratio through the floor spuriously.
	if fastWall.MinNS > 0 {
		ex.Speedup = float64(simWall.MinNS) / float64(fastWall.MinNS)
	}
	return ex, nil
}

// runSymbolic benchmarks the symbolic compile path's whole pitch:
// compile the matmul template once, then instantiate a sweep of sizes
// on its residue lattice for microseconds each instead of a cold
// compile's milliseconds.  Every sweep size is differentially checked
// (instantiation byte-identical to a from-scratch compile) before any
// timing is published, mirroring runFastexec's agree-or-fail contract.
// The gated ratio compares the two sides' minima at the reference size
// n=32: both operands run in the same process, so host speed cancels
// and a collapse below SymbolicSpeedupFloor means instantiation itself
// regressed toward recompilation.
func runSymbolic(iters, compileWorkers int) (Experiment, error) {
	const name = "symbolic/instantiate-sweep"
	const refSize = int64(32)
	// Verify on: this is the subsystem's verification-once contract in
	// benchmark form.  The concrete path re-proves the microcode on
	// every compile; instantiation inherits the class base's proof.
	opts := warp.Options{Verify: true, CompileWorkers: compileWorkers}
	tmpl, err := warp.CompileTemplate(workloads.MatmulSym(), opts)
	if err != nil {
		return Experiment{}, fmt.Errorf("%s: template: %w", name, err)
	}
	// One residue class covers the whole sweep (period 6, base offset
	// 2); the first instantiation pays the probe compiles, so warm it
	// before timing — the sweep measures the steady state the service
	// cache lives in.
	sizes := []int64{8, 14, 20, 26, 32, 38, 44}
	if _, err := tmpl.Program(map[string]int64{"n": sizes[0]}); err != nil {
		return Experiment{}, fmt.Errorf("%s: warm n=%d: %w", name, sizes[0], err)
	}
	// Instantiations are microseconds, so a handful of samples sits at
	// the mercy of GC pacing; sample densely (still millisecond-scale
	// in total) so the minimum is a faithful noise floor.
	instIters := iters * 5
	if instIters < 25 {
		instIters = 25
	}
	var prog *warp.Program
	var instWall *Wall
	for _, n := range sizes {
		bounds := map[string]int64{"n": n}
		if err := tmpl.Check(bounds); err != nil {
			return Experiment{}, fmt.Errorf("%s: %w", name, err)
		}
		durs := make([]time.Duration, instIters)
		var p *warp.Program
		for i := 0; i < instIters; i++ {
			start := time.Now()
			p, err = tmpl.Program(bounds)
			durs[i] = time.Since(start)
			if err != nil {
				return Experiment{}, fmt.Errorf("%s: n=%d: %w", name, n, err)
			}
		}
		if n == refSize {
			prog, instWall = p, wallStats(durs)
		}
	}
	conc := workloads.Matmul(int(refSize))
	durs := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		_, err = warp.Compile(conc, opts)
		durs[i] = time.Since(start)
		if err != nil {
			return Experiment{}, fmt.Errorf("%s: concrete n=%d: %w", name, refSize, err)
		}
	}
	coldWall := wallStats(durs)
	modeled, err := tmpl.ModeledCycles(map[string]int64{"n": refSize})
	if err != nil {
		return Experiment{}, fmt.Errorf("%s: modeled cycles: %w", name, err)
	}
	m := prog.Metrics()
	ex := Experiment{
		Name: name, Kind: "symbolic",
		Cells: m.Cells, Skew: m.Skew, W2Lines: m.W2Lines,
		CellUcode: m.CellInstrs, IUUcode: m.IUInstrs,
		Cycles: modeled, Sizes: len(sizes),
		Wall: instWall, CompileWall: coldWall,
	}
	// Like runFastexec, the gated ratio uses the per-side minima: both
	// operands' minima approximate their noise floors, so GC pacing or
	// a load spike during one sample cannot push the ratio through the
	// floor spuriously.
	if instWall.MinNS > 0 {
		ex.Speedup = float64(coldWall.MinNS) / float64(instWall.MinNS)
	}
	return ex, nil
}

// CompileDriftFactor is the growth factor past which a compile phase's
// median wall time draws a warning naming the phase.  Wall times vary
// with the host, so 2× keeps the signal above cross-machine noise.
const CompileDriftFactor = 2.0

// CompilePhaseFloorNS exempts microsecond-scale phases from per-phase
// gating: below this both ratios are dominated by timer granularity
// and cache state, so a drift ratio carries no signal.  A genuine
// superlinear blowup in a tiny phase crosses the floor within a
// release or two and is gated then.
const CompilePhaseFloorNS = 1_000_000 // 1ms

// PredictionErrorWarnFactor is the cost-model prediction error (the
// larger of predicted/actual and actual/predicted wall time) past which
// the gate warns: the backend chooser is running on a model that no
// longer resembles this host, so its sim-vs-fast picks may be wrong.
// Fresh-only and advisory — wall predictions are host-specific, so they
// never hard-fail against a baseline recorded elsewhere.
const PredictionErrorWarnFactor = 3.0

// FastexecSpeedupFloor is the minimum wall speedup the fast dataflow
// executor must hold over the cycle-accurate simulator on the fastexec
// experiment.  Unlike other wall metrics this one IS gated hard: both
// backends run the same program on the same host in the same process,
// so the ratio cancels host speed and a collapse below the floor means
// the fast path itself degraded (measured margin is ~2× above it).
const FastexecSpeedupFloor = 5.0

// SymbolicSpeedupFloor is the minimum median speedup template
// instantiation must hold over a cold concrete compile of the same
// bound vector on the symbolic experiment.  Gated hard for the same
// reason as FastexecSpeedupFloor: both operands run in-process on the
// same host, so the ratio cancels machine speed and a collapse means
// the instantiation path itself started recompiling (measured margin
// is orders of magnitude above the floor — microseconds of arithmetic
// against milliseconds of scheduling).
const SymbolicSpeedupFloor = 20.0

// Verdict is the outcome of comparing a fresh report to a baseline.
// Regressions fail the gate; warnings are advisory (wall-clock drift,
// improvements awaiting a baseline refresh, coverage changes).
type Verdict struct {
	Regressions []string
	Warnings    []string
}

// OK reports whether the gate passes.
func (v *Verdict) OK() bool { return len(v.Regressions) == 0 }

// Compare gates fresh against base.  Deterministic counters (cycles,
// µcode sizes, fabric tile counts and modeled machine times) changing
// by more than cycleThreshold (a fraction; 0
// means any change) in the regression direction fail; any other
// deterministic change warns so the baseline gets refreshed.  Wall
// medians drifting up by more than wallThreshold warn.
//
// compileThreshold promotes per-phase compile-time drift from warning
// to regression: when > 0, a compile phase whose median wall time grew
// past compileThreshold× the baseline fails the gate; at 0 drift past
// CompileDriftFactor only warns.  Fastexec experiments are gated on
// FastexecSpeedupFloor regardless of thresholds; speedup drift against
// the baseline's ratio stays warn-only like any other wall metric.
func Compare(base, fresh *Report, cycleThreshold, wallThreshold, compileThreshold float64) *Verdict {
	v := &Verdict{}
	baseBy := map[string]*Experiment{}
	for i := range base.Experiments {
		baseBy[base.Experiments[i].Name] = &base.Experiments[i]
	}
	freshNames := map[string]bool{}

	for i := range fresh.Experiments {
		f := &fresh.Experiments[i]
		freshNames[f.Name] = true
		if f.Kind == "fastexec" && f.Speedup < FastexecSpeedupFloor {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: fast-backend speedup %.1fx fell below the %.0fx floor",
					f.Name, f.Speedup, FastexecSpeedupFloor))
		}
		if f.Kind == "symbolic" && f.Speedup < SymbolicSpeedupFloor {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: instantiation speedup %.1fx over a cold compile fell below the %.0fx floor",
					f.Name, f.Speedup, SymbolicSpeedupFloor))
		}
		if d := f.Decision; d != nil {
			if ef := d.ErrorFactor(); ef > PredictionErrorWarnFactor {
				v.Warnings = append(v.Warnings,
					fmt.Sprintf("%s: cost model predicted %s for the %s backend but the run took %s (%.1fx off, warn factor %gx) — recalibrate or revisit the model constants",
						f.Name, time.Duration(d.PredictedWallNS()), d.Backend,
						time.Duration(d.ActualWallNS), ef, PredictionErrorWarnFactor))
			}
		}
		b, ok := baseBy[f.Name]
		if !ok {
			v.Warnings = append(v.Warnings,
				fmt.Sprintf("%s: new experiment (absent from baseline); refresh BENCH_*.json", f.Name))
			continue
		}
		for _, cnt := range []struct {
			field    string
			old, new int64
		}{
			{"cycles", b.Cycles, f.Cycles},
			{"cell µcode", int64(b.CellUcode), int64(f.CellUcode)},
			{"IU µcode", int64(b.IUUcode), int64(f.IUUcode)},
			{"skew", b.Skew, f.Skew},
			{"tiles", int64(b.Tiles), int64(f.Tiles)},
			{"arrays", int64(b.Arrays), int64(f.Arrays)},
			{"aggregate cycles", b.AggCycles, f.AggCycles},
			{"makespan cycles", b.Makespan, f.Makespan},
			{"sweep sizes", int64(b.Sizes), int64(f.Sizes)},
		} {
			if cnt.old == cnt.new {
				continue
			}
			if cnt.old == 0 {
				v.Warnings = append(v.Warnings, fmt.Sprintf("%s: %s appeared (%d); refresh BENCH_*.json",
					f.Name, cnt.field, cnt.new))
				continue
			}
			frac := float64(cnt.new-cnt.old) / float64(cnt.old)
			switch {
			case frac > cycleThreshold:
				v.Regressions = append(v.Regressions,
					fmt.Sprintf("%s: %s regressed %d -> %d (%+.1f%%, threshold %.1f%%)",
						f.Name, cnt.field, cnt.old, cnt.new, 100*frac, 100*cycleThreshold))
			default:
				dir := "improved"
				if frac > 0 {
					dir = "grew"
				}
				v.Warnings = append(v.Warnings,
					fmt.Sprintf("%s: %s %s %d -> %d (%+.1f%%); refresh BENCH_*.json to lock it in",
						f.Name, cnt.field, dir, cnt.old, cnt.new, 100*frac))
			}
		}
		if b.Wall != nil && f.Wall != nil && b.Wall.MedianNS > 0 {
			drift := float64(f.Wall.MedianNS-b.Wall.MedianNS) / float64(b.Wall.MedianNS)
			if drift > wallThreshold {
				v.Warnings = append(v.Warnings,
					fmt.Sprintf("%s: wall median drifted %s -> %s (%+.0f%%) — informational, hosts differ",
						f.Name, time.Duration(b.Wall.MedianNS), time.Duration(f.Wall.MedianNS), 100*drift))
			}
		}
		// Speedup drift relative to the baseline's measured ratio is
		// advisory (the FastexecSpeedupFloor above is the hard gate).
		if f.Kind == "fastexec" && b.Speedup > 0 && f.Speedup < b.Speedup*(1-wallThreshold) {
			v.Warnings = append(v.Warnings,
				fmt.Sprintf("%s: fast-backend speedup drifted %.1fx -> %.1fx — informational while above the %.0fx floor",
					f.Name, b.Speedup, f.Speedup, FastexecSpeedupFloor))
		}
		if f.Kind == "symbolic" && b.Speedup > 0 && f.Speedup < b.Speedup*(1-wallThreshold) {
			v.Warnings = append(v.Warnings,
				fmt.Sprintf("%s: instantiation speedup drifted %.1fx -> %.1fx — informational while above the %.0fx floor",
					f.Name, b.Speedup, f.Speedup, SymbolicSpeedupFloor))
		}
		// Per-phase compile-time drift: a phase whose median wall time
		// grew past CompileDriftFactor× the baseline names itself, so a
		// superlinear scheduler blowup is identified, not just noticed.
		// A positive compileThreshold promotes drift past that factor
		// from warning to hard failure.
		if len(b.CompilePhases) > 0 && len(f.CompilePhases) > 0 {
			basePhase := map[string]int64{}
			for _, ph := range b.CompilePhases {
				basePhase[ph.Name] = ph.MedianNS
			}
			for _, ph := range f.CompilePhases {
				old := basePhase[ph.Name]
				if old <= 0 {
					continue
				}
				ratio := float64(ph.MedianNS) / float64(old)
				switch {
				case old < CompilePhaseFloorNS && ph.MedianNS < CompilePhaseFloorNS:
					// Sub-floor phases are pure scheduler noise: a 3µs
					// phase tripling is a cache miss, not a regression.
					// A real blowup crosses the floor and is caught.
				case compileThreshold > 0 && ratio > compileThreshold:
					v.Regressions = append(v.Regressions,
						fmt.Sprintf("%s: compile phase %q regressed %s -> %s (%.1fx, threshold %gx)",
							f.Name, ph.Name, time.Duration(old), time.Duration(ph.MedianNS), ratio, compileThreshold))
				case ratio > CompileDriftFactor:
					v.Warnings = append(v.Warnings,
						fmt.Sprintf("%s: compile phase %q drifted %s -> %s (>%gx) — check the scheduler counters",
							f.Name, ph.Name, time.Duration(old), time.Duration(ph.MedianNS), CompileDriftFactor))
				}
			}
		}
	}
	for name := range baseBy {
		if !freshNames[name] {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: experiment vanished from the fresh run (coverage loss)", name))
		}
	}
	sort.Strings(v.Regressions)
	sort.Strings(v.Warnings)
	return v
}

package symbolic

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"warp/internal/driver"
	"warp/internal/hostgen"
	"warp/internal/w2"
)

// The host word streams and the IU address table are the two artifacts
// whose *length* varies with the bounds (a 512×512 image workload's
// streams run to millions of words), so they cannot be patched in
// place like the fixed-shape leaves.  Instead each stream is segmented
// into maximal runs — literal repetitions and arithmetic progressions
// over host/table indices — and each run contributes its (start,
// stride, count) as ordinary closed-form leaves.  Regular address
// patterns (row-major array traversals, constant paddings, discard
// gaps) collapse to a handful of runs regardless of size, and
// instantiation re-emits the words with one tight loop per run.
//
// The segmentation is greedy and deterministic, so structurally
// similar streams segment identically at every probe; a stream whose
// run structure shifts with the bounds produces differing skeletons
// and demotes the class to concrete compilation.

// runDef is the structural half of one run: whether it repeats a
// literal word (and which), or walks an index progression.
type runDef struct {
	lit    bool
	litVal float64
}

// streamDef is the structural half of one stream: its identity plus
// the run sequence.  The numeric half (per-run start/stride/count)
// lives in the class leaf vector.
type streamDef struct {
	kind string // "in", "out", "table"
	ch   w2.Channel
	runs []runDef
}

// selem is one stream element in the common shape the segmenter works
// on: a literal word or an integer value (host index, output index,
// table word).
type selem struct {
	lit bool
	f   float64
	v   int64
}

// segmentStream splits elems into maximal runs, appending each run's
// structure to the skeleton and its numeric parameters to the leaf
// vector.  Literal runs contribute one leaf (count); index runs
// contribute three (start, stride, count).
func segmentStream(name string, elems []selem, sk *strings.Builder, leaves *[]int64) []runDef {
	fmt.Fprintf(sk, "stream %s\n", name)
	var runs []runDef
	for i := 0; i < len(elems); {
		e := elems[i]
		if e.lit {
			j := i + 1
			for j < len(elems) && elems[j].lit && sameFloat(elems[j].f, e.f) {
				j++
			}
			fmt.Fprintf(sk, "run L %s\n", strconv.FormatFloat(e.f, 'x', -1, 64))
			*leaves = append(*leaves, int64(j-i))
			runs = append(runs, runDef{lit: true, litVal: e.f})
			i = j
			continue
		}
		stride := int64(0)
		j := i + 1
		if j < len(elems) && !elems[j].lit {
			stride = elems[j].v - e.v
			j++
			for j < len(elems) && !elems[j].lit && elems[j].v-elems[j-1].v == stride {
				j++
			}
		}
		fmt.Fprintf(sk, "run I\n")
		*leaves = append(*leaves, e.v, stride, int64(j-i))
		runs = append(runs, runDef{})
		i = j
	}
	fmt.Fprintf(sk, "endstream %d\n", len(runs))
	return runs
}

func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// extractStreams segments every variable-length artifact of a compile
// in canonical order, returning the structural stream definitions.
func extractStreams(c *driver.Compiled, sk *strings.Builder, leaves *[]int64) []streamDef {
	var defs []streamDef
	for _, ch := range sortedChans(c.Host.In) {
		elems := make([]selem, len(c.Host.In[ch]))
		for i, word := range c.Host.In[ch] {
			if word.Literal {
				elems[i] = selem{lit: true, f: word.Value}
			} else {
				elems[i] = selem{v: int64(word.Index)}
			}
		}
		runs := segmentStream(fmt.Sprintf("in %s", ch), elems, sk, leaves)
		defs = append(defs, streamDef{kind: "in", ch: ch, runs: runs})
	}
	for _, ch := range sortedChans(c.Host.Out) {
		elems := make([]selem, len(c.Host.Out[ch]))
		for i, idx := range c.Host.Out[ch] {
			elems[i] = selem{v: int64(idx)}
		}
		runs := segmentStream(fmt.Sprintf("out %s", ch), elems, sk, leaves)
		defs = append(defs, streamDef{kind: "out", ch: ch, runs: runs})
	}
	elems := make([]selem, len(c.IU.Table))
	for i, v := range c.IU.Table {
		elems[i] = selem{v: v}
	}
	runs := segmentStream("table", elems, sk, leaves)
	defs = append(defs, streamDef{kind: "table", runs: runs})
	return defs
}

// emitStreams re-materializes the host program and IU table from the
// stream definitions and the evaluated leaf values, consuming vals in
// the same order extractStreams appended them.  Slices are sized
// exactly up front, so emission is one append-free loop per run.
func emitStreams(c *driver.Compiled, defs []streamDef, vals []int64, pos int) (int, error) {
	c.Host = &hostgen.Program{
		In:  map[w2.Channel][]hostgen.Word{},
		Out: map[w2.Channel][]int{},
	}
	for _, def := range defs {
		// First pass over this stream's leaves: total length.
		total, p := int64(0), pos
		for _, r := range def.runs {
			if !r.lit {
				p += 2
			}
			count := vals[p]
			p++
			if count < 0 {
				return 0, fmt.Errorf("negative run count %d in stream %s %s", count, def.kind, def.ch)
			}
			total += count
		}
		switch def.kind {
		case "in":
			words := make([]hostgen.Word, total)
			w := words
			for _, r := range def.runs {
				if r.lit {
					count := vals[pos]
					pos++
					fill := hostgen.Word{Literal: true, Value: r.litVal}
					for k := int64(0); k < count; k++ {
						w[k] = fill
					}
					w = w[count:]
					continue
				}
				start, stride, count := vals[pos], vals[pos+1], vals[pos+2]
				pos += 3
				for k := int64(0); k < count; k++ {
					w[k] = hostgen.Word{Index: int(start + k*stride)}
				}
				w = w[count:]
			}
			c.Host.In[def.ch] = words
		case "out":
			out := make([]int, total)
			w := out
			for _, r := range def.runs {
				if r.lit {
					return 0, fmt.Errorf("literal run in output stream %s", def.ch)
				}
				start, stride, count := vals[pos], vals[pos+1], vals[pos+2]
				pos += 3
				for k := int64(0); k < count; k++ {
					w[k] = int(start + k*stride)
				}
				w = w[count:]
			}
			c.Host.Out[def.ch] = out
		case "table":
			table := make([]int64, total)
			w := table
			for _, r := range def.runs {
				if r.lit {
					return 0, fmt.Errorf("literal run in IU table")
				}
				start, stride, count := vals[pos], vals[pos+1], vals[pos+2]
				pos += 3
				for k := int64(0); k < count; k++ {
					w[k] = start + k*stride
				}
				w = w[count:]
			}
			c.IU.Table = table
		}
	}
	return pos, nil
}

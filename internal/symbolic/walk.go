package symbolic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"warp/internal/driver"
	"warp/internal/mcode"
	"warp/internal/w2"
)

// walker is the single canonical traversal of a compiled artifact.  It
// runs in two modes over the same code path, which is what makes the
// template sound: the leaves are extracted (read mode, during class
// construction) and patched (write mode, during instantiation) in
// exactly the same order, so a value can never be written back into a
// different slot than it was fitted from.
//
// Read mode additionally renders every structural atom — opcodes,
// registers, channels, loop identities, strings, floats — into the
// skeleton string.  Two probe compiles belong to the same class iff
// their skeletons are byte-equal; any structural drift across the grid
// (a different unroll factor, an extra remainder loop, a shifted
// schedule) makes the skeletons differ and demotes the class to
// concrete compilation.
type walker struct {
	read bool

	// Read mode: skeleton under construction and extracted leaves.
	sk     strings.Builder
	leaves []int64

	// Write mode: the values to patch in, consumed in walk order.
	vals []int64
	pos  int
	err  error

	// Symbols are deduplicated: the first visit in walk order carries
	// the symbol's numeric fields, later visits only its identity.
	seen map[*w2.Symbol]bool
}

// num visits one numeric leaf: read mode records v, write mode returns
// the patched value.  Callers assign the result back.
func (w *walker) num(v int64) int64 {
	if w.read {
		w.leaves = append(w.leaves, v)
		return v
	}
	if w.pos >= len(w.vals) {
		w.fail("leaf underflow")
		return v
	}
	x := w.vals[w.pos]
	w.pos++
	return x
}

func (w *walker) numInt(v int) int { return int(w.num(int64(v))) }

// s records one structural atom into the skeleton (read mode only).
func (w *walker) s(format string, args ...any) {
	if w.read {
		fmt.Fprintf(&w.sk, format, args...)
		w.sk.WriteByte('\n')
	}
}

// f records a float structurally, bit-exactly: a float that varies
// across probes changes the skeleton and rejects the class (literal
// values are not interpolated).
func (w *walker) f(v float64) {
	if w.read {
		w.sk.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		w.sk.WriteByte('\n')
	}
}

func (w *walker) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("symbolic: "+format, args...)
	}
}

// walkCompiled traverses every fixed-shape numeric leaf of a compiled
// artifact.  Variable-length artifacts — the host word streams and the
// IU address table — are handled by the stream fitter instead
// (streams.go); everything else a consumer or driver.Fingerprint can
// observe is visited here.
func walkCompiled(c *driver.Compiled, w *walker) {
	w.s("module=%q cellid=%q backoff=%v reason=%q",
		c.Module.Name, c.Module.Cells.CellID, c.PipelineBackoff, c.BackoffReason)
	c.Cells = w.numInt(c.Cells)
	c.Module.Cells.First = w.numInt(c.Module.Cells.First)
	c.Module.Cells.Last = w.numInt(c.Module.Cells.Last)
	c.Skew = w.num(c.Skew)
	c.W2Lines = w.numInt(c.W2Lines)

	// Host symbol table (memory layout).
	w.s("hostsyms=%d", len(c.Info.HostSyms))
	for _, sym := range c.Info.HostSyms {
		w.sym(sym)
	}
	c.Info.HostSize = w.numInt(c.Info.HostSize)
	c.Info.CellMemSize = w.numInt(c.Info.CellMemSize)

	// Optimizer counters.
	c.OptStats.CSE = w.numInt(c.OptStats.CSE)
	c.OptStats.Folded = w.numInt(c.OptStats.Folded)
	c.OptStats.Idempotent = w.numInt(c.OptStats.Idempotent)
	c.OptStats.Rebalanced = w.numInt(c.OptStats.Rebalanced)
	c.OptStats.Dead = w.numInt(c.OptStats.Dead)

	w.cellItems(c.Cell.Items)
	w.iuItems(c.IU.Items)

	c.IUGen.Prologue = w.num(c.IUGen.Prologue)
	c.IUGen.AddrRegs = w.numInt(c.IUGen.AddrRegs)
	c.IUGen.Spilled = w.numInt(c.IUGen.Spilled)
	c.IUGen.TableEntries = w.numInt(c.IUGen.TableEntries)

	// Proven queue occupancy, in canonical channel order.
	for _, ch := range sortedChans(c.QueueOcc) {
		w.s("occ %s", ch)
		c.QueueOcc[ch] = w.num(c.QueueOcc[ch])
	}

	// Scheduler introspection counters (wall-clock NS fields are
	// measurements, not outputs; they keep the class-base values).
	w.s("schedloops=%d", len(c.Sched.Loops))
	for i := range c.Sched.Loops {
		l := &c.Sched.Loops[i]
		w.s("loopsched %q @%d pipelined=%v reason=%q", l.Loop, l.Line, l.Pipelined, l.Reason)
		l.Trips = w.num(l.Trips)
		l.MII = w.numInt(l.MII)
		l.II = w.numInt(l.II)
		l.Attempts = w.numInt(l.Attempts)
		l.Placements = w.num(l.Placements)
		l.Evictions = w.num(l.Evictions)
		l.EmitRejects = w.numInt(l.EmitRejects)
	}
	w.s("skewsearches=%d", len(c.Sched.Skews))
	for i := range c.Sched.Skews {
		k := &c.Sched.Skews[i]
		w.s("skewsearch %q method=%q", k.Channel, k.Method)
		k.Ops = w.num(k.Ops)
		k.Pairs = w.num(k.Pairs)
		k.Pruned = w.num(k.Pruned)
		k.Skew = w.num(k.Skew)
	}

	w.s("verified=%v", c.Verified != nil)
	if rep := c.Verified; rep != nil {
		rep.Cells = w.numInt(rep.Cells)
		rep.Skew = w.num(rep.Skew)
		rep.Lead = w.num(rep.Lead)
		rep.Checked = w.numInt(rep.Checked)
		rep.MemRefs = w.num(rep.MemRefs)
		rep.Signals = w.num(rep.Signals)
		for _, ch := range sortedChans(rep.Sends) {
			w.s("sends %s", ch)
			rep.Sends[ch] = w.num(rep.Sends[ch])
		}
		for _, ch := range sortedChans(rep.Recvs) {
			w.s("recvs %s", ch)
			rep.Recvs[ch] = w.num(rep.Recvs[ch])
		}
		for _, ch := range sortedChans(rep.Data) {
			occ := rep.Data[ch]
			w.s("vocc %s method=%q", ch, occ.Method)
			occ.Max = w.num(occ.Max)
			rep.Data[ch] = occ
		}
		w.s("adr method=%q sig method=%q", rep.Adr.Method, rep.Sig.Method)
		rep.Adr.Max = w.num(rep.Adr.Max)
		rep.Sig.Max = w.num(rep.Sig.Max)
	}
}

func (w *walker) sym(s *w2.Symbol) {
	if s == nil {
		w.s("sym nil")
		return
	}
	if w.seen[s] {
		w.s("sym ref %q", s.Name)
		return
	}
	w.seen[s] = true
	w.s("sym %q kind=%d out=%v base=%d dims=%d", s.Name, s.Kind, s.Out, s.Type.Base, len(s.Type.Dims))
	s.Base = w.numInt(s.Base)
	for i := range s.Type.Dims {
		s.Type.Dims[i] = w.numInt(s.Type.Dims[i])
	}
}

// addr visits one address descriptor: base offset, affine coefficients
// and software-pipelining deltas are leaves; the symbol identity, the
// loop each term scales and the term order are structure.
func (w *walker) addr(a *mcode.AddrInfo) {
	w.sym(a.Sym)
	a.Base = w.numInt(a.Base)
	a.Affine.Const = w.num(a.Affine.Const)
	w.s("terms=%d", len(a.Affine.Terms))
	for i := range a.Affine.Terms {
		t := &a.Affine.Terms[i]
		w.s("term %q @%d", t.Var.Var, t.Var.Pos.Line)
		t.Coef = w.num(t.Coef)
	}
	for _, loop := range sortedLoops(a.Delta) {
		w.s("delta %q @%d", loop.Var, loop.Pos.Line)
		a.Delta[loop] = w.num(a.Delta[loop])
	}
}

func (w *walker) cellItems(items []mcode.CodeItem) {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			w.s("straight=%d", len(it.Instrs))
			for _, in := range it.Instrs {
				w.instr(in)
			}
		case *mcode.LoopItem:
			loopVar, loopLine := "", 0
			if it.Src != nil {
				loopVar, loopLine = it.Src.Var, it.Src.Pos.Line
			}
			w.s("loop L%d %q @%d", it.ID, loopVar, loopLine)
			it.Trips = w.num(it.Trips)
			it.First = w.num(it.First)
			it.Step = w.num(it.Step)
			w.cellItems(it.Body)
			w.s("endloop L%d", it.ID)
		default:
			w.fail("unknown cell code item %T", it)
		}
	}
}

func (w *walker) instr(in *mcode.Instr) {
	w.s("@%d", in.Pos.Line)
	for _, alu := range []*mcode.AluOp{in.Add, in.Mul, in.Mov} {
		if alu == nil {
			w.s("alu nil")
			continue
		}
		w.s("alu %s %s %s %s %s", alu.Code, alu.Dst, alu.Src[0], alu.Src[1], alu.Src[2])
	}
	for _, m := range in.Mem {
		if m == nil {
			w.s("mem nil")
			continue
		}
		w.s("mem store=%v %s", m.Store, m.Reg)
		w.addr(&m.Addr)
	}
	w.s("io=%d", len(in.IO))
	for _, io := range in.IO {
		w.s("io recv=%v %s %s %s ext=%v", io.Recv, io.Dir, io.Chan, io.Reg, io.Ext != nil)
		if io.Ext != nil {
			w.addr(io.Ext)
		}
		if io.ExtLiteral != nil {
			w.f(*io.ExtLiteral)
		} else {
			w.s("extlit nil")
		}
		for _, loop := range sortedLoops(io.Delta) {
			w.s("iodelta %q @%d", loop.Var, loop.Pos.Line)
			io.Delta[loop] = w.num(io.Delta[loop])
		}
	}
	if in.Lit != nil {
		w.s("lit %s", in.Lit.Dst)
		w.f(in.Lit.Value)
	} else {
		w.s("lit nil")
	}
}

func (w *walker) iuItems(items []mcode.IUItem) {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.IUStraight:
			w.s("iustraight=%d", len(it.Instrs))
			for _, in := range it.Instrs {
				w.iuInstr(in)
			}
		case *mcode.IULoop:
			w.s("iuloop L%d", it.ID)
			it.Trips = w.num(it.Trips)
			w.iuItems(it.Body)
			w.s("endiuloop L%d", it.ID)
		default:
			w.fail("unknown IU code item %T", it)
		}
	}
}

func (w *walker) iuInstr(in *mcode.IUInstr) {
	if in.Alu != nil {
		w.s("iualu sub=%v %s %s %s imm=%v", in.Alu.Sub, in.Alu.Dst, in.Alu.A, in.Alu.B, in.Alu.BIsImm)
		in.Alu.ImmVal = w.num(in.Alu.ImmVal)
	} else {
		w.s("iualu nil")
	}
	if in.Imm != nil {
		w.s("iuimm %s", in.Imm.Dst)
		in.Imm.Value = w.num(in.Imm.Value)
	} else {
		w.s("iuimm nil")
	}
	for _, o := range in.Out {
		if o == nil {
			w.s("iuout nil")
			continue
		}
		w.s("iuout table=%v %s", o.FromTable, o.Src)
	}
	if sig := in.Sig; sig != nil {
		// The unroll factor M and the copy index are the class
		// structure itself (they set the residue period); only the
		// cell trip count a dynamic signal compares against is a leaf.
		w.s("iusig L%d static=%v cont=%v copy=%d m=%d", sig.LoopID, sig.Static, sig.Continue, sig.Copy, sig.M)
		if !sig.Static {
			sig.CellTrips = w.num(sig.CellTrips)
		}
	} else {
		w.s("iusig nil")
	}
	w.s("ctr=%v", in.CtrWork)
}

func sortedChans[V any](m map[w2.Channel]V) []w2.Channel {
	chans := make([]w2.Channel, 0, len(m))
	for ch := range m {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
	return chans
}

// sortedLoops orders a delta map's loop keys by source identity (line,
// then variable name), which is probe-independent: column positions can
// shift when substituted literals change width, so they are never used.
func sortedLoops(m map[*w2.ForStmt]int64) []*w2.ForStmt {
	if len(m) == 0 {
		return nil
	}
	loops := make([]*w2.ForStmt, 0, len(m))
	for l := range m {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Pos.Line != loops[j].Pos.Line {
			return loops[i].Pos.Line < loops[j].Pos.Line
		}
		return loops[i].Var < loops[j].Var
	})
	return loops
}

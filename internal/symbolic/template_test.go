package symbolic

import (
	"fmt"
	"strings"
	"testing"

	"warp/internal/driver"
	"warp/internal/workloads"
)

// symWorkloads pairs each symbolic workload with its concrete
// generator and a sweep of bound vectors (the first is the class base;
// later ones must hit the fitted class).
type symCase struct {
	name   string
	src    string
	sweep  []map[string]int64
	concAt func(b map[string]int64) string
}

func symCases() []symCase {
	matmulSweep := []map[string]int64{}
	for n := int64(8); n <= 44; n += 6 {
		matmulSweep = append(matmulSweep, map[string]int64{"n": n})
	}
	convSweep := []map[string]int64{}
	for n := int64(32); n <= 128; n += 24 {
		convSweep = append(convSweep, map[string]int64{"k": 5, "n": n})
	}
	polySweep := []map[string]int64{}
	for np := int64(40); np <= 160; np += 40 {
		polySweep = append(polySweep, map[string]int64{"ncoef": 8, "npoints": np})
	}
	return []symCase{
		{
			name: "matmul", src: workloads.MatmulSym(), sweep: matmulSweep,
			concAt: func(b map[string]int64) string { return workloads.Matmul(int(b["n"])) },
		},
		{
			name: "conv1d", src: workloads.Conv1DSym(), sweep: convSweep,
			concAt: func(b map[string]int64) string { return workloads.Conv1D(int(b["k"]), int(b["n"])) },
		},
		{
			name: "polynomial", src: workloads.PolynomialSym(), sweep: polySweep,
			concAt: func(b map[string]int64) string {
				return workloads.Polynomial(int(b["ncoef"]), int(b["npoints"]))
			},
		},
	}
}

// TestSymbolicSourceMatchesGenerators pins the substitution contract:
// the symbolic workload sources reproduce their concrete generators
// byte for byte, so templates and generator-driven tools compile the
// same programs.
func TestSymbolicSourceMatchesGenerators(t *testing.T) {
	for _, tc := range symCases() {
		src, err := ParseSource(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, bounds := range tc.sweep {
			conc, err := src.Concrete(bounds)
			if err != nil {
				t.Fatalf("%s %v: %v", tc.name, bounds, err)
			}
			if want := tc.concAt(bounds); conc != want {
				t.Fatalf("%s %v: substituted source differs from generator output", tc.name, bounds)
			}
		}
	}
}

// TestInstantiateMatchesConcrete is the core differential contract of
// the subsystem: across the workload sweep, plain and pipelined, every
// instantiated artifact must carry the same fingerprint as a cold
// compile of the substituted source.  In plain mode every sweep point
// must additionally be served symbolically (conv1d exercises axis
// pinning: its k axis saturates a verifier statistic, so the class
// pins k and interpolates along n).  In pipelined mode the modulo
// scheduler's placements shift with the concrete sizes, so only the
// class base replays symbolically (as a point class) and the rest must
// fall back — detected by the skeleton check, never by a consumer.
func TestInstantiateMatchesConcrete(t *testing.T) {
	cases := symCases()
	if testing.Short() {
		for i := range cases {
			cases[i].sweep = cases[i].sweep[:2]
		}
	}
	for _, tc := range cases {
		for _, pipe := range []bool{false, true} {
			mode := "plain"
			if pipe {
				mode = "pipelined"
			}
			tc := tc
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				opts := driver.Options{Pipeline: pipe, Verify: true}
				tmpl, err := CompileTemplate(tc.src, opts)
				if err != nil {
					t.Fatal(err)
				}
				symbolicHits := 0
				for _, bounds := range tc.sweep {
					inst, detail, err := tmpl.InstantiateObserved(bounds, nil)
					if err != nil {
						t.Fatalf("instantiate %v: %v", bounds, err)
					}
					conc, err := driver.Compile(tc.concAt(bounds), opts)
					if err != nil {
						t.Fatalf("concrete compile %v: %v", bounds, err)
					}
					got, want := driver.Fingerprint(inst), driver.Fingerprint(conc)
					if got != want {
						t.Errorf("%v (symbolic=%v): instantiated artifact diverged:\n%s",
							bounds, detail.Symbolic, firstDiff(want, got))
					}
					if detail.Symbolic {
						symbolicHits++
					}
				}
				if !pipe && symbolicHits < len(tc.sweep) {
					t.Errorf("only %d/%d sweep points served symbolically (want all: the sweep is one residue class)",
						symbolicHits, len(tc.sweep))
				}
				if pipe && symbolicHits < 1 {
					t.Error("pipelined class base not served symbolically (point class expected)")
				}
				if st := tmpl.Stats(); st.Instantiations != int64(symbolicHits) || st.ClassBuilds == 0 {
					t.Errorf("stats %+v inconsistent with %d symbolic hits", st, symbolicHits)
				}
			})
		}
	}
}

// TestInstantiateRunsIdentically closes the loop end to end: an
// instantiated matmul must simulate to the same outputs and cycle
// count as its cold-compiled twin, on both backends.
func TestInstantiateRunsIdentically(t *testing.T) {
	tmpl, err := CompileTemplate(workloads.MatmulSym(), driver.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	if _, err := tmpl.Instantiate(map[string]int64{"n": 8}); err != nil {
		t.Fatal(err)
	}
	inst, detail, err := tmpl.InstantiateObserved(map[string]int64{"n": n}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !detail.Symbolic {
		t.Fatalf("n=%d not served symbolically: %s", n, detail.FallbackReason)
	}
	conc, err := driver.Compile(workloads.Matmul(n), driver.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%5) - 2
	}
	inputs := map[string][]float64{"a": a, "bmat": b}
	for _, backend := range []string{driver.BackendSim, driver.BackendFast} {
		iOut, iStats, err := driver.RunWith(inst, inputs, driver.RunOptions{Backend: backend})
		if err != nil {
			t.Fatalf("%s: run instantiated: %v", backend, err)
		}
		cOut, cStats, err := driver.RunWith(conc, inputs, driver.RunOptions{Backend: backend})
		if err != nil {
			t.Fatalf("%s: run concrete: %v", backend, err)
		}
		if iStats.Cycles != cStats.Cycles {
			t.Errorf("%s: %d cycles instantiated, %d concrete", backend, iStats.Cycles, cStats.Cycles)
		}
		want := workloads.MatmulRef(a, b, n)
		for i, v := range iOut["c"] {
			if v != cOut["c"][i] || v != want[i] {
				t.Fatalf("%s: c[%d] = %g (concrete %g, reference %g)", backend, i, v, cOut["c"][i], want[i])
			}
		}
	}
	if inst.ModeledCycles() != conc.ModeledCycles() {
		t.Errorf("modeled cycles %d != concrete %d", inst.ModeledCycles(), conc.ModeledCycles())
	}
}

// TestOffLatticeFallsBack: bounds below a class base fall back to a
// concrete compile — transparently, and still fingerprint-identical to
// a cold compile — while bounds in a different residue class get their
// own class fitted on demand.  (Matmul's discovered period is 6: its
// IU distribution loop unrolls.)
func TestOffLatticeFallsBack(t *testing.T) {
	tmpl, err := CompileTemplate(workloads.MatmulSym(), driver.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tmpl.InstantiateObserved(map[string]int64{"n": 16}, nil); err != nil {
		t.Fatal(err)
	}
	// n=10 ≡ 16 (mod 6): same class, below its base — must fall back.
	inst, detail, err := tmpl.InstantiateObserved(map[string]int64{"n": 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Symbolic {
		t.Fatal("n=10 (below the class base) unexpectedly served symbolically")
	}
	conc, err := driver.Compile(workloads.Matmul(10), driver.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if driver.Fingerprint(inst) != driver.Fingerprint(conc) {
		t.Error("n=10: fallback artifact differs from cold compile")
	}
	// n=9 ≢ 16 (mod 6): a new residue class, fitted on first request.
	inst, detail, err = tmpl.InstantiateObserved(map[string]int64{"n": 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !detail.Symbolic || !detail.ClassBuilt {
		t.Fatalf("n=9 should fit its own residue class (detail %+v)", detail)
	}
	conc, err = driver.Compile(workloads.Matmul(9), driver.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if driver.Fingerprint(inst) != driver.Fingerprint(conc) {
		t.Error("n=9: new-class artifact differs from cold compile")
	}
	if st := tmpl.Stats(); st.Fallbacks != 1 || st.ClassBuilds != 2 {
		t.Errorf("stats %+v, want 1 fallback and 2 class builds", st)
	}
}

// TestBoundsValidation: missing and unknown parameters fail loudly.
func TestBoundsValidation(t *testing.T) {
	tmpl, err := CompileTemplate(workloads.MatmulSym(), driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tmpl.Params(); len(got) != 1 || got[0] != "n" {
		t.Fatalf("Params() = %v, want [n]", got)
	}
	if _, err := tmpl.Instantiate(nil); err == nil || !strings.Contains(err.Error(), "missing bound") {
		t.Errorf("missing bound: err = %v", err)
	}
	if _, err := tmpl.Instantiate(map[string]int64{"n": 8, "m": 3}); err == nil || !strings.Contains(err.Error(), "not a template parameter") {
		t.Errorf("unknown bound: err = %v", err)
	}
	if _, err := CompileTemplate("module m (a in)\n", driver.Options{}); err == nil {
		t.Error("CompileTemplate accepted source with no placeholders")
	}
}

// firstDiff mirrors the driver equivalence harness's failure rendering.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  concrete:     %q\n  instantiated: %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: concrete %d lines, instantiated %d lines", len(wl), len(gl))
}

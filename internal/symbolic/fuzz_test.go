package symbolic

import (
	"math/rand"
	"testing"

	"warp/internal/driver"
	"warp/internal/workloads"
)

// FuzzSymbolicInstantiation is the differential fuzzer for the symbolic
// compile path, alongside the driver's FuzzCompileParallel: a random
// (workload family, compile mode, bound vector) triple — including
// degenerate, below-base and off-lattice bounds — must behave exactly
// like a concrete compile of the substituted source.  Accepted bounds
// must produce fingerprint-identical artifacts whether they were served
// from closed forms or by fallback, and rejected bounds must be
// rejected by both paths.  Templates are shared across executions via
// the process registry, so class state accumulated by earlier inputs is
// itself under test.  The seed corpus runs as a regular test; explore
// with `go test -fuzz=FuzzSymbolicInstantiation ./internal/symbolic`.
func FuzzSymbolicInstantiation(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		var src string
		bounds := map[string]int64{}
		switch rng.Intn(3) {
		case 0:
			src = workloads.MatmulSym()
			bounds["n"] = int64(rng.Intn(40)) // 0 and 1 included: degenerate sizes must reject identically
		case 1:
			src = workloads.Conv1DSym()
			bounds["k"] = int64(rng.Intn(14))
			bounds["n"] = int64(rng.Intn(96))
		default:
			src = workloads.PolynomialSym()
			bounds["ncoef"] = int64(rng.Intn(14))
			bounds["npoints"] = int64(rng.Intn(80))
		}
		opts := driver.Options{Pipeline: rng.Intn(2) == 1, Verify: true}

		tmpl, err := SharedTemplate(src, opts)
		if err != nil {
			t.Fatalf("template build: %v\n%s", err, src)
		}
		conc, cerr := tmpl.Source.Concrete(bounds)
		if cerr != nil {
			t.Fatalf("bound substitution: %v", cerr)
		}

		inst, ierr := tmpl.Instantiate(bounds)
		ref, rerr := driver.Compile(conc, opts)
		if (ierr == nil) != (rerr == nil) {
			t.Fatalf("acceptance diverged at %v (pipeline=%v): template says %v, concrete says %v",
				bounds, opts.Pipeline, ierr, rerr)
		}
		if ierr != nil {
			return
		}
		ifp, rfp := driver.Fingerprint(inst), driver.Fingerprint(ref)
		if ifp != rfp {
			t.Fatalf("artifacts diverged at %v (pipeline=%v):\n%s", bounds, opts.Pipeline, firstDiff(ifp, rfp))
		}
	})
}

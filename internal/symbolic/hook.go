package symbolic

import (
	"fmt"
	"sync"

	"warp/internal/driver"
)

// The driver cannot import this package (the probe compiles run through
// driver.Compile), so symbolic compilation is wired in by registration:
// importing this package routes driver.Options.Symbolic requests here.
func init() {
	driver.RegisterSymbolic(compileSymbolic)
}

// registry caches one Template per (source, compile-options) pair so
// repeated symbolic driver.Compile calls — and fabric tiles sharing a
// kernel family — amortize the probe compiles across the process.
var registry sync.Map // key string -> *registryEntry

type registryEntry struct {
	once sync.Once
	tmpl *Template
	err  error
}

// SharedTemplate returns the process-wide cached template for (src,
// opts), building it on first use.  Options that do not change the
// compiled artifact (Recorder, CompileWorkers) do not split the cache.
func SharedTemplate(src string, opts driver.Options) (*Template, error) {
	opts.Symbolic, opts.Bounds, opts.Recorder = false, nil, nil
	key := fmt.Sprintf("%v|%v|%d|%v|%s", opts.NoOptimize, opts.Pipeline, opts.Cells, opts.Verify, src)
	v, _ := registry.LoadOrStore(key, &registryEntry{})
	e := v.(*registryEntry)
	e.once.Do(func() { e.tmpl, e.err = CompileTemplate(src, opts) })
	return e.tmpl, e.err
}

// compileSymbolic serves driver.Compile calls with Options.Symbolic
// set: instantiate from the shared template when the source is
// parameterized, or compile concretely when it is not (a plain source
// has nothing to instantiate and Bounds must be empty).
func compileSymbolic(src string, opts driver.Options) (*driver.Compiled, error) {
	bounds, rec := opts.Bounds, opts.Recorder
	opts.Symbolic, opts.Bounds = false, nil
	if !IsSymbolic(src) {
		if len(bounds) > 0 {
			return nil, fmt.Errorf("symbolic: bounds given but source has no ${...} parameters")
		}
		return driver.Compile(src, opts)
	}
	tmpl, err := SharedTemplate(src, opts)
	if err != nil {
		return nil, err
	}
	c, _, err := tmpl.InstantiateObserved(bounds, rec)
	return c, err
}

package symbolic

import (
	"testing"

	"warp/internal/driver"
	"warp/internal/workloads"
)

// BenchmarkInstantiateM32 times the hot path the whole subsystem exists
// for: serving one bound vector from an already-fitted template.  The
// class is warmed before the timer so the loop measures pure
// instantiation — evaluate closed forms, clone microcode through the
// arena, emit streams — with zero compiles.  Compare against
// BenchmarkCompileWorkers in internal/driver to see the gap the
// benchgate SymbolicSpeedupFloor pins.
func BenchmarkInstantiateM32(b *testing.B) {
	tmpl, err := CompileTemplate(workloads.MatmulSym(), driver.Options{Verify: true})
	if err != nil {
		b.Fatal(err)
	}
	bounds := map[string]int64{"n": 32}
	if _, err := tmpl.Instantiate(bounds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmpl.Instantiate(bounds); err != nil {
			b.Fatal(err)
		}
	}
}

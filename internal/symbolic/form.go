package symbolic

import "fmt"

// The closed forms a template stores are multivariate polynomials over
// the bound vector, one per numeric leaf of the compiled artifact.
// They are never manipulated symbolically: each class probes the
// concrete compiler on a small tensor grid of bound vectors
//
//	b0 + t·P·e_i,  t = 0..gridSide-1 per parameter,
//
// and stores the mixed Newton forward differences of every leaf over
// that grid.  Because the grid is arithmetic with step P, evaluation at
// any in-class bound vector b reduces to integer t_i = (b_i-b0_i)/P and
//
//	f(t⃗) = Σ_k  Δ^{k⃗} · C(t_1,k_1)·…·C(t_p,k_p)
//
// with binomial weights C(t,k) — exact in int64, no rationals, a few
// multiply-adds per leaf.  A polynomial of per-parameter degree
// ≤ gridSide-1 is reproduced exactly; anything else is caught by the
// held-out self-check probe and demotes the class to concrete
// compilation.
const (
	// gridSide is the number of probe points per parameter: degree ≤ 3
	// per parameter (the compiler's leaves are at most quadratic in a
	// single bound — symbol base offsets like 2n² — but dynamic-op
	// totals in the verifier report reach n³ on matmul-shaped nests,
	// whence cubic).
	gridSide = 4
	// maxParams bounds the probe grid (gridSide^maxParams compiles per
	// class); templates with more parameters fall back to concrete
	// compilation.
	maxParams = 3
	// maxPeriod bounds the residue-class period; a structure whose
	// invariance period (lcm of IU unroll factors and pipelined IIs)
	// exceeds it is not worth templating.
	maxPeriod = 16
)

// gridSize returns gridSide^p.
func gridSize(p int) int {
	n := 1
	for i := 0; i < p; i++ {
		n *= gridSide
	}
	return n
}

// diffGrid converts per-probe leaf values (indexed [probe][leaf],
// row-major over the parameter grid) into per-leaf mixed forward
// differences (indexed [leaf][probe]).  The transform is applied
// in place along one axis at a time.
func diffGrid(values [][]int64, nparams int) [][]int64 {
	if len(values) == 0 {
		return nil
	}
	k := len(values)
	nleaves := len(values[0])
	forms := make([][]int64, nleaves)
	flat := make([]int64, nleaves*k)
	for j := range forms {
		forms[j] = flat[j*k : (j+1)*k]
		for probe := 0; probe < k; probe++ {
			forms[j][probe] = values[probe][j]
		}
	}
	// Forward differences along each axis: with stride s between
	// adjacent points on the axis, each line of gridSide points
	// v0..v3 becomes v0, Δ¹, Δ², Δ³.
	for axis := 0; axis < nparams; axis++ {
		stride := 1
		for a := axis + 1; a < nparams; a++ {
			stride *= gridSide
		}
		for j := range forms {
			g := forms[j]
			for base := 0; base < k; base++ {
				if (base/stride)%gridSide != 0 {
					continue
				}
				for ord := 1; ord < gridSide; ord++ {
					for i := gridSide - 1; i >= ord; i-- {
						g[base+i*stride] -= g[base+(i-1)*stride]
					}
				}
			}
		}
	}
	return forms
}

// weights returns the tensor-product binomial basis C(t_i, k_i) for one
// evaluation point, indexed like the probe grid (row-major over
// parameters).  All t_i must be ≥ 0.
func weights(ts []int64) []int64 {
	per := make([][gridSide]int64, len(ts))
	for i, t := range ts {
		per[i][0] = 1
		per[i][1] = t
		per[i][2] = t * (t - 1) / 2
		per[i][3] = t * (t - 1) * (t - 2) / 6
	}
	k := gridSize(len(ts))
	w := make([]int64, k)
	for idx := 0; idx < k; idx++ {
		prod, rem := int64(1), idx
		for i := len(ts) - 1; i >= 0; i-- {
			prod *= per[i][rem%gridSide]
			rem /= gridSide
		}
		w[idx] = prod
	}
	return w
}

// evalForm evaluates one leaf's difference grid against a weight
// vector from weights().
func evalForm(form, w []int64) int64 {
	var v int64
	for i, d := range form {
		if d != 0 {
			v += d * w[i]
		}
	}
	return v
}

// probeBounds returns the bound vector of probe point idx (row-major
// digit order over the free parameters) for a class based at b0 with
// period p.  Pinned parameters keep their base values.
func probeBounds(free []string, b0 map[string]int64, period int64, idx int) map[string]int64 {
	b := copyBounds(b0)
	rem := idx
	for i := len(free) - 1; i >= 0; i-- {
		b[free[i]] += int64(rem%gridSide) * period
		rem /= gridSide
	}
	return b
}

// ts returns the integer grid coordinates of bounds relative to the
// class base, or an error if the point is off-grid (below the base or
// not on the period lattice) — such points are compiled concretely.
func ts(params []string, b0, bounds map[string]int64, period int64) ([]int64, error) {
	out := make([]int64, len(params))
	for i, p := range params {
		d := bounds[p] - b0[p]
		if d < 0 {
			return nil, fmt.Errorf("bound %s=%d below class base %d", p, bounds[p], b0[p])
		}
		if d%period != 0 {
			return nil, fmt.Errorf("bound %s=%d off the class lattice (base %d, period %d)", p, bounds[p], b0[p], period)
		}
		out[i] = d / period
	}
	return out, nil
}

// Package symbolic is the compile-once, instantiate-per-size subsystem.
//
// A symbolic source is W2 text in which integer positions may be
// written as ${expr} placeholders over named bound parameters — loop
// trip counts, array dimensions, the cell range — e.g.
//
//	float a[${n}][${n}];
//	for i := 0 to ${n-1} do begin ... end;
//
// Substituting a concrete bound vector yields ordinary W2 source.  The
// point of the package is that the substituted programs share one
// schedule structure: following "Symbolic Loop Compilation for Tightly
// Coupled Processor Arrays", the W2 schedule is invariant under the
// loop bounds, and everything that does change with the bounds —
// trip counts, affine address coefficients, host-stream words, the
// proven skew/occupancy/cycle numbers — changes as a closed-form
// function of the bound vector.  A Template captures the structure
// once (a handful of probe compiles through the ordinary driver) and
// then Instantiate evaluates the closed forms in microseconds,
// producing a *driver.Compiled byte-identical (by driver.Fingerprint)
// to a cold compile of the substituted source.
package symbolic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Source is a parsed symbolic source: the raw template text and the
// bound parameters it references, in sorted order.
type Source struct {
	Text   string
	Params []string

	// chunks is the alternation of literal text and placeholder
	// expressions: literal[0] expr[0] literal[1] expr[1] ... literal[n].
	literals []string
	exprs    []*boundExpr
}

// IsSymbolic reports whether text contains at least one ${...}
// placeholder (cheap; does not validate the expressions).
func IsSymbolic(text string) bool { return strings.Contains(text, "${") }

// ParseSource splits template text into literal chunks and placeholder
// expressions.  Placeholder syntax is ${expr} where expr is an integer
// expression over parameter names, integer literals, + - * / and
// parentheses (/ is exact integer division at substitution time).
func ParseSource(text string) (*Source, error) {
	s := &Source{Text: text}
	params := map[string]bool{}
	rest := text
	for {
		i := strings.Index(rest, "${")
		if i < 0 {
			s.literals = append(s.literals, rest)
			break
		}
		j := strings.Index(rest[i:], "}")
		if j < 0 {
			return nil, fmt.Errorf("symbolic: unterminated ${ placeholder")
		}
		exprText := rest[i+2 : i+j]
		e, err := parseBoundExpr(exprText)
		if err != nil {
			return nil, fmt.Errorf("symbolic: placeholder ${%s}: %w", exprText, err)
		}
		s.literals = append(s.literals, rest[:i])
		s.exprs = append(s.exprs, e)
		for _, p := range e.params() {
			params[p] = true
		}
		rest = rest[i+j+1:]
	}
	if len(s.exprs) == 0 {
		return nil, fmt.Errorf("symbolic: source has no ${...} placeholders")
	}
	for p := range params {
		s.Params = append(s.Params, p)
	}
	sort.Strings(s.Params)
	return s, nil
}

// Concrete substitutes a bound vector, returning ordinary W2 source.
// Every template parameter must be present in bounds; extra names are
// rejected so a typo ("m" for "n") fails loudly instead of silently
// compiling the wrong program.
func (s *Source) Concrete(bounds map[string]int64) (string, error) {
	for name := range bounds {
		if !contains(s.Params, name) {
			return "", fmt.Errorf("symbolic: bound %q is not a template parameter (template has %s)",
				name, strings.Join(s.Params, ", "))
		}
	}
	for _, p := range s.Params {
		if _, ok := bounds[p]; !ok {
			return "", fmt.Errorf("symbolic: missing bound for template parameter %q", p)
		}
	}
	var sb strings.Builder
	for i, lit := range s.literals {
		sb.WriteString(lit)
		if i < len(s.exprs) {
			v, err := s.exprs[i].eval(bounds)
			if err != nil {
				return "", err
			}
			sb.WriteString(strconv.FormatInt(v, 10))
		}
	}
	return sb.String(), nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// boundExpr is a parsed placeholder expression tree.
type boundExpr struct {
	op    byte // 0 = leaf
	lit   int64
	param string
	l, r  *boundExpr
}

func (e *boundExpr) params() []string {
	if e == nil {
		return nil
	}
	if e.op == 0 {
		if e.param != "" {
			return []string{e.param}
		}
		return nil
	}
	return append(e.l.params(), e.r.params()...)
}

func (e *boundExpr) eval(bounds map[string]int64) (int64, error) {
	if e.op == 0 {
		if e.param != "" {
			v, ok := bounds[e.param]
			if !ok {
				return 0, fmt.Errorf("symbolic: missing bound %q", e.param)
			}
			return v, nil
		}
		return e.lit, nil
	}
	l, err := e.l.eval(bounds)
	if err != nil {
		return 0, err
	}
	r, err := e.r.eval(bounds)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("symbolic: division by zero in placeholder")
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("symbolic: bad operator %q", e.op)
}

// parseBoundExpr is a tiny precedence-climbing parser for placeholder
// expressions: ident | int | expr (+|-|*|/) expr | (expr) | -expr.
func parseBoundExpr(text string) (*boundExpr, error) {
	p := &exprParser{src: text}
	e, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing %q", p.src[p.pos:])
	}
	return e, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseSum() (*boundExpr, error) {
	l, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		switch c := p.peek(); c {
		case '+', '-':
			p.pos++
			r, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			l = &boundExpr{op: c, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseProduct() (*boundExpr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch c := p.peek(); c {
		case '*', '/':
			p.pos++
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			l = &boundExpr{op: c, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseAtom() (*boundExpr, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing )")
		}
		p.pos++
		return e, nil
	case c == '-':
		p.pos++
		e, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &boundExpr{op: '-', l: &boundExpr{}, r: e}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, err
		}
		return &boundExpr{lit: v}, nil
	case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] == '_' ||
			p.src[p.pos] >= 'a' && p.src[p.pos] <= 'z' ||
			p.src[p.pos] >= 'A' && p.src[p.pos] <= 'Z' ||
			p.src[p.pos] >= '0' && p.src[p.pos] <= '9') {
			p.pos++
		}
		return &boundExpr{param: p.src[start:p.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("empty expression")
	default:
		return nil, fmt.Errorf("unexpected %q", c)
	}
}

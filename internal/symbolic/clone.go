package symbolic

import (
	"warp/internal/cellgen"
	"warp/internal/driver"
	"warp/internal/iugen"
	"warp/internal/mcode"
	"warp/internal/prof"
	"warp/internal/verify"
	"warp/internal/w2"
)

// cloner deep-copies the class-base compilation into a fresh mutable
// artifact for the write-mode walker to patch.  Symbols are cloned once
// and shared (so an address descriptor and the host symbol table keep
// referring to the same object); AST nodes (*w2.ForStmt) are shared
// with the class base outright — the walker treats them as pure
// structure and never writes through them.
//
// The tiny per-field op structs are carved out of chunked arenas
// instead of individual allocations: instantiation is the subsystem's
// whole value proposition, and on instruction-heavy programs the
// hundreds of 16–64 byte clones otherwise dominate its wall time.
// Arena chunks live exactly as long as the instructions pointing into
// them, so ownership is unchanged — each Instantiate still returns a
// fully independent artifact.
type cloner struct {
	syms map[*w2.Symbol]*w2.Symbol

	instrs   []mcode.Instr
	iuInstrs []mcode.IUInstr
	alu      []mcode.AluOp
	mem      []mcode.MemOp
	io       []mcode.IOOp
}

const arenaChunk = 64

func (cl *cloner) aluOp(src *mcode.AluOp) *mcode.AluOp {
	if src == nil {
		return nil
	}
	if len(cl.alu) == 0 {
		cl.alu = make([]mcode.AluOp, arenaChunk)
	}
	op := &cl.alu[0]
	cl.alu = cl.alu[1:]
	*op = *src
	return op
}

func (cl *cloner) memOp(src *mcode.MemOp) *mcode.MemOp {
	if len(cl.mem) == 0 {
		cl.mem = make([]mcode.MemOp, arenaChunk)
	}
	op := &cl.mem[0]
	cl.mem = cl.mem[1:]
	*op = mcode.MemOp{Store: src.Store, Reg: src.Reg, Addr: cl.addr(src.Addr)}
	return op
}

func (cl *cloner) ioOp(src *mcode.IOOp) *mcode.IOOp {
	if len(cl.io) == 0 {
		cl.io = make([]mcode.IOOp, arenaChunk)
	}
	op := &cl.io[0]
	cl.io = cl.io[1:]
	*op = mcode.IOOp{Recv: src.Recv, Dir: src.Dir, Chan: src.Chan, Reg: src.Reg}
	if src.Ext != nil {
		ext := cl.addr(*src.Ext)
		op.Ext = &ext
	}
	if src.ExtLiteral != nil {
		v := *src.ExtLiteral
		op.ExtLiteral = &v
	}
	if src.Delta != nil {
		op.Delta = make(map[*w2.ForStmt]int64, len(src.Delta))
		for l, d := range src.Delta {
			op.Delta[l] = d
		}
	}
	return op
}

// cloneCompiled builds the instantiation skeleton from the class base.
// The variable-length artifacts (host streams, IU table) are left empty
// for the stream emitter; IR and Comm are compile-internal and not
// reproduced; Info carries only what the run path reads (module
// identity, host symbol layout) — the full AST view is rebuilt lazily
// by driver.EnsureFullInfo when the reference interpreter needs it.
func cloneCompiled(b *driver.Compiled) *driver.Compiled {
	cl := &cloner{syms: map[*w2.Symbol]*w2.Symbol{}}
	c := &driver.Compiled{
		Module: &w2.Module{
			Name: b.Module.Name,
			Cells: &w2.CellProgram{
				CellID: b.Module.Cells.CellID,
				First:  b.Module.Cells.First,
				Last:   b.Module.Cells.Last,
			},
		},
		PipelineBackoff: b.PipelineBackoff,
		BackoffReason:   b.BackoffReason,
		OptStats:        b.OptStats,
		Cell:            &mcode.CellProgram{Items: cl.cellItems(b.Cell.Items)},
		IU:              &mcode.IUProgram{Items: cl.iuItems(b.IU.Items)},
		IUGen:           &iugen.Result{},
		Cells:           b.Cells,
		W2Lines:         b.W2Lines,
	}
	*c.IUGen = *b.IUGen
	c.IUGen.IU = c.IU

	c.Info = &w2.Info{
		Module:      c.Module,
		HostSize:    b.Info.HostSize,
		CellMemSize: b.Info.CellMemSize,
	}
	c.Info.HostSyms = make([]*w2.Symbol, len(b.Info.HostSyms))
	for i, s := range b.Info.HostSyms {
		c.Info.HostSyms[i] = cl.sym(s)
	}

	c.QueueOcc = make(map[w2.Channel]int64, len(b.QueueOcc))
	for ch, n := range b.QueueOcc {
		c.QueueOcc[ch] = n
	}

	sched := &prof.SchedProfile{
		Loops: append([]prof.LoopSched(nil), b.Sched.Loops...),
		Skews: append([]prof.SkewSearch(nil), b.Sched.Skews...),
	}
	c.Sched = sched
	c.CellGen = &cellgen.Result{
		Cell:           c.Cell,
		PipelinedLoops: b.CellGen.PipelinedLoops,
		Sched:          sched,
	}

	if b.Verified != nil {
		rep := *b.Verified
		rep.Sends = cloneChanMap(b.Verified.Sends)
		rep.Recvs = cloneChanMap(b.Verified.Recvs)
		rep.Data = make(map[w2.Channel]verify.Occ, len(b.Verified.Data))
		for ch, o := range b.Verified.Data {
			rep.Data[ch] = o
		}
		c.Verified = &rep
	}
	return c
}

func cloneChanMap(m map[w2.Channel]int64) map[w2.Channel]int64 {
	out := make(map[w2.Channel]int64, len(m))
	for ch, v := range m {
		out[ch] = v
	}
	return out
}

func (cl *cloner) sym(s *w2.Symbol) *w2.Symbol {
	if s == nil {
		return nil
	}
	if c, ok := cl.syms[s]; ok {
		return c
	}
	c := &w2.Symbol{Name: s.Name, Kind: s.Kind, Out: s.Out, Base: s.Base}
	c.Type = w2.Type{Base: s.Type.Base, Dims: append([]int(nil), s.Type.Dims...)}
	cl.syms[s] = c
	return c
}

func (cl *cloner) addr(a mcode.AddrInfo) mcode.AddrInfo {
	out := mcode.AddrInfo{
		Sym:  cl.sym(a.Sym),
		Base: a.Base,
		Affine: w2.Affine{
			Const: a.Affine.Const,
			Terms: append([]w2.AffTerm(nil), a.Affine.Terms...),
		},
	}
	if a.Delta != nil {
		out.Delta = make(map[*w2.ForStmt]int64, len(a.Delta))
		for l, d := range a.Delta {
			out.Delta[l] = d
		}
	}
	return out
}

func (cl *cloner) cellItems(items []mcode.CodeItem) []mcode.CodeItem {
	out := make([]mcode.CodeItem, len(items))
	for i, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			slab := make([]mcode.Instr, len(it.Instrs))
			instrs := make([]*mcode.Instr, len(it.Instrs))
			for j, in := range it.Instrs {
				cl.instrInto(&slab[j], in)
				instrs[j] = &slab[j]
			}
			out[i] = &mcode.Straight{Instrs: instrs}
		case *mcode.LoopItem:
			out[i] = &mcode.LoopItem{
				ID: it.ID, Trips: it.Trips, Body: cl.cellItems(it.Body),
				Src: it.Src, First: it.First, Step: it.Step,
			}
		}
	}
	return out
}

func (cl *cloner) instrInto(c *mcode.Instr, in *mcode.Instr) {
	c.Pos, c.PC = in.Pos, in.PC
	c.Add = cl.aluOp(in.Add)
	c.Mul = cl.aluOp(in.Mul)
	c.Mov = cl.aluOp(in.Mov)
	for i, m := range in.Mem {
		if m == nil {
			continue
		}
		c.Mem[i] = cl.memOp(m)
	}
	if len(in.IO) > 0 {
		c.IO = make([]*mcode.IOOp, len(in.IO))
		for i, io := range in.IO {
			c.IO[i] = cl.ioOp(io)
		}
	}
	if in.Lit != nil {
		lit := *in.Lit
		c.Lit = &lit
	}
}

func (cl *cloner) iuItems(items []mcode.IUItem) []mcode.IUItem {
	out := make([]mcode.IUItem, len(items))
	for i, it := range items {
		switch it := it.(type) {
		case *mcode.IUStraight:
			slab := make([]mcode.IUInstr, len(it.Instrs))
			instrs := make([]*mcode.IUInstr, len(it.Instrs))
			for j, in := range it.Instrs {
				cl.iuInstrInto(&slab[j], in)
				instrs[j] = &slab[j]
			}
			out[i] = &mcode.IUStraight{Instrs: instrs}
		case *mcode.IULoop:
			out[i] = &mcode.IULoop{ID: it.ID, Trips: it.Trips, Body: cl.iuItems(it.Body)}
		}
	}
	return out
}

func (cl *cloner) iuInstrInto(c *mcode.IUInstr, in *mcode.IUInstr) {
	c.CtrWork = in.CtrWork
	if in.Alu != nil {
		op := *in.Alu
		c.Alu = &op
	}
	if in.Imm != nil {
		op := *in.Imm
		c.Imm = &op
	}
	for i, o := range in.Out {
		if o == nil {
			continue
		}
		oc := *o
		c.Out[i] = &oc
	}
	if in.Sig != nil {
		sig := *in.Sig
		c.Sig = &sig
	}
}

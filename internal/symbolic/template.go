package symbolic

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"warp/internal/cellgen"
	"warp/internal/driver"
	"warp/internal/mcode"
	"warp/internal/obs"
	"warp/internal/prof"
	"warp/internal/w2"
)

// Template is a symbolically compiled program: one parsed symbolic
// source plus a lazily built set of residue classes, each holding the
// closed-form model for the bound vectors that share one schedule
// structure.  A Template is safe for concurrent use; class
// construction is serialized per class, instantiation is lock-light.
type Template struct {
	Source *Source
	Opts   driver.Options

	mu      sync.Mutex
	period  int64 // 0 = not yet discovered; <0 = template never symbolic
	seed    *seedCompile
	classes map[string]*class

	// Counters (atomic): see Stats.
	instantiations int64
	fallbacks      int64
	classBuilds    int64
	probeCompiles  int64
}

// seedCompile donates the period-discovery compile to the class that
// covers its bounds, so the first request does not pay for it twice.
type seedCompile struct {
	bounds map[string]int64
	c      *driver.Compiled
}

// class is one residue class of the bound lattice, fitted over a
// subset of the parameters: bound vectors that match the pinned
// parameters exactly and sit on the period lattice (at or above the
// base) along the free parameters are interpolated; everything else
// falls back.  The free set is chosen by the build: the widest mask
// whose probe skeletons agree and whose self-checks pass.  A class
// with no free parameters is a point class — an instant replay of its
// base compile.
type class struct {
	once sync.Once
	// err marks the class non-symbolizable (its own base probe failed
	// to compile, or the walker could not extract it); requests then
	// fall back to concrete compilation, reproducing the same outcome.
	err error

	base    *driver.Compiled // probe t⃗=0, the clone source
	b0      map[string]int64
	free    []string  // fitted (interpolated) parameters, sorted
	desc    string    // human-readable class identity
	forms   [][]int64 // per-leaf mixed difference grids
	nWalk   int       // leaves consumed by the fixed-shape walker
	streams []streamDef
	buildNS int64
}

// covers reports whether bounds can be served by this fitted class:
// pinned parameters must match the base exactly, free parameters must
// be on the period lattice at or above the base.
func (cls *class) covers(bounds map[string]int64, period int64) bool {
	freeSet := make(map[string]bool, len(cls.free))
	for _, p := range cls.free {
		freeSet[p] = true
	}
	for p, v0 := range cls.b0 {
		v := bounds[p]
		if !freeSet[p] {
			if v != v0 {
				return false
			}
			continue
		}
		if d := v - v0; d < 0 || d%period != 0 {
			return false
		}
	}
	return true
}

// Stats is a snapshot of the template's lifetime counters.
type Stats struct {
	// Instantiations counts artifacts produced from closed forms.
	Instantiations int64 `json:"instantiations"`
	// Fallbacks counts requests served by a concrete compile instead
	// (off-lattice bounds, non-symbolizable class, limit violation).
	Fallbacks int64 `json:"fallbacks"`
	// ClassBuilds counts residue classes probed and fitted.
	ClassBuilds int64 `json:"class_builds"`
	// ProbeCompiles counts concrete compiles spent building classes.
	ProbeCompiles int64 `json:"probe_compiles"`
}

// Detail reports how one instantiation request was served.
type Detail struct {
	// Symbolic is true when the artifact came from the closed forms
	// (microseconds), false when it fell back to a concrete compile.
	Symbolic bool `json:"symbolic"`
	// ClassBuilt is true when this request paid for the class's probe
	// compiles (the compile-once cost).
	ClassBuilt bool `json:"class_built,omitempty"`
	// Class is the residue-class key.
	Class string `json:"class,omitempty"`
	// FallbackReason says why a non-symbolic request fell back.
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// CompileTemplate parses symbolic source into a Template.  No probe
// compiles run yet: classes are built on first instantiation.
func CompileTemplate(src string, opts driver.Options) (*Template, error) {
	s, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	// Probe compiles are internal (not request events) and concrete.
	opts.Recorder, opts.Symbolic, opts.Bounds = nil, false, nil
	return &Template{Source: s, Opts: opts, classes: map[string]*class{}}, nil
}

// Params returns the template's bound parameters, sorted.
func (t *Template) Params() []string { return t.Source.Params }

// Stats returns a snapshot of the template's counters.
func (t *Template) Stats() Stats {
	return Stats{
		Instantiations: atomic.LoadInt64(&t.instantiations),
		Fallbacks:      atomic.LoadInt64(&t.fallbacks),
		ClassBuilds:    atomic.LoadInt64(&t.classBuilds),
		ProbeCompiles:  atomic.LoadInt64(&t.probeCompiles),
	}
}

// Instantiate produces the concrete compiled artifact for one bound
// vector — byte-identical (by driver.Fingerprint) to
// driver.Compile(t.Source.Concrete(bounds), t.Opts), in microseconds
// when the bounds hit a fitted class.  Bounds the closed forms cannot
// cover are compiled concretely, so acceptance and rejection always
// match the concrete compiler exactly.
func (t *Template) Instantiate(bounds map[string]int64) (*driver.Compiled, error) {
	c, _, err := t.InstantiateObserved(bounds, nil)
	return c, err
}

// Check instantiates bounds and independently compiles the substituted
// source concretely, failing unless the two artifacts are byte-identical
// under driver.Fingerprint.  It is the differential self-test behind
// `w2c -symbolic -check` and the CI sweep script.
func (t *Template) Check(bounds map[string]int64) error {
	inst, detail, err := t.InstantiateObserved(bounds, nil)
	if err != nil {
		return err
	}
	conc, err := t.Source.Concrete(bounds)
	if err != nil {
		return err
	}
	ref, err := driver.Compile(conc, t.Opts)
	if err != nil {
		return fmt.Errorf("symbolic: instantiation accepted %s but concrete compile rejects it: %w",
			boundsString(t.Source.Params, bounds), err)
	}
	if ifp, rfp := driver.Fingerprint(inst), driver.Fingerprint(ref); ifp != rfp {
		return fmt.Errorf("symbolic: artifact mismatch at %s (served %s): instantiated and concrete compiles differ",
			boundsString(t.Source.Params, bounds), serveKind(detail))
	}
	return nil
}

// serveKind renders how a Detail was served, for diagnostics.
func serveKind(d *Detail) string {
	if d != nil && d.Symbolic {
		return "symbolically from class " + d.Class
	}
	return "by concrete fallback"
}

// InstantiateObserved is Instantiate with request observability: the
// template phases ("template-build" when this request builds its
// class, "template-instantiate" or the fallback's compile phases) are
// emitted to rec, and the Detail reports how the request was served.
func (t *Template) InstantiateObserved(bounds map[string]int64, rec obs.Recorder) (*driver.Compiled, *Detail, error) {
	start := time.Now()
	conc, err := t.Source.Concrete(bounds)
	if err != nil {
		return nil, nil, err
	}
	period, seed, reason := t.ensurePeriod(conc, bounds)
	if reason != "" {
		return t.fallback(conc, bounds, rec, reason)
	}

	key := classKey(t.Source.Params, bounds, period)
	t.mu.Lock()
	cls := t.classes[key]
	if cls == nil {
		cls = &class{}
		t.classes[key] = cls
	}
	t.mu.Unlock()

	built := false
	cls.once.Do(func() {
		built = true
		t.buildClass(cls, bounds, period, seed)
	})
	if built && rec != nil {
		obs.RecordPhaseAt(rec, "template-build", 0, float64(cls.buildNS)/1e9, 0,
			gridSize(len(cls.free)), cls.desc)
	}
	if cls.err != nil {
		return t.fallback(conc, bounds, rec, cls.err.Error())
	}
	if !cls.covers(bounds, period) {
		return t.fallback(conc, bounds, rec,
			fmt.Sprintf("bounds %s outside fitted class %s", boundsString(t.Source.Params, bounds), cls.desc))
	}

	c, err := t.instantiateClass(cls, period, bounds, conc)
	if err != nil {
		return t.fallback(conc, bounds, rec, err.Error())
	}
	atomic.AddInt64(&t.instantiations, 1)
	seconds := time.Since(start).Seconds()
	c.Phases = append(c.Phases, obs.PhaseStat{
		Name: "template-instantiate", Seconds: seconds, Size: len(cls.forms), Note: cls.desc,
	})
	obs.RecordPhaseAt(rec, "template-instantiate", 0, seconds, 0, len(cls.forms), cls.desc)
	return c, &Detail{Symbolic: true, ClassBuilt: built, Class: cls.desc}, nil
}

// ModeledCycles evaluates the template's closed-form cycle prediction
// for one bound vector: the modeled total the fast-execution backend
// and progress reporting use, without a concrete compile.
func (t *Template) ModeledCycles(bounds map[string]int64) (int64, error) {
	c, _, err := t.InstantiateObserved(bounds, nil)
	if err != nil {
		return 0, err
	}
	return c.ModeledCycles(), nil
}

// fallback serves a request with a concrete compile.  This is the
// soundness escape hatch: whatever the closed forms cannot express is
// handled — and accepted or rejected — exactly as a cold compile.
func (t *Template) fallback(conc string, bounds map[string]int64, rec obs.Recorder, reason string) (*driver.Compiled, *Detail, error) {
	atomic.AddInt64(&t.fallbacks, 1)
	opts := t.Opts
	opts.Recorder = rec
	c, err := driver.Compile(conc, opts)
	if err != nil {
		return nil, nil, err
	}
	return c, &Detail{Symbolic: false, FallbackReason: reason}, nil
}

func (t *Template) compileProbe(bounds map[string]int64) (*driver.Compiled, error) {
	atomic.AddInt64(&t.probeCompiles, 1)
	conc, err := t.Source.Concrete(bounds)
	if err != nil {
		return nil, err
	}
	return driver.Compile(conc, t.Opts)
}

// ensurePeriod discovers the template's residue period from the first
// concrete compile.  It returns a non-empty reason when the template
// can never be symbolic (too many parameters, oversized period), and
// at most once a seed compile for the discovering bounds.
func (t *Template) ensurePeriod(conc string, bounds map[string]int64) (int64, *seedCompile, string) {
	if len(t.Source.Params) > maxParams {
		return 0, nil, fmt.Sprintf("template has %d parameters (max %d)", len(t.Source.Params), maxParams)
	}
	t.mu.Lock()
	if t.period > 0 {
		p, s := t.period, t.seed
		t.seed = nil
		t.mu.Unlock()
		return p, s, ""
	}
	if t.period < 0 {
		t.mu.Unlock()
		return 0, nil, "structure period exceeds the symbolic limit"
	}
	t.mu.Unlock()

	c, err := driver.Compile(conc, t.Opts)
	if err != nil {
		// Rejection is decided concretely either way; report it
		// directly rather than through the fallback path (which would
		// compile a second time).
		return 0, nil, "discovery: " + err.Error()
	}
	atomic.AddInt64(&t.probeCompiles, 1)
	p := discoverPeriod(c)

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.period == 0 {
		if p > maxPeriod {
			t.period = -1
		} else {
			t.period = p
			t.seed = &seedCompile{bounds: copyBounds(bounds), c: c}
		}
	}
	if t.period < 0 {
		return 0, nil, "structure period exceeds the symbolic limit"
	}
	s := t.seed
	t.seed = nil
	return t.period, s, ""
}

// ensurePeriod's discovery compile can race a concurrent discovery; a
// duplicated compile is accepted (both produce identical artifacts).

// discoverPeriod computes the structure-invariance period of one
// compile: trip counts congruent modulo this period keep the same IU
// unroll remainders and the same software-pipeline epilogue shapes,
// which is exactly when the schedule skeleton can be reused.  It is a
// conjecture about the class, not a proof — the probe-grid skeleton
// comparison and the held-out self-check are what make the template
// sound.
func discoverPeriod(c *driver.Compiled) int64 {
	p := int64(1)
	var walk func(items []mcode.IUItem)
	walk = func(items []mcode.IUItem) {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.IUStraight:
				for _, in := range it.Instrs {
					if in.Sig != nil && !in.Sig.Static && in.Sig.M > 1 {
						p = lcm(p, in.Sig.M)
					}
				}
			case *mcode.IULoop:
				walk(it.Body)
			}
		}
	}
	walk(c.IU.Items)
	for _, l := range c.Sched.Loops {
		if l.Pipelined && l.II > 1 {
			p = lcm(p, int64(l.II))
		}
	}
	return p
}

func lcm(a, b int64) int64 {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

func copyBounds(b map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

func classKey(params []string, bounds map[string]int64, period int64) string {
	var sb strings.Builder
	for _, p := range params {
		r := bounds[p] % period
		if r < 0 {
			r += period
		}
		fmt.Fprintf(&sb, "%s≡%d ", p, r)
	}
	return strings.TrimSpace(sb.String()) + fmt.Sprintf(" (mod %d)", period)
}

// extract runs the read-mode walker and the stream segmenter over one
// probe compile, producing its skeleton, leaf vector and stream
// structure.
func extract(c *driver.Compiled) (string, []int64, int, []streamDef, error) {
	w := &walker{read: true, seen: map[*w2.Symbol]bool{}}
	walkCompiled(c, w)
	if w.err != nil {
		return "", nil, 0, nil, w.err
	}
	nWalk := len(w.leaves)
	defs := extractStreams(c, &w.sk, &w.leaves)
	return w.sk.String(), w.leaves, nWalk, defs, nil
}

// probeData is one extracted probe compile, cached across mask
// attempts within a class build (a narrower mask's grid is a sub-grid
// of a wider one's, so its probes are usually already compiled).
type probeData struct {
	c       *driver.Compiled
	sk      string
	leaves  []int64
	nWalk   int
	streams []streamDef
}

// buildClass fits the class over the widest workable parameter mask.
// Masks are tried from all-free down to all-pinned: for each, the
// probe grid spans only the free parameters (pinned ones keep the base
// values), the skeletons must agree across the grid, and the fitted
// forms must reproduce both the base probe and a held-out probe beyond
// the grid bit for bit.  Structure that varies with a parameter — a
// pipelined schedule whose placement shifts with an address
// coefficient, a verifier statistic that saturates along an axis — is
// detected by those checks and demotes that parameter to pinned.  The
// all-pinned mask (a point class replaying the base compile) always
// fits, so cls.err is set only when the base bounds themselves fail to
// compile or extract.
func (t *Template) buildClass(cls *class, bounds map[string]int64, period int64, seed *seedCompile) {
	buildStart := time.Now()
	defer func() { cls.buildNS = time.Since(buildStart).Nanoseconds() }()
	atomic.AddInt64(&t.classBuilds, 1)
	params := t.Source.Params
	cls.b0 = copyBounds(bounds)

	cache := map[string]*probeData{}
	if seed != nil {
		if pd, err := extractProbe(seed.c); err == nil {
			cache[boundsString(params, seed.bounds)] = pd
		}
	}
	var lastErr error
	for _, mask := range orderedMasks(len(params)) {
		var free []string
		for i, p := range params {
			if mask&(1<<uint(i)) == 0 {
				free = append(free, p)
			}
		}
		if err := t.tryMask(cls, period, free, cache); err != nil {
			lastErr = err
			continue
		}
		cls.free = free
		cls.desc = classDesc(params, free, cls.b0, period)
		return
	}
	cls.err = lastErr
}

// tryMask probes the grid over the free parameters, checks structural
// invariance, fits the forms and validates them.  On success the class
// fields (base, forms, nWalk, streams) are left filled.
func (t *Template) tryMask(cls *class, period int64, free []string, cache map[string]*probeData) error {
	params := t.Source.Params
	k := gridSize(len(free))
	values := make([][]int64, k)
	var first *probeData
	for idx := 0; idx < k; idx++ {
		pb := probeBounds(free, cls.b0, period, idx)
		pd, err := t.probe(pb, cache)
		if err != nil {
			return fmt.Errorf("probe %s failed: %w", boundsString(params, pb), err)
		}
		if idx == 0 {
			first = pd
		} else if pd.sk != first.sk {
			return fmt.Errorf("schedule structure varies across the class grid (probe %s)", boundsString(params, pb))
		} else if len(pd.leaves) != len(first.leaves) {
			return fmt.Errorf("leaf count varies across the class grid (probe %s)", boundsString(params, pb))
		}
		values[idx] = pd.leaves
	}
	cls.base, cls.nWalk, cls.streams = first.c, first.nWalk, first.streams
	cls.free = free
	cls.forms = diffGrid(values, len(free))

	// Self-check 1: re-instantiating the base probe from the forms
	// must reproduce it bit for bit (exercises clone, patch, emission).
	if err := t.checkClass(cls, period, cls.b0, cls.base); err != nil {
		return err
	}
	if len(free) == 0 {
		return nil // point class: nothing to extrapolate
	}
	// Self-check 2: a held-out probe beyond the grid along the free
	// axes.  Every form is a polynomial of per-parameter degree
	// ≤ gridSide-1 by construction; if any true leaf is not, it
	// disagrees here and the mask is rejected before a consumer can
	// observe the difference.
	held := copyBounds(cls.b0)
	for _, p := range free {
		held[p] += int64(gridSide) * period
	}
	hd, err := t.probe(held, cache)
	if err != nil {
		return fmt.Errorf("held-out probe %s failed: %w", boundsString(params, held), err)
	}
	return t.checkClass(cls, period, held, hd.c)
}

// probe compiles and extracts one grid point, memoized across mask
// attempts of the same build.
func (t *Template) probe(bounds map[string]int64, cache map[string]*probeData) (*probeData, error) {
	key := boundsString(t.Source.Params, bounds)
	if pd, ok := cache[key]; ok {
		return pd, nil
	}
	c, err := t.compileProbe(bounds)
	if err != nil {
		return nil, err
	}
	pd, err := extractProbe(c)
	if err != nil {
		return nil, err
	}
	cache[key] = pd
	return pd, nil
}

func extractProbe(c *driver.Compiled) (*probeData, error) {
	sk, leaves, nWalk, defs, err := extract(c)
	if err != nil {
		return nil, err
	}
	return &probeData{c: c, sk: sk, leaves: leaves, nWalk: nWalk, streams: defs}, nil
}

// orderedMasks enumerates the pin masks (bit i set = params[i] pinned)
// widest-first: fewer pinned parameters win, ties broken by pinning
// earlier-sorted parameters first.
func orderedMasks(p int) []uint {
	masks := make([]uint, 0, 1<<uint(p))
	for m := uint(0); m < 1<<uint(p); m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		ci, cj := bits.OnesCount(masks[i]), bits.OnesCount(masks[j])
		if ci != cj {
			return ci < cj
		}
		return masks[i] < masks[j]
	})
	return masks
}

// classDesc renders the class identity: pinned parameters as exact
// values, free parameters as residues.
func classDesc(params, free []string, b0 map[string]int64, period int64) string {
	freeSet := make(map[string]bool, len(free))
	for _, p := range free {
		freeSet[p] = true
	}
	var sb strings.Builder
	for _, p := range params {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if freeSet[p] {
			r := b0[p] % period
			if r < 0 {
				r += period
			}
			fmt.Fprintf(&sb, "%s≡%d(mod %d)", p, r, period)
		} else {
			fmt.Fprintf(&sb, "%s=%d", p, b0[p])
		}
	}
	return sb.String()
}

// boundsString renders a bound vector in canonical parameter order.
func boundsString(params []string, bounds map[string]int64) string {
	var sb strings.Builder
	for _, p := range params {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", p, bounds[p])
	}
	return sb.String()
}

// checkClass instantiates bounds from the class forms and compares the
// full fingerprint against a reference compile.
func (t *Template) checkClass(cls *class, period int64, bounds map[string]int64, ref *driver.Compiled) error {
	conc, err := t.Source.Concrete(bounds)
	if err != nil {
		return err
	}
	c, err := t.instantiateClass(cls, period, bounds, conc)
	if err != nil {
		return fmt.Errorf("self-check instantiation at %v: %w", bounds, err)
	}
	if got, want := driver.Fingerprint(c), driver.Fingerprint(ref); got != want {
		return fmt.Errorf("self-check at %v: instantiated artifact differs from concrete compile", bounds)
	}
	return nil
}

// instantiateClass evaluates the closed forms and assembles the
// artifact: clone the class base, patch every leaf, emit the streams,
// rebuild the derived views.  This is the microsecond path.
func (t *Template) instantiateClass(cls *class, period int64, bounds map[string]int64, conc string) (*driver.Compiled, error) {
	tvec, err := ts(cls.free, cls.b0, bounds, period)
	if err != nil {
		return nil, err
	}
	w := weights(tvec)
	vals := make([]int64, len(cls.forms))
	for i, form := range cls.forms {
		vals[i] = evalForm(form, w)
	}

	c := cloneCompiled(cls.base)
	pw := &walker{vals: vals[:cls.nWalk], seen: map[*w2.Symbol]bool{}}
	walkCompiled(c, pw)
	if pw.err != nil {
		return nil, pw.err
	}
	if pw.pos != cls.nWalk {
		return nil, fmt.Errorf("symbolic: walker consumed %d of %d leaves", pw.pos, cls.nWalk)
	}
	pos, err := emitStreams(c, cls.streams, vals, cls.nWalk)
	if err != nil {
		return nil, err
	}
	if pos != len(vals) {
		return nil, fmt.Errorf("symbolic: streams consumed %d of %d leaves", pos-cls.nWalk, len(vals)-cls.nWalk)
	}
	if err := validateInstance(c); err != nil {
		return nil, err
	}
	c.Src = conc
	c.Debug = prof.BuildDebugMap(c.Module.Name, conc, c.Cell)
	c.Timing = cellgen.Timing(c.Cell)
	return c, nil
}

// validateInstance re-checks the architectural limits the probe
// compiles proved at their own sizes: the closed forms scale the
// numbers, so the limits must be re-discharged at the new point.  A
// violation falls back to the concrete compiler, which reproduces the
// exact error (or backoff) a cold compile would give.
func validateInstance(c *driver.Compiled) error {
	if c.Cells < 1 {
		return fmt.Errorf("instantiated cell count %d", c.Cells)
	}
	if n := len(c.IU.Table); n > mcode.TableWords {
		return fmt.Errorf("instantiated IU table %d words exceeds %d", n, mcode.TableWords)
	}
	if c.IUGen.AddrRegs > mcode.IUNumRegs {
		return fmt.Errorf("instantiated IU register pressure %d exceeds %d", c.IUGen.AddrRegs, mcode.IUNumRegs)
	}
	if c.Info.CellMemSize > mcode.MemWords {
		return fmt.Errorf("instantiated cell memory %d words exceeds %d", c.Info.CellMemSize, mcode.MemWords)
	}
	for ch, occ := range c.QueueOcc {
		if occ > mcode.QueueDepth {
			return fmt.Errorf("instantiated queue occupancy %d on %s exceeds %d", occ, ch, mcode.QueueDepth)
		}
	}
	var err error
	checkTrips := func(trips int64, what string) {
		if trips < 1 && err == nil {
			err = fmt.Errorf("instantiated %s trip count %d", what, trips)
		}
	}
	mcode.WalkInstrs(c.Cell.Items, func(_ *mcode.Instr, loops []*mcode.LoopItem) {
		for _, l := range loops {
			checkTrips(l.Trips, "cell loop")
		}
	})
	var walkIU func(items []mcode.IUItem)
	walkIU = func(items []mcode.IUItem) {
		for _, it := range items {
			if l, ok := it.(*mcode.IULoop); ok {
				checkTrips(l.Trips, "IU loop")
				walkIU(l.Body)
			}
		}
	}
	walkIU(c.IU.Items)
	return err
}

func sameBounds(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Classes returns the number of residue classes currently fitted or
// pending (for cache observability).
func (t *Template) Classes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.classes)
}

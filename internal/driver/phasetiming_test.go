package driver

import (
	"fmt"
	"testing"
	"time"

	"warp/internal/workloads"
)

// TestPhaseTimingSoundness pins the phase-timing contract under
// parallel compilation: phase stats feed warpd's
// compile_phase_seconds_total counter and the Chrome trace lanes, so
// they must not double-count.  The contract is per lane — tasks on one
// worker lane run sequentially, so their [Start, Start+Seconds)
// intervals never overlap and their durations sum to at most the
// compile's wall time.  Cross-lane overlap is expected (that is the
// parallelism); cross-lane sums are not bounded by wall.
func TestPhaseTimingSoundness(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			start := time.Now()
			c, err := Compile(workloads.ColorSegPaper(), Options{
				Pipeline: true, Verify: true, CompileWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			wall := time.Since(start).Seconds()

			// Each phase is recorded exactly once: duplicate names would
			// double-count in the per-phase Prometheus counter.
			seen := map[string]int{}
			for _, p := range c.Phases {
				seen[p.Name]++
			}
			for name, n := range seen {
				if n != 1 {
					t.Errorf("phase %q recorded %d times; the phase counter would double-count", name, n)
				}
			}

			byLane := map[int][]int{}
			for i, p := range c.Phases {
				if p.Seconds < 0 {
					t.Errorf("phase %q: negative duration %v", p.Name, p.Seconds)
				}
				if p.Start < 0 {
					t.Errorf("phase %q: starts %fs before the compile", p.Name, -p.Start)
				}
				if workers == 1 && p.Worker != 0 {
					t.Errorf("phase %q: on lane %d in a serial compile", p.Name, p.Worker)
				}
				byLane[p.Worker] = append(byLane[p.Worker], i)
			}

			// The serial front end always runs on lane 0; every lane index
			// must be inside the worker pool.
			for lane := range byLane {
				if lane < 0 || lane >= workers {
					t.Errorf("phase recorded on lane %d, pool has %d lanes", lane, workers)
				}
			}

			// Per-lane: non-overlapping intervals, and Σ durations ≤ wall.
			// A small epsilon absorbs float rounding of the offsets.
			const eps = 1e-9
			for lane, idxs := range byLane {
				var sum float64
				for ai, i := range idxs {
					a := c.Phases[i]
					sum += a.Seconds
					for _, j := range idxs[ai+1:] {
						b := c.Phases[j]
						if a.Start < b.Start+b.Seconds-eps && b.Start < a.Start+a.Seconds-eps {
							t.Errorf("lane %d: phases %q [%f,%f) and %q [%f,%f) overlap",
								lane, a.Name, a.Start, a.Start+a.Seconds,
								b.Name, b.Start, b.Start+b.Seconds)
						}
					}
				}
				if sum > wall+eps {
					t.Errorf("lane %d: phase durations sum to %fs, compile wall was %fs — double-counted time",
						lane, sum, wall)
				}
			}
		})
	}
}

// BenchmarkCompileWorkers is the compile-scaling microbenchmark: the
// heaviest Table 7-1 compilation at 1, 2 and 4 workers.  On a
// single-CPU host the curve is flat; the benchmark's job is to show
// parallelism is free (no slowdown from the orchestration), and on
// multi-core hosts, what it buys.
func BenchmarkCompileWorkers(b *testing.B) {
	src := workloads.ColorSegPaper()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("colorseg-w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(src, Options{Pipeline: true, Verify: true, CompileWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileSerial tracks the serial baseline on the remaining
// paper workloads so a superlinear phase regression is caught by
// `go test -bench` without the full warpbench suite.
func BenchmarkCompileSerial(b *testing.B) {
	for _, c := range []struct {
		name string
		src  string
	}{
		{"polynomial", workloads.PolynomialPaper()},
		{"mandelbrot", workloads.MandelbrotPaper()},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(c.src, Options{Pipeline: true, CompileWorkers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

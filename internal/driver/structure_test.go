package driver

import (
	"math/rand"
	"testing"

	"warp/internal/mcode"
	"warp/internal/workloads"
)

// TestGeneratedCodeStructure runs the microcode validators and the
// cell/IU cross-checks over every workload under every configuration:
//
//   - the cell program and IU program are individually well formed;
//   - the IU emits exactly as many addresses as the cells consume, and
//     exactly one loop signal per loop boundary the cells cross;
//   - the IU program is at least as long as the cell program only by
//     its prologue (lock-step mirroring).
func TestGeneratedCodeStructure(t *testing.T) {
	srcs := map[string]string{
		"polynomial": workloads.Polynomial(10, 40),
		"conv1d":     workloads.Conv1D(9, 48),
		"binop":      workloads.Binop(8, 8),
		"colorseg":   workloads.ColorSeg(6, 6, 10),
		"mandelbrot": workloads.Mandelbrot(16, 4),
		"matmul":     workloads.Matmul(8),
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		src, _ := workloads.RandomProgram(rng)
		srcs[string(rune('a'+i))+"-random"] = src
	}
	for name, src := range srcs {
		for _, opts := range []Options{
			{Verify: true},
			{NoOptimize: true, Verify: true},
			{Pipeline: true, Verify: true},
		} {
			c, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("%s (%+v): compile: %v", name, opts, err)
			}
			if c.Verified == nil {
				t.Fatalf("%s (%+v): no verification report", name, opts)
			}
			if err := mcode.ValidateCell(c.Cell); err != nil {
				t.Errorf("%s: cell program invalid: %v", name, err)
			}
			if err := mcode.ValidateIU(c.IU); err != nil {
				t.Errorf("%s: IU program invalid: %v", name, err)
			}
			cc := mcode.CountCell(c.Cell)
			ic := mcode.CountIU(c.IU)
			if cc.AdrPops != ic.AdrOuts {
				t.Errorf("%s: cells pop %d addresses, IU emits %d", name, cc.AdrPops, ic.AdrOuts)
			}
			if cc.Signals != ic.Signals {
				t.Errorf("%s: cells cross %d loop boundaries, IU emits %d signals", name, cc.Signals, ic.Signals)
			}
			if ic.TableOuts != int64(len(c.IU.Table)) {
				t.Errorf("%s: IU reads %d table words, table holds %d", name, ic.TableOuts, len(c.IU.Table))
			}
			// Lock-step mirroring: the IU's main program matches the
			// cell program cycle for cycle, preceded only by the
			// register-initialization prologue.
			if got, want := c.IU.Cycles(), c.Cell.Cycles()+c.IUGen.Prologue; got != want {
				t.Errorf("%s: IU runs %d cycles, want %d (cell %d + prologue %d)",
					name, got, want, c.Cell.Cycles(), c.IUGen.Prologue)
			}
			// Host program covers the boundary traffic.
			var hostIn, hostOut int64
			for _, seq := range c.Host.In {
				hostIn += int64(len(seq))
			}
			for _, seq := range c.Host.Out {
				hostOut += int64(len(seq))
			}
			var recvs, sends int64
			for _, n := range cc.Recv {
				recvs += n
			}
			for _, n := range cc.Send {
				sends += n
			}
			if hostIn != recvs || hostOut != sends {
				t.Errorf("%s: host feeds %d/%d words, cells need %d/%d", name, hostIn, hostOut, recvs, sends)
			}
		}
	}
}

// TestPipelinedLoopStructure checks the prologue/kernel/epilogue shape
// of a software-pipelined loop: total dynamic I/O equals the plain
// build's.
func TestPipelinedLoopStructure(t *testing.T) {
	src := workloads.Polynomial(10, 100)
	plain, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Compile(src, Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	pc, qc := mcode.CountCell(plain.Cell), mcode.CountCell(piped.Cell)
	for _, ch := range []rune{'X', 'Y'} {
		_ = ch
	}
	if pc.Recv[0] != qc.Recv[0] || pc.Recv[1] != qc.Recv[1] ||
		pc.Send[0] != qc.Send[0] || pc.Send[1] != qc.Send[1] {
		t.Errorf("pipelining changed dynamic I/O counts: %+v vs %+v", pc, qc)
	}
	if qc.AdrPops != pc.AdrPops {
		t.Errorf("pipelining changed memory reference count: %d vs %d", qc.AdrPops, pc.AdrPops)
	}
	if piped.Cell.Cycles() >= plain.Cell.Cycles() {
		t.Errorf("pipelining did not shorten the program: %d vs %d",
			piped.Cell.Cycles(), plain.Cell.Cycles())
	}
}

// TestPipelinedOutputsValidated pins a past gap: the validator and
// verifier sweeps used to cover only plain schedules, so a malformed
// pipelined schedule could slip through.  For workloads known to
// pipeline successfully, the Pipeline+Verify build must actually use
// the overlapped schedule (no silent backoff), pass both structural
// validators, and carry a verification report.
func TestPipelinedOutputsValidated(t *testing.T) {
	for name, src := range map[string]string{
		"polynomial": workloads.Polynomial(10, 100),
		"conv1d":     workloads.Conv1D(9, 48),
	} {
		c, err := Compile(src, Options{Pipeline: true, Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.PipelineBackoff {
			t.Fatalf("%s: pipelining backed off: %s", name, c.BackoffReason)
		}
		if c.CellGen.PipelinedLoops == 0 {
			t.Fatalf("%s: no loop was pipelined; this test must exercise the overlapped schedule", name)
		}
		if err := mcode.ValidateCell(c.Cell); err != nil {
			t.Errorf("%s: pipelined cell program invalid: %v", name, err)
		}
		if err := mcode.ValidateIU(c.IU); err != nil {
			t.Errorf("%s: pipelined IU program invalid: %v", name, err)
		}
		if c.Verified == nil {
			t.Errorf("%s: pipelined build has no verification report", name)
		}
	}
}

// TestRegisterPressureRejected: a block needing more temporaries than
// the register file must fail with a clear error, not silently corrupt.
func TestRegisterPressureRejected(t *testing.T) {
	// 70 live receives before any send exhausts the 64-register file.
	src := `
module hog (xs in, ys out)
float xs[70];
float ys[70];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float `
	for i := 0; i < 70; i++ {
		if i > 0 {
			src += ", "
		}
		src += "v" + string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	src += ";\n"
	for i := 0; i < 70; i++ {
		name := "v" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		src += "        receive (L, X, " + name + ", xs[" + itoa(i) + "]);\n"
	}
	// Send everything back in reverse order: the queue's FIFO order
	// forces all 70 values to stay live simultaneously.
	for i := 69; i >= 0; i-- {
		name := "v" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		src += "        send (R, X, " + name + ", ys[" + itoa(69-i) + "]);\n"
	}
	src += "    end\n    call f;\nend\n"
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("expected a register-file error")
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

package driver

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"warp/internal/interp"
	"warp/internal/mcode"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// compareRun compiles src with the static verifier enabled, runs the
// structural validators over the generated microcode (whatever the
// schedule — plain or pipelined), runs it on the simulator, and checks
// the outputs against the reference interpreter.
func compareRun(t *testing.T, src string, opts Options, inputs map[string][]float64) *Compiled {
	t.Helper()
	opts.Verify = true
	c, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if c.Verified == nil {
		t.Fatal("verification phase did not run")
	}
	if err := mcode.ValidateCell(c.Cell); err != nil {
		t.Fatalf("cell program invalid: %v", err)
	}
	if err := mcode.ValidateIU(c.IU); err != nil {
		t.Fatalf("IU program invalid: %v", err)
	}
	want, err := interp.Run(c.Info, inputs)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Fatalf("output %s: %d values, want %d", name, len(g), len(w))
		}
		for i := range w {
			if !approxEqual(g[i], w[i]) {
				t.Fatalf("output %s[%d] = %v, interpreter says %v", name, i, g[i], w[i])
			}
		}
	}
	return c
}

func randArray(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = math.Round(rng.Float64()*16-8) / 2
	}
	return a
}

// TestPolynomialEndToEnd compiles and simulates the paper's Figure 4-1
// program and checks every result against the interpreter (which in
// turn computes Horner's rule).
func TestPolynomialEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inputs := map[string][]float64{
		"z": randArray(rng, 100),
		"c": randArray(rng, 10),
	}
	c := compareRun(t, readTestdata(t, "polynomial.w2"), Options{}, inputs)

	// Horner ground truth, straight from the math.
	z, coef := inputs["z"], inputs["c"]
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range z {
		want := 0.0
		for _, cv := range coef {
			want = want*x + cv
		}
		if !approxEqual(got["results"][i], want) {
			t.Fatalf("results[%d] = %v, want %v", i, got["results"][i], want)
		}
	}
	if c.Cells != 10 {
		t.Errorf("cells = %d, want 10", c.Cells)
	}
	if c.Skew < 1 {
		t.Errorf("skew = %d, want >= 1", c.Skew)
	}
}

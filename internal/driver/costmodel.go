package driver

import (
	"sync"
	"time"

	"warp/internal/fastexec"
	"warp/internal/interp"
	"warp/internal/sim"
	"warp/internal/telemetry"
	"warp/internal/workloads"
)

// fallbackModel is used when the calibration micro-benchmark cannot run
// (it never should on a working build); the constants are rough medians
// observed across development hosts, good enough to keep decision
// records populated.
var fallbackModel = telemetry.CostModel{SimNSPerCellCycle: 20, FastNSPerOp: 10}

var (
	costOnce  sync.Once
	costModel telemetry.CostModel
)

// CostModelForHost returns the backend cost model calibrated for this
// host, running a small self-benchmark on first call (a few
// milliseconds, once per process): a 10-cell polynomial workload is
// compiled and executed on both backends, and the per-unit constants
// are derived from the best observed wall times.  The calibration runs
// the executors directly — never through RunWith — so recording
// decisions cannot recurse into calibration.
func CostModelForHost() telemetry.CostModel {
	costOnce.Do(calibrate)
	return costModel
}

// ModeledCycles returns the closed-form machine-cycle count of one run
// of the compiled program: the IU lead, the skew ramp across the array,
// and one cell's execution time.  This is the simulator-side cost input
// of the decision audit; on deterministic workloads it equals the cycle
// count the simulator reports.
func (c *Compiled) ModeledCycles() int64 {
	return (c.IUGen.Prologue + 1) + int64(c.Cells-1)*c.Skew + c.Cell.Cycles()
}

func calibrate() {
	costModel = fallbackModel
	c, err := Compile(workloads.Polynomial(10, 200), Options{Verify: true})
	if err != nil {
		return
	}
	plan, err := c.FastPlan()
	if err != nil {
		return
	}
	inputs := map[string][]float64{}
	for _, sym := range c.Info.HostSyms {
		if sym.Out {
			continue
		}
		inputs[sym.Name] = make([]float64, sym.Type.Size())
	}
	hostMem, err := interp.BuildHostMem(c.Info, inputs)
	if err != nil {
		return
	}
	simNS := measureNS(func() error {
		mem := append([]float64(nil), hostMem...)
		_, err := sim.Run(sim.Config{
			Cells: c.Cells, Cell: c.Cell, IU: c.IU, Host: c.Host,
			Skew: c.Skew, Lead: c.IUGen.Prologue + 1, HostMem: mem,
		})
		return err
	})
	fastNS := measureNS(func() error {
		mem := append([]float64(nil), hostMem...)
		_, err := plan.Execute(mem, fastexec.ExecConfig{})
		return err
	})
	if simNS <= 0 || fastNS <= 0 {
		return
	}
	cells := int64(c.Cells)
	m := telemetry.CostModel{
		SimNSPerCellCycle: float64(simNS) / float64(c.ModeledCycles()*cells),
		FastNSPerOp:       float64(fastNS) / float64(int64(plan.Ops())*cells),
	}
	if m.SimNSPerCellCycle > 0 && m.FastNSPerOp > 0 {
		costModel = m
	}
}

// measureNS runs f a handful of times and returns the best per-run wall
// time in nanoseconds — the minimum is the standard noise-resistant
// estimator for a deterministic workload.  A failing f yields 0.
func measureNS(f func() error) int64 {
	if f() != nil { // warm-up: page in code and data
		return 0
	}
	var best int64
	deadline := time.Now().Add(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if f() != nil {
			return 0
		}
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return best
}

package driver

import (
	"math/rand"
	"testing"

	"warp/internal/workloads"
)

// These tests compile every sample workload at a test-friendly size,
// run it on the simulated Warp machine, and check the outputs against
// both the W2 reference interpreter and a direct Go computation of the
// algorithm.

func checkAgainst(t *testing.T, got, want []float64, label string, n int) {
	t.Helper()
	if len(got) < n {
		t.Fatalf("%s: got %d values, want at least %d", label, len(got), n)
	}
	for i := 0; i < n; i++ {
		if !approxEqual(got[i], want[i]) {
			t.Fatalf("%s[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestConv1DEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k, n := 9, 64
	x := randArray(rng, n)
	w := randArray(rng, k)
	inputs := map[string][]float64{"x": x, "w": w}
	c := compareRun(t, workloads.Conv1D(k, n), Options{}, inputs)
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ref := workloads.Conv1DRef(x, w)
	checkAgainst(t, got["results"], ref, "conv1d results", len(ref))
	if c.Cells != k {
		t.Errorf("cells = %d, want %d", c.Cells, k)
	}
}

func TestBinopEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w, h := 16, 12
	a := randArray(rng, w*h)
	b := randArray(rng, w*h)
	inputs := map[string][]float64{"a": a, "b": b}
	c := compareRun(t, workloads.Binop(w, h), Options{}, inputs)
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, got["res"], workloads.BinopRef(a, b), "binop out", w*h)
}

func TestColorSegEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w, h, ncells := 8, 8, 10
	refs := make([]float64, 4*ncells)
	for c := 0; c < ncells; c++ {
		refs[4*c] = rng.Float64() * 10
		refs[4*c+1] = rng.Float64() * 10
		refs[4*c+2] = rng.Float64() * 10
		refs[4*c+3] = float64(c)
	}
	image := make([]float64, 3*w*h)
	for i := range image {
		image[i] = rng.Float64() * 10
	}
	inputs := map[string][]float64{"refs": refs, "image": image}
	c := compareRun(t, workloads.ColorSeg(w, h, ncells), Options{}, inputs)
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, got["classes"], workloads.ColorSegRef(refs, image), "classes", w*h)
}

func TestMandelbrotEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, iters := 64, 4
	cxs := make([]float64, n)
	cys := make([]float64, n)
	for i := range cxs {
		cxs[i] = rng.Float64()*3 - 2
		cys[i] = rng.Float64()*3 - 1.5
	}
	inputs := map[string][]float64{"cxs": cxs, "cys": cys}
	c := compareRun(t, workloads.Mandelbrot(n, iters), Options{}, inputs)
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, got["res"], workloads.MandelbrotRef(cxs, cys, iters), "mandelbrot out", n)
}

func TestMatmulEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	a := randArray(rng, n*n)
	b := randArray(rng, n*n)
	inputs := map[string][]float64{"a": a, "bmat": b}
	c := compareRun(t, workloads.Matmul(n), Options{}, inputs)
	got, _, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, got["c"], workloads.MatmulRef(a, b, n), "matmul c", n*n)
	if c.IUGen.AddrRegs == 0 && c.IUGen.TableEntries == 0 {
		t.Errorf("matmul should exercise IU address generation")
	}
}

// TestPaperConfigsCompile compiles every workload at the paper's full
// size (Table 7-1) without running it.
func TestPaperConfigsCompile(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"1d-conv", workloads.Conv1DPaper()},
		{"binop", workloads.BinopPaper()},
		{"colorseg", workloads.ColorSegPaper()},
		{"mandelbrot", workloads.MandelbrotPaper()},
		{"polynomial", workloads.PolynomialPaper()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Compile(tc.src, Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if c.Cell.NumInstrs() == 0 || c.IU.NumInstrs() == 0 {
				t.Fatalf("empty microcode: cell=%d iu=%d", c.Cell.NumInstrs(), c.IU.NumInstrs())
			}
		})
	}
}

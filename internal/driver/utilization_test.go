package driver

import (
	"testing"

	"warp/internal/workloads"
)

// TestFPUUtilization quantifies the §7 claim "all the arithmetic units
// are fully utilized in the innermost loop": with software pipelining
// at an initiation interval of one, the convolution kernel issues one
// add and one multiply every cycle, so whole-run utilization (which
// includes the distribution phase and pipeline fill) must be high — and
// far higher than the list-scheduled build's.
func TestFPUUtilization(t *testing.T) {
	src := workloads.Conv1D(9, 512)
	inputs := map[string][]float64{
		"x": make([]float64, 512),
		"w": make([]float64, 9),
	}
	util := func(pipeline bool) (add, mul float64) {
		c, err := Compile(src, Options{Pipeline: pipeline})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := Run(c, inputs)
		if err != nil {
			t.Fatal(err)
		}
		return float64(stats.AddOps) / float64(stats.CellActive),
			float64(stats.MulOps) / float64(stats.CellActive)
	}
	addPlain, mulPlain := util(false)
	addPiped, mulPiped := util(true)
	t.Logf("plain: add %.2f mul %.2f; pipelined: add %.2f mul %.2f",
		addPlain, mulPlain, addPiped, mulPiped)
	if addPiped < 0.7 || mulPiped < 0.7 {
		t.Errorf("pipelined FPU utilization too low: add %.2f, mul %.2f (paper: fully utilized)",
			addPiped, mulPiped)
	}
	if addPiped < 3*addPlain || mulPiped < 3*mulPlain {
		t.Errorf("pipelining should multiply utilization: add %.2f->%.2f, mul %.2f->%.2f",
			addPlain, addPiped, mulPlain, mulPiped)
	}
}

// TestMultiFunctionProgram: several cell functions called in order
// compile and simulate correctly.
func TestMultiFunctionProgram(t *testing.T) {
	src := `
module two (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 1)
begin
    function stage1
    begin
        float v;
        int i;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v * 2.0, ys[i]);
        end;
    end
    function stage2
    begin
        float v;
        int i;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[4+i]);
            send (R, X, v + 1.0, ys[4+i]);
        end;
    end
    call stage1;
    call stage2;
end
`
	inputs := map[string][]float64{"xs": {1, 2, 3, 4, 5, 6, 7, 8}}
	compareRun(t, src, Options{}, inputs)
	compareRun(t, src, Options{Pipeline: true}, inputs)
}

// TestQueueOverflowRejected: a program whose matched send/receive
// pattern would need more than the 128-word hardware queue is rejected
// at compile time (§6.2.2: "the queue overflow problem is currently
// only detected and reported").
func TestQueueOverflowRejected(t *testing.T) {
	// Each cell consumes slowly (a long dependence chain per received
	// word) but produces quickly (a tight send loop).  The upstream
	// cell's fast sends outrun the downstream cell's slow receives by
	// far more than the 128-word queue.
	src := `
module hoard (xs in, ys out)
float xs[400];
float ys[400];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float v, a;
        float buf[400];
        int i, j;
        for i := 0 to 399 do begin
            receive (L, X, v, xs[i]);
            a := v + 1.0;
            a := a * a;
            a := a + v;
            a := a * a;
            a := a + v;
            buf[i] := a;
        end;
        for j := 0 to 399 do
            send (R, X, buf[j], ys[j]);
    end
    call f;
end
`
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("expected a queue-overflow rejection")
	}
}

package driver

import (
	"math/rand"
	"testing"

	"warp/internal/workloads"
)

// TestPipelinedWorkloads runs every workload with software pipelining
// enabled and checks the simulated outputs against the reference
// interpreter (compareRun) — overlapped iterations must not change a
// single result.
func TestPipelinedWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := []struct {
		name   string
		src    string
		inputs map[string][]float64
	}{
		{"polynomial", workloads.Polynomial(10, 60), map[string][]float64{
			"z": randArray(rng, 60), "c": randArray(rng, 10),
		}},
		{"conv1d", workloads.Conv1D(9, 64), map[string][]float64{
			"x": randArray(rng, 64), "w": randArray(rng, 9),
		}},
		{"binop", workloads.Binop(12, 10), map[string][]float64{
			"a": randArray(rng, 120), "b": randArray(rng, 120),
		}},
		{"matmul", workloads.Matmul(8), map[string][]float64{
			"a": randArray(rng, 64), "bmat": randArray(rng, 64),
		}},
		{"mandelbrot", workloads.Mandelbrot(48, 4), map[string][]float64{
			"cxs": randArray(rng, 48), "cys": randArray(rng, 48),
		}},
		{"colorseg", workloads.ColorSeg(6, 6, 10), map[string][]float64{
			"refs": randArray(rng, 40), "image": randArray(rng, 108),
		}},
		{"fft", workloads.FFT(16), map[string][]float64{
			"twid": workloads.FFTTwiddles(16), "x": randArray(rng, 32),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compareRun(t, tc.src, Options{Pipeline: true}, tc.inputs)
			t.Logf("%s: pipelined %d loops, cell cycles %d",
				tc.name, c.CellGen.PipelinedLoops, c.Cell.Cycles())
		})
	}
}

// TestPipelineThroughput verifies the headline claim of §2 and
// Table 7-1: with software pipelining the convolution and polynomial
// inner loops reach an initiation interval near one cycle per result,
// several times better than the plain list schedule.
func TestPipelineThroughput(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"polynomial", workloads.Polynomial(10, 100)},
		{"conv1d", workloads.Conv1D(9, 128)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := Compile(tc.src, Options{})
			if err != nil {
				t.Fatal(err)
			}
			piped, err := Compile(tc.src, Options{Pipeline: true})
			if err != nil {
				t.Fatal(err)
			}
			if piped.CellGen.PipelinedLoops == 0 {
				t.Fatalf("no loop was software pipelined")
			}
			pc, cc := plain.Cell.Cycles(), piped.Cell.Cycles()
			if cc*3 > pc {
				t.Errorf("pipelining gained too little: %d -> %d cycles", pc, cc)
			}
			t.Logf("cell cycles: plain %d, pipelined %d (%.1fx)", pc, cc, float64(pc)/float64(cc))
		})
	}
}

package driver

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint reduces one compilation to the byte string the
// determinism contract pins: every output a consumer can observe —
// microcode listings, the host I/O program, skew and proven queue
// occupancy, the scheduler's deterministic counters, and the verifier
// report — rendered in a canonical order.  Wall-clock measurements
// (phase Seconds, SearchNS, SkewNS) are deliberately excluded: they
// are measurements of the compile, not outputs of it.
//
// Two compilations with equal fingerprints are interchangeable: they
// simulate to the same cycle counts and outputs.  The PR 9 parallel
// compile equivalence harness pins worker-count independence against
// it, and the symbolic template subsystem (internal/symbolic) pins
// template instantiation against a concrete compile with it.
func Fingerprint(c *Compiled) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cells=%d skew=%d backoff=%v %q\n", c.Cells, c.Skew, c.PipelineBackoff, c.BackoffReason)
	sb.WriteString(c.Cell.Listing())
	sb.WriteString(c.IU.Listing())

	var chans []string
	byName := map[string]string{}
	for ch, words := range c.Host.In {
		name := fmt.Sprint(ch)
		chans = append(chans, name)
		byName[name] = fmt.Sprintf("in %s: %v\nout %s: %v\n", name, words, name, c.Host.Out[ch])
	}
	sort.Strings(chans)
	for _, name := range chans {
		sb.WriteString(byName[name])
	}

	var occ []string
	for ch, n := range c.QueueOcc {
		occ = append(occ, fmt.Sprintf("occ %s=%d", ch, n))
	}
	sort.Strings(occ)
	sb.WriteString(strings.Join(occ, " ") + "\n")

	// Scheduler introspection: the counters are part of the contract
	// (a parallel II search must count placements exactly as the
	// serial one), the nanosecond fields are not.
	st := c.Sched.Totals()
	fmt.Fprintf(&sb, "sched loops=%d pipelined=%d attempts=%d placements=%d evictions=%d emitrejects=%d skewops=%d skewpairs=%d skewpruned=%d\n",
		st.Loops, st.Pipelined, st.Attempts, st.Placements, st.Evictions, st.EmitRejects,
		st.SkewOps, st.SkewPairs, st.SkewPruned)
	for _, k := range c.Sched.Skews {
		fmt.Fprintf(&sb, "skewsearch %s method=%s ops=%d pairs=%d pruned=%d skew=%d\n",
			k.Channel, k.Method, k.Ops, k.Pairs, k.Pruned, k.Skew)
	}

	if c.Verified != nil {
		fmt.Fprintf(&sb, "verified checked=%d lead=%d memrefs=%d signals=%d\n",
			c.Verified.Checked, c.Verified.Lead, c.Verified.MemRefs, c.Verified.Signals)
		var vocc []string
		for ch, o := range c.Verified.Data {
			vocc = append(vocc, fmt.Sprintf("vocc %s max=%d method=%s sends=%d recvs=%d",
				ch, o.Max, o.Method, c.Verified.Sends[ch], c.Verified.Recvs[ch]))
		}
		sort.Strings(vocc)
		sb.WriteString(strings.Join(vocc, "\n") + "\n")
		fmt.Fprintf(&sb, "adr max=%d method=%s sig max=%d method=%s\n",
			c.Verified.Adr.Max, c.Verified.Adr.Method, c.Verified.Sig.Max, c.Verified.Sig.Method)
	}
	return sb.String()
}

package driver

import "sync"

// This file is the compile-phase DAG scheduler.  The front half of the
// pipeline (parse through cellgen) is a strict chain — each phase
// consumes the previous one's output — but once the cell program is
// frozen the remaining phases only read it: the skew analysis, the IU
// generator and the host generator are mutually independent, and the
// verifier needs all three.  compile() encodes that dependency
// structure as a task list and runs it here on a small worker pool.
//
// The determinism contract: the compiled artifact (microcode, skew,
// queue bounds, scheduler counters) and the failure reported, if any,
// are identical at every worker count.  The scheduler's part of that
// contract is claim order (ready tasks are claimed lowest index first)
// and error selection (the lowest-indexed failure wins — the same task
// a serial walk in index order would have failed on).  Wall-clock
// fields (phase Seconds/Start/Worker, SkewSearch.NS) are measurements,
// not artifacts, and are exempt.

// task is one node of the back-end compile DAG.
type task struct {
	name string
	// deps lists the indices of tasks that must complete successfully
	// first.  Dependencies must point backward (dep < this task's
	// index) so skip propagation resolves in one forward scan.
	deps []int
	// run does the work on the given worker lane (0 ≤ lane < workers).
	// Lanes are goroutines: two tasks on the same lane never overlap,
	// which is what makes per-lane phase timing sound.
	run func(lane int) error
}

// Task states.
const (
	taskPending = iota
	taskRunning
	taskDone
	taskFailed
	taskSkipped
)

// runTasks executes the task DAG on up to workers concurrent lanes and
// returns the lowest-indexed task's error, or nil if every task ran
// (tasks downstream of a failure are skipped, never half-run).
func runTasks(tasks []*task, workers int) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	state := make([]int, len(tasks))
	errs := make([]error, len(tasks))
	var mu sync.Mutex
	ready := sync.NewCond(&mu)
	left := len(tasks)
	var wg sync.WaitGroup
	for lane := 0; lane < workers; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for {
				if left == 0 {
					ready.Broadcast()
					return
				}
				pick := -1
			scan:
				for i, t := range tasks {
					if state[i] != taskPending {
						continue
					}
					for _, d := range t.deps {
						switch state[d] {
						case taskFailed, taskSkipped:
							state[i] = taskSkipped
							left--
							continue scan
						case taskDone:
						default:
							continue scan
						}
					}
					pick = i
					break
				}
				if pick < 0 {
					if left == 0 {
						continue // loop back to broadcast and exit
					}
					ready.Wait()
					continue
				}
				state[pick] = taskRunning
				mu.Unlock()
				err := tasks[pick].run(lane)
				mu.Lock()
				if err != nil {
					state[pick] = taskFailed
					errs[pick] = err
				} else {
					state[pick] = taskDone
				}
				left--
				ready.Broadcast()
			}
		}(lane)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package driver

import (
	"math/rand"
	"testing"

	"warp/internal/interp"
	"warp/internal/workloads"
)

// TestRandomProgramsEquivalence is the pipeline's central property
// test: for randomly generated W2 programs, the compiled microcode
// running on the cycle-accurate simulator must produce exactly the
// words the reference interpreter produces — under every compiler
// configuration.
func TestRandomProgramsEquivalence(t *testing.T) {
	const programs = 150
	configs := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"noopt", Options{NoOptimize: true}},
		{"pipelined", Options{Pipeline: true}},
	}
	rng := rand.New(rand.NewSource(20260706))
	for p := 0; p < programs; p++ {
		src, inputs := workloads.RandomProgram(rng)
		for _, cfg := range configs {
			c, err := Compile(src, cfg.opts)
			if err != nil {
				t.Fatalf("program %d [%s]: compile failed: %v\nsource:\n%s", p, cfg.name, err, src)
			}
			want, err := interp.Run(c.Info, inputs)
			if err != nil {
				t.Fatalf("program %d: interpreter failed: %v\nsource:\n%s", p, err, src)
			}
			got, _, err := Run(c, inputs)
			if err != nil {
				t.Fatalf("program %d [%s]: simulation failed: %v\nsource:\n%s", p, cfg.name, err, src)
			}
			for name, w := range want {
				for i := range w {
					if !approxEqual(got[name][i], w[i]) {
						t.Fatalf("program %d [%s]: %s[%d] = %v, interpreter says %v\nsource:\n%s",
							p, cfg.name, name, i, got[name][i], w[i], src)
					}
				}
			}
		}
	}
}

// TestRandomProgramsConfigAgreement cross-checks the three compiler
// configurations against each other (they share no scheduling code
// paths for loops, so agreement is meaningful).
func TestRandomProgramsConfigAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for p := 0; p < 40; p++ {
		src, inputs := workloads.RandomProgram(rng)
		var ref map[string][]float64
		for _, opts := range []Options{{}, {NoOptimize: true}, {Pipeline: true}} {
			c, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("program %d: %v\nsource:\n%s", p, err, src)
			}
			got, _, err := Run(c, inputs)
			if err != nil {
				t.Fatalf("program %d: %v\nsource:\n%s", p, err, src)
			}
			if ref == nil {
				ref = got
				continue
			}
			for name, w := range ref {
				for i := range w {
					if !approxEqual(got[name][i], w[i]) {
						t.Fatalf("program %d: configs disagree on %s[%d]: %v vs %v\nsource:\n%s",
							p, name, i, got[name][i], w[i], src)
					}
				}
			}
		}
	}
}

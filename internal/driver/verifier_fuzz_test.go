package driver

import (
	"math"
	"math/rand"
	"testing"

	"warp/internal/mcode"
	"warp/internal/verify"
	"warp/internal/workloads"
)

// This file is the differential soundness harness for the static
// verifier (internal/verify):
//
//   - acceptance must be sound: every program the verifier accepts must
//     simulate to completion with no queue underflow or overflow (the
//     simulator errors on both), checked over fuzzed random programs;
//   - rejection must catch corruption: seeded microcode mutations —
//     dropping a send, widening a trip count, shrinking the skew,
//     corrupting a register, truncating the IU address table, renaming
//     a loop, flipping a loop signal — must each be rejected.

// verifyProgram assembles the verifier's input from a compilation,
// exactly as the driver's verify phase does.
func verifyProgram(c *Compiled) verify.Program {
	return verify.Program{
		Cells: c.Cells,
		Cell:  c.Cell,
		IU:    c.IU,
		Host:  c.Host,
		Skew:  c.Skew,
		Lead:  c.IUGen.Prologue + 1,
	}
}

// ---------------------------------------------------------------------
// Deep copies, so mutations never touch the compiled original.

func copyCellProgram(p *mcode.CellProgram) *mcode.CellProgram {
	return &mcode.CellProgram{Items: copyCellItems(p.Items)}
}

func copyCellItems(items []mcode.CodeItem) []mcode.CodeItem {
	out := make([]mcode.CodeItem, len(items))
	for i, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			instrs := make([]*mcode.Instr, len(it.Instrs))
			for j, in := range it.Instrs {
				instrs[j] = copyInstr(in)
			}
			out[i] = &mcode.Straight{Instrs: instrs}
		case *mcode.LoopItem:
			cp := *it
			cp.Body = copyCellItems(it.Body)
			out[i] = &cp
		}
	}
	return out
}

func copyInstr(in *mcode.Instr) *mcode.Instr {
	cp := &mcode.Instr{}
	copyAlu := func(op *mcode.AluOp) *mcode.AluOp {
		if op == nil {
			return nil
		}
		c := *op
		return &c
	}
	cp.Add, cp.Mul, cp.Mov = copyAlu(in.Add), copyAlu(in.Mul), copyAlu(in.Mov)
	for i, m := range in.Mem {
		if m != nil {
			c := *m
			cp.Mem[i] = &c
		}
	}
	for _, io := range in.IO {
		c := *io
		cp.IO = append(cp.IO, &c)
	}
	if in.Lit != nil {
		c := *in.Lit
		cp.Lit = &c
	}
	return cp
}

func copyIUProgram(p *mcode.IUProgram) *mcode.IUProgram {
	cp := &mcode.IUProgram{Table: append([]int64(nil), p.Table...)}
	cp.Items = copyIUItems(p.Items)
	return cp
}

func copyIUItems(items []mcode.IUItem) []mcode.IUItem {
	out := make([]mcode.IUItem, len(items))
	for i, it := range items {
		switch it := it.(type) {
		case *mcode.IUStraight:
			instrs := make([]*mcode.IUInstr, len(it.Instrs))
			for j, in := range it.Instrs {
				instrs[j] = copyIUInstr(in)
			}
			out[i] = &mcode.IUStraight{Instrs: instrs}
		case *mcode.IULoop:
			cp := *it
			cp.Body = copyIUItems(it.Body)
			out[i] = &cp
		}
	}
	return out
}

func copyIUInstr(in *mcode.IUInstr) *mcode.IUInstr {
	cp := &mcode.IUInstr{CtrWork: in.CtrWork}
	if in.Alu != nil {
		c := *in.Alu
		cp.Alu = &c
	}
	if in.Imm != nil {
		c := *in.Imm
		cp.Imm = &c
	}
	for i, o := range in.Out {
		if o != nil {
			c := *o
			cp.Out[i] = &c
		}
	}
	if in.Sig != nil {
		c := *in.Sig
		cp.Sig = &c
	}
	return cp
}

// ---------------------------------------------------------------------
// Seeded mutations.  Each takes a fresh deep-copied program and applies
// one corruption, returning false when the program has no site for it.

type mutation struct {
	name  string
	apply func(p *verify.Program) bool
}

func firstLoop(items []mcode.CodeItem) *mcode.LoopItem {
	for _, it := range items {
		if l, ok := it.(*mcode.LoopItem); ok {
			return l
		}
	}
	return nil
}

func eachInstr(items []mcode.CodeItem, f func(*mcode.Instr) bool) bool {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			for _, in := range it.Instrs {
				if f(in) {
					return true
				}
			}
		case *mcode.LoopItem:
			if eachInstr(it.Body, f) {
				return true
			}
		}
	}
	return false
}

func eachIUInstr(items []mcode.IUItem, f func(*mcode.IUInstr) bool) bool {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.IUStraight:
			for _, in := range it.Instrs {
				if f(in) {
					return true
				}
			}
		case *mcode.IULoop:
			if eachIUInstr(it.Body, f) {
				return true
			}
		}
	}
	return false
}

var mutations = []mutation{
	{"drop-send", func(p *verify.Program) bool {
		return eachInstr(p.Cell.Items, func(in *mcode.Instr) bool {
			for i, io := range in.IO {
				if !io.Recv {
					in.IO = append(in.IO[:i], in.IO[i+1:]...)
					return true
				}
			}
			return false
		})
	}},
	{"widen-trip-count", func(p *verify.Program) bool {
		if l := firstLoop(p.Cell.Items); l != nil {
			l.Trips++
			return true
		}
		return false
	}},
	{"shrink-skew", func(p *verify.Program) bool {
		if p.Cells > 1 {
			p.Skew--
			return true
		}
		return false
	}},
	{"corrupt-register", func(p *verify.Program) bool {
		return eachInstr(p.Cell.Items, func(in *mcode.Instr) bool {
			if len(in.IO) > 0 {
				in.IO[0].Reg = mcode.NumRegs + 35
				return true
			}
			return false
		})
	}},
	{"truncate-iu-table", func(p *verify.Program) bool {
		if n := len(p.IU.Table); n > 0 {
			p.IU.Table = p.IU.Table[:n-1]
		} else {
			p.IU.Table = append(p.IU.Table, 0)
		}
		return true
	}},
	{"rename-loop", func(p *verify.Program) bool {
		if l := firstLoop(p.Cell.Items); l != nil {
			l.ID += 100
			return true
		}
		return false
	}},
	{"flip-signal", func(p *verify.Program) bool {
		return eachIUInstr(p.IU.Items, func(in *mcode.IUInstr) bool {
			if in.Sig != nil && in.Sig.Static {
				in.Sig.Continue = !in.Sig.Continue
				return true
			}
			return false
		})
	}},
}

// mutated builds a fresh verifier input with deep-copied programs so a
// mutation cannot leak into the compiled original (or another mutation).
func mutated(c *Compiled) *verify.Program {
	p := verifyProgram(c)
	p.Cell = copyCellProgram(c.Cell)
	p.IU = copyIUProgram(c.IU)
	return &p
}

// checkVerifierOnProgram runs the full soundness protocol on one
// compiled program: the verifier must accept it, the simulation must
// complete (accept ⇒ run clean), the fast backend must reproduce the
// simulation bit for bit (accept ⇒ the closed-form executor is exact),
// and every applicable mutation must be rejected with structured
// diagnostics.
func checkVerifierOnProgram(t *testing.T, c *Compiled, src string, inputs map[string][]float64, simulate bool) {
	t.Helper()
	rep, err := verify.Verify(verifyProgram(c))
	if err != nil {
		t.Fatalf("verifier rejects a compiler-produced program: %v\n%s", err, src)
	}
	if simulate {
		simOut, simStats, err := RunWith(c, inputs, RunOptions{Backend: BackendSim})
		if err != nil {
			t.Fatalf("verifier accepted but simulation failed: %v\n%s", err, src)
		}
		// Stamp the report so the fast backend is eligible, then demand
		// it: every verifier-accepted program must execute identically on
		// both backends — same cycle count, bit-identical outputs.
		c.Verified = rep
		fastOut, fastStats, err := RunWith(c, inputs, RunOptions{Backend: BackendFast})
		if err != nil {
			t.Fatalf("verifier accepted but fast execution failed: %v\n%s", err, src)
		}
		if fastStats.Backend != BackendFast || simStats.Backend != BackendSim {
			t.Fatalf("backend stamps %q/%q, want fast/sim", fastStats.Backend, simStats.Backend)
		}
		if fastStats.Cycles != simStats.Cycles {
			t.Fatalf("backends disagree on cycles: fast %d, sim %d\n%s",
				fastStats.Cycles, simStats.Cycles, src)
		}
		for name, sv := range simOut {
			fv := fastOut[name]
			if len(fv) != len(sv) {
				t.Fatalf("backends disagree on %s length: fast %d, sim %d\n%s", name, len(fv), len(sv), src)
			}
			for i := range sv {
				if math.Float64bits(fv[i]) != math.Float64bits(sv[i]) {
					t.Fatalf("backends disagree on %s[%d]: fast %v, sim %v\n%s", name, i, fv[i], sv[i], src)
				}
			}
		}
	}
	for _, m := range mutations {
		p := mutated(c)
		if !m.apply(p) {
			continue
		}
		_, err := verify.Verify(*p)
		if err == nil {
			t.Fatalf("mutation %q not rejected\n%s", m.name, src)
		}
		verr, ok := err.(*verify.Error)
		if !ok || len(verr.Diags) == 0 {
			t.Fatalf("mutation %q: rejection carries no structured diagnostics: %v", m.name, err)
		}
	}
}

// FuzzVerifierSoundness fuzzes the accept-implies-clean-run half of the
// verifier's contract and the mutation-rejection half in one harness.
// Explore with `go test -fuzz=FuzzVerifierSoundness ./internal/driver`.
func FuzzVerifierSoundness(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		src, inputs := workloads.RandomProgram(rng)
		for _, opts := range []Options{{}, {NoOptimize: true}, {Pipeline: true}} {
			c, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("compile (%+v): %v\n%s", opts, err, src)
			}
			checkVerifierOnProgram(t, c, src, inputs, true)
		}
	})
}

// TestVerifierSoundnessSweep is the deterministic wide sweep behind the
// fuzz harness: several hundred random programs across all three option
// sets, each verified and mutation-tested; a sample of them simulated.
func TestVerifierSoundnessSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const programs = 180
	for i := 0; i < programs; i++ {
		src, inputs := workloads.RandomProgram(rng)
		for j, opts := range []Options{{}, {NoOptimize: true}, {Pipeline: true}} {
			c, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("program %d: compile (%+v): %v\n%s", i, opts, err, src)
			}
			// Simulating every (program, option) pair would dominate the
			// suite's runtime; every fourth pair keeps the differential
			// signal at a fraction of the cost.
			simulate := (i*3+j)%4 == 0
			checkVerifierOnProgram(t, c, src, inputs, simulate)
		}
	}
}

// TestVerifierRejectsMutationsOnWorkloads pins mutation rejection on
// the real (non-random) workloads, where every mutation site exists.
func TestVerifierRejectsMutationsOnWorkloads(t *testing.T) {
	for name, src := range map[string]string{
		"polynomial": workloads.Polynomial(10, 40),
		"conv1d":     workloads.Conv1D(9, 48),
		"matmul":     workloads.Matmul(8),
	} {
		c, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		applied := 0
		for _, m := range mutations {
			p := mutated(c)
			if !m.apply(p) {
				continue
			}
			applied++
			if _, err := verify.Verify(*p); err == nil {
				t.Errorf("%s: mutation %q not rejected", name, m.name)
			}
		}
		if applied < 5 {
			t.Errorf("%s: only %d mutations applicable; the corpus is too weak", name, applied)
		}
	}
}

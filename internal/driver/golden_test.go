package driver

import (
	"warp/internal/workloads"

	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenListings pins the generated microcode of the paper's
// polynomial program (both schedules).  The listings are deterministic;
// a diff here means code generation changed.  Refresh with
// `go test ./internal/driver -run TestGoldenListings -update`.
func TestGoldenListings(t *testing.T) {
	t.Run("polynomial", func(t *testing.T) { goldenFor(t, "polynomial", readTestdata(t, "polynomial.w2")) })
	t.Run("conv1d", func(t *testing.T) { goldenFor(t, "conv1d", workloads.Conv1D(9, 64)) })
	t.Run("fft", func(t *testing.T) { goldenFor(t, "fft", workloads.FFT(16)) })
	t.Run("matmul", func(t *testing.T) { goldenFor(t, "matmul", workloads.Matmul(8)) })
}

func goldenFor(t *testing.T, name, src string) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"pipelined", Options{Pipeline: true}},
	} {
		c, err := Compile(src, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range []struct {
			suffix, got string
		}{
			{"cell", c.Cell.Listing()},
			{"iu", c.IU.Listing()},
		} {
			path := filepath.Join("..", "..", "testdata",
				name+"."+tc.name+"."+part.suffix+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(part.got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(want) != part.got {
				t.Errorf("%s %s listing changed; run with -update if intended.\ngot:\n%s",
					tc.name, part.suffix, part.got)
			}
		}
	}
}

// Package driver wires the compiler phases together following the
// structure of the paper's Figure 6-1: flow analysis builds the central
// flowgraph data structure; the computation decomposition partitions it
// between the Warp array, the IU and the host; and the three code
// generators run in order — array first (it must deliver the
// computation bandwidth), then the IU under the array's timing
// constraints, then the host.
package driver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"warp/internal/cellgen"
	"warp/internal/commgraph"
	"warp/internal/conc"
	"warp/internal/fastexec"
	"warp/internal/hostgen"
	"warp/internal/interp"
	"warp/internal/ir"
	"warp/internal/iugen"
	"warp/internal/mcode"
	"warp/internal/obs"
	"warp/internal/opt"
	"warp/internal/prof"
	"warp/internal/sim"
	"warp/internal/skew"
	"warp/internal/telemetry"
	"warp/internal/verify"
	"warp/internal/w2"
)

// Options control compilation.
type Options struct {
	// NoOptimize disables the local optimization passes.
	NoOptimize bool
	// Pipeline enables software pipelining of innermost loops.
	Pipeline bool
	// Cells overrides the array size declared by the cellprogram.
	Cells int
	// Verify runs the static microcode verifier over the compiled
	// output as a final phase: queue safety, skew coverage, register
	// hazards and IU stream consistency are proven before the program
	// is handed out, and a violation fails the compilation with a
	// *verify.Error carrying structured diagnostics.
	Verify bool
	// CompileWorkers bounds the compiler's own parallelism: once the
	// cell program is frozen, the skew analysis (per channel), the IU
	// generator, the host generator (per stream) and the verifier (per
	// invariant group) run concurrently on up to this many workers, and
	// the modulo scheduler searches candidate IIs speculatively.  0
	// defaults to GOMAXPROCS; 1 compiles serially.  The compiled
	// artifact — microcode, skew, queue bounds, cycle counts, scheduler
	// counters — is byte-identical at every setting; only wall-clock
	// measurements (phase timings, search nanoseconds) vary.
	CompileWorkers int
	// Recorder receives one Phase event per compiler phase (and is
	// forwarded to the simulator by RunObserved's callers).  nil
	// disables emission; Compiled.Phases is recorded either way.
	Recorder obs.Recorder
	// Symbolic routes the compile through the symbolic template
	// subsystem: src is ${...}-parameterized W2, Bounds supplies the
	// parameter values, and the artifact is instantiated from a cached
	// template's closed forms when possible (byte-identical to the
	// concrete compile of the substituted source).  Requires the
	// symbolic package to be linked in (importing the warp package or
	// internal/symbolic registers it).
	Symbolic bool
	// Bounds are the template parameter values for a Symbolic compile.
	Bounds map[string]int64
}

// symbolicCompile is the registered symbolic-compilation hook.  The
// symbolic subsystem lives above this package (it drives Compile for
// its probe grid), so the dependency is inverted: internal/symbolic
// registers itself at init and Compile dispatches through the hook.
var symbolicCompile func(src string, opts Options) (*Compiled, error)

// RegisterSymbolic installs the symbolic-compilation hook; called from
// internal/symbolic's init.
func RegisterSymbolic(fn func(src string, opts Options) (*Compiled, error)) {
	symbolicCompile = fn
}

// Compiled is the full result of compiling one W2 module.
type Compiled struct {
	Module *w2.Module
	Info   *w2.Info
	IR     *ir.Program

	// PipelineBackoff reports that software pipelining was requested
	// but rolled back: the overlapped schedule demanded more address
	// bandwidth than the IU's registers and table provide ("the IU has
	// been designed to deliver the average performance required, but
	// not peak performance", §6.3.2).
	PipelineBackoff bool
	// BackoffReason is the error that forced the rollback.
	BackoffReason string

	// Phases records per-phase wall-clock timing and a size metric for
	// every phase of this compilation, in execution order.
	Phases []obs.PhaseStat

	OptStats opt.Stats
	Comm     commgraph.Analysis

	Cell    *mcode.CellProgram
	CellGen *cellgen.Result
	IU      *mcode.IUProgram
	IUGen   *iugen.Result
	Host    *hostgen.Program

	// Timing is the per-channel timed I/O program used by the skew
	// analysis.
	Timing map[w2.Channel]*skew.Prog
	// Skew is the start-time delay between adjacent cells.
	Skew int64
	// QueueOcc is the proven per-channel peak queue occupancy.
	QueueOcc map[w2.Channel]int64

	// Verified is the static verifier's report (nil unless
	// Options.Verify was set).
	Verified *verify.Report

	// Debug maps every µinstruction address back to W2 source (line,
	// loop-nest path); built on every compile, it is what the profiler
	// joins with the simulator's per-µPC counters.
	Debug *prof.DebugMap
	// Sched records the modulo scheduler's and skew search's internal
	// counters for compiler introspection.
	Sched *prof.SchedProfile
	// Src is the compiled W2 source text (for profile report rendering).
	Src string

	Cells   int
	W2Lines int

	// t0 anchors the compile timeline: PhaseStat.Start offsets are
	// measured from it.
	t0 time.Time

	// The fast-execution plan is compiled lazily on first use and
	// cached: it is derived purely from the immutable microcode above,
	// so one plan is shared by every concurrent run and fabric tile.
	fastOnce sync.Once
	fastPlan *fastexec.Plan
	fastErr  error

	// Symbolically instantiated artifacts carry only the minimal Info
	// the run path reads (host symbol layout, module identity); the full
	// analyzed AST the reference interpreter wants is rebuilt lazily
	// from Src on first use.
	fullOnce sync.Once
	fullInfo *w2.Info
	fullErr  error
}

// FullInfo returns the fully analyzed module (the AST view the
// reference interpreter executes).  Concretely compiled programs
// already carry it; symbolically instantiated ones re-parse their
// source on first call and cache the result.
func (c *Compiled) FullInfo() (*w2.Info, error) {
	if c.IR != nil {
		// A concrete compile always built the full Info on the way to
		// its flowgraph.
		return c.Info, nil
	}
	c.fullOnce.Do(func() {
		mod, err := w2.Parse(c.Src)
		if err != nil {
			c.fullErr = err
			return
		}
		c.fullInfo, c.fullErr = w2.Analyze(mod)
	})
	return c.fullInfo, c.fullErr
}

// FastPlan returns the compiled program's fast-execution plan, building
// and caching it on first call.  The plan is immutable and shared; a
// program the trace compiler cannot represent returns the build error
// on every call.
func (c *Compiled) FastPlan() (*fastexec.Plan, error) {
	c.fastOnce.Do(func() {
		c.fastPlan, c.fastErr = fastexec.Compile(fastexec.Program{
			Cells: c.Cells,
			Cell:  c.Cell,
			IU:    c.IU,
			Host:  c.Host,
			Skew:  c.Skew,
			Lead:  c.IUGen.Prologue + 1,
		})
	})
	return c.fastPlan, c.fastErr
}

// Compile runs the whole pipeline on W2 source text.  If software
// pipelining was requested and the IU cannot feed the overlapped
// schedule (its sequential table overflows), compilation backs off to
// the plain schedule; the rollback is recorded in PipelineBackoff,
// BackoffReason and a "pipeline-backoff" phase entry.
func Compile(src string, opts Options) (*Compiled, error) {
	if opts.Symbolic {
		if symbolicCompile == nil {
			return nil, errors.New("driver: symbolic compilation not linked in (import warp or warp/internal/symbolic)")
		}
		return symbolicCompile(src, opts)
	}
	c, err := compile(src, opts)
	// A verification failure is a verdict on the pipelined schedule
	// itself, not an IU capacity limit: report it rather than silently
	// retrying the plain schedule, which would mask the defect.
	var verr *verify.Error
	if err != nil && opts.Pipeline && !errors.As(err, &verr) {
		reason := err.Error()
		plain := opts
		plain.Pipeline = false
		if c2, err2 := compile(src, plain); err2 == nil {
			c2.PipelineBackoff = true
			c2.BackoffReason = reason
			c2.phase(opts.Recorder, "pipeline-backoff", time.Now(), 0, reason)
			return c2, nil
		}
	}
	return c, err
}

// phase appends one per-phase timing record ending now and forwards it
// to the recorder, if any.  Serial phases run on worker lane 0.
func (c *Compiled) phase(rec obs.Recorder, name string, start time.Time, size int, note string) {
	d := time.Since(start).Seconds()
	off := start.Sub(c.t0).Seconds()
	if off < 0 {
		off = 0
	}
	c.Phases = append(c.Phases, obs.PhaseStat{Name: name, Seconds: d, Size: size, Note: note, Start: off})
	obs.RecordPhaseAt(rec, name, off, d, 0, size, note)
}

func compile(src string, opts Options) (*Compiled, error) {
	c := &Compiled{W2Lines: countLines(src), Src: src, t0: time.Now()}
	rec := opts.Recorder
	workers := opts.CompileWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	start := c.t0
	mod, err := w2.Parse(src)
	if err != nil {
		return nil, err
	}
	c.Module = mod
	c.phase(rec, "parse", start, c.W2Lines, "")

	start = time.Now()
	info, err := w2.Analyze(mod)
	if err != nil {
		return nil, err
	}
	c.Info = info
	c.phase(rec, "sema", start, len(info.HostSyms), "")

	start = time.Now()
	prog, err := ir.Build(info)
	if err != nil {
		return nil, err
	}
	c.IR = prog
	c.phase(rec, "flowgraph", start, len(prog.Funcs), "")

	if !opts.NoOptimize {
		start = time.Now()
		c.OptStats = opt.Optimize(prog)
		c.phase(rec, "optimize", start, c.OptStats.Total(), "")
	}
	c.Cells = mod.Cells.Last - mod.Cells.First + 1
	if opts.Cells < 0 {
		return nil, fmt.Errorf("invalid cell count %d", opts.Cells)
	}
	if opts.Cells > 0 {
		c.Cells = opts.Cells
	}

	start = time.Now()
	c.Comm = commgraph.Analyze(prog)
	if err := commgraph.Check(prog, c.Cells); err != nil {
		return nil, err
	}
	if c.Comm.UsesLeftward {
		return nil, fmt.Errorf("driver: program sends data leftward; this compiler (like its examples) supports rightward flow only")
	}
	c.phase(rec, "commgraph", start, 0, "")

	start = time.Now()
	cg, err := cellgen.Generate(prog, cellgen.Options{Pipeline: opts.Pipeline, Workers: workers})
	if err != nil {
		return nil, err
	}
	c.CellGen = cg
	c.Cell = cg.Cell
	c.Sched = cg.Sched
	// The debug map assigns µprogram addresses — the one mutation of
	// the cell program after generation — so it runs here, before the
	// cell program is published to the concurrent back-end tasks.
	c.Debug = prof.BuildDebugMap(mod.Name, src, c.Cell)
	note := ""
	if opts.Pipeline {
		t := c.Sched.Totals()
		note = fmt.Sprintf("%d loops pipelined; %d II attempts, %d placements, %d evictions",
			cg.PipelinedLoops, t.Attempts, t.Placements, t.Evictions)
	}
	c.phase(rec, "cellgen", start, c.Cell.NumInstrs(), note)

	// With the cell program frozen, the remaining phases only read it:
	// the skew analysis, the IU generator and the host generator are
	// mutually independent, and the verifier needs all three.  They run
	// as a task DAG on up to `workers` lanes; each task records its
	// phase into a private slot, and the slots are appended and emitted
	// in canonical (serial) order below, so Compiled.Phases and the
	// recorder's event stream keep one order at any worker count.
	c.Timing = cellgen.Timing(c.Cell)
	c.QueueOcc = map[w2.Channel]int64{}
	chans := make([]w2.Channel, 0, len(c.Timing))
	for ch := range c.Timing {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return fmt.Sprint(chans[i]) < fmt.Sprint(chans[j]) })

	logs := make([][]obs.PhaseStat, 4)
	record := func(slot, lane int, name string, start time.Time, size int, msg string) {
		logs[slot] = append(logs[slot], obs.PhaseStat{
			Name: name, Seconds: time.Since(start).Seconds(), Size: size, Note: msg,
			Start: start.Sub(c.t0).Seconds(), Worker: lane,
		})
	}

	tasks := []*task{
		// Inter-cell scheduling: minimum skew and queue occupancy per
		// channel (§6.2), each channel analyzed independently.  A
		// single-cell array has no inter-cell boundary to synchronize.
		{name: "skew", run: func(lane int) error {
			start := time.Now()
			if c.Cells > 1 {
				type chanSkew struct {
					an  *skew.Analysis
					rec prof.SkewSearch
					err error
				}
				res := make([]chanSkew, len(chans))
				conc.Do(workers, len(chans), func(i int) {
					ch := chans[i]
					chStart := time.Now()
					a, err := skew.NewAnalysis(c.Timing[ch], c.Timing[ch])
					if err != nil {
						res[i].err = fmt.Errorf("driver: channel %s: %w", ch, err)
						return
					}
					s, st, err := a.MinSkewStats()
					if err != nil {
						res[i].err = fmt.Errorf("driver: channel %s: %w", ch, err)
						return
					}
					res[i].an = a
					res[i].rec = prof.SkewSearch{
						Channel: fmt.Sprint(ch),
						Method:  st.Method,
						Ops:     st.Ops,
						Pairs:   st.Pairs,
						Pruned:  st.Pruned,
						Skew:    s,
						NS:      time.Since(chStart).Nanoseconds(),
					}
				})
				var maxSkew int64
				for i := range res {
					if res[i].err != nil {
						return res[i].err
					}
					c.Sched.Skews = append(c.Sched.Skews, res[i].rec)
					if res[i].rec.Skew > maxSkew {
						maxSkew = res[i].rec.Skew
					}
				}
				// Addresses and loop signals propagate systolically one
				// cycle per hop, so multi-cell arrays need a skew of at
				// least one cycle.
				if maxSkew < 1 {
					maxSkew = 1
				}
				c.Skew = maxSkew
				// The occupancy check reuses each channel's cached
				// enumeration, so this sweep is cheap.
				for i, ch := range chans {
					occ, err := res[i].an.CheckQueue(c.Skew, mcode.QueueDepth)
					if err != nil {
						return fmt.Errorf("driver: channel %s: %w", ch, err)
					}
					c.QueueOcc[ch] = occ
				}
			}
			// Channels were analyzed in sorted order, so the
			// introspection record is already deterministic.
			skewNote := ""
			if len(c.Sched.Skews) > 0 {
				t := c.Sched.Totals()
				skewNote = fmt.Sprintf("%d ops enumerated, %d pairs analyzed, %d pruned", t.SkewOps, t.SkewPairs, t.SkewPruned)
			}
			record(0, lane, "skew", start, int(c.Skew), skewNote)
			return nil
		}},
		{name: "iugen", run: func(lane int) error {
			start := time.Now()
			iu, err := iugen.Generate(c.Cell)
			if err != nil {
				return err
			}
			c.IUGen = iu
			c.IU = iu.IU
			record(1, lane, "iugen", start, c.IU.NumInstrs(), "")
			return nil
		}},
		{name: "hostgen", run: func(lane int) error {
			start := time.Now()
			host, err := hostgen.GenerateParallel(c.Cell, workers)
			if err != nil {
				return err
			}
			c.Host = host
			hostWords := 0
			for _, seq := range host.In {
				hostWords += len(seq)
			}
			for _, seq := range host.Out {
				hostWords += len(seq)
			}
			record(2, lane, "hostgen", start, hostWords, "")
			return nil
		}},
	}
	if opts.Verify {
		tasks = append(tasks, &task{name: "verify", deps: []int{0, 1, 2}, run: func(lane int) error {
			start := time.Now()
			rep, err := verify.VerifyParallel(verify.Program{
				Cells: c.Cells,
				Cell:  c.Cell,
				IU:    c.IU,
				Host:  c.Host,
				Skew:  c.Skew,
				Lead:  c.IUGen.Prologue + 1,
			}, workers)
			if err != nil {
				return err
			}
			c.Verified = rep
			record(3, lane, "verify", start, rep.Checked, fmt.Sprintf("%d propositions proven", rep.Checked))
			return nil
		}})
	}
	if err := runTasks(tasks, workers); err != nil {
		return nil, err
	}
	for _, ps := range logs {
		for _, p := range ps {
			c.Phases = append(c.Phases, p)
			obs.RecordPhaseAt(rec, p.Name, p.Start, p.Seconds, p.Worker, p.Size, p.Note)
		}
	}
	return c, nil
}

func countLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Execution backend names (RunOptions.Backend).
const (
	// BackendAuto picks the fast dataflow executor when the program is
	// verified and the run needs no per-cycle observability, falling
	// back to the cycle-accurate simulator otherwise.
	BackendAuto = "auto"
	// BackendSim forces the cycle-accurate simulator.
	BackendSim = "sim"
	// BackendFast forces the verified fast executor; an unverified
	// program fails with an error wrapping ErrUnverified instead of
	// silently degrading to the simulator.
	BackendFast = "fast"
)

// ErrUnverified marks a run that requested the fast backend on a
// program compiled without verification.  Test with errors.Is.
var ErrUnverified = errors.New("program is not verified (compile with Verify to use the fast backend)")

// RunOptions control one execution of a compiled program.  The zero
// value runs to completion with no instrumentation and the default
// livelock guard.
type RunOptions struct {
	// Ctx, when non-nil, aborts the simulation once cancelled (polled
	// every few thousand cycles; see sim.Config.Ctx).
	Ctx context.Context
	// Recorder receives per-cycle instrumentation events.
	Recorder obs.Recorder
	// MaxCycles overrides the runaway-simulation guard (0 keeps the
	// sim default of 1<<28).
	MaxCycles int64
	// Profile enables exact per-µPC cycle attribution in the simulator
	// (sim.Config.PCStats); the counters land in Stats.Obs.PC, ready to
	// join with Compiled.Debug.
	Profile bool
	// Backend selects the execution backend: BackendAuto (the default
	// for the empty string), BackendSim or BackendFast.  The selected
	// backend is stamped into Stats.Backend.
	Backend string
	// Progress, when non-nil, receives coarse position updates while
	// the run executes (cycles retired, with the modeled total filled
	// in) plus a terminal update.  nil disables progress reporting at
	// zero hot-path cost.
	Progress obs.ProgressFunc
}

// chooseBackend resolves a RunOptions backend request against the
// compiled program: which engine runs (or an error for an impossible
// explicit request), plus the decision audit record — why that engine,
// and what the host cost model predicts each candidate would cost.
// The selection policy itself is unchanged from PR 7 (verification
// status and observability needs decide); the predictions are recorded
// so their accuracy can be audited before they start driving the
// choice (ROADMAP: cost-modeled auto-selection).
func chooseBackend(c *Compiled, o RunOptions) (string, *telemetry.Decision, error) {
	model := CostModelForHost()
	d := &telemetry.Decision{
		PredictedCycles: c.ModeledCycles(),
		Cells:           c.Cells,
		Model:           model,
	}
	d.PredictedSimWallNS = model.PredictSimNS(d.PredictedCycles, c.Cells)
	// fillFast completes the fast-executor side of the prediction; it
	// needs the trace length, so it builds (and caches) the fast plan.
	fillFast := func() bool {
		plan, err := c.FastPlan()
		if err != nil {
			return false
		}
		d.PredictedOps = int64(plan.Ops()) * int64(c.Cells)
		d.PredictedFastWallNS = model.PredictFastNS(d.PredictedOps)
		return true
	}
	switch b := o.Backend; b {
	case "", BackendAuto:
		// The fast path models cycles instead of observing them, so any
		// run that wants per-cycle instrumentation stays on the
		// simulator; so does an unverified program (no proofs, no
		// shortcut) or one whose trace cannot be built.  Phase-only
		// recorders (request-trace span adapters) see nothing at run
		// time and do not block the fast path.
		switch {
		case c.Verified == nil:
			// No plan build for the prediction either: an unverified
			// program earns no trace-compilation work.
			d.Backend, d.Reason = BackendSim, "unverified"
		case o.Profile:
			d.Backend, d.Reason = BackendSim, "profile-requested"
			fillFast()
		case obs.CycleObserved(o.Recorder):
			d.Backend, d.Reason = BackendSim, "cycle-recorder"
			fillFast()
		case !fillFast():
			d.Backend, d.Reason = BackendSim, "no-fast-plan"
		default:
			d.Backend, d.Reason = BackendFast, "auto-verified"
		}
	case BackendSim:
		d.Backend, d.Reason = BackendSim, "explicit-sim"
		if c.Verified != nil {
			fillFast() // record what fast would have cost
		}
	case BackendFast:
		if c.Verified == nil {
			return "", nil, fmt.Errorf("backend %q: %w", b, ErrUnverified)
		}
		if !fillFast() {
			_, err := c.FastPlan()
			return "", nil, fmt.Errorf("backend %q: %w", b, err)
		}
		d.Backend, d.Reason = BackendFast, "explicit-fast"
	default:
		return "", nil, fmt.Errorf("unknown backend %q (want %q, %q or %q)", b, BackendAuto, BackendSim, BackendFast)
	}
	return d.Backend, d, nil
}

// Run executes the compiled program on the simulated Warp machine.
func Run(c *Compiled, inputs map[string][]float64) (map[string][]float64, *sim.Stats, error) {
	return RunWith(c, inputs, RunOptions{})
}

// RunObserved executes the compiled program with an instrumentation
// recorder attached to the simulator.
func RunObserved(c *Compiled, inputs map[string][]float64, rec obs.Recorder) (map[string][]float64, *sim.Stats, error) {
	return RunWith(c, inputs, RunOptions{Recorder: rec})
}

// RunWith executes the compiled program under the given run options.
// The compiled program's phase records are copied into the run profile
// so one Stats value carries the whole compile-and-run story.  Compiled
// is never mutated beyond the one-time fast-plan cache: every run
// builds fresh machine state, so one Compiled may run from many
// goroutines concurrently.
func RunWith(c *Compiled, inputs map[string][]float64, o RunOptions) (map[string][]float64, *sim.Stats, error) {
	backend, decision, err := chooseBackend(c, o)
	if err != nil {
		return nil, nil, err
	}
	hostMem, err := interp.BuildHostMem(c.Info, inputs)
	if err != nil {
		return nil, nil, err
	}
	// The executors report raw positions; wrap the caller's hook so
	// every update carries the modeled total (the denominator of a
	// percent display).  The nil path stays allocation-free.
	if inner := o.Progress; inner != nil {
		total := decision.PredictedCycles
		o.Progress = func(u obs.ProgressUpdate) {
			u.TotalCycles = total
			inner(u)
		}
	}
	start := time.Now()
	var stats *sim.Stats
	if backend == BackendFast {
		stats, err = runFast(c, hostMem, o)
	} else {
		stats, err = sim.Run(sim.Config{
			Cells:     c.Cells,
			Cell:      c.Cell,
			IU:        c.IU,
			Host:      c.Host,
			Skew:      c.Skew,
			Lead:      c.IUGen.Prologue + 1,
			HostMem:   hostMem,
			MaxCycles: o.MaxCycles,
			Ctx:       o.Ctx,
			Recorder:  o.Recorder,
			PCStats:   o.Profile,
			Progress:  o.Progress,
		})
	}
	if err != nil {
		return nil, nil, err
	}
	decision.ActualWallNS = time.Since(start).Nanoseconds()
	stats.Backend = backend
	stats.Decision = decision
	stats.Obs.Phases = c.Phases
	return interp.ExtractOutputs(c.Info, hostMem), stats, nil
}

// runFast executes over the cached dataflow plan and converts the
// result to the simulator's Stats shape.  The queue peaks come from the
// verifier's proven occupancy bounds — the fast path never materializes
// queues, but the bounds are exactly what the proof discharged.
func runFast(c *Compiled, hostMem []float64, o RunOptions) (*sim.Stats, error) {
	plan, err := c.FastPlan() // cached; already built by chooseBackend
	if err != nil {
		return nil, err
	}
	res, err := plan.Execute(hostMem, fastexec.ExecConfig{Ctx: o.Ctx, MaxCycles: o.MaxCycles, Progress: o.Progress})
	if err != nil {
		return nil, err
	}
	stats := &sim.Stats{
		Cycles:     res.Cycles,
		CellFinish: res.CellFinish,
		AddOps:     res.AddOps,
		MulOps:     res.MulOps,
		CellActive: res.CellActive,
		Sent:       res.Sent,
		Obs:        res.Obs,
	}
	if rep := c.Verified; rep != nil {
		for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
			occ, ok := rep.Data[ch]
			if !ok {
				continue
			}
			kind := obs.QueueX
			if ch == w2.ChanY {
				kind = obs.QueueY
			}
			stats.Obs.Queues = append(stats.Obs.Queues, obs.QueueProfile{
				Name:      fmt.Sprintf("proven:%s", ch),
				Queue:     kind,
				HighWater: int(occ.Max),
			})
		}
		stats.MaxQueue, stats.MaxQueueAt = stats.Obs.MaxQueue()
	}
	return stats, nil
}

// Run2Interp runs the reference interpreter on a compiled program's
// analyzed module (convenience for tests and tools).
func Run2Interp(c *Compiled, inputs map[string][]float64) (map[string][]float64, error) {
	info, err := c.FullInfo()
	if err != nil {
		return nil, err
	}
	return interp.Run(info, inputs)
}

package driver

import (
	"math"
	"math/rand"
	"testing"

	"warp/internal/workloads"
)

// TestFFTEndToEnd compiles and simulates the FFT workload and checks
// the spectrum against a direct DFT.
func TestFFTEndToEnd(t *testing.T) {
	for _, n := range []int{8, 32, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, 2*n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		inputs := map[string][]float64{
			"twid": workloads.FFTTwiddles(n),
			"x":    x,
		}
		for _, opts := range []Options{{}, {Pipeline: true}} {
			c, err := Compile(workloads.FFT(n), opts)
			if err != nil {
				t.Fatalf("n=%d: compile: %v", n, err)
			}
			got, _, err := Run(c, inputs)
			if err != nil {
				t.Fatalf("n=%d: simulate: %v", n, err)
			}
			want := workloads.FFTRef(x)
			for i := range want {
				if math.Abs(got["y"][i]-want[i]) > 1e-6*float64(n) {
					t.Fatalf("n=%d: y[%d] = %v, DFT says %v", n, i, got["y"][i], want[i])
				}
			}
			// And against the interpreter exactly.
			ref, err := Run2Interp(c, inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref["y"] {
				if !approxEqual(got["y"][i], ref["y"][i]) {
					t.Fatalf("n=%d: y[%d]: simulator %v vs interpreter %v", n, i, got["y"][i], ref["y"][i])
				}
			}
		}
	}
}

// TestFFTPaperSizeCompiles: the 1024-point configuration (the §2
// headline) compiles; the deep bit-reversal nest exercises 11-level IU
// induction chains.
func TestFFTPaperSizeCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, err := Compile(workloads.FFTPaper(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cell.NumInstrs() == 0 {
		t.Fatal("no code generated")
	}
	// 1024 complex points: 2048 data + 1024 twiddle words of the 4K
	// cell memory.
	t.Logf("fft1024: %d cell instrs, %d IU instrs, %d IU regs, %d table words",
		c.Cell.NumInstrs(), c.IU.NumInstrs(), c.IUGen.AddrRegs, c.IUGen.TableEntries)
}

// TestFFTPipelineBackoff: at 1024 points the overlapped schedule
// demands more address bandwidth than the IU's 16 registers and 32K
// table provide, so a Pipeline request compiles with the plain
// schedule and reports the backoff.
func TestFFTPipelineBackoff(t *testing.T) {
	c, err := Compile(workloads.FFTPaper(), Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.PipelineBackoff {
		t.Error("expected a pipeline backoff at 1024 points")
	}
	if c.CellGen.PipelinedLoops != 0 {
		t.Error("backoff must produce the plain schedule")
	}
	// Smaller transforms pipeline without backoff.
	c, err = Compile(workloads.FFT(64), Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.PipelineBackoff || c.CellGen.PipelinedLoops == 0 {
		t.Errorf("64-point FFT should pipeline cleanly (backoff=%v, loops=%d)",
			c.PipelineBackoff, c.CellGen.PipelinedLoops)
	}
}

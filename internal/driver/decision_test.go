package driver

import (
	"testing"

	"warp/internal/obs"
	"warp/internal/workloads"
)

// zeroIn builds zero input arrays of the declared sizes for a compiled
// program (inputs never affect timing — the machine is statically
// scheduled).
func zeroIn(c *Compiled) map[string][]float64 {
	in := map[string][]float64{}
	for _, sym := range c.Info.HostSyms {
		if !sym.Out {
			in[sym.Name] = make([]float64, sym.Type.Size())
		}
	}
	return in
}

// TestDecisionPredictedCyclesExact pins the decision audit's core
// promise: on deterministic workloads the predicted cycle input equals
// the executed cycle count exactly, for both backends.
func TestDecisionPredictedCyclesExact(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{"polynomial", workloads.Polynomial(10, 100), Options{Verify: true}},
		{"conv1d", workloads.Conv1D(9, 64), Options{Verify: true}},
		{"matmul-pipelined", workloads.Matmul(8), Options{Verify: true, Pipeline: true}},
		{"binop-unverified", workloads.Binop(16, 12), Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Compile(tc.src, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, backend := range []string{BackendAuto, BackendSim, BackendFast} {
				if backend == BackendFast && c.Verified == nil {
					continue
				}
				_, stats, err := RunWith(c, zeroIn(c), RunOptions{Backend: backend})
				if err != nil {
					t.Fatalf("backend %s: %v", backend, err)
				}
				d := stats.Decision
				if d == nil {
					t.Fatalf("backend %s: run carries no decision", backend)
				}
				if d.PredictedCycles != stats.Cycles {
					t.Errorf("backend %s: predicted %d cycles, simulator counted %d",
						backend, d.PredictedCycles, stats.Cycles)
				}
				if d.Backend != stats.Backend {
					t.Errorf("decision backend %q != stats backend %q", d.Backend, stats.Backend)
				}
				if d.ActualWallNS <= 0 {
					t.Errorf("backend %s: actual wall not stamped", backend)
				}
				if d.PredictedSimWallNS <= 0 {
					t.Errorf("backend %s: sim-side prediction missing", backend)
				}
				if d.Cells != c.Cells {
					t.Errorf("decision cells = %d, want %d", d.Cells, c.Cells)
				}
			}
		})
	}
}

// TestDecisionReasons pins the reason strings for every selection path.
func TestDecisionReasons(t *testing.T) {
	verified, err := Compile(workloads.Polynomial(10, 50), Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	unverified, err := Compile(workloads.Polynomial(10, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		c           *Compiled
		o           RunOptions
		wantBackend string
		wantReason  string
		wantFast    bool // fast-side prediction must be present
	}{
		{"auto-verified", verified, RunOptions{}, BackendFast, "auto-verified", true},
		{"auto-unverified", unverified, RunOptions{}, BackendSim, "unverified", false},
		{"auto-profile", verified, RunOptions{Profile: true}, BackendSim, "profile-requested", true},
		{"auto-recorder", verified, RunOptions{Recorder: &countingRec{}}, BackendSim, "cycle-recorder", true},
		{"explicit-sim", verified, RunOptions{Backend: BackendSim}, BackendSim, "explicit-sim", true},
		{"explicit-sim-unverified", unverified, RunOptions{Backend: BackendSim}, BackendSim, "explicit-sim", false},
		{"explicit-fast", verified, RunOptions{Backend: BackendFast}, BackendFast, "explicit-fast", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			backend, d, err := chooseBackend(tc.c, tc.o)
			if err != nil {
				t.Fatal(err)
			}
			if backend != tc.wantBackend {
				t.Errorf("backend = %q, want %q", backend, tc.wantBackend)
			}
			if d.Reason != tc.wantReason {
				t.Errorf("reason = %q, want %q", d.Reason, tc.wantReason)
			}
			if tc.wantFast && (d.PredictedOps == 0 || d.PredictedFastWallNS == 0) {
				t.Errorf("fast-side prediction missing: ops=%d wall=%d", d.PredictedOps, d.PredictedFastWallNS)
			}
			if !tc.wantFast && d.PredictedOps != 0 {
				t.Errorf("unexpected fast-side prediction: ops=%d", d.PredictedOps)
			}
		})
	}
	if _, _, err := chooseBackend(unverified, RunOptions{Backend: BackendFast}); err == nil {
		t.Error("fast-on-unverified must still fail")
	}
	if _, _, err := chooseBackend(verified, RunOptions{Backend: "warp9"}); err == nil {
		t.Error("unknown backend must still fail")
	}
}

// countingRec is a minimal cycle-observing recorder.
type countingRec struct {
	n int64
}

func (r *countingRec) RunStart(int, int64, int64)          {}
func (r *countingRec) RunEnd(int64)                        { r.n++ }
func (r *countingRec) CellStart(int64, int)                {}
func (r *countingRec) CellFinish(int64, int)               {}
func (r *countingRec) Issue(int64, int, obs.Unit)          { r.n++ }
func (r *countingRec) MemRef(int64, int, int, int64, bool) {}
func (r *countingRec) QueuePush(int64, int, obs.Queue, int) {
}
func (r *countingRec) QueuePop(int64, int, obs.Queue, int) {}
func (r *countingRec) Stall(int64, int, obs.Stall)         {}
func (r *countingRec) Phase(string, float64, int, string)  {}

// TestCostModelCalibrated checks the per-host self-benchmark produced
// usable constants (positive, finite, not absurdly large).
func TestCostModelCalibrated(t *testing.T) {
	m := CostModelForHost()
	if m.SimNSPerCellCycle <= 0 || m.FastNSPerOp <= 0 {
		t.Fatalf("calibration produced non-positive constants: %+v", m)
	}
	// A cell-cycle of the interpreter loop costs well under a
	// millisecond on any host that can run the tests at all.
	if m.SimNSPerCellCycle > 1e6 || m.FastNSPerOp > 1e6 {
		t.Fatalf("calibration constants implausible: %+v", m)
	}
}

// TestProgressUpdatesMonotone drives both backends with a progress hook
// and checks the positions are monotone, bounded by the modeled total,
// and end with a terminal update at exactly the final cycle count.
func TestProgressUpdatesMonotone(t *testing.T) {
	// Large enough that the 4096-cycle stride fires several times.
	c, err := Compile(workloads.Conv1D(9, 512), Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{BackendSim, BackendFast} {
		var ups []obs.ProgressUpdate
		_, stats, err := RunWith(c, zeroIn(c), RunOptions{
			Backend:  backend,
			Progress: func(u obs.ProgressUpdate) { ups = append(ups, u) },
		})
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if len(ups) < 2 {
			t.Fatalf("backend %s: want several updates, got %d", backend, len(ups))
		}
		last := ups[len(ups)-1]
		if !last.Done || last.Cycles != stats.Cycles {
			t.Errorf("backend %s: terminal update = %+v, want Done at cycle %d", backend, last, stats.Cycles)
		}
		var prev int64
		for i, u := range ups {
			if u.Cycles < prev {
				t.Errorf("backend %s: update %d went backwards (%d after %d)", backend, i, u.Cycles, prev)
			}
			prev = u.Cycles
			if u.TotalCycles != stats.Decision.PredictedCycles {
				t.Errorf("backend %s: update %d total = %d, want %d", backend, i, u.TotalCycles, stats.Decision.PredictedCycles)
			}
			if u.Cycles > u.TotalCycles {
				t.Errorf("backend %s: update %d position %d exceeds total %d", backend, i, u.Cycles, u.TotalCycles)
			}
		}
	}
}

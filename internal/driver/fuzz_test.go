package driver

import (
	"math/rand"
	"testing"

	"warp/internal/interp"
	"warp/internal/workloads"
)

// FuzzRandomEquivalence drives the whole pipeline from a fuzzed seed:
// generate a random W2 program, compile under every configuration,
// simulate, and compare word for word against the reference
// interpreter.  The seed corpus runs as a regular test; explore with
// `go test -fuzz=FuzzRandomEquivalence ./internal/driver`.
func FuzzRandomEquivalence(f *testing.F) {
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		src, inputs := workloads.RandomProgram(rng)
		for _, opts := range []Options{{Verify: true}, {NoOptimize: true, Verify: true}, {Pipeline: true, Verify: true}} {
			c, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("compile (%+v): %v\n%s", opts, err, src)
			}
			want, err := interp.Run(c.Info, inputs)
			if err != nil {
				t.Fatalf("interpret: %v\n%s", err, src)
			}
			got, _, err := Run(c, inputs)
			if err != nil {
				t.Fatalf("simulate (%+v): %v\n%s", opts, err, src)
			}
			for name, w := range want {
				for i := range w {
					if !approxEqual(got[name][i], w[i]) {
						t.Fatalf("(%+v) %s[%d] = %v, interpreter says %v\n%s",
							opts, name, i, got[name][i], w[i], src)
					}
				}
			}
		}
	})
}

package driver

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"warp/internal/workloads"
)

// compileFingerprint reduces one compilation to the byte string the
// determinism contract pins: every output a consumer can observe —
// microcode listings, the host I/O program, skew and proven queue
// occupancy, the scheduler's deterministic counters, and the verifier
// report — rendered in a canonical order.  Wall-clock measurements
// (phase Seconds, SearchNS, SkewNS) are deliberately excluded: they
// are measurements of the compile, not outputs of it.
func compileFingerprint(t *testing.T, c *Compiled) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "cells=%d skew=%d backoff=%v %q\n", c.Cells, c.Skew, c.PipelineBackoff, c.BackoffReason)
	sb.WriteString(c.Cell.Listing())
	sb.WriteString(c.IU.Listing())

	var chans []string
	byName := map[string]string{}
	for ch, words := range c.Host.In {
		name := fmt.Sprint(ch)
		chans = append(chans, name)
		byName[name] = fmt.Sprintf("in %s: %v\nout %s: %v\n", name, words, name, c.Host.Out[ch])
	}
	sort.Strings(chans)
	for _, name := range chans {
		sb.WriteString(byName[name])
	}

	var occ []string
	for ch, n := range c.QueueOcc {
		occ = append(occ, fmt.Sprintf("occ %s=%d", ch, n))
	}
	sort.Strings(occ)
	sb.WriteString(strings.Join(occ, " ") + "\n")

	// Scheduler introspection: the counters are part of the contract
	// (a parallel II search must count placements exactly as the
	// serial one), the nanosecond fields are not.
	st := c.Sched.Totals()
	fmt.Fprintf(&sb, "sched loops=%d pipelined=%d attempts=%d placements=%d evictions=%d emitrejects=%d skewops=%d skewpairs=%d skewpruned=%d\n",
		st.Loops, st.Pipelined, st.Attempts, st.Placements, st.Evictions, st.EmitRejects,
		st.SkewOps, st.SkewPairs, st.SkewPruned)
	for _, k := range c.Sched.Skews {
		fmt.Fprintf(&sb, "skewsearch %s method=%s ops=%d pairs=%d pruned=%d skew=%d\n",
			k.Channel, k.Method, k.Ops, k.Pairs, k.Pruned, k.Skew)
	}

	if c.Verified != nil {
		fmt.Fprintf(&sb, "verified checked=%d lead=%d memrefs=%d signals=%d\n",
			c.Verified.Checked, c.Verified.Lead, c.Verified.MemRefs, c.Verified.Signals)
		var vocc []string
		for ch, o := range c.Verified.Data {
			vocc = append(vocc, fmt.Sprintf("vocc %s max=%d method=%s sends=%d recvs=%d",
				ch, o.Max, o.Method, c.Verified.Sends[ch], c.Verified.Recvs[ch]))
		}
		sort.Strings(vocc)
		sb.WriteString(strings.Join(vocc, "\n") + "\n")
		fmt.Fprintf(&sb, "adr max=%d method=%s sig max=%d method=%s\n",
			c.Verified.Adr.Max, c.Verified.Adr.Method, c.Verified.Sig.Max, c.Verified.Sig.Method)
	}
	return sb.String()
}

// phaseNames returns the compile's phase names in merge order — the
// canonical order must itself be independent of the worker count.
func phaseNames(c *Compiled) string {
	var names []string
	for _, p := range c.Phases {
		names = append(names, p.Name)
	}
	return strings.Join(names, ",")
}

// TestCompileEquivalence is the compile-equivalence harness: every
// example workload, plain and software-pipelined, compiled at 1, 2 and
// 8 workers, must produce byte-identical microcode, host programs,
// skew vectors and scheduler counters.  The serial compilation
// (CompileWorkers=1) is the reference.  Run under -race in CI, this is
// also the data-race probe for the whole parallel compile path.
func TestCompileEquivalence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"polynomial", workloads.PolynomialPaper()},
		{"1d-conv", workloads.Conv1DPaper()},
		{"binop", workloads.BinopPaper()},
		{"colorseg", workloads.ColorSegPaper()},
		{"mandelbrot", workloads.MandelbrotPaper()},
		{"matmul8", workloads.Matmul(8)},
		{"fft16", workloads.FFT(16)},
		{"conv1d-512", workloads.Conv1D(9, 512)},
	}
	if testing.Short() {
		cases = cases[:3]
	}
	for _, tc := range cases {
		for _, pipe := range []bool{false, true} {
			mode := "plain"
			if pipe {
				mode = "pipelined"
			}
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				ref, err := Compile(tc.src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 1})
				if err != nil {
					t.Fatalf("serial compile: %v", err)
				}
				refFP := compileFingerprint(t, ref)
				refPhases := phaseNames(ref)
				for _, workers := range []int{2, 8} {
					c, err := Compile(tc.src, Options{Pipeline: pipe, Verify: true, CompileWorkers: workers})
					if err != nil {
						t.Fatalf("workers=%d compile: %v", workers, err)
					}
					if fp := compileFingerprint(t, c); fp != refFP {
						t.Errorf("workers=%d: output diverged from serial compile:\n%s",
							workers, firstDiff(refFP, fp))
					}
					if pn := phaseNames(c); pn != refPhases {
						t.Errorf("workers=%d: phase order %q, serial %q", workers, pn, refPhases)
					}
				}
			})
		}
	}
}

// TestCompileEquivalenceCycles closes the loop on the contract's
// "cycle counts" clause: programs compiled at different worker counts
// must simulate to the same cycle count (guaranteed by byte-identical
// microcode, asserted here end to end on a small workload).
func TestCompileEquivalenceCycles(t *testing.T) {
	src := workloads.Polynomial(10, 100)
	inputs := map[string][]float64{
		"z": make([]float64, 100), "c": make([]float64, 10),
	}
	var ref int64
	for i, workers := range []int{1, 2, 8} {
		c, err := Compile(src, Options{Pipeline: true, Verify: true, CompileWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		_, stats, err := Run(c, inputs)
		if err != nil {
			t.Fatalf("workers=%d run: %v", workers, err)
		}
		if i == 0 {
			ref = stats.Cycles
		} else if stats.Cycles != ref {
			t.Errorf("workers=%d: %d cycles, serial compile gave %d", workers, stats.Cycles, ref)
		}
	}
}

// firstDiff locates the first divergent line of two fingerprints so a
// failure names the diverging artifact instead of dumping both.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: serial %d lines, parallel %d lines", len(al), len(bl))
}

// FuzzCompileParallel is the differential fuzzer for the parallel
// compile path: every accepted random program must compile to
// bit-identical artifacts serially and at 8 workers, in both plain and
// pipelined modes, with verification on — so every accepted program
// also passes the static verifier under both schedules.  The seed
// corpus runs as a regular test; explore with
// `go test -fuzz=FuzzCompileParallel ./internal/driver`.
func FuzzCompileParallel(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		src, _ := workloads.RandomProgram(rng)
		for _, pipe := range []bool{false, true} {
			serial, err := Compile(src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 1})
			if err != nil {
				// The generator can emit programs the front end
				// rejects; the contract is only about accepted ones —
				// but rejection itself must be worker-independent.
				if _, perr := Compile(src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 8}); perr == nil {
					t.Fatalf("pipeline=%v: serial compile rejected (%v) but parallel accepted\n%s", pipe, err, src)
				}
				continue
			}
			par, err := Compile(src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 8})
			if err != nil {
				t.Fatalf("pipeline=%v: parallel compile rejected what serial accepted: %v\n%s", pipe, err, src)
			}
			sfp, pfp := compileFingerprint(t, serial), compileFingerprint(t, par)
			if sfp != pfp {
				t.Fatalf("pipeline=%v: serial and 8-worker compiles diverged:\n%s\n%s",
					pipe, firstDiff(sfp, pfp), src)
			}
			if serial.Verified == nil || par.Verified == nil {
				t.Fatalf("pipeline=%v: verification did not run", pipe)
			}
		}
	})
}

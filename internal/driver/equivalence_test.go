package driver

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"warp/internal/workloads"
)

// compileFingerprint is the determinism contract's byte string; since
// PR 10 the canonical definition is driver.Fingerprint (the symbolic
// template subsystem pins instantiation against it too).
func compileFingerprint(t *testing.T, c *Compiled) string {
	t.Helper()
	return Fingerprint(c)
}

// phaseNames returns the compile's phase names in merge order — the
// canonical order must itself be independent of the worker count.
func phaseNames(c *Compiled) string {
	var names []string
	for _, p := range c.Phases {
		names = append(names, p.Name)
	}
	return strings.Join(names, ",")
}

// TestCompileEquivalence is the compile-equivalence harness: every
// example workload, plain and software-pipelined, compiled at 1, 2 and
// 8 workers, must produce byte-identical microcode, host programs,
// skew vectors and scheduler counters.  The serial compilation
// (CompileWorkers=1) is the reference.  Run under -race in CI, this is
// also the data-race probe for the whole parallel compile path.
func TestCompileEquivalence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"polynomial", workloads.PolynomialPaper()},
		{"1d-conv", workloads.Conv1DPaper()},
		{"binop", workloads.BinopPaper()},
		{"colorseg", workloads.ColorSegPaper()},
		{"mandelbrot", workloads.MandelbrotPaper()},
		{"matmul8", workloads.Matmul(8)},
		{"fft16", workloads.FFT(16)},
		{"conv1d-512", workloads.Conv1D(9, 512)},
	}
	if testing.Short() {
		cases = cases[:3]
	}
	for _, tc := range cases {
		for _, pipe := range []bool{false, true} {
			mode := "plain"
			if pipe {
				mode = "pipelined"
			}
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				ref, err := Compile(tc.src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 1})
				if err != nil {
					t.Fatalf("serial compile: %v", err)
				}
				refFP := compileFingerprint(t, ref)
				refPhases := phaseNames(ref)
				for _, workers := range []int{2, 8} {
					c, err := Compile(tc.src, Options{Pipeline: pipe, Verify: true, CompileWorkers: workers})
					if err != nil {
						t.Fatalf("workers=%d compile: %v", workers, err)
					}
					if fp := compileFingerprint(t, c); fp != refFP {
						t.Errorf("workers=%d: output diverged from serial compile:\n%s",
							workers, firstDiff(refFP, fp))
					}
					if pn := phaseNames(c); pn != refPhases {
						t.Errorf("workers=%d: phase order %q, serial %q", workers, pn, refPhases)
					}
				}
			})
		}
	}
}

// TestCompileEquivalenceCycles closes the loop on the contract's
// "cycle counts" clause: programs compiled at different worker counts
// must simulate to the same cycle count (guaranteed by byte-identical
// microcode, asserted here end to end on a small workload).
func TestCompileEquivalenceCycles(t *testing.T) {
	src := workloads.Polynomial(10, 100)
	inputs := map[string][]float64{
		"z": make([]float64, 100), "c": make([]float64, 10),
	}
	var ref int64
	for i, workers := range []int{1, 2, 8} {
		c, err := Compile(src, Options{Pipeline: true, Verify: true, CompileWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		_, stats, err := Run(c, inputs)
		if err != nil {
			t.Fatalf("workers=%d run: %v", workers, err)
		}
		if i == 0 {
			ref = stats.Cycles
		} else if stats.Cycles != ref {
			t.Errorf("workers=%d: %d cycles, serial compile gave %d", workers, stats.Cycles, ref)
		}
	}
}

// firstDiff locates the first divergent line of two fingerprints so a
// failure names the diverging artifact instead of dumping both.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: serial %d lines, parallel %d lines", len(al), len(bl))
}

// FuzzCompileParallel is the differential fuzzer for the parallel
// compile path: every accepted random program must compile to
// bit-identical artifacts serially and at 8 workers, in both plain and
// pipelined modes, with verification on — so every accepted program
// also passes the static verifier under both schedules.  The seed
// corpus runs as a regular test; explore with
// `go test -fuzz=FuzzCompileParallel ./internal/driver`.
func FuzzCompileParallel(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		src, _ := workloads.RandomProgram(rng)
		for _, pipe := range []bool{false, true} {
			serial, err := Compile(src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 1})
			if err != nil {
				// The generator can emit programs the front end
				// rejects; the contract is only about accepted ones —
				// but rejection itself must be worker-independent.
				if _, perr := Compile(src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 8}); perr == nil {
					t.Fatalf("pipeline=%v: serial compile rejected (%v) but parallel accepted\n%s", pipe, err, src)
				}
				continue
			}
			par, err := Compile(src, Options{Pipeline: pipe, Verify: true, CompileWorkers: 8})
			if err != nil {
				t.Fatalf("pipeline=%v: parallel compile rejected what serial accepted: %v\n%s", pipe, err, src)
			}
			sfp, pfp := compileFingerprint(t, serial), compileFingerprint(t, par)
			if sfp != pfp {
				t.Fatalf("pipeline=%v: serial and 8-worker compiles diverged:\n%s\n%s",
					pipe, firstDiff(sfp, pfp), src)
			}
			if serial.Verified == nil || par.Verified == nil {
				t.Fatalf("pipeline=%v: verification did not run", pipe)
			}
		}
	})
}

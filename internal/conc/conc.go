// Package conc holds the one concurrency primitive the parallel
// compiler shares: a bounded fan-out over an index range.
//
// The compiler's parallelism discipline is that workers communicate
// only through per-index result slots — no locks, no channels of
// results, no order-dependent accumulation inside the fan — and the
// caller merges the slots in index order afterwards.  That discipline
// is what makes the compiled artifact byte-identical at any worker
// count; Do is deliberately too small an API to express anything else.
package conc

import (
	"sync"
	"sync/atomic"
)

// Do runs fn(0), ..., fn(n-1), each exactly once, on at most workers
// concurrent goroutines, and returns when all calls have finished.
// With workers ≤ 1 (or n == 1) the calls run serially in index order
// on the calling goroutine, so a serial configuration never pays for
// (or observes) a goroutine switch.
//
// Which worker runs which index is scheduling-dependent; fn must write
// only state owned by its index.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

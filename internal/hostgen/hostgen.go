// Package hostgen generates the host I/O processor programs (§2.2,
// §6.1): the exact sequence of words the host must feed into the first
// cell's queues, and the host memory locations that successive words
// arriving from the last cell are stored to.
//
// "The I/O processors in the Warp host must be programmed to supply
// input in the exact sequence as the data is used in the Warp cells" —
// the sequence is obtained by walking the scheduled cell program in
// execution order and resolving each receive's external binding.
package hostgen

import (
	"fmt"

	"warp/internal/mcode"
	"warp/internal/w2"
)

// Word is one input word the host sends: either a literal or a host
// memory location.
type Word struct {
	Literal bool
	Value   float64 // literal value
	Index   int     // host memory index (when !Literal)
}

// Discard marks an output word with no host destination (a dummy send
// inserted to conserve the stream, as in the paper's Figure 4-1).
const Discard = -1

// Program is the host I/O program: per channel, the input word sequence
// for the first cell and the output destination sequence from the last
// cell (host memory index or Discard).
type Program struct {
	In  map[w2.Channel][]Word
	Out map[w2.Channel][]int
}

// Generate walks the cell program dynamically and produces the host
// program.  Every receive on the array's input side must carry an
// external binding (the first cell receives it from the host); sends
// without externals are discarded on output.
func Generate(cell *mcode.CellProgram) (*Program, error) {
	g := &walker{
		prog: &Program{
			In:  map[w2.Channel][]Word{},
			Out: map[w2.Channel][]int{},
		},
		iters: map[*mcode.LoopItem]int64{},
	}
	if err := g.walk(cell.Items); err != nil {
		return nil, err
	}
	return g.prog, nil
}

type walker struct {
	prog  *Program
	stack []*mcode.LoopItem
	iters map[*mcode.LoopItem]int64
}

func (g *walker) walk(items []mcode.CodeItem) error {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			for _, in := range it.Instrs {
				for _, io := range in.IO {
					if err := g.ioOp(io); err != nil {
						return err
					}
				}
			}
		case *mcode.LoopItem:
			g.stack = append(g.stack, it)
			for k := int64(0); k < it.Trips; k++ {
				g.iters[it] = k
				if err := g.walk(it.Body); err != nil {
					return err
				}
			}
			g.stack = g.stack[:len(g.stack)-1]
		}
	}
	return nil
}

// resolve evaluates a host binding's memory index at the current
// iteration vector.
func (g *walker) resolve(a *mcode.AddrInfo) (int, error) {
	aff := a.Shifted()
	idx := int64(a.Base) + aff.Const
	for _, t := range aff.Terms {
		li := g.findLoop(t.Var)
		if li == nil {
			return 0, fmt.Errorf("hostgen: external %s references loop %s outside its scope", a, t.Var.Var)
		}
		idx += t.Coef * (li.First + li.Step*g.iters[li])
	}
	return int(idx), nil
}

func (g *walker) findLoop(f *w2.ForStmt) *mcode.LoopItem {
	for i := len(g.stack) - 1; i >= 0; i-- {
		if g.stack[i].Src == f {
			return g.stack[i]
		}
	}
	return nil
}

func (g *walker) ioOp(io *mcode.IOOp) error {
	if io.Recv {
		switch {
		case io.ExtLiteral != nil:
			g.prog.In[io.Chan] = append(g.prog.In[io.Chan], Word{Literal: true, Value: *io.ExtLiteral})
		case io.Ext != nil:
			idx, err := g.resolve(io.Ext)
			if err != nil {
				return err
			}
			g.prog.In[io.Chan] = append(g.prog.In[io.Chan], Word{Index: idx})
		default:
			return fmt.Errorf("hostgen: a receive on channel %s has no external binding; the first cell would starve (every receive from the host side needs an external, §4.3)", io.Chan)
		}
		return nil
	}
	if io.Ext != nil {
		idx, err := g.resolve(io.Ext)
		if err != nil {
			return err
		}
		g.prog.Out[io.Chan] = append(g.prog.Out[io.Chan], idx)
	} else {
		g.prog.Out[io.Chan] = append(g.prog.Out[io.Chan], Discard)
	}
	return nil
}

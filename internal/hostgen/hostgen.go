// Package hostgen generates the host I/O processor programs (§2.2,
// §6.1): the exact sequence of words the host must feed into the first
// cell's queues, and the host memory locations that successive words
// arriving from the last cell are stored to.
//
// "The I/O processors in the Warp host must be programmed to supply
// input in the exact sequence as the data is used in the Warp cells" —
// the sequence is obtained by walking the scheduled cell program in
// execution order and resolving each receive's external binding.
//
// The walk is driven by a precompiled plan rather than by interpreting
// the code items directly: each I/O operation's affine host address is
// resolved once against its (static) enclosing loop nest, so emitting a
// word costs a few integer multiply-adds instead of map lookups and an
// affine-shift allocation.  The streams for a 512×512 image workload
// run to millions of words, which made the per-word constant the
// dominant phase of whole compilations before this plan existed.
package hostgen

import (
	"fmt"

	"warp/internal/mcode"
	"warp/internal/w2"
)

// Word is one input word the host sends: either a literal or a host
// memory location.
type Word struct {
	Literal bool
	Value   float64 // literal value
	Index   int     // host memory index (when !Literal)
}

// Discard marks an output word with no host destination (a dummy send
// inserted to conserve the stream, as in the paper's Figure 4-1).
const Discard = -1

// Program is the host I/O program: per channel, the input word sequence
// for the first cell and the output destination sequence from the last
// cell (host memory index or Discard).
type Program struct {
	In  map[w2.Channel][]Word
	Out map[w2.Channel][]int
}

// stream identifies one host I/O stream: a (channel, direction) pair.
type stream struct {
	ch   w2.Channel
	recv bool
}

// opKind classifies what a planned I/O operation emits.
type opKind uint8

const (
	opInLiteral  opKind = iota // In word, literal value
	opInExt                    // In word, resolved host index
	opOutExt                   // Out index, resolved
	opOutDiscard               // Out index, Discard
)

// opTerm is one affine term of a resolved host address: coefficient
// times the current value of the loop bound to slot.
type opTerm struct {
	coef int64
	slot int
}

// opPlan is one I/O operation with its host binding resolved against
// the static loop nest: emitting a word evaluates base + Σ coef·val.
type opPlan struct {
	kind  opKind
	strm  stream
	value float64 // literal value (opInLiteral)
	base  int64   // Base + Shifted().Const (opInExt, opOutExt)
	terms []opTerm
	// err is a lazily-reported resolution failure: the dynamic walk
	// only faults when the operation actually executes, so a plan op
	// inside a zero-trip loop must not fail the generation.
	err error
}

// planNode is one node of the precompiled walk: either a run of
// operations (from straight-line code) or a counted loop.
type planNode struct {
	ops []opPlan // non-loop node: operations in execution order

	// loop node (ops == nil):
	trips, first, step int64
	slot               int
	body               []planNode
}

// plan is the precompiled host-generation walk for one stream subset.
type plan struct {
	nodes []planNode
	slots int
	// words counts the dynamic emissions per stream (for exact
	// preallocation); firstErr is the document-first resolution error
	// that a walk would actually reach (nil when none executes).
	words    map[stream]int64
	firstErr error
}

// Generate walks the cell program and produces the host program.  Every
// receive on the array's input side must carry an external binding (the
// first cell receives it from the host); sends without externals are
// discarded on output.
func Generate(cell *mcode.CellProgram) (*Program, error) {
	return GenerateParallel(cell, 1)
}

// GenerateParallel generates like Generate, emitting the independent
// per-(channel, direction) streams on up to workers goroutines.  The
// streams are disjoint slices built in the same walk order at any
// worker count, so the resulting Program is identical to Generate's.
func GenerateParallel(cell *mcode.CellProgram, workers int) (*Program, error) {
	full := compilePlan(cell.Items)
	if full.firstErr != nil {
		return nil, full.firstErr
	}
	prog := &Program{
		In:  map[w2.Channel][]Word{},
		Out: map[w2.Channel][]int{},
	}
	streams := full.activeStreams()
	if workers < 2 || len(streams) < 2 {
		e := newEmitter(full)
		for _, s := range streams {
			e.reserve(s, full.words[s])
		}
		e.run(full.nodes)
		e.install(prog)
		return prog, nil
	}
	// Fan out one pruned plan per stream.  Each walk visits only the
	// loops that contain its stream's operations, so the total work is
	// close to the serial walk even though the tree is traversed once
	// per stream.  The streams are disjoint map keys, so the merge is
	// order-independent — the output is byte-identical to the serial
	// walk's at any worker count.
	sem := make(chan struct{}, workers)
	emitters := make([]*emitter, len(streams))
	done := make(chan struct{}, len(streams))
	for i, s := range streams {
		i, s := i, s
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; done <- struct{}{} }()
			sub := full.filter(s)
			e := newEmitter(sub)
			e.reserve(s, full.words[s])
			e.run(sub.nodes)
			emitters[i] = e
		}()
	}
	for range streams {
		<-done
	}
	for _, e := range emitters {
		e.install(prog)
	}
	return prog, nil
}

// activeStreams lists the streams with at least one dynamic word, in
// canonical (channel, direction) order.
func (p *plan) activeStreams() []stream {
	var out []stream
	for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
		for _, recv := range []bool{true, false} {
			if p.words[stream{ch, recv}] > 0 {
				out = append(out, stream{ch, recv})
			}
		}
	}
	return out
}

// filter returns the plan reduced to one stream's operations, with
// loops whose bodies became empty pruned (their iterations emit
// nothing, so skipping them preserves the output exactly).
func (p *plan) filter(s stream) *plan {
	var prune func(nodes []planNode) []planNode
	prune = func(nodes []planNode) []planNode {
		var out []planNode
		for _, n := range nodes {
			if n.ops != nil {
				var ops []opPlan
				for _, op := range n.ops {
					if op.strm == s {
						ops = append(ops, op)
					}
				}
				if len(ops) > 0 {
					out = append(out, planNode{ops: ops})
				}
				continue
			}
			body := prune(n.body)
			if len(body) > 0 {
				out = append(out, planNode{trips: n.trips, first: n.first, step: n.step, slot: n.slot, body: body})
			}
		}
		return out
	}
	return &plan{nodes: prune(p.nodes), slots: p.slots, words: p.words}
}

// compilePlan builds the precompiled walk for the item tree.  It also
// performs the symbolic word count and locates the first resolution
// error an actual walk would reach.
func compilePlan(items []mcode.CodeItem) *plan {
	p := &plan{words: map[stream]int64{}}
	b := &planBuilder{plan: p}
	p.nodes = b.build(items, 1)
	p.slots = b.nextSlot
	return p
}

// loopBind pairs a loop item with its slot during plan construction.
type loopBind struct {
	li   *mcode.LoopItem
	slot int
}

type planBuilder struct {
	plan     *plan
	stack    []*loopBind
	nextSlot int
}

// build compiles one item list; mult is the product of the enclosing
// trip counts (saturating), used for word counting and reachability.
func (b *planBuilder) build(items []mcode.CodeItem, mult int64) []planNode {
	var nodes []planNode
	var ops []opPlan
	flush := func() {
		if len(ops) > 0 {
			nodes = append(nodes, planNode{ops: ops})
			ops = nil
		}
	}
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			for _, in := range it.Instrs {
				for _, io := range in.IO {
					op := b.compileOp(io)
					if op.err != nil && mult > 0 && b.plan.firstErr == nil {
						b.plan.firstErr = op.err
					}
					b.plan.words[op.strm] += mult
					ops = append(ops, op)
				}
			}
		case *mcode.LoopItem:
			flush()
			slot := b.nextSlot
			b.nextSlot++
			b.stack = append(b.stack, &loopBind{li: it, slot: slot})
			body := b.build(it.Body, satMul(mult, it.Trips))
			b.stack = b.stack[:len(b.stack)-1]
			nodes = append(nodes, planNode{
				trips: it.Trips, first: it.First, step: it.Step,
				slot: slot, body: body,
			})
		}
	}
	flush()
	return nodes
}

// satMul multiplies saturating at 1<<40 — counts feed preallocation
// and reachability only, so overflow must clamp, not wrap.
func satMul(a, c int64) int64 {
	const lim = 1 << 40
	if a <= 0 || c <= 0 {
		return 0
	}
	if a > lim/c {
		return lim
	}
	return a * c
}

// compileOp resolves one I/O operation against the current loop stack.
func (b *planBuilder) compileOp(io *mcode.IOOp) opPlan {
	s := stream{io.Chan, io.Recv}
	if io.Recv {
		switch {
		case io.ExtLiteral != nil:
			return opPlan{kind: opInLiteral, strm: s, value: *io.ExtLiteral}
		case io.Ext != nil:
			return b.resolve(opInExt, s, io.Ext)
		default:
			return opPlan{strm: s, err: fmt.Errorf("hostgen: a receive on channel %s has no external binding; the first cell would starve (every receive from the host side needs an external, §4.3)", io.Chan)}
		}
	}
	if io.Ext != nil {
		return b.resolve(opOutExt, s, io.Ext)
	}
	return opPlan{kind: opOutDiscard, strm: s}
}

// resolve folds the binding's pipelining delta into the constant term
// (AddrInfo.Shifted) and binds each remaining affine term to the
// innermost enclosing loop with the matching source statement — the
// binding the dynamic walk re-derived per emitted word.
func (b *planBuilder) resolve(kind opKind, s stream, a *mcode.AddrInfo) opPlan {
	aff := a.Shifted()
	op := opPlan{kind: kind, strm: s, base: int64(a.Base) + aff.Const}
	for _, t := range aff.Terms {
		bind := b.findLoop(t.Var)
		if bind == nil {
			return opPlan{strm: s, err: fmt.Errorf("hostgen: external %s references loop %s outside its scope", a, t.Var.Var)}
		}
		op.terms = append(op.terms, opTerm{coef: t.Coef, slot: bind.slot})
	}
	return op
}

func (b *planBuilder) findLoop(f *w2.ForStmt) *loopBind {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if b.stack[i].li.Src == f {
			return b.stack[i]
		}
	}
	return nil
}

// numChans bounds the channel index space (ChanX, ChanY).
const numChans = 2

// emitter executes a plan: loop slots hold current index values, and
// each operation appends to its stream's slice (arrays indexed by
// channel — no map traffic on the per-word path).
type emitter struct {
	vals []int64
	in   [numChans][]Word
	outs [numChans][]int
}

func newEmitter(p *plan) *emitter {
	return &emitter{vals: make([]int64, p.slots)}
}

// reserve preallocates one stream's backing store with the exact
// symbolic word count (capped defensively: a pathological trip-count
// product should grow by append, not one giant allocation).
func (e *emitter) reserve(s stream, n int64) {
	const capLimit = 1 << 24
	if n > capLimit {
		n = capLimit
	}
	if s.recv {
		e.in[s.ch] = make([]Word, 0, n)
	} else {
		e.outs[s.ch] = make([]int, 0, n)
	}
}

func (e *emitter) run(nodes []planNode) {
	for i := range nodes {
		n := &nodes[i]
		if n.ops != nil {
			for j := range n.ops {
				e.emit(&n.ops[j])
			}
			continue
		}
		v := n.first
		for k := int64(0); k < n.trips; k++ {
			e.vals[n.slot] = v
			e.run(n.body)
			v += n.step
		}
	}
}

func (e *emitter) emit(op *opPlan) {
	switch op.kind {
	case opInLiteral:
		e.in[op.strm.ch] = append(e.in[op.strm.ch], Word{Literal: true, Value: op.value})
	case opInExt:
		e.in[op.strm.ch] = append(e.in[op.strm.ch], Word{Index: int(e.index(op))})
	case opOutExt:
		e.outs[op.strm.ch] = append(e.outs[op.strm.ch], int(e.index(op)))
	case opOutDiscard:
		e.outs[op.strm.ch] = append(e.outs[op.strm.ch], Discard)
	}
}

func (e *emitter) index(op *opPlan) int64 {
	idx := op.base
	for _, t := range op.terms {
		idx += t.coef * e.vals[t.slot]
	}
	return idx
}

// install moves the emitter's streams into the program maps, creating
// map entries only for streams that emitted at least one word (the
// shape the dynamic walk produced).
func (e *emitter) install(prog *Program) {
	for ch := 0; ch < numChans; ch++ {
		if ws := e.in[ch]; len(ws) > 0 {
			prog.In[w2.Channel(ch)] = ws
		}
		if is := e.outs[ch]; len(is) > 0 {
			prog.Out[w2.Channel(ch)] = is
		}
	}
}

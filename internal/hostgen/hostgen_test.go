package hostgen

import (
	"testing"

	"warp/internal/cellgen"
	"warp/internal/ir"
	"warp/internal/opt"
	"warp/internal/w2"
)

func gen(t *testing.T, src string) *Program {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(p)
	cg, err := cellgen.Generate(p, cellgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Generate(cg.Cell)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostInputOrderAndLiterals(t *testing.T) {
	h := gen(t, `
module t (xs in, ys out)
float xs[6];
float ys[3];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float a, b;
        int i;
        for i := 0 to 2 do begin
            receive (L, X, a, xs[2*i+1]);
            receive (L, Y, b, 0.5);
            send (R, X, a+b, ys[i]);
        end;
    end
    call f;
end
`)
	// X inputs: xs[1], xs[3], xs[5] in that order.
	wantX := []int{1, 3, 5}
	if len(h.In[w2.ChanX]) != 3 {
		t.Fatalf("X inputs: %d, want 3", len(h.In[w2.ChanX]))
	}
	for i, w := range h.In[w2.ChanX] {
		if w.Literal || w.Index != wantX[i] {
			t.Errorf("X input %d = %+v, want index %d", i, w, wantX[i])
		}
	}
	// Y inputs: the literal 0.5 three times.
	for i, w := range h.In[w2.ChanY] {
		if !w.Literal || w.Value != 0.5 {
			t.Errorf("Y input %d = %+v, want literal 0.5", i, w)
		}
	}
	// Outputs: ys base is 6 (after xs) + i.
	for i, idx := range h.Out[w2.ChanX] {
		if idx != 6+i {
			t.Errorf("X output %d stored at %d, want %d", i, idx, 6+i)
		}
	}
}

func TestHostDiscardForDummySends(t *testing.T) {
	h := gen(t, `
module t (xs in, ys out)
float xs[2];
float ys[1];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float a, b;
        receive (L, X, a, xs[0]);
        receive (L, X, b, xs[1]);
        send (R, X, a+b, ys[0]);
        send (R, X, 0.0);
    end
    call f;
end
`)
	out := h.Out[w2.ChanX]
	if len(out) != 2 {
		t.Fatalf("outputs: %d, want 2", len(out))
	}
	if out[0] != 2 {
		t.Errorf("first output at %d, want 2 (ys base)", out[0])
	}
	if out[1] != Discard {
		t.Errorf("dummy send not discarded: %d", out[1])
	}
}

func TestHostMissingExternalRejected(t *testing.T) {
	m, err := w2.Parse(`
module t (xs in, ys out)
float xs[2];
float ys[2];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float a;
        receive (L, X, a);
        send (R, X, a, ys[0]);
    end
    call f;
end
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cellgen.Generate(p, cellgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(cg.Cell); err == nil {
		t.Fatal("receive without an external must fail host generation")
	}
}

package opt

import (
	"testing"

	"warp/internal/ir"
	"warp/internal/w2"
)

func buildSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func wrap(body string) string {
	return `
module t (xs in, ys out)
float xs[16];
float ys[16];
cellprogram (cid : 0 : 1)
begin
    function f
    begin
        float a, b, c, d, e, g, h, q, v, w;
        float buf[4];
        int i;
` + body + `
    end
    call f;
end
`
}

func countOp(p *ir.Program, op ir.Op) int {
	n := 0
	for _, fn := range p.Funcs {
		ir.Walk(fn.Regions, func(b *ir.Block) {
			for _, node := range b.Nodes {
				if node.Op == op {
					n++
				}
			}
		})
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	p := buildSrc(t, wrap(`
        v := (2.0 + 3.0) * 4.0;
        send (R, X, v, ys[0]);
        receive (L, X, v, xs[0]);
`))
	s := Optimize(p)
	if s.Folded < 2 {
		t.Errorf("folded %d, want >= 2", s.Folded)
	}
	if n := countOp(p, ir.OpFadd) + countOp(p, ir.OpFmul); n != 0 {
		t.Errorf("%d arithmetic ops remain after folding constants", n)
	}
	// The sent value should now be the constant 20.
	found := false
	for _, fn := range p.Funcs {
		ir.Walk(fn.Regions, func(b *ir.Block) {
			for _, n := range b.Nodes {
				if n.Op == ir.OpSend && n.Args[0].Op == ir.OpConst && n.Args[0].FVal == 20 {
					found = true
				}
			}
		})
	}
	if !found {
		t.Error("send argument not folded to 20")
	}
}

func TestIdentityRemoval(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        w := v + 0.0;
        w := w * 1.0;
        w := w - 0.0;
        w := w / 1.0;
        send (R, X, w, ys[0]);
`))
	s := Optimize(p)
	if s.Idempotent < 4 {
		t.Errorf("removed %d identities, want >= 4", s.Idempotent)
	}
	// The send must trace straight back to the receive.
	for _, fn := range p.Funcs {
		ir.Walk(fn.Regions, func(b *ir.Block) {
			for _, n := range b.Nodes {
				if n.Op == ir.OpSend && n.Args[0].Op != ir.OpRecv {
					t.Errorf("send argument is %s, want the receive directly", n.Args[0].Op)
				}
			}
		})
	}
}

func TestCSE(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, a, xs[0]);
        receive (L, X, b, xs[1]);
        v := (a + b) * (a + b);
        w := (b + a) * 2.0;
        send (R, X, v + w, ys[0]);
`))
	s := Optimize(p)
	if s.CSE < 2 {
		t.Errorf("CSE merged %d, want >= 2 (a+b twice, plus the commuted b+a)", s.CSE)
	}
	if n := countOp(p, ir.OpFadd); n > 3 {
		t.Errorf("%d adds remain; a+b should exist once", n)
	}
}

func TestHeightReduction(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, a, xs[0]);
        receive (L, X, b, xs[1]);
        receive (L, X, c, xs[2]);
        receive (L, X, d, xs[3]);
        receive (L, X, e, xs[4]);
        receive (L, X, g, xs[5]);
        receive (L, X, h, xs[6]);
        receive (L, X, q, xs[7]);
        send (R, X, a + b + c + d + e + g + h + q, ys[0]);
`))
	s := Optimize(p)
	if s.Rebalanced < 1 {
		t.Fatalf("no chain was rebalanced")
	}
	// Depth of the add tree feeding the send must be ceil(log2 8) = 3.
	var depth func(n *ir.Node) int
	depth = func(n *ir.Node) int {
		if n.Op != ir.OpFadd {
			return 0
		}
		d := 0
		for _, a := range n.Args {
			if ad := depth(a); ad > d {
				d = ad
			}
		}
		return d + 1
	}
	for _, fn := range p.Funcs {
		ir.Walk(fn.Regions, func(b *ir.Block) {
			for _, n := range b.Nodes {
				if n.Op == ir.OpSend {
					if d := depth(n.Args[0]); d != 3 {
						t.Errorf("add tree depth %d, want 3", d)
					}
				}
			}
		})
	}
}

func TestDeadWriteElimination(t *testing.T) {
	p := buildSrc(t, wrap(`
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            w := v * 2.0;
            send (R, X, w);
        end;
`))
	Optimize(p)
	// v and w are never read across blocks: no writes must remain.
	if n := countOp(p, ir.OpWrite); n != 0 {
		t.Errorf("%d dead writes remain", n)
	}
}

func TestLiveWriteKept(t *testing.T) {
	p := buildSrc(t, wrap(`
        v := 0.0;
        for i := 0 to 3 do begin
            receive (L, X, w, xs[i]);
            v := v + w;
            send (R, X, w);
        end;
        send (R, X, v, ys[0]);
        receive (L, X, v, xs[0]);
`))
	Optimize(p)
	if n := countOp(p, ir.OpWrite); n < 2 {
		t.Errorf("accumulator writes were wrongly removed (%d left)", n)
	}
}

func TestSelectSimplification(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        if 1.0 < 2.0 then w := v; else w := 0.0;
        send (R, X, w, ys[0]);
`))
	s := Optimize(p)
	if countOp(p, ir.OpSelect) != 0 {
		t.Errorf("constant-condition selects remain (stats: %+v)", s)
	}
}

func TestDeadCodeRemoval(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        w := v * 3.0;
        send (R, X, v, ys[0]);
`))
	s := Optimize(p)
	if s.Dead == 0 {
		t.Error("dead multiply not removed")
	}
	if n := countOp(p, ir.OpFmul); n != 0 {
		t.Errorf("%d dead multiplies remain", n)
	}
}

// TestOptimizePreservesSemantics is covered end to end by the driver
// package (simulator vs interpreter with and without optimization);
// here we only check the optimizer is idempotent.
func TestOptimizeIdempotent(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, a, xs[0]);
        receive (L, X, b, xs[1]);
        v := (a + b) * (a + b) + 0.0;
        send (R, X, v, ys[0]);
        send (R, X, a + b, ys[1]);
`))
	Optimize(p)
	second := Optimize(p)
	if second.Total() != 0 {
		t.Errorf("second Optimize still found %+v", second)
	}
}

// Package opt implements the flow analyzer's optimization passes
// (§6.1): local common-subexpression elimination, constant folding,
// idempotent-operation removal and height reduction on each basic
// block's dag, plus the global dependence analysis that connects dag
// nodes across basic blocks.
package opt

import (
	"math"
	"sort"

	"warp/internal/ir"
	"warp/internal/w2"
)

// Stats counts the transformations applied, for compiler reports.
type Stats struct {
	CSE        int // nodes merged by common-subexpression elimination
	Folded     int // nodes replaced by constants
	Idempotent int // identity operations removed
	Rebalanced int // associative chains rebalanced (height reduction)
	Dead       int // unused pure nodes deleted
}

// Total returns the total number of transformations.
func (s Stats) Total() int { return s.CSE + s.Folded + s.Idempotent + s.Rebalanced + s.Dead }

// Optimize runs the local optimization pipeline on every block of the
// program, to a fixed point (each round may expose new opportunities).
func Optimize(p *ir.Program) Stats {
	var total Stats
	for _, fn := range p.Funcs {
		total.Dead += removeDeadWrites(fn)
		for _, b := range fn.Blocks {
			for {
				var s Stats
				s.Folded += foldConstants(b)
				s.Idempotent += removeIdentities(b)
				s.CSE += cse(b)
				s.Rebalanced += reduceHeight(b)
				s.Dead += removeDead(b)
				total.CSE += s.CSE
				total.Folded += s.Folded
				total.Idempotent += s.Idempotent
				total.Rebalanced += s.Rebalanced
				total.Dead += s.Dead
				if s.Total() == 0 {
					break
				}
			}
		}
	}
	return total
}

// replace rewrites every use of old to new within the block, including
// ordering edges.
func replace(b *ir.Block, old, new *ir.Node) {
	for _, n := range b.Nodes {
		for i, a := range n.Args {
			if a == old {
				n.Args[i] = new
			}
		}
		for i, d := range n.Deps {
			if d == old {
				n.Deps[i] = new
			}
		}
	}
}

// isPure reports whether a node has no side effects and depends only on
// its arguments.
func isPure(n *ir.Node) bool {
	switch n.Op {
	case ir.OpConst, ir.OpFadd, ir.OpFsub, ir.OpFmul, ir.OpFdiv, ir.OpFneg,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpAnd, ir.OpOr, ir.OpNot, ir.OpSelect:
		return true
	}
	return false
}

// foldConstants evaluates pure operations whose operands are constants.
// Booleans are represented as 1.0/0.0 during folding.
func foldConstants(b *ir.Block) int {
	count := 0
	for _, n := range b.Nodes {
		if !isPure(n) || n.Op == ir.OpConst {
			continue
		}
		allConst := true
		for _, a := range n.Args {
			if a.Op != ir.OpConst {
				allConst = false
				break
			}
		}
		if !allConst {
			continue
		}
		v, ok := evalConst(n)
		if !ok {
			continue
		}
		n.Op = ir.OpConst
		n.FVal = v
		n.Args = nil
		count++
	}
	return count
}

func evalConst(n *ir.Node) (float64, bool) {
	arg := func(i int) float64 { return n.Args[i].FVal }
	boolVal := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	switch n.Op {
	case ir.OpFadd:
		return arg(0) + arg(1), true
	case ir.OpFsub:
		return arg(0) - arg(1), true
	case ir.OpFmul:
		return arg(0) * arg(1), true
	case ir.OpFdiv:
		if arg(1) == 0 {
			return 0, false // leave runtime semantics alone
		}
		return arg(0) / arg(1), true
	case ir.OpFneg:
		return -arg(0), true
	case ir.OpEq:
		return boolVal(arg(0) == arg(1)), true
	case ir.OpNe:
		return boolVal(arg(0) != arg(1)), true
	case ir.OpLt:
		return boolVal(arg(0) < arg(1)), true
	case ir.OpLe:
		return boolVal(arg(0) <= arg(1)), true
	case ir.OpGt:
		return boolVal(arg(0) > arg(1)), true
	case ir.OpGe:
		return boolVal(arg(0) >= arg(1)), true
	case ir.OpAnd:
		return boolVal(arg(0) != 0 && arg(1) != 0), true
	case ir.OpOr:
		return boolVal(arg(0) != 0 || arg(1) != 0), true
	case ir.OpNot:
		return boolVal(arg(0) == 0), true
	case ir.OpSelect:
		if arg(0) != 0 {
			return arg(1), true
		}
		return arg(2), true
	}
	return 0, false
}

func isConstVal(n *ir.Node, v float64) bool { return n.Op == ir.OpConst && n.FVal == v }

// removeIdentities applies the "idempotent operation removal" of the
// paper's local optimizer [Allen & Cocke's catalogue]: x+0, x−0, x·1,
// x/1, select with constant or equal operands, double negation.
// (x·0 is not folded to 0: IEEE semantics for NaN and infinities would
// change; the 1986 Warp hardware had no such qualms, but we keep the
// simulator's arithmetic exact.)
func removeIdentities(b *ir.Block) int {
	count := 0
	for _, n := range b.Nodes {
		var repl *ir.Node
		switch n.Op {
		case ir.OpFadd:
			if isConstVal(n.Args[1], 0) {
				repl = n.Args[0]
			} else if isConstVal(n.Args[0], 0) {
				repl = n.Args[1]
			}
		case ir.OpFsub:
			if isConstVal(n.Args[1], 0) {
				repl = n.Args[0]
			}
		case ir.OpFmul:
			if isConstVal(n.Args[1], 1) {
				repl = n.Args[0]
			} else if isConstVal(n.Args[0], 1) {
				repl = n.Args[1]
			}
		case ir.OpFdiv:
			if isConstVal(n.Args[1], 1) {
				repl = n.Args[0]
			}
		case ir.OpFneg:
			if n.Args[0].Op == ir.OpFneg {
				repl = n.Args[0].Args[0]
			}
		case ir.OpNot:
			if n.Args[0].Op == ir.OpNot {
				repl = n.Args[0].Args[0]
			}
		case ir.OpSelect:
			switch {
			case isConstVal(n.Args[0], 1):
				repl = n.Args[1]
			case isConstVal(n.Args[0], 0):
				repl = n.Args[2]
			case n.Args[1] == n.Args[2]:
				repl = n.Args[1]
			}
		}
		if repl != nil && repl != n {
			replace(b, n, repl)
			count++
		}
	}
	return count
}

// cseKey identifies structurally equal pure nodes.
type cseKey struct {
	op     ir.Op
	a0, a1 int
	fval   float64
}

// cse merges structurally identical pure nodes (local value numbering).
// Commutative operands are ordered canonically first.
func cse(b *ir.Block) int {
	count := 0
	seen := make(map[cseKey]*ir.Node)
	for _, n := range b.Nodes {
		if !isPure(n) {
			continue
		}
		if n.Op.IsCommutative() && len(n.Args) == 2 && n.Args[0].ID > n.Args[1].ID {
			n.Args[0], n.Args[1] = n.Args[1], n.Args[0]
		}
		k := cseKey{op: n.Op, fval: n.FVal, a0: -1, a1: -1}
		if len(n.Args) > 0 {
			k.a0 = n.Args[0].ID
		}
		if len(n.Args) > 1 {
			k.a1 = n.Args[1].ID
		}
		if n.Op == ir.OpSelect {
			// Three operands: fold the third into fval slot-free key by
			// chaining; handled separately below.
			k.fval = float64(n.Args[2].ID)
		}
		if prev, ok := seen[k]; ok && prev != n {
			replace(b, n, prev)
			count++
			continue
		}
		seen[k] = n
	}
	return count
}

// removeDeadWrites deletes block-exit writes of scalars that are never
// read back anywhere in the function: their value lives entirely inside
// the defining block, so the home-register write-back is dead.  (The
// flow-insensitive test keeps any scalar with a read somewhere, which
// conservatively covers loop-carried uses.)
func removeDeadWrites(fn *ir.Func) int {
	read := map[*w2.Symbol]bool{}
	for _, b := range fn.Blocks {
		for _, n := range b.Nodes {
			if n.Op == ir.OpRead {
				read[n.Sym] = true
			}
		}
	}
	count := 0
	for _, b := range fn.Blocks {
		kept := b.Nodes[:0]
		for _, n := range b.Nodes {
			if n.Op == ir.OpWrite && !read[n.Sym] {
				count++
				continue
			}
			kept = append(kept, n)
		}
		b.Nodes = kept
	}
	return count
}

// removeDead deletes pure nodes with no remaining uses.
func removeDead(b *ir.Block) int {
	used := make(map[*ir.Node]bool)
	for _, n := range b.Nodes {
		for _, a := range n.Args {
			used[a] = true
		}
		for _, d := range n.Deps {
			used[d] = true
		}
	}
	kept := b.Nodes[:0]
	count := 0
	for _, n := range b.Nodes {
		if isPure(n) && !used[n] {
			count++
			continue
		}
		kept = append(kept, n)
	}
	b.Nodes = kept
	return count
}

// reduceHeight rebalances chains of a single associative, commutative
// operation (fadd or fmul) into balanced trees, shortening the critical
// path through deeply pipelined arithmetic units [Patel & Davidson;
// Rau & Glaeser].  Only interior nodes with exactly one use may be
// restructured.
func reduceHeight(b *ir.Block) int {
	uses := make(map[*ir.Node]int)
	for _, n := range b.Nodes {
		for _, a := range n.Args {
			uses[a]++
		}
		for _, d := range n.Deps {
			uses[d]++
		}
	}
	count := 0
	for _, root := range b.Nodes {
		if (root.Op != ir.OpFadd && root.Op != ir.OpFmul) || len(root.Args) != 2 {
			continue
		}
		// Collect the maximal single-use chain of the same op.
		var leaves []*ir.Node
		var interior []*ir.Node
		var collect func(n *ir.Node, isRoot bool)
		collect = func(n *ir.Node, isRoot bool) {
			if n.Op == root.Op && (isRoot || uses[n] == 1) {
				if !isRoot {
					interior = append(interior, n)
				}
				collect(n.Args[0], false)
				collect(n.Args[1], false)
				return
			}
			leaves = append(leaves, n)
		}
		collect(root, true)
		if len(leaves) < 4 {
			continue
		}
		// Height of the existing tree vs. balanced height.
		depth := chainDepth(root, root.Op, uses)
		balanced := ceilLog2(len(leaves))
		if depth <= balanced {
			continue
		}
		// Rebuild as a balanced tree, reusing the interior nodes.
		sort.SliceStable(leaves, func(i, j int) bool { return leaves[i].ID < leaves[j].ID })
		nodes := leaves
		avail := interior
		for len(nodes) > 1 {
			var next []*ir.Node
			for i := 0; i+1 < len(nodes); i += 2 {
				var parent *ir.Node
				if len(nodes) == 2 {
					parent = root
				} else {
					parent = avail[0]
					avail = avail[1:]
				}
				parent.Args = []*ir.Node{nodes[i], nodes[i+1]}
				next = append(next, parent)
			}
			if len(nodes)%2 == 1 {
				next = append(next, nodes[len(nodes)-1])
			}
			nodes = next
		}
		count++
	}
	return count
}

func chainDepth(n *ir.Node, op ir.Op, uses map[*ir.Node]int) int {
	if n.Op != op {
		return 0
	}
	d := 0
	for _, a := range n.Args {
		ad := 0
		if a.Op == op && uses[a] == 1 {
			ad = chainDepth(a, op, uses)
		}
		if ad > d {
			d = ad
		}
	}
	return d + 1
}

func ceilLog2(n int) int {
	return int(math.Ceil(math.Log2(float64(n))))
}

package opt

import (
	"warp/internal/ir"
	"warp/internal/w2"
)

// DepKind classifies a global dependence arc (§6.1): the global flow
// analyzer inserts "uses" arcs when a strict dependence can be deduced
// (this read always sees that write) and conservative sequencing arcs
// otherwise.
type DepKind int

// Dependence kinds.
const (
	// Strict: the target always uses the value of the source.
	Strict DepKind = iota
	// Sequencing: a conservative order-of-evaluation constraint.
	Sequencing
)

// DepArc is one dependence arc between dag nodes, possibly in different
// basic blocks.
type DepArc struct {
	From, To *ir.Node
	Kind     DepKind
}

// DepGraph is the global data-dependence information for one function:
// operand edges, explicit ordering edges, and the cross-block arcs
// computed by GlobalDeps.
type DepGraph struct {
	Fn   *ir.Func
	Arcs []DepArc
	// Succ maps each node to its dependence successors over all edge
	// classes (operands, ordering edges, and global arcs).
	Succ map[*ir.Node][]*ir.Node
}

// GlobalDeps computes cross-block dependence arcs for a function:
//
//   - scalar flow: an OpWrite of a scalar reaches every later OpRead of
//     the same scalar (strict when it is the unique reaching write,
//     which holds per program point in our structured flowgraphs;
//     conservatively including loop back edges);
//   - memory flow: a store to an array reaches later loads of the same
//     array unless their affine addresses can never be equal, in which
//     case no arc is inserted (the paper's analysis "is powerful enough
//     to distinguish between individual array elements"); stores to
//     possibly-equal addresses get sequencing arcs.
//
// Blocks execute in program order, and loop bodies additionally feed
// back into themselves, so "later" includes same-block-next-iteration
// when the nodes share a loop.
func GlobalDeps(fn *ir.Func) *DepGraph {
	g := &DepGraph{Fn: fn, Succ: make(map[*ir.Node][]*ir.Node)}

	// Operand and intra-block ordering edges.
	ir.Walk(fn.Regions, func(b *ir.Block) {
		for _, n := range b.Nodes {
			for _, a := range n.Args {
				g.Succ[a] = append(g.Succ[a], n)
			}
			for _, d := range n.Deps {
				g.Succ[d] = append(g.Succ[d], n)
			}
		}
	})

	// Collect scalar writes/reads and memory ops per block order.
	type memo struct {
		writes map[*w2.Symbol][]*ir.Node
		reads  map[*w2.Symbol][]*ir.Node
		loads  map[*w2.Symbol][]*ir.Node
		stores map[*w2.Symbol][]*ir.Node
	}
	all := memo{
		writes: map[*w2.Symbol][]*ir.Node{},
		reads:  map[*w2.Symbol][]*ir.Node{},
		loads:  map[*w2.Symbol][]*ir.Node{},
		stores: map[*w2.Symbol][]*ir.Node{},
	}
	ir.Walk(fn.Regions, func(b *ir.Block) {
		for _, n := range b.Nodes {
			switch n.Op {
			case ir.OpWrite:
				all.writes[n.Sym] = append(all.writes[n.Sym], n)
			case ir.OpRead:
				all.reads[n.Sym] = append(all.reads[n.Sym], n)
			case ir.OpLoad:
				all.loads[n.Sym] = append(all.loads[n.Sym], n)
			case ir.OpStore:
				all.stores[n.Sym] = append(all.stores[n.Sym], n)
			}
		}
	})

	add := func(from, to *ir.Node, k DepKind) {
		g.Arcs = append(g.Arcs, DepArc{From: from, To: to, Kind: k})
		g.Succ[from] = append(g.Succ[from], to)
	}

	// Scalar arcs: flow-insensitive over the function (conservative but
	// exact enough for reachability; the blocks execute in order and
	// loops iterate, so any write may reach any read).
	for sym, ws := range all.writes {
		for _, w := range ws {
			for _, r := range all.reads[sym] {
				add(w, r, Strict)
			}
		}
	}
	// Memory arcs with affine disambiguation.
	for sym, sts := range all.stores {
		for _, st := range sts {
			for _, ld := range all.loads[sym] {
				if mayAlias(st.Addr, ld.Addr) {
					add(st, ld, Strict)
				}
			}
			for _, st2 := range sts {
				if st2 != st && mayAlias(st.Addr, st2.Addr) {
					add(st, st2, Sequencing)
				}
			}
		}
	}
	return g
}

// mayAlias reports whether two affine addresses could refer to the same
// element for some (possibly different) iteration vectors.  Unlike the
// same-iteration test used inside a block, a nonzero constant
// difference rules out aliasing only for loop-invariant addresses:
// a[i] and a[i+1] touch the same element one iteration apart.
func mayAlias(a, b w2.Affine) bool {
	d := a.Sub(b)
	if !d.IsConst() || d.Const == 0 {
		return true
	}
	// Constant nonzero difference: disjoint only if the addresses are
	// themselves loop invariant.
	return len(a.Terms) != 0 || len(b.Terms) != 0
}

// Reachable computes the set of nodes reachable from start over the
// dependence graph (start excluded unless on a cycle).
func (g *DepGraph) Reachable(start *ir.Node) map[*ir.Node]bool {
	seen := make(map[*ir.Node]bool)
	var stack []*ir.Node
	stack = append(stack, g.Succ[start]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.Succ[n]...)
	}
	return seen
}

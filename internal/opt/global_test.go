package opt

import (
	"testing"

	"warp/internal/ir"
)

// TestGlobalDepsScalarFlow: a write in one block reaches reads in later
// blocks through the dependence graph.
func TestGlobalDepsScalarFlow(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        a := v * 2.0;
        for i := 0 to 3 do begin
            receive (L, X, w, xs[i]);
            send (R, X, a + w);
        end;
        send (R, X, v);
`))
	fn := p.Funcs[0]
	g := GlobalDeps(fn)

	var recv0 *ir.Node
	var sends []*ir.Node
	ir.Walk(fn.Regions, func(b *ir.Block) {
		for _, n := range b.Nodes {
			if n.Op == ir.OpRecv && recv0 == nil {
				recv0 = n
			}
			if n.Op == ir.OpSend {
				sends = append(sends, n)
			}
		}
	})
	if recv0 == nil || len(sends) != 2 {
		t.Fatal("program shape unexpected")
	}
	reach := g.Reachable(recv0)
	// The first receive flows into `a` (via the write/read arcs) and so
	// into the loop's send, and directly into the final send.
	for i, s := range sends {
		if !reach[s] {
			t.Errorf("send %d not reachable from the first receive", i)
		}
	}
	if len(g.Arcs) == 0 {
		t.Error("no global arcs recorded")
	}
	strict := 0
	for _, a := range g.Arcs {
		if a.Kind == Strict {
			strict++
		}
	}
	if strict == 0 {
		t.Error("no strict arcs recorded")
	}
}

// TestGlobalDepsMemoryFlow: stores reach loads of possibly-equal
// addresses across blocks; loop-invariant distinct addresses do not
// alias.
func TestGlobalDepsMemoryFlow(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        buf[0] := v;
        buf[1] := v * 2.0;
        for i := 0 to 3 do
            send (R, X, buf[0]);
        receive (L, X, v, xs[1]);
        receive (L, X, v, xs[2]);
        receive (L, X, v, xs[3]);
`))
	fn := p.Funcs[0]
	g := GlobalDeps(fn)
	var store0, store1, load0 *ir.Node
	ir.Walk(fn.Regions, func(b *ir.Block) {
		for _, n := range b.Nodes {
			switch {
			case n.Op == ir.OpStore && n.Addr.Const == 0:
				store0 = n
			case n.Op == ir.OpStore && n.Addr.Const == 1:
				store1 = n
			case n.Op == ir.OpLoad:
				load0 = n
			}
		}
	})
	if store0 == nil || store1 == nil || load0 == nil {
		t.Fatal("program shape unexpected")
	}
	if !g.Reachable(store0)[load0] {
		t.Error("store buf[0] does not reach load buf[0]")
	}
	if g.Reachable(store1)[load0] {
		t.Error("store buf[1] wrongly reaches load buf[0]: both addresses are loop invariant and distinct")
	}
}

// TestEvalConstFullMatrix folds every pure operation with constant
// operands.
func TestEvalConstFullMatrix(t *testing.T) {
	p := buildSrc(t, wrap(`
        v := 1.0;
        if 2.0 = 2.0 and 2.0 <> 3.0 and 2.0 < 3.0 and 2.0 <= 2.0
           and 3.0 > 2.0 and 3.0 >= 3.0 and not (1.0 > 2.0)
           or 1.0 < 0.0 then
            v := -(6.0 / 3.0);
        send (R, X, v, ys[0]);
        receive (L, X, v, xs[0]);
`))
	Optimize(p)
	// Everything folds: the send's argument is the constant −2.
	found := false
	for _, fn := range p.Funcs {
		ir.Walk(fn.Regions, func(b *ir.Block) {
			for _, n := range b.Nodes {
				if n.Op == ir.OpSend && n.Args[0].Op == ir.OpConst && n.Args[0].FVal == -2 {
					found = true
				}
			}
		})
	}
	if !found {
		t.Error("boolean/comparison constant folding did not reduce the program")
	}
}

// TestDivByZeroNotFolded: 1/0 keeps its runtime semantics (a machine
// fault), the optimizer must not touch it.
func TestDivByZeroNotFolded(t *testing.T) {
	p := buildSrc(t, wrap(`
        v := 1.0 / 0.0;
        send (R, X, v, ys[0]);
        receive (L, X, v, xs[0]);
`))
	Optimize(p)
	if countOp(p, ir.OpFdiv) != 1 {
		t.Error("division by zero was folded away")
	}
}

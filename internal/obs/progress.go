package obs

// ProgressUpdate is one coarse snapshot of a running execution.  The
// executors report positions only (cycles retired for the simulator,
// modeled trace position for the fast executor, completed tiles for the
// fabric); the layers above fill in totals and terminal state.
//
// Updates are delivered synchronously from the execution hot path at a
// bounded stride (the executors' existing context-poll interval), so
// consumers must be fast and must not block: hand the value to a
// channel, an atomic, or a struct under a short-lived lock.
type ProgressUpdate struct {
	// Cycles is the machine-cycle position: cycles retired by the
	// simulator, or the modeled cycle of the fast executor's trace
	// position.  For fabric jobs it carries aggregate cycles completed.
	Cycles int64
	// TotalCycles is the modeled whole-run cycle count when known
	// (closed form: lead + (cells-1)·skew + cell cycles); 0 if unknown.
	TotalCycles int64
	// TilesDone and Tiles report fabric tile completion; both 0 for
	// single-array runs.
	TilesDone int
	Tiles     int
	// Done marks the terminal update of a finished execution.
	Done bool
}

// ProgressFunc receives ProgressUpdates.  A nil ProgressFunc disables
// progress reporting entirely: every emission site guards with a nil
// check, so the disabled path costs one branch and zero allocations.
type ProgressFunc func(ProgressUpdate)

package obs

import (
	"fmt"
	"strings"
)

// DepthProfile aggregates one cell's activity at one loop-nesting
// depth.  Depth 0 is straight-line code outside every loop; the deepest
// depth with nonzero cycles is the cell's innermost loop — the region
// the paper's §7 claim ("all the arithmetic units are fully utilized in
// the innermost loop") is about.
type DepthProfile struct {
	Cycles int64
	AddOps int64
	MulOps int64
}

// CellProfile attributes every machine cycle of one cell.
// Start..Finish is the cell's active window; within it every cycle is
// either Busy (at least one field issued) or a Starved/Bubble stall.
// Outside it the cycles are SkewLead (before) and Drain (after).
type CellProfile struct {
	Start  int64
	Finish int64

	AddOps int64
	MulOps int64
	MovOps int64
	Loads  int64
	Stores int64

	Busy     int64
	Starved  int64 // scheduled nops with both data queues empty
	Bubble   int64 // scheduled nops with input data available
	SkewLead int64 // idle cycles before Start relative to cell 0 (= cell·skew); the array-wide IU lead is Profile.Lead
	Drain    int64 // idle cycles after Finish, waiting for the array

	// Depth[d] aggregates the cycles executed at loop-nesting depth d.
	Depth []DepthProfile
}

// Active returns the number of cycles the cell executed instructions:
// every cycle of the active window is busy or attributed to a stall.
func (c *CellProfile) Active() int64 { return c.Busy + c.Starved + c.Bubble }

// Inner returns the profile of the cell's innermost loop: the deepest
// nesting depth that executed any cycles (nil if the cell ran no code).
func (c *CellProfile) Inner() *DepthProfile {
	for d := len(c.Depth) - 1; d >= 0; d-- {
		if c.Depth[d].Cycles > 0 {
			return &c.Depth[d]
		}
	}
	return nil
}

// PCProfile holds one cell's exact per-µPC cycle counters, indexed by
// the static µprogram address assigned by mcode.AssignPCs.  For every
// executed instruction the simulator increments exactly one of the
// three counters at its PC, so for each cell
//
//	Σ_pc (Busy+Starved+Bubble) == CellProfile.Active()
//
// — no simulated active cycle is unattributed.  Only filled when the
// run requested profiling (sim.Config.PCStats); nil otherwise.
type PCProfile struct {
	Busy    []int64
	Starved []int64
	Bubble  []int64
}

// QueueProfile describes one hardware queue at one cell's input
// boundary over a run.
type QueueProfile struct {
	Name  string // e.g. "cell2.X"
	Cell  int    // consuming cell index
	Queue Queue

	// HighWater is the exact peak occupancy, observed at push time
	// (an intra-cycle peak can exceed the end-of-cycle occupancy when
	// the downstream agent pops in the same cycle).
	HighWater int
	Pushes    int64
	Pops      int64
	// Hist[d] counts the cycles the queue ended with occupancy d.
	Hist []int64
}

// meanOcc returns the time-averaged occupancy from the histogram.
func (q *QueueProfile) meanOcc() float64 {
	var cycles, sum int64
	for d, n := range q.Hist {
		cycles += n
		sum += int64(d) * n
	}
	if cycles == 0 {
		return 0
	}
	return float64(sum) / float64(cycles)
}

// pctOcc returns the occupancy at or below which the queue spent the
// given fraction of cycles (a histogram percentile).
func (q *QueueProfile) pctOcc(frac float64) int {
	var cycles int64
	for _, n := range q.Hist {
		cycles += n
	}
	if cycles == 0 {
		return 0
	}
	target := int64(frac * float64(cycles))
	var seen int64
	for d, n := range q.Hist {
		seen += n
		if seen > target {
			return d
		}
	}
	return len(q.Hist) - 1
}

// Profile is the aggregate observability record of one simulated run.
// The simulator fills it on every run (the counters are a handful of
// integer increments per cycle); the event Recorder is only needed for
// the streaming exporters.
type Profile struct {
	Cells  int
	Cycles int64
	Skew   int64
	Lead   int64

	Cell   []CellProfile
	Queues []QueueProfile

	// PC holds the exact per-µPC counters per cell when the run was
	// profiled (sim.Config.PCStats); nil on unprofiled runs.
	PC []PCProfile

	// HostStallX/Y count cycles the host input stream was blocked by a
	// full queue into cell 0 (queue-full backpressure).
	HostStallX int64
	HostStallY int64

	// Phases carries the compiler's per-phase timing when the run came
	// from a compiled program (optional).
	Phases []PhaseStat
}

// MaxQueue returns the peak occupancy over the data queues (X and Y)
// and the name of the queue that reached it — the per-queue refinement
// of the old single global counter.
func (p *Profile) MaxQueue() (int, string) {
	max, name := 0, ""
	for i := range p.Queues {
		q := &p.Queues[i]
		if q.Queue != QueueX && q.Queue != QueueY {
			continue
		}
		if q.HighWater > max {
			max, name = q.HighWater, q.Name
		}
	}
	return max, name
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// UtilizationReport renders the per-cell utilization and stall table:
// how each cell spent its cycles, the arithmetic-unit utilization over
// its busy cycles and over its innermost loop (the paper's §7 claim),
// and the per-queue high-water marks.
func (p *Profile) UtilizationReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run: %d cells, skew %d, lead %d, %d cycles\n\n", p.Cells, p.Skew, p.Lead, p.Cycles)

	fmt.Fprintf(&sb, "per-cell utilization and stall attribution (cycles):\n")
	fmt.Fprintf(&sb, "%4s %8s %7s %7s %7s | %7s %7s | %8s %7s %8s %7s\n",
		"cell", "active", "busy%", "add%", "mul%", "in.add%", "in.mul%",
		"starved", "bubble", "skew-in", "drain")
	var tot CellProfile
	var totInner DepthProfile
	for i := range p.Cell {
		c := &p.Cell[i]
		active := c.Active()
		innerAdd, innerMul := 0.0, 0.0
		if in := c.Inner(); in != nil {
			innerAdd = pct(in.AddOps, in.Cycles)
			innerMul = pct(in.MulOps, in.Cycles)
			totInner.Cycles += in.Cycles
			totInner.AddOps += in.AddOps
			totInner.MulOps += in.MulOps
		}
		fmt.Fprintf(&sb, "%4d %8d %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% | %8d %7d %8d %7d\n",
			i, active, pct(c.Busy, active), pct(c.AddOps, active), pct(c.MulOps, active),
			innerAdd, innerMul, c.Starved, c.Bubble, c.SkewLead, c.Drain)
		tot.Busy += c.Busy
		tot.AddOps += c.AddOps
		tot.MulOps += c.MulOps
		tot.Starved += c.Starved
		tot.Bubble += c.Bubble
		tot.SkewLead += c.SkewLead
		tot.Drain += c.Drain
		tot.Finish += active
	}
	fmt.Fprintf(&sb, "%4s %8d %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% | %8d %7d %8d %7d\n",
		"all", tot.Finish, pct(tot.Busy, tot.Finish), pct(tot.AddOps, tot.Finish), pct(tot.MulOps, tot.Finish),
		pct(totInner.AddOps, totInner.Cycles), pct(totInner.MulOps, totInner.Cycles),
		tot.Starved, tot.Bubble, tot.SkewLead, tot.Drain)
	sb.WriteString("(add%/mul% over the active window; in.add%/in.mul% over the innermost loop — §7's\n" +
		" \"all the arithmetic units are fully utilized in the innermost loop\" is in.≈100%)\n\n")

	fmt.Fprintf(&sb, "queue high-water marks and occupancy:\n")
	fmt.Fprintf(&sb, "%-12s %6s %8s %8s %8s %8s\n", "queue", "peak", "mean", "p50", "p95", "pushes")
	for i := range p.Queues {
		q := &p.Queues[i]
		if q.Pushes == 0 && q.HighWater == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-12s %6d %8.2f %8d %8d %8d\n",
			q.Name, q.HighWater, q.meanOcc(), q.pctOcc(0.50), q.pctOcc(0.95), q.Pushes)
	}
	if max, name := p.MaxQueue(); name != "" {
		fmt.Fprintf(&sb, "peak data-queue occupancy %d at %s\n", max, name)
	}
	if p.HostStallX > 0 || p.HostStallY > 0 {
		fmt.Fprintf(&sb, "host input backpressure (queue-full): X %d cycles, Y %d cycles\n",
			p.HostStallX, p.HostStallY)
	}
	return sb.String()
}

// PhaseReport renders the compiler's per-phase timing table.
func PhaseReport(phases []PhaseStat) string {
	if len(phases) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "compiler phases:\n%-18s %12s %8s  %s\n", "phase", "time", "size", "note")
	var total float64
	for _, ph := range phases {
		total += ph.Seconds
		fmt.Fprintf(&sb, "%-18s %10.3fms %8d  %s\n", ph.Name, ph.Seconds*1e3, ph.Size, ph.Note)
	}
	fmt.Fprintf(&sb, "%-18s %10.3fms\n", "total", total*1e3)
	return sb.String()
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// This file is the request-scoped half of the observability layer: a
// lightweight span tree recording how one service request spent its
// wall-clock time (queue wait, cache lookup, compiler phases, the
// simulated run), complementing the cycle-scoped Recorder/Profile
// machinery.  The design rules mirror the Recorder's: a disabled trace
// (nil *Trace) must cost nothing — every method is nil-receiver safe
// and allocation-free on the disabled path — and the clock is injected
// so tests are deterministic.

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed (or still-open) span.  Times are
// monotonic-clock offsets from the trace start in nanoseconds; EndNS is
// -1 while the span is open.
type SpanRecord struct {
	ID      int        `json:"id"`
	Parent  int        `json:"parent"` // -1 for a root span
	Name    string     `json:"name"`
	StartNS int64      `json:"start_ns"`
	EndNS   int64      `json:"end_ns"`
	Attrs   []SpanAttr `json:"attrs,omitempty"`
	// Summary carries the simulated run's obs.Profile summary when the
	// span covers a simulation (the "run" span of a service request).
	Summary *Summary `json:"summary,omitempty"`
}

// DurNS returns the span's duration, or 0 while it is still open.
func (r *SpanRecord) DurNS() int64 {
	if r.EndNS < 0 {
		return 0
	}
	return r.EndNS - r.StartNS
}

// Trace is an append-only span tree for one request.  A nil *Trace is
// the disabled trace: StartSpan returns a nil *Span and every Span
// method is a no-op, so callers thread one pointer and never branch.
// All methods are safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	now   func() time.Duration
	spans []SpanRecord
}

// NewTrace builds a trace whose clock is the real monotonic clock,
// zeroed at the call.
func NewTrace() *Trace {
	t0 := time.Now()
	return NewTraceClock(func() time.Duration { return time.Since(t0) })
}

// NewTraceClock builds a trace reading the injected monotonic clock —
// tests pass a hand-advanced clock so span durations are exact.
func NewTraceClock(now func() time.Duration) *Trace {
	return &Trace{now: now}
}

// Span is a handle on one open span.  The zero of the API is nil: a nil
// *Span (from a nil *Trace) ignores End, Annotate and AttachSummary.
type Span struct {
	t  *Trace
	id int
}

// StartSpan opens a span under parent (nil parent = a root span) and
// returns its handle.  On a nil Trace it returns nil.
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	id := len(t.spans)
	pid := -1
	if parent != nil && parent.t == t {
		pid = parent.id
	}
	t.spans = append(t.spans, SpanRecord{
		ID: id, Parent: pid, Name: name,
		StartNS: int64(t.now()), EndNS: -1,
	})
	t.mu.Unlock()
	return &Span{t: t, id: id}
}

// End closes the span at the trace clock's current reading.  Ending a
// span twice keeps the first end time, so cleanup paths may End
// unconditionally.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.t.spans[s.id].EndNS < 0 {
		s.t.spans[s.id].EndNS = int64(s.t.now())
	}
	s.t.mu.Unlock()
}

// Annotate attaches a key/value pair to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.id].Attrs = append(s.t.spans[s.id].Attrs, SpanAttr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// AttachSummary attaches a run summary to the span (the simulator's
// aggregate profile, condensed).
func (s *Span) AttachSummary(sum Summary) {
	if s == nil {
		return
	}
	// Copy via an explicit allocation after the nil check so the
	// disabled path stays allocation-free (&sum would heap-escape the
	// parameter unconditionally).
	c := new(Summary)
	*c = sum
	s.t.mu.Lock()
	s.t.spans[s.id].Summary = c
	s.t.mu.Unlock()
}

// addTimed appends an already-closed span covering [end-d, end], used
// by the Phase adapter below (compiler phases report their duration at
// the phase boundary, after the fact).
func (t *Trace) addTimed(name string, parent *Span, d time.Duration, attrs ...SpanAttr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	end := int64(t.now())
	start := end - int64(d)
	if start < 0 {
		start = 0
	}
	pid := -1
	if parent != nil && parent.t == t {
		pid = parent.id
	}
	t.spans = append(t.spans, SpanRecord{
		ID: len(t.spans), Parent: pid, Name: name,
		StartNS: start, EndNS: end, Attrs: attrs,
	})
	t.mu.Unlock()
}

// addSpanAt appends an already-closed span covering the explicit
// [start, end] clock readings, used by the PhaseAt adapter (parallel
// compiler phases report both endpoints).
func (t *Trace) addSpanAt(name string, parent *Span, start, end time.Duration, attrs ...SpanAttr) {
	if t == nil {
		return
	}
	if start < 0 {
		start = 0
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	pid := -1
	if parent != nil && parent.t == t {
		pid = parent.id
	}
	t.spans = append(t.spans, SpanRecord{
		ID: len(t.spans), Parent: pid, Name: name,
		StartNS: int64(start), EndNS: int64(end), Attrs: attrs,
	})
	t.mu.Unlock()
}

// Spans snapshots the trace as a copy, safe to serialize while other
// goroutines keep recording.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// spanPhaseRecorder adapts the compiler's Phase hook onto a span tree:
// each Phase event becomes a closed child span whose duration is the
// phase's reported wall-clock time.  Every cycle-level event falls
// through to the embedded no-op recorder — per-request traces are
// request-grained, not cycle-grained.
type spanPhaseRecorder struct {
	nopRecorder
	t      *Trace
	parent *Span
	// anchor is the trace clock at construction — the compile is about
	// to start, so PhaseAt offsets are laid out relative to it.
	anchor time.Duration
}

// phaseOnly marks this recorder as blind to cycle-level events, so the
// driver's backend choice never forces a cycle-accurate run for it.
func (r *spanPhaseRecorder) phaseOnly() {}

func (r *spanPhaseRecorder) Phase(name string, seconds float64, size int, note string) {
	attrs := []SpanAttr{{Key: "size", Value: strconv.Itoa(size)}}
	if note != "" {
		attrs = append(attrs, SpanAttr{Key: "note", Value: note})
	}
	r.t.addTimed(name, r.parent, time.Duration(seconds*float64(time.Second)), attrs...)
}

// PhaseAt places the phase at its true offset on the compile timeline,
// so concurrent phases from a parallel compilation render as the
// overlapping spans they were instead of a back-dated serial chain.
func (r *spanPhaseRecorder) PhaseAt(name string, start, seconds float64, worker, size int, note string) {
	attrs := []SpanAttr{
		{Key: "size", Value: strconv.Itoa(size)},
		{Key: "worker", Value: strconv.Itoa(worker)},
	}
	if note != "" {
		attrs = append(attrs, SpanAttr{Key: "note", Value: note})
	}
	s := r.anchor + time.Duration(start*float64(time.Second))
	r.t.addSpanAt(name, r.parent, s, s+time.Duration(seconds*float64(time.Second)), attrs...)
}

// SpanPhases returns a Recorder that turns compiler Phase events into
// child spans of parent.  On a nil trace it returns the no-op recorder,
// so the disabled path stays allocation-free at the compile call site.
func SpanPhases(t *Trace, parent *Span) Recorder {
	if t == nil {
		return Nop()
	}
	r := &spanPhaseRecorder{t: t, parent: parent}
	t.mu.Lock()
	r.anchor = t.now()
	t.mu.Unlock()
	return r
}

// WriteChromeSpans renders a span snapshot as a Chrome trace-event JSON
// document (one process, one track; nesting follows time containment),
// loadable in Perfetto next to the cycle-level traces.  One nanosecond
// of request time maps to one nanosecond (ts is microseconds with
// fractional digits).
func WriteChromeSpans(w io.Writer, spans []SpanRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"request"}}`)
	for i := range spans {
		sp := &spans[i]
		dur := sp.DurNS()
		if dur < 1 {
			dur = 1
		}
		fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{",
			strconv.Quote(sp.Name), float64(sp.StartNS)/1e3, float64(dur)/1e3)
		fmt.Fprintf(bw, `"span_id":%d,"parent":%d`, sp.ID, sp.Parent)
		for _, a := range sp.Attrs {
			fmt.Fprintf(bw, ",%s:%s", strconv.Quote(a.Key), strconv.Quote(a.Value))
		}
		if sp.Summary != nil {
			fmt.Fprintf(bw, `,"cycles":%d,"cells":%d`, sp.Summary.Cycles, sp.Summary.Cells)
		}
		bw.WriteString("}}")
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Package obs is the observability layer shared by the compiler and the
// simulator: a zero-overhead-when-disabled event recorder, an aggregate
// run profile with per-cell stall attribution, and exporters (a Chrome
// trace-event writer loadable in Perfetto, and a compact text
// utilization report matching the paper's §7 framing).
//
// The simulator calls the Recorder on its per-cycle hot path, so the
// design rules are strict: every event method takes only scalar
// arguments (no strings, no maps, no variadics), the no-op recorder
// must be allocation-free, and callers guard event emission behind a
// single bool so a disabled recorder costs one predictable branch.
package obs

// Unit identifies a cell functional unit issuing in a cycle.
type Unit uint8

const (
	UnitAdd Unit = iota // ADD FPU (adds, compares, booleans, select)
	UnitMul             // MUL FPU (multiplies, divides)
	UnitMov             // crossbar register move
	NumUnits
)

var unitNames = [...]string{UnitAdd: "add", UnitMul: "mul", UnitMov: "mov"}

func (u Unit) String() string { return unitNames[u] }

// Queue identifies one of the hardware queues at a cell's input
// boundary.
type Queue uint8

const (
	QueueX   Queue = iota // data channel X
	QueueY                // data channel Y
	QueueAdr              // address queue from the IU / upstream cell
	NumQueues
)

var queueNames = [...]string{QueueX: "X", QueueY: "Y", QueueAdr: "Adr"}

func (q Queue) String() string { return queueNames[q] }

// Stall classifies a cycle a cell (or the host) spent not issuing work.
// The Warp array is statically scheduled — a cell never blocks at run
// time — so "stall" here means a cycle the schedule could not fill, and
// the attribution says why.
type Stall uint8

const (
	// StallSkewLead: the cell has not started yet — it is waiting out
	// its skew delay (plus the IU prologue lead for the whole array).
	StallSkewLead Stall = iota
	// StallQueueEmpty: the cell executed a scheduled nop while both its
	// data queues were empty — it was starved by its upstream producer.
	StallQueueEmpty
	// StallBubble: the cell executed a scheduled nop although input
	// data was available — a bubble in the compiler's schedule (e.g.
	// waiting out FPU latency), not a data-supply problem.
	StallBubble
	// StallQueueFull: a producer could not push because the downstream
	// queue was full.  Only the host can experience this (cells would
	// fault instead); the cycle is attributed to the consuming cell 0.
	StallQueueFull
	// StallDrain: the cell finished its program and is waiting for the
	// rest of the (skewed) array to drain.
	StallDrain
	NumStalls
)

var stallNames = [...]string{
	StallSkewLead:   "skew-lead",
	StallQueueEmpty: "queue-empty",
	StallBubble:     "bubble",
	StallQueueFull:  "queue-full",
	StallDrain:      "drain",
}

func (s Stall) String() string { return stallNames[s] }

// Recorder receives instrumentation events from the simulator's cycle
// loop and from the compiler driver's phase boundaries.  All cycle
// arguments are absolute machine cycles.  Implementations must not
// retain argument aliasing assumptions: every argument is a scalar.
type Recorder interface {
	// RunStart announces the array geometry before the first cycle.
	RunStart(cells int, skew, lead int64)
	// RunEnd announces the final cycle count.
	RunEnd(cycle int64)
	// CellStart fires on the first cycle a cell executes.
	CellStart(cycle int64, cell int)
	// CellFinish fires on the cycle a cell retires its last instruction.
	CellFinish(cycle int64, cell int)
	// Issue reports one functional-unit field issuing this cycle.
	Issue(cycle int64, cell int, unit Unit)
	// MemRef reports one data-memory reference on the given port.
	MemRef(cycle int64, cell int, port int, addr int64, store bool)
	// QueuePush reports a word entering a queue; occ is the occupancy
	// after the push.
	QueuePush(cycle int64, cell int, q Queue, occ int)
	// QueuePop reports a word leaving a queue; occ is the occupancy
	// after the pop.
	QueuePop(cycle int64, cell int, q Queue, occ int)
	// Stall attributes one idle cycle of one cell (see Stall).
	Stall(cycle int64, cell int, s Stall)
	// Phase reports one compiler phase: wall-clock seconds, a
	// phase-specific size metric, and an optional note.
	Phase(name string, seconds float64, size int, note string)
}

// nopRecorder is the shared allocation-free no-op Recorder.
type nopRecorder struct{}

func (nopRecorder) RunStart(int, int64, int64)          {}
func (nopRecorder) RunEnd(int64)                        {}
func (nopRecorder) CellStart(int64, int)                {}
func (nopRecorder) CellFinish(int64, int)               {}
func (nopRecorder) Issue(int64, int, Unit)              {}
func (nopRecorder) MemRef(int64, int, int, int64, bool) {}
func (nopRecorder) QueuePush(int64, int, Queue, int)    {}
func (nopRecorder) QueuePop(int64, int, Queue, int)     {}
func (nopRecorder) Stall(int64, int, Stall)             {}
func (nopRecorder) Phase(string, float64, int, string)  {}

var nop Recorder = nopRecorder{}

// Nop returns the shared no-op Recorder.
func Nop() Recorder { return nop }

// Enabled reports whether r is a real recorder: non-nil and not the
// no-op.  Hot paths cache this answer in a bool and branch on it.
func Enabled(r Recorder) bool { return r != nil && r != nop }

// phaseOnly marks recorders that consume only compiler Phase events
// and discard every cycle-level hook; implemented by in-package
// adapters (e.g. the request-trace span recorder).
type phaseOnly interface{ phaseOnly() }

// CycleObserved reports whether r consumes cycle-level run events —
// whether a run must actually be stepped cycle by cycle for r to see
// anything.  No-ops and phase-only recorders do not; the driver uses
// this to decide when the fast backend would lose observability.
func CycleObserved(r Recorder) bool {
	if m, ok := r.(multi); ok {
		for _, sub := range m {
			if CycleObserved(sub) {
				return true
			}
		}
		return false
	}
	if !Enabled(r) {
		return false
	}
	_, po := r.(phaseOnly)
	return !po
}

// multi fans events out to several recorders.
type multi []Recorder

// Multi combines recorders, dropping nil and no-op entries.  It returns
// Nop() when nothing real remains and the single recorder when only one
// does.
func Multi(rs ...Recorder) Recorder {
	var kept multi
	for _, r := range rs {
		if Enabled(r) {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return Nop()
	case 1:
		return kept[0]
	}
	return kept
}

func (m multi) RunStart(cells int, skew, lead int64) {
	for _, r := range m {
		r.RunStart(cells, skew, lead)
	}
}
func (m multi) RunEnd(cycle int64) {
	for _, r := range m {
		r.RunEnd(cycle)
	}
}
func (m multi) CellStart(cycle int64, cell int) {
	for _, r := range m {
		r.CellStart(cycle, cell)
	}
}
func (m multi) CellFinish(cycle int64, cell int) {
	for _, r := range m {
		r.CellFinish(cycle, cell)
	}
}
func (m multi) Issue(cycle int64, cell int, u Unit) {
	for _, r := range m {
		r.Issue(cycle, cell, u)
	}
}
func (m multi) MemRef(cycle int64, cell int, port int, addr int64, store bool) {
	for _, r := range m {
		r.MemRef(cycle, cell, port, addr, store)
	}
}
func (m multi) QueuePush(cycle int64, cell int, q Queue, occ int) {
	for _, r := range m {
		r.QueuePush(cycle, cell, q, occ)
	}
}
func (m multi) QueuePop(cycle int64, cell int, q Queue, occ int) {
	for _, r := range m {
		r.QueuePop(cycle, cell, q, occ)
	}
}
func (m multi) Stall(cycle int64, cell int, s Stall) {
	for _, r := range m {
		r.Stall(cycle, cell, s)
	}
}
func (m multi) Phase(name string, seconds float64, size int, note string) {
	for _, r := range m {
		r.Phase(name, seconds, size, note)
	}
}

// PhaseStat is one compiler phase's timing and size record.
type PhaseStat struct {
	Name    string
	Seconds float64
	// Size is a phase-specific magnitude: source lines for the parser,
	// instructions for the code generators, transformation counts for
	// the optimizer, the skew in cycles for the skew analysis.
	Size int
	Note string
	// Start is the phase's start offset from the beginning of the
	// compilation, in seconds.  With parallel compilation phases
	// overlap in wall time; Start+Seconds places each phase on the
	// compile timeline.
	Start float64
	// Worker is the compile worker lane that ran the phase.  Phases
	// sharing a lane never overlap; the timing-soundness contract is
	// per-lane (Σ Seconds on one lane ≤ total compile wall), not
	// global — concurrent lanes legitimately sum past the wall clock.
	Worker int
}

// PhaseAtRecorder is an optional Recorder extension for the parallel
// compiler: PhaseAt reports a phase with its start offset (seconds from
// the start of the compilation) and the worker lane that ran it, so
// adapters can place concurrent phases on a real timeline instead of
// assuming phases abut.  RecordPhaseAt dispatches to it when present.
type PhaseAtRecorder interface {
	PhaseAt(name string, start, seconds float64, worker, size int, note string)
}

// RecordPhaseAt delivers one phase event to r, using the PhaseAt
// extension when r implements it and falling back to Phase otherwise.
// Multi-recorders dispatch per sub-recorder.  A nil r is a no-op.
func RecordPhaseAt(r Recorder, name string, start, seconds float64, worker, size int, note string) {
	switch rr := r.(type) {
	case nil:
	case multi:
		for _, sub := range rr {
			RecordPhaseAt(sub, name, start, seconds, worker, size, note)
		}
	case PhaseAtRecorder:
		rr.PhaseAt(name, start, seconds, worker, size, note)
	default:
		r.Phase(name, seconds, size, note)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ChromeTracer is a Recorder that streams events in the Chrome
// trace-event JSON format (the "JSON Array Format" wrapped in a
// traceEvents object), loadable in Perfetto or chrome://tracing.
//
// Layout: one process (pid 1, "warp array") with one group of threads
// per cell — the cell's activity/stall track plus one track per
// functional unit and memory port — one counter track per queue for
// occupancy, and a second process (pid 2, "compiler") whose single
// track carries the compile-phase slices.  One machine cycle maps to
// one microsecond of trace time.
//
// Consecutive same-kind stall cycles are coalesced into one slice so a
// long skew lead-in or drain is a single span, not thousands of events.
// Call Close to finalize the JSON; the underlying writer is not closed.
type ChromeTracer struct {
	w   *bufio.Writer
	n   int
	err error

	cells     int
	cellBegin []int64
	stalls    []stallSpan
	phaseTS   float64 // compile-track cursor, microseconds
}

type stallSpan struct {
	kind  Stall
	start int64
	end   int64
	open  bool
}

const (
	tracePIDArray    = 1
	tracePIDCompiler = 2
	// Per-cell thread IDs: cell c owns tids cellTIDBase+c*cellTIDStride
	// ... +cellTIDStride-1.
	cellTIDBase   = 10
	cellTIDStride = 8
	tidOffActive  = 0 // cell activity span + stall slices
	tidOffAdd     = 1
	tidOffMul     = 2
	tidOffMov     = 3
	tidOffMem0    = 4 // memory ports follow: tidOffMem0+port
)

// NewChromeTracer returns a tracer streaming to w.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	t := &ChromeTracer{w: bufio.NewWriterSize(w, 1<<16)}
	_, t.err = t.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	t.emit(`{"name":"process_name","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":"warp array"}}`, tracePIDArray)
	t.emit(`{"name":"process_name","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":"compiler"}}`, tracePIDCompiler)
	t.emit(`{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":1,"args":{"name":"phases"}}`, tracePIDCompiler)
	return t
}

// emit writes one event object, handling commas and sticky errors.
func (t *ChromeTracer) emit(format string, args ...any) {
	if t.err != nil {
		return
	}
	if t.n > 0 {
		t.w.WriteByte(',')
	}
	t.w.WriteByte('\n')
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil {
		t.err = err
		return
	}
	t.n++
}

func cellTID(cell, off int) int { return cellTIDBase + cell*cellTIDStride + off }

func (t *ChromeTracer) RunStart(cells int, skew, lead int64) {
	t.cells = cells
	t.cellBegin = make([]int64, cells)
	t.stalls = make([]stallSpan, cells)
	for c := 0; c < cells; c++ {
		for _, nt := range []struct {
			off  int
			name string
		}{
			{tidOffActive, fmt.Sprintf("cell %d", c)},
			{tidOffAdd, fmt.Sprintf("cell %d add", c)},
			{tidOffMul, fmt.Sprintf("cell %d mul", c)},
			{tidOffMov, fmt.Sprintf("cell %d mov", c)},
			{tidOffMem0, fmt.Sprintf("cell %d mem0", c)},
			{tidOffMem0 + 1, fmt.Sprintf("cell %d mem1", c)},
		} {
			t.emit(`{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":%s}}`,
				tracePIDArray, cellTID(c, nt.off), strconv.Quote(nt.name))
			t.emit(`{"name":"thread_sort_index","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
				tracePIDArray, cellTID(c, nt.off), cellTID(c, nt.off))
		}
	}
	t.emit(`{"name":"run","ph":"i","s":"g","ts":0,"pid":%d,"tid":%d,"args":{"cells":%d,"skew":%d,"lead":%d}}`,
		tracePIDArray, cellTID(0, tidOffActive), cells, skew, lead)
}

func (t *ChromeTracer) RunEnd(cycle int64) {
	for c := range t.stalls {
		t.flushStall(c)
	}
}

func (t *ChromeTracer) CellStart(cycle int64, cell int) {
	t.flushStall(cell)
	t.cellBegin[cell] = cycle
}

func (t *ChromeTracer) CellFinish(cycle int64, cell int) {
	t.flushStall(cell)
	dur := cycle - t.cellBegin[cell]
	if dur < 1 {
		dur = 1
	}
	t.emit(`{"name":"active","cat":"cell","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d}`,
		t.cellBegin[cell], dur, tracePIDArray, cellTID(cell, tidOffActive))
}

func (t *ChromeTracer) Issue(cycle int64, cell int, unit Unit) {
	off := tidOffAdd
	switch unit {
	case UnitMul:
		off = tidOffMul
	case UnitMov:
		off = tidOffMov
	}
	t.emit(`{"name":"%s","cat":"fpu","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d}`,
		unit, cycle, tracePIDArray, cellTID(cell, off))
}

func (t *ChromeTracer) MemRef(cycle int64, cell int, port int, addr int64, store bool) {
	name := "load"
	if store {
		name = "store"
	}
	if port < 0 || port > 1 {
		port = 1
	}
	t.emit(`{"name":"%s","cat":"mem","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,"args":{"addr":%d}}`,
		name, cycle, tracePIDArray, cellTID(cell, tidOffMem0+port), addr)
}

func (t *ChromeTracer) QueuePush(cycle int64, cell int, q Queue, occ int) {
	t.counter(cycle, cell, q, occ)
}

func (t *ChromeTracer) QueuePop(cycle int64, cell int, q Queue, occ int) {
	t.counter(cycle, cell, q, occ)
}

func (t *ChromeTracer) counter(cycle int64, cell int, q Queue, occ int) {
	t.emit(`{"name":"cell%d.%s","cat":"queue","ph":"C","ts":%d,"pid":%d,"tid":0,"args":{"words":%d}}`,
		cell, q, cycle, tracePIDArray, occ)
}

func (t *ChromeTracer) Stall(cycle int64, cell int, s Stall) {
	if cell < 0 || cell >= len(t.stalls) {
		return
	}
	sp := &t.stalls[cell]
	if sp.open && sp.kind == s && cycle == sp.end+1 {
		sp.end = cycle
		return
	}
	t.flushStall(cell)
	t.stalls[cell] = stallSpan{kind: s, start: cycle, end: cycle, open: true}
}

func (t *ChromeTracer) flushStall(cell int) {
	if cell < 0 || cell >= len(t.stalls) {
		return
	}
	sp := &t.stalls[cell]
	if !sp.open {
		return
	}
	sp.open = false
	t.emit(`{"name":"%s","cat":"stall","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d}`,
		sp.kind, sp.start, sp.end-sp.start+1, tracePIDArray, cellTID(cell, tidOffActive))
}

func (t *ChromeTracer) Phase(name string, seconds float64, size int, note string) {
	dur := seconds * 1e6
	if dur < 1 {
		dur = 1
	}
	t.emit(`{"name":%s,"cat":"compile","ph":"X","ts":%.0f,"dur":%.0f,"pid":%d,"tid":1,"args":{"size":%d,"note":%s}}`,
		strconv.Quote(name), t.phaseTS, dur, tracePIDCompiler, size, strconv.Quote(note))
	t.phaseTS += dur
}

// PhaseAt renders a parallel-compiler phase at its true timeline
// position, one track per compile worker lane, so overlapping phases
// draw as overlapping instead of the abutting layout Phase assumes.
func (t *ChromeTracer) PhaseAt(name string, start, seconds float64, worker, size int, note string) {
	ts := start * 1e6
	dur := seconds * 1e6
	if dur < 1 {
		dur = 1
	}
	t.emit(`{"name":%s,"cat":"compile","ph":"X","ts":%.0f,"dur":%.0f,"pid":%d,"tid":%d,"args":{"size":%d,"note":%s}}`,
		strconv.Quote(name), ts, dur, tracePIDCompiler, 1+worker, size, strconv.Quote(note))
	if end := ts + dur; end > t.phaseTS {
		t.phaseTS = end
	}
}

// Close finalizes the JSON document and flushes the buffered writer.
// It does not close the underlying io.Writer.
func (t *ChromeTracer) Close() error {
	for c := range t.stalls {
		t.flushStall(c)
	}
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]}\n")
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// TestSpanTreeDeterministic drives a trace on a hand-advanced clock and
// checks the recorded tree: parent links, exact durations, attributes,
// the attached run summary, and the Phase-hook adapter.
func TestSpanTreeDeterministic(t *testing.T) {
	var now time.Duration
	tr := NewTraceClock(func() time.Duration { return now })

	root := tr.StartSpan("request", nil)
	now = 5 * time.Millisecond
	cache := tr.StartSpan("cache", root)
	cache.Annotate("result", "miss")
	// The compiler reports two phases through the hook, 2ms and 3ms.
	rec := SpanPhases(tr, cache)
	now = 7 * time.Millisecond
	rec.Phase("parse", 0.002, 34, "")
	now = 10 * time.Millisecond
	rec.Phase("cellgen", 0.003, 120, "2 loops pipelined")
	cache.End()
	now = 12 * time.Millisecond
	queue := tr.StartSpan("queue-wait", root)
	now = 15 * time.Millisecond
	queue.End()
	queue.End() // double End keeps the first end time
	run := tr.StartSpan("run", root)
	run.AttachSummary(Summary{Cycles: 225, Cells: 10})
	now = 40 * time.Millisecond
	run.End()
	root.End()

	spans := tr.Spans()
	byName := map[string]*SpanRecord{}
	for i := range spans {
		byName[spans[i].Name] = &spans[i]
	}
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6: %+v", len(spans), spans)
	}
	if r := byName["request"]; r.Parent != -1 || r.DurNS() != int64(40*time.Millisecond) {
		t.Errorf("root = %+v, want parent -1, 40ms", r)
	}
	for name, wantParent := range map[string]int{
		"cache": byName["request"].ID, "queue-wait": byName["request"].ID,
		"run": byName["request"].ID, "parse": byName["cache"].ID,
		"cellgen": byName["cache"].ID,
	} {
		if byName[name] == nil {
			t.Fatalf("span %q missing", name)
		}
		if byName[name].Parent != wantParent {
			t.Errorf("%s.Parent = %d, want %d", name, byName[name].Parent, wantParent)
		}
	}
	if d := byName["cache"].DurNS(); d != int64(5*time.Millisecond) {
		t.Errorf("cache duration = %d, want 5ms", d)
	}
	if d := byName["queue-wait"].DurNS(); d != int64(3*time.Millisecond) {
		t.Errorf("queue-wait duration = %d (double-End must keep the first), want 3ms", d)
	}
	// Phase spans are back-dated by their reported duration.
	if p := byName["parse"]; p.StartNS != int64(5*time.Millisecond) || p.DurNS() != int64(2*time.Millisecond) {
		t.Errorf("parse = [%d,%d], want [5ms,7ms]", p.StartNS, p.EndNS)
	}
	if p := byName["cellgen"]; p.DurNS() != int64(3*time.Millisecond) {
		t.Errorf("cellgen duration = %d, want 3ms", p.DurNS())
	}
	if s := byName["run"].Summary; s == nil || s.Cycles != 225 || s.Cells != 10 {
		t.Errorf("run summary = %+v, want cycles 225, cells 10", byName["run"].Summary)
	}
	if a := byName["cache"].Attrs; len(a) != 1 || a[0].Key != "result" || a[0].Value != "miss" {
		t.Errorf("cache attrs = %+v", a)
	}
	// Children never extend past the root: the tree's durations must
	// sum consistently with the total.
	var childSum int64
	for _, name := range []string{"cache", "queue-wait", "run"} {
		childSum += byName[name].DurNS()
	}
	if total := byName["request"].DurNS(); childSum > total {
		t.Errorf("direct children sum to %d > root %d", childSum, total)
	}
}

// TestSpanDisabledZeroAlloc pins the disabled-trace contract with the
// same pattern that pins the no-op Recorder: a nil *Trace must make the
// whole span API free.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.StartSpan("request", nil)
		child := tr.StartSpan("cache", root)
		child.Annotate("result", "hit")
		child.AttachSummary(Summary{})
		child.End()
		rec := SpanPhases(tr, root)
		rec.Phase("parse", 0.001, 10, "")
		root.End()
		if tr.Spans() != nil {
			t.Fatal("disabled trace returned spans")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocated %.1f times per run, want 0", allocs)
	}
}

// TestWriteChromeSpans checks the span export parses as a Chrome trace
// and carries every span with the fields Perfetto requires.
func TestWriteChromeSpans(t *testing.T) {
	var now time.Duration
	tr := NewTraceClock(func() time.Duration { return now })
	root := tr.StartSpan("request", nil)
	now = time.Millisecond
	run := tr.StartSpan("run", root)
	run.AttachSummary(Summary{Cycles: 719, Cells: 10})
	now = 2 * time.Millisecond
	run.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span trace is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"request", "run"} {
		if !names[want] {
			t.Errorf("no %q event in span trace", want)
		}
	}
	if !strings.Contains(buf.String(), `"cycles":719`) {
		t.Error("run summary cycles not exported to the trace args")
	}
}

// TestSummarizeZeroProfile is the empty-profile guard: a request that
// fails before RunStart leaves a zero-value (or nil) profile, and its
// summary must be all zeros — never NaN utilization leaking into
// metrics or logs.
func TestSummarizeZeroProfile(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Profile
	}{
		{"nil", nil},
		{"zero-value", &Profile{}},
		{"cells-no-cycles", &Profile{Cells: 10, Cell: make([]CellProfile, 10)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.p.Summarize()
			for name, v := range map[string]float64{
				"BusyFrac": s.BusyFrac, "AddUtil": s.AddUtil, "MulUtil": s.MulUtil,
				"StarvedFrac": s.StarvedFrac, "BubbleFrac": s.BubbleFrac,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite zero", name, v)
				}
				if v != 0 {
					t.Errorf("%s = %v, want 0 on an empty profile", name, v)
				}
			}
			if s.PeakQueue != 0 || s.PeakQueueAt != "" {
				t.Errorf("peak queue = %d at %q, want zero", s.PeakQueue, s.PeakQueueAt)
			}
		})
	}
	// The text report path must not print NaN either.
	if rep := (&Profile{}).UtilizationReport(); strings.Contains(rep, "NaN") {
		t.Errorf("UtilizationReport on a zero profile prints NaN:\n%s", rep)
	}
}

// TestSummarizePartialProfile covers profiles a failed or truncated run
// leaves behind: cycles counted but no per-cell records, a mix of
// active and never-started cells, fewer cell records than the declared
// cell count.  Every fraction must stay finite and within [0, 1].
func TestSummarizePartialProfile(t *testing.T) {
	cases := []struct {
		name string
		p    *Profile
	}{
		{"cycles-no-cells", &Profile{Cycles: 500, Cells: 4}},
		{"some-cells-idle", &Profile{Cycles: 100, Cells: 3, Cell: []CellProfile{
			{Busy: 40, Starved: 10, Bubble: 5, AddOps: 30, MulOps: 25},
			{}, // never started
			{Busy: 20, Bubble: 20},
		}}},
		{"fewer-records-than-cells", &Profile{Cycles: 200, Cells: 8, Cell: []CellProfile{
			{Busy: 50, AddOps: 50, MulOps: 50},
		}}},
		{"all-starved", &Profile{Cycles: 64, Cells: 1, Cell: []CellProfile{
			{Starved: 64},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.p.Summarize()
			if s.Cycles != tc.p.Cycles || s.Cells != tc.p.Cells {
				t.Errorf("summary carries cycles=%d cells=%d, want %d/%d",
					s.Cycles, s.Cells, tc.p.Cycles, tc.p.Cells)
			}
			for name, v := range map[string]float64{
				"BusyFrac": s.BusyFrac, "AddUtil": s.AddUtil, "MulUtil": s.MulUtil,
				"StarvedFrac": s.StarvedFrac, "BubbleFrac": s.BubbleFrac,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
				if v < 0 || v > 1 {
					t.Errorf("%s = %v, want within [0, 1]", name, v)
				}
			}
			// Busy, starved and bubble partition the active window.
			if total := s.BusyFrac + s.StarvedFrac + s.BubbleFrac; total > 1.0001 {
				t.Errorf("stall attribution sums to %v, want <= 1", total)
			}
		})
	}

	// Spot-check the mixed case's arithmetic: active = 40+10+5 + 0 +
	// 20+20 = 95; busy 60/95, starved 10/95.
	s := cases[1].p.Summarize()
	if got, want := s.BusyFrac, 60.0/95.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed-case BusyFrac = %v, want %v", got, want)
	}
	if got, want := s.StarvedFrac, 10.0/95.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed-case StarvedFrac = %v, want %v", got, want)
	}
	if got, want := s.AddUtil, 30.0/95.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed-case AddUtil = %v, want %v", got, want)
	}
}

// failingWriter errors every write after the first n bytes have been
// accepted, simulating a disk filling up mid-stream.
type failingWriter struct {
	n   int
	err error
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

// TestChromeTracerWriteError pins the sticky-error path: a writer that
// fails mid-stream must surface its error from Close(), and the tracer
// must go quiet (not panic or spin) after the failure.
func TestChromeTracerWriteError(t *testing.T) {
	boom := errors.New("disk full")
	fw := &failingWriter{n: 1 << 12, err: boom}
	tr := NewChromeTracer(fw)
	tr.RunStart(4, 3, 4)
	// Emit far more than the 4KiB the writer accepts plus the tracer's
	// 64KiB buffer, so the failure strikes mid-stream, not at Close.
	for cyc := int64(0); cyc < 20000; cyc++ {
		for c := 0; c < 4; c++ {
			tr.Issue(cyc, c, UnitAdd)
			tr.QueuePush(cyc, c, QueueX, int(cyc%8))
		}
	}
	tr.RunEnd(20000)
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the writer's error", err)
	}
	// A second Close keeps reporting the sticky error.
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("second Close() = %v, want the sticky error", err)
	}
}

// TestChromeTracerCloseError covers the complementary path: the stream
// fits the tracer's buffer entirely, so the failure can only surface at
// the final flush — Close must still report it.
func TestChromeTracerCloseError(t *testing.T) {
	boom := errors.New("pipe closed")
	tr := NewChromeTracer(&failingWriter{n: 0, err: boom})
	tr.Phase("parse", 0.001, 10, "")
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the writer's error", err)
	}
}

package obs

// Summary condenses a run Profile into the scalar aggregates a
// long-lived service exports per run: total machine time, how the
// array's cycles divided between work and the stall classes, the FPU
// utilizations behind the paper's §7 claim, and the peak data-queue
// occupancy.  All fractions are over the summed cell-active windows.
type Summary struct {
	Cycles int64
	Cells  int

	// BusyFrac is the fraction of cell-active cycles in which at least
	// one functional-unit field issued.
	BusyFrac float64
	// AddUtil and MulUtil are the per-FPU issue fractions over the
	// active window, summed across cells.
	AddUtil float64
	MulUtil float64
	// StarvedFrac and BubbleFrac attribute the non-busy active cycles:
	// starved by the upstream producer vs. scheduled bubbles.
	StarvedFrac float64
	BubbleFrac  float64

	// PeakQueue is the exact high-water mark over the data queues and
	// PeakQueueAt the queue that reached it.
	PeakQueue   int
	PeakQueueAt string
	// HostStall is the total host-input backpressure in cycles (X+Y).
	HostStall int64
}

// Summarize aggregates the profile.  It is cheap (one pass over the
// per-cell records) and safe on a nil profile, which yields the zero
// Summary.
func (p *Profile) Summarize() Summary {
	if p == nil {
		return Summary{}
	}
	s := Summary{
		Cycles:    p.Cycles,
		Cells:     p.Cells,
		HostStall: p.HostStallX + p.HostStallY,
	}
	var active, busy, starved, bubble, add, mul int64
	for i := range p.Cell {
		c := &p.Cell[i]
		active += c.Active()
		busy += c.Busy
		starved += c.Starved
		bubble += c.Bubble
		add += c.AddOps
		mul += c.MulOps
	}
	if active > 0 {
		s.BusyFrac = float64(busy) / float64(active)
		s.AddUtil = float64(add) / float64(active)
		s.MulUtil = float64(mul) / float64(active)
		s.StarvedFrac = float64(starved) / float64(active)
		s.BubbleFrac = float64(bubble) / float64(active)
	}
	s.PeakQueue, s.PeakQueueAt = p.MaxQueue()
	return s
}

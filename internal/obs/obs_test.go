package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNopZeroAlloc pins the hot-path contract: driving the no-op
// recorder through every event method allocates nothing.  The
// simulator calls these per cycle per cell, so a single boxing
// allocation here would dominate a run.
func TestNopZeroAlloc(t *testing.T) {
	r := Nop()
	allocs := testing.AllocsPerRun(100, func() {
		r.RunStart(10, 6, 4)
		r.CellStart(4, 0)
		r.Issue(5, 0, UnitAdd)
		r.Issue(5, 0, UnitMul)
		r.MemRef(5, 0, 0, 42, false)
		r.QueuePush(5, 0, QueueX, 3)
		r.QueuePop(6, 0, QueueY, 2)
		r.Stall(7, 0, StallQueueEmpty)
		r.CellFinish(8, 0)
		r.RunEnd(9)
	})
	if allocs != 0 {
		t.Fatalf("no-op recorder allocated %.1f times per run, want 0", allocs)
	}
}

func TestEnabled(t *testing.T) {
	if Enabled(nil) {
		t.Error("Enabled(nil) = true")
	}
	if Enabled(Nop()) {
		t.Error("Enabled(Nop()) = true")
	}
	if !Enabled(&countingRecorder{}) {
		t.Error("Enabled(real recorder) = false")
	}
}

// countingRecorder counts events for Multi fan-out checks.
type countingRecorder struct {
	nopRecorder
	issues int
	phases int
}

func (c *countingRecorder) Issue(int64, int, Unit)             { c.issues++ }
func (c *countingRecorder) Phase(string, float64, int, string) { c.phases++ }

func TestMulti(t *testing.T) {
	if got := Multi(); got != Nop() {
		t.Errorf("Multi() = %v, want Nop", got)
	}
	if got := Multi(nil, Nop(), nil); got != Nop() {
		t.Errorf("Multi(nil, Nop, nil) = %v, want Nop", got)
	}
	a := &countingRecorder{}
	if got := Multi(nil, a, Nop()); got != Recorder(a) {
		t.Errorf("Multi with one real recorder should return it unwrapped, got %T", got)
	}
	b := &countingRecorder{}
	m := Multi(a, nil, b)
	m.Issue(1, 0, UnitAdd)
	m.Issue(2, 1, UnitMul)
	m.Phase("parse", 0.001, 10, "")
	if a.issues != 2 || b.issues != 2 {
		t.Errorf("fan-out issues: a=%d b=%d, want 2 each", a.issues, b.issues)
	}
	if a.phases != 1 || b.phases != 1 {
		t.Errorf("fan-out phases: a=%d b=%d, want 1 each", a.phases, b.phases)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct{ got, want string }{
		{UnitAdd.String(), "add"},
		{UnitMul.String(), "mul"},
		{UnitMov.String(), "mov"},
		{QueueX.String(), "X"},
		{QueueY.String(), "Y"},
		{QueueAdr.String(), "Adr"},
		{StallSkewLead.String(), "skew-lead"},
		{StallQueueEmpty.String(), "queue-empty"},
		{StallBubble.String(), "bubble"},
		{StallQueueFull.String(), "queue-full"},
		{StallDrain.String(), "drain"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

// chromeDoc is the shape Perfetto expects from the JSON object format.
type chromeDoc struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []json.RawMessage `json:"traceEvents"`
}

// TestChromeTracerJSON drives a small synthetic run through the tracer
// and checks the output is a well-formed trace: parses as JSON and every
// event carries the ph, ts, pid and tid fields Perfetto requires.
func TestChromeTracerJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	tr.Phase("parse", 0.0012, 34, "")
	tr.Phase("cellgen", 0.0034, 120, "2 loops pipelined")
	tr.RunStart(2, 3, 4)
	tr.Stall(0, 1, StallSkewLead)
	tr.Stall(1, 1, StallSkewLead)
	tr.Stall(2, 1, StallSkewLead) // coalesces with the two above
	tr.CellStart(0, 0)
	tr.Issue(0, 0, UnitAdd)
	tr.Issue(0, 0, UnitMul)
	tr.MemRef(0, 0, 0, 17, false)
	tr.MemRef(1, 0, 1, 23, true)
	tr.QueuePush(0, 0, QueueX, 1)
	tr.QueuePop(1, 0, QueueX, 0)
	tr.Stall(2, 0, StallQueueEmpty)
	tr.CellStart(3, 1)
	tr.CellFinish(5, 0)
	tr.Stall(6, 0, StallDrain)
	tr.CellFinish(8, 1)
	tr.RunEnd(9)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	names := map[string]int{}
	for i, raw := range doc.TraceEvents {
		var ev map[string]any
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("event %d is not an object: %v", i, err)
		}
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %s", i, field, raw)
			}
		}
		names[ev["name"].(string)]++
	}
	// The three skew-lead stalls of cell 1 must coalesce into one slice.
	if n := names["skew-lead"]; n != 1 {
		t.Errorf("skew-lead slices = %d, want 1 (coalesced)", n)
	}
	for _, want := range []string{"active", "add", "mul", "load", "store", "cell0.X", "queue-empty", "drain", "parse", "cellgen"} {
		if names[want] == 0 {
			t.Errorf("no %q event in trace", want)
		}
	}
}

// sampleProfile builds a small hand-filled profile for report tests.
func sampleProfile() *Profile {
	return &Profile{
		Cells:  2,
		Cycles: 100,
		Skew:   6,
		Lead:   4,
		Cell: []CellProfile{
			{
				Start: 4, Finish: 93,
				AddOps: 70, MulOps: 60, MovOps: 10, Loads: 20, Stores: 5,
				Busy: 80, Starved: 6, Bubble: 4, SkewLead: 0, Drain: 6,
				Depth: []DepthProfile{{Cycles: 10, AddOps: 2}, {Cycles: 80, AddOps: 68, MulOps: 60}},
			},
			{
				Start: 10, Finish: 99,
				AddOps: 70, MulOps: 60, MovOps: 10, Loads: 20, Stores: 5,
				Busy: 82, Starved: 8, Bubble: 0, SkewLead: 6, Drain: 0,
				Depth: []DepthProfile{{Cycles: 10, AddOps: 2}, {Cycles: 80, AddOps: 68, MulOps: 60}},
			},
		},
		Queues: []QueueProfile{
			{Name: "cell0.X", Cell: 0, Queue: QueueX, HighWater: 12, Pushes: 90, Pops: 90,
				Hist: []int64{50, 30, 20}},
			{Name: "cell1.Y", Cell: 1, Queue: QueueY, HighWater: 30, Pushes: 80, Pops: 80,
				Hist: []int64{10, 40, 50}},
			{Name: "cell0.Adr", Cell: 0, Queue: QueueAdr, HighWater: 64, Pushes: 200, Pops: 200,
				Hist: []int64{0, 100, 100}},
		},
		HostStallX: 3,
	}
}

func TestProfileMaxQueue(t *testing.T) {
	p := sampleProfile()
	// The Adr queue's higher mark must not win: MaxQueue is over the
	// data queues only, preserving the old Stats.MaxQueue meaning.
	max, name := p.MaxQueue()
	if max != 30 || name != "cell1.Y" {
		t.Errorf("MaxQueue() = %d, %q; want 30, cell1.Y", max, name)
	}
}

func TestCellProfileHelpers(t *testing.T) {
	c := &sampleProfile().Cell[0]
	if got := c.Active(); got != 90 {
		t.Errorf("Active() = %d, want 90", got)
	}
	in := c.Inner()
	if in == nil || in.Cycles != 80 || in.AddOps != 68 {
		t.Errorf("Inner() = %+v, want the depth-1 profile", in)
	}
	empty := &CellProfile{}
	if empty.Inner() != nil {
		t.Error("Inner() of an idle cell should be nil")
	}
}

func TestQueueProfileStats(t *testing.T) {
	q := &sampleProfile().Queues[0] // hist 50/30/20 over occ 0/1/2
	if got := q.meanOcc(); got < 0.69 || got > 0.71 {
		t.Errorf("meanOcc() = %v, want 0.70", got)
	}
	if got := q.pctOcc(0.50); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := q.pctOcc(0.95); got != 2 {
		t.Errorf("p95 = %d, want 2", got)
	}
}

func TestUtilizationReport(t *testing.T) {
	rep := sampleProfile().UtilizationReport()
	for _, want := range []string{
		"2 cells, skew 6, lead 4, 100 cycles",
		"cell0.X", "cell1.Y", "cell0.Adr",
		"peak data-queue occupancy 30 at cell1.Y",
		"host input backpressure (queue-full): X 3 cycles, Y 0 cycles",
		"in.add%",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestUtilizationReportGolden pins the exact report text — including
// the host-stall and peak-queue ("MaxQueueAt") lines — so format
// regressions show up as a diff, not as a silently reshaped table.
func TestUtilizationReportGolden(t *testing.T) {
	const golden = `run: 2 cells, skew 6, lead 4, 100 cycles

per-cell utilization and stall attribution (cycles):
cell   active   busy%    add%    mul% | in.add% in.mul% |  starved  bubble  skew-in   drain
   0       90   88.9%   77.8%   66.7% |   85.0%   75.0% |        6       4        0       6
   1       90   91.1%   77.8%   66.7% |   85.0%   75.0% |        8       0        6       0
 all      180   90.0%   77.8%   66.7% |   85.0%   75.0% |       14       4        6       6
(add%/mul% over the active window; in.add%/in.mul% over the innermost loop — §7's
 "all the arithmetic units are fully utilized in the innermost loop" is in.≈100%)

queue high-water marks and occupancy:
queue          peak     mean      p50      p95   pushes
cell0.X          12     0.70        1        2       90
cell1.Y          30     1.40        2        2       80
cell0.Adr        64     1.50        2        2      200
peak data-queue occupancy 30 at cell1.Y
host input backpressure (queue-full): X 3 cycles, Y 0 cycles
`
	got := sampleProfile().UtilizationReport()
	if got != golden {
		gl, ol := strings.Split(golden, "\n"), strings.Split(got, "\n")
		for i := 0; i < len(gl) || i < len(ol); i++ {
			var w, g string
			if i < len(gl) {
				w = gl[i]
			}
			if i < len(ol) {
				g = ol[i]
			}
			if w != g {
				t.Errorf("line %d:\n want %q\n  got %q", i+1, w, g)
			}
		}
	}
}

func TestPhaseReport(t *testing.T) {
	if PhaseReport(nil) != "" {
		t.Error("PhaseReport(nil) should be empty")
	}
	rep := PhaseReport([]PhaseStat{
		{Name: "parse", Seconds: 0.001, Size: 30},
		{Name: "cellgen", Seconds: 0.002, Size: 200, Note: "2 loops pipelined"},
	})
	for _, want := range []string{"parse", "cellgen", "2 loops pipelined", "total"} {
		if !strings.Contains(rep, want) {
			t.Errorf("phase report missing %q:\n%s", want, rep)
		}
	}
}

package iugen

import (
	"fmt"
	"sort"

	"warp/internal/mcode"
)

// This file implements the §6.3.2 operand-selection algorithm: each
// address expression is bound to an induction register updated by
// additions (strength reduction), and expressions that cannot be
// computed in time — no free adder cycle for an update, or no register
// left — are marked for the sequential table, exactly the escape
// mechanism the paper describes.

// depth returns the nesting depth of a body (top level = 0).
func depth(b *iuBody) int {
	d := 0
	for b.parent != nil {
		d++
		b = b.parent
	}
	return d
}

// groupExprs partitions the sites into address expressions.
func (g *genState) groupExprs() []*expr {
	byKey := make(map[string]*expr)
	var order []*expr
	for _, s := range g.sites {
		sort.Slice(s.terms, func(i, j int) bool { return depth(s.terms[i].body) < depth(s.terms[j].body) })
		key := fmt.Sprintf("c%d", s.constV)
		for _, t := range s.terms {
			key += fmt.Sprintf("|b%p*%d", t.body, t.stride)
		}
		e, ok := byKey[key]
		if !ok {
			e = &expr{key: key, constV: s.constV}
			for _, t := range s.terms {
				e.terms = append(e.terms, t.term)
			}
			byKey[key] = e
			order = append(order, e)
		}
		e.sites = append(e.sites, s)
		// Dynamic count: one output per execution of the site.
		cnt := int64(1)
		for b := s.seg.owner; b != nil; b = b.parent {
			if b.loop != nil {
				cnt *= b.loop.Trips
			}
		}
		e.dynCount += cnt
	}
	for _, e := range order {
		sort.Slice(e.sites, func(i, j int) bool { return e.sites[i].seq < e.sites[j].seq })
	}
	return order
}

// pendingUpdate is a strength-reduction add tentatively placed in an
// instruction; the register number is patched in after spilling.  A
// pre-placed update fires before the iteration's first use, which the
// register's initialization compensates for (init bias −delta).
type pendingUpdate struct {
	in    *mcode.IUInstr
	delta int64
	pre   bool
}

// planner state for update placement.
type planner struct {
	taken   map[*mcode.IUInstr]bool
	pending map[*expr][]*pendingUpdate
}

// exprScope returns the segment-order epoch of the top-level region all
// of e's sites fall in, or global=true when they span regions (then the
// register must stay live for the whole program).
func (g *genState) exprScope(e *expr) (epoch int, global bool) {
	key := -1
	for _, s := range e.sites {
		ep := s.seg.owner.epoch
		if s.seg.owner == g.top {
			ep = s.seg.idx
		}
		if key == -1 {
			key = ep
		} else if key != ep {
			return 0, true
		}
	}
	return key, false
}

// planExprs binds expressions to registers and places their update and
// initialization instructions, spilling what does not fit.
//
// Register liveness is scoped: an expression used only within one
// top-level region frees its register afterwards, so different regions
// reuse the same numbers — "at no time can there be more than 16 live
// variables" (§6.3.2) is a statement about liveness, not about the
// static count.  A scoped register is re-initialized by an immediate
// placed in any earlier free immediate field (re-executing an
// initialization inside an earlier loop is idempotent and harmless);
// expressions whose register cannot be initialized in time are spilled,
// exactly the paper's step 3b ("If no cycle is available to initialize
// the register, mark the address").
//
// It returns the prologue (global initializations) and the peak number
// of simultaneously live registers.
func (g *genState) planExprs(exprs []*expr) ([]*mcode.IUInstr, int, error) {
	pl := &planner{
		taken:   make(map[*mcode.IUInstr]bool),
		pending: make(map[*expr][]*pendingUpdate),
	}
	var candidates []*expr
	for _, e := range exprs {
		if ok := pl.plan(e); ok {
			candidates = append(candidates, e)
			for _, u := range pl.pending[e] {
				if u.pre {
					e.initBias -= u.delta
				}
			}
		} else {
			pl.unplace(e)
			e.spilled = true
		}
	}

	// Partition by scope.
	type scope struct {
		epoch int
		exprs []*expr
	}
	var globals []*expr
	scopesByEpoch := map[int]*scope{}
	for _, e := range candidates {
		if ep, global := g.exprScope(e); global {
			globals = append(globals, e)
		} else {
			sc := scopesByEpoch[ep]
			if sc == nil {
				sc = &scope{epoch: ep}
				scopesByEpoch[ep] = sc
			}
			sc.exprs = append(sc.exprs, e)
		}
	}

	// Spill policy: fewest dynamic outputs first — "complicated address
	// computations with no common sub-expressions are good candidates;
	// address computations inside nested loops are bad candidates"
	// (§6.3.2).
	trim := func(list []*expr, limit int) []*expr {
		if len(list) <= limit {
			return list
		}
		sort.SliceStable(list, func(i, j int) bool { return list[i].dynCount > list[j].dynCount })
		for _, e := range list[limit:] {
			pl.unplace(e)
			e.spilled = true
		}
		return list[:limit]
	}
	globals = trim(globals, mcode.IUNumRegs)
	pool := mcode.IUNumRegs - len(globals)
	var scopes []*scope
	for _, sc := range scopesByEpoch {
		sc.exprs = trim(sc.exprs, pool)
		scopes = append(scopes, sc)
	}
	sort.Slice(scopes, func(i, j int) bool { return scopes[i].epoch < scopes[j].epoch })

	// Numbering: globals first; scoped expressions then share the
	// remaining numbers greedily.  Reusing a number for a later region
	// requires a free immediate field between the two regions to
	// re-initialize it (the inter-region gap cycles the cell code
	// generator emits provide them); when no number can be
	// re-initialized in time, a fresh one is taken and initialized in
	// the prologue; when neither works the expression is spilled —
	// the paper's step 3b.
	sort.Slice(globals, func(i, j int) bool { return globals[i].sites[0].seq < globals[j].sites[0].seq })
	for i, e := range globals {
		e.reg = mcode.IUReg(i)
	}
	var prologue []*mcode.IUInstr
	for _, e := range globals {
		prologue = append(prologue, &mcode.IUInstr{Imm: &mcode.IUImm{Dst: e.reg, Value: e.constV + e.initBias}})
	}
	regionEnd := func(epoch int) int {
		for _, m := range g.epochMarks {
			if m > epoch {
				return m
			}
		}
		return len(g.segOrder)
	}
	nextFresh := len(globals)
	maxRegs := len(globals)
	freeFrom := map[mcode.IUReg]int{} // numbers in reuse rotation → dead-from index
	for _, sc := range scopes {
		end := regionEnd(sc.epoch)
		sort.Slice(sc.exprs, func(i, j int) bool { return sc.exprs[i].sites[0].seq < sc.exprs[j].sites[0].seq })
		usedHere := map[mcode.IUReg]bool{}
		for _, e := range sc.exprs {
			assigned := false
			// Reuse a dead number if its re-initialization fits.
			for r := mcode.IUReg(len(globals)); int(r) < nextFresh; r++ {
				if usedHere[r] {
					continue
				}
				e.reg = r
				if g.placeInit(e, freeFrom[r], sc.epoch) {
					freeFrom[r] = end
					usedHere[r] = true
					assigned = true
					break
				}
			}
			if !assigned && nextFresh < mcode.IUNumRegs {
				e.reg = mcode.IUReg(nextFresh)
				nextFresh++
				prologue = append(prologue, &mcode.IUInstr{Imm: &mcode.IUImm{Dst: e.reg, Value: e.constV + e.initBias}})
				freeFrom[e.reg] = end
				usedHere[e.reg] = true
				assigned = true
			}
			if !assigned {
				pl.unplace(e)
				e.spilled = true
			}
		}
		if nextFresh > maxRegs {
			maxRegs = nextFresh
		}
	}

	// Materialize the surviving updates.
	for _, e := range candidates {
		if e.spilled {
			continue
		}
		for _, u := range pl.pending[e] {
			u.in.Alu = &mcode.IUAlu{
				Dst: e.reg, A: e.reg,
				BIsImm: true, ImmVal: u.delta,
			}
			if u.delta < 0 {
				u.in.Alu.Sub = true
				u.in.Alu.ImmVal = -u.delta
			}
		}
	}
	return prologue, maxRegs, nil
}

// placeInit writes the register initialization into a free immediate
// field of a segment in [from, epoch), searching backward (closest
// first).
func (g *genState) placeInit(e *expr, from, epoch int) bool {
	for i := epoch - 1; i >= from; i-- {
		seg := g.segOrder[i]
		for c := len(seg.instrs) - 1; c >= 0; c-- {
			in := seg.instrs[c]
			if in.Imm == nil {
				in.Imm = &mcode.IUImm{Dst: e.reg, Value: e.constV + e.initBias}
				return true
			}
		}
	}
	return false
}

// unplace releases an expression's tentatively reserved cycles.
func (pl *planner) unplace(e *expr) {
	for _, u := range pl.pending[e] {
		delete(pl.taken, u.in)
	}
	delete(pl.pending, e)
}

// plan attempts register binding for one expression: one update per
// unrolled copy at the innermost induction level, and one compensating
// update per iteration of every enclosing loop between the innermost
// and outermost induction levels.
func (pl *planner) plan(e *expr) bool {
	if len(e.terms) == 0 {
		return true // constant address: init only
	}
	innermost := e.terms[len(e.terms)-1].body

	// The chain of loops from the innermost induction level up through
	// every enclosing loop, with their strides (0 for loops the address
	// does not depend on).  Loops above the outermost induction level
	// still need compensation: the accumulation of the levels below must
	// be undone so the register restarts each enclosing iteration.
	strideOf := make(map[*iuBody]int64)
	for _, t := range e.terms {
		strideOf[t.body] = t.stride
	}
	var chain []*iuBody
	for b := innermost; b.parent != nil; b = b.parent {
		chain = append(chain, b)
	}
	// chain[0] = innermost ... chain[len-1] = outermost loop body.

	// Innermost level: one update of +stride after each copy's last use.
	if !pl.planInnermost(e, innermost, strideOf[innermost]) {
		return false
	}
	// Outer levels: compensate the accumulation of the level below.
	for i := 1; i < len(chain); i++ {
		b := chain[i]
		below := chain[i-1]
		accum := pl.levelAccum(below, strideOf[below])
		delta := strideOf[b] - accum
		if delta == 0 {
			continue
		}
		// Window: after the inner loop item ends, before this body's
		// iteration ends; or, pre-placed, before the inner loop item
		// starts (compensated in the initialization).
		from := below.startInParent + below.loop.Trips*below.length
		if pl.placeIn(e, b, from, b.length, delta, false) {
			continue
		}
		if pl.placeIn(e, b, 0, below.startInParent, delta, true) {
			continue
		}
		return false
	}
	return true
}

// levelAccum is the total register change contributed per complete
// execution of the loop b: its in-body updates run m times per IU
// iteration for Trips iterations.
func (pl *planner) levelAccum(b *iuBody, stride int64) int64 {
	return stride * b.m * b.loop.Trips
}

// planInnermost places the per-copy updates at the innermost level.
func (pl *planner) planInnermost(e *expr, b *iuBody, stride int64) bool {
	if stride == 0 {
		return true
	}
	cellBodyLen := b.length / b.m
	// Last use per copy, first use per copy (intervals mapped to b).
	last := make([]int64, b.m)
	first := make([]int64, b.m)
	for c := range first {
		first[c] = int64(-1)
		last[c] = int64(-1)
	}
	for _, s := range e.sites {
		lo, hi, ok := mapInterval(s, b)
		if !ok {
			return false // site outside the induction loop: spill
		}
		c := int64(0)
		for _, st := range s.terms {
			if st.body == b {
				c = st.copyIdx
			}
		}
		if c >= b.m {
			// A peeled site cannot share the in-loop register.
			return false
		}
		if first[c] < 0 || lo < first[c] {
			first[c] = lo
		}
		if hi > last[c] {
			last[c] = hi
		}
	}
	for c := int64(0); c < b.m; c++ {
		if first[c] < 0 {
			// A copy with no use: synthesize window boundaries from the
			// copy's extent.
			first[c] = c * cellBodyLen
			last[c] = c * cellBodyLen
		}
	}
	for c := int64(0); c < b.m; c++ {
		from := last[c]
		to := b.length
		if c+1 < b.m {
			to = first[c+1]
		}
		if pl.placeIn(e, b, from, to, stride, false) {
			continue
		}
		if b.m == 1 && pl.placeIn(e, b, 0, first[0], stride, true) {
			continue
		}
		return false
	}
	return true
}

// mapInterval maps a site's execution to a cycle interval of body b:
// the site's own cycle if directly inside b, or the span of the
// enclosing loop item one level under b.
func mapInterval(s *site, b *iuBody) (lo, hi int64, ok bool) {
	cur := s.seg.owner
	lo = s.seg.start + s.cycle
	hi = lo
	for cur != b {
		if cur.parent == nil {
			return 0, 0, false
		}
		span := cur.length
		if cur.loop != nil {
			span *= cur.loop.Trips
		}
		lo = cur.startInParent
		hi = cur.startInParent + span - 1
		cur = cur.parent
	}
	return lo, hi, true
}

// placeIn reserves a free adder cycle in [from, to) of b's straight
// segments for a pending +delta update.  pre marks updates placed
// before the iteration's first use (compensated by the register's
// initialization).
func (pl *planner) placeIn(e *expr, b *iuBody, from, to int64, delta int64, pre bool) bool {
	for _, seg := range b.segs {
		for c, in := range seg.instrs {
			cyc := seg.start + int64(c)
			if cyc < from || cyc >= to {
				continue
			}
			if in.Alu != nil || in.CtrWork || pl.taken[in] {
				continue
			}
			pl.taken[in] = true
			pl.pending[e] = append(pl.pending[e], &pendingUpdate{in: in, delta: delta, pre: pre})
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Table construction and output emission.

// buildTable enumerates, in execution order, the values of every
// spilled site; the result is the pre-stored sequential table (§6.3.2).
func (g *genState) buildTable(exprs []*expr) ([]int64, error) {
	spilledAt := make(map[*segment]map[int64][]*site)
	any := false
	for _, e := range exprs {
		if !e.spilled {
			continue
		}
		any = true
		for _, s := range e.sites {
			m := spilledAt[s.seg]
			if m == nil {
				m = make(map[int64][]*site)
				spilledAt[s.seg] = m
			}
			m[s.cycle] = append(m[s.cycle], s)
		}
	}
	if !any {
		return nil, nil
	}
	for _, m := range spilledAt {
		for _, ss := range m {
			sort.Slice(ss, func(i, j int) bool { return ss[i].slot < ss[j].slot })
		}
	}

	var table []int64
	iters := make(map[*iuBody]int64)
	var walk func(items []mcode.IUItem, owner *iuBody) error
	// Map each IUStraight back to its segment.
	segOf := make(map[*mcode.IUStraight]*segment)
	var collect func(b *iuBody)
	collect = func(b *iuBody) {
		for _, s := range b.segs {
			segOf[s.block] = s
		}
	}
	var collectAll func(b *iuBody)
	seen := make(map[*iuBody]bool)
	collectAll = func(b *iuBody) {
		if seen[b] {
			return
		}
		seen[b] = true
		collect(b)
	}
	for _, s := range g.sites {
		for b := s.seg.owner; b != nil; b = b.parent {
			collectAll(b)
		}
	}
	collectAll(g.top)

	bodyOf := make(map[*mcode.IULoop]*iuBody)
	var findBodies func(b *iuBody)
	findBodies = func(b *iuBody) {
		if b.loop != nil {
			bodyOf[b.loop] = b
		}
	}
	for b := range seen {
		findBodies(b)
	}

	walk = func(items []mcode.IUItem, owner *iuBody) error {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.IUStraight:
				seg := segOf[it]
				if seg == nil {
					continue
				}
				m := spilledAt[seg]
				if m == nil {
					continue
				}
				var cycles []int64
				for c := range m {
					cycles = append(cycles, c)
				}
				sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
				for _, c := range cycles {
					for _, s := range m[c] {
						v := s.constV
						for _, t := range s.terms {
							v += t.stride * (t.body.m*iters[t.body] + t.copyIdx)
						}
						table = append(table, v)
						if len(table) > mcode.TableWords {
							return fmt.Errorf("iugen: pre-stored addresses exceed the %d-word table (queue overflow of the escape mechanism); fewer addresses must be spilled", mcode.TableWords)
						}
					}
				}
			case *mcode.IULoop:
				b := bodyOf[it]
				for i := int64(0); i < it.Trips; i++ {
					if b != nil {
						iters[b] = i
					}
					if err := walk(it.Body, b); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walk(g.top.items, g.top); err != nil {
		return nil, err
	}
	return table, nil
}

// emitOuts fills the address-output fields of every site's instruction.
func (g *genState) emitOuts(exprs []*expr) {
	exprOf := make(map[*site]*expr)
	for _, e := range exprs {
		for _, s := range e.sites {
			exprOf[s] = e
		}
	}
	for _, s := range g.sites {
		e := exprOf[s]
		in := s.seg.instrs[s.cycle]
		if e.spilled {
			in.Out[s.slot] = &mcode.IUOut{FromTable: true}
		} else {
			in.Out[s.slot] = &mcode.IUOut{Src: e.reg}
		}
	}
}

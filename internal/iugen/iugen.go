// Package iugen generates the interface unit's microprogram from the
// scheduled cell program (§6.3).
//
// The IU and the cells logically operate in lock step: the generated IU
// program mirrors the cell program's loop structure cycle for cycle, so
// that an address emitted at IU cycle t is in the first cell's Adr
// queue exactly when the cell's memory reference at cell cycle t pops
// it (the compiler "utilizes the freedom to get ahead only inside a
// basic block", §6.3).
//
// Within that frame the generator faces the paper's §6.3.2 constraints:
//
//   - addresses are formed by additions only (strength reduction turns
//     each affine address into an induction register with one add per
//     loop boundary);
//   - only 16 registers and no memory: one register per address
//     expression, or the expression is spilled to the 32K-word
//     sequential table;
//   - the loop counter costs three adder cycles per iteration, reserved
//     in every IU loop body, and the per-iteration termination signal
//     carries the counter test (§6.3.1);
//   - loops whose body is too short for the counter work (and one
//     induction update per address expression) are unrolled following
//     §6.3.1 ("unrolling the last k iterations ... solves this
//     problem"): the body is replicated m times and the remainder
//     iterations are peeled straight-line with static signals.
package iugen

import (
	"fmt"

	"warp/internal/mcode"
	"warp/internal/w2"
)

// Result is the generated IU program plus statistics for reporting.
type Result struct {
	IU *mcode.IUProgram
	// Prologue is the number of cycles the IU executes before the
	// mirrored main program: register initializations.  Cell 0 must
	// start Prologue+1 cycles after the IU.
	Prologue int64
	// AddrRegs is the peak number of simultaneously live IU registers
	// bound to address expressions (registers are scoped to top-level
	// regions and reused across them).
	AddrRegs int
	// Spilled is the number of address expressions moved to the table.
	Spilled int
	// TableEntries is the number of pre-stored table words.
	TableEntries int
}

// iuBody is one loop body (or the top level) of the IU program under
// construction.
type iuBody struct {
	parent        *iuBody
	startInParent int64
	loop          *mcode.IULoop // nil at top level
	cellLoop      *mcode.LoopItem
	m             int64 // cell iterations per IU iteration (unroll factor)
	items         []mcode.IUItem
	length        int64
	segs          []*segment // straight segments, in order
	epoch         int        // segOrder index when the enclosing top-level item began
}

// segment is one straight run of IU instructions within a body.
type segment struct {
	owner  *iuBody
	start  int64 // cycle offset within owner
	instrs []*mcode.IUInstr
	block  *mcode.IUStraight
	idx    int // position in genState.segOrder (static program order)
}

// term is one induction component of an address expression.
type term struct {
	body   *iuBody // the IU loop the induction steps with
	stride int64   // address increment per cell iteration
}

// site is one address consumption point.
type site struct {
	seg    *segment
	cycle  int64 // within seg.instrs
	slot   int
	constV int64
	terms  []siteTerm
	seq    int // static discovery order
}

// siteTerm records the expression's dependence on one loop, including
// the site's static sub-iteration offset (unrolled copy index or peeled
// absolute iteration).
type siteTerm struct {
	term
	copyIdx int64
}

// expr is one address expression: a group of sites sharing an induction
// register or a run of table entries.
type expr struct {
	key      string
	sites    []*site
	constV   int64
	terms    []term // outermost first
	spilled  bool
	reg      mcode.IUReg
	dynCount int64
	// initBias compensates pre-placed updates (see plan.go): the
	// register is initialized to constV+initBias so the first
	// iteration's uses still see constV.
	initBias int64
}

type genState struct {
	top    *iuBody
	sites  []*site
	loopID int
	// cellStack tracks enclosing cell loops during mirroring with the
	// current static iteration info.
	cellStack []stackEntry
	err       error
	// segOrder lists every straight segment in static program order;
	// epoch boundaries index into it (see plan.go's scoped register
	// allocation).
	segOrder []*segment
	// curEpoch is the segOrder length when the current top-level item
	// began; bodies record it so expressions can be scoped to their
	// top-level region.  depth guards against peeled top-level loop
	// copies (which mirror back into the top body) resetting it.
	// epochMarks records every region boundary, for liveness windows.
	curEpoch   int
	depth      int
	epochMarks []int
}

type stackEntry struct {
	cellLoop *mcode.LoopItem
	body     *iuBody // IU loop body stepping this cell loop (nil if peeled)
	copyIdx  int64   // static sub-iteration offset (copy index / absolute peeled iteration)
	m        int64
}

// Generate builds the IU program for a cell program.
func Generate(cell *mcode.CellProgram) (*Result, error) {
	g := &genState{top: &iuBody{m: 1}}
	g.mirrorItems(cell.Items, g.top)
	if g.err != nil {
		return nil, g.err
	}
	exprs := g.groupExprs()
	prologue, maxRegs, err := g.planExprs(exprs)
	if err != nil {
		return nil, err
	}
	table, err := g.buildTable(exprs)
	if err != nil {
		return nil, err
	}
	g.emitOuts(exprs)

	prog := &mcode.IUProgram{Table: table}
	if len(prologue) > 0 {
		prog.Items = append(prog.Items, &mcode.IUStraight{Instrs: prologue})
	}
	prog.Items = append(prog.Items, g.top.items...)

	spilled := 0
	for _, e := range exprs {
		if e.spilled {
			spilled++
		}
	}
	return &Result{
		IU:           prog,
		Prologue:     int64(len(prologue)),
		AddrRegs:     maxRegs,
		Spilled:      spilled,
		TableEntries: len(table),
	}, nil
}

// ---------------------------------------------------------------------
// Phase A: mirror the cell program structure.

func (g *genState) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("iugen: "+format, args...)
	}
}

// mirrorItems mirrors a cell item list into body, returning nothing;
// body.items/segs/length are extended.  At the top level each item
// starts a new epoch: the scoped register allocator reuses IU registers
// across top-level regions.
func (g *genState) mirrorItems(items []mcode.CodeItem, body *iuBody) {
	g.depth++
	defer func() { g.depth-- }()
	for _, it := range items {
		if g.err != nil {
			return
		}
		if body == g.top && g.depth == 1 {
			g.curEpoch = len(g.segOrder)
			g.epochMarks = append(g.epochMarks, g.curEpoch)
		}
		switch it := it.(type) {
		case *mcode.Straight:
			g.mirrorStraight(it, body)
		case *mcode.LoopItem:
			g.mirrorLoop(it, body)
		}
	}
}

// curSegment returns the trailing straight segment of body, creating
// one if the body ends with a loop (or is empty).
func (g *genState) curSegment(body *iuBody) *segment {
	if n := len(body.segs); n > 0 {
		s := body.segs[n-1]
		if s.start+int64(len(s.instrs)) == body.length {
			return s
		}
	}
	blk := &mcode.IUStraight{}
	s := &segment{owner: body, start: body.length, block: blk, idx: len(g.segOrder)}
	body.segs = append(body.segs, s)
	body.items = append(body.items, blk)
	g.segOrder = append(g.segOrder, s)
	return s
}

func (g *genState) extend(body *iuBody, n int64) *segment {
	s := g.curSegment(body)
	for i := int64(0); i < n; i++ {
		in := &mcode.IUInstr{}
		s.instrs = append(s.instrs, in)
		s.block.Instrs = append(s.block.Instrs, in)
	}
	body.length += n
	return s
}

// mirrorStraight creates matching IU cycles and records address sites.
func (g *genState) mirrorStraight(st *mcode.Straight, body *iuBody) {
	seg := g.extend(body, int64(len(st.Instrs)))
	base := int64(len(seg.instrs)) - int64(len(st.Instrs))
	for i, in := range st.Instrs {
		for slot, m := range in.Mem {
			if m == nil {
				continue
			}
			g.addSite(seg, base+int64(i), slot, m.Addr)
		}
	}
}

// addSite folds a cell address into IU-structure terms.
func (g *genState) addSite(seg *segment, cycle int64, slot int, a mcode.AddrInfo) {
	aff := a.Shifted()
	s := &site{seg: seg, cycle: cycle, slot: slot, seq: len(g.sites)}
	s.constV = int64(a.Base) + aff.Const
	for _, t := range aff.Terms {
		entry := g.findStack(t.Var)
		if entry == nil {
			g.fail("address %s references loop %s outside its scope", a, t.Var.Var)
			return
		}
		cellStride := t.Coef * entry.cellLoop.Step
		s.constV += t.Coef * entry.cellLoop.First
		if entry.body == nil {
			// Peeled region: iteration is static.
			s.constV += cellStride * entry.copyIdx
			continue
		}
		s.terms = append(s.terms, siteTerm{
			term:    term{body: entry.body, stride: cellStride},
			copyIdx: entry.copyIdx,
		})
	}
	g.sites = append(g.sites, s)
}

func (g *genState) findStack(loop *w2.ForStmt) *stackEntry {
	for i := len(g.cellStack) - 1; i >= 0; i-- {
		if g.cellStack[i].cellLoop.Src == loop {
			return &g.cellStack[i]
		}
	}
	return nil
}

// cellItemsLen returns the length in cycles of a cell item list.
func cellItemsLen(items []mcode.CodeItem) int64 {
	var n int64
	for _, it := range items {
		n += it.Cycles()
	}
	return n
}

// countBodyAddrExprs counts distinct affine address forms among the
// memory references of a straight-line body.
func countBodyAddrExprs(items []mcode.CodeItem) int {
	seen := map[string]bool{}
	for _, it := range items {
		st, ok := it.(*mcode.Straight)
		if !ok {
			continue
		}
		for _, in := range st.Instrs {
			for _, mo := range in.Mem {
				if mo != nil {
					seen[mo.Addr.Sym.Name+"|"+mo.Addr.Shifted().String()] = true
				}
			}
		}
	}
	return len(seen)
}

func hasLoops(items []mcode.CodeItem) bool {
	for _, it := range items {
		if _, ok := it.(*mcode.LoopItem); ok {
			return true
		}
	}
	return false
}

// mirrorLoop mirrors one cell loop.  Bodies of at least the three
// counter-work cycles become one IU loop with the full trip count and a
// per-iteration dynamic termination signal.  Shorter straight-line
// bodies are unrolled by m = ceil(3/bodyLen) (§6.3.1), with the
// remainder iterations peeled straight-line and their signals static.
func (g *genState) mirrorLoop(cl *mcode.LoopItem, body *iuBody) {
	bodyLen := cellItemsLen(cl.Body)
	if bodyLen == 0 {
		g.fail("loop L%d has an empty body", cl.ID)
		return
	}
	trips := cl.Trips
	m := int64(1)
	if bodyLen < mcode.LoopOverheadCycles {
		if hasLoops(cl.Body) {
			g.fail("loop L%d: body of %d cycles contains inner loops; the IU cannot pace it", cl.ID, bodyLen)
			return
		}
		// Unroll so that the counter work AND one induction update per
		// distinct address expression per copy fit the adder budget:
		// m·bodyLen ≥ 3 + m·E, i.e. m ≥ 3/(bodyLen−E).  When a copy has
		// no adder slack (E ≥ bodyLen), keep the minimum unroll and let
		// the addresses take the table escape.
		e := int64(countBodyAddrExprs(cl.Body))
		if e < bodyLen {
			m = (mcode.LoopOverheadCycles + (bodyLen - e) - 1) / (bodyLen - e)
		} else {
			m = (mcode.LoopOverheadCycles + bodyLen - 1) / bodyLen
		}
	}
	mainTrips := trips / m
	peeled := trips % m

	if mainTrips > 0 {
		il := &mcode.IULoop{ID: g.loopID, Trips: mainTrips}
		g.loopID++
		lb := &iuBody{parent: body, startInParent: body.length, loop: il, cellLoop: cl, m: m, epoch: g.curEpoch}
		for c := int64(0); c < m; c++ {
			g.pushStack(cl, lb, c, m)
			g.mirrorItems(cl.Body, lb)
			g.popStack()
			if g.err != nil {
				return
			}
			// Loop signal at the last cycle of each unrolled copy: the
			// decision depends on the IU loop counter.
			g.placeSig(lb, (c+1)*bodyLen-1, &mcode.IUSig{
				LoopID: cl.ID, Copy: c, M: m, CellTrips: trips,
			})
		}
		// Counter bookkeeping: reserve three straight adder cycles.
		if !g.reserveCounter(lb) {
			g.fail("loop L%d: no straight cycles available for the IU's counter work", cl.ID)
			return
		}
		il.Body = lb.items
		body.items = append(body.items, il)
		body.length += lb.length * mainTrips
	}
	// Remainder iterations (tiny unrolled bodies only), straight-line
	// in the parent body with static signals.
	for p := int64(0); p < peeled; p++ {
		iter := mainTrips*m + p
		g.pushStack(cl, nil, iter, m)
		g.mirrorItems(cl.Body, body)
		g.popStack()
		if g.err != nil {
			return
		}
		g.placeSig(body, body.length-1, &mcode.IUSig{
			LoopID: cl.ID, Static: true, Continue: iter < trips-1,
		})
	}
}

func (g *genState) pushStack(cl *mcode.LoopItem, lb *iuBody, copyIdx, m int64) {
	g.cellStack = append(g.cellStack, stackEntry{cellLoop: cl, body: lb, copyIdx: copyIdx, m: m})
}

func (g *genState) popStack() { g.cellStack = g.cellStack[:len(g.cellStack)-1] }

// placeSig emits a loop signal at the latest free straight cycle at or
// before target — but no earlier than the end of the last nested loop
// item, so that the FIFO order of emitted signals matches the order the
// cell's sequencer pops them.  (The cell code generator pads loop
// bodies that end with a nested loop so such a cycle always exists.)
func (g *genState) placeSig(body *iuBody, target int64, sig *mcode.IUSig) {
	var lowBound int64
	if n := len(body.segs); n > 0 {
		lowBound = body.segs[n-1].start
	}
	for cyc := target; cyc >= lowBound; cyc-- {
		in := g.instrAt(body, cyc)
		if in != nil && in.Sig == nil {
			in.Sig = sig
			return
		}
	}
	g.fail("loop L%d: no straight cycle available for the loop signal (the cell program needs a trailing pad)", sig.LoopID)
}

// instrAt returns the instruction at a straight cycle of body, or nil
// if the cycle falls inside a nested loop item.
func (g *genState) instrAt(body *iuBody, cycle int64) *mcode.IUInstr {
	for _, s := range body.segs {
		if cycle >= s.start && cycle < s.start+int64(len(s.instrs)) {
			return s.instrs[cycle-s.start]
		}
	}
	return nil
}

// reserveCounter marks three straight adder cycles of the loop body as
// counter bookkeeping.  Earliest cycles are taken first: induction
// updates must run after the last address output of the iteration, so
// the late cycles are kept free for them.
func (g *genState) reserveCounter(body *iuBody) bool {
	need := mcode.LoopOverheadCycles
	for _, s := range body.segs {
		for _, in := range s.instrs {
			if need == 0 {
				return true
			}
			if in.Alu == nil && !in.CtrWork {
				in.CtrWork = true
				need--
			}
		}
	}
	return need == 0
}

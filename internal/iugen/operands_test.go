package iugen

import "testing"

// TestTable6_5 reproduces Table 6-5 exactly: the three operand
// allocations for a[i,j+1] and b[i+j,j] cost (3 regs, 6 adds, 2
// updates), (4, 2, 2) and (5, 1, 3).
func TestTable6_5(t *testing.T) {
	rows, err := Table65()
	if err != nil {
		t.Fatal(err)
	}
	want := []Table65Row{
		{Registers: 3, Arithmetic: 6, Updates: 2},
		{Registers: 4, Arithmetic: 2, Updates: 2},
		{Registers: 5, Arithmetic: 1, Updates: 3},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		w := want[i]
		if r.Registers != w.Registers || r.Arithmetic != w.Arithmetic || r.Updates != w.Updates {
			t.Errorf("row %d (%s): (regs=%d, arith=%d, upd=%d), want (%d, %d, %d)",
				i, r.Allocation, r.Registers, r.Arithmetic, r.Updates,
				w.Registers, w.Arithmetic, w.Updates)
		}
	}
}

// TestMinOperands exercises the operand decomposition directly.
func TestMinOperands(t *testing.T) {
	iN := Register{"i*N", SymVec{DimIN: 1}}
	j := Register{"j", SymVec{DimJ: 1}}
	// base_a + iN + j + 1 from {iN, j}: 2 registers + 2 atoms = 4
	// operands.
	target := SymVec{DimBaseA: 1, DimIN: 1, DimJ: 1, DimOne: 1}
	ops, err := minOperands(target, []Register{iN, j})
	if err != nil {
		t.Fatal(err)
	}
	if ops != 4 {
		t.Errorf("operands = %d, want 4", ops)
	}
	// A loop-variant residue is not formable.
	if _, err := minOperands(SymVec{DimJN: 1}, []Register{iN}); err == nil {
		t.Error("expected failure for uncovered loop-variant residue")
	}
	// An address that is exactly one register needs one operand
	// (zero additions).
	full := Register{"a[i,j]", target}
	ops, err = minOperands(target, []Register{full})
	if err != nil {
		t.Fatal(err)
	}
	if ops != 1 {
		t.Errorf("operands = %d, want 1", ops)
	}
}

// TestEnumerateAllocations checks that the systematic search finds an
// allocation at least as good as every paper row.
func TestEnumerateAllocations(t *testing.T) {
	addrA := SymVec{DimBaseA: 1, DimIN: 1, DimJ: 1, DimOne: 1}
	addrB := SymVec{DimBaseB: 1, DimIN: 1, DimJN: 1, DimJ: 1}
	pool := []Register{
		{"i*N", SymVec{DimIN: 1}},
		{"j*N", SymVec{DimJN: 1}},
		{"j", SymVec{DimJ: 1}},
		{"j+1", SymVec{DimJ: 1, DimOne: 1}},
		{"j*N+j", SymVec{DimJN: 1, DimJ: 1}},
		{"a[i]", SymVec{DimBaseA: 1, DimIN: 1}},
		{"b[i]", SymVec{DimBaseB: 1, DimIN: 1}},
		{"a[i,j]+1", addrA},
		{"b[i+j]", SymVec{DimBaseB: 1, DimIN: 1, DimJN: 1}},
	}
	frontier := EnumerateAllocations([]SymVec{addrA, addrB}, pool, 6)
	if len(frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	paperRows, err := Table65()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paperRows {
		covered := false
		for _, f := range frontier {
			if f.Registers <= p.Registers && f.Arithmetic <= p.Arithmetic && f.Updates <= p.Updates {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("no enumerated allocation matches or beats paper row (%d, %d, %d)",
				p.Registers, p.Arithmetic, p.Updates)
		}
	}
}

package iugen

import (
	"testing"

	"warp/internal/cellgen"
	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/opt"
	"warp/internal/w2"
)

func genIU(t *testing.T, src string, pipeline bool) (*cellgen.Result, *Result) {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(p)
	cg, err := cellgen.Generate(p, cellgen.Options{Pipeline: pipeline})
	if err != nil {
		t.Fatal(err)
	}
	iu, err := Generate(cg.Cell)
	if err != nil {
		t.Fatal(err)
	}
	return cg, iu
}

const memSrc = `
module t (xs in, ys out)
float xs[12];
float ys[12];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v;
        float buf[16];
        int i, j;
        for i := 0 to 11 do begin
            receive (L, X, v, xs[i]);
            v := (v * 2.0 + 1.0) * (v - 3.0);
            buf[i] := v;
        end;
        for j := 0 to 11 do begin
            v := buf[j];
            v := v * v + v;
            send (R, X, v, ys[j]);
        end;
    end
    call f;
end
`

// TestIUInduction: simple induction addresses use registers, not the
// table.
func TestIUInduction(t *testing.T) {
	_, iu := genIU(t, memSrc, false)
	if iu.AddrRegs == 0 {
		t.Error("no induction registers allocated")
	}
	if iu.Spilled != 0 || iu.TableEntries != 0 {
		t.Errorf("simple inductions spilled to the table: %d exprs, %d entries",
			iu.Spilled, iu.TableEntries)
	}
	if err := mcode.ValidateIU(iu.IU); err != nil {
		t.Error(err)
	}
}

// TestIUMirrorsCellLength: the IU program runs in lock step with the
// cells, offset only by its prologue.
func TestIUMirrorsCellLength(t *testing.T) {
	cg, iu := genIU(t, memSrc, false)
	if got, want := iu.IU.Cycles(), cg.Cell.Cycles()+iu.Prologue; got != want {
		t.Errorf("IU %d cycles, want %d", got, want)
	}
}

// TestIUSignalCounts: the IU emits exactly one control signal per loop
// boundary the cells cross, and in-loop signals carry the dynamic
// counter test of §6.3.1.
func TestIUSignalCounts(t *testing.T) {
	cg, iu := genIU(t, memSrc, false)
	cc := mcode.CountCell(cg.Cell)
	ic := mcode.CountIU(iu.IU)
	if cc.Signals != ic.Signals {
		t.Errorf("signals: cells %d, IU %d", cc.Signals, ic.Signals)
	}
	dynamic := 0
	var walkIU func(items []mcode.IUItem, inLoop bool)
	walkIU = func(items []mcode.IUItem, inLoop bool) {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.IUStraight:
				for _, in := range it.Instrs {
					if in.Sig == nil {
						continue
					}
					if !inLoop && !in.Sig.Static {
						t.Error("dynamic signal outside any IU loop")
					}
					if !in.Sig.Static {
						dynamic++
					}
				}
			case *mcode.IULoop:
				walkIU(it.Body, true)
			}
		}
	}
	walkIU(iu.IU.Items, false)
	if dynamic == 0 {
		t.Error("no dynamic loop signals generated")
	}
}

// TestIUCounterWorkReserved: every IU loop body reserves the three
// counter cycles of §6.3.1.
func TestIUCounterWorkReserved(t *testing.T) {
	_, iu := genIU(t, memSrc, false)
	var check func(items []mcode.IUItem) bool
	found := false
	check = func(items []mcode.IUItem) bool {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.IULoop:
				found = true
				ctr := 0
				for _, b := range it.Body {
					if s, ok := b.(*mcode.IUStraight); ok {
						for _, in := range s.Instrs {
							if in.CtrWork {
								ctr++
							}
						}
					}
				}
				if ctr != mcode.LoopOverheadCycles {
					t.Errorf("loop L%d reserves %d counter cycles, want %d",
						it.ID, ctr, mcode.LoopOverheadCycles)
				}
				check(it.Body)
			}
		}
		return true
	}
	check(iu.IU.Items)
	if !found {
		t.Fatal("no IU loop generated")
	}
}

// TestIUTinyLoopUnrolled: a 2-cycle loop body forces the m=2 unroll of
// §6.3.1 (the IU needs 3 cycles per iteration of counter work).
func TestIUTinyLoopUnrolled(t *testing.T) {
	src := `
module t (xs in, ys out)
float xs[9];
float ys[9];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 8 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v, ys[i]);
        end;
    end
    call f;
end
`
	cg, iu := genIU(t, src, false)
	cc := mcode.CountCell(cg.Cell)
	ic := mcode.CountIU(iu.IU)
	if cc.Signals != ic.Signals {
		t.Errorf("signals: cells %d, IU %d", cc.Signals, ic.Signals)
	}
	// The IU loop body must span at least 3 cycles even though the
	// cell body is 2.
	var ok bool
	for _, it := range iu.IU.Items {
		if l, okl := it.(*mcode.IULoop); okl {
			var body int64
			for _, b := range l.Body {
				if s, oks := b.(*mcode.IUStraight); oks {
					body += int64(len(s.Instrs))
				}
			}
			if body >= mcode.LoopOverheadCycles {
				ok = true
			}
		}
	}
	if !ok {
		t.Error("tiny loop not unrolled to cover the counter work")
	}
}

// TestIUTableSpillOnPressure: more distinct loop-variant address
// expressions than registers forces table spills.
func TestIUTableSpillOnPressure(t *testing.T) {
	src := `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v, acc;
        float buf[200];
        int i;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            buf[i] := v;
            buf[5*i+4] := v;
            buf[7*i+20] := v;
            buf[9*i+40] := v;
            buf[11*i+60] := v;
            buf[13*i+80] := v;
            acc := buf[i] + buf[5*i+4] + buf[7*i+20];
            acc := acc + buf[9*i+40] + buf[11*i+60] + buf[13*i+80];
            acc := acc + buf[2*i+1] + buf[3*i+2] + buf[4*i+3];
            acc := acc + buf[6*i+5] + buf[8*i+25] + buf[10*i+45];
            acc := acc + buf[12*i+65] + buf[14*i+85] + buf[15*i+90];
            acc := acc + buf[16*i+33] + buf[17*i+37] + buf[18*i+41];
            send (R, X, acc, ys[i]);
        end;
    end
    call f;
end
`
	_, iu := genIU(t, src, false)
	if iu.AddrRegs > mcode.IUNumRegs {
		t.Errorf("%d address registers exceed the file of %d", iu.AddrRegs, mcode.IUNumRegs)
	}
	if iu.Spilled == 0 {
		t.Error("register pressure did not spill to the table")
	}
	if iu.TableEntries == 0 {
		t.Error("spilled expressions produced no table entries")
	}
	ic := mcode.CountIU(iu.IU)
	if ic.TableOuts != int64(iu.TableEntries) {
		t.Errorf("table reads %d vs entries %d", ic.TableOuts, iu.TableEntries)
	}
}

package iugen

import (
	"fmt"
	"sort"
	"strings"
)

// This file reproduces the operand-selection analysis of §6.3.2
// (Table 6-5): given the address expressions of a basic block inside a
// loop nest over N×N arrays with a *symbolic* N, which subexpressions
// should be bound to IU registers?  Each choice trades registers
// against the arithmetic needed to form the addresses and against the
// register updates required per inner-loop iteration.
//
// Values are vectors over the symbolic basis {1, N, i, i·N, j, j·N,
// base_a, base_b}: with N unknown at compile time, +1 and +base_a are
// separate additions, which is exactly how the paper counts the first
// allocation's six operations.

// Basis dimensions of a symbolic address value.
const (
	DimOne = iota // integer constant
	DimN
	DimI
	DimIN
	DimJ
	DimJN
	DimBaseA
	DimBaseB
	numDims
)

// SymVec is a symbolic value: integer coordinates over the basis.
type SymVec [numDims]int

// Add returns v+w.
func (v SymVec) Add(w SymVec) SymVec {
	for d := range w {
		v[d] += w[d]
	}
	return v
}

// Sub returns v−w.
func (v SymVec) Sub(w SymVec) SymVec {
	for d := range w {
		v[d] -= w[d]
	}
	return v
}

// IsZero reports whether all coordinates vanish.
func (v SymVec) IsZero() bool {
	for _, c := range v {
		if c != 0 {
			return false
		}
	}
	return true
}

// InnerVariant reports whether the value changes with the inner loop
// index j.
func (v SymVec) InnerVariant() bool { return v[DimJ] != 0 || v[DimJN] != 0 }

// OuterVariant reports whether the value changes with the outer loop
// index i.
func (v SymVec) OuterVariant() bool { return v[DimI] != 0 || v[DimIN] != 0 }

// immediate reports whether the value can be a single immediate
// operand: a pure integer constant, a pure multiple of N, or a single
// array base (the link-time symbols the microassembler can encode).
func (v SymVec) immediate() bool {
	nonzero := 0
	for d, c := range v {
		if c == 0 {
			continue
		}
		if d == DimI || d == DimIN || d == DimJ || d == DimJN {
			return false // loop-variant: never an immediate
		}
		nonzero++
	}
	return nonzero == 1
}

// decomposeAtoms splits a loop-invariant residue into the immediates
// needed to add it in: one per nonzero symbolic atom.  ok=false if the
// residue is loop variant.
func (v SymVec) decomposeAtoms() (count int, ok bool) {
	if v[DimI] != 0 || v[DimIN] != 0 || v[DimJ] != 0 || v[DimJN] != 0 {
		return 0, false
	}
	for _, c := range v {
		if c != 0 {
			count++
		}
	}
	return count, true
}

// Register is one candidate register-resident value.
type Register struct {
	Label string
	Val   SymVec
}

// Allocation is one operand-selection choice: a set of register-bound
// subexpressions.
type Allocation struct {
	Label string
	Regs  []Register
}

// Cost evaluates an allocation against the address expressions to
// generate: the total number of additions needed to form all addresses
// each iteration, and the number of register updates in the inner loop
// (index j).  Registers that vary only with the outer index are updated
// outside the inner loop and do not count (§6.3.2, Table 6-5).
func (a Allocation) Cost(targets []SymVec) (arith, updates int, err error) {
	for _, t := range targets {
		ops, e := minOperands(t, a.Regs)
		if e != nil {
			return 0, 0, fmt.Errorf("allocation %q cannot form %v: %w", a.Label, t, e)
		}
		arith += ops - 1
	}
	for _, r := range a.Regs {
		if r.Val.InnerVariant() {
			updates++
		}
	}
	return arith, updates, nil
}

// minOperands finds the smallest number of operands (registers plus
// immediates) summing to the target, searching register subsets (each
// register used at most once).
func minOperands(target SymVec, regs []Register) (int, error) {
	best := -1
	n := len(regs)
	for mask := 0; mask < 1<<n; mask++ {
		sum := SymVec{}
		used := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				sum = sum.Add(regs[b].Val)
				used++
			}
		}
		res := target.Sub(sum)
		atoms, ok := res.decomposeAtoms()
		if !ok {
			continue
		}
		total := used + atoms
		if total == 0 {
			continue // an address needs at least one operand
		}
		if best < 0 || total < best {
			best = total
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("loop-variant residue not covered by any register")
	}
	return best, nil
}

// Table65Row is one row of the reproduced Table 6-5.
type Table65Row struct {
	Allocation string
	Registers  int
	Arithmetic int
	Updates    int
}

// Table65 reproduces the paper's Table 6-5: operand allocations for
// generating the addresses of a[i,j+1] and b[i+j,j] inside a nested
// (i, j) loop over N×N arrays.
func Table65() ([]Table65Row, error) {
	// a[i,j+1] = base_a + i·N + j + 1
	addrA := SymVec{DimBaseA: 1, DimIN: 1, DimJ: 1, DimOne: 1}
	// b[i+j,j] = base_b + (i+j)·N + j
	addrB := SymVec{DimBaseB: 1, DimIN: 1, DimJN: 1, DimJ: 1}
	targets := []SymVec{addrA, addrB}

	allocs := []Allocation{
		{
			Label: "i*N, j*N, j",
			Regs: []Register{
				{"i*N", SymVec{DimIN: 1}},
				{"j*N", SymVec{DimJN: 1}},
				{"j", SymVec{DimJ: 1}},
			},
		},
		{
			// The biased forms make one addition per address: "j" holds
			// j+1 and "j*N" holds j·N+j (the paper labels them loosely).
			Label: "a[i], b[i], j, j*N",
			Regs: []Register{
				{"a[i]", SymVec{DimBaseA: 1, DimIN: 1}},
				{"b[i]", SymVec{DimBaseB: 1, DimIN: 1}},
				{"j (biased j+1)", SymVec{DimJ: 1, DimOne: 1}},
				{"j*N (biased j*N+j)", SymVec{DimJN: 1, DimJ: 1}},
			},
		},
		{
			Label: "a[i], b[i], a[i,j], b[i+j], j",
			Regs: []Register{
				{"a[i]", SymVec{DimBaseA: 1, DimIN: 1}},
				{"b[i]", SymVec{DimBaseB: 1, DimIN: 1}},
				{"a[i,j] (biased +1)", SymVec{DimBaseA: 1, DimIN: 1, DimJ: 1, DimOne: 1}},
				{"b[i+j]", SymVec{DimBaseB: 1, DimIN: 1, DimJN: 1}},
				{"j", SymVec{DimJ: 1}},
			},
		},
	}

	var rows []Table65Row
	for _, al := range allocs {
		arith, updates, err := al.Cost(targets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table65Row{
			Allocation: al.Label,
			Registers:  len(al.Regs),
			Arithmetic: arith,
			Updates:    updates,
		})
	}
	return rows, nil
}

// FormatTable65 renders the rows like the paper's table.
func FormatTable65(rows []Table65Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %9s %10s %7s\n", "Allocated to registers", "Registers", "Arithmetic", "Updates")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-32s %9d %10d %7d\n", r.Allocation, r.Registers, r.Arithmetic, r.Updates)
	}
	return sb.String()
}

// EnumerateAllocations searches the allocation space systematically:
// every subset of a candidate pool, reporting the Pareto frontier over
// (registers, arithmetic, updates).  This extends the paper's
// observation that "the options in Table 6-5 are not complete".
func EnumerateAllocations(targets []SymVec, pool []Register, maxRegs int) []Table65Row {
	var rows []Table65Row
	n := len(pool)
	for mask := 1; mask < 1<<n; mask++ {
		var regs []Register
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				regs = append(regs, pool[b])
			}
		}
		if len(regs) > maxRegs {
			continue
		}
		al := Allocation{Regs: regs}
		arith, updates, err := al.Cost(targets)
		if err != nil {
			continue
		}
		var labels []string
		for _, r := range regs {
			labels = append(labels, r.Label)
		}
		rows = append(rows, Table65Row{
			Allocation: strings.Join(labels, ", "),
			Registers:  len(regs),
			Arithmetic: arith,
			Updates:    updates,
		})
	}
	// Pareto filter: drop rows dominated on all three axes.
	var frontier []Table65Row
	for i, r := range rows {
		dominated := false
		for j, q := range rows {
			if i == j {
				continue
			}
			if q.Registers <= r.Registers && q.Arithmetic <= r.Arithmetic && q.Updates <= r.Updates &&
				(q.Registers < r.Registers || q.Arithmetic < r.Arithmetic || q.Updates < r.Updates) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, r)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].Registers != frontier[j].Registers {
			return frontier[i].Registers < frontier[j].Registers
		}
		return frontier[i].Arithmetic < frontier[j].Arithmetic
	})
	return frontier
}

package workloads

import (
	"testing"

	"warp/internal/interp"
	"warp/internal/w2"
)

// TestMatmulRectOracle checks the rectangular generator against the
// plain-Go reference under the interpreter — the oracle path the
// fabric's partitioned runs are judged against.
func TestMatmulRectOracle(t *testing.T) {
	const m, k, n = 7, 5, 3
	mod, err := w2.Parse(MatmulRect(m, k, n))
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	a, b := LargeMatmulData(m, k, n, 11)
	got, err := interp.Run(info, map[string][]float64{"a": a, "bmat": b})
	if err != nil {
		t.Fatal(err)
	}
	want := MatmulRectRef(a, b, m, k, n)
	for i := range want {
		if got["c"][i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, got["c"][i], want[i])
		}
	}
}

// TestMatmulRectMatchesSquare pins MatmulRect(n,n,n) to the original
// square generator's semantics.
func TestMatmulRectMatchesSquare(t *testing.T) {
	const n = 4
	a, b := LargeMatmulData(n, n, n, 3)
	in := map[string][]float64{"a": a, "bmat": b}
	run := func(src string) map[string][]float64 {
		mod, err := w2.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := w2.Analyze(mod)
		if err != nil {
			t.Fatal(err)
		}
		out, err := interp.Run(info, in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	sq, rect := run(Matmul(n)), run(MatmulRect(n, n, n))
	for i := range sq["c"] {
		if sq["c"][i] != rect["c"][i] {
			t.Fatalf("c[%d]: square %v != rect %v", i, sq["c"][i], rect["c"][i])
		}
	}
}

// TestLargeDataDeterministicAndExact pins the seeded generators:
// identical across calls with the same seed, different across seeds,
// and drawn from the quarter-integer alphabet the exactness argument
// needs.
func TestLargeDataDeterministicAndExact(t *testing.T) {
	a1, b1 := LargeMatmulData(6, 4, 5, 42)
	a2, b2 := LargeMatmulData(6, 4, 5, 42)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("a[%d] differs across identical seeds", i)
		}
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("b[%d] differs across identical seeds", i)
		}
	}
	a3, _ := LargeMatmulData(6, 4, 5, 43)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 generated identical data")
	}
	x, w := LargeConv1DData(100, 9, 7)
	for _, vals := range [][]float64{a1, b1, x, w} {
		for i, v := range vals {
			q := v * 4
			if q != float64(int(q)) || v < -2 || v > 2 {
				t.Fatalf("entry %d = %v is not a quarter-integer in [-2,2]", i, v)
			}
		}
	}
}

package workloads

// Symbolic (size-parameterized) forms of the sample programs, written
// in the ${expr} placeholder syntax of internal/symbolic.  Each is the
// exact text its concrete generator produces, with the size positions
// left symbolic: substituting the bound vector reproduces the concrete
// generator's output byte for byte (pinned by a test), so a template
// compiled from the symbolic form and a cold compile of the generated
// form are directly comparable.

// MatmulSym is Matmul with the size n left symbolic.
func MatmulSym() string {
	return `/* ${n}x${n} matrix multiplication on ${n} cells: C = A x B.
   Cell k stores B row k in local memory; C[i][j] accumulates along
   the array. */
module matmul (a in, bmat in, c out)
float a[${n}][${n}], bmat[${n}][${n}];
float c[${n}][${n}];
cellprogram (cid : 0 : ${n-1})
begin
    function matmul
    begin
        float brow[${n}];
        float bv, av, temp, yin, ans;
        int i, j, k;
        /* Distribution: keep the first row of B that arrives, pass the
           rest, and send dummies to conserve the stream. */
        for j := 0 to ${n-1} do begin
            receive (L, X, bv, bmat[0][j]);
            brow[j] := bv;
        end;
        for k := 1 to ${n-1} do
            for j := 0 to ${n-1} do begin
                receive (L, X, temp, bmat[k][j]);
                send (R, X, temp);
            end;
        for j := 0 to ${n-1} do
            send (R, X, 0.0);
        /* Compute: for each row i of A, keep own element, then
           accumulate over the columns. */
        for i := 0 to ${n-1} do begin
            receive (L, X, av, a[i][0]);
            for k := 1 to ${n-1} do begin
                receive (L, X, temp, a[i][k]);
                send (R, X, temp);
            end;
            send (R, X, 0.0);
            for j := 0 to ${n-1} do begin
                receive (L, Y, yin, 0.0);
                ans := yin + av*brow[j];
                send (R, Y, ans, c[i][j]);
            end;
        end;
    end
    call matmul;
end
`
}

// PolynomialSym is Polynomial with ncoef and npoints left symbolic.
func PolynomialSym() string {
	return `/* Polynomial evaluation (Figure 4-1): Horner's rule, one
   coefficient per cell. */
module polynomial (z in, c in, results out)
float z[${npoints}], c[${ncoef}];
float results[${npoints}];
cellprogram (cid : 0 : ${ncoef-1})
begin
    function poly
    begin
        float coeff, temp, xin, yin, ans;
        int i;
        receive (L, X, coeff, c[0]);
        for i := 1 to ${ncoef-1} do begin
            receive (L, X, temp, c[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        for i := 0 to ${npoints-1} do begin
            receive (L, X, xin, z[i]);
            receive (L, Y, yin, 0.0);
            send (R, X, xin);
            ans := coeff + yin*xin;
            send (R, Y, ans, results[i]);
        end;
    end
    call poly;
end
`
}

// Conv1DSym is Conv1D with the kernel size k and point count n left
// symbolic.
func Conv1DSym() string {
	return `/* 1-dimensional convolution, kernel ${k}, one kernel element per
   cell.  Partial sums flow on Y; the data stream flows on X with a
   one-element delay per cell. */
module conv1d (x in, w in, results out)
float x[${n}], w[${k}];
float results[${n-1}];
cellprogram (cid : 0 : ${k-1})
begin
    function conv
    begin
        float weight, temp, xold, xnew, yin, ans;
        int i;
        receive (L, X, weight, w[0]);
        for i := 1 to ${k-1} do begin
            receive (L, X, temp, w[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        receive (L, X, xold, x[0]);
        for i := 0 to ${n-2} do begin
            receive (L, X, xnew, x[i+1]);
            receive (L, Y, yin, 0.0);
            send (R, X, xnew);
            ans := yin + weight*xold;
            send (R, Y, ans, results[i]);
            xold := xnew;
        end;
        send (R, X, xold);
    end
    call conv;
end
`
}

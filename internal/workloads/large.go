package workloads

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file holds the oversized-problem side of the package: W2
// generators and seeded data for problems too large for one Warp array
// (more rows than the array has cells, or per-cell working sets past
// the 4K-word cell memory).  They feed internal/fabric — the tiled
// multi-array execution layer — and its benchmarks: the fabric slices
// these problems into array-sized tiles, and the un-partitioned W2
// module generated here is what the internal/interp oracle runs for
// the element-exact cross-check.

// MatmulRect returns C = A×B for an m×k by k×n product on k cells:
// cell j stores row j of B (n words of its local memory) during the
// distribution phase, then partial sums for each of the m rows of A
// accumulate along the array.  The square Matmul(n) is the special
// case m = k = n.
//
// The un-partitioned module needs k cells and n words of cell memory
// per cell, so k beyond the array size or n beyond the 4K-word cell
// memory makes the problem oversized — runnable only under the
// reference interpreter (as the fabric's oracle) or tiled across
// arrays via the fabric.  k must be at least 2 (the systolic
// distribution phase needs a downstream neighbour).
func MatmulRect(m, k, n int) string {
	if m < 1 || k < 2 || n < 1 {
		panic(fmt.Sprintf("workloads.MatmulRect(%d, %d, %d): need m, n >= 1 and k >= 2", m, k, n))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `/* %dx%d by %dx%d matrix multiplication on %d cells: C = A x B.
   Cell j stores B row j in local memory; C[i][j] accumulates along
   the array. */
module matmul (a in, bmat in, c out)
float a[%d][%d], bmat[%d][%d];
float c[%d][%d];
cellprogram (cid : 0 : %d)
begin
    function matmul
    begin
        float brow[%d];
        float bv, av, temp, yin, ans;
        int i, j, k;
        /* Distribution: keep the first row of B that arrives, pass the
           rest, and send dummies to conserve the stream. */
        for j := 0 to %d do begin
            receive (L, X, bv, bmat[0][j]);
            brow[j] := bv;
        end;
        for k := 1 to %d do
            for j := 0 to %d do begin
                receive (L, X, temp, bmat[k][j]);
                send (R, X, temp);
            end;
        for j := 0 to %d do
            send (R, X, 0.0);
        /* Compute: for each row i of A, keep own element, then
           accumulate over the columns. */
        for i := 0 to %d do begin
            receive (L, X, av, a[i][0]);
            for k := 1 to %d do begin
                receive (L, X, temp, a[i][k]);
                send (R, X, temp);
            end;
            send (R, X, 0.0);
            for j := 0 to %d do begin
                receive (L, Y, yin, 0.0);
                ans := yin + av*brow[j];
                send (R, Y, ans, c[i][j]);
            end;
        end;
    end
    call matmul;
end
`, m, k, k, n, k,
		m, k, k, n, m, n, k-1,
		n,
		n-1, k-1, n-1, n-1,
		m-1, k-1, n-1)
	return b.String()
}

// MatmulRectRef computes the reference product (A is m×k, B is k×n,
// both row-major).
func MatmulRectRef(a, b []float64, m, k, n int) []float64 {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

// quarter draws one quarter-integer in [-2, 2] — the exact-arithmetic
// test alphabet shared by every large-problem generator (see
// LargeMatmulData).
func quarter(rng *rand.Rand) float64 {
	return float64(rng.Intn(17)-8) / 4
}

// LargeMatmulData returns seeded deterministic operands for an m×k by
// k×n product: A (m×k) and B (k×n), row-major.
//
// Entries are quarter-integers in [-2, 2], so every product is a
// multiple of 1/16 with magnitude ≤ 4 and every partial sum of up to
// ~2^20 terms stays within ~30 significant bits — far inside float64's
// 53-bit mantissa.  No operation in the whole computation rounds,
// which makes the result independent of summation order: a tiled run
// that reassociates the k-dimension reduction is bit-identical to the
// sequential oracle.  The fabric's element-exact acceptance tests rely
// on this.
func LargeMatmulData(m, k, n int, seed int64) (a, b []float64) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]float64, m*k)
	b = make([]float64, k*n)
	for i := range a {
		a[i] = quarter(rng)
	}
	for i := range b {
		b[i] = quarter(rng)
	}
	return a, b
}

// LargeConv1DData returns a seeded deterministic signal of n points
// and a kernel of k weights, from the same exact-arithmetic alphabet
// as LargeMatmulData.
func LargeConv1DData(n, k int, seed int64) (x, w []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	w = make([]float64, k)
	for i := range x {
		x[i] = quarter(rng)
	}
	for i := range w {
		w[i] = quarter(rng)
	}
	return x, w
}

package workloads

import (
	"fmt"
	"math"
	"strings"
)

// FFT returns a W2 program computing an n-point complex FFT
// (decimation in time) on one cell — the computation behind the
// paper's §2 headline, "a 10-cell Warp can process 1024-point complex
// fast Fourier transforms at a rate of one FFT every 600 microseconds".
// n must be a power of two.
//
// W2 has no data-dependent control flow, so the program is generated
// with the structure fully static:
//
//   - the input permutation (bit reversal) is expressed as a
//     log2(n)-deep nest of binary loops: the external host index and
//     the cell-memory store address are both affine in the bit
//     variables, with coefficients 2^j and 2^(log2(n)-1-j) — no
//     bit-twiddling is ever computed at run time;
//   - each butterfly stage is its own loop nest with compile-time
//     constants for the group stride and twiddle step, so every memory
//     address stays affine;
//   - the twiddle table (n/2 complex factors) streams in from the host
//     like the polynomial's coefficients and lives in cell memory.
//
// Layout: re/im interleaved; the cell needs n (twiddles) + 2n (data)
// words of its 4K memory, so n ≤ 1024 fits exactly.
func FFT(n int) string {
	if n < 2 || n&(n-1) != 0 {
		panic("workloads.FFT: n must be a power of two >= 2")
	}
	logn := 0
	for 1<<logn < n {
		logn++
	}

	var b strings.Builder
	fmt.Fprintf(&b, `/* %d-point complex FFT on one cell (decimation in time).
   Twiddles stream into cell memory; the input permutation is a
   %d-deep binary loop nest with affine addressing. */
module fft (twid in, x in, y out)
float twid[%d];
float x[%d];
float y[%d];
cellprogram (cid : 0 : 0)
begin
    function fft
    begin
        float v, ar, ai, br, bi, wr, wi, tr, ti;
        float w[%d];
        float d[%d];
`, n, logn, n, 2*n, 2*n, n, 2*n)

	// Bit variables b0..b{logn-1} plus re/im selector c and helpers.
	var ints []string
	for j := 0; j < logn; j++ {
		ints = append(ints, fmt.Sprintf("b%d", j))
	}
	ints = append(ints, "c", "t", "g", "j", "i")
	fmt.Fprintf(&b, "        int %s;\n", strings.Join(ints, ", "))

	// Twiddle table: n/2 complex factors, streamed in order.
	fmt.Fprintf(&b, "        for t := 0 to %d do begin\n", n-1)
	fmt.Fprintf(&b, "            receive (L, X, v, twid[t]);\n")
	fmt.Fprintf(&b, "            w[t] := v;\n")
	fmt.Fprintf(&b, "        end;\n")

	// Input in bit-reversed order: the host external walks x linearly
	// in bit-reversed sequence while the store address is linear — so
	// d[] holds the permuted vector and the butterfly stages can run
	// in natural DIT order.
	var host, mem []string
	for j := 0; j < logn; j++ {
		host = append(host, fmt.Sprintf("%d*b%d", 1<<j, j))
		mem = append(mem, fmt.Sprintf("%d*b%d", 1<<(logn-1-j), j))
	}
	indent := "        "
	for j := 0; j < logn; j++ {
		fmt.Fprintf(&b, "%sfor b%d := 0 to 1 do\n", indent, j)
		indent += "    "
	}
	fmt.Fprintf(&b, "%sfor c := 0 to 1 do begin\n", indent)
	fmt.Fprintf(&b, "%s    receive (L, X, v, x[2*(%s) + c]);\n", indent, strings.Join(mem, " + "))
	fmt.Fprintf(&b, "%s    d[2*(%s) + c] := v;\n", indent, strings.Join(host, " + "))
	fmt.Fprintf(&b, "%send;\n", indent)

	// Butterfly stages: stage k has D = 2^k, n/(2D) groups, twiddle
	// step n/(2D).
	for k := 0; k < logn; k++ {
		d := 1 << k
		groups := n / (2 * d)
		step := n / (2 * d)
		fmt.Fprintf(&b, `
        /* stage %d: butterflies (g*%d + j, g*%d + j + %d), twiddle w[%d*j] */
        for g := 0 to %d do
            for j := 0 to %d do begin
                ar := d[%d*g + 2*j];
                ai := d[%d*g + 2*j + 1];
                br := d[%d*g + 2*j + %d];
                bi := d[%d*g + 2*j + %d];
                wr := w[%d*j];
                wi := w[%d*j + 1];
                tr := wr*br - wi*bi;
                ti := wr*bi + wi*br;
                d[%d*g + 2*j] := ar + tr;
                d[%d*g + 2*j + 1] := ai + ti;
                d[%d*g + 2*j + %d] := ar - tr;
                d[%d*g + 2*j + %d] := ai - ti;
            end;
`, k, 2*d, 2*d, d, 2*step,
			groups-1, d-1,
			4*d, 4*d, 4*d, 2*d, 4*d, 2*d+1,
			2*step, 2*step,
			4*d, 4*d, 4*d, 2*d, 4*d, 2*d+1)
	}

	// Output in natural order.
	fmt.Fprintf(&b, `
        for i := 0 to %d do
            send (R, X, d[i], y[i]);
    end
    call fft;
end
`, 2*n-1)
	return b.String()
}

// FFTPaper is the paper's configuration: 1024 points.
func FFTPaper() string { return FFT(1024) }

// FFTTwiddles returns the interleaved twiddle table for FFT(n):
// w[2t], w[2t+1] = cos, -sin of 2πt/n for t < n/2 — n words total.
func FFTTwiddles(n int) []float64 {
	out := make([]float64, n)
	for t := 0; t < n/2; t++ {
		ang := 2 * math.Pi * float64(t) / float64(n)
		out[2*t] = math.Cos(ang)
		out[2*t+1] = -math.Sin(ang)
	}
	return out
}

// FFTRef computes the reference DFT directly (O(n²), exact enough for
// validation): X[k] = Σ_t x[t]·e^{-2πi·kt/n}, interleaved re/im.
func FFTRef(x []float64) []float64 {
	n := len(x) / 2
	out := make([]float64, 2*n)
	for k := 0; k < n; k++ {
		var re, im float64
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			re += x[2*t]*c - x[2*t+1]*s
			im += x[2*t]*s + x[2*t+1]*c
		}
		out[2*k] = re
		out[2*k+1] = im
	}
	return out
}

// Package workloads generates the W2 sources of the paper's sample
// programs (Table 7-1) with parametric sizes, plus reference
// computations for validating simulated results.
//
// The paper's configurations are reproduced by the *Paper constructors:
// 1d-convolution with a kernel of 9 (one kernel element per cell),
// a binary image operator on 512×512, color separation on 512×512,
// Mandelbrot on a 32×32 image with 4 iterations on one cell, and
// polynomial evaluation with one coefficient per cell on ten cells.
package workloads

import (
	"fmt"
	"strings"
)

// Polynomial returns the Figure 4-1 program: ncoef coefficients
// (one per cell) evaluated over npoints data points.
func Polynomial(ncoef, npoints int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `/* Polynomial evaluation (Figure 4-1): Horner's rule, one
   coefficient per cell. */
module polynomial (z in, c in, results out)
float z[%d], c[%d];
float results[%d];
cellprogram (cid : 0 : %d)
begin
    function poly
    begin
        float coeff, temp, xin, yin, ans;
        int i;
        receive (L, X, coeff, c[0]);
        for i := 1 to %d do begin
            receive (L, X, temp, c[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        for i := 0 to %d do begin
            receive (L, X, xin, z[i]);
            receive (L, Y, yin, 0.0);
            send (R, X, xin);
            ans := coeff + yin*xin;
            send (R, Y, ans, results[i]);
        end;
    end
    call poly;
end
`, npoints, ncoef, npoints, ncoef-1, ncoef-1, npoints-1)
	return b.String()
}

// PolynomialPaper is the paper's configuration: 10 coefficients,
// 100 points, 10 cells.
func PolynomialPaper() string { return Polynomial(10, 100) }

// PolynomialRef computes the ground truth with Horner's rule.
func PolynomialRef(z, c []float64) []float64 {
	out := make([]float64, len(z))
	for i, x := range z {
		v := 0.0
		for _, cv := range c {
			v = v*x + cv
		}
		out[i] = v
	}
	return out
}

// Conv1D returns a 1-dimensional convolution with a kernel of size k
// (one kernel element per cell) over n input points, producing n−k+1
// valid outputs followed by k−1 boundary values.
func Conv1D(k, n int) string {
	// The cell program computes n−1 outputs; the first n−k+1 are the
	// valid convolution values and the tail mixes in flushed boundary
	// words, matching what the array physically emits.
	nout := n - 1
	var b strings.Builder
	fmt.Fprintf(&b, `/* 1-dimensional convolution, kernel %d, one kernel element per
   cell.  Partial sums flow on Y; the data stream flows on X with a
   one-element delay per cell. */
module conv1d (x in, w in, results out)
float x[%d], w[%d];
float results[%d];
cellprogram (cid : 0 : %d)
begin
    function conv
    begin
        float weight, temp, xold, xnew, yin, ans;
        int i;
        receive (L, X, weight, w[0]);
        for i := 1 to %d do begin
            receive (L, X, temp, w[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        receive (L, X, xold, x[0]);
        for i := 0 to %d do begin
            receive (L, X, xnew, x[i+1]);
            receive (L, Y, yin, 0.0);
            send (R, X, xnew);
            ans := yin + weight*xold;
            send (R, Y, ans, results[i]);
            xold := xnew;
        end;
        send (R, X, xold);
    end
    call conv;
end
`, k, n, k, nout, k-1, k-1, nout-1)
	return b.String()
}

// Conv1DPaper is the paper's configuration: kernel 9 on 9 cells; we
// stream 512 points.
func Conv1DPaper() string { return Conv1D(9, 512) }

// Conv1DRef computes the valid prefix of the convolution: out[i] =
// Σ_k w[k]·x[i+k] for i in [0, n−k].  Entries past that are boundary
// values the caller should ignore.
func Conv1DRef(x, w []float64) []float64 {
	n, k := len(x), len(w)
	out := make([]float64, n-k+1)
	for i := range out {
		var s float64
		for j, wv := range w {
			s += wv * x[i+j]
		}
		out[i] = s
	}
	return out
}

// Binop returns an elementwise binary image operator ((a+b)/2) over a
// w×h image on a single cell (parallel-mode partitioning across cells
// is the host's job, §2.2).
func Binop(w, h int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `/* Binary operator on a %dx%d image. */
module binop (a in, b in, res out)
float a[%d][%d], b[%d][%d];
float res[%d][%d];
cellprogram (cid : 0 : 0)
begin
    function binop
    begin
        float av, bv, r;
        int i, j;
        for i := 0 to %d do
            for j := 0 to %d do begin
                receive (L, X, av, a[i][j]);
                receive (L, Y, bv, b[i][j]);
                r := (av + bv) * 0.5;
                send (R, X, r, res[i][j]);
            end;
    end
    call binop;
end
`, w, h, h, w, h, w, h, w, h-1, w-1)
	return b.String()
}

// BinopPaper is the paper's configuration: a 512×512 image.
func BinopPaper() string { return Binop(512, 512) }

// BinopRef computes the elementwise reference.
func BinopRef(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (a[i] + b[i]) * 0.5
	}
	return out
}

// ColorSeg returns color separation of a w×h RGB image against ncell
// reference colors, one per cell: each pixel is labelled with the id of
// the nearest reference color (squared Euclidean distance).
func ColorSeg(w, h, ncells int) string {
	n := w * h
	var b strings.Builder
	fmt.Fprintf(&b, `/* Color separation in a %dx%d image based on color values:
   each cell holds one reference color (r,g,b,id) and the running
   best distance and class flow on Y. */
module colorseg (refs in, image in, classes out)
float refs[%d];
float image[%d];
float classes[%d];
cellprogram (cid : 0 : %d)
begin
    function colorseg
    begin
        float rr, gg, bb, myid, temp;
        float r, g, b, dr, dg, db, d, bestd, bestid;
        int i;
        receive (L, X, rr, refs[0]);
        receive (L, X, gg, refs[1]);
        receive (L, X, bb, refs[2]);
        receive (L, X, myid, refs[3]);
        for i := 1 to %d do begin
            receive (L, X, temp, refs[4*i]);
            send (R, X, temp);
            receive (L, X, temp, refs[4*i+1]);
            send (R, X, temp);
            receive (L, X, temp, refs[4*i+2]);
            send (R, X, temp);
            receive (L, X, temp, refs[4*i+3]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        send (R, X, 0.0);
        send (R, X, 0.0);
        send (R, X, 0.0);
        for i := 0 to %d do begin
            receive (L, X, r, image[3*i]);
            receive (L, X, g, image[3*i+1]);
            receive (L, X, b, image[3*i+2]);
            receive (L, Y, bestd, 1000000.0);
            receive (L, Y, bestid, 0.0);
            send (R, X, r);
            send (R, X, g);
            send (R, X, b);
            dr := r - rr;
            dg := g - gg;
            db := b - bb;
            d := dr*dr + dg*dg + db*db;
            if d < bestd then begin
                bestid := myid;
                bestd := d;
            end;
            send (R, Y, bestd);
            send (R, Y, bestid, classes[i]);
        end;
    end
    call colorseg;
end
`, w, h, 4*ncells, 3*n, n, ncells-1, ncells-1, n-1)
	return b.String()
}

// ColorSegPaper is the paper's configuration: a 512×512 image on ten
// cells.
func ColorSegPaper() string { return ColorSeg(512, 512, 10) }

// ColorSegRef labels each pixel with the nearest reference color's id.
// refs holds (r,g,b,id) quadruples; image holds (r,g,b) triples.
func ColorSegRef(refs, image []float64) []float64 {
	n := len(image) / 3
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		r, g, b := image[3*i], image[3*i+1], image[3*i+2]
		bestd, bestid := 1000000.0, 0.0
		for c := 0; c+3 < len(refs); c += 4 {
			dr, dg, db := r-refs[c], g-refs[c+1], b-refs[c+2]
			d := dr*dr + dg*dg + db*db
			if d < bestd {
				bestd, bestid = d, refs[c+3]
			}
		}
		out[i] = bestid
	}
	return out
}

// Mandelbrot returns the Mandelbrot program for an n-pixel image with
// iters iterations on one cell.  Escaped points are clamped to keep the
// fixed iteration count numerically tame (W2 forbids dynamic loop
// bounds, §5.1).
func Mandelbrot(n, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `/* Mandelbrot for a %d-point image, %d iterations, one cell. */
module mandelbrot (cxs in, cys in, res out)
float cxs[%d], cys[%d];
float res[%d];
cellprogram (cid : 0 : 0)
begin
    function mandel
    begin
        float cx, cy, zx, zy, zx2, zy2;
        int i, k;
        for i := 0 to %d do begin
            receive (L, X, cx, cxs[i]);
            receive (L, Y, cy, cys[i]);
            zx := 0.0;
            zy := 0.0;
            for k := 1 to %d do begin
                zx2 := zx*zx - zy*zy + cx;
                zy2 := 2.0*zx*zy + cy;
                if zx2*zx2 + zy2*zy2 > 4.0 then begin
                    zx2 := 2.0;
                    zy2 := 0.0;
                end;
                zx := zx2;
                zy := zy2;
            end;
            send (R, X, cx);
            send (R, Y, zx*zx + zy*zy, res[i]);
        end;
    end
    call mandel;
end
`, n, iters, n, n, n, n-1, iters)
	return b.String()
}

// MandelbrotPaper is the paper's configuration: 32×32, 4 iterations.
func MandelbrotPaper() string { return Mandelbrot(32*32, 4) }

// MandelbrotRef computes the clamped-iteration reference.
func MandelbrotRef(cxs, cys []float64, iters int) []float64 {
	out := make([]float64, len(cxs))
	for i := range cxs {
		zx, zy := 0.0, 0.0
		for k := 0; k < iters; k++ {
			zx2 := zx*zx - zy*zy + cxs[i]
			zy2 := 2*zx*zy + cys[i]
			if zx2*zx2+zy2*zy2 > 4 {
				zx2, zy2 = 2, 0
			}
			zx, zy = zx2, zy2
		}
		out[i] = zx*zx + zy*zy
	}
	return out
}

// Matmul returns an n×n matrix product on n cells: cell k stores row k
// of B in its local memory during a distribution phase (exercising the
// IU's address generation), then for each row of A keeps its own
// element and accumulates partial sums flowing on Y.
func Matmul(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `/* %dx%d matrix multiplication on %d cells: C = A x B.
   Cell k stores B row k in local memory; C[i][j] accumulates along
   the array. */
module matmul (a in, bmat in, c out)
float a[%d][%d], bmat[%d][%d];
float c[%d][%d];
cellprogram (cid : 0 : %d)
begin
    function matmul
    begin
        float brow[%d];
        float bv, av, temp, yin, ans;
        int i, j, k;
        /* Distribution: keep the first row of B that arrives, pass the
           rest, and send dummies to conserve the stream. */
        for j := 0 to %d do begin
            receive (L, X, bv, bmat[0][j]);
            brow[j] := bv;
        end;
        for k := 1 to %d do
            for j := 0 to %d do begin
                receive (L, X, temp, bmat[k][j]);
                send (R, X, temp);
            end;
        for j := 0 to %d do
            send (R, X, 0.0);
        /* Compute: for each row i of A, keep own element, then
           accumulate over the columns. */
        for i := 0 to %d do begin
            receive (L, X, av, a[i][0]);
            for k := 1 to %d do begin
                receive (L, X, temp, a[i][k]);
                send (R, X, temp);
            end;
            send (R, X, 0.0);
            for j := 0 to %d do begin
                receive (L, Y, yin, 0.0);
                ans := yin + av*brow[j];
                send (R, Y, ans, c[i][j]);
            end;
        end;
    end
    call matmul;
end
`, n, n, n,
		n, n, n, n, n, n, n-1,
		n,
		n-1, n-1, n-1, n-1,
		n-1, n-1, n-1)
	return b.String()
}

// MatmulRef computes the reference product (row-major n×n).
func MatmulRef(a, b []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

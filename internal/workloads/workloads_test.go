package workloads

import (
	"math"
	"math/rand"
	"testing"

	"warp/internal/w2"
)

// TestGeneratorsParseAcrossSizes: every workload generator yields
// parseable, analyzable W2 over a sweep of sizes.
func TestGeneratorsParseAcrossSizes(t *testing.T) {
	srcs := []struct {
		name string
		src  string
	}{
		{"poly-2x4", Polynomial(2, 4)},
		{"poly-10x100", Polynomial(10, 100)},
		{"poly-16x1000", Polynomial(16, 1000)},
		{"conv-3x16", Conv1D(3, 16)},
		{"conv-9x512", Conv1D(9, 512)},
		{"binop-4x4", Binop(4, 4)},
		{"binop-512x512", Binop(512, 512)},
		{"colorseg-2x2x2", ColorSeg(2, 2, 2)},
		{"colorseg-512x512x10", ColorSeg(512, 512, 10)},
		{"mandel-4x1", Mandelbrot(4, 1)},
		{"mandel-1024x4", Mandelbrot(1024, 4)},
		{"matmul-2", Matmul(2)},
		{"matmul-10", Matmul(10)},
	}
	for _, tc := range srcs {
		t.Run(tc.name, func(t *testing.T) {
			m, err := w2.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := w2.Analyze(m); err != nil {
				t.Fatalf("analyze: %v", err)
			}
		})
	}
}

// TestReferenceFunctions sanity-checks the direct Go references on
// hand-computable inputs.
func TestReferenceFunctions(t *testing.T) {
	// Horner: P(x) = 2x + 3 for coefficients [2,3].
	p := PolynomialRef([]float64{0, 1, 2}, []float64{2, 3})
	for i, x := range []float64{0, 1, 2} {
		if want := 2*x + 3; p[i] != want {
			t.Errorf("poly(%v) = %v, want %v", x, p[i], want)
		}
	}
	// Convolution: moving sum with kernel [1,1].
	c := Conv1DRef([]float64{1, 2, 3, 4}, []float64{1, 1})
	want := []float64{3, 5, 7}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("conv[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	// Binop: (a+b)/2.
	b := BinopRef([]float64{2, 4}, []float64{4, 8})
	if b[0] != 3 || b[1] != 6 {
		t.Errorf("binop = %v", b)
	}
	// ColorSeg: pixel nearest to the second reference.
	refs := []float64{0, 0, 0, 5, 10, 10, 10, 7}
	cls := ColorSegRef(refs, []float64{9, 9, 9})
	if cls[0] != 7 {
		t.Errorf("colorseg class = %v, want 7", cls[0])
	}
	// Mandelbrot: c = 0 stays at 0.
	mb := MandelbrotRef([]float64{0}, []float64{0}, 4)
	if mb[0] != 0 {
		t.Errorf("mandelbrot(0) = %v", mb[0])
	}
	// Matmul 2x2 identity.
	mm := MatmulRef([]float64{1, 0, 0, 1}, []float64{5, 6, 7, 8}, 2)
	for i, want := range []float64{5, 6, 7, 8} {
		if mm[i] != want {
			t.Errorf("matmul[%d] = %v, want %v", i, mm[i], want)
		}
	}
}

// TestRandomProgramShape: random programs parse, analyze, and their
// generated inputs have the declared sizes.
func TestRandomProgramShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 200; k++ {
		src, inputs := RandomProgram(rng)
		m, err := w2.Parse(src)
		if err != nil {
			t.Fatalf("program %d parse: %v\n%s", k, err, src)
		}
		info, err := w2.Analyze(m)
		if err != nil {
			t.Fatalf("program %d analyze: %v\n%s", k, err, src)
		}
		for _, sym := range info.HostSyms {
			if sym.Out {
				continue
			}
			if got := len(inputs[sym.Name]); got != sym.Type.Size() {
				t.Fatalf("program %d: input %s has %d values, declared %d",
					k, sym.Name, got, sym.Type.Size())
			}
			for _, v := range inputs[sym.Name] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("program %d: pathological input value %v", k, v)
				}
			}
		}
	}
}

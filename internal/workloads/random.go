package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// RandomProgram generates a random, valid, unidirectional W2 program
// together with matching random inputs.  Programs draw from the
// constructs the compiler supports — straight-line code, nested
// constant loops, conditionals (predicated), cell-memory arrays, both
// channels, save-first distribution idioms and dummy sends — while
// maintaining the stream-conservation invariant by construction.  The
// driver's property tests compile each program, run it on the
// simulator and compare every output word against the reference
// interpreter.
func RandomProgram(r *rand.Rand) (string, map[string][]float64) {
	g := &pgen{r: r}
	g.cells = 1 + r.Intn(4)
	nseg := 1 + r.Intn(4)
	for i := 0; i < nseg; i++ {
		g.segment()
	}
	// Leftover Y imbalance is repaired with straight-line pairs.
	g.balance()

	var src strings.Builder
	fmt.Fprintf(&src, "module rnd (xs in, qs in, ys out)\n")
	fmt.Fprintf(&src, "float xs[%d], qs[%d];\n", maxi(g.xIn, 1), maxi(g.yIn, 1))
	fmt.Fprintf(&src, "float ys[%d];\n", maxi(g.out, 1))
	fmt.Fprintf(&src, "cellprogram (cid : 0 : %d)\nbegin\n", g.cells-1)
	fmt.Fprintf(&src, "    function f\n    begin\n")
	fmt.Fprintf(&src, "        float v0, v1, v2, v3, t;\n")
	fmt.Fprintf(&src, "        float buf[%d];\n", bufSize)
	fmt.Fprintf(&src, "        int i, j;\n")
	src.WriteString(g.body.String())
	fmt.Fprintf(&src, "    end\n    call f;\nend\n")

	inputs := map[string][]float64{
		"xs": randVals(r, maxi(g.xIn, 1)),
		"qs": randVals(r, maxi(g.yIn, 1)),
	}
	return src.String(), inputs
}

const bufSize = 24

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randVals(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round(r.Float64()*16-8) / 2
	}
	return out
}

// pgen accumulates the generated body and the stream bookkeeping.
type pgen struct {
	r     *rand.Rand
	body  strings.Builder
	cells int
	xIn   int // words consumed from xs (channel X)
	yIn   int // words consumed from qs (channel Y)
	out   int // words bound to ys
	loopN int
	// scalars considered initialized (safe to read meaningfully).
	init [4]bool
}

func (g *pgen) emit(depth int, format string, args ...any) {
	g.body.WriteString(strings.Repeat("    ", depth+2))
	fmt.Fprintf(&g.body, format, args...)
	g.body.WriteString("\n")
}

func (g *pgen) scalar() string { return fmt.Sprintf("v%d", g.r.Intn(4)) }

// expr builds a random float expression over the given variables.
func (g *pgen) expr(depth int, vars []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%.1f", math.Round(g.r.Float64()*8-4))
		default:
			return vars[g.r.Intn(len(vars))]
		}
	}
	l := g.expr(depth-1, vars)
	rhs := g.expr(depth-1, vars)
	op := []string{"+", "-", "*"}[g.r.Intn(3)]
	return fmt.Sprintf("(%s %s %s)", l, op, rhs)
}

// segment appends one conserved program segment.
func (g *pgen) segment() {
	switch g.r.Intn(5) {
	case 0:
		g.straight()
	case 1:
		g.passLoop()
	case 2:
		g.saveFirst()
	case 3:
		g.memoryPhase()
	case 4:
		g.nestedLoop()
	}
}

// vars returns the readable variables: initialized scalars plus t when
// told.
func (g *pgen) vars(extra ...string) []string {
	out := append([]string{}, extra...)
	for i, ok := range g.init {
		if ok {
			out = append(out, fmt.Sprintf("v%d", i))
		}
	}
	if len(out) == 0 {
		out = []string{"1.0"}
	}
	return out
}

// compute emits 0-2 assignments, possibly predicated.
func (g *pgen) compute(depth int, avail []string) {
	for n := g.r.Intn(3); n > 0; n-- {
		target := g.r.Intn(4)
		e := g.expr(2, avail)
		if g.r.Intn(4) == 0 && len(avail) > 0 {
			cond := fmt.Sprintf("%s %s %s", avail[g.r.Intn(len(avail))],
				[]string{"<", "<=", ">", ">=", "=", "<>"}[g.r.Intn(6)], g.expr(1, avail))
			if g.r.Intn(2) == 0 && g.init[target] {
				g.emit(depth, "if %s then v%d := %s; else v%d := %s;", cond, target, e, target, g.expr(2, avail))
			} else {
				g.emit(depth, "if %s then v%d := %s;", cond, target, e)
			}
		} else {
			g.emit(depth, "v%d := %s;", target, e)
		}
		g.init[target] = true
	}
}

// straight emits a few receive/compute/send triples at top level.
func (g *pgen) straight() {
	n := 1 + g.r.Intn(3)
	for k := 0; k < n; k++ {
		g.emit(0, "receive (L, X, t, xs[%d]);", g.xIn)
		g.xIn++
		g.compute(0, g.vars("t"))
		g.emit(0, "send (R, X, %s, ys[%d]);", g.expr(2, g.vars("t")), g.out)
		g.out++
	}
}

// passLoop emits a loop that passes a stream through with computation.
func (g *pgen) passLoop() {
	trips := 2 + g.r.Intn(6)
	ch := "X"
	useY := g.r.Intn(3) == 0
	if useY {
		ch = "Y"
	}
	g.emit(0, "for i := 0 to %d do begin", trips-1)
	if useY {
		g.emit(1, "receive (L, Y, t, qs[%d + i]);", g.yIn)
		g.yIn += trips
	} else {
		g.emit(1, "receive (L, X, t, xs[%d + i]);", g.xIn)
		g.xIn += trips
	}
	g.compute(1, g.vars("t"))
	g.emit(1, "send (R, %s, %s, ys[%d + i]);", ch, g.expr(2, g.vars("t")), g.out)
	g.out += trips
	g.emit(0, "end;")
}

// saveFirst emits the keep-one-pass-the-rest idiom of Figure 4-1.
func (g *pgen) saveFirst() {
	trips := 2 + g.r.Intn(4)
	g.emit(0, "receive (L, X, v0, xs[%d]);", g.xIn)
	g.init[0] = true
	g.emit(0, "for i := 1 to %d do begin", trips-1)
	g.emit(1, "receive (L, X, t, xs[%d + i]);", g.xIn)
	g.emit(1, "send (R, X, t);")
	g.emit(0, "end;")
	g.emit(0, "send (R, X, %s);", g.expr(1, g.vars()))
	g.xIn += trips
}

// memoryPhase stores a stream into cell memory, then reads it back out
// (exercising loads, stores and IU addressing).
func (g *pgen) memoryPhase() {
	trips := 2 + g.r.Intn(6)
	stride := 1 + g.r.Intn(2)
	if trips*stride > bufSize {
		trips = bufSize / stride
	}
	g.emit(0, "for i := 0 to %d do begin", trips-1)
	g.emit(1, "receive (L, X, t, xs[%d + i]);", g.xIn)
	g.emit(1, "buf[%d*i] := %s;", stride, g.expr(1, g.vars("t")))
	g.emit(0, "end;")
	g.xIn += trips
	g.emit(0, "for j := 0 to %d do", trips-1)
	g.emit(1, "send (R, X, buf[%d*j], ys[%d + j]);", stride, g.out)
	g.out += trips
}

// nestedLoop emits a 2-deep loop nest streaming on X.
func (g *pgen) nestedLoop() {
	outer := 2 + g.r.Intn(3)
	inner := 2 + g.r.Intn(3)
	g.emit(0, "for i := 0 to %d do begin", outer-1)
	g.emit(1, "for j := 0 to %d do begin", inner-1)
	g.emit(2, "receive (L, X, t, xs[%d + %d*i + j]);", g.xIn, inner)
	g.compute(2, g.vars("t"))
	g.emit(2, "send (R, X, %s, ys[%d + %d*i + j]);", g.expr(2, g.vars("t")), g.out, inner)
	g.emit(1, "end;")
	g.emit(0, "end;")
	g.xIn += outer * inner
	g.out += outer * inner
}

// balance adds nothing today: every segment conserves each channel by
// construction.  Kept as the single place to add unbalanced segment
// kinds later.
func (g *pgen) balance() {}

package cellgen

import (
	"fmt"

	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/w2"
)

// This file materializes a modulo schedule into prologue, kernel and
// epilogue code with modulo variable expansion.

// emitModulo turns a kernel schedule into code items.  ok=false rejects
// the schedule (register pressure or too few iterations) and sends the
// caller to a larger II or the fallback.
func (g *gen) emitModulo(r *ir.LoopRegion, b *ir.Block, ms *moduloResult, trips int64) ([]mcode.CodeItem, bool, error) {
	ii := ms.ii

	// Last use (flat offset) per value node.
	lastUse := map[*ir.Node]int64{}
	values := []*ir.Node{}
	needsReg := func(n *ir.Node) bool {
		switch n.Op {
		case ir.OpRecv, ir.OpLoad, ir.OpFadd, ir.OpFsub, ir.OpFmul,
			ir.OpFdiv, ir.OpFneg, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe,
			ir.OpGt, ir.OpGe, ir.OpAnd, ir.OpOr, ir.OpNot, ir.OpSelect:
			return true
		}
		return false
	}
	for _, n := range ms.nodes {
		if needsReg(n) {
			values = append(values, n)
			lastUse[n] = ms.off[n]
		}
	}
	for _, n := range ms.nodes {
		for _, a := range n.Args {
			if needsReg(a) && ms.off[n] > lastUse[a] {
				lastUse[a] = ms.off[n]
			}
		}
	}
	// Registers stay busy until their in-flight write lands.
	for _, v := range values {
		if land := ms.off[v] + resultLatency(v); land > lastUse[v] {
			lastUse[v] = land
		}
	}

	// Unroll degree: enough copies that a value's register is not
	// redefined while the previous iteration's value is still live.
	u := int64(1)
	for _, v := range values {
		life := lastUse[v] - ms.off[v] + 1
		if need := (life + ii - 1) / ii; need > u {
			u = need
		}
	}

	// Register demand: one register per value per copy (sound without
	// circular-interval analysis).
	pool := int64(mcode.NumRegs - g.tempBase)
	if int64(len(values))*u > pool {
		return nil, false, nil
	}

	// Shape: S pipeline stages, R kernel repetitions.
	span := ms.span
	s := (span + ii - 1) / ii
	p := (s - 1) * ii
	rReps := (trips - (s - 1)) / u
	if rReps < 1 {
		return nil, false, nil
	}
	kernelLen := u * ii
	kernelEnd := p + rReps*kernelLen
	flatEnd := (trips-1)*ii + span

	// Register map: value × copy → register.
	regOf := func(v *ir.Node, k int64) mcode.Reg {
		c := k % u
		for i, cand := range values {
			if cand == v {
				return mcode.Reg(int64(g.tempBase) + c*int64(len(values)) + int64(i))
			}
		}
		panic("cellgen: value without a register in modulo emission")
	}

	em := &moduloEmitter{g: g, r: r, values: values, regOf: regOf}

	// Enumerate instances per absolute flat cycle.
	emitRange := func(from, to int64, kernel bool) ([]*mcode.Instr, error) {
		n := to - from
		if n <= 0 {
			return nil, nil
		}
		instrs := make([]*mcode.Instr, n)
		for i := range instrs {
			instrs[i] = &mcode.Instr{}
		}
		for _, node := range ms.nodes {
			o := ms.off[node]
			// Instances at abs = k·II + o within [from, to).
			kLo := (from - o + ii - 1) / ii
			if kLo < 0 {
				kLo = 0
			}
			for k := kLo; k < trips; k++ {
				abs := k*ii + o
				if abs < from {
					continue
				}
				if abs >= to {
					break
				}
				if err := em.emit(instrs[abs-from], node, k, kernel); err != nil {
					return nil, err
				}
			}
		}
		return instrs, nil
	}

	prologue, err := emitRange(0, p, false)
	if err != nil {
		return nil, false, err
	}
	// Kernel body: the first repetition's instances, with Delta
	// expressed relative to the loop counter.
	kernelInstrs, err := emitRange(p, p+kernelLen, true)
	if err != nil {
		return nil, false, err
	}
	epilogue, err := emitRange(kernelEnd, flatEnd, false)
	if err != nil {
		return nil, false, err
	}

	id := g.loopID
	g.loopID++
	var items []mcode.CodeItem
	if len(prologue) > 0 {
		items = append(items, &mcode.Straight{Instrs: prologue})
	}
	items = append(items, &mcode.LoopItem{
		ID:    id,
		Trips: rReps,
		Body:  []mcode.CodeItem{&mcode.Straight{Instrs: kernelInstrs}},
		Src:   r.Loop,
		First: r.Lo,
		Step:  u,
	})
	if len(epilogue) > 0 {
		items = append(items, &mcode.Straight{Instrs: epilogue})
	}
	return items, true, nil
}

// moduloEmitter fills single instructions for one instance (node n of
// iteration k).
type moduloEmitter struct {
	g      *gen
	r      *ir.LoopRegion
	values []*ir.Node
	regOf  func(v *ir.Node, k int64) mcode.Reg
}

// operand resolves the register holding node a's value for iteration k.
func (em *moduloEmitter) operand(a *ir.Node, k int64) (mcode.Reg, error) {
	switch a.Op {
	case ir.OpConst:
		r, ok := em.g.res.ConstRegs[a.FVal]
		if !ok {
			return 0, fmt.Errorf("cellgen: constant %g has no register", a.FVal)
		}
		return r, nil
	case ir.OpRead:
		r, ok := em.g.res.ScalarRegs[a.Sym]
		if !ok {
			return 0, fmt.Errorf("cellgen: scalar %s has no home register", a.Sym.Name)
		}
		return r, nil
	}
	return em.regOf(a, k), nil
}

// addrFor builds the AddrInfo of a memory access instance.  Kernel
// instances keep the loop term with a Delta offset (the loop counter
// advances by the unroll degree per repetition); prologue and epilogue
// instances substitute the concrete iteration.
func (em *moduloEmitter) addrFor(sym *w2.Symbol, aff w2.Affine, k int64, kernel bool) mcode.AddrInfo {
	info := mcode.AddrInfo{Sym: sym, Base: sym.Base, Affine: aff}
	if kernel {
		info.Delta = map[*w2.ForStmt]int64{em.r.Loop: k}
	} else {
		info.Affine = aff.Subst(em.r.Loop, em.r.Lo+k)
	}
	return info
}

func (em *moduloEmitter) extFor(e *ir.ExtRef, k int64, kernel bool) (*mcode.AddrInfo, *float64) {
	if e == nil {
		return nil, nil
	}
	if e.Sym == nil {
		v := e.Literal
		return nil, &v
	}
	info := em.addrFor(e.Sym, e.Addr, k, kernel)
	return &info, nil
}

// emit places one instance into an instruction word.
//
// For kernel instances, k is the iteration executed by the FIRST kernel
// repetition; later repetitions advance the loop counter, which the
// Delta/Step mapping accounts for.
func (em *moduloEmitter) emit(in *mcode.Instr, n *ir.Node, k int64, kernel bool) error {
	// Debug map: the first instance placed into the word claims the
	// instruction's source position (deterministic: nodes are visited in
	// schedule order).
	if in.Pos.Line == 0 && n.Pos.Line != 0 {
		in.Pos = n.Pos
	}
	var delta map[*w2.ForStmt]int64
	if kernel {
		delta = map[*w2.ForStmt]int64{em.r.Loop: k}
	}
	switch n.Op {
	case ir.OpRecv:
		ext, lit := em.extFor(n.Ext, k, kernel)
		in.IO = append(in.IO, &mcode.IOOp{
			Recv: true, Dir: n.Dir, Chan: n.Chan, Reg: em.regOf(n, k),
			Ext: ext, ExtLiteral: lit, Delta: delta,
		})
	case ir.OpSend:
		src, err := em.operand(n.Args[0], k)
		if err != nil {
			return err
		}
		ext, lit := em.extFor(n.Ext, k, kernel)
		in.IO = append(in.IO, &mcode.IOOp{
			Recv: false, Dir: n.Dir, Chan: n.Chan, Reg: src,
			Ext: ext, ExtLiteral: lit, Delta: delta,
		})
	case ir.OpLoad, ir.OpStore:
		op := &mcode.MemOp{
			Store: n.Op == ir.OpStore,
			Addr:  em.addrFor(n.Sym, n.Addr, k, kernel),
		}
		if n.Op == ir.OpStore {
			src, err := em.operand(n.Args[0], k)
			if err != nil {
				return err
			}
			op.Reg = src
		} else {
			op.Reg = em.regOf(n, k)
		}
		for slot := 0; ; slot++ {
			if slot >= mcode.MemPorts {
				return fmt.Errorf("cellgen: modulo schedule overfills the memory ports")
			}
			if in.Mem[slot] == nil {
				in.Mem[slot] = op
				break
			}
		}
	case ir.OpWrite:
		src, err := em.operand(n.Args[0], k)
		if err != nil {
			return err
		}
		if in.Mov != nil {
			return fmt.Errorf("cellgen: modulo schedule double-books the move field")
		}
		in.Mov = &mcode.AluOp{Code: mcode.Mov, Dst: em.g.res.ScalarRegs[n.Sym], Src: [3]mcode.Reg{src}}
	default:
		code, ok := aluCodeOf[n.Op]
		if !ok {
			return fmt.Errorf("cellgen: cannot emit %s in modulo schedule", n.Op)
		}
		op := &mcode.AluOp{Code: code, Dst: em.regOf(n, k)}
		for i, a := range n.Args {
			src, err := em.operand(a, k)
			if err != nil {
				return err
			}
			op.Src[i] = src
		}
		if code.OnMulUnit() {
			if in.Mul != nil {
				return fmt.Errorf("cellgen: modulo schedule double-books the MUL unit")
			}
			in.Mul = op
		} else {
			if in.Add != nil {
				return fmt.Errorf("cellgen: modulo schedule double-books the ADD unit")
			}
			in.Add = op
		}
	}
	return nil
}

package cellgen

import (
	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/prof"
)

// pipelineLoop attempts to software pipeline an innermost loop whose
// body is a single basic block: modulo scheduling with modulo variable
// expansion, in the tradition of the throughput-oriented scheduling
// work the paper builds on (Patel/Davidson; Rau/Glaeser).  It returns
// ok=false when the loop shape does not qualify, in which case the
// caller falls back to a plain counted loop.
//
// Implemented in pipeline_modulo.go; this indirection keeps the
// fallback contract in one place.
func (g *gen) pipelineLoop(r *ir.LoopRegion, ls *prof.LoopSched) ([]mcode.CodeItem, bool, error) {
	if len(r.Body) != 1 {
		ls.Reason = "not an innermost single-block loop"
		return nil, false, nil
	}
	br, ok := r.Body[0].(*ir.BlockRegion)
	if !ok {
		ls.Reason = "not an innermost single-block loop"
		return nil, false, nil
	}
	return g.moduloSchedule(r, br.Block, ls)
}

// Package cellgen generates Warp-cell microcode from the optimized IR
// (§6.2).  Each basic block's dag is list-scheduled onto the cell's
// horizontal microinstruction word (two pipelined FPUs, two memory
// ports, four queue ports); loops become counted hardware loops driven
// by the IU's termination signals.
//
// The scheduling of individual cells deliberately ignores inter-cell
// timing (§6.2.1: "Ignoring inter-cell timing constraints in the code
// generation phase simplifies the problem without compromising
// efficiency") — the skew analysis afterwards delays whole cells
// relative to one another.
package cellgen

import (
	"fmt"
	"sort"
	"time"

	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/prof"
	"warp/internal/w2"
)

// Options control code generation.
type Options struct {
	// Pipeline enables software pipelining of innermost loop bodies
	// (modulo scheduling with modulo variable expansion), the technique
	// family the paper cites from Patel/Davidson and Rau/Glaeser.
	Pipeline bool
	// Workers bounds the modulo scheduler's speculative II search: up
	// to Workers candidate initiation intervals are scheduled
	// concurrently per batch, then accepted in ascending-II order, so
	// the chosen schedule and every introspection counter except wall
	// time match the serial search exactly.  ≤ 1 searches serially.
	Workers int
}

// Result is the generated cell program with generation statistics.
type Result struct {
	Cell *mcode.CellProgram
	// ScalarRegs maps each cross-block scalar to its home register.
	ScalarRegs map[*w2.Symbol]mcode.Reg
	// ConstRegs maps each distinct constant to its register.
	ConstRegs map[float64]mcode.Reg
	// PipelinedLoops counts the loops software pipelining transformed.
	PipelinedLoops int
	// Sched records the modulo scheduler's per-loop search counters
	// (attempts, placements, evictions) for compiler introspection.
	Sched *prof.SchedProfile
}

// Generate produces the cell microprogram for every function of the
// program, concatenated in call order.
func Generate(p *ir.Program, opts Options) (*Result, error) {
	res := &Result{
		Cell:       &mcode.CellProgram{},
		ScalarRegs: make(map[*w2.Symbol]mcode.Reg),
		ConstRegs:  make(map[float64]mcode.Reg),
		Sched:      &prof.SchedProfile{},
	}
	g := &gen{opts: opts, res: res}
	for _, fn := range p.Funcs {
		if err := g.genFunc(fn); err != nil {
			return nil, err
		}
	}
	return res, nil
}

type gen struct {
	opts Options
	res  *Result

	nextReg  int
	tempBase int // first register available for block temporaries
	loopID   int
}

func (g *gen) genFunc(fn *ir.Func) error {
	// Dedicated registers: one per cross-block scalar, one per distinct
	// constant.  Remaining registers form the temporary pool.
	var scalars []*w2.Symbol
	var consts []float64
	seenSym := map[*w2.Symbol]bool{}
	seenConst := map[float64]bool{}
	ir.Walk(fn.Regions, func(b *ir.Block) {
		for _, n := range b.Nodes {
			switch n.Op {
			case ir.OpRead, ir.OpWrite:
				if !seenSym[n.Sym] {
					seenSym[n.Sym] = true
					scalars = append(scalars, n.Sym)
				}
			case ir.OpConst:
				if !seenConst[n.FVal] {
					seenConst[n.FVal] = true
					consts = append(consts, n.FVal)
				}
			}
		}
	})
	sort.Slice(scalars, func(i, j int) bool { return scalars[i].Name < scalars[j].Name })
	sort.Float64s(consts)

	for _, s := range scalars {
		if _, ok := g.res.ScalarRegs[s]; !ok {
			g.res.ScalarRegs[s] = mcode.Reg(g.nextReg)
			g.nextReg++
		}
	}
	var preamble []*mcode.Instr
	for _, c := range consts {
		if _, ok := g.res.ConstRegs[c]; ok {
			continue
		}
		r := mcode.Reg(g.nextReg)
		g.nextReg++
		g.res.ConstRegs[c] = r
		preamble = append(preamble, &mcode.Instr{Lit: &mcode.LitOp{Dst: r, Value: c}})
	}
	g.tempBase = g.nextReg
	if g.tempBase >= mcode.NumRegs {
		return fmt.Errorf("cellgen: %d scalars and constants exceed the %d-register file", g.tempBase, mcode.NumRegs)
	}
	if len(preamble) > 0 {
		g.res.Cell.Items = append(g.res.Cell.Items, &mcode.Straight{Instrs: preamble})
	}

	items, err := g.genRegions(fn.Regions)
	if err != nil {
		return err
	}
	g.res.Cell.Items = append(g.res.Cell.Items, interRegionGaps(items)...)
	return nil
}

// interRegionGaps inserts a few idle cycles before each top-level loop,
// one per distinct address expression the loop uses (capped at the IU
// register file size).  The IU re-initializes its scoped induction
// registers in these cycles' immediate fields; the cost is a handful of
// cell cycles once per region.
func interRegionGaps(items []mcode.CodeItem) []mcode.CodeItem {
	var out []mcode.CodeItem
	for _, it := range items {
		if li, ok := it.(*mcode.LoopItem); ok {
			if n := countAddrExprs(li); n > 0 {
				if n > mcode.IUNumRegs {
					n = mcode.IUNumRegs
				}
				gap := make([]*mcode.Instr, n)
				for i := range gap {
					gap[i] = &mcode.Instr{}
				}
				out = append(out, &mcode.Straight{Instrs: gap})
			}
		}
		out = append(out, it)
	}
	return out
}

// countAddrExprs counts the distinct affine address forms of a loop's
// memory references.
func countAddrExprs(li *mcode.LoopItem) int {
	seen := map[string]bool{}
	var walk func(items []mcode.CodeItem)
	walk = func(items []mcode.CodeItem) {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.Straight:
				for _, in := range it.Instrs {
					for _, m := range in.Mem {
						if m != nil {
							seen[m.Addr.Sym.Name+"|"+m.Addr.Shifted().String()] = true
						}
					}
				}
			case *mcode.LoopItem:
				walk(it.Body)
			}
		}
	}
	walk(li.Body)
	return len(seen)
}

func (g *gen) genRegions(regions []ir.Region) ([]mcode.CodeItem, error) {
	var items []mcode.CodeItem
	for _, r := range regions {
		switch r := r.(type) {
		case *ir.BlockRegion:
			instrs, err := g.scheduleBlock(r.Block, nil)
			if err != nil {
				return nil, err
			}
			if len(instrs) > 0 {
				items = append(items, &mcode.Straight{Instrs: instrs})
			}
		case *ir.LoopRegion:
			li, err := g.genLoop(r)
			if err != nil {
				return nil, err
			}
			items = append(items, li...)
		}
	}
	return items, nil
}

// genLoop generates code for one loop region.  Innermost single-block
// loops may be software pipelined; everything else is a plain counted
// loop around the scheduled body.
func (g *gen) genLoop(r *ir.LoopRegion) ([]mcode.CodeItem, error) {
	ls := prof.LoopSched{Loop: r.Loop.Var, Line: r.Loop.Pos.Line, Trips: r.Trips()}
	start := time.Now()
	if g.opts.Pipeline {
		items, ok, err := g.pipelineLoop(r, &ls)
		ls.SearchNS = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, err
		}
		if ok {
			ls.Pipelined = true
			g.res.Sched.Loops = append(g.res.Sched.Loops, ls)
			g.res.PipelinedLoops++
			return items, nil
		}
	} else {
		ls.Reason = "pipelining disabled"
	}
	g.res.Sched.Loops = append(g.res.Sched.Loops, ls)
	body, err := g.genRegions(r.Body)
	if err != nil {
		return nil, err
	}
	body = padLoopBody(body)
	id := g.loopID
	g.loopID++
	return []mcode.CodeItem{&mcode.LoopItem{
		ID:    id,
		Trips: r.Trips(),
		Body:  body,
		Src:   r.Loop,
		First: r.Lo,
		Step:  1,
	}}, nil
}

// padLoopBody guarantees that a loop body containing nested loops ends
// with enough straight cycles for the IU's per-iteration counter work,
// its loop signal, and the induction-register boundary updates of the
// addresses used inside (§6.3.1, §6.3.2) — one cycle per distinct
// address expression, capped at the IU register file.  Straight-line
// bodies are left alone: the IU code generator unrolls those instead,
// keeping the cells at full speed.
func padLoopBody(body []mcode.CodeItem) []mcode.CodeItem {
	nested := false
	for _, it := range body {
		if _, ok := it.(*mcode.LoopItem); ok {
			nested = true
		}
	}
	if !nested {
		return body
	}
	exprs := 0
	{
		probe := &mcode.LoopItem{Body: body, Trips: 1}
		exprs = countAddrExprs(probe)
		if exprs > mcode.IUNumRegs {
			exprs = mcode.IUNumRegs
		}
	}
	need := mcode.LoopOverheadCycles + int64(exprs)
	trailing := int64(0)
	if n := len(body); n > 0 {
		if st, ok := body[n-1].(*mcode.Straight); ok {
			trailing = int64(len(st.Instrs))
		}
	}
	if trailing >= need {
		return body
	}
	var pad []*mcode.Instr
	for i := trailing; i < need; i++ {
		pad = append(pad, &mcode.Instr{})
	}
	if trailing > 0 {
		st := body[len(body)-1].(*mcode.Straight)
		st.Instrs = append(st.Instrs, pad...)
		return body
	}
	return append(body, &mcode.Straight{Instrs: pad})
}

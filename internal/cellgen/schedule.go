package cellgen

import (
	"fmt"
	"sort"

	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/w2"
)

// This file implements list scheduling of one basic block's dag onto
// the cell's microinstruction word, followed by temporary-register
// assignment and instruction emission.

// resultLatency returns the cycles from a node's issue until its result
// register is readable (0 for operands available at block entry).
func resultLatency(n *ir.Node) int64 {
	switch n.Op {
	case ir.OpConst, ir.OpRead:
		return 0 // pre-loaded in a dedicated register
	case ir.OpRecv, ir.OpLoad, ir.OpWrite:
		return 1
	case ir.OpFadd, ir.OpFsub, ir.OpFmul, ir.OpFdiv, ir.OpFneg,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpAnd, ir.OpOr, ir.OpNot, ir.OpSelect:
		return mcode.FPULatency
	}
	return 0
}

// depLatency returns the scheduling distance of an explicit ordering
// edge.
func depLatency(from, to *ir.Node) int64 {
	switch {
	case from.Op.IsIO() && to.Op.IsIO():
		return 1 // queue operations on one port stay strictly ordered
	case from.Op == ir.OpStore:
		return 1 // a dependent access sees memory one cycle later
	default:
		return 0 // anti-dependences may share the cycle
	}
}

// needsInstr reports whether the node occupies an instruction field.
func needsInstr(n *ir.Node) bool {
	switch n.Op {
	case ir.OpConst, ir.OpRead:
		return false
	}
	return true
}

// unit identifies the resource a node occupies.
type unit int

const (
	unitNone unit = iota
	unitAdd
	unitMul
	unitMov
	unitMem
	unitIO
)

func unitOf(n *ir.Node) unit {
	switch n.Op {
	case ir.OpFadd, ir.OpFsub, ir.OpFneg, ir.OpEq, ir.OpNe, ir.OpLt,
		ir.OpLe, ir.OpGt, ir.OpGe, ir.OpAnd, ir.OpOr, ir.OpNot,
		ir.OpSelect:
		return unitAdd
	case ir.OpWrite:
		return unitMov
	case ir.OpFmul, ir.OpFdiv:
		return unitMul
	case ir.OpLoad, ir.OpStore:
		return unitMem
	case ir.OpRecv, ir.OpSend:
		return unitIO
	}
	return unitNone
}

// portKey identifies one queue port.
type portKey struct {
	recv bool
	dir  w2.Direction
	ch   w2.Channel
}

func portOf(n *ir.Node) portKey {
	return portKey{recv: n.Op == ir.OpRecv, dir: n.Dir, ch: n.Chan}
}

// edge is a scheduling dependence with a minimum issue distance.
type edge struct {
	to  *ir.Node
	lat int64
}

// blockSchedule is the result of list scheduling one block.
type blockSchedule struct {
	block *ir.Block
	nodes []*ir.Node // scheduled nodes in issue order (needsInstr only)
	issue map[*ir.Node]int64
	len   int64 // block length in cycles (max issue + 1)
}

// buildEdges constructs the scheduling dependence graph of a block:
// operand edges, explicit ordering edges, and home-register
// anti-dependences (every consumer of an OpRead must issue no later
// than the OpWrite that overwrites the scalar's home register).
func buildEdges(b *ir.Block) map[*ir.Node][]edge {
	succ := make(map[*ir.Node][]edge)
	reads := make(map[*w2.Symbol][]*ir.Node)
	for _, n := range b.Nodes {
		if n.Op == ir.OpRead {
			reads[n.Sym] = append(reads[n.Sym], n)
		}
	}
	for _, n := range b.Nodes {
		for _, a := range n.Args {
			succ[a] = append(succ[a], edge{to: n, lat: resultLatency(a)})
		}
		for _, d := range n.Deps {
			succ[d] = append(succ[d], edge{to: n, lat: depLatency(d, n)})
		}
		if n.Op == ir.OpWrite {
			// Home-register anti-dependence: the write lands one cycle
			// after issue, so consumers of the old value must issue no
			// later than the write.
			for _, r := range reads[n.Sym] {
				for _, m := range b.Nodes {
					if m == n {
						continue
					}
					for _, a := range m.Args {
						if a == r {
							succ[m] = append(succ[m], edge{to: n, lat: 0})
						}
					}
				}
			}
		}
	}
	return succ
}

// listSchedule schedules the block's nodes cycle by cycle.
func listSchedule(b *ir.Block) (*blockSchedule, error) {
	succ := buildEdges(b)

	// Topological order (opt passes may have rewired args out of
	// creation order).
	indeg := make(map[*ir.Node]int)
	for _, n := range b.Nodes {
		indeg[n] += 0
		for _, e := range succ[n] {
			indeg[e.to]++
		}
	}
	var topo []*ir.Node
	var ready []*ir.Node
	for _, n := range b.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		topo = append(topo, n)
		for _, e := range succ[n] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				ready = append(ready, e.to)
			}
		}
	}
	if len(topo) != len(b.Nodes) {
		return nil, fmt.Errorf("cellgen: dependence cycle in block b%d", b.ID)
	}

	// Priority: latency-weighted height (critical path to a sink).
	height := make(map[*ir.Node]int64)
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		var h int64
		for _, e := range succ[n] {
			if v := e.lat + height[e.to]; v > h {
				h = v
			}
		}
		height[n] = h
	}

	// Earliest start driven by scheduled predecessors.
	pred := make(map[*ir.Node][]struct {
		from *ir.Node
		lat  int64
	})
	for n, es := range succ {
		for _, e := range es {
			pred[e.to] = append(pred[e.to], struct {
				from *ir.Node
				lat  int64
			}{n, e.lat})
		}
	}

	sched := &blockSchedule{block: b, issue: make(map[*ir.Node]int64)}
	unscheduled := make(map[*ir.Node]bool)
	for _, n := range b.Nodes {
		if needsInstr(n) {
			unscheduled[n] = true
		} else {
			sched.issue[n] = 0 // available at block entry
		}
	}

	// Resource tables.
	addBusy := map[int64]bool{}
	mulBusy := map[int64]bool{}
	movBusy := map[int64]bool{}
	memBusy := map[int64]int{}
	ioBusy := map[int64]map[portKey]bool{}

	earliest := func(n *ir.Node) int64 {
		var t int64
		for _, p := range pred[n] {
			if !needsInstr(p.from) {
				continue // ready at block entry
			}
			it, ok := sched.issue[p.from]
			if !ok {
				return -1 // predecessor not scheduled yet
			}
			if v := it + p.lat; v > t {
				t = v
			}
		}
		return t
	}

	fits := func(n *ir.Node, t int64) bool {
		switch unitOf(n) {
		case unitAdd:
			return !addBusy[t]
		case unitMul:
			return !mulBusy[t]
		case unitMov:
			return !movBusy[t]
		case unitMem:
			return memBusy[t] < mcode.MemPorts
		case unitIO:
			m := ioBusy[t]
			return m == nil || !m[portOf(n)]
		}
		return true
	}
	take := func(n *ir.Node, t int64) {
		switch unitOf(n) {
		case unitAdd:
			addBusy[t] = true
		case unitMul:
			mulBusy[t] = true
		case unitMov:
			movBusy[t] = true
		case unitMem:
			memBusy[t]++
		case unitIO:
			if ioBusy[t] == nil {
				ioBusy[t] = map[portKey]bool{}
			}
			ioBusy[t][portOf(n)] = true
		}
	}

	for t := int64(0); len(unscheduled) > 0; t++ {
		if t > int64(len(b.Nodes))*64+1024 {
			return nil, fmt.Errorf("cellgen: scheduler did not converge in block b%d", b.ID)
		}
		// Candidates ready at cycle t, by priority.
		var cands []*ir.Node
		for n := range unscheduled {
			e := earliest(n)
			if e >= 0 && e <= t {
				cands = append(cands, n)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if height[cands[i]] != height[cands[j]] {
				return height[cands[i]] > height[cands[j]]
			}
			return cands[i].ID < cands[j].ID
		})
		for _, n := range cands {
			if fits(n, t) {
				sched.issue[n] = t
				take(n, t)
				delete(unscheduled, n)
				sched.nodes = append(sched.nodes, n)
			}
		}
	}

	// The block must extend past every in-flight result: a pipelined
	// write landing after the last issue would otherwise cross into the
	// next block (or the next loop iteration) and clobber a reused
	// register there.
	for _, n := range sched.nodes {
		end := sched.issue[n] + 1
		if lat := resultLatency(n); lat > 1 {
			end = sched.issue[n] + lat
		}
		if end > sched.len {
			sched.len = end
		}
	}
	sort.SliceStable(sched.nodes, func(i, j int) bool {
		ti, tj := sched.issue[sched.nodes[i]], sched.issue[sched.nodes[j]]
		if ti != tj {
			return ti < tj
		}
		return sched.nodes[i].ID < sched.nodes[j].ID
	})
	return sched, nil
}

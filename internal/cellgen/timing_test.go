package cellgen

import (
	"testing"

	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/opt"
	"warp/internal/skew"
	"warp/internal/w2"
)

func compileCell(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(p)
	res, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const passSrc = `
module t (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 1)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v, ys[i]);
        end;
    end
    call f;
end
`

// TestTimingMatchesWalk: the extracted per-channel timed programs must
// place exactly one Input and one Output per iteration, at the cycles
// the instruction stream shows.
func TestTimingMatchesWalk(t *testing.T) {
	res := compileCell(t, passSrc, Options{})
	timing := Timing(res.Cell)
	x := timing[w2.ChanX]
	if x.Count(skew.Input) != 8 || x.Count(skew.Output) != 8 {
		t.Fatalf("X: %d inputs, %d outputs; want 8/8",
			x.Count(skew.Input), x.Count(skew.Output))
	}
	if y := timing[w2.ChanY]; y.Count(skew.Input) != 0 || y.Count(skew.Output) != 0 {
		t.Errorf("Y channel should be silent")
	}
	if x.Len != res.Cell.Cycles() {
		t.Errorf("timed program length %d, cell cycles %d", x.Len, res.Cell.Cycles())
	}
	// Cross-check each enumerated input time against a manual walk of
	// the instruction stream.
	var manual []int64
	var cycle int64
	var walk func(items []mcode.CodeItem)
	walk = func(items []mcode.CodeItem) {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.Straight:
				for _, in := range it.Instrs {
					for _, io := range in.IO {
						if io.Recv {
							manual = append(manual, cycle)
						}
					}
					cycle++
				}
			case *mcode.LoopItem:
				for k := int64(0); k < it.Trips; k++ {
					walk(it.Body)
				}
			}
		}
	}
	walk(res.Cell.Items)
	times := x.Times(skew.Input)
	if len(times) != len(manual) {
		t.Fatalf("enumerated %d inputs, manual walk %d", len(times), len(manual))
	}
	for i := range manual {
		if times[i] != manual[i] {
			t.Errorf("input %d at %d, manual walk says %d", i, times[i], manual[i])
		}
	}
}

// TestTimingValid: the timed programs of every workload validate and
// their skew analysis terminates.
func TestTimingSelfSkew(t *testing.T) {
	res := compileCell(t, passSrc, Options{})
	x := Timing(res.Cell)[w2.ChanX]
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := skew.MinSkew(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 {
		t.Errorf("forwarding program needs positive skew, got %d", s)
	}
	if _, err := skew.CheckQueue(x, x, s, mcode.QueueDepth); err != nil {
		t.Errorf("computed skew fails its own queue check: %v", err)
	}
}

// TestPreambleLoadsConstants: constants used by the program are
// materialized once, before any use.
func TestPreambleLoadsConstants(t *testing.T) {
	res := compileCell(t, `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v * 2.5 + 2.5, ys[i]);
        end;
    end
    call f;
end
`, Options{})
	if len(res.ConstRegs) != 1 {
		t.Fatalf("constants: %d registers, want 1 (2.5 shared)", len(res.ConstRegs))
	}
	first, ok := res.Cell.Items[0].(*mcode.Straight)
	if !ok || first.Instrs[0].Lit == nil || first.Instrs[0].Lit.Value != 2.5 {
		t.Error("constant preamble missing")
	}
}

// TestDedicatedScalarRegisters: scalars that cross blocks keep a stable
// home register.
func TestDedicatedScalarRegisters(t *testing.T) {
	res := compileCell(t, `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float acc, v;
        int i;
        acc := 0.0;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            acc := acc + v;
            send (R, X, acc, ys[i]);
        end;
    end
    call f;
end
`, Options{})
	if len(res.ScalarRegs) == 0 {
		t.Fatal("accumulator did not get a home register")
	}
}

// TestPipelineFallback: loops the modulo scheduler cannot handle
// (non-parallel subscripts) silently fall back to the plain schedule.
func TestPipelineFallback(t *testing.T) {
	res := compileCell(t, `
module t (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v;
        float buf[16];
        int i;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            buf[i] := v;
            buf[14-i] := v + 1.0;
            send (R, X, buf[i], ys[i]);
        end;
    end
    call f;
end
`, Options{Pipeline: true})
	if res.PipelinedLoops != 0 {
		t.Error("non-parallel subscripts must not be pipelined")
	}
	if err := mcode.ValidateCell(res.Cell); err != nil {
		t.Error(err)
	}
}

// TestPipelineSkipsTinyTripCounts: loops with too few iterations to
// fill the software pipeline fall back.
func TestPipelineSkipsTinyTripCounts(t *testing.T) {
	res := compileCell(t, `
module t (xs in, ys out)
float xs[2];
float ys[2];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float v, w;
        int i;
        for i := 0 to 1 do begin
            receive (L, X, v, xs[i]);
            w := ((v * 2.0) + 1.0) * ((v - 1.0) + (v * v));
            send (R, X, w, ys[i]);
        end;
    end
    call f;
end
`, Options{Pipeline: true})
	if err := mcode.ValidateCell(res.Cell); err != nil {
		t.Error(err)
	}
}

package cellgen

import (
	"warp/internal/mcode"
	"warp/internal/skew"
	"warp/internal/w2"
)

// Timing reduces a generated cell program to its timed I/O programs,
// one per channel: every receive becomes an Input event and every send
// an Output event at its exact cycle.  These are the inputs to the
// minimum-skew and queue-occupancy analyses.  (The program must be
// unidirectional, which the driver validates before code generation,
// so receive/send direction needs no further distinction here.)
func Timing(p *mcode.CellProgram) map[w2.Channel]*skew.Prog {
	progs := map[w2.Channel]*skew.Prog{
		w2.ChanX: {},
		w2.ChanY: {},
	}
	ids := map[w2.Channel]*[2]int{
		w2.ChanX: {},
		w2.ChanY: {},
	}
	bodies := make(map[w2.Channel][]skew.Elem)
	n := timingItems(p.Items, progs, ids, bodies)
	for ch, p := range progs {
		p.Body = bodies[ch]
		p.Len = n
	}
	return progs
}

// timingItems converts a code-item list, returning its length in
// cycles and appending per-channel elements to bodies.
func timingItems(items []mcode.CodeItem, progs map[w2.Channel]*skew.Prog, ids map[w2.Channel]*[2]int, bodies map[w2.Channel][]skew.Elem) int64 {
	var at int64
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			for i, in := range it.Instrs {
				for _, io := range in.IO {
					kind := skew.Output
					slot := 1
					if io.Recv {
						kind = skew.Input
						slot = 0
					}
					id := &ids[io.Chan][slot]
					bodies[io.Chan] = append(bodies[io.Chan], &skew.Op{
						Kind: kind, ID: *id, At: at + int64(i),
					})
					*id++
				}
			}
			at += int64(len(it.Instrs))
		case *mcode.LoopItem:
			inner := make(map[w2.Channel][]skew.Elem)
			iterLen := timingItems(it.Body, progs, ids, inner)
			for ch, body := range inner {
				if len(body) == 0 {
					continue
				}
				bodies[ch] = append(bodies[ch], &skew.Loop{
					At: at, Trips: it.Trips, IterLen: iterLen, Body: body,
				})
			}
			at += iterLen * it.Trips
		}
	}
	return at
}

package cellgen

import (
	"sort"

	"warp/internal/conc"
	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/prof"
	"warp/internal/w2"
)

// This file implements software pipelining of innermost loops: modulo
// scheduling with modulo variable expansion.  The paper's cell
// scheduler builds on the throughput-oriented pipeline scheduling of
// Patel/Davidson and Rau/Glaeser (§6.2); this is what lets the array
// reach the "one result per cycle" throughput quoted for 1-d
// convolution and polynomial evaluation.
//
// Overview: all iterations share one kernel schedule of II (initiation
// interval) cycles; iteration k's operation n executes at the flat time
// k·II + o(n).  Values that stay live longer than II cycles get one
// register per overlapped iteration: the kernel is unrolled u times
// with registers renamed per copy (modulo variable expansion).  Scalars
// carried across iterations stay in their home registers; the schedule
// constrains their read to precede the overwriting move of the same
// flat cycle pattern, so they need no expansion.

// mEdge is a modulo-scheduling dependence: to must start no earlier
// than from's start plus lat, dist iterations later:
//
//	t(to) + dist·II ≥ t(from) + lat.
type mEdge struct {
	from, to *ir.Node
	lat      int64
	dist     int64
}

// buildModuloEdges constructs intra- and inter-iteration dependences of
// a loop body block.  ok=false means the body has a construct the
// analysis cannot bound (non-parallel array subscripts), so the caller
// falls back to list scheduling.
func buildModuloEdges(b *ir.Block, loop *w2.ForStmt) (edges []mEdge, ok bool) {
	add := func(from, to *ir.Node, lat, dist int64) {
		edges = append(edges, mEdge{from: from, to: to, lat: lat, dist: dist})
	}

	reads := map[*w2.Symbol]*ir.Node{}
	writes := map[*w2.Symbol]*ir.Node{}
	for _, n := range b.Nodes {
		switch n.Op {
		case ir.OpRead:
			reads[n.Sym] = n
		case ir.OpWrite:
			writes[n.Sym] = n
		}
	}

	// Intra-iteration operand and ordering edges (as in list
	// scheduling).
	for _, n := range b.Nodes {
		for _, a := range n.Args {
			if needsInstr(a) {
				add(a, n, resultLatency(a), 0)
			}
		}
		for _, d := range n.Deps {
			if needsInstr(d) {
				add(d, n, depLatency(d, n), 0)
			}
		}
		if n.Op == ir.OpWrite {
			// Consumers of the old value must issue no later than the
			// overwriting move (this cycle's read still sees the old
			// home-register value).
			if r := reads[n.Sym]; r != nil {
				for _, m := range b.Nodes {
					if m == n {
						continue
					}
					for _, a := range m.Args {
						if a == r {
							add(m, n, 0, 0)
						}
					}
				}
			}
		}
	}

	// Carried scalar flow: write(k) → read(k+1), one cycle for the move
	// to land.  Symbols are visited in block order, not map order: the
	// edge list's order seeds the scheduler's eviction sequence, so it
	// must be identical on every compile of the same source.
	seenW := map[*w2.Symbol]bool{}
	for _, n := range b.Nodes {
		if n.Op != ir.OpWrite || seenW[n.Sym] {
			continue
		}
		seenW[n.Sym] = true
		sym, w := n.Sym, writes[n.Sym]
		if r := reads[sym]; r != nil {
			for _, m := range b.Nodes {
				for _, a := range m.Args {
					if a == r {
						add(w, m, 1, 1)
					}
				}
			}
			// And the next iteration's write must not land before this
			// iteration's consumers read: t_w ≥ t_consumer (dist 0)
			// already added above; the pair bounds the overlap.
		}
	}

	// Carried queue order: per port, last op (k) before first op (k+1).
	// Ports are visited in first-encounter order for the same reason as
	// the carried-scalar loop above.
	type portOps struct{ first, last *ir.Node }
	ports := map[portKey]*portOps{}
	var portOrder []portKey
	for _, n := range b.Nodes {
		if !n.Op.IsIO() {
			continue
		}
		k := portOf(n)
		p := ports[k]
		if p == nil {
			ports[k] = &portOps{first: n, last: n}
			portOrder = append(portOrder, k)
		} else {
			p.last = n
		}
	}
	for _, k := range portOrder {
		add(ports[k].last, ports[k].first, 1, 1)
	}

	// Carried memory dependences with affine disambiguation.
	var mems []*ir.Node
	for _, n := range b.Nodes {
		if n.Op.IsMem() {
			mems = append(mems, n)
		}
	}
	for _, a := range mems {
		for _, bn := range mems {
			if a.Op == ir.OpLoad && bn.Op == ir.OpLoad {
				continue
			}
			if a.Sym != bn.Sym {
				continue
			}
			// Distance d ≥ 1 at which a(k) and bn(k+d) collide.
			diff := a.Addr.Sub(bn.Addr)
			if !diff.IsConst() {
				return nil, false // non-parallel subscripts: give up
			}
			stride := a.Addr.Coef(loop)
			c := diff.Const
			switch {
			case stride == 0:
				if c == 0 {
					add(a, bn, depLatency(a, bn), 1)
				}
				// distinct fixed addresses: no conflict
			case c%stride == 0:
				if d := c / stride; d >= 1 {
					add(a, bn, depLatency(a, bn), d)
				}
			}
		}
	}
	return edges, true
}

// resMII is the resource-constrained lower bound on II.
func resMII(b *ir.Block) int64 {
	var adds, muls, movs, memrefs int64
	portCount := map[portKey]int64{}
	for _, n := range b.Nodes {
		switch unitOf(n) {
		case unitAdd:
			adds++
		case unitMul:
			muls++
		case unitMov:
			movs++
		case unitMem:
			memrefs++
		case unitIO:
			portCount[portOf(n)]++
		}
	}
	mii := int64(1)
	maxi := func(v int64) {
		if v > mii {
			mii = v
		}
	}
	maxi(adds)
	maxi(muls)
	maxi(movs)
	maxi((memrefs + mcode.MemPorts - 1) / mcode.MemPorts)
	for _, c := range portCount {
		maxi(c)
	}
	return mii
}

// moduloResult is a successful kernel schedule.
type moduloResult struct {
	ii    int64
	off   map[*ir.Node]int64 // flat offsets o(n)
	span  int64              // max o + 1
	nodes []*ir.Node         // scheduled nodes, by offset then ID
}

// tryModulo attempts to find a kernel schedule at the given II using a
// simplified form of Rau's iterative modulo scheduling: operations are
// placed highest-priority first; when no slot in the II-wide window is
// free, a conflicting operation is evicted and rescheduled, within a
// fixed budget.  Eviction is what lets recurrence clusters (for
// example, a carried scalar's move tied to its consumer's cycle)
// converge where one-pass greedy placement deadlocks.
func tryModulo(b *ir.Block, edges []mEdge, ii int64, ls *prof.LoopSched) (*moduloResult, bool) {
	succ := map[*ir.Node][]mEdge{}
	pred := map[*ir.Node][]mEdge{}
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e)
		pred[e.to] = append(pred[e.to], e)
	}

	var sched []*ir.Node
	for _, n := range b.Nodes {
		if needsInstr(n) {
			sched = append(sched, n)
		}
	}
	height := map[*ir.Node]int64{}
	// Longest path over dist-0 edges (acyclic by construction); iterate
	// to fixpoint, bounded by the node count as a cycle safeguard.
	for round := 0; round <= len(b.Nodes)+1; round++ {
		changed := false
		for _, e := range edges {
			if e.dist != 0 {
				continue
			}
			if h := e.lat + height[e.to]; h > height[e.from] {
				height[e.from] = h
				changed = true
			}
		}
		if !changed {
			break
		}
		if round == len(b.Nodes)+1 {
			return nil, false // dist-0 cycle: malformed block
		}
	}

	res := &moduloResult{ii: ii, off: map[*ir.Node]int64{}}

	// Modulo reservation tables with eviction support: per residue, the
	// occupants of each unit.
	type resKey struct {
		res  int64
		unit unit
		port portKey
	}
	occupants := map[resKey][]*ir.Node{}
	keyOf := func(n *ir.Node, t int64) resKey {
		k := resKey{res: t % ii, unit: unitOf(n)}
		if k.unit == unitIO {
			k.port = portOf(n)
		}
		return k
	}
	capOf := func(u unit) int {
		if u == unitMem {
			return mcode.MemPorts
		}
		return 1
	}

	unsched := map[*ir.Node]bool{}
	for _, n := range sched {
		unsched[n] = true
	}
	lastTry := map[*ir.Node]int64{}

	unschedule := func(n *ir.Node) {
		t, ok := res.off[n]
		if !ok {
			return
		}
		ls.Evictions++
		k := keyOf(n, t)
		occ := occupants[k]
		for i, m := range occ {
			if m == n {
				occupants[k] = append(occ[:i:i], occ[i+1:]...)
				break
			}
		}
		delete(res.off, n)
		unsched[n] = true
	}

	budget := (len(sched) + 4) * int(min64(ii, 64)) * 8
	for len(unsched) > 0 {
		if budget <= 0 {
			return nil, false
		}
		budget--
		ls.Placements++
		// Highest priority unscheduled op.
		var n *ir.Node
		for m := range unsched {
			if n == nil || height[m] > height[n] ||
				(height[m] == height[n] && m.ID < n.ID) {
				n = m
			}
		}

		lo := int64(0)
		for _, e := range pred[n] {
			if t, ok := res.off[e.from]; ok {
				if v := t + e.lat - e.dist*ii; v > lo {
					lo = v
				}
			}
		}
		if lt := lastTry[n]; lt > lo {
			lo = lt
		}
		// Find a free slot in the II-wide window, else force lo and
		// evict the occupants.
		t := int64(-1)
		for c := lo; c < lo+ii; c++ {
			k := keyOf(n, c)
			if len(occupants[k]) < capOf(k.unit) {
				t = c
				break
			}
		}
		forced := t < 0
		if forced {
			t = lo
			k := keyOf(n, t)
			for _, victim := range append([]*ir.Node(nil), occupants[k]...) {
				unschedule(victim)
			}
		}
		res.off[n] = t
		k := keyOf(n, t)
		occupants[k] = append(occupants[k], n)
		delete(unsched, n)
		lastTry[n] = t + 1

		// Evict scheduled neighbours whose constraints the placement
		// violates.
		for _, e := range succ[n] {
			if ts, ok := res.off[e.to]; ok && ts+e.dist*ii < t+e.lat {
				unschedule(e.to)
			}
		}
		for _, e := range pred[n] {
			if tp, ok := res.off[e.from]; ok && t+e.dist*ii < tp+e.lat {
				unschedule(e.from)
			}
		}
	}

	// Normalize: eviction cycles can drift the whole schedule upward;
	// shift down by a multiple of II (which preserves residues and all
	// dependence slacks).
	minOff := int64(1) << 62
	for _, t := range res.off {
		if t < minOff {
			minOff = t
		}
	}
	if shift := (minOff / ii) * ii; shift > 0 {
		for n := range res.off {
			res.off[n] -= shift
		}
	}
	for _, t := range res.off {
		if t+1 > res.span {
			res.span = t + 1
		}
	}
	res.nodes = append(res.nodes, sched...)
	sort.SliceStable(res.nodes, func(i, j int) bool {
		ti, tj := res.off[res.nodes[i]], res.off[res.nodes[j]]
		if ti != tj {
			return ti < tj
		}
		return res.nodes[i].ID < res.nodes[j].ID
	})
	return res, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// moduloSchedule orchestrates: qualify, search for the smallest
// feasible II, check register demand, and emit
// prologue/kernel/epilogue.  ok=false means "fall back to a plain
// counted loop".
func (g *gen) moduloSchedule(r *ir.LoopRegion, b *ir.Block, ls *prof.LoopSched) ([]mcode.CodeItem, bool, error) {
	// Baseline: the plain list schedule (also the fallback measure).
	base, err := listSchedule(b)
	if err != nil {
		return nil, false, err
	}
	edges, ok := buildModuloEdges(b, r.Loop)
	if !ok {
		ls.Reason = "non-parallel array subscripts"
		return nil, false, nil
	}

	trips := r.Trips()
	ls.MII = int(resMII(b))

	// Speculative search: try up to Workers candidate IIs concurrently
	// per batch, each against a private scratch counter, then walk the
	// batch in ascending II merging only the candidates a serial search
	// would have reached.  tryModulo is a pure function of (b, edges,
	// ii), so the accepted schedule — and every counter except wall
	// time — is identical at any worker count.  Emission stays serial:
	// it allocates loop IDs from the generator's sequential state.
	batch := g.opts.Workers
	if batch < 1 {
		batch = 1
	}
	type candidate struct {
		ms      *moduloResult
		ok      bool
		scratch prof.LoopSched
	}
	for lo := resMII(b); lo < base.len; lo += int64(batch) {
		hi := lo + int64(batch)
		if hi > base.len {
			hi = base.len
		}
		cands := make([]candidate, hi-lo)
		conc.Do(batch, len(cands), func(i int) {
			cands[i].ms, cands[i].ok = tryModulo(b, edges, lo+int64(i), &cands[i].scratch)
		})
		for i := range cands {
			ls.Attempts++
			ls.Placements += cands[i].scratch.Placements
			ls.Evictions += cands[i].scratch.Evictions
			if !cands[i].ok {
				continue
			}
			items, ok, err := g.emitModulo(r, b, cands[i].ms, trips)
			if err != nil {
				return nil, false, err
			}
			if ok {
				ls.II = int(lo + int64(i))
				return items, true, nil
			}
			// Register pressure or trip count rejected this II; a larger II
			// lowers the overlap, so keep searching.
			ls.EmitRejects++
		}
	}
	ls.Reason = "no feasible II below the list schedule"
	return nil, false, nil
}

package cellgen

import (
	"fmt"
	"sort"

	"warp/internal/ir"
	"warp/internal/mcode"
	"warp/internal/w2"
)

// This file assigns temporary registers to a scheduled block and emits
// the microinstructions.

// assignRegs allocates temporary registers for value-producing nodes
// over the register pool left after dedicated scalar and constant
// registers, reusing registers whose values are dead.
func (g *gen) assignRegs(s *blockSchedule) (map[*ir.Node]mcode.Reg, error) {
	// Last use per node: the max issue over consumers, but never before
	// the producer's own write lands — an idle register must stay
	// reserved until its in-flight result has arrived, or a reuser
	// would be clobbered.
	lastUse := make(map[*ir.Node]int64)
	for _, n := range s.block.Nodes {
		for _, a := range n.Args {
			if t := s.issue[n]; t > lastUse[a] {
				lastUse[a] = t
			}
		}
	}
	for _, n := range s.nodes {
		if land := s.issue[n] + resultLatency(n); land > lastUse[n] {
			lastUse[n] = land
		}
	}

	needsReg := func(n *ir.Node) bool {
		switch n.Op {
		case ir.OpRecv, ir.OpLoad, ir.OpFadd, ir.OpFsub, ir.OpFmul,
			ir.OpFdiv, ir.OpFneg, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe,
			ir.OpGt, ir.OpGe, ir.OpAnd, ir.OpOr, ir.OpNot, ir.OpSelect:
			return true
		}
		return false
	}

	regs := make(map[*ir.Node]mcode.Reg)
	type slot struct {
		reg    mcode.Reg
		freeAt int64
	}
	var pool []slot
	for r := g.tempBase; r < mcode.NumRegs; r++ {
		pool = append(pool, slot{reg: mcode.Reg(r), freeAt: -1})
	}
	for _, n := range s.nodes {
		if !needsReg(n) {
			continue
		}
		t := s.issue[n]
		end := lastUse[n]
		if end < t {
			end = t
		}
		found := false
		for i := range pool {
			if pool[i].freeAt <= t {
				regs[n] = pool[i].reg
				pool[i].freeAt = end + 1
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cellgen: block b%d needs more than %d temporary registers (no spill path to cell memory is implemented; restructure the program)",
				s.block.ID, len(pool))
		}
	}
	return regs, nil
}

// operandReg resolves the register holding a node's value.
func (g *gen) operandReg(n *ir.Node, regs map[*ir.Node]mcode.Reg) (mcode.Reg, error) {
	switch n.Op {
	case ir.OpConst:
		r, ok := g.res.ConstRegs[n.FVal]
		if !ok {
			return 0, fmt.Errorf("cellgen: constant %g has no register", n.FVal)
		}
		return r, nil
	case ir.OpRead:
		r, ok := g.res.ScalarRegs[n.Sym]
		if !ok {
			return 0, fmt.Errorf("cellgen: scalar %s has no home register", n.Sym.Name)
		}
		return r, nil
	}
	if r, ok := regs[n]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("cellgen: node n%d (%s) has no result register", n.ID, n.Op)
}

var aluCodeOf = map[ir.Op]mcode.AluCode{
	ir.OpFadd: mcode.Fadd, ir.OpFsub: mcode.Fsub, ir.OpFneg: mcode.Fneg,
	ir.OpFmul: mcode.Fmul, ir.OpFdiv: mcode.Fdiv,
	ir.OpEq: mcode.CmpEQ, ir.OpNe: mcode.CmpNE, ir.OpLt: mcode.CmpLT,
	ir.OpLe: mcode.CmpLE, ir.OpGt: mcode.CmpGT, ir.OpGe: mcode.CmpGE,
	ir.OpAnd: mcode.BoolAnd, ir.OpOr: mcode.BoolOr, ir.OpNot: mcode.BoolNot,
	ir.OpSelect: mcode.Sel,
}

// copyShift clones the iteration-offset map (nil stays nil).
func copyShift(shift map[*w2.ForStmt]int64) map[*w2.ForStmt]int64 {
	if len(shift) == 0 {
		return nil
	}
	m := make(map[*w2.ForStmt]int64, len(shift))
	for k, v := range shift {
		m[k] = v
	}
	return m
}

func (g *gen) extInfo(e *ir.ExtRef, shift map[*w2.ForStmt]int64) (*mcode.AddrInfo, *float64) {
	if e == nil {
		return nil, nil
	}
	if e.Sym == nil {
		v := e.Literal
		return nil, &v
	}
	return &mcode.AddrInfo{
		Sym:    e.Sym,
		Base:   e.Sym.Base,
		Affine: e.Addr,
		Delta:  copyShift(shift),
	}, nil
}

// emitBlock converts a scheduled block into microinstructions.  The
// shift map (iteration offsets from software pipelining) is recorded on
// every address and host binding.
func (g *gen) emitBlock(s *blockSchedule, regs map[*ir.Node]mcode.Reg, shift map[*w2.ForStmt]int64) ([]*mcode.Instr, error) {
	instrs := make([]*mcode.Instr, s.len)
	for i := range instrs {
		instrs[i] = &mcode.Instr{}
	}
	// Stable per-cycle ordering for memory ports.
	byCycle := make(map[int64][]*ir.Node)
	for _, n := range s.nodes {
		byCycle[s.issue[n]] = append(byCycle[s.issue[n]], n)
	}
	var cycles []int64
	for t := range byCycle {
		cycles = append(cycles, t)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })

	for _, t := range cycles {
		in := instrs[t]
		nodes := byCycle[t]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, n := range nodes {
			// Debug map: the first node placed into the word (lowest ID in
			// this cycle) claims the instruction's source position.
			if in.Pos.Line == 0 && n.Pos.Line != 0 {
				in.Pos = n.Pos
			}
			switch n.Op {
			case ir.OpRecv:
				ext, lit := g.extInfo(n.Ext, shift)
				r, ok := regs[n]
				if !ok {
					return nil, fmt.Errorf("cellgen: receive n%d lost its register", n.ID)
				}
				in.IO = append(in.IO, &mcode.IOOp{
					Recv: true, Dir: n.Dir, Chan: n.Chan, Reg: r,
					Ext: ext, ExtLiteral: lit, Delta: copyShift(shift),
				})
			case ir.OpSend:
				src, err := g.operandReg(n.Args[0], regs)
				if err != nil {
					return nil, err
				}
				ext, lit := g.extInfo(n.Ext, shift)
				in.IO = append(in.IO, &mcode.IOOp{
					Recv: false, Dir: n.Dir, Chan: n.Chan, Reg: src,
					Ext: ext, ExtLiteral: lit, Delta: copyShift(shift),
				})
			case ir.OpLoad, ir.OpStore:
				op := &mcode.MemOp{
					Store: n.Op == ir.OpStore,
					Addr: mcode.AddrInfo{
						Sym: n.Sym, Base: n.Sym.Base, Affine: n.Addr,
						Delta: copyShift(shift),
					},
				}
				if n.Op == ir.OpStore {
					src, err := g.operandReg(n.Args[0], regs)
					if err != nil {
						return nil, err
					}
					op.Reg = src
				} else {
					r, ok := regs[n]
					if !ok {
						return nil, fmt.Errorf("cellgen: load n%d lost its register", n.ID)
					}
					op.Reg = r
				}
				placed := false
				for slot := 0; slot < mcode.MemPorts; slot++ {
					if in.Mem[slot] == nil {
						in.Mem[slot] = op
						placed = true
						break
					}
				}
				if !placed {
					return nil, fmt.Errorf("cellgen: more than %d memory references in cycle %d", mcode.MemPorts, t)
				}
			case ir.OpWrite:
				src, err := g.operandReg(n.Args[0], regs)
				if err != nil {
					return nil, err
				}
				dst := g.res.ScalarRegs[n.Sym]
				if in.Mov != nil {
					return nil, fmt.Errorf("cellgen: move field double-booked in cycle %d", t)
				}
				in.Mov = &mcode.AluOp{Code: mcode.Mov, Dst: dst, Src: [3]mcode.Reg{src}}
			default:
				code, ok := aluCodeOf[n.Op]
				if !ok {
					return nil, fmt.Errorf("cellgen: cannot emit %s", n.Op)
				}
				op := &mcode.AluOp{Code: code}
				r, ok := regs[n]
				if !ok {
					return nil, fmt.Errorf("cellgen: node n%d lost its register", n.ID)
				}
				op.Dst = r
				for i, a := range n.Args {
					src, err := g.operandReg(a, regs)
					if err != nil {
						return nil, err
					}
					op.Src[i] = src
				}
				if code.OnMulUnit() {
					if in.Mul != nil {
						return nil, fmt.Errorf("cellgen: MUL unit double-booked in cycle %d", t)
					}
					in.Mul = op
				} else {
					if in.Add != nil {
						return nil, fmt.Errorf("cellgen: ADD unit double-booked in cycle %d", t)
					}
					in.Add = op
				}
			}
		}
	}
	return instrs, nil
}

// scheduleBlock schedules, allocates and emits one block.
func (g *gen) scheduleBlock(b *ir.Block, shift map[*w2.ForStmt]int64) ([]*mcode.Instr, error) {
	s, err := listSchedule(b)
	if err != nil {
		return nil, err
	}
	regs, err := g.assignRegs(s)
	if err != nil {
		return nil, err
	}
	return g.emitBlock(s, regs, shift)
}

package ir

import "testing"

func TestOpPredicates(t *testing.T) {
	for _, op := range []Op{OpSend, OpStore, OpWrite} {
		if op.HasResult() {
			t.Errorf("%s must not have a result", op)
		}
	}
	for _, op := range []Op{OpConst, OpRecv, OpLoad, OpFadd, OpSelect, OpRead} {
		if !op.HasResult() {
			t.Errorf("%s must have a result", op)
		}
	}
	if !OpRecv.IsIO() || !OpSend.IsIO() || OpLoad.IsIO() {
		t.Error("IsIO broken")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpRecv.IsMem() {
		t.Error("IsMem broken")
	}
	for _, op := range []Op{OpFadd, OpFmul, OpEq, OpNe, OpAnd, OpOr} {
		if !op.IsCommutative() {
			t.Errorf("%s must be commutative", op)
		}
	}
	for _, op := range []Op{OpFsub, OpFdiv, OpLt, OpSelect, OpStore} {
		if op.IsCommutative() {
			t.Errorf("%s must not be commutative", op)
		}
	}
	for _, op := range []Op{OpFadd, OpFmul, OpAnd, OpOr} {
		if !op.IsAssociative() {
			t.Errorf("%s must be associative", op)
		}
	}
	if OpFsub.IsAssociative() || OpFdiv.IsAssociative() {
		t.Error("subtraction/division must not be associative")
	}
}

func TestOpNames(t *testing.T) {
	if OpFadd.String() != "fadd" || OpRecv.String() != "recv" || OpSelect.String() != "select" {
		t.Error("op names broken")
	}
}

func TestNodeString(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        buf[2] := v;
        send (R, X, buf[2], ys[0]);
`))
	fn := p.Funcs[0]
	var texts []string
	Walk(fn.Regions, func(b *Block) {
		for _, n := range b.Nodes {
			texts = append(texts, n.String())
		}
	})
	joined := ""
	for _, s := range texts {
		joined += s + "\n"
	}
	for _, want := range []string{"recv L.X ext=xs[0]", "store buf[2]", "send R.X", "ext=ys[0]"} {
		if !contains(joined, want) {
			t.Errorf("node rendering misses %q in:\n%s", want, joined)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestIONodes(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        w := v * 2.0;
        send (R, X, w, ys[0]);
`))
	b := p.Funcs[0].Blocks[0]
	ios := b.IONodes()
	if len(ios) != 2 || ios[0].Op != OpRecv || ios[1].Op != OpSend {
		t.Errorf("IONodes = %v", ios)
	}
}

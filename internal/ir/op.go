// Package ir defines the compiler's central data structure (§6.1 of the
// paper): a flowgraph whose nodes are basic blocks, with the computation
// of each block represented as a directed acyclic graph (dag) of
// abstract Warp-cell operations.  At this level the cell is modelled as
// a simple processor with memory-to-memory operations and no registers;
// the code generator later maps dag nodes to micro-operations, allocates
// registers and schedules the code.
package ir

// Op is an abstract cell operation.
type Op int

// Abstract operations.
const (
	OpInvalid Op = iota

	// OpConst produces a floating constant (FVal).
	OpConst

	// OpRecv pops the next word from the queue of channel Chan on side
	// Dir.  Ext describes the host-side binding (meaningful on the
	// boundary cell only).
	OpRecv
	// OpSend pushes Args[0] into the neighbour's queue on channel Chan,
	// side Dir.  Ext names the host location for the last cell.
	OpSend

	// OpLoad reads cell data memory at the affine address Addr of array
	// Sym.  After computation decomposition the address arrives from the
	// IU over the Adr path (a "receive-address" operation, §6.1).
	OpLoad
	// OpStore writes Args[0] to cell memory (same addressing).
	OpStore

	// Floating-point arithmetic (the two FPUs of Figure 2-2).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFneg

	// Comparisons produce a boolean (machine: FPU condition result).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Boolean connectives over comparison results.
	OpAnd
	OpOr
	OpNot

	// OpSelect is Args[0] ? Args[1] : Args[2]; used to predicate
	// conditionals so that cell timing stays data independent.
	OpSelect

	// OpIndexF produces float(i) for the enclosing loop index Loop.
	// The cells cannot convert integers, so the code generator lowers
	// this to a floating induction register updated once per iteration.
	OpIndexF

	// OpRead produces the value of scalar Sym on entry to the block
	// (a register read at code-generation time).
	OpRead
	// OpWrite records Args[0] as the value of scalar Sym on exit from
	// the block (a register write).
	OpWrite
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpRecv:    "recv",
	OpSend:    "send",
	OpLoad:    "load",
	OpStore:   "store",
	OpFadd:    "fadd",
	OpFsub:    "fsub",
	OpFmul:    "fmul",
	OpFdiv:    "fdiv",
	OpFneg:    "fneg",
	OpEq:      "cmpeq",
	OpNe:      "cmpne",
	OpLt:      "cmplt",
	OpLe:      "cmple",
	OpGt:      "cmpgt",
	OpGe:      "cmpge",
	OpAnd:     "and",
	OpOr:      "or",
	OpNot:     "not",
	OpSelect:  "select",
	OpIndexF:  "indexf",
	OpRead:    "read",
	OpWrite:   "write",
}

func (op Op) String() string { return opNames[op] }

// HasResult reports whether the op produces a value.
func (op Op) HasResult() bool {
	switch op {
	case OpSend, OpStore, OpWrite:
		return false
	}
	return true
}

// IsIO reports whether the op is a queue operation.
func (op Op) IsIO() bool { return op == OpRecv || op == OpSend }

// IsMem reports whether the op references cell data memory.
func (op Op) IsMem() bool { return op == OpLoad || op == OpStore }

// IsCommutative reports whether Args[0] and Args[1] may be exchanged.
func (op Op) IsCommutative() bool {
	switch op {
	case OpFadd, OpFmul, OpEq, OpNe, OpAnd, OpOr:
		return true
	}
	return false
}

// IsAssociative reports whether the op may be re-associated (used by
// height reduction).  Floating re-association changes rounding; the
// paper's compiler applies it anyway as a local optimization, and so do
// we.
func (op Op) IsAssociative() bool {
	switch op {
	case OpFadd, OpFmul, OpAnd, OpOr:
		return true
	}
	return false
}

package ir

import (
	"fmt"
	"sort"

	"warp/internal/w2"
)

// Build lowers an analyzed W2 module into the flowgraph IR.
//
// The lowering performs:
//   - basic-block formation (loops delimit blocks; everything else is
//     straight line),
//   - if-conversion: conditionals become select operations so the cell
//     schedule is data independent,
//   - scalar value numbering within blocks, with OpRead/OpWrite at block
//     boundaries,
//   - intra-block ordering edges for queue operations and for possibly
//     aliasing memory operations.
func Build(info *w2.Info) (*Program, error) {
	p := &Program{Module: info.Module, Info: info}
	for _, s := range info.Module.Cells.Body {
		call := s.(*w2.CallStmt)
		decl := info.Funcs[call.Name]
		b := &builder{info: info}
		fn, err := b.buildFunc(decl)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, fn)
	}
	return p, nil
}

type ioKey struct {
	op Op
	d  w2.Direction
	c  w2.Channel
}

type builder struct {
	info    *w2.Info
	fn      *Func
	nodeID  int
	blockID int

	cur     *Block
	regions []*[]Region // stack; top is the region list under construction

	scalars  map[*w2.Symbol]*Node // current value of each scalar in the block
	dirty    map[*w2.Symbol]bool  // scalar was assigned in this block
	reads    map[*w2.Symbol]*Node // OpRead created in this block
	lastIO   map[ioKey]*Node
	memOps   map[*w2.Symbol][]*Node
	ioCounts map[ioKey]int   // static statement ordinals per stream
	ioDyn    map[ioKey]int64 // dynamic operation counts per stream

	preds []*Node // active predicate stack (if-conversion)
	loops []*w2.ForStmt
	trips int64 // product of enclosing loop trip counts
}

func (b *builder) buildFunc(decl *w2.FuncDecl) (*Func, error) {
	b.fn = &Func{Decl: decl}
	b.ioCounts = make(map[ioKey]int)
	b.ioDyn = make(map[ioKey]int64)
	b.trips = 1
	top := []Region{}
	b.regions = []*[]Region{&top}
	b.startBlock()
	if err := b.stmts(decl.Body); err != nil {
		return nil, err
	}
	b.endBlock()
	b.fn.Regions = top
	for _, d := range []w2.Direction{w2.DirL, w2.DirR} {
		for _, c := range []w2.Channel{w2.ChanX, w2.ChanY} {
			b.fn.NumRecv[d][c] = b.ioDyn[ioKey{OpRecv, d, c}]
			b.fn.NumSend[d][c] = b.ioDyn[ioKey{OpSend, d, c}]
		}
	}
	return b.fn, nil
}

func (b *builder) startBlock() {
	b.cur = &Block{ID: b.blockID}
	b.blockID++
	b.scalars = make(map[*w2.Symbol]*Node)
	b.dirty = make(map[*w2.Symbol]bool)
	b.reads = make(map[*w2.Symbol]*Node)
	b.lastIO = make(map[ioKey]*Node)
	b.memOps = make(map[*w2.Symbol][]*Node)
}

// endBlock finalizes the current block: write back dirty scalars and
// append the block to the enclosing region list (empty blocks are
// dropped).
func (b *builder) endBlock() {
	// Deterministic write-back order: by node ID of the final value,
	// then by symbol name — two scalars can share one value node (a :=
	// x; b := x), and the tie must not fall back to map iteration
	// order or the writes' node IDs vary between compiles of the same
	// source.
	type wb struct {
		sym *w2.Symbol
		val *Node
	}
	var pending []wb
	for sym, val := range b.scalars {
		if b.dirty[sym] {
			pending = append(pending, wb{sym, val})
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].val.ID != pending[j].val.ID {
			return pending[i].val.ID < pending[j].val.ID
		}
		return pending[i].sym.Name < pending[j].sym.Name
	})
	for _, p := range pending {
		w := b.newNode(OpWrite, p.val)
		w.Sym = p.sym
		// The write must follow any read of the previous value.
		if r, ok := b.reads[p.sym]; ok && r != p.val {
			w.Deps = append(w.Deps, r)
		}
	}
	if len(b.cur.Nodes) > 0 {
		b.fn.Blocks = append(b.fn.Blocks, b.cur)
		*b.regions[len(b.regions)-1] = append(*b.regions[len(b.regions)-1], &BlockRegion{Block: b.cur})
	}
	b.cur = nil
}

func (b *builder) newNode(op Op, args ...*Node) *Node {
	n := &Node{ID: b.nodeID, Op: op, Args: args}
	b.nodeID++
	b.cur.Nodes = append(b.cur.Nodes, n)
	return n
}

func (b *builder) constF(v float64) *Node {
	// Local constant reuse.
	for _, n := range b.cur.Nodes {
		if n.Op == OpConst && n.FVal == v {
			return n
		}
	}
	n := b.newNode(OpConst)
	n.FVal = v
	return n
}

func (b *builder) stmts(list []w2.Stmt) error {
	for _, s := range list {
		if err := b.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) stmt(s w2.Stmt) error {
	switch s := s.(type) {
	case *w2.AssignStmt:
		val, err := b.expr(s.RHS)
		if err != nil {
			return err
		}
		return b.assign(s.LHS, val, s.Pos)

	case *w2.IfStmt:
		cond, err := b.expr(s.Cond)
		if err != nil {
			return err
		}
		b.preds = append(b.preds, cond)
		if err := b.stmts(s.Then); err != nil {
			return err
		}
		b.preds = b.preds[:len(b.preds)-1]
		if len(s.Else) > 0 {
			neg := b.newNode(OpNot, cond)
			neg.Pos = s.Pos
			b.preds = append(b.preds, neg)
			if err := b.stmts(s.Else); err != nil {
				return err
			}
			b.preds = b.preds[:len(b.preds)-1]
		}
		return nil

	case *w2.ForStmt:
		if len(b.preds) > 0 {
			return fmt.Errorf("%s: loops under a conditional are not supported", s.Pos)
		}
		bounds := b.info.Bounds[s]
		b.endBlock()
		loopRegions := []Region{}
		b.regions = append(b.regions, &loopRegions)
		b.loops = append(b.loops, s)
		b.trips *= bounds[1] - bounds[0] + 1
		b.startBlock()
		if err := b.stmts(s.Body); err != nil {
			return err
		}
		b.endBlock()
		b.trips /= bounds[1] - bounds[0] + 1
		b.loops = b.loops[:len(b.loops)-1]
		b.regions = b.regions[:len(b.regions)-1]
		lr := &LoopRegion{Loop: s, Lo: bounds[0], Hi: bounds[1], Body: loopRegions}
		*b.regions[len(b.regions)-1] = append(*b.regions[len(b.regions)-1], lr)
		b.startBlock()
		return nil

	case *w2.ReceiveStmt:
		if len(b.preds) > 0 {
			return fmt.Errorf("%s: receive under a conditional", s.Pos)
		}
		n := b.newNode(OpRecv)
		n.Dir, n.Chan, n.Pos = s.Dir, s.Chan, s.Pos
		n.Ext = b.extRef(s.External)
		b.orderIO(n)
		return b.assign(s.LHS, n, s.Pos)

	case *w2.SendStmt:
		if len(b.preds) > 0 {
			return fmt.Errorf("%s: send under a conditional", s.Pos)
		}
		val, err := b.expr(s.Value)
		if err != nil {
			return err
		}
		n := b.newNode(OpSend, val)
		n.Dir, n.Chan, n.Pos = s.Dir, s.Chan, s.Pos
		if s.External != nil {
			n.Ext = b.extRef(s.External)
		}
		b.orderIO(n)
		return nil

	case *w2.BlockStmt:
		return b.stmts(s.Body)
	}
	return fmt.Errorf("%s: unhandled statement in IR lowering", s.StmtPos())
}

// orderIO assigns the static per-stream ordinal and chains the node
// after the previous operation on the same queue.
func (b *builder) orderIO(n *Node) {
	k := ioKey{n.Op, n.Dir, n.Chan}
	n.IOSeq = b.ioCounts[k]
	b.ioCounts[k]++
	b.ioDyn[k] += b.trips
	if prev, ok := b.lastIO[k]; ok {
		n.Deps = append(n.Deps, prev)
	}
	b.lastIO[k] = n
}

func (b *builder) extRef(e w2.Expr) *ExtRef {
	switch e := e.(type) {
	case nil:
		return nil
	case *w2.FloatLit:
		return &ExtRef{Literal: e.Value}
	case *w2.IntLit:
		return &ExtRef{Literal: float64(e.Value)}
	case *w2.VarRef:
		return &ExtRef{Sym: b.info.Uses[e], Addr: b.info.Address[e]}
	}
	return nil
}

// predicate returns the conjunction of the active predicate stack, or
// nil when unpredicated.
func (b *builder) predicate() *Node {
	if len(b.preds) == 0 {
		return nil
	}
	p := b.preds[0]
	for _, q := range b.preds[1:] {
		p = b.andNode(p, q)
	}
	return p
}

func (b *builder) andNode(p, q *Node) *Node {
	for _, n := range b.cur.Nodes {
		if n.Op == OpAnd && len(n.Args) == 2 &&
			((n.Args[0] == p && n.Args[1] == q) || (n.Args[0] == q && n.Args[1] == p)) {
			return n
		}
	}
	return b.newNode(OpAnd, p, q)
}

// assign stores val into a scalar or array element, applying the active
// predicate with a select.
func (b *builder) assign(lhs *w2.VarRef, val *Node, pos w2.Pos) error {
	sym := b.info.Uses[lhs]
	pred := b.predicate()
	if sym.Kind == w2.SymCellScalar {
		if pred != nil {
			old := b.scalarValue(sym)
			sel := b.newNode(OpSelect, pred, val, old)
			sel.Pos = pos
			val = sel
		}
		b.scalars[sym] = val
		b.dirty[sym] = true
		return nil
	}
	// Array element store.
	addr := b.info.Address[lhs]
	if pred != nil {
		old := b.load(sym, addr, pos)
		sel := b.newNode(OpSelect, pred, val, old)
		sel.Pos = pos
		val = sel
	}
	st := b.newNode(OpStore, val)
	st.Sym, st.Addr, st.Pos = sym, addr, pos
	b.orderMem(st)
	return nil
}

// scalarValue returns the current value of a scalar, creating an OpRead
// on first use in the block.
func (b *builder) scalarValue(sym *w2.Symbol) *Node {
	if v, ok := b.scalars[sym]; ok {
		return v
	}
	r := b.newNode(OpRead)
	r.Sym = sym
	b.scalars[sym] = r
	b.reads[sym] = r
	return r
}

func (b *builder) load(sym *w2.Symbol, addr w2.Affine, pos w2.Pos) *Node {
	ld := b.newNode(OpLoad)
	ld.Sym, ld.Addr, ld.Pos = sym, addr, pos
	b.orderMem(ld)
	return ld
}

// orderMem adds conservative ordering edges between memory operations on
// the same array that may alias within one iteration.  Two affine
// addresses cannot alias when their difference is a nonzero constant
// (the paper's global flow analysis "is powerful enough to distinguish
// between individual array elements", §6.1).
func (b *builder) orderMem(n *Node) {
	prev := b.memOps[n.Sym]
	for _, m := range prev {
		if n.Op == OpLoad && m.Op == OpLoad {
			continue
		}
		if diff := n.Addr.Sub(m.Addr); diff.IsConst() && diff.Const != 0 {
			continue // provably disjoint
		}
		n.Deps = append(n.Deps, m)
	}
	b.memOps[n.Sym] = append(prev, n)
}

func (b *builder) expr(e w2.Expr) (*Node, error) {
	switch e := e.(type) {
	case *w2.IntLit:
		return b.constF(float64(e.Value)), nil
	case *w2.FloatLit:
		return b.constF(e.Value), nil
	case *w2.VarRef:
		sym := b.info.Uses[e]
		switch sym.Kind {
		case w2.SymCellScalar:
			return b.scalarValue(sym), nil
		case w2.SymCellArray:
			return b.load(sym, b.info.Address[e], e.Pos), nil
		}
		return nil, fmt.Errorf("%s: %s cannot be used as a value", e.Pos, e.Name)
	case *w2.UnExpr:
		x, err := b.expr(e.X)
		if err != nil {
			return nil, err
		}
		op := OpFneg
		if !e.Neg {
			op = OpNot
		}
		n := b.newNode(op, x)
		n.Pos = e.Pos
		return n, nil
	case *w2.BinExpr:
		l, err := b.expr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := b.expr(e.R)
		if err != nil {
			return nil, err
		}
		var op Op
		switch e.Op {
		case w2.OpAdd:
			op = OpFadd
		case w2.OpSub:
			op = OpFsub
		case w2.OpMul:
			op = OpFmul
		case w2.OpDivide:
			op = OpFdiv
		case w2.OpEq:
			op = OpEq
		case w2.OpNe:
			op = OpNe
		case w2.OpLt:
			op = OpLt
		case w2.OpLe:
			op = OpLe
		case w2.OpGt:
			op = OpGt
		case w2.OpGe:
			op = OpGe
		case w2.OpAnd:
			op = OpAnd
		case w2.OpOr:
			op = OpOr
		default:
			return nil, fmt.Errorf("%s: operator %s not supported on cells", e.Pos, e.Op)
		}
		n := b.newNode(op, l, r)
		n.Pos = e.Pos
		return n, nil
	}
	return nil, fmt.Errorf("%s: unhandled expression in IR lowering", e.ExprPos())
}

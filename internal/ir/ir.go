package ir

import (
	"fmt"
	"strings"

	"warp/internal/w2"
)

// ExtRef is the host-side binding of a boundary send/receive: either a
// host array element (Sym, Addr) or, for receives, a literal constant.
type ExtRef struct {
	Sym     *w2.Symbol // nil when the external is a literal
	Addr    w2.Affine  // flattened element index within Sym
	Literal float64    // used when Sym == nil
}

func (e *ExtRef) String() string {
	if e == nil {
		return "-"
	}
	if e.Sym == nil {
		return fmt.Sprintf("%g", e.Literal)
	}
	return fmt.Sprintf("%s[%s]", e.Sym.Name, e.Addr)
}

// Node is one dag node: an abstract operation together with its operands
// and attributes.
type Node struct {
	ID   int
	Op   Op
	Args []*Node

	FVal float64      // OpConst
	Sym  *w2.Symbol   // OpLoad/OpStore: array; OpRead/OpWrite: scalar
	Addr w2.Affine    // OpLoad/OpStore: affine element index
	Dir  w2.Direction // OpRecv/OpSend
	Chan w2.Channel   // OpRecv/OpSend
	Ext  *ExtRef      // OpRecv/OpSend host binding
	Loop *w2.ForStmt  // OpIndexF

	// Deps are explicit ordering edges in addition to operand edges:
	// queue order, memory order, and register anti-dependences.  The
	// node must issue after every dep has issued (latency rules are
	// applied by the scheduler).
	Deps []*Node

	// Pos is the source position the node was generated from.
	Pos w2.Pos

	// IOSeq numbers queue operations per (direction, channel) in
	// program order; it is the ordinal used by the skew analysis.
	IOSeq int
}

func (n *Node) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d = %s", n.ID, n.Op)
	switch n.Op {
	case OpConst:
		fmt.Fprintf(&sb, " %g", n.FVal)
	case OpRecv:
		fmt.Fprintf(&sb, " %s.%s ext=%s", n.Dir, n.Chan, n.Ext)
	case OpSend:
		fmt.Fprintf(&sb, " %s.%s", n.Dir, n.Chan)
	case OpLoad, OpStore:
		fmt.Fprintf(&sb, " %s[%s]", n.Sym.Name, n.Addr)
	case OpRead, OpWrite:
		fmt.Fprintf(&sb, " %s", n.Sym.Name)
	case OpIndexF:
		fmt.Fprintf(&sb, " %s", n.Loop.Var)
	}
	for _, a := range n.Args {
		fmt.Fprintf(&sb, " n%d", a.ID)
	}
	if n.Op == OpSend && n.Ext != nil {
		fmt.Fprintf(&sb, " ext=%s", n.Ext)
	}
	return sb.String()
}

// Block is a basic block: a dag over Nodes, listed in creation
// (program) order.
type Block struct {
	ID    int
	Nodes []*Node
}

// IONodes returns the queue operations of the block in program order.
func (b *Block) IONodes() []*Node {
	var out []*Node
	for _, n := range b.Nodes {
		if n.Op.IsIO() {
			out = append(out, n)
		}
	}
	return out
}

// Region is a node of the structured flowgraph: either a basic block or
// a counted loop.  W2's constant loop bounds make the flowgraph
// reducible and fully structured, so a region tree represents it
// exactly.
type Region interface {
	regionNode()
}

// BlockRegion wraps a basic block.
type BlockRegion struct {
	Block *Block
}

// LoopRegion is a counted loop: Body executes Hi−Lo+1 times with the
// index taking Lo..Hi.
type LoopRegion struct {
	Loop *w2.ForStmt
	Lo   int64
	Hi   int64
	Body []Region
}

func (*BlockRegion) regionNode() {}
func (*LoopRegion) regionNode()  {}

// Trips returns the iteration count of the loop.
func (l *LoopRegion) Trips() int64 { return l.Hi - l.Lo + 1 }

// Program is the compiled intermediate form of one W2 module's cell
// program: the flowgraphs of the called functions, concatenated in call
// order.
type Program struct {
	Module *w2.Module
	Info   *w2.Info
	Funcs  []*Func
}

// Func is the flowgraph of one cell function.
type Func struct {
	Decl    *w2.FuncDecl
	Regions []Region
	Blocks  []*Block // all blocks, in program order
	// NumRecv and NumSend count the dynamic queue operations per
	// [direction][channel] (static statements weighted by the trip
	// counts of their enclosing loops).
	NumRecv [2][2]int64
	NumSend [2][2]int64
}

// Walk visits the regions depth first, calling f on every block.
func Walk(regions []Region, f func(*Block)) {
	for _, r := range regions {
		switch r := r.(type) {
		case *BlockRegion:
			f(r.Block)
		case *LoopRegion:
			Walk(r.Body, f)
		}
	}
}

// Dump renders a function's region tree for debugging and golden tests.
func (fn *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", fn.Decl.Name)
	dumpRegions(&sb, fn.Regions, 1)
	return sb.String()
}

func dumpRegions(sb *strings.Builder, regions []Region, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, r := range regions {
		switch r := r.(type) {
		case *BlockRegion:
			fmt.Fprintf(sb, "%sblock b%d\n", indent, r.Block.ID)
			for _, n := range r.Block.Nodes {
				fmt.Fprintf(sb, "%s  %s\n", indent, n)
			}
		case *LoopRegion:
			fmt.Fprintf(sb, "%sloop %s = %d..%d\n", indent, r.Loop.Var, r.Lo, r.Hi)
			dumpRegions(sb, r.Body, depth+1)
		}
	}
}

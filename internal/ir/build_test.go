package ir

import (
	"strings"
	"testing"

	"warp/internal/w2"
)

func buildSrc(t *testing.T, src string) *Program {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func wrap(body string) string {
	return `
module t (xs in, ys out)
float xs[16];
float ys[16];
cellprogram (cid : 0 : 1)
begin
    function f
    begin
        float v, w, acc;
        float buf[4];
        int i, j;
` + body + `
    end
    call f;
end
`
}

func countOp(fn *Func, op Op) int {
	n := 0
	Walk(fn.Regions, func(b *Block) {
		for _, node := range b.Nodes {
			if node.Op == op {
				n++
			}
		}
	})
	return n
}

func TestBuildRegionStructure(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        for i := 0 to 3 do begin
            receive (L, X, w, xs[i]);
            send (R, X, w);
        end;
        send (R, X, v);
`))
	fn := p.Funcs[0]
	if len(fn.Regions) != 3 {
		t.Fatalf("got %d top regions, want 3 (block, loop, block)", len(fn.Regions))
	}
	if _, ok := fn.Regions[0].(*BlockRegion); !ok {
		t.Errorf("region 0 should be a block")
	}
	lr, ok := fn.Regions[1].(*LoopRegion)
	if !ok {
		t.Fatalf("region 1 should be a loop")
	}
	if lr.Lo != 0 || lr.Hi != 3 || lr.Trips() != 4 {
		t.Errorf("loop bounds %d..%d", lr.Lo, lr.Hi)
	}
	// Dynamic counts: 1 + 4 loop iterations on each side.
	if fn.NumRecv[w2.DirL][w2.ChanX] != 5 || fn.NumSend[w2.DirR][w2.ChanX] != 5 {
		t.Errorf("I/O counts wrong: %v %v", fn.NumRecv, fn.NumSend)
	}
}

func TestBuildIfConversion(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        if v < 1.0 then w := 2.0; else w := 3.0;
        send (R, X, w, ys[0]);
`))
	fn := p.Funcs[0]
	// Both arms must become selects; no control flow is created.
	if len(fn.Blocks) != 1 {
		t.Fatalf("if-conversion must keep one block, got %d", len(fn.Blocks))
	}
	if n := countOp(fn, OpSelect); n != 2 {
		t.Errorf("got %d selects, want 2 (one per arm)", n)
	}
	if n := countOp(fn, OpNot); n != 1 {
		t.Errorf("got %d nots, want 1 (else predicate)", n)
	}
}

func TestBuildPredicatedStore(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        if v < 1.0 then buf[2] := v;
        send (R, X, v);
`))
	fn := p.Funcs[0]
	// A predicated store loads the old value and selects.
	if n := countOp(fn, OpLoad); n != 1 {
		t.Errorf("got %d loads, want 1", n)
	}
	if n := countOp(fn, OpSelect); n != 1 {
		t.Errorf("got %d selects, want 1", n)
	}
	if n := countOp(fn, OpStore); n != 1 {
		t.Errorf("got %d stores, want 1", n)
	}
}

func TestBuildScalarReadWrite(t *testing.T) {
	p := buildSrc(t, wrap(`
        acc := 0.0;
        for i := 0 to 3 do begin
            receive (L, X, v, xs[i]);
            acc := acc + v;
        end;
        send (R, X, acc, ys[0]);
        send (R, X, acc);
        send (R, X, acc);
        send (R, X, acc);
`))
	fn := p.Funcs[0]
	// acc is written in block 0 and in the loop, and v gets a (dead,
	// later optimized away) write in the loop; acc is read in the loop
	// and at the end.
	writes, reads := countOp(fn, OpWrite), countOp(fn, OpRead)
	if writes != 3 {
		t.Errorf("got %d writes, want 3", writes)
	}
	if reads != 2 {
		t.Errorf("got %d reads, want 2 (loop entry, final block)", reads)
	}
}

func TestBuildQueueOrderEdges(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        receive (L, X, w, xs[1]);
        send (R, X, v);
        send (R, X, w);
`))
	fn := p.Funcs[0]
	var recvs, sends []*Node
	Walk(fn.Regions, func(b *Block) {
		for _, n := range b.Nodes {
			if n.Op == OpRecv {
				recvs = append(recvs, n)
			}
			if n.Op == OpSend {
				sends = append(sends, n)
			}
		}
	})
	if len(recvs) != 2 || len(sends) != 2 {
		t.Fatal("wrong op counts")
	}
	if recvs[0].IOSeq != 0 || recvs[1].IOSeq != 1 {
		t.Errorf("receive ordinals wrong")
	}
	// The second receive must be ordered after the first.
	dep := false
	for _, d := range recvs[1].Deps {
		if d == recvs[0] {
			dep = true
		}
	}
	if !dep {
		t.Error("missing queue-order edge between receives")
	}
}

func TestBuildMemOrderEdges(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        buf[0] := v;
        w := buf[0];
        buf[1] := w;
        send (R, X, buf[0] + buf[1]);
`))
	fn := p.Funcs[0]
	var store0 *Node
	var load0 *Node
	Walk(fn.Regions, func(b *Block) {
		for _, n := range b.Nodes {
			if n.Op == OpStore && n.Addr.IsConst() && n.Addr.Const == 0 {
				store0 = n
			}
			if n.Op == OpLoad && n.Addr.IsConst() && n.Addr.Const == 0 && load0 == nil {
				load0 = n
			}
		}
	})
	if store0 == nil || load0 == nil {
		t.Fatal("missing store/load to buf[0]")
	}
	dep := false
	for _, d := range load0.Deps {
		if d == store0 {
			dep = true
		}
	}
	if !dep {
		t.Error("load of buf[0] not ordered after the store")
	}
}

func TestBuildDisjointAddressesUnordered(t *testing.T) {
	p := buildSrc(t, wrap(`
        receive (L, X, v, xs[0]);
        buf[0] := v;
        buf[1] := v;
`))
	fn := p.Funcs[0]
	var stores []*Node
	Walk(fn.Regions, func(b *Block) {
		for _, n := range b.Nodes {
			if n.Op == OpStore {
				stores = append(stores, n)
			}
		}
	})
	if len(stores) != 2 {
		t.Fatal("want 2 stores")
	}
	for _, d := range stores[1].Deps {
		if d == stores[0] {
			t.Error("provably disjoint stores should not be ordered")
		}
	}
}

func TestBuildConstantReuse(t *testing.T) {
	p := buildSrc(t, wrap(`
        v := 2.0;
        w := 2.0 + 2.0;
        send (R, X, v + w, ys[0]);
        receive (L, X, v, xs[0]);
`))
	fn := p.Funcs[0]
	if n := countOp(fn, OpConst); n != 1 {
		t.Errorf("constant 2.0 duplicated: %d const nodes", n)
	}
}

func TestBuildMultipleFunctions(t *testing.T) {
	src := `
module t (xs in, ys out)
float xs[4];
float ys[4];
cellprogram (cid : 0 : 0)
begin
    function first
    begin
        float v;
        receive (L, X, v, xs[0]);
        send (R, X, v, ys[0]);
    end
    function second
    begin
        float v;
        receive (L, X, v, xs[1]);
        send (R, X, v, ys[1]);
    end
    call first;
    call second;
end
`
	p := buildSrc(t, src)
	if len(p.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(p.Funcs))
	}
	if p.Funcs[0].Decl.Name != "first" || p.Funcs[1].Decl.Name != "second" {
		t.Error("call order not preserved")
	}
}

func TestDumpIsStable(t *testing.T) {
	src := wrap(`
        receive (L, X, v, xs[0]);
        for i := 0 to 3 do begin
            receive (L, X, w, xs[i]);
            send (R, X, w);
        end;
        send (R, X, v);
`)
	a := buildSrc(t, src).Funcs[0].Dump()
	b := buildSrc(t, src).Funcs[0].Dump()
	if a != b {
		t.Error("IR dump is nondeterministic")
	}
	if !strings.Contains(a, "loop i = 0..3") {
		t.Errorf("dump misses loop header:\n%s", a)
	}
}

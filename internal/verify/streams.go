package verify

import (
	"warp/internal/mcode"
	"warp/internal/skew"
	"warp/internal/w2"
)

// streams.go reduces the microcode to timed event streams — the
// verifier's own reading of the programs, independent of the code
// generators' bookkeeping.  Two forms are produced:
//
//   - a structured tree per stream (loops kept symbolic), which the
//     counting and occupancy bounds of counts.go consume without ever
//     expanding a trip count; and
//   - flat enumerations (every dynamic event with its exact cycle),
//     used when the program is small enough for the exact sweeps.
//
// Cell time is the instruction's ordinal in the dynamic execution:
// every cell executes exactly one microinstruction per cycle, so the
// nth instruction of cell k runs at machine cycle start_k + n with
// start_k = Lead + k·Skew.

// snode is one element of a structured timed stream: either a leaf
// carrying event deltas at one cycle, or a loop.
type snode struct {
	at    int64 // cycle relative to the enclosing body's start
	instr int   // static instruction index (leaf only)
	send  int   // events pushed at this cycle
	recv  int   // events popped at this cycle
	loop  *sloop
}

type sloop struct {
	at      int64
	trips   int64
	iterLen int64
	body    []snode
}

// event is one dynamic stream event at an absolute cycle.
type event struct {
	at    int64
	instr int
}

// cellStreams is everything the verifier derives from one cell program.
type cellStreams struct {
	data    map[w2.Channel][]snode // send/recv deltas per data channel
	mem     []snode                // memory references (Adr-queue pops), send=count
	cycles  int64                  // total program length in cycles
	maxNest int                    // deepest loop nesting (signal rate bound)
	index   map[*mcode.Instr]int   // static instruction numbering, listing order
}

// buildCellStreams walks the cell program once, structurally.
func buildCellStreams(p *mcode.CellProgram) *cellStreams {
	cs := &cellStreams{
		data:  map[w2.Channel][]snode{w2.ChanX: nil, w2.ChanY: nil},
		index: map[*mcode.Instr]int{},
	}
	idx := 0
	var walk func(items []mcode.CodeItem, depth int) (length int64, data map[w2.Channel][]snode, mem []snode)
	walk = func(items []mcode.CodeItem, depth int) (int64, map[w2.Channel][]snode, []snode) {
		if depth > cs.maxNest {
			cs.maxNest = depth
		}
		var at int64
		data := map[w2.Channel][]snode{}
		var mem []snode
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.Straight:
				for i, in := range it.Instrs {
					cs.index[in] = idx
					idx++
					t := at + int64(i)
					nMem := 0
					for _, m := range in.Mem {
						if m != nil {
							nMem++
						}
					}
					// One leaf per (instruction, channel), so a cycle
					// carrying both a send and a receive keeps them
					// together: the occupancy extremes then evaluate both
					// within-cycle orderings conservatively.
					var perChan [2]snode
					for _, io := range in.IO {
						slot := 0
						if io.Chan == w2.ChanY {
							slot = 1
						}
						n := &perChan[slot]
						n.at, n.instr = t, cs.index[in]
						if io.Recv {
							n.recv++
						} else {
							n.send++
						}
					}
					for slot, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
						if n := perChan[slot]; n.send > 0 || n.recv > 0 {
							data[ch] = append(data[ch], n)
						}
					}
					if nMem > 0 {
						mem = append(mem, snode{at: t, instr: cs.index[in], send: nMem})
					}
				}
				at += int64(len(it.Instrs))
			case *mcode.LoopItem:
				n, innerData, innerMem := walk(it.Body, depth+1)
				for ch, body := range innerData {
					if len(body) == 0 {
						continue
					}
					data[ch] = append(data[ch], snode{
						loop: &sloop{at: at, trips: it.Trips, iterLen: n, body: body},
					})
				}
				if len(innerMem) > 0 {
					mem = append(mem, snode{
						loop: &sloop{at: at, trips: it.Trips, iterLen: n, body: innerMem},
					})
				}
				at += n * it.Trips
			}
		}
		return at, data, mem
	}
	length, data, mem := walk(p.Items, 0)
	cs.cycles = length
	for ch, body := range data {
		cs.data[ch] = body
	}
	cs.mem = mem
	return cs
}

// skewProg converts a structured stream to the skew package's timed I/O
// program form, so the paper's pairwise symbolic machinery (closed-form
// timing functions over characteristic vectors) can bound it without
// enumeration.  Statement IDs are assigned in textual order per kind.
func skewProg(body []snode, length int64) *skew.Prog {
	ids := [2]int{}
	var conv func(body []snode) []skew.Elem
	conv = func(body []snode) []skew.Elem {
		var out []skew.Elem
		for _, n := range body {
			if n.loop != nil {
				out = append(out, &skew.Loop{
					At: n.loop.at, Trips: n.loop.trips, IterLen: n.loop.iterLen,
					Body: conv(n.loop.body),
				})
				continue
			}
			if n.send > 0 {
				out = append(out, &skew.Op{Kind: skew.Output, ID: ids[1], At: n.at})
				ids[1]++
			}
			if n.recv > 0 {
				out = append(out, &skew.Op{Kind: skew.Input, ID: ids[0], At: n.at})
				ids[0]++
			}
		}
		return out
	}
	return &skew.Prog{Body: conv(body), Len: length}
}

// treeCount returns the dynamic send/recv event totals of a stream
// without enumerating it: closed-form products over trip counts.
func treeCount(body []snode) (sends, recvs int64) {
	for _, n := range body {
		if n.loop != nil {
			s, r := treeCount(n.loop.body)
			sends += s * n.loop.trips
			recvs += r * n.loop.trips
			continue
		}
		sends += int64(n.send)
		recvs += int64(n.recv)
	}
	return sends, recvs
}

// flatten enumerates every dynamic event of the selected kind in time
// order, shifted by base.  pick selects how many events a leaf yields
// (sends or recvs).  It returns false once the limit would be exceeded;
// the caller falls back to the symbolic path.
func flatten(body []snode, base int64, pick func(snode) int, out *[]event, limit int) bool {
	for _, n := range body {
		if n.loop != nil {
			for i := int64(0); i < n.loop.trips; i++ {
				if !flatten(n.loop.body, base+n.loop.at+i*n.loop.iterLen, pick, out, limit) {
					return false
				}
			}
			continue
		}
		for k := 0; k < pick(n); k++ {
			if len(*out) >= limit {
				return false
			}
			*out = append(*out, event{at: base + n.at, instr: n.instr})
		}
	}
	return true
}

func pickSend(n snode) int { return n.send }
func pickRecv(n snode) int { return n.recv }

// boundary is one loop-body end crossed by the cell sequencer: the cell
// pops one IU control signal per boundary, at the cycle of the
// iteration's last instruction, innermost first.
type boundary struct {
	at   int64
	id   int
	more bool
}

// cellBoundaries enumerates the boundary-crossing sequence by full
// expansion of the cell program, mirroring the simulator's sequencer.
// Returns false if the walk exceeds limit cycles.
func cellBoundaries(p *mcode.CellProgram, limit int64) ([]boundary, bool) {
	var out []boundary
	var t int64
	var walk func(items []mcode.CodeItem) bool
	walk = func(items []mcode.CodeItem) bool {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.Straight:
				t += int64(len(it.Instrs))
				if t > limit {
					return false
				}
			case *mcode.LoopItem:
				for k := int64(0); k < it.Trips; k++ {
					if !walk(it.Body) {
						return false
					}
					out = append(out, boundary{at: t - 1, id: it.ID, more: k+1 < it.Trips})
				}
			}
		}
		return true
	}
	if !walk(p.Items) {
		return nil, false
	}
	return out, true
}
